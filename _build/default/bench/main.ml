(* Bechamel benchmarks: one Test.make per table and figure of the paper,
   plus ablation benches for the design choices DESIGN.md calls out
   (partitioning strategy, points-to precision, MPB staging).

   Each test body regenerates its artifact at reduced parameters so one
   iteration stays in the tens of milliseconds; `dune exec bench/main.exe`
   prints milliseconds per regeneration. *)

open Bechamel
open Toolkit

(* --- reduced-parameter building blocks ------------------------------------ *)

let tiny_pi = Workloads.Pi.make ~params:{ Workloads.Pi.steps = 8192 } ()

let tiny_stream =
  Workloads.Stream.make
    ~params:{ Workloads.Stream.n = 4096; reps = 2; block = 256 } ()

let tiny_suite =
  [ tiny_pi;
    Workloads.Sum35.make ~params:{ Workloads.Sum35.bound = 20_000 } ();
    Workloads.Primes.make ~params:{ Workloads.Primes.limit = 1_000 } ();
    tiny_stream;
    Workloads.Dot.make ~params:{ Workloads.Dot.n = 4096; reps = 2; block = 256 } ();
    Workloads.Lu.make ~params:{ Workloads.Lu.n = 32; block = 256 } () ]

let run w mode = ignore (Workloads.Workload.run w mode)

let assert_verified (r : Workloads.Workload.result) =
  if not r.Workloads.Workload.verified then failwith "bench: not verified"

(* --- tables ----------------------------------------------------------------- *)

let table_4_1 =
  Test.make ~name:"table-4.1 (stages 1-3 on Example 4.1)"
    (Staged.stage (fun () -> ignore (Exp.Experiments.table_4_1 ())))

let table_4_2 =
  Test.make ~name:"table-4.2 (sharing-status snapshots)"
    (Staged.stage (fun () -> ignore (Exp.Experiments.table_4_2 ())))

let table_6_1 =
  Test.make ~name:"table-6.1 (configuration render)"
    (Staged.stage (fun () -> ignore (Exp.Experiments.table_6_1 ())))

let translate_example =
  Test.make ~name:"example-4.2 (full 5-stage translation)"
    (Staged.stage (fun () ->
         ignore
           (Translate.Driver.translate_source ~file:Exp.Example41.file
              Exp.Example41.source)))

(* --- figures ----------------------------------------------------------------- *)

let fig_6_1 =
  Test.make ~name:"fig-6.1 (pthread baseline vs rcce off-chip, 6 benchmarks)"
    (Staged.stage (fun () ->
         List.iter
           (fun w ->
             run w (Workloads.Workload.Pthread_baseline 8);
             run w (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 8)))
           tiny_suite))

let fig_6_2 =
  Test.make ~name:"fig-6.2 (off-chip vs MPB placement, 6 benchmarks)"
    (Staged.stage (fun () ->
         List.iter
           (fun w ->
             run w (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 8));
             run w (Workloads.Workload.Rcce (Workloads.Workload.On_chip, 8)))
           tiny_suite))

let fig_6_3 =
  Test.make ~name:"fig-6.3 (pi core-count sweep)"
    (Staged.stage (fun () ->
         List.iter
           (fun cores ->
             run tiny_pi
               (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, cores)))
           [ 1; 4; 16; 48 ]))

(* --- ablations ----------------------------------------------------------------- *)

let items = Exp.Experiments.synthetic_items ~count:64 ~seed:7

let ablation_partition strategy =
  Test.make
    ~name:
      (Printf.sprintf "ablation-A (partition, %s)"
         (Partition.Partitioner.strategy_to_string strategy))
    (Staged.stage (fun () ->
         ignore
           (Partition.Partitioner.partition ~strategy Partition.Memspec.scc
              ~capacity:(16 * 1024) items)))

let ablation_points_to include_possible =
  Test.make
    ~name:
      (Printf.sprintf "ablation (points-to, include_possible=%b)"
         include_possible)
    (Staged.stage
       (let program = Exp.Example41.parse () in
        fun () -> ignore (Analysis.Pipeline.analyze ~include_possible program)))

let ablation_mpb_staging placement name =
  Test.make ~name:(Printf.sprintf "ablation (stream %s, 8 cores)" name)
    (Staged.stage (fun () ->
         let r =
           Workloads.Workload.run tiny_stream
             (Workloads.Workload.Rcce (placement, 8))
         in
         assert_verified r))

let sync_sensitivity_bench =
  Test.make ~name:"sync-sensitivity (pi vs histogram, 8 units)"
    (Staged.stage (fun () ->
         ignore
           (Exp.Experiments.sync_sensitivity_data
              ~scale:Exp.Experiments.Quick ~units:8 ())))

let dvfs_bench =
  Test.make ~name:"dvfs sweep (pi across the envelope)"
    (Staged.stage (fun () ->
         ignore (Exp.Experiments.dvfs_data ~scale:Exp.Experiments.Quick ())))

let interp_end_to_end =
  Test.make ~name:"ablation-B (translated pi interpreted, 4 cores)"
    (Staged.stage
       (let src = Exp.Csrc.pi ~nt:4 ~steps:2048 in
        let translated, _ =
          Translate.Driver.translate_source ~file:"pi.c" src
        in
        fun () -> ignore (Cexec.Interp.run_rcce ~ncores:4 translated)))

(* --- runner ------------------------------------------------------------------ *)

let tests =
  [ table_4_1; table_4_2; table_6_1; translate_example; fig_6_1; fig_6_2;
    fig_6_3;
    ablation_partition Partition.Partitioner.Size_ascending;
    ablation_partition Partition.Partitioner.Access_density;
    ablation_partition Partition.Partitioner.All_off_chip;
    ablation_points_to false;
    ablation_points_to true;
    ablation_mpb_staging Workloads.Workload.Off_chip "off-chip";
    ablation_mpb_staging Workloads.Workload.On_chip "MPB-staged";
    sync_sensitivity_bench; dvfs_bench; interp_end_to_end ]

let benchmark test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  Analyze.all ols instance raw

let () =
  print_endline "hsmc benchmarks: wall time per artifact regeneration\n";
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ ns_per_run ] ->
              Printf.printf "%-62s %10.3f ms/run\n" name (ns_per_run /. 1e6)
          | Some _ | None -> Printf.printf "%-62s (no estimate)\n" name)
        results;
      flush stdout)
    tests
