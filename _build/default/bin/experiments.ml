(* experiments — regenerate the paper's tables and figures.

     experiments all                  everything, full scale
     experiments all --quick          everything, small parameters
     experiments fig-6.1              one section
*)

open Cmdliner

let sections =
  [ ("table-4.1", fun _scale -> Exp.Experiments.table_4_1 ());
    ("table-4.2", fun _scale -> Exp.Experiments.table_4_2 ());
    ("table-6.1", fun _scale -> Exp.Experiments.table_6_1 ());
    ("translate-example",
     fun _scale -> Exp.Experiments.translation_example ());
    ("fig-6.1", fun scale -> Exp.Experiments.fig_6_1 ~scale ());
    ("fig-6.2", fun scale -> Exp.Experiments.fig_6_2 ~scale ());
    ("fig-6.3", fun scale -> Exp.Experiments.fig_6_3 ~scale ());
    ("ablation-partition",
     fun _scale -> Exp.Experiments.ablation_partition ());
    ("interp", fun scale -> Exp.Experiments.interp_experiment ~scale ());
    ("dvfs", fun scale -> Exp.Experiments.dvfs_experiment ~scale ());
    ("sync", fun scale -> Exp.Experiments.sync_sensitivity ~scale ());
    ("model-sensitivity",
     fun scale -> Exp.Experiments.model_sensitivity ~scale ());
    ("many-to-one",
     fun scale -> Exp.Experiments.many_to_one_scaling ~scale ()) ]

let run_cmd which quick =
  let scale =
    if quick then Exp.Experiments.Quick else Exp.Experiments.Full
  in
  match which with
  | "all" -> print_string (Exp.Experiments.run_all ~scale ())
  | name -> begin
      match List.assoc_opt name sections with
      | Some f -> print_string (f scale)
      | None ->
          Printf.eprintf "experiments: unknown section %S (have: all, %s)\n"
            name
            (String.concat ", " (List.map fst sections));
          exit 1
    end

let which_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"SECTION")

let quick_arg =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Small parameters (seconds, not minutes).")

let main =
  Cmd.v
    (Cmd.info "experiments" ~version:"1.0.0"
       ~doc:"Regenerate the paper's tables and figures")
    Term.(const run_cmd $ which_arg $ quick_arg)

let () = exit (Cmd.eval main)
