examples/benchmark_study.ml: Array Exp List Printf Scc Sys Workloads
