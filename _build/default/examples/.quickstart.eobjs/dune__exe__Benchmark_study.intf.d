examples/benchmark_study.mli:
