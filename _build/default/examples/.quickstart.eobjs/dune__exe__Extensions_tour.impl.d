examples/extensions_tour.ml: Cexec Cfront Exp List Printf Rcce Scc String Translate
