examples/partition_explorer.ml: Analysis Exp Ir List Partition Printf
