examples/partition_explorer.mli:
