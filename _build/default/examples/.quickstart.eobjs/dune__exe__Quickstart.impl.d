examples/quickstart.ml: Analysis Cexec Cfront Exp List Printf Translate
