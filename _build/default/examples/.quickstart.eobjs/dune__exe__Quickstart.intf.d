examples/quickstart.mli:
