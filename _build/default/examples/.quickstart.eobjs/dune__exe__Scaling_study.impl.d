examples/scaling_study.ml: Exp List Printf Scc
