(* Benchmark study: the paper's evaluation on the native workload suite —
   the Figure 6.1 comparison (Pthread single-core baseline vs RCCE
   off-chip), the Figure 6.2 comparison (off-chip vs MPB placement), and
   a per-benchmark traffic breakdown from the simulator's counters.

     dune exec examples/benchmark_study.exe        (quick parameters)
     dune exec examples/benchmark_study.exe full   (the paper's scale)
*)

let scale () =
  match Sys.argv with
  | [| _; "full" |] -> Exp.Experiments.Full
  | _ -> Exp.Experiments.Quick

let () =
  let scale = scale () in
  Printf.printf "Running the six-benchmark suite at %s scale...\n\n"
    (Exp.Experiments.scale_to_string scale);
  print_string (Exp.Experiments.fig_6_1 ~scale ());
  print_newline ();
  print_string (Exp.Experiments.fig_6_2 ~scale ());
  print_newline ();

  (* a peek below the figures: where the memory traffic actually went *)
  print_endline "Traffic breakdown (RCCE off-chip vs MPB, 32 units):";
  let header =
    [ "Benchmark"; "Mode"; "Shared DRAM lines"; "MPB lines"; "Barrier (ms)" ]
  in
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun (label, placement) ->
            let r =
              Workloads.Workload.run w
                (Workloads.Workload.Rcce (placement, 32))
            in
            let s = r.Workloads.Workload.stats in
            let barrier_ms =
              float_of_int
                (Array.fold_left
                   (fun acc c -> acc + c.Scc.Stats.barrier_wait_ps)
                   0 s.Scc.Stats.ctxs)
              /. 1e9
            in
            [ w.Workloads.Workload.name; label;
              string_of_int (Scc.Stats.total_shared_dram_lines s);
              string_of_int (Scc.Stats.total_mpb_lines s);
              Printf.sprintf "%.2f" barrier_ms ])
          [ ("off-chip", Workloads.Workload.Off_chip);
            ("MPB", Workloads.Workload.On_chip) ])
      (Exp.Experiments.suite scale)
  in
  print_string (Exp.Tabulate.render (header :: rows))
