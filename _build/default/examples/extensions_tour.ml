(* Extensions tour: the paper's section-7 future work, implemented —
   many-to-one thread mapping (7.2), pthread_barrier conversion (7.1),
   code optimization (7.3) — plus the Eraser race detector and RCCE
   message passing.

     dune exec examples/extensions_tour.exe
*)

let section title =
  Printf.printf "\n=== %s ===\n\n" title

(* --- 7.2: more threads than cores -------------------------------------------- *)

let many_to_one () =
  section "7.2  Many-to-one: 96 threads on 48 cores";
  let src = Exp.Csrc.pi ~nt:96 ~steps:(1 lsl 15) in
  let program = Cfront.Parser.program ~file:"pi96.c" src in
  (* the paper-faithful translator rejects this program *)
  (match Translate.Driver.translate_program program with
  | _ -> print_endline "unexpected: 96 threads accepted without the option"
  | exception Translate.Driver.Error e ->
      Printf.printf "paper-faithful translator: %s\n"
        (Translate.Driver.error_to_string e));
  (* the many-to-one option emits a task loop instead *)
  let options =
    { Translate.Pass.default_options with Translate.Pass.many_to_one = true }
  in
  let translated, _ = Translate.Driver.translate_program ~options program in
  print_endline "\nwith --many-to-one, each process loops over its tasks:";
  String.split_on_char '\n' (Cfront.Pretty.program translated)
  |> List.filter (fun l ->
         let has needle =
           let n = String.length needle and m = String.length l in
           let rec scan i =
             i + n <= m && (String.sub l i n = needle || scan (i + 1))
           in
           scan 0
         in
         has "myTask")
  |> List.iter print_endline;
  let original = Cexec.Interp.run_pthread program in
  let converted = Cexec.Interp.run_rcce ~ncores:48 translated in
  Printf.printf
    "\n96 threads on 1 core: %.2f ms; 96 tasks on 48 cores: %.2f ms (%.1fx)\n"
    (float_of_int original.Cexec.Interp.elapsed_ps /. 1e9)
    (float_of_int converted.Cexec.Interp.elapsed_ps /. 1e9)
    (float_of_int original.Cexec.Interp.elapsed_ps
    /. float_of_int converted.Cexec.Interp.elapsed_ps)

(* --- race detection -------------------------------------------------------------- *)

let race_detection () =
  section "Eraser race detection on the simulated SCC";
  let buggy =
    {|#include <pthread.h>
      #include <stdio.h>
      int hits;
      void *w(void *a) {
        int i;
        for (i = 0; i < 8; i++) { hits = hits + 1; }
        pthread_exit(NULL);
      }
      int main() {
        pthread_t t[4];
        int i;
        for (i = 0; i < 4; i++) { pthread_create(&t[i], NULL, w, (void *)i); }
        for (i = 0; i < 4; i++) { pthread_join(t[i], NULL); }
        printf("hits = %d\n", hits);
        return 0;
      }|}
  in
  let r =
    Cexec.Interp.run_pthread ~detect_races:true
      (Cfront.Parser.program ~file:"buggy.c" buggy)
  in
  Printf.printf "unsynchronized counter: %s" r.Cexec.Interp.output;
  List.iter
    (fun rep -> print_endline ("  " ^ Cexec.Lockset.report_to_string rep))
    r.Cexec.Interp.races;
  let fixed = Exp.Csrc.mutex_counter ~nt:4 ~iters:8 in
  let r2 =
    Cexec.Interp.run_pthread ~detect_races:true
      (Cfront.Parser.program ~file:"fixed.c" fixed)
  in
  Printf.printf "with the mutex: %s  races: %d\n" r2.Cexec.Interp.output
    (List.length r2.Cexec.Interp.races)

(* --- 7.3: the optimizer ------------------------------------------------------------ *)

let optimizer () =
  section "7.3  Code optimization";
  let src =
    {|int main() {
        int budget = 8 * 1024;
        if (sizeof(int) == 4) { budget = budget + 2 * 16; }
        while (1 > 2) { budget = 0; }
        return budget;
      }|}
  in
  let options =
    { Translate.Pass.default_options with Translate.Pass.optimize = true }
  in
  let out, report = Translate.Driver.translate_to_string ~options src in
  print_string out;
  List.iter
    (fun n -> print_endline ("  - " ^ n))
    report.Translate.Driver.notes

(* --- RCCE message passing ------------------------------------------------------------ *)

let message_passing () =
  section "RCCE send/recv: a 16-core ring";
  let n = 16 in
  let eng =
    Rcce.run ~ncores:n (fun t ->
        let me = Rcce.ue t in
        let next = (me + 1) mod n and prev = (me + n - 1) mod n in
        if me = 0 then begin
          Rcce.send t ~dest_ue:next ~bytes:256;
          Rcce.recv t ~src_ue:prev ~bytes:256
        end
        else begin
          Rcce.recv t ~src_ue:prev ~bytes:256;
          Rcce.send t ~dest_ue:next ~bytes:256
        end)
  in
  Printf.printf
    "256-byte token around %d UEs: %.2f us (%.2f us per hop through the \
     MPB)\n"
    n
    (Scc.Engine.elapsed_ms eng *. 1000.0)
    (Scc.Engine.elapsed_ms eng *. 1000.0 /. float_of_int n)

let () =
  many_to_one ();
  race_detection ();
  optimizer ();
  message_passing ()
