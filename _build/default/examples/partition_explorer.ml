(* Partition explorer: Stage 4 in isolation — how the paper's
   ascending-size greedy (Algorithm 3) places a program's shared data as
   the on-chip capacity varies, and how the access-density alternative
   compares.

     dune exec examples/partition_explorer.exe
*)

let spec = Partition.Memspec.scc

let show_placements title items ~capacity ~strategy =
  Printf.printf "%s (capacity %d B, %s)\n" title capacity
    (Partition.Partitioner.strategy_to_string strategy);
  let r = Partition.Partitioner.partition ~strategy spec ~capacity items in
  let rows =
    [ "Variable"; "Bytes"; "Accesses"; "Placement" ]
    :: List.map
         (fun (a : Partition.Partitioner.assignment) ->
           let i = a.Partition.Partitioner.item in
           [ Ir.Var_id.to_string i.Partition.Partitioner.var;
             string_of_int i.Partition.Partitioner.bytes;
             string_of_int i.Partition.Partitioner.accesses;
             Partition.Partitioner.placement_to_string
               a.Partition.Partitioner.placement ])
         r.Partition.Partitioner.assignments
  in
  print_string (Exp.Tabulate.render rows);
  Printf.printf "on-chip: %d B used, %.0f%% of accesses served on chip\n\n"
    r.Partition.Partitioner.on_chip_bytes
    (100.0 *. Partition.Partitioner.on_chip_access_fraction r)

let () =
  (* 1. the paper's example: its three shared variables always fit *)
  print_endline "== Shared data of the paper's Example 4.1 ==\n";
  let analysis = Analysis.Pipeline.analyze (Exp.Example41.parse ()) in
  let items = Partition.Partitioner.items_of_analysis analysis in
  show_placements "Example 4.1" items
    ~capacity:(Partition.Memspec.on_chip_capacity spec ~ncores:3)
    ~strategy:Partition.Partitioner.Size_ascending;

  (* 2. a synthetic program whose shared data exceeds the MPB *)
  print_endline "== 64 synthetic shared variables, capacity sweep ==\n";
  let items = Exp.Experiments.synthetic_items ~count:64 ~seed:42 in
  let summarize ~capacity ~strategy =
    let r = Partition.Partitioner.partition ~strategy spec ~capacity items in
    Printf.sprintf "%.0f%%"
      (100.0 *. Partition.Partitioner.on_chip_access_fraction r)
  in
  let capacities = [ 4096; 16 * 1024; 64 * 1024; 256 * 1024 ] in
  let rows =
    [ "Capacity"; "Algorithm 3 (size asc.)"; "Access density" ]
    :: List.map
         (fun capacity ->
           [ Printf.sprintf "%d KB" (capacity / 1024);
             summarize ~capacity
               ~strategy:Partition.Partitioner.Size_ascending;
             summarize ~capacity
               ~strategy:Partition.Partitioner.Access_density ])
         capacities
  in
  print_string (Exp.Tabulate.render rows);
  print_endline
    "\n(fraction of estimated shared accesses served by the on-chip MPB)"
