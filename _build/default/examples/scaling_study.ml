(* Scaling study: the paper's Figure 6.3 plus the power model — how the
   Pi benchmark scales from 1 to 48 cores, in time and in energy, and
   where the DVFS envelope sits.

     dune exec examples/scaling_study.exe
*)

let () =
  print_endline "The SCC's published operating envelope:";
  List.iter
    (fun (p : Scc.Power.operating_point) ->
      Printf.printf "  %.2f V, %4d MHz -> %5.1f W\n" p.Scc.Power.volts
        p.Scc.Power.freq_mhz p.Scc.Power.watts)
    Scc.Power.operating_points;
  Printf.printf "  model at the paper's 800 MHz point: %.1f W\n\n"
    (Scc.Power.chip_watts ~freq_mhz:800 ());

  print_string (Exp.Experiments.fig_6_3 ~scale:Exp.Experiments.Quick ());

  (* energy-delay: more cores finish sooner AND spend less total energy,
     because the chip's static power burns for less time *)
  print_endline "\nEnergy-delay product (lower is better):";
  let rows = Exp.Experiments.fig_6_3_data ~scale:Exp.Experiments.Quick () in
  let items =
    List.map
      (fun (r : Exp.Experiments.fig_6_3_row) ->
        ( Printf.sprintf "%2d cores" r.Exp.Experiments.cores,
          r.Exp.Experiments.energy_j *. r.Exp.Experiments.rcce_ms ))
      rows
  in
  print_string (Exp.Tabulate.bar_chart ~unit:" J*ms" items)
