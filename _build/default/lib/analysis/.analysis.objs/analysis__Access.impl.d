lib/analysis/access.ml: Ast Cfront Ir List Option
