lib/analysis/access.mli: Ast Cfront Ir
