lib/analysis/access_count.ml: Access Ast Cfront Ir List Option Scope_analysis String Thread_analysis Visit
