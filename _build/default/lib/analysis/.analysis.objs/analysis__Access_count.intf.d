lib/analysis/access_count.mli: Ir Scope_analysis Thread_analysis
