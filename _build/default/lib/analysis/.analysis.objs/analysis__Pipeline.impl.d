lib/analysis/pipeline.ml: Access_count Ast Cfront Ir List Points_to Scope_analysis Sharing Thread_analysis Varinfo
