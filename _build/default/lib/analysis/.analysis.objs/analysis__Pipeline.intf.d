lib/analysis/pipeline.mli: Access_count Ast Cfront Ir Points_to Scope_analysis Sharing Thread_analysis Varinfo
