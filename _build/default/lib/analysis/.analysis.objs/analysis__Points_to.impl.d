lib/analysis/points_to.ml: Array Ast Cfront Ctype Hashtbl Ir List Map Scope_analysis Sharing Stdlib Thread_analysis Varinfo Visit
