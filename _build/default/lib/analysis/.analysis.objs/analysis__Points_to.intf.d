lib/analysis/points_to.mli: Ir Scope_analysis
