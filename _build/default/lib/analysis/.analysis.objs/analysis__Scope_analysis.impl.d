lib/analysis/scope_analysis.ml: Access Ast Cfront Ir List Option Printf Sharing Varinfo Visit
