lib/analysis/scope_analysis.mli: Ir Varinfo
