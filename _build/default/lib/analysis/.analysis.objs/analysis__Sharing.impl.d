lib/analysis/sharing.ml: Format
