lib/analysis/sharing.mli: Format
