lib/analysis/thread_analysis.ml: Ast Cfront Ir List Option Scope_analysis Sharing Srcloc String Varinfo Visit
