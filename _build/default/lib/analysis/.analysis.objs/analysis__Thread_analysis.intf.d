lib/analysis/thread_analysis.mli: Ast Cfront Ir Scope_analysis Srcloc
