lib/analysis/varinfo.ml: Cfront Ctype Ir List Sharing String
