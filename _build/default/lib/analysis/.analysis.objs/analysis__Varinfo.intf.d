lib/analysis/varinfo.mli: Cfront Ctype Ir Sharing
