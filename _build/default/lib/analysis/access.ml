open Cfront

(* Read/write classification of variable occurrences, shared by Stage 1
   (static occurrence counts) and Stage 4's dynamic access estimation.

   Conventions:
   - plain assignment writes its l-value base; compound assignment and
     ++/-- both read and write it;
   - indices of an l-value array are reads;
   - taking an address [&x] is a read of [x];
   - dereferencing [*p] reads [p]; a write through [*p] is only a read of
     [p] here (the points-to stage resolves what it may write);
   - a declaration with an initializer is a write of the declared variable;
   - call arguments are reads. *)

type kind = Read | Write

type sink = kind -> Ir.Var_id.t -> unit

let rec visit resolve (f : sink) e =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Sizeof_type _ -> ()
  | Ast.Var name -> Option.iter (f Read) (resolve name)
  | Ast.Unary ((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec), lhs) ->
      visit_lvalue resolve f ~also_read:true lhs
  | Ast.Unary ((Ast.Addr | Ast.Neg | Ast.Not | Ast.Bnot | Ast.Deref), e) ->
      visit resolve f e
  | Ast.Binary (_, a, b) | Ast.Comma (a, b) ->
      visit resolve f a;
      visit resolve f b
  | Ast.Assign (op, lhs, rhs) ->
      visit_lvalue resolve f ~also_read:(op <> None) lhs;
      visit resolve f rhs
  | Ast.Cond (a, b, c) ->
      visit resolve f a;
      visit resolve f b;
      visit resolve f c
  | Ast.Call (_, args) -> List.iter (visit resolve f) args
  | Ast.Index (arr, idx) ->
      visit resolve f arr;
      visit resolve f idx
  | Ast.Cast (_, e) | Ast.Sizeof_expr e -> visit resolve f e

and visit_lvalue resolve f ~also_read e =
  match e with
  | Ast.Var name ->
      Option.iter
        (fun id ->
          f Write id;
          if also_read then f Read id)
        (resolve name)
  | Ast.Index (arr, idx) ->
      visit resolve f idx;
      visit_lvalue resolve f ~also_read arr
  | Ast.Unary (Ast.Deref, p) -> visit resolve f p
  | Ast.Cast (_, e) -> visit_lvalue resolve f ~also_read e
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Unary _ | Ast.Binary _ | Ast.Assign _ | Ast.Cond _ | Ast.Call _
  | Ast.Sizeof_type _ | Ast.Sizeof_expr _ | Ast.Comma _ ->
      visit resolve f e

let visit_decl resolve f (d : Ast.decl) =
  match d.Ast.d_init with
  | None -> ()
  | Some init ->
      Option.iter (f Write) (resolve d.Ast.d_name);
      List.iter (visit resolve f)
        (match init with
        | Ast.Init_expr e -> [ e ]
        | Ast.Init_list es -> es)
