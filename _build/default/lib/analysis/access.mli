open Cfront

(** Read/write classification of variable occurrences, shared by Stage 1
    and Stage 4's dynamic access estimation.  The conventions are
    documented at the top of the implementation. *)

type kind = Read | Write

type sink = kind -> Ir.Var_id.t -> unit

val visit : (string -> Ir.Var_id.t option) -> sink -> Ast.expr -> unit
(** [visit resolve sink e] reports every classified variable access in
    [e]; names [resolve] cannot map (function references, [NULL]) are
    skipped. *)

val visit_decl : (string -> Ir.Var_id.t option) -> sink -> Ast.decl -> unit
(** Accesses of a declaration: the initializer write plus its reads. *)
