open Cfront

(* Dynamic access estimation for Stage 4.

   The paper's partitioner needs "the number of accesses to program
   variables in both serial and multi-threaded applications": static
   occurrence counts scaled by
   - the trip counts of enclosing loops (statically-known bounds are used
     exactly; unknown loops get [default_trip]), and
   - a thread multiplier: accesses inside a function launched as a thread
     k times count k-fold. *)

type estimate = { mutable est_reads : int; mutable est_writes : int }

type t = {
  estimates : estimate Ir.Var_id.Map.t;
  thread_count : int;
}

let default_trip = 10

let find t id = Ir.Var_id.Map.find_opt id t.estimates

let reads t id = match find t id with Some e -> e.est_reads | None -> 0
let writes t id = match find t id with Some e -> e.est_writes | None -> 0
let total t id = reads t id + writes t id

let get_or_create map id =
  match Ir.Var_id.Map.find_opt id !map with
  | Some e -> e
  | None ->
      let e = { est_reads = 0; est_writes = 0 } in
      map := Ir.Var_id.Map.add id e !map;
      e

let rec visit_stmt resolve map ~weight (s : Ast.stmt) =
  let f kind id =
    let e = get_or_create map id in
    match kind with
    | Access.Read -> e.est_reads <- e.est_reads + weight
    | Access.Write -> e.est_writes <- e.est_writes + weight
  in
  List.iter (Access.visit resolve f) (Visit.shallow_exprs s);
  (match s.Ast.s_desc with
  | Ast.Sdecl ds | Ast.Sfor (Ast.For_decl ds, _, _, _) ->
      List.iter
        (fun (d : Ast.decl) ->
          if d.Ast.d_init <> None then
            Option.iter (f Access.Write) (resolve d.Ast.d_name))
        ds
  | Ast.Sfor ((Ast.For_none | Ast.For_expr _), _, _, _)
  | Ast.Sexpr _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _
  | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Snull -> ());
  let weight_of_loop s =
    match Thread_analysis.loop_bounds s with
    | Some (_, n) when n > 0 -> weight * n
    | Some _ | None -> weight * default_trip
  in
  match s.Ast.s_desc with
  | Ast.Sblock stmts -> List.iter (visit_stmt resolve map ~weight) stmts
  | Ast.Sif (_, a, b) ->
      visit_stmt resolve map ~weight a;
      Option.iter (visit_stmt resolve map ~weight) b
  | Ast.Swhile (_, body) | Ast.Sdo (body, _) ->
      visit_stmt resolve map ~weight:(weight * default_trip) body
  | Ast.Sfor (_, _, _, body) ->
      visit_stmt resolve map ~weight:(weight_of_loop s) body
  | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
  | Ast.Snull -> ()

let run (scope : Scope_analysis.t) (threads : Thread_analysis.t) =
  let symtab = scope.Scope_analysis.symtab in
  let program = Ir.Symtab.program symtab in
  let map = ref Ir.Var_id.Map.empty in
  let thread_count =
    match Thread_analysis.static_thread_count threads with
    | Some n when n > 0 -> n
    | Some _ | None -> default_trip
  in
  List.iter
    (fun (fn : Ast.func) ->
      let resolve name =
        Ir.Symtab.resolve_id symtab ~func:fn.Ast.f_name name
      in
      let launches =
        if Thread_analysis.is_thread_func threads fn.Ast.f_name then
          let own =
            List.filter
              (fun (s : Thread_analysis.site) ->
                String.equal s.Thread_analysis.thread_func fn.Ast.f_name)
              threads.Thread_analysis.sites
          in
          List.fold_left
            (fun acc (s : Thread_analysis.site) ->
              acc
              + match s.Thread_analysis.in_loop, s.Thread_analysis.loop_trip
                with
                | false, _ -> 1
                | true, Some n when n > 0 -> n
                | true, (Some _ | None) -> default_trip)
            0 own
        else 1
      in
      List.iter
        (visit_stmt resolve map ~weight:(max 1 launches))
        fn.Ast.f_body)
    (Ast.functions program);
  { estimates = !map; thread_count }
