(** Dynamic access estimation for Stage 4 partitioning.

    Static occurrence counts scaled by the trip counts of enclosing loops
    (known bounds exactly, unknown loops get {!default_trip}) and by how
    many times the enclosing function is launched as a thread. *)

type estimate = { mutable est_reads : int; mutable est_writes : int }

type t = {
  estimates : estimate Ir.Var_id.Map.t;
  thread_count : int;
      (** statically-determined thread count, or {!default_trip} *)
}

val default_trip : int
(** Multiplier assumed for loops with unknown bounds. *)

val run : Scope_analysis.t -> Thread_analysis.t -> t

val find : t -> Ir.Var_id.t -> estimate option

val reads : t -> Ir.Var_id.t -> int
val writes : t -> Ir.Var_id.t -> int

val total : t -> Ir.Var_id.t -> int
(** Estimated reads + writes. *)
