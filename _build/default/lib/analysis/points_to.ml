open Cfront

(* Stage 3: interprocedural points-to analysis.

   A dataflow analysis in the style the paper attributes to Cetus: pointer
   relationships are extracted from assignments (including through function
   calls), propagated over each function's CFG to a fixed point, and merged
   into a whole-program relationship map from pointer to pointed-at symbol.
   Relations are [Definite] when they hold on every path reaching a point
   and [Possible] otherwise (typically after if-else merges).

   Interprocedural flow: pointer-typed parameters receive the targets of
   the corresponding call arguments ([pthread_create]'s 4th argument flows
   into the thread function's parameter); pointer-returning functions get a
   return summary.  The whole thing iterates until the parameter/return
   summaries stabilize. *)

type definiteness = Definite | Possible

type target = Tvar of Ir.Var_id.t | Tnull | Tunknown

let target_compare = Stdlib.compare

module Target_map = Map.Make (struct
  type t = target
  let compare = target_compare
end)

type targets = definiteness Target_map.t

let weakest a b =
  match a, b with Definite, Definite -> Definite | _, _ -> Possible

(* Union where a binding missing on one side degrades to Possible: the
   other path may leave the pointer pointing elsewhere. *)
let join_targets (a : targets) (b : targets) : targets =
  Target_map.merge
    (fun _ da db ->
      match da, db with
      | Some da, Some db -> Some (weakest da db)
      | Some _, None | None, Some _ -> Some Possible
      | None, None -> None)
    a b

(* Accumulation for the whole-program relationship map (and for
   parameter/return summaries fed from several sites): a pointer with a
   single known target keeps the strongest definiteness seen, but as soon
   as two distinct targets accumulate every relation degrades to Possible
   — the paper's "possibly, often after analyzing pointers within an
   if-else statement". *)
let accum_targets (a : targets) (b : targets) : targets =
  let union =
    Target_map.union (fun _ da db ->
        Some (match da, db with Definite, _ | _, Definite -> Definite
                              | Possible, Possible -> Possible))
      a b
  in
  if Target_map.cardinal union > 1 then
    Target_map.map (fun _ -> Possible) union
  else union

let weaken (t : targets) : targets = Target_map.map (fun _ -> Possible) t

type state = Unreached | Reached of targets Ir.Var_id.Map.t

let state_equal a b =
  match a, b with
  | Unreached, Unreached -> true
  | Reached a, Reached b -> Ir.Var_id.Map.equal (Target_map.equal ( = )) a b
  | Unreached, Reached _ | Reached _, Unreached -> false

let state_join a b =
  match a, b with
  | Unreached, s | s, Unreached -> s
  | Reached a, Reached b ->
      Reached
        (Ir.Var_id.Map.merge
           (fun _ ta tb ->
             match ta, tb with
             | Some ta, Some tb -> Some (join_targets ta tb)
             | Some t, None | None, Some t -> Some (weaken t)
             | None, None -> None)
           a b)

module Flow = Ir.Dataflow.Forward (struct
  type t = state
  let bottom = Unreached
  let equal = state_equal
  let join = state_join
end)

(* --- analysis context --------------------------------------------------- *)

type t = {
  symtab : Ir.Symtab.t;
  relationships : targets Ir.Var_id.Map.t;
      (* whole-program pointer -> targets summary *)
}

type summaries = {
  mutable params : targets Ir.Var_id.Map.t;  (* per pointer-typed param *)
  mutable returns : (string, targets) Hashtbl.t;
}

let is_pointer_var symtab id =
  match Ir.Symtab.type_of symtab id with
  | Some ty -> Ctype.is_pointer ty
  | None -> false

(* Base variable of an l-value, if any. *)
let rec lvalue_base symtab ~func e =
  match e with
  | Ast.Var name -> Ir.Symtab.resolve_id symtab ?func name
  | Ast.Index (arr, _) -> lvalue_base symtab ~func arr
  | Ast.Cast (_, e) -> lvalue_base symtab ~func e
  | Ast.Unary _ | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _
  | Ast.Char_lit _ | Ast.Binary _ | Ast.Assign _ | Ast.Cond _ | Ast.Call _
  | Ast.Sizeof_type _ | Ast.Sizeof_expr _ | Ast.Comma _ -> None

let lookup_state env id : targets =
  match Ir.Var_id.Map.find_opt id env with
  | Some ts -> ts
  | None -> Target_map.singleton Tunknown Possible

(* Targets of an r-value expression under [env]. *)
let rec eval ctx ~func env e : targets =
  let symtab = ctx.symtab in
  match e with
  | Ast.Unary (Ast.Addr, lv) -> begin
      match lvalue_base symtab ~func lv with
      | Some base -> Target_map.singleton (Tvar base) Definite
      | None -> Target_map.singleton Tunknown Possible
    end
  | Ast.Var "NULL" | Ast.Int_lit 0 -> Target_map.singleton Tnull Definite
  | Ast.Var name -> begin
      match Ir.Symtab.resolve_id symtab ?func name with
      | Some id when is_pointer_var symtab id -> begin
          match Ir.Symtab.type_of symtab id with
          | Some (Ctype.Array _) ->
              (* an array r-value decays to its own storage *)
              Target_map.singleton (Tvar id) Definite
          | Some _ | None -> lookup_state env id
        end
      | Some _ | None -> Target_map.singleton Tunknown Possible
    end
  | Ast.Cast (_, e) -> eval ctx ~func env e
  | Ast.Cond (_, a, b) ->
      join_targets (eval ctx ~func env a) (eval ctx ~func env b)
  | Ast.Comma (_, b) -> eval ctx ~func env b
  | Ast.Binary ((Ast.Add | Ast.Sub), a, _) when pointer_expr ctx ~func a ->
      (* pointer arithmetic keeps pointing into the same object *)
      eval ctx ~func env a
  | Ast.Assign (_, _, rhs) -> eval ctx ~func env rhs
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Unary _ | Ast.Binary _ | Ast.Call _ | Ast.Index _
  | Ast.Sizeof_type _ | Ast.Sizeof_expr _ ->
      Target_map.singleton Tunknown Possible

and pointer_expr ctx ~func e =
  match e with
  | Ast.Var name -> begin
      match Ir.Symtab.resolve_id ctx.symtab ?func name with
      | Some id -> is_pointer_var ctx.symtab id
      | None -> false
    end
  | Ast.Cast (ty, _) -> Ctype.is_pointer ty
  | Ast.Unary (Ast.Addr, _) -> true
  | _ -> false

(* Evaluate with function-call awareness: calls use the return summary. *)
let eval_rhs ctx ~func ~sums env e : targets =
  match e with
  | Ast.Call (name, _) -> begin
      match Hashtbl.find_opt sums.returns name with
      | Some ts -> ts
      | None -> Target_map.singleton Tunknown Possible
    end
  | _ -> eval ctx ~func env e

(* --- transfer function -------------------------------------------------- *)

let bind_param sums id (ts : targets) =
  let before =
    match Ir.Var_id.Map.find_opt id sums.params with
    | Some t -> t
    | None -> Target_map.empty
  in
  let after = accum_targets before ts in
  if not (Target_map.equal ( = ) before after) then
    sums.params <- Ir.Var_id.Map.add id after sums.params

(* Record argument->parameter flow at a call site. *)
let bind_call_args ctx ~func ~sums env name args =
  let program = Ir.Symtab.program ctx.symtab in
  match name, args with
  | "pthread_create", [ _; _; farg; targ ] -> begin
      match Thread_analysis.func_name_of_arg farg with
      | Some tf_name -> begin
          match Ast.find_function program tf_name with
          | Some fn -> begin
              match fn.Ast.f_params with
              | [ (pname, pty) ] when Ctype.is_pointer pty ->
                  let id = Ir.Var_id.param ~func:tf_name pname in
                  bind_param sums id (eval ctx ~func env targ)
              | _ -> ()
            end
          | None -> ()
        end
      | None -> ()
    end
  | _, args -> begin
      match Ast.find_function program name with
      | None -> ()
      | Some fn ->
          let rec pair params args =
            match params, args with
            | (pname, pty) :: params', arg :: args' ->
                if Ctype.is_pointer pty then begin
                  let id = Ir.Var_id.param ~func:name pname in
                  bind_param sums id (eval ctx ~func env arg)
                end;
                pair params' args'
            | _, _ -> ()
          in
          pair fn.Ast.f_params args
    end

let transfer_assign ctx ~func ~sums env lhs rhs =
  let symtab = ctx.symtab in
  match lhs with
  | Ast.Var name -> begin
      match Ir.Symtab.resolve_id symtab ?func name with
      | Some id when is_pointer_var symtab id ->
          (* strong update *)
          Ir.Var_id.Map.add id (eval_rhs ctx ~func ~sums env rhs) env
      | Some _ | None -> env
    end
  | Ast.Unary (Ast.Deref, p) ->
      (* weak update of every pointer-typed target of p *)
      let p_targets = eval ctx ~func env p in
      let rhs_targets = weaken (eval_rhs ctx ~func ~sums env rhs) in
      Target_map.fold
        (fun tgt _ env ->
          match tgt with
          | Tvar id when is_pointer_var symtab id ->
              let merged = accum_targets (lookup_state env id) rhs_targets in
              Ir.Var_id.Map.add id merged env
          | Tvar _ | Tnull | Tunknown -> env)
        p_targets env
  | Ast.Index _ | Ast.Cast _ | Ast.Int_lit _ | Ast.Float_lit _
  | Ast.Str_lit _ | Ast.Char_lit _ | Ast.Unary _ | Ast.Binary _
  | Ast.Assign _ | Ast.Cond _ | Ast.Call _ | Ast.Sizeof_type _
  | Ast.Sizeof_expr _ | Ast.Comma _ -> env

let transfer_expr ctx ~func ~sums env e =
  let env = ref env in
  Visit.iter_expr
    (fun e ->
      match e with
      | Ast.Assign (None, lhs, rhs) ->
          env := transfer_assign ctx ~func ~sums !env lhs rhs
      | Ast.Call (name, args) ->
          bind_call_args ctx ~func ~sums !env name args
      | _ -> ())
    e;
  !env

let transfer_decl ctx ~func ~sums env (d : Ast.decl) =
  match d.Ast.d_init with
  | Some (Ast.Init_expr e) when Ctype.is_pointer d.Ast.d_type ->
      let env = transfer_expr ctx ~func ~sums env e in
      let id =
        match func with
        | Some f -> Ir.Var_id.local ~func:f d.Ast.d_name
        | None -> Ir.Var_id.global d.Ast.d_name
      in
      Ir.Var_id.Map.add id (eval_rhs ctx ~func ~sums env e) env
  | Some (Ast.Init_expr e) -> transfer_expr ctx ~func ~sums env e
  | Some (Ast.Init_list es) ->
      List.fold_left (fun env e -> transfer_expr ctx ~func ~sums env e) env es
  | None -> env

let transfer_node ctx ~func ~sums (node : Ir.Cfg.node) state =
  match state with
  | Unreached -> Unreached
  | Reached env ->
      let env =
        match node.Ir.Cfg.kind with
        | Ir.Cfg.Entry | Ir.Cfg.Exit | Ir.Cfg.Join -> env
        | Ir.Cfg.Condition e -> transfer_expr ctx ~func ~sums env e
        | Ir.Cfg.Statement s -> begin
            match s.Ast.s_desc with
            | Ast.Sexpr e -> transfer_expr ctx ~func ~sums env e
            | Ast.Sdecl ds ->
                List.fold_left
                  (fun env d -> transfer_decl ctx ~func ~sums env d)
                  env ds
            | Ast.Sreturn (Some e) -> begin
                let env = transfer_expr ctx ~func ~sums env e in
                (* record the return summary *)
                (match func with
                | Some fname ->
                    let ts = eval_rhs ctx ~func ~sums env e in
                    let before =
                      match Hashtbl.find_opt sums.returns fname with
                      | Some t -> t
                      | None -> Target_map.empty
                    in
                    Hashtbl.replace sums.returns fname
                      (accum_targets before ts)
                | None -> ());
                env
              end
            | Ast.Sreturn None | Ast.Snull | Ast.Sblock _ | Ast.Sif _
            | Ast.Swhile _ | Ast.Sdo _ | Ast.Sfor _ | Ast.Sbreak
            | Ast.Scontinue -> env
          end
      in
      Reached env

(* --- whole-program fixed point ------------------------------------------ *)

let global_init_env ctx =
  let program = Ir.Symtab.program ctx.symtab in
  List.fold_left
    (fun env (d : Ast.decl) ->
      match d.Ast.d_init with
      | Some (Ast.Init_expr e) when Ctype.is_pointer d.Ast.d_type ->
          Ir.Var_id.Map.add
            (Ir.Var_id.global d.Ast.d_name)
            (eval ctx ~func:None env e)
            env
      | Some _ | None -> env)
    Ir.Var_id.Map.empty (Ast.global_decls program)

let run symtab =
  let ctx = { symtab; relationships = Ir.Var_id.Map.empty } in
  let program = Ir.Symtab.program symtab in
  let funcs = Ast.functions program in
  let cfgs = List.map (fun fn -> (fn, Ir.Cfg.build fn)) funcs in
  let sums = { params = Ir.Var_id.Map.empty; returns = Hashtbl.create 8 } in
  let base_env = global_init_env ctx in
  let summary = ref Ir.Var_id.Map.empty in
  let stable = ref false in
  let rounds = ref 0 in
  (* Iterate per-function solves until parameter/return summaries and the
     accumulated relationship map stop changing.  The lattice is finite
     (variables x targets), so this terminates. *)
  while (not !stable) && !rounds < 20 do
    incr rounds;
    let before_params = sums.params in
    let before_returns = Hashtbl.copy sums.returns in
    let acc = ref Ir.Var_id.Map.empty in
    let accumulate env =
      Ir.Var_id.Map.iter
        (fun id ts ->
          let before =
            match Ir.Var_id.Map.find_opt id !acc with
            | Some t -> t
            | None -> Target_map.empty
          in
          acc := Ir.Var_id.Map.add id (accum_targets before ts) !acc)
        env
    in
    accumulate base_env;
    List.iter
      (fun ((fn : Ast.func), cfg) ->
        let func = Some fn.Ast.f_name in
        (* seed parameters from the call-site summaries *)
        let entry_env =
          List.fold_left
            (fun env (pname, pty) ->
              if Ctype.is_pointer pty then
                let id = Ir.Var_id.param ~func:fn.Ast.f_name pname in
                match Ir.Var_id.Map.find_opt id sums.params with
                | Some ts -> Ir.Var_id.Map.add id ts env
                | None -> env
              else env)
            base_env fn.Ast.f_params
        in
        let result =
          Flow.solve cfg ~init:(Reached entry_env)
            ~transfer:(transfer_node ctx ~func ~sums)
        in
        Array.iter
          (fun state ->
            match state with
            | Unreached -> ()
            | Reached env -> accumulate env)
          result.Flow.out_facts)
      cfgs;
    let params_stable =
      Ir.Var_id.Map.equal (Target_map.equal ( = )) before_params sums.params
    in
    let returns_stable =
      Hashtbl.length before_returns = Hashtbl.length sums.returns
      && Hashtbl.fold
           (fun k v ok ->
             ok
             && match Hashtbl.find_opt before_returns k with
                | Some v' -> Target_map.equal ( = ) v v'
                | None -> false)
           sums.returns true
    in
    let summary_stable =
      Ir.Var_id.Map.equal (Target_map.equal ( = )) !summary !acc
    in
    summary := !acc;
    stable := params_stable && returns_stable && summary_stable
  done;
  { symtab; relationships = !summary }

(* --- queries ------------------------------------------------------------ *)

let relationships t =
  Ir.Var_id.Map.fold
    (fun ptr ts acc ->
      Target_map.fold
        (fun tgt d acc -> (ptr, tgt, d) :: acc)
        ts acc)
    t.relationships []
  |> List.rev

let targets_of t ptr =
  match Ir.Var_id.Map.find_opt ptr t.relationships with
  | Some ts -> Target_map.bindings ts
  | None -> []

let definite_var_targets t ptr =
  List.filter_map
    (fun (tgt, d) ->
      match tgt, d with
      | Tvar id, Definite -> Some id
      | (Tvar _ | Tnull | Tunknown), (Definite | Possible) -> None)
    (targets_of t ptr)

(* Algorithm 2: propagate Shared status through definite relationships,
   iterating because a shared pointer may point at another pointer.
   [include_possible] extends propagation to Possible relations (a sound
   over-approximation the paper leaves out; off by default). *)
let refine_sharing ?(include_possible = false) (scope : Scope_analysis.t) t =
  let changed = ref true in
  while !changed do
    changed := false;
    Ir.Var_id.Map.iter
      (fun ptr ts ->
        match Scope_analysis.find scope ptr with
        | Some info
          when Sharing.status info.Varinfo.sharing = Sharing.Shared ->
            Target_map.iter
              (fun tgt d ->
                let eligible = d = Definite || include_possible in
                match tgt with
                | Tvar pointee when eligible -> begin
                    match Scope_analysis.find scope pointee with
                    | Some pinfo
                      when Sharing.status pinfo.Varinfo.sharing
                           <> Sharing.Shared ->
                        Sharing.refine pinfo.Varinfo.sharing Sharing.Shared;
                        changed := true
                    | Some _ | None -> ()
                  end
                | Tvar _ | Tnull | Tunknown -> ())
              ts
        | Some _ | None -> ())
      t.relationships
  done

(* Stage-3 post-processing: globals that are defined but entirely unused
   may be set private (the paper's example variable [global]). *)
let demote_unused_globals (scope : Scope_analysis.t) =
  List.iter
    (fun id ->
      let info = Scope_analysis.get scope id in
      if Varinfo.is_unused info then
        Sharing.refine info.Varinfo.sharing Sharing.Private)
    scope.Scope_analysis.global_vars

let target_to_string = function
  | Tvar id -> Ir.Var_id.to_string id
  | Tnull -> "NULL"
  | Tunknown -> "<unknown>"

let definiteness_to_string = function
  | Definite -> "definite"
  | Possible -> "possibly"
