(** Stage 3: interprocedural points-to analysis.

    Pointer relationships are extracted from assignments (including through
    function calls and [pthread_create]'s argument), propagated over each
    function's CFG to a fixed point, and merged into a whole-program
    relationship map.  Relations are [Definite] when they hold on every
    path and [Possible] otherwise. *)

type definiteness = Definite | Possible

type target = Tvar of Ir.Var_id.t | Tnull | Tunknown

type t

val run : Ir.Symtab.t -> t

val relationships : t -> (Ir.Var_id.t * target * definiteness) list
(** Every (pointer, target, definiteness) triple of the final map. *)

val targets_of : t -> Ir.Var_id.t -> (target * definiteness) list

val definite_var_targets : t -> Ir.Var_id.t -> Ir.Var_id.t list
(** Variables this pointer definitely points at. *)

val refine_sharing :
  ?include_possible:bool -> Scope_analysis.t -> t -> unit
(** The paper's Algorithm 2: iteratively mark the definite targets of
    shared pointers as Shared.  [include_possible] additionally propagates
    through [Possible] relations (sound over-approximation, off by default
    to match the paper). *)

val demote_unused_globals : Scope_analysis.t -> unit
(** Stage-3 post-processing: globals never read nor written become
    Private. *)

val target_to_string : target -> string
val definiteness_to_string : definiteness -> string
