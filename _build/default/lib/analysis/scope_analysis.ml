open Cfront

(* Stage 1: variable scope analysis.

   Extracts the paper's Table 4.1 basics for every variable — type, element
   count, static read/write occurrence counts, and the functions using
   (reading) or defining (writing) it — and assigns the initial sharing
   status: globals are Shared, everything else Unknown ("null").  The
   read/write classification lives in {!Access}; EXPERIMENTS.md discusses
   the two Table 4.1 cells where the thesis's own counts are internally
   inconsistent. *)

type t = {
  symtab : Ir.Symtab.t;
  table : Varinfo.t Ir.Var_id.Map.t;
  all_vars : Ir.Var_id.t list;     (* declaration order *)
  global_vars : Ir.Var_id.t list;
  local_vars : Ir.Var_id.t list;   (* locals and parameters *)
}

let find t id = Ir.Var_id.Map.find_opt id t.table

let get t id =
  match find t id with
  | Some info -> info
  | None ->
      invalid_arg
        (Printf.sprintf "Scope_analysis.get: unknown variable %s"
           (Ir.Var_id.to_string id))

let infos t = List.map (fun id -> get t id) t.all_vars

let sink table ~in_func kind id =
  match Ir.Var_id.Map.find_opt id table with
  | None -> ()
  | Some info -> begin
      match kind with
      | Access.Read -> Varinfo.record_read info ~in_func
      | Access.Write -> Varinfo.record_write info ~in_func
    end

let rec visit_stmt resolve f (s : Ast.stmt) =
  List.iter (Access.visit resolve f) (Visit.shallow_exprs s);
  (* declarations need the initializer-write rule, which shallow_exprs
     cannot express; redo them via visit_decl and subtract nothing — the
     shallow pass above already counted the initializer's reads, so only
     the write is added here *)
  (match s.Ast.s_desc with
  | Ast.Sdecl ds | Ast.Sfor (Ast.For_decl ds, _, _, _) ->
      List.iter
        (fun (d : Ast.decl) ->
          if d.Ast.d_init <> None then
            Option.iter (f Access.Write) (resolve d.Ast.d_name))
        ds
  | Ast.Sfor ((Ast.For_none | Ast.For_expr _), _, _, _)
  | Ast.Sexpr _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _
  | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Snull -> ());
  match s.Ast.s_desc with
  | Ast.Sblock stmts -> List.iter (visit_stmt resolve f) stmts
  | Ast.Sif (_, a, b) ->
      visit_stmt resolve f a;
      Option.iter (visit_stmt resolve f) b
  | Ast.Swhile (_, body) | Ast.Sdo (body, _) | Ast.Sfor (_, _, _, body) ->
      visit_stmt resolve f body
  | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
  | Ast.Snull -> ()

let run symtab =
  let entries = Ir.Symtab.all symtab in
  let table =
    List.fold_left
      (fun acc (e : Ir.Symtab.entry) ->
        Ir.Var_id.Map.add e.Ir.Symtab.id (Varinfo.create e) acc)
      Ir.Var_id.Map.empty entries
  in
  let program = Ir.Symtab.program symtab in
  (* global initializers count as writes at global scope *)
  let gresolve name = Ir.Symtab.resolve_id symtab name in
  List.iter
    (Access.visit_decl gresolve (sink table ~in_func:None))
    (Ast.global_decls program);
  List.iter
    (fun (fn : Ast.func) ->
      let resolve name =
        Ir.Symtab.resolve_id symtab ~func:fn.Ast.f_name name
      in
      let f = sink table ~in_func:(Some fn.Ast.f_name) in
      List.iter (visit_stmt resolve f) fn.Ast.f_body)
    (Ast.functions program);
  (* initial sharing: globals Shared, the rest stays Unknown *)
  Ir.Var_id.Map.iter
    (fun id (info : Varinfo.t) ->
      if Ir.Var_id.is_global id then
        Sharing.refine info.Varinfo.sharing Sharing.Shared)
    table;
  let ids_of sel =
    List.filter_map
      (fun (e : Ir.Symtab.entry) ->
        if sel e.Ir.Symtab.id then Some e.Ir.Symtab.id else None)
      entries
  in
  {
    symtab;
    table;
    all_vars = List.map (fun (e : Ir.Symtab.entry) -> e.Ir.Symtab.id) entries;
    global_vars = ids_of Ir.Var_id.is_global;
    local_vars = ids_of (fun id -> not (Ir.Var_id.is_global id));
  }
