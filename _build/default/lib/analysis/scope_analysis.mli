(** Stage 1: variable scope analysis.

    Extracts Table 4.1 basics for every variable (type, element count,
    static read/write occurrence counts, use-in/def-in function lists) and
    assigns the initial sharing status: globals [Shared], everything else
    [Unknown].  The occurrence-count conventions are documented at the top
    of the implementation. *)

type t = {
  symtab : Ir.Symtab.t;
  table : Varinfo.t Ir.Var_id.Map.t;
  all_vars : Ir.Var_id.t list;     (** declaration order *)
  global_vars : Ir.Var_id.t list;
  local_vars : Ir.Var_id.t list;   (** locals and parameters *)
}

val run : Ir.Symtab.t -> t

val find : t -> Ir.Var_id.t -> Varinfo.t option

val get : t -> Ir.Var_id.t -> Varinfo.t
(** @raise Invalid_argument on an unknown variable. *)

val infos : t -> Varinfo.t list
(** All variable records in declaration order. *)
