(* Sharing status of a variable (the paper's Table 4.2 lattice).

   A variable starts as [Unknown] ("null" in the paper).  Changes from
   [Unknown] are always accepted; after that, the status "may be refined
   from true to false or false to true once, but it will not revert". *)

type status = Unknown | Shared | Private

type record = { mutable status : status; mutable flipped : bool }

exception Refinement_rejected of status * status

let create () = { status = Unknown; flipped = false }

let of_status status = { status; flipped = false }

let status r = r.status

let to_bool_option r =
  match r.status with
  | Unknown -> None
  | Shared -> Some true
  | Private -> Some false

let refine r status =
  match r.status, status with
  | _, Unknown -> ()                       (* nothing to learn *)
  | Unknown, _ -> r.status <- status
  | Shared, Shared | Private, Private -> ()
  | (Shared | Private), _ when not r.flipped ->
      r.status <- status;
      r.flipped <- true
  | (Shared | Private), _ -> raise (Refinement_rejected (r.status, status))

let can_refine r status =
  match r.status, status with
  | _, Unknown | Unknown, _ -> true
  | Shared, Shared | Private, Private -> true
  | (Shared | Private), _ -> not r.flipped

let status_to_string = function
  | Unknown -> "null"
  | Shared -> "true"
  | Private -> "false"

let pp_status fmt s = Format.pp_print_string fmt (status_to_string s)
