(** Sharing status of a variable (the paper's Table 4.2 lattice).

    A variable starts as [Unknown] ("null" in the paper).  Changes from
    [Unknown] are always accepted; after that the status may flip between
    [Shared] and [Private] exactly once and never revert. *)

type status = Unknown | Shared | Private

type record

exception Refinement_rejected of status * status
(** Raised on a second [Shared]<->[Private] flip. *)

val create : unit -> record
(** A fresh record with status [Unknown]. *)

val of_status : status -> record

val status : record -> status

val to_bool_option : record -> bool option
(** [Some true] for [Shared], [Some false] for [Private], [None] for
    [Unknown] — the paper's true/false/null column values. *)

val refine : record -> status -> unit
(** Apply the refinement rule.  Refining to [Unknown] is a no-op.
    @raise Refinement_rejected on a second flip. *)

val can_refine : record -> status -> bool

val status_to_string : status -> string
(** ["true"], ["false"] or ["null"], as printed in Table 4.2. *)

val pp_status : Format.formatter -> status -> unit
