open Cfront

(* Stage 2: inter-thread analysis.

   Discovers every [pthread_create] site, whether it sits inside a loop and
   with which statically-known trip count, and classifies each variable by
   the paper's Algorithm 1: in multiple threads / in a single thread / not
   in a thread.  The stage-2 sharing refinement then marks every non-global
   variable Private (globals stay Shared), reproducing the third column of
   Table 4.2. *)

type presence = Not_in_thread | In_single_thread | In_multiple_threads

type site = {
  thread_func : string;       (* 3rd argument of pthread_create *)
  creator : string;           (* function containing the call *)
  in_loop : bool;
  loop_trip : int option;     (* trip count when the loop is for(v=0;v<N;v++) *)
  arg : Ast.expr option;      (* 4th argument, None when NULL *)
  arg_is_thread_id : bool;    (* argument is the create-loop counter *)
  call_loc : Srcloc.t;
}

type t = {
  sites : site list;
  thread_funcs : string list;   (* distinct, source order *)
  presence : presence Ir.Var_id.Map.t;
}

let presence_to_string = function
  | Not_in_thread -> "Not in Thread"
  | In_single_thread -> "In Single Thread"
  | In_multiple_threads -> "In Multiple Threads"

(* The function name passed as pthread_create's 3rd argument may appear as
   a bare identifier or behind casts/address-of. *)
let rec func_name_of_arg = function
  | Ast.Var name -> Some name
  | Ast.Cast (_, e) | Ast.Unary (Ast.Addr, e) -> func_name_of_arg e
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Unary _ | Ast.Binary _ | Ast.Assign _ | Ast.Cond _ | Ast.Call _
  | Ast.Index _ | Ast.Sizeof_type _ | Ast.Sizeof_expr _ | Ast.Comma _ ->
      None

let is_null_arg = function
  | Ast.Var "NULL" | Ast.Int_lit 0 -> true
  | Ast.Cast (_, Ast.Var "NULL") | Ast.Cast (_, Ast.Int_lit 0) -> true
  | _ -> false

(* Trip count of [for (v = 0; v < n; v++)] / [v <= n] shapes. *)
let loop_bounds (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sfor (init, Some cond, _, _) -> begin
      let counter_of_init = function
        | Ast.For_expr (Ast.Assign (None, Ast.Var v, Ast.Int_lit 0)) -> Some v
        | Ast.For_decl [ { Ast.d_name; d_init = Some (Ast.Init_expr (Ast.Int_lit 0)); _ } ] ->
            Some d_name
        | _ -> None
      in
      match counter_of_init init, cond with
      | Some v, Ast.Binary (Ast.Lt, Ast.Var v', Ast.Int_lit n) when v = v' ->
          Some (v, n)
      | Some v, Ast.Binary (Ast.Le, Ast.Var v', Ast.Int_lit n) when v = v' ->
          Some (v, n + 1)
      | _, (Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
           | Ast.Var _ | Ast.Unary _ | Ast.Binary _ | Ast.Assign _
           | Ast.Cond _ | Ast.Call _ | Ast.Index _ | Ast.Cast _
           | Ast.Sizeof_type _ | Ast.Sizeof_expr _ | Ast.Comma _) ->
          None
    end
  | Ast.Sfor (_, None, _, _) | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sblock _
  | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _ | Ast.Sreturn _ | Ast.Sbreak
  | Ast.Scontinue | Ast.Snull -> None

let expr_mentions name e =
  Visit.fold_expr
    (fun acc e ->
      acc || match e with Ast.Var n -> String.equal n name | _ -> false)
    false e

(* Walk a function body tracking the enclosing-loop context to find every
   pthread_create call. *)
let sites_of_func (fn : Ast.func) =
  let sites = ref [] in
  let record ~loop args loc =
    match args with
    | [ _tid; _attr; func_arg; thread_arg ] -> begin
        match func_name_of_arg func_arg with
        | None -> ()
        | Some thread_func ->
            let arg =
              if is_null_arg thread_arg then None else Some thread_arg
            in
            let in_loop = loop <> None in
            let loop_trip = Option.map snd loop in
            let arg_is_thread_id =
              match arg, loop with
              | Some a, Some (counter, _) -> expr_mentions counter a
              | _, _ -> false
            in
            sites :=
              { thread_func; creator = fn.Ast.f_name; in_loop; loop_trip;
                arg; arg_is_thread_id; call_loc = loc }
              :: !sites
      end
    | _ -> ()
  in
  let scan_exprs ~loop (s : Ast.stmt) =
    List.iter
      (Visit.iter_expr (fun e ->
           match e with
           | Ast.Call ("pthread_create", args) ->
               record ~loop args s.Ast.s_loc
           | _ -> ()))
      (Visit.shallow_exprs s)
  in
  let rec walk ~loop (s : Ast.stmt) =
    scan_exprs ~loop s;
    match s.Ast.s_desc with
    | Ast.Sblock stmts -> List.iter (walk ~loop) stmts
    | Ast.Sif (_, a, b) ->
        walk ~loop a;
        Option.iter (walk ~loop) b
    | Ast.Swhile (_, body) | Ast.Sdo (body, _) ->
        walk ~loop:(Some ("", -1)) body
    | Ast.Sfor (_, _, _, body) ->
        let bounds =
          match loop_bounds s with
          | Some (v, n) -> Some (v, n)
          | None -> Some ("", -1)
        in
        walk ~loop:bounds body
    | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak
    | Ast.Scontinue | Ast.Snull -> ()
  in
  List.iter (walk ~loop:None) fn.Ast.f_body;
  List.rev !sites

let dedup_keep_order items =
  List.fold_left
    (fun acc x -> if List.mem x acc then acc else acc @ [ x ])
    [] items

(* Algorithm 1 for one variable: how many threads is it in? *)
let presence_of ~sites ~thread_funcs (scope : Scope_analysis.t)
    (id : Ir.Var_id.t) =
  let info = Scope_analysis.get scope id in
  let appearing_in =
    match Ir.Var_id.scope_function id with
    | Some f -> [ f ]
    | None ->
        dedup_keep_order (info.Varinfo.use_in @ info.Varinfo.def_in)
  in
  let in_thread_funcs =
    List.filter (fun f -> List.mem f thread_funcs) appearing_in
  in
  if in_thread_funcs = [] then Not_in_thread
  else
    let launched_many proc =
      let launches =
        List.filter (fun s -> String.equal s.thread_func proc) sites
      in
      List.exists (fun s -> s.in_loop) launches || List.length launches > 1
    in
    if List.length in_thread_funcs > 1 || List.exists launched_many in_thread_funcs
    then In_multiple_threads
    else In_single_thread

let run (scope : Scope_analysis.t) =
  let program = Ir.Symtab.program scope.Scope_analysis.symtab in
  let sites = List.concat_map sites_of_func (Ast.functions program) in
  let thread_funcs =
    dedup_keep_order (List.map (fun s -> s.thread_func) sites)
  in
  let presence =
    List.fold_left
      (fun acc id ->
        Ir.Var_id.Map.add id
          (presence_of ~sites ~thread_funcs scope id)
          acc)
      Ir.Var_id.Map.empty scope.Scope_analysis.all_vars
  in
  { sites; thread_funcs; presence }

let presence t id =
  match Ir.Var_id.Map.find_opt id t.presence with
  | Some p -> p
  | None -> Not_in_thread

let is_thread_func t name = List.mem name t.thread_funcs

(* Total number of threads created, when statically known. *)
let static_thread_count t =
  let site_count s =
    match s.in_loop, s.loop_trip with
    | false, _ -> Some 1
    | true, Some n when n > 0 -> Some n
    | true, (Some _ | None) -> None
  in
  List.fold_left
    (fun acc s ->
      match acc, site_count s with
      | Some a, Some b -> Some (a + b)
      | _, _ -> None)
    (Some 0) t.sites

(* Stage-2 sharing refinement: non-globals become Private; globals keep the
   Shared status assigned in Stage 1 (Table 4.2, third column). *)
let refine_sharing (scope : Scope_analysis.t) (_t : t) =
  List.iter
    (fun id ->
      let info = Scope_analysis.get scope id in
      Sharing.refine info.Varinfo.sharing Sharing.Private)
    scope.Scope_analysis.local_vars
