open Cfront

(** Stage 2: inter-thread analysis (the paper's Algorithm 1).

    Discovers every [pthread_create] site and classifies each variable as
    appearing in multiple threads, a single thread, or no thread. *)

type presence = Not_in_thread | In_single_thread | In_multiple_threads

type site = {
  thread_func : string;     (** 3rd argument of [pthread_create] *)
  creator : string;         (** function containing the call *)
  in_loop : bool;
  loop_trip : int option;
      (** trip count when the loop matches [for (v = 0; v < N; v++)] *)
  arg : Ast.expr option;    (** 4th argument; [None] when NULL *)
  arg_is_thread_id : bool;  (** the argument is the create-loop counter *)
  call_loc : Srcloc.t;
}

type t = {
  sites : site list;
  thread_funcs : string list;  (** distinct, source order *)
  presence : presence Ir.Var_id.Map.t;
}

val run : Scope_analysis.t -> t

val presence : t -> Ir.Var_id.t -> presence

val is_thread_func : t -> string -> bool

val static_thread_count : t -> int option
(** Total threads created, when every site's multiplicity is statically
    known. *)

val refine_sharing : Scope_analysis.t -> t -> unit
(** Stage-2 refinement: non-globals become Private, globals keep Shared
    (Table 4.2, third column). *)

val presence_to_string : presence -> string
(** The strings returned by the paper's Algorithm 1. *)

val loop_bounds : Ast.stmt -> (string * int) option
(** [(counter, trip)] for loops shaped [for (v = 0; v < N; v++)]. *)

val func_name_of_arg : Ast.expr -> string option
(** Function name denoted by [pthread_create]'s 3rd argument (possibly
    behind casts or address-of). *)
