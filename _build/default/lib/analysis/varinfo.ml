open Cfront

(* Per-variable information accumulated by Stages 1-3 (the paper's
   Table 4.1): type, element count, static read/write occurrence counts,
   and the functions in which the variable is used (read) or defined
   (written). *)

type t = {
  id : Ir.Var_id.t;
  ty : Ctype.t;
  size : int;              (* element count: 1 for scalars, n for T[n] *)
  mem_size : int;          (* bytes occupied under the 32-bit ABI *)
  mutable reads : int;
  mutable writes : int;
  mutable use_in : string list;   (* functions reading it, source order *)
  mutable def_in : string list;   (* functions writing it, source order *)
  sharing : Sharing.record;
}

let create (entry : Ir.Symtab.entry) =
  let ty = entry.Ir.Symtab.ty in
  {
    id = entry.Ir.Symtab.id;
    ty;
    size = Ctype.element_count ty;
    mem_size = Ctype.sizeof ty;
    reads = 0;
    writes = 0;
    use_in = [];
    def_in = [];
    sharing = Sharing.create ();
  }

let add_once item items = if List.mem item items then items else items @ [ item ]

let record_read t ~in_func =
  t.reads <- t.reads + 1;
  match in_func with
  | None -> ()
  | Some f -> t.use_in <- add_once f t.use_in

let record_write t ~in_func =
  t.writes <- t.writes + 1;
  match in_func with
  | None -> ()
  | Some f -> t.def_in <- add_once f t.def_in

let is_unused t = t.reads = 0 && t.writes = 0

let list_or_null = function
  | [] -> "null"
  | fs -> String.concat ", " fs

(* One row of the paper's Table 4.1. *)
let to_row t =
  [
    t.id.Ir.Var_id.name;
    Ctype.to_string t.ty;
    string_of_int t.size;
    string_of_int t.reads;
    string_of_int t.writes;
    list_or_null t.use_in;
    list_or_null t.def_in;
  ]

let row_header = [ "Name"; "Type"; "Size"; "Rd"; "Wr"; "Use In"; "Def In" ]
