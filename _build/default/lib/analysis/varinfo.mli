open Cfront

(** Per-variable information accumulated by Stages 1–3 (the paper's
    Table 4.1). *)

type t = {
  id : Ir.Var_id.t;
  ty : Ctype.t;
  size : int;       (** element count: 1 for scalars, n for T[n] *)
  mem_size : int;   (** bytes occupied under the 32-bit ABI *)
  mutable reads : int;
  mutable writes : int;
  mutable use_in : string list;  (** functions reading it, source order *)
  mutable def_in : string list;  (** functions writing it, source order *)
  sharing : Sharing.record;
}

val create : Ir.Symtab.entry -> t

val record_read : t -> in_func:string option -> unit
val record_write : t -> in_func:string option -> unit

val is_unused : t -> bool
(** Never read nor written outside its declaration. *)

val to_row : t -> string list
(** One row of Table 4.1: name, type, size, rd, wr, use-in, def-in. *)

val row_header : string list
