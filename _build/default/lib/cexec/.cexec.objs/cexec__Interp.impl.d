lib/cexec/interp.ml: Analysis Array Ast Buffer Cfront Char Ctype Hashtbl List Lockset Option Printf Scc String Value
