lib/cexec/interp.mli: Ast Cfront Lockset Scc Value
