lib/cexec/lockset.ml: Hashtbl Int List Printf Set
