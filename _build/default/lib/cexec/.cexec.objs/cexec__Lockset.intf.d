lib/cexec/lockset.mli: Set
