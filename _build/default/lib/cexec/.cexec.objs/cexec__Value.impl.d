lib/cexec/value.ml: Ast Cfront Ctype Printf
