lib/cexec/value.mli: Ast Cfront Ctype
