open Cfront

(* Runtime values of the interpreted C subset.  Pointers carry the element
   type so pointer arithmetic and dereferences know their stride; a cast
   integer round-trips through [Vptr] unchanged (the translated programs
   pass core IDs through void* exactly like the originals passed thread
   IDs). *)

type t =
  | Vint of int
  | Vfloat of float
  | Vptr of { addr : int; elt : Ctype.t }
  | Vvoid

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun m -> raise (Type_error m)) fmt

let to_string = function
  | Vint n -> string_of_int n
  | Vfloat f -> Printf.sprintf "%g" f
  | Vptr { addr; elt } -> Printf.sprintf "%s*@%#x" (Ctype.to_string elt) addr
  | Vvoid -> "void"

let is_truthy = function
  | Vint n -> n <> 0
  | Vfloat f -> f <> 0.0
  | Vptr { addr; _ } -> addr <> 0
  | Vvoid -> type_error "void value in condition"

let as_int = function
  | Vint n -> n
  | Vfloat f -> int_of_float f
  | Vptr { addr; _ } -> addr
  | Vvoid -> type_error "void value used as int"

let as_float = function
  | Vint n -> float_of_int n
  | Vfloat f -> f
  | Vptr _ | Vvoid -> type_error "pointer/void value used as float"

let as_addr = function
  | Vptr { addr; _ } -> addr
  | Vint n -> n   (* NULL and integer-cast pointers *)
  | Vfloat _ | Vvoid -> type_error "value used as address"

let zero_of = function
  | Ctype.Float | Ctype.Double -> Vfloat 0.0
  | Ctype.Ptr elt -> Vptr { addr = 0; elt }
  | Ctype.Void -> Vvoid
  | Ctype.Char | Ctype.Short | Ctype.Int | Ctype.Long | Ctype.Unsigned _
  | Ctype.Named _ | Ctype.Array _ | Ctype.Func _ -> Vint 0

(* C-style conversion of a value to a declared type. *)
let convert ty v =
  match ty, v with
  | (Ctype.Float | Ctype.Double), v -> Vfloat (as_float v)
  | Ctype.Ptr elt, Vptr p -> Vptr { p with elt }
  | Ctype.Ptr elt, Vint n -> Vptr { addr = n; elt }
  | (Ctype.Char | Ctype.Short | Ctype.Int | Ctype.Long | Ctype.Unsigned _
    | Ctype.Named _), v -> Vint (as_int v)
  | Ctype.Void, _ -> Vvoid
  | (Ctype.Array _ | Ctype.Func _), v -> v
  | Ctype.Ptr _, (Vfloat _ | Vvoid) ->
      type_error "cannot convert %s to pointer" (to_string v)

let is_float_op a b =
  match a, b with
  | Vfloat _, _ | _, Vfloat _ -> true
  | _, _ -> false

(* Arithmetic following C's usual promotions, including pointer
   arithmetic scaled by the element size. *)
let binop (op : Ast.binop) a b =
  let bool_val c = Vint (if c then 1 else 0) in
  match op with
  | Ast.Add -> begin
      match a, b with
      | Vptr { addr; elt }, offset ->
          Vptr { addr = addr + (as_int offset * Ctype.sizeof elt); elt }
      | offset, Vptr { addr; elt } ->
          Vptr { addr = addr + (as_int offset * Ctype.sizeof elt); elt }
      | _ ->
          if is_float_op a b then Vfloat (as_float a +. as_float b)
          else Vint (as_int a + as_int b)
    end
  | Ast.Sub -> begin
      match a, b with
      | Vptr { addr; elt }, Vptr { addr = addr'; _ } ->
          Vint ((addr - addr') / Ctype.sizeof elt)
      | Vptr { addr; elt }, offset ->
          Vptr { addr = addr - (as_int offset * Ctype.sizeof elt); elt }
      | _ ->
          if is_float_op a b then Vfloat (as_float a -. as_float b)
          else Vint (as_int a - as_int b)
    end
  | Ast.Mul ->
      if is_float_op a b then Vfloat (as_float a *. as_float b)
      else Vint (as_int a * as_int b)
  | Ast.Div ->
      if is_float_op a b then Vfloat (as_float a /. as_float b)
      else begin
        let d = as_int b in
        if d = 0 then type_error "integer division by zero"
        else Vint (as_int a / d)
      end
  | Ast.Mod ->
      let d = as_int b in
      if d = 0 then type_error "modulo by zero" else Vint (as_int a mod d)
  | Ast.Eq ->
      if is_float_op a b then bool_val (as_float a = as_float b)
      else bool_val (as_int a = as_int b)
  | Ast.Ne ->
      if is_float_op a b then bool_val (as_float a <> as_float b)
      else bool_val (as_int a <> as_int b)
  | Ast.Lt ->
      if is_float_op a b then bool_val (as_float a < as_float b)
      else bool_val (as_int a < as_int b)
  | Ast.Gt ->
      if is_float_op a b then bool_val (as_float a > as_float b)
      else bool_val (as_int a > as_int b)
  | Ast.Le ->
      if is_float_op a b then bool_val (as_float a <= as_float b)
      else bool_val (as_int a <= as_int b)
  | Ast.Ge ->
      if is_float_op a b then bool_val (as_float a >= as_float b)
      else bool_val (as_int a >= as_int b)
  | Ast.Land -> bool_val (is_truthy a && is_truthy b)
  | Ast.Lor -> bool_val (is_truthy a || is_truthy b)
  | Ast.Band -> Vint (as_int a land as_int b)
  | Ast.Bor -> Vint (as_int a lor as_int b)
  | Ast.Bxor -> Vint (as_int a lxor as_int b)
  | Ast.Shl -> Vint (as_int a lsl as_int b)
  | Ast.Shr -> Vint (as_int a asr as_int b)

let unop (op : Ast.unop) v =
  match op with
  | Ast.Neg -> begin
      match v with
      | Vfloat f -> Vfloat (-.f)
      | v -> Vint (-as_int v)
    end
  | Ast.Not -> Vint (if is_truthy v then 0 else 1)
  | Ast.Bnot -> Vint (lnot (as_int v))
  | Ast.Deref | Ast.Addr | Ast.Preinc | Ast.Predec | Ast.Postinc
  | Ast.Postdec ->
      type_error "memory operator %s has no value-only form"
        (Ast.unop_to_string op)

(* Simulated cycle cost of evaluating one operator (used for the timing
   charge; memory traffic is charged separately). *)
let binop_cycles op a b =
  let fp = is_float_op a b in
  match op with
  | Ast.Add | Ast.Sub -> if fp then 3 else 1
  | Ast.Mul -> if fp then 3 else 10
  | Ast.Div -> if fp then 39 else 41
  | Ast.Mod -> 41
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> 1
  | Ast.Land | Ast.Lor -> 1
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr -> 1
