open Cfront

(** Runtime values of the interpreted C subset. *)

type t =
  | Vint of int
  | Vfloat of float
  | Vptr of { addr : int; elt : Ctype.t }
  | Vvoid

exception Type_error of string

val to_string : t -> string

val is_truthy : t -> bool
val as_int : t -> int
val as_float : t -> float
val as_addr : t -> int

val zero_of : Ctype.t -> t

val convert : Ctype.t -> t -> t
(** C-style conversion of a value to a declared type. *)

val binop : Ast.binop -> t -> t -> t
(** Usual arithmetic promotions; pointer arithmetic scales by the element
    size.  @raise Type_error on ill-typed operands, division by zero. *)

val unop : Ast.unop -> t -> t
(** Value-only unary operators (the memory operators are interpreted by
    {!Interp}). *)

val binop_cycles : Ast.binop -> t -> t -> int
(** Simulated cycle cost of one operator evaluation. *)
