lib/cfront/ast.ml: Ctype List Srcloc String
