lib/cfront/constfold.ml: Ast Ctype Visit
