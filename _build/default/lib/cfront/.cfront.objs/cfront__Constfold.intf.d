lib/cfront/constfold.mli: Ast
