lib/cfront/ctype.ml: Format List Printf String
