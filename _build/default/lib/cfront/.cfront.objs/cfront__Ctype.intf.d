lib/cfront/ctype.mli: Format
