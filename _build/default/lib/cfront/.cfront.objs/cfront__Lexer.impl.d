lib/cfront/lexer.ml: Buffer List Srcloc String Token
