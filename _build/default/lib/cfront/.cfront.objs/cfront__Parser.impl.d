lib/cfront/parser.ml: Array Ast Ctype Lexer List Preproc Srcloc Token
