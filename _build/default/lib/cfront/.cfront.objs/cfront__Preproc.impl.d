lib/cfront/preproc.ml: Buffer Fun Hashtbl List Srcloc String
