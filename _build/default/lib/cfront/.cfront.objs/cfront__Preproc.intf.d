lib/cfront/preproc.mli:
