lib/cfront/pretty.ml: Ast Buffer Ctype Float List Printf String
