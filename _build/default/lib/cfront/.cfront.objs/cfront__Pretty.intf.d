lib/cfront/pretty.mli: Ast
