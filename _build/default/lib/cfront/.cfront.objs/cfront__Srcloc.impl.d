lib/cfront/srcloc.ml: Format Printf
