lib/cfront/token.ml: Printf Srcloc
