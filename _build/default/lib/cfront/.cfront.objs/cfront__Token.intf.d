lib/cfront/token.mli: Srcloc
