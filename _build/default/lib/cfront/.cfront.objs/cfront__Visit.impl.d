lib/cfront/visit.ml: Ast List Option
