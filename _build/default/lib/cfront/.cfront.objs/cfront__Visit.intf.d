lib/cfront/visit.mli: Ast
