(* Abstract syntax of the C subset.  Statements carry source locations for
   diagnostics; expressions are kept location-free to keep pattern matches
   in the analyses light. *)

type unop =
  | Neg                          (* -e *)
  | Not                          (* !e *)
  | Bnot                         (* ~e *)
  | Deref                        (* *e *)
  | Addr                         (* &e *)
  | Preinc | Predec | Postinc | Postdec

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Char_lit of char
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of binop option * expr * expr   (* [lhs op= rhs]; [None] is [=] *)
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Cast of Ctype.t * expr
  | Sizeof_type of Ctype.t
  | Sizeof_expr of expr
  | Comma of expr * expr

type init =
  | Init_expr of expr
  | Init_list of expr list

type decl = {
  d_name : string;
  d_type : Ctype.t;
  d_init : init option;
  d_static : bool;
  d_loc : Srcloc.t;
}

type stmt = { s_desc : stmt_desc; s_loc : Srcloc.t }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of decl list                    (* one line: [int a = 0, b;] *)
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of for_init * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Snull                                 (* empty statement [;] *)

and for_init =
  | For_none
  | For_expr of expr
  | For_decl of decl list

type func = {
  f_name : string;
  f_ret : Ctype.t;
  f_params : (string * Ctype.t) list;
  f_body : stmt list;
  f_loc : Srcloc.t;
}

type global =
  | Gvar of decl
  | Gfunc of func
  | Gproto of string * Ctype.t * Srcloc.t  (* declaration-only prototype *)

type program = { p_includes : string list; p_globals : global list }

(* --- constructors ------------------------------------------------------ *)

let stmt ?(loc = Srcloc.dummy) s_desc = { s_desc; s_loc = loc }

let decl ?(loc = Srcloc.dummy) ?(static = false) ?init name ty =
  { d_name = name; d_type = ty; d_init = init; d_static = static; d_loc = loc }

let func ?(loc = Srcloc.dummy) name ~ret ~params body =
  { f_name = name; f_ret = ret; f_params = params; f_body = body; f_loc = loc }

let call name args = Call (name, args)

let var name = Var name

let int n = Int_lit n

let assign lhs rhs = Assign (None, lhs, rhs)

(* --- accessors --------------------------------------------------------- *)

let functions prog =
  List.filter_map
    (function Gfunc f -> Some f | Gvar _ | Gproto _ -> None)
    prog.p_globals

let global_decls prog =
  List.filter_map
    (function Gvar d -> Some d | Gfunc _ | Gproto _ -> None)
    prog.p_globals

let find_function prog name =
  List.find_opt (fun f -> String.equal f.f_name name) (functions prog)

let unop_to_string = function
  | Neg -> "-" | Not -> "!" | Bnot -> "~" | Deref -> "*" | Addr -> "&"
  | Preinc | Postinc -> "++"
  | Predec | Postdec -> "--"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | Land -> "&&" | Lor -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
