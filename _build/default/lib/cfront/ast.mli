(** Abstract syntax of the C subset. *)

type unop =
  | Neg | Not | Bnot | Deref | Addr
  | Preinc | Predec | Postinc | Postdec

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Char_lit of char
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of binop option * expr * expr
      (** [lhs op= rhs]; [None] is plain [=] *)
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Cast of Ctype.t * expr
  | Sizeof_type of Ctype.t
  | Sizeof_expr of expr
  | Comma of expr * expr

type init =
  | Init_expr of expr
  | Init_list of expr list

type decl = {
  d_name : string;
  d_type : Ctype.t;
  d_init : init option;
  d_static : bool;
  d_loc : Srcloc.t;
}

type stmt = { s_desc : stmt_desc; s_loc : Srcloc.t }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of decl list
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of for_init * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Snull

and for_init =
  | For_none
  | For_expr of expr
  | For_decl of decl list

type func = {
  f_name : string;
  f_ret : Ctype.t;
  f_params : (string * Ctype.t) list;
  f_body : stmt list;
  f_loc : Srcloc.t;
}

type global =
  | Gvar of decl
  | Gfunc of func
  | Gproto of string * Ctype.t * Srcloc.t

type program = { p_includes : string list; p_globals : global list }

(** {1 Constructors} *)

val stmt : ?loc:Srcloc.t -> stmt_desc -> stmt

val decl :
  ?loc:Srcloc.t -> ?static:bool -> ?init:init -> string -> Ctype.t -> decl

val func :
  ?loc:Srcloc.t ->
  string ->
  ret:Ctype.t ->
  params:(string * Ctype.t) list ->
  stmt list ->
  func

val call : string -> expr list -> expr
val var : string -> expr
val int : int -> expr
val assign : expr -> expr -> expr

(** {1 Accessors} *)

val functions : program -> func list
val global_decls : program -> decl list
val find_function : program -> string -> func option

val unop_to_string : unop -> string
val binop_to_string : binop -> string
