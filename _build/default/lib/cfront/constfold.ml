(* Constant folding over the AST.

   Folds integer and floating arithmetic, comparisons, logic and casts
   whose operands are literals, with the same semantics the interpreter
   implements (OCaml's truncating integer division; IEEE doubles).
   Divisions and modulos by zero are left unfolded so the runtime error
   surfaces at execution, not at compile time. *)

let as_float = function
  | Ast.Int_lit n -> Some (float_of_int n)
  | Ast.Float_lit f -> Some f
  | _ -> None

let bool_lit b = Ast.Int_lit (if b then 1 else 0)

let fold_int_binop op a b =
  match op with
  | Ast.Add -> Some (a + b)
  | Ast.Sub -> Some (a - b)
  | Ast.Mul -> Some (a * b)
  | Ast.Div -> if b = 0 then None else Some (a / b)
  | Ast.Mod -> if b = 0 then None else Some (a mod b)
  | Ast.Band -> Some (a land b)
  | Ast.Bor -> Some (a lor b)
  | Ast.Bxor -> Some (a lxor b)
  | Ast.Shl -> if b < 0 || b > 62 then None else Some (a lsl b)
  | Ast.Shr -> if b < 0 || b > 62 then None else Some (a asr b)
  | Ast.Eq -> Some (if a = b then 1 else 0)
  | Ast.Ne -> Some (if a <> b then 1 else 0)
  | Ast.Lt -> Some (if a < b then 1 else 0)
  | Ast.Gt -> Some (if a > b then 1 else 0)
  | Ast.Le -> Some (if a <= b then 1 else 0)
  | Ast.Ge -> Some (if a >= b then 1 else 0)
  | Ast.Land -> Some (if a <> 0 && b <> 0 then 1 else 0)
  | Ast.Lor -> Some (if a <> 0 || b <> 0 then 1 else 0)

let fold_float_binop op a b =
  match op with
  | Ast.Add -> Some (Ast.Float_lit (a +. b))
  | Ast.Sub -> Some (Ast.Float_lit (a -. b))
  | Ast.Mul -> Some (Ast.Float_lit (a *. b))
  | Ast.Div -> if b = 0.0 then None else Some (Ast.Float_lit (a /. b))
  | Ast.Eq -> Some (bool_lit (a = b))
  | Ast.Ne -> Some (bool_lit (a <> b))
  | Ast.Lt -> Some (bool_lit (a < b))
  | Ast.Gt -> Some (bool_lit (a > b))
  | Ast.Le -> Some (bool_lit (a <= b))
  | Ast.Ge -> Some (bool_lit (a >= b))
  | Ast.Land -> Some (bool_lit (a <> 0.0 && b <> 0.0))
  | Ast.Lor -> Some (bool_lit (a <> 0.0 || b <> 0.0))
  | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr -> None

(* An expression is effect-free when dropping it cannot change behaviour
   (no calls, assignments or increments). *)
let rec is_pure = function
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Var _ | Ast.Sizeof_type _ -> true
  | Ast.Unary ((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec), _) ->
      false
  | Ast.Unary ((Ast.Neg | Ast.Not | Ast.Bnot | Ast.Deref | Ast.Addr), e)
  | Ast.Cast (_, e) | Ast.Sizeof_expr e -> is_pure e
  | Ast.Binary (_, a, b) | Ast.Index (a, b) | Ast.Comma (a, b) ->
      is_pure a && is_pure b
  | Ast.Cond (a, b, c) -> is_pure a && is_pure b && is_pure c
  | Ast.Assign _ | Ast.Call _ -> false

let fold_node e =
  match e with
  | Ast.Binary (op, Ast.Int_lit a, Ast.Int_lit b) -> begin
      match fold_int_binop op a b with
      | Some n -> Ast.Int_lit n
      | None -> e
    end
  | Ast.Binary (op, (Ast.Float_lit _ as x), (Ast.Float_lit _ | Ast.Int_lit _ as y))
  | Ast.Binary (op, (Ast.Int_lit _ as x), (Ast.Float_lit _ as y)) -> begin
      match as_float x, as_float y with
      | Some a, Some b -> begin
          match fold_float_binop op a b with
          | Some lit -> lit
          | None -> e
        end
      | _, _ -> e
    end
  | Ast.Binary (op, x, y) -> begin
      (* algebraic identities that need only one literal operand *)
      match op with
      | Ast.Add when y = Ast.Int_lit 0 && is_pure x -> x
      | Ast.Add when x = Ast.Int_lit 0 && is_pure y -> y
      | Ast.Sub when y = Ast.Int_lit 0 && is_pure x -> x
      | Ast.Mul when y = Ast.Int_lit 1 && is_pure x -> x
      | Ast.Mul when x = Ast.Int_lit 1 && is_pure y -> y
      | Ast.Land when x = Ast.Int_lit 0 -> Ast.Int_lit 0
      | Ast.Lor
        when (match x with Ast.Int_lit n -> n <> 0 | _ -> false) ->
          Ast.Int_lit 1
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Eq | Ast.Ne
      | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Land | Ast.Lor | Ast.Band
      | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr -> e
    end
  | Ast.Unary (Ast.Neg, Ast.Int_lit n) -> Ast.Int_lit (-n)
  | Ast.Unary (Ast.Neg, Ast.Float_lit f) -> Ast.Float_lit (-.f)
  | Ast.Unary (Ast.Not, Ast.Int_lit n) -> bool_lit (n = 0)
  | Ast.Unary (Ast.Bnot, Ast.Int_lit n) -> Ast.Int_lit (lnot n)
  | Ast.Cond (Ast.Int_lit c, a, b) -> if c <> 0 then a else b
  | Ast.Cast (ty, Ast.Int_lit n) when Ctype.is_floating ty ->
      Ast.Float_lit (float_of_int n)
  | Ast.Cast (ty, Ast.Float_lit f) when Ctype.is_integer ty ->
      Ast.Int_lit (int_of_float f)
  | Ast.Cast (ty, (Ast.Int_lit _ as lit)) when Ctype.is_integer ty -> lit
  | Ast.Sizeof_type ty -> Ast.Int_lit (Ctype.sizeof ty)
  | e -> e

let expr e = Visit.map_expr fold_node e

let stmt s = Visit.map_stmt_exprs fold_node s

let program p = Visit.map_program_exprs fold_node p

(* Constant truth of a folded condition, for dead-branch elimination. *)
let const_truth e =
  match expr e with
  | Ast.Int_lit n -> Some (n <> 0)
  | Ast.Float_lit f -> Some (f <> 0.0)
  | _ -> None
