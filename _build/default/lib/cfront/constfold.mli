(** Constant folding over the AST, with the same semantics the interpreter
    implements (truncating integer division, IEEE doubles).  Division and
    modulo by zero are left unfolded so the runtime error still surfaces
    at execution. *)

val expr : Ast.expr -> Ast.expr
(** Fold bottom-up. *)

val stmt : Ast.stmt -> Ast.stmt

val program : Ast.program -> Ast.program

val is_pure : Ast.expr -> bool
(** No calls, assignments or increments: dropping the expression cannot
    change behaviour. *)

val const_truth : Ast.expr -> bool option
(** Constant truth of a folded condition, for dead-branch elimination. *)
