(* C types for the subset, with sizes following the 32-bit IA-32 (P54C) ABI
   of the SCC cores: pointers and longs are 4 bytes. *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Unsigned of t               (* unsigned variant of an integer type *)
  | Float
  | Double
  | Named of string             (* opaque library type, e.g. pthread_t *)
  | Ptr of t
  | Array of t * int option     (* element type, static length if known *)
  | Func of t * t list          (* return type, parameter types *)

let rec equal a b =
  match a, b with
  | Void, Void | Char, Char | Short, Short | Int, Int | Long, Long
  | Float, Float | Double, Double -> true
  | Unsigned a, Unsigned b -> equal a b
  | Named a, Named b -> String.equal a b
  | Ptr a, Ptr b -> equal a b
  | Array (a, la), Array (b, lb) -> equal a b && la = lb
  | Func (ra, pa), Func (rb, pb) ->
      equal ra rb
      && List.length pa = List.length pb
      && List.for_all2 equal pa pb
  | ( Void | Char | Short | Int | Long | Unsigned _ | Float | Double
    | Named _ | Ptr _ | Array _ | Func _ ), _ -> false

(* Sizes of the opaque pthread library types on 32-bit Linux; anything
   unknown is conservatively pointer-sized. *)
let named_type_size = function
  | "pthread_t" -> 4
  | "pthread_attr_t" -> 36
  | "pthread_mutex_t" -> 24
  | "pthread_mutexattr_t" -> 4
  | "pthread_cond_t" -> 48
  | "pthread_barrier_t" -> 20
  | "pthread_barrierattr_t" -> 4
  | "size_t" -> 4
  | "RCCE_FLAG" -> 4
  | "RCCE_COMM" -> 4
  | _ -> 4

let rec sizeof = function
  | Void -> 1
  | Char -> 1
  | Short -> 2
  | Int -> 4
  | Long -> 4
  | Unsigned t -> sizeof t
  | Float -> 4
  | Double -> 8
  | Named n -> named_type_size n
  | Ptr _ -> 4
  | Array (elt, Some n) -> n * sizeof elt
  | Array (_, None) -> 4          (* decays to a pointer *)
  | Func _ -> 4                   (* function pointer *)

(* Number of elements for the paper's Table 4.1 "Size" column: scalars are
   1, arrays are their static length. *)
let element_count = function
  | Array (_, Some n) -> n
  | Array (_, None) -> 1
  | Void | Char | Short | Int | Long | Unsigned _ | Float | Double
  | Named _ | Ptr _ | Func _ -> 1

let rec is_integer = function
  | Char | Short | Int | Long -> true
  | Unsigned t -> is_integer t
  | Void | Float | Double | Named _ | Ptr _ | Array _ | Func _ -> false

let is_floating = function
  | Float | Double -> true
  | Void | Char | Short | Int | Long | Unsigned _ | Named _ | Ptr _
  | Array _ | Func _ -> false

let is_pointer = function
  | Ptr _ | Array _ -> true
  | Void | Char | Short | Int | Long | Unsigned _ | Float | Double
  | Named _ | Func _ -> false

let is_scalar t = is_integer t || is_floating t || is_pointer t

let pointee = function
  | Ptr t -> Some t
  | Array (t, _) -> Some t
  | Void | Char | Short | Int | Long | Unsigned _ | Float | Double
  | Named _ | Func _ -> None

(* Render a type.  [decl name] prints a full declarator, handling the
   inside-out C syntax for pointers to arrays etc. well enough for the
   subset (pointer chains, arrays of scalars/pointers). *)
let rec base_to_string = function
  | Void -> "void"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Unsigned t -> "unsigned " ^ base_to_string t
  | Float -> "float"
  | Double -> "double"
  | Named n -> n
  | Ptr t -> base_to_string t ^ "*"
  | Array (t, Some n) -> Printf.sprintf "%s[%d]" (base_to_string t) n
  | Array (t, None) -> base_to_string t ^ "[]"
  | Func (r, ps) ->
      Printf.sprintf "%s(*)(%s)" (base_to_string r)
        (String.concat ", " (List.map base_to_string ps))

let to_string = base_to_string

let rec decl t name =
  match t with
  | Ptr inner -> decl inner ("*" ^ name)
  | Array (inner, Some n) -> decl inner (Printf.sprintf "%s[%d]" name n)
  | Array (inner, None) -> decl inner (name ^ "[]")
  | Func (ret, params) ->
      let ps = String.concat ", " (List.map base_to_string params) in
      Printf.sprintf "%s (%s)(%s)" (base_to_string ret) name ps
  | Void | Char | Short | Int | Long | Unsigned _ | Float | Double
  | Named _ ->
      base_to_string t ^ " " ^ name

let pp fmt t = Format.pp_print_string fmt (to_string t)
