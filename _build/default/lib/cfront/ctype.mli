(** C types for the subset.

    Sizes follow the 32-bit IA-32 ABI of the SCC's P54C cores: pointers and
    [long] are 4 bytes. *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Unsigned of t
  | Float
  | Double
  | Named of string      (** opaque library type, e.g. [pthread_t] *)
  | Ptr of t
  | Array of t * int option
  | Func of t * t list   (** return type, parameter types *)

val equal : t -> t -> bool

val sizeof : t -> int
(** Size in bytes under the 32-bit ABI.  Unsized arrays and functions are
    pointer-sized (they decay). *)

val element_count : t -> int
(** The paper's Table 4.1 "Size" column: 1 for scalars, static length for
    arrays. *)

val is_integer : t -> bool
val is_floating : t -> bool
val is_pointer : t -> bool
(** [true] for pointers and arrays (which decay). *)

val is_scalar : t -> bool

val pointee : t -> t option
(** Element/pointee type of a pointer or array. *)

val to_string : t -> string
(** Abstract rendering, e.g. ["int*"], ["int[3]"]. *)

val decl : t -> string -> string
(** [decl t name] renders a C declarator, e.g. [decl (Ptr Int) "p"] is
    ["int *p"], [decl (Array (Int, Some 3)) "sum"] is ["int sum[3]"]. *)

val pp : Format.formatter -> t -> unit
