(* Hand-written lexer for the C subset.  Preprocessor lines are not expanded:
   [#include <...>] lines are recorded verbatim (the translator re-emits or
   replaces them) and every other [#] line is skipped, matching how the
   paper's framework is fed already-preprocessed benchmark sources. *)

type t = {
  src : string;
  file : string;
  mutable pos : int;          (* byte offset of the next character *)
  mutable line : int;
  mutable col : int;
  mutable includes : string list;  (* "#include" lines, reverse order *)
}

let create ?(file = "<string>") src =
  { src; file; pos = 0; line = 1; col = 1; includes = [] }

let includes t = List.rev t.includes

let location t = Srcloc.make ~file:t.file ~line:t.line ~col:t.col

let at_end t = t.pos >= String.length t.src

let peek t = if at_end t then '\000' else t.src.[t.pos]

let peek2 t =
  if t.pos + 1 >= String.length t.src then '\000' else t.src.[t.pos + 1]

let advance t =
  if not (at_end t) then begin
    if t.src.[t.pos] = '\n' then begin
      t.line <- t.line + 1;
      t.col <- 1
    end
    else t.col <- t.col + 1;
    t.pos <- t.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

(* Consume to end of the current line, returning the text consumed. *)
let rest_of_line t =
  let start = t.pos in
  while (not (at_end t)) && peek t <> '\n' do
    advance t
  done;
  String.sub t.src start (t.pos - start)

let rec skip_trivia t =
  match peek t with
  | ' ' | '\t' | '\r' | '\n' ->
      advance t;
      skip_trivia t
  | '/' when peek2 t = '/' ->
      ignore (rest_of_line t);
      skip_trivia t
  | '/' when peek2 t = '*' ->
      let loc = location t in
      advance t;
      advance t;
      let rec close () =
        if at_end t then Srcloc.error loc "unterminated comment"
        else if peek t = '*' && peek2 t = '/' then begin
          advance t;
          advance t
        end
        else begin
          advance t;
          close ()
        end
      in
      close ();
      skip_trivia t
  | '#' ->
      let line = rest_of_line t in
      let trimmed = String.trim line in
      if String.length trimmed >= 8 && String.sub trimmed 0 8 = "#include" then
        t.includes <- trimmed :: t.includes;
      skip_trivia t
  | _ -> ()

let lex_number t loc =
  let start = t.pos in
  while is_digit (peek t) do
    advance t
  done;
  let exponent_follows () =
    (peek t = 'e' || peek t = 'E')
    && (is_digit (peek2 t)
       || ((peek2 t = '+' || peek2 t = '-')
          && t.pos + 2 < String.length t.src
          && is_digit t.src.[t.pos + 2]))
  in
  let is_float =
    (peek t = '.' && is_digit (peek2 t))
    || (peek t = '.' && not (is_ident_start (peek2 t)))
    || exponent_follows ()
  in
  if is_float then begin
    if peek t = '.' then begin
      advance t;
      while is_digit (peek t) do
        advance t
      done
    end;
    if exponent_follows () then begin
      advance t;
      if peek t = '+' || peek t = '-' then advance t;
      while is_digit (peek t) do
        advance t
      done
    end;
    let text = String.sub t.src start (t.pos - start) in
    (* consume float suffixes *)
    if peek t = 'f' || peek t = 'F' || peek t = 'l' || peek t = 'L' then
      advance t;
    match float_of_string_opt text with
    | Some f -> Token.Float_lit f
    | None -> Srcloc.error loc "malformed float literal %S" text
  end
  else begin
    let text = String.sub t.src start (t.pos - start) in
    (* consume integer suffixes: u, l, ul, ll, ull ... *)
    while
      peek t = 'u' || peek t = 'U' || peek t = 'l' || peek t = 'L'
    do
      advance t
    done;
    match int_of_string_opt text with
    | Some n -> Token.Int_lit n
    | None -> Srcloc.error loc "malformed integer literal %S" text
  end

let escape_char loc = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> Srcloc.error loc "unsupported escape '\\%c'" c

let lex_string t loc =
  advance t;
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_end t then Srcloc.error loc "unterminated string literal"
    else
      match peek t with
      | '"' -> advance t
      | '\\' ->
          advance t;
          let c = peek t in
          advance t;
          Buffer.add_char buf (escape_char loc c);
          loop ()
      | c ->
          advance t;
          Buffer.add_char buf c;
          loop ()
  in
  loop ();
  Token.Str_lit (Buffer.contents buf)

let lex_char t loc =
  advance t;
  let c =
    match peek t with
    | '\\' ->
        advance t;
        let c = peek t in
        advance t;
        escape_char loc c
    | c ->
        advance t;
        c
  in
  if peek t <> '\'' then Srcloc.error loc "unterminated character literal";
  advance t;
  Token.Char_lit c

(* Multi-character punctuation, longest match first. *)
let lex_punct t loc =
  let two a = advance t; advance t; a in
  let three a = advance t; advance t; advance t; a in
  let one a = advance t; a in
  match peek t, peek2 t with
  | '<', '<' when t.pos + 2 < String.length t.src && t.src.[t.pos + 2] = '=' ->
      three Token.Lt_lt_eq
  | '>', '>' when t.pos + 2 < String.length t.src && t.src.[t.pos + 2] = '=' ->
      three Token.Gt_gt_eq
  | '+', '+' -> two Token.Plus_plus
  | '-', '-' -> two Token.Minus_minus
  | '-', '>' -> two Token.Arrow
  | '+', '=' -> two Token.Plus_eq
  | '-', '=' -> two Token.Minus_eq
  | '*', '=' -> two Token.Star_eq
  | '/', '=' -> two Token.Slash_eq
  | '%', '=' -> two Token.Percent_eq
  | '&', '=' -> two Token.Amp_eq
  | '|', '=' -> two Token.Bar_eq
  | '^', '=' -> two Token.Caret_eq
  | '=', '=' -> two Token.Eq_eq
  | '!', '=' -> two Token.Bang_eq
  | '<', '=' -> two Token.Le
  | '>', '=' -> two Token.Ge
  | '<', '<' -> two Token.Lt_lt
  | '>', '>' -> two Token.Gt_gt
  | '&', '&' -> two Token.Amp_amp
  | '|', '|' -> two Token.Bar_bar
  | '+', _ -> one Token.Plus
  | '-', _ -> one Token.Minus
  | '*', _ -> one Token.Star
  | '/', _ -> one Token.Slash
  | '%', _ -> one Token.Percent
  | '=', _ -> one Token.Eq
  | '<', _ -> one Token.Lt
  | '>', _ -> one Token.Gt
  | '!', _ -> one Token.Bang
  | '&', _ -> one Token.Amp
  | '|', _ -> one Token.Bar
  | '^', _ -> one Token.Caret
  | '~', _ -> one Token.Tilde
  | '?', _ -> one Token.Question
  | ':', _ -> one Token.Colon
  | ';', _ -> one Token.Semi
  | ',', _ -> one Token.Comma
  | '(', _ -> one Token.Lparen
  | ')', _ -> one Token.Rparen
  | '[', _ -> one Token.Lbracket
  | ']', _ -> one Token.Rbracket
  | '{', _ -> one Token.Lbrace
  | '}', _ -> one Token.Rbrace
  | '.', _ -> one Token.Dot
  | c, _ -> Srcloc.error loc "unexpected character %C" c

let next t : Token.located =
  skip_trivia t;
  let loc = location t in
  if at_end t then { Token.tok = Token.Eof; loc }
  else
    let tok =
      let c = peek t in
      if is_ident_start c then begin
        let start = t.pos in
        while is_ident_char (peek t) do
          advance t
        done;
        let name = String.sub t.src start (t.pos - start) in
        match Token.keyword_of_string name with
        | Some k -> Token.Kw k
        | None -> Token.Ident name
      end
      else if is_digit c then lex_number t loc
      else if c = '"' then lex_string t loc
      else if c = '\'' then lex_char t loc
      else lex_punct t loc
    in
    { Token.tok; loc }

let tokenize ?file src =
  let t = create ?file src in
  let rec loop acc =
    let lt = next t in
    if lt.Token.tok = Token.Eof then List.rev (lt :: acc) else loop (lt :: acc)
  in
  let toks = loop [] in
  (toks, includes t)
