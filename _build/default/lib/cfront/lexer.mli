(** Hand-written lexer for the C subset.

    Preprocessor directives are not expanded: [#include] lines are collected
    for the translator to re-emit, and all other [#] lines are skipped. *)

type t

val create : ?file:string -> string -> t
(** [create ~file src] builds a lexer over [src]; [file] is used in
    diagnostics (default ["<string>"]). *)

val next : t -> Token.located
(** Return the next token, advancing the lexer.  Returns {!Token.Eof}
    forever once the input is exhausted.
    @raise Srcloc.Error on malformed input. *)

val includes : t -> string list
(** [#include] lines seen so far, in source order. *)

val tokenize : ?file:string -> string -> Token.located list * string list
(** Lex a whole string: all tokens (ending with [Eof]) and the include
    lines. *)
