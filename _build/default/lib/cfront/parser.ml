(* Recursive-descent parser for the C subset.

   Type names: besides the built-in specifiers, identifiers registered as
   type names (the pthread/RCCE opaque types by default) start declarations,
   which is how [pthread_t threads[3];] parses without a full typedef
   machinery. *)

let default_type_names =
  [ "pthread_t"; "pthread_attr_t"; "pthread_mutex_t"; "pthread_mutexattr_t";
    "pthread_cond_t"; "pthread_condattr_t"; "pthread_barrier_t";
    "pthread_barrierattr_t"; "size_t"; "ssize_t"; "FILE";
    "RCCE_FLAG"; "RCCE_COMM" ]

type t = {
  toks : Token.located array;
  mutable pos : int;
  mutable type_names : string list;
  includes : string list;
}

let create ?(type_names = default_type_names) ?file src =
  (* macros are expanded before lexing; sources without directives pass
     through unchanged *)
  let src = Preproc.expand ?file src in
  let toks, includes = Lexer.tokenize ?file src in
  { toks = Array.of_list toks; pos = 0; type_names; includes }

let register_type_name t name =
  if not (List.mem name t.type_names) then
    t.type_names <- name :: t.type_names

let cur t = t.toks.(t.pos)
let peek t = (cur t).Token.tok
let peek_at t n =
  let i = t.pos + n in
  if i < Array.length t.toks then t.toks.(i).Token.tok else Token.Eof

let loc t = (cur t).Token.loc

let advance t = if t.pos < Array.length t.toks - 1 then t.pos <- t.pos + 1

let fail t fmt = Srcloc.error (loc t) fmt

let expect t tok =
  if Token.equal (peek t) tok then advance t
  else
    fail t "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (peek t))

let accept t tok =
  if Token.equal (peek t) tok then begin
    advance t;
    true
  end
  else false

let expect_ident t =
  match peek t with
  | Token.Ident name ->
      advance t;
      name
  | other -> fail t "expected identifier, found '%s'" (Token.to_string other)

(* --- types -------------------------------------------------------------- *)

let is_type_start t =
  match peek t with
  | Token.Kw
      ( Token.Kvoid | Token.Kchar | Token.Kint | Token.Klong | Token.Kshort
      | Token.Kunsigned | Token.Ksigned | Token.Kfloat | Token.Kdouble
      | Token.Kconst | Token.Kvolatile | Token.Kstatic | Token.Kextern ) ->
      true
  | Token.Ident name -> List.mem name t.type_names
  | _ -> false

(* Parse declaration specifiers: qualifiers + one base type.  Returns
   (static?, base type). *)
let parse_specifiers t =
  let static = ref false in
  let unsigned = ref false in
  let base = ref None in
  let set ty =
    match !base with
    | None -> base := Some ty
    | Some Ctype.Long when Ctype.equal ty Ctype.Int -> ()  (* long int *)
    | Some Ctype.Int when Ctype.equal ty Ctype.Long -> base := Some Ctype.Long
    | Some _ -> fail t "duplicate type specifier"
  in
  let rec loop () =
    match peek t with
    | Token.Kw Token.Kstatic -> advance t; static := true; loop ()
    | Token.Kw (Token.Kextern | Token.Kconst | Token.Kvolatile
               | Token.Ksigned) ->
        advance t; loop ()
    | Token.Kw Token.Kunsigned -> advance t; unsigned := true; loop ()
    | Token.Kw Token.Kvoid -> advance t; set Ctype.Void; loop ()
    | Token.Kw Token.Kchar -> advance t; set Ctype.Char; loop ()
    | Token.Kw Token.Kshort -> advance t; set Ctype.Short; loop ()
    | Token.Kw Token.Kint -> advance t; set Ctype.Int; loop ()
    | Token.Kw Token.Klong -> advance t; set Ctype.Long; loop ()
    | Token.Kw Token.Kfloat -> advance t; set Ctype.Float; loop ()
    | Token.Kw Token.Kdouble -> advance t; set Ctype.Double; loop ()
    | Token.Ident name when List.mem name t.type_names && !base = None ->
        advance t; set (Ctype.Named name); loop ()
    | _ -> ()
  in
  loop ();
  let base =
    match !base with
    | Some ty -> ty
    | None -> if !unsigned then Ctype.Int else fail t "expected type specifier"
  in
  let base = if !unsigned then Ctype.Unsigned base else base in
  (!static, base)

(* Abstract declarator for casts and sizeof: pointers only — the subset's
   casts are like "(void*)" and "(int)". *)
let parse_abstract_declarator t base =
  let ty = ref base in
  while accept t Token.Star do
    ty := Ctype.Ptr !ty
  done;
  !ty

(* --- expressions -------------------------------------------------------- *)

let rec parse_expr t = parse_comma t

and parse_comma t =
  let e = parse_assign t in
  if accept t Token.Comma then Ast.Comma (e, parse_comma t) else e

and parse_assign t =
  let lhs = parse_cond t in
  let mk op =
    advance t;
    Ast.Assign (op, lhs, parse_assign t)
  in
  match peek t with
  | Token.Eq -> mk None
  | Token.Plus_eq -> mk (Some Ast.Add)
  | Token.Minus_eq -> mk (Some Ast.Sub)
  | Token.Star_eq -> mk (Some Ast.Mul)
  | Token.Slash_eq -> mk (Some Ast.Div)
  | Token.Percent_eq -> mk (Some Ast.Mod)
  | Token.Amp_eq -> mk (Some Ast.Band)
  | Token.Bar_eq -> mk (Some Ast.Bor)
  | Token.Caret_eq -> mk (Some Ast.Bxor)
  | Token.Lt_lt_eq -> mk (Some Ast.Shl)
  | Token.Gt_gt_eq -> mk (Some Ast.Shr)
  | _ -> lhs

and parse_cond t =
  let c = parse_binary t 0 in
  if accept t Token.Question then begin
    let e1 = parse_assign t in
    expect t Token.Colon;
    let e2 = parse_cond t in
    Ast.Cond (c, e1, e2)
  end
  else c

(* Binary operators by precedence level, lowest first. *)
and binop_of_token = function
  | Token.Bar_bar -> Some (0, Ast.Lor)
  | Token.Amp_amp -> Some (1, Ast.Land)
  | Token.Bar -> Some (2, Ast.Bor)
  | Token.Caret -> Some (3, Ast.Bxor)
  | Token.Amp -> Some (4, Ast.Band)
  | Token.Eq_eq -> Some (5, Ast.Eq)
  | Token.Bang_eq -> Some (5, Ast.Ne)
  | Token.Lt -> Some (6, Ast.Lt)
  | Token.Gt -> Some (6, Ast.Gt)
  | Token.Le -> Some (6, Ast.Le)
  | Token.Ge -> Some (6, Ast.Ge)
  | Token.Lt_lt -> Some (7, Ast.Shl)
  | Token.Gt_gt -> Some (7, Ast.Shr)
  | Token.Plus -> Some (8, Ast.Add)
  | Token.Minus -> Some (8, Ast.Sub)
  | Token.Star -> Some (9, Ast.Mul)
  | Token.Slash -> Some (9, Ast.Div)
  | Token.Percent -> Some (9, Ast.Mod)
  | _ -> None

and parse_binary t min_level =
  let lhs = ref (parse_unary t) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek t) with
    | Some (level, op) when level >= min_level ->
        advance t;
        let rhs = parse_binary t (level + 1) in
        lhs := Ast.Binary (op, !lhs, rhs)
    | Some _ | None -> continue := false
  done;
  !lhs

and parse_unary t =
  match peek t with
  | Token.Minus -> advance t; Ast.Unary (Ast.Neg, parse_unary t)
  | Token.Bang -> advance t; Ast.Unary (Ast.Not, parse_unary t)
  | Token.Tilde -> advance t; Ast.Unary (Ast.Bnot, parse_unary t)
  | Token.Star -> advance t; Ast.Unary (Ast.Deref, parse_unary t)
  | Token.Amp -> advance t; Ast.Unary (Ast.Addr, parse_unary t)
  | Token.Plus -> advance t; parse_unary t
  | Token.Plus_plus -> advance t; Ast.Unary (Ast.Preinc, parse_unary t)
  | Token.Minus_minus -> advance t; Ast.Unary (Ast.Predec, parse_unary t)
  | Token.Kw Token.Ksizeof ->
      advance t;
      if Token.equal (peek t) Token.Lparen && is_type_start_at t 1 then begin
        expect t Token.Lparen;
        let _, base = parse_specifiers t in
        let ty = parse_abstract_declarator t base in
        expect t Token.Rparen;
        Ast.Sizeof_type ty
      end
      else Ast.Sizeof_expr (parse_unary t)
  | Token.Lparen when is_type_start_at t 1 ->
      (* cast expression *)
      expect t Token.Lparen;
      let _, base = parse_specifiers t in
      let ty = parse_abstract_declarator t base in
      expect t Token.Rparen;
      Ast.Cast (ty, parse_unary t)
  | _ -> parse_postfix t

and is_type_start_at t n =
  match peek_at t n with
  | Token.Kw
      ( Token.Kvoid | Token.Kchar | Token.Kint | Token.Klong | Token.Kshort
      | Token.Kunsigned | Token.Ksigned | Token.Kfloat | Token.Kdouble
      | Token.Kconst ) ->
      true
  | Token.Ident name -> List.mem name t.type_names
  | _ -> false

and parse_postfix t =
  let e = ref (parse_primary t) in
  let continue = ref true in
  while !continue do
    match peek t with
    | Token.Lbracket ->
        advance t;
        let idx = parse_expr t in
        expect t Token.Rbracket;
        e := Ast.Index (!e, idx)
    | Token.Plus_plus ->
        advance t;
        e := Ast.Unary (Ast.Postinc, !e)
    | Token.Minus_minus ->
        advance t;
        e := Ast.Unary (Ast.Postdec, !e)
    | _ -> continue := false
  done;
  !e

and parse_primary t =
  match peek t with
  | Token.Int_lit n -> advance t; Ast.Int_lit n
  | Token.Float_lit f -> advance t; Ast.Float_lit f
  | Token.Str_lit s -> advance t; Ast.Str_lit s
  | Token.Char_lit c -> advance t; Ast.Char_lit c
  | Token.Ident name ->
      advance t;
      if Token.equal (peek t) Token.Lparen then begin
        advance t;
        let args = parse_args t in
        expect t Token.Rparen;
        Ast.Call (name, args)
      end
      else Ast.Var name
  | Token.Lparen ->
      advance t;
      let e = parse_expr t in
      expect t Token.Rparen;
      e
  | other -> fail t "expected expression, found '%s'" (Token.to_string other)

and parse_args t =
  if Token.equal (peek t) Token.Rparen then []
  else
    let rec loop acc =
      let e = parse_assign t in
      if accept t Token.Comma then loop (e :: acc) else List.rev (e :: acc)
    in
    loop []

(* --- declarations ------------------------------------------------------- *)

(* One declarator after the specifiers: pointers, name, array suffixes. *)
let parse_declarator t base =
  let ty = ref base in
  while accept t Token.Star do
    ty := Ctype.Ptr !ty
  done;
  let name = expect_ident t in
  let rec arrays ty =
    if accept t Token.Lbracket then begin
      match peek t with
      | Token.Rbracket ->
          advance t;
          Ctype.Array (arrays ty, None)
      | Token.Int_lit n ->
          advance t;
          expect t Token.Rbracket;
          Ctype.Array (arrays ty, Some n)
      | other ->
          fail t "expected constant array length, found '%s'"
            (Token.to_string other)
    end
    else ty
  in
  (name, arrays !ty)

let parse_initializer t =
  if accept t Token.Lbrace then begin
    let rec loop acc =
      let e = parse_assign t in
      if accept t Token.Comma then
        if Token.equal (peek t) Token.Rbrace then List.rev (e :: acc)
        else loop (e :: acc)
      else List.rev (e :: acc)
    in
    let elems =
      if Token.equal (peek t) Token.Rbrace then [] else loop []
    in
    expect t Token.Rbrace;
    Ast.Init_list elems
  end
  else Ast.Init_expr (parse_assign t)

(* Declarations sharing one specifier: [int a = 0, *b, c[3];] without the
   trailing semicolon. *)
let parse_decl_group t =
  let dloc = loc t in
  let static, base = parse_specifiers t in
  let rec loop acc =
    let name, ty = parse_declarator t base in
    let init = if accept t Token.Eq then Some (parse_initializer t) else None in
    let d = Ast.decl ~loc:dloc ~static ?init name ty in
    if accept t Token.Comma then loop (d :: acc) else List.rev (d :: acc)
  in
  loop []

(* --- statements --------------------------------------------------------- *)

let rec parse_stmt t =
  let sloc = loc t in
  match peek t with
  | Token.Lbrace ->
      advance t;
      let stmts = parse_block_items t in
      expect t Token.Rbrace;
      Ast.stmt ~loc:sloc (Ast.Sblock stmts)
  | Token.Semi ->
      advance t;
      Ast.stmt ~loc:sloc Ast.Snull
  | Token.Kw Token.Kif ->
      advance t;
      expect t Token.Lparen;
      let cond = parse_expr t in
      expect t Token.Rparen;
      let then_branch = parse_stmt t in
      let else_branch =
        if accept t (Token.Kw Token.Kelse) then Some (parse_stmt t) else None
      in
      Ast.stmt ~loc:sloc (Ast.Sif (cond, then_branch, else_branch))
  | Token.Kw Token.Kwhile ->
      advance t;
      expect t Token.Lparen;
      let cond = parse_expr t in
      expect t Token.Rparen;
      let body = parse_stmt t in
      Ast.stmt ~loc:sloc (Ast.Swhile (cond, body))
  | Token.Kw Token.Kdo ->
      advance t;
      let body = parse_stmt t in
      expect t (Token.Kw Token.Kwhile);
      expect t Token.Lparen;
      let cond = parse_expr t in
      expect t Token.Rparen;
      expect t Token.Semi;
      Ast.stmt ~loc:sloc (Ast.Sdo (body, cond))
  | Token.Kw Token.Kfor ->
      advance t;
      expect t Token.Lparen;
      let init =
        if Token.equal (peek t) Token.Semi then Ast.For_none
        else if is_type_start t then Ast.For_decl (parse_decl_group t)
        else Ast.For_expr (parse_expr t)
      in
      expect t Token.Semi;
      let cond =
        if Token.equal (peek t) Token.Semi then None else Some (parse_expr t)
      in
      expect t Token.Semi;
      let step =
        if Token.equal (peek t) Token.Rparen then None else Some (parse_expr t)
      in
      expect t Token.Rparen;
      let body = parse_stmt t in
      Ast.stmt ~loc:sloc (Ast.Sfor (init, cond, step, body))
  | Token.Kw Token.Kreturn ->
      advance t;
      let e =
        if Token.equal (peek t) Token.Semi then None else Some (parse_expr t)
      in
      expect t Token.Semi;
      Ast.stmt ~loc:sloc (Ast.Sreturn e)
  | Token.Kw Token.Kbreak ->
      advance t;
      expect t Token.Semi;
      Ast.stmt ~loc:sloc Ast.Sbreak
  | Token.Kw Token.Kcontinue ->
      advance t;
      expect t Token.Semi;
      Ast.stmt ~loc:sloc Ast.Scontinue
  | _ when is_type_start t ->
      let decls = parse_decl_group t in
      expect t Token.Semi;
      Ast.stmt ~loc:sloc (Ast.Sdecl decls)
  | _ ->
      let e = parse_expr t in
      expect t Token.Semi;
      Ast.stmt ~loc:sloc (Ast.Sexpr e)

and parse_block_items t =
  let rec loop acc =
    if Token.equal (peek t) Token.Rbrace || Token.equal (peek t) Token.Eof
    then List.rev acc
    else loop (parse_stmt t :: acc)
  in
  loop []

(* --- top level ---------------------------------------------------------- *)

let parse_params t =
  if accept t Token.Rparen then []
  else if
    Token.equal (peek t) (Token.Kw Token.Kvoid)
    && Token.equal (peek_at t 1) Token.Rparen
  then begin
    advance t;
    advance t;
    []
  end
  else begin
    let rec loop acc =
      let _, base = parse_specifiers t in
      let name, ty = parse_declarator t base in
      let p = (name, ty) in
      if accept t Token.Comma then loop (p :: acc)
      else begin
        expect t Token.Rparen;
        List.rev (p :: acc)
      end
    in
    loop []
  end

let parse_global t =
  let gloc = loc t in
  let static, base = parse_specifiers t in
  let name, ty = parse_declarator t base in
  if accept t Token.Lparen then begin
    (* function definition or prototype *)
    let params = parse_params t in
    if accept t Token.Semi then
      [ Ast.Gproto (name, Ctype.Func (ty, List.map snd params), gloc) ]
    else begin
      expect t Token.Lbrace;
      let body = parse_block_items t in
      expect t Token.Rbrace;
      [ Ast.Gfunc (Ast.func ~loc:gloc name ~ret:ty ~params body) ]
    end
  end
  else begin
    (* global variable(s) *)
    let first_init =
      if accept t Token.Eq then Some (parse_initializer t) else None
    in
    let first = Ast.decl ~loc:gloc ~static ?init:first_init name ty in
    let rec loop acc =
      if accept t Token.Comma then begin
        let name, ty = parse_declarator t base in
        let init =
          if accept t Token.Eq then Some (parse_initializer t) else None
        in
        loop (Ast.decl ~loc:gloc ~static ?init name ty :: acc)
      end
      else begin
        expect t Token.Semi;
        List.rev acc
      end
    in
    List.map (fun d -> Ast.Gvar d) (loop [ first ])
  end

let parse_program t =
  let rec loop acc =
    if Token.equal (peek t) Token.Eof then List.rev acc
    else loop (List.rev_append (parse_global t) acc)
  in
  let globals = loop [] in
  { Ast.p_includes = t.includes; p_globals = globals }

let program ?type_names ?file src =
  parse_program (create ?type_names ?file src)

let expression ?type_names ?file src =
  let t = create ?type_names ?file src in
  let e = parse_expr t in
  if not (Token.equal (peek t) Token.Eof) then
    fail t "trailing input after expression";
  e

let statement ?type_names ?file src =
  let t = create ?type_names ?file src in
  let s = parse_stmt t in
  if not (Token.equal (peek t) Token.Eof) then
    fail t "trailing input after statement";
  s
