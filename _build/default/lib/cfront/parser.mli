(** Recursive-descent parser for the C subset.

    Identifiers registered as type names (by default the pthread/RCCE opaque
    types) start declarations, so [pthread_t threads[3];] parses without a
    full typedef machinery.  All entry points raise {!Srcloc.Error} on
    malformed input. *)

val default_type_names : string list
(** [pthread_t], [pthread_mutex_t], [size_t], [RCCE_FLAG], ... *)

type t

val create : ?type_names:string list -> ?file:string -> string -> t

val register_type_name : t -> string -> unit

val parse_program : t -> Ast.program

val program :
  ?type_names:string list -> ?file:string -> string -> Ast.program
(** Parse a complete translation unit from a string. *)

val expression :
  ?type_names:string list -> ?file:string -> string -> Ast.expr
(** Parse a single expression (must consume the whole input). *)

val statement : ?type_names:string list -> ?file:string -> string -> Ast.stmt
(** Parse a single statement (must consume the whole input). *)
