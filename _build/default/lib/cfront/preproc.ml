(* A macro preprocessor for the C subset — the capability the paper's
   section 7.1 names as the parser's main gap ("Pthread code wrapped
   within macros is inaccessible to the parser").

   Supported directives:
     #define NAME replacement            object-like macros
     #define NAME(a, b) replacement      function-like macros
     #undef NAME
     #ifdef NAME / #ifndef NAME / #else / #endif   (nestable)
   [#include] lines pass through untouched (the lexer collects them), as
   does any other directive.

   Expansion is textual on identifier boundaries, skips string/character
   literals and comments, re-expands results up to a fixed depth (callers
   of recursive macros get a diagnostic rather than a loop), and splits
   function-like arguments at top-level commas. *)

type macro =
  | Object of string
  | Function of string list * string  (* parameters, body *)

type t = {
  defines : (string, macro) Hashtbl.t;
  file : string;
  mutable line : int;
  mutable in_comment : bool;    (* inside a block comment across lines *)
  mutable cond_stack : bool list;  (* active branch? of each open #if *)
}

let max_depth = 16

let error t fmt =
  Srcloc.error (Srcloc.make ~file:t.file ~line:t.line ~col:1) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let active t = List.for_all Fun.id t.cond_stack

(* --- scanning helpers ---------------------------------------------------- *)

(* Find the identifier starting at [i], if any. *)
let ident_at line i =
  if i < String.length line && is_ident_start line.[i] then begin
    let j = ref i in
    while !j < String.length line && is_ident_char line.[!j] do
      incr j
    done;
    Some (String.sub line i (!j - i), !j)
  end
  else None

(* Split a function-like macro's argument text at top-level commas. *)
let split_args t text =
  let args = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' | '[' ->
          incr depth;
          Buffer.add_char buf c
      | ')' | ']' ->
          decr depth;
          if !depth < 0 then error t "unbalanced parentheses in macro call";
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          args := String.trim (Buffer.contents buf) :: !args;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    text;
  args := String.trim (Buffer.contents buf) :: !args;
  List.rev !args

(* Substitute [params -> args] in a macro body, on identifier
   boundaries. *)
let substitute_params t params args body =
  if List.length params <> List.length args then
    error t "macro expects %d arguments, got %d" (List.length params)
      (List.length args);
  let table = List.combine params args in
  let buf = Buffer.create (String.length body) in
  let n = String.length body in
  let i = ref 0 in
  while !i < n do
    match ident_at body !i with
    | Some (name, j) ->
        (match List.assoc_opt name table with
        | Some replacement -> Buffer.add_string buf replacement
        | None -> Buffer.add_string buf name);
        i := j
    | None ->
        Buffer.add_char buf body.[!i];
        incr i
  done;
  Buffer.contents buf

(* One expansion sweep over a line; returns (expanded, changed?).  String
   and character literals and comments are copied verbatim; the
   cross-line block-comment state lives in [t.in_comment]. *)
let expand_once t line =
  let buf = Buffer.create (String.length line) in
  let n = String.length line in
  let changed = ref false in
  let i = ref 0 in
  let copy () =
    Buffer.add_char buf line.[!i];
    incr i
  in
  while !i < n do
    if t.in_comment then
      if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = '/' then begin
        t.in_comment <- false;
        copy ();
        copy ()
      end
      else copy ()
    else if !i + 1 < n && line.[!i] = '/' && line.[!i + 1] = '*' then begin
      t.in_comment <- true;
      copy ();
      copy ()
    end
    else if !i + 1 < n && line.[!i] = '/' && line.[!i + 1] = '/' then begin
      (* copy the rest of the line verbatim *)
      Buffer.add_string buf (String.sub line !i (n - !i));
      i := n
    end
    else if line.[!i] = '"' || line.[!i] = '\'' then begin
      let quote = line.[!i] in
      copy ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if line.[!i] = '\\' && !i + 1 < n then begin
          copy ();
          copy ()
        end
        else if line.[!i] = quote then begin
          copy ();
          closed := true
        end
        else copy ()
      done
    end
    else
      match ident_at line !i with
      | Some (name, j) -> begin
          match Hashtbl.find_opt t.defines name with
          | Some (Object replacement) ->
              changed := true;
              Buffer.add_string buf replacement;
              i := j
          | Some (Function (params, body)) ->
              (* require an argument list; otherwise leave the name *)
              let k = ref j in
              while !k < n && (line.[!k] = ' ' || line.[!k] = '\t') do
                incr k
              done;
              if !k < n && line.[!k] = '(' then begin
                (* find the balancing close paren *)
                let depth = ref 0 in
                let stop = ref (-1) in
                let m = ref !k in
                while !stop < 0 && !m < n do
                  (match line.[!m] with
                  | '(' -> incr depth
                  | ')' ->
                      decr depth;
                      if !depth = 0 then stop := !m
                  | _ -> ());
                  incr m
                done;
                if !stop < 0 then
                  error t "unterminated macro call to %s" name;
                let arg_text =
                  String.sub line (!k + 1) (!stop - !k - 1)
                in
                let args =
                  if String.trim arg_text = "" then []
                  else split_args t arg_text
                in
                changed := true;
                Buffer.add_string buf (substitute_params t params args body);
                i := !stop + 1
              end
              else begin
                Buffer.add_string buf name;
                i := j
              end
          | None ->
              Buffer.add_string buf name;
              i := j
        end
      | None -> copy ()
  done;
  (Buffer.contents buf, !changed)

let expand_line t line =
  let rec fixpoint depth line =
    if depth > max_depth then
      error t "macro expansion exceeds depth %d (recursive macro?)"
        max_depth
    else begin
      let saved = t.in_comment in
      let expanded, changed = expand_once t line in
      if changed then begin
        (* redo with the same starting comment state *)
        t.in_comment <- saved;
        fixpoint (depth + 1) expanded
      end
      else expanded
    end
  in
  fixpoint 0 line

(* --- directives ------------------------------------------------------------ *)

let parse_define t rest =
  match ident_at rest 0 with
  | None -> error t "#define expects a macro name"
  | Some (name, j) ->
      if j < String.length rest && rest.[j] = '(' then begin
        match String.index_from_opt rest j ')' with
        | None -> error t "#define %s: unterminated parameter list" name
        | Some close ->
            let param_text = String.sub rest (j + 1) (close - j - 1) in
            let params =
              if String.trim param_text = "" then []
              else
                List.map String.trim
                  (String.split_on_char ',' param_text)
            in
            let body =
              String.trim
                (String.sub rest (close + 1)
                   (String.length rest - close - 1))
            in
            Hashtbl.replace t.defines name (Function (params, body))
      end
      else
        let body =
          String.trim (String.sub rest j (String.length rest - j))
        in
        Hashtbl.replace t.defines name (Object body)

let directive_of line =
  let trimmed = String.trim line in
  if String.length trimmed > 0 && trimmed.[0] = '#' then begin
    let after =
      String.trim (String.sub trimmed 1 (String.length trimmed - 1))
    in
    match ident_at after 0 with
    | Some (name, j) ->
        Some
          (name,
           String.trim (String.sub after j (String.length after - j)))
    | None -> None
  end
  else None

(* Each input line maps to exactly one output line (directives and dead
   branches become empty lines), so source positions in later lexer and
   parser diagnostics stay accurate, and directive-free input passes
   through unchanged. *)
let handle_line t line =
  match directive_of line with
  | Some ("define", rest) ->
      if active t then parse_define t rest;
      ""
  | Some ("undef", rest) ->
      if active t then begin
        match ident_at rest 0 with
        | Some (name, _) -> Hashtbl.remove t.defines name
        | None -> error t "#undef expects a macro name"
      end;
      ""
  | Some ("ifdef", rest) -> begin
      match ident_at rest 0 with
      | Some (name, _) ->
          t.cond_stack <- Hashtbl.mem t.defines name :: t.cond_stack;
          ""
      | None -> error t "#ifdef expects a macro name"
    end
  | Some ("ifndef", rest) -> begin
      match ident_at rest 0 with
      | Some (name, _) ->
          t.cond_stack <-
            (not (Hashtbl.mem t.defines name)) :: t.cond_stack;
          ""
      | None -> error t "#ifndef expects a macro name"
    end
  | Some ("else", _) -> begin
      match t.cond_stack with
      | top :: rest ->
          t.cond_stack <- (not top) :: rest;
          ""
      | [] -> error t "#else without #ifdef"
    end
  | Some ("endif", _) -> begin
      match t.cond_stack with
      | _ :: rest ->
          t.cond_stack <- rest;
          ""
      | [] -> error t "#endif without #ifdef"
    end
  | Some (("include" | "pragma"), _) ->
      (* passed through for the lexer *)
      if active t then line else ""
  | Some (other, _) -> error t "unsupported directive #%s" other
  | None ->
      if active t then expand_line t line
      else begin
        (* keep comment state coherent even in dead branches *)
        ignore (expand_once t line);
        ""
      end

let expand ?(file = "<string>") ?(defines = []) src =
  let t =
    {
      defines = Hashtbl.create 16;
      file;
      line = 0;
      in_comment = false;
      cond_stack = [];
    }
  in
  List.iter
    (fun (name, body) -> Hashtbl.replace t.defines name (Object body))
    defines;
  let out =
    List.map
      (fun line ->
        t.line <- t.line + 1;
        handle_line t line)
      (String.split_on_char '\n' src)
  in
  if t.cond_stack <> [] then error t "unterminated #ifdef";
  String.concat "\n" out
