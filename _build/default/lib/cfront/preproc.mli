(** A macro preprocessor for the C subset — the capability the paper's
    section 7.1 names as the parser's main gap ("Pthread code wrapped
    within macros is inaccessible to the parser").

    Supports object-like and function-like [#define], [#undef], and
    nestable [#ifdef]/[#ifndef]/[#else]/[#endif]; [#include] and
    [#pragma] lines pass through for the lexer.  Expansion is textual on
    identifier boundaries, skips literals and comments, and bounds
    re-expansion depth. *)

val expand :
  ?file:string -> ?defines:(string * string) list -> string -> string
(** [expand src] returns the preprocessed source; [defines] seeds
    object-like macros (like [-D NAME=body]).
    @raise Srcloc.Error on malformed or unsupported directives and on
    runaway recursive expansion. *)
