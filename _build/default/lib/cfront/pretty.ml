(* AST -> C source.  Emits minimally-parenthesized code by comparing
   operator precedences, so parse -> print -> parse is the identity on the
   subset (checked by property tests). *)

let binop_prec = function
  | Ast.Lor -> 1
  | Ast.Land -> 2
  | Ast.Bor -> 3
  | Ast.Bxor -> 4
  | Ast.Band -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub -> 9
  | Ast.Mul | Ast.Div | Ast.Mod -> 10

(* Precedence of an expression's top node; larger binds tighter. *)
let prec = function
  | Ast.Comma _ -> 0
  | Ast.Assign _ -> 1
  | Ast.Cond _ -> 2
  | Ast.Binary (op, _, _) -> 2 + binop_prec op
  | Ast.Unary ((Ast.Postinc | Ast.Postdec), _) -> 15
  | Ast.Unary _ | Ast.Cast _ | Ast.Sizeof_type _ | Ast.Sizeof_expr _ -> 14
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Var _ | Ast.Call _ | Ast.Index _ -> 15

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    if float_of_string s = f then
      let shorter = Printf.sprintf "%g" f in
      if float_of_string shorter = f then shorter else s
    else s

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\000' -> Buffer.add_string buf "\\0"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr_at level e =
  let s = expr_raw e in
  if prec e < level then "(" ^ s ^ ")" else s

and expr_raw = function
  | Ast.Int_lit n -> string_of_int n
  | Ast.Float_lit f -> float_literal f
  | Ast.Str_lit s -> "\"" ^ escape_string s ^ "\""
  | Ast.Char_lit '\n' -> "'\\n'"
  | Ast.Char_lit '\t' -> "'\\t'"
  | Ast.Char_lit '\'' -> "'\\''"
  | Ast.Char_lit '\\' -> "'\\\\'"
  | Ast.Char_lit '\000' -> "'\\0'"
  | Ast.Char_lit c -> Printf.sprintf "'%c'" c
  | Ast.Var name -> name
  | Ast.Unary (Ast.Postinc, e) -> expr_at 15 e ^ "++"
  | Ast.Unary (Ast.Postdec, e) -> expr_at 15 e ^ "--"
  | Ast.Unary ((Ast.Neg | Ast.Not | Ast.Bnot | Ast.Deref | Ast.Addr
               | Ast.Preinc | Ast.Predec) as op, e) ->
      (* parenthesize when the operand's rendering starts with the
         operator's final character, so "-(-32)" never prints as the
         predecrement "--32" (likewise "&(&x)", "++(+x)") *)
      let ops = Ast.unop_to_string op in
      let rendered = expr_at 14 e in
      if String.length rendered > 0 && rendered.[0] = ops.[String.length ops - 1]
      then ops ^ "(" ^ expr_raw e ^ ")"
      else ops ^ rendered
  | Ast.Binary (op, a, b) ->
      let p = 2 + binop_prec op in
      (* left-associative: the right child needs strictly higher binding *)
      Printf.sprintf "%s %s %s" (expr_at p a) (Ast.binop_to_string op)
        (expr_at (p + 1) b)
  | Ast.Assign (None, lhs, rhs) ->
      Printf.sprintf "%s = %s" (expr_at 14 lhs) (expr_at 1 rhs)
  | Ast.Assign (Some op, lhs, rhs) ->
      Printf.sprintf "%s %s= %s" (expr_at 14 lhs) (Ast.binop_to_string op)
        (expr_at 1 rhs)
  | Ast.Cond (c, a, b) ->
      Printf.sprintf "%s ? %s : %s" (expr_at 3 c) (expr_at 1 a) (expr_at 2 b)
  | Ast.Call (name, args) ->
      Printf.sprintf "%s(%s)" name
        (String.concat ", " (List.map (expr_at 1) args))
  | Ast.Index (arr, idx) ->
      Printf.sprintf "%s[%s]" (expr_at 15 arr) (expr_at 0 idx)
  | Ast.Cast (ty, e) ->
      Printf.sprintf "(%s)%s" (Ctype.to_string ty) (expr_at 14 e)
  | Ast.Sizeof_type ty -> Printf.sprintf "sizeof(%s)" (Ctype.to_string ty)
  | Ast.Sizeof_expr e -> Printf.sprintf "sizeof %s" (expr_at 14 e)
  | Ast.Comma (a, b) ->
      Printf.sprintf "%s, %s" (expr_at 1 a) (expr_at 0 b)

let expr e = expr_raw e

let init_to_string = function
  | Ast.Init_expr e -> expr_at 1 e
  | Ast.Init_list es ->
      "{" ^ String.concat ", " (List.map (expr_at 1) es) ^ "}"

let decl_to_string (d : Ast.decl) =
  let prefix = if d.Ast.d_static then "static " else "" in
  let base = prefix ^ Ctype.decl d.Ast.d_type d.Ast.d_name in
  match d.Ast.d_init with
  | None -> base
  | Some init -> base ^ " = " ^ init_to_string init

(* Several declarators in one statement share the specifier in source; we
   print one declaration per line, which is semantically identical and
   simpler to emit after transformations that drop individual declarators. *)
let indent buf n = Buffer.add_string buf (String.make (n * 4) ' ')

(* Would this statement, printed as a then-branch, swallow a following
   [else]?  True for an else-less [if] and for anything whose trailing
   substatement is one. *)
let rec may_capture_else (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sif (_, _, None) -> true
  | Ast.Sif (_, _, Some e) -> may_capture_else e
  | Ast.Swhile (_, body) | Ast.Sfor (_, _, _, body) ->
      may_capture_else body
  | Ast.Sdo _ (* ends in "while (...);" *)
  | Ast.Sblock _ | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak
  | Ast.Scontinue | Ast.Snull -> false

let rec print_stmt buf level (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sexpr e ->
      indent buf level;
      Buffer.add_string buf (expr_raw e);
      Buffer.add_string buf ";\n"
  | Ast.Sdecl decls ->
      List.iter
        (fun d ->
          indent buf level;
          Buffer.add_string buf (decl_to_string d);
          Buffer.add_string buf ";\n")
        decls
  | Ast.Sblock stmts ->
      indent buf level;
      Buffer.add_string buf "{\n";
      List.iter (print_stmt buf (level + 1)) stmts;
      indent buf level;
      Buffer.add_string buf "}\n"
  | Ast.Sif (cond, then_branch, else_branch) -> begin
      indent buf level;
      Buffer.add_string buf (Printf.sprintf "if (%s)\n" (expr_raw cond));
      (* a then-branch ending in an else-less if would capture our else
         when reparsed (the dangling-else ambiguity): force a block *)
      let then_branch =
        if else_branch <> None && may_capture_else then_branch then
          Ast.stmt ~loc:then_branch.Ast.s_loc (Ast.Sblock [ then_branch ])
        else then_branch
      in
      print_branch buf level then_branch;
      match else_branch with
      | None -> ()
      | Some s ->
          indent buf level;
          Buffer.add_string buf "else\n";
          print_branch buf level s
    end
  | Ast.Swhile (cond, body) ->
      indent buf level;
      Buffer.add_string buf (Printf.sprintf "while (%s)\n" (expr_raw cond));
      print_branch buf level body
  | Ast.Sdo (body, cond) ->
      indent buf level;
      Buffer.add_string buf "do\n";
      print_branch buf level body;
      indent buf level;
      Buffer.add_string buf (Printf.sprintf "while (%s);\n" (expr_raw cond))
  | Ast.Sfor (init, cond, step, body) ->
      indent buf level;
      let init_s =
        match init with
        | Ast.For_none -> ""
        | Ast.For_expr e -> expr_raw e
        | Ast.For_decl ds -> String.concat ", " (List.map decl_to_string ds)
      in
      let cond_s = match cond with None -> "" | Some e -> expr_raw e in
      let step_s = match step with None -> "" | Some e -> expr_raw e in
      Buffer.add_string buf
        (Printf.sprintf "for (%s; %s; %s)\n" init_s cond_s step_s);
      print_branch buf level body
  | Ast.Sreturn None ->
      indent buf level;
      Buffer.add_string buf "return;\n"
  | Ast.Sreturn (Some e) ->
      indent buf level;
      Buffer.add_string buf (Printf.sprintf "return %s;\n" (expr_raw e))
  | Ast.Sbreak ->
      indent buf level;
      Buffer.add_string buf "break;\n"
  | Ast.Scontinue ->
      indent buf level;
      Buffer.add_string buf "continue;\n"
  | Ast.Snull ->
      indent buf level;
      Buffer.add_string buf ";\n"

(* Loop/if bodies: blocks stay at the same level, single statements are
   indented one deeper. *)
and print_branch buf level (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sblock _ -> print_stmt buf level s
  | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _
  | Ast.Sfor _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Snull ->
      print_stmt buf (level + 1) s

let stmt s =
  let buf = Buffer.create 256 in
  print_stmt buf 0 s;
  Buffer.contents buf

let print_func buf (f : Ast.func) =
  let params =
    match f.Ast.f_params with
    | [] -> "void"
    | ps -> String.concat ", " (List.map (fun (n, t) -> Ctype.decl t n) ps)
  in
  Buffer.add_string buf
    (Printf.sprintf "%s(%s)\n{\n" (Ctype.decl f.Ast.f_ret f.Ast.f_name) params);
  List.iter (print_stmt buf 1) f.Ast.f_body;
  Buffer.add_string buf "}\n"

let func f =
  let buf = Buffer.create 512 in
  print_func buf f;
  Buffer.contents buf

let program (p : Ast.program) =
  let buf = Buffer.create 2048 in
  List.iter
    (fun inc ->
      Buffer.add_string buf inc;
      Buffer.add_char buf '\n')
    p.Ast.p_includes;
  if p.Ast.p_includes <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun g ->
      match g with
      | Ast.Gvar d ->
          Buffer.add_string buf (decl_to_string d);
          Buffer.add_string buf ";\n"
      | Ast.Gproto (name, Ctype.Func (ret, params), _) ->
          let ps = String.concat ", " (List.map Ctype.to_string params) in
          Buffer.add_string buf
            (Printf.sprintf "%s(%s);\n" (Ctype.decl ret name) ps)
      | Ast.Gproto (name, ty, _) ->
          Buffer.add_string buf (Ctype.decl ty name ^ ";\n")
      | Ast.Gfunc f ->
          Buffer.add_char buf '\n';
          print_func buf f)
    p.Ast.p_globals;
  Buffer.contents buf
