(** AST -> C source.

    Emits minimally-parenthesized code by comparing operator precedences,
    so parse -> print -> parse is the identity on the subset. *)

val expr : Ast.expr -> string

val stmt : Ast.stmt -> string
(** One statement, newline-terminated, 4-space indentation. *)

val decl_to_string : Ast.decl -> string
(** Declaration without the trailing [;]. *)

val func : Ast.func -> string

val program : Ast.program -> string
(** Whole translation unit, including the recorded [#include] lines. *)
