(* Source positions for diagnostics.  A [t] names a point in the input; a
   [span] covers a region.  Line and column are 1-based. *)

type t = { file : string; line : int; col : int }

type span = { start_pos : t; end_pos : t }

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let span a b = { start_pos = a; end_pos = b }

let dummy_span = { start_pos = dummy; end_pos = dummy }

let to_string { file; line; col } = Printf.sprintf "%s:%d:%d" file line col

let pp fmt loc = Format.pp_print_string fmt (to_string loc)

exception Error of t * string

let error loc fmt =
  Printf.ksprintf (fun msg -> raise (Error (loc, msg))) fmt

let error_message = function
  | Error (loc, msg) -> Some (Printf.sprintf "%s: %s" (to_string loc) msg)
  | _ -> None
