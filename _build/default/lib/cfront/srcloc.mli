(** Source positions for diagnostics. *)

type t = { file : string; line : int; col : int }
(** A point in a source file; [line] and [col] are 1-based. *)

type span = { start_pos : t; end_pos : t }
(** A contiguous region of a source file. *)

val dummy : t
(** Placeholder position for synthesized nodes. *)

val make : file:string -> line:int -> col:int -> t

val span : t -> t -> span

val dummy_span : span

val to_string : t -> string
(** ["file:line:col"]. *)

val pp : Format.formatter -> t -> unit

exception Error of t * string
(** Raised by the frontend on any lexical, syntactic or semantic error. *)

val error : t -> ('a, unit, string, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error} with a formatted message. *)

val error_message : exn -> string option
(** Render an {!Error} as ["file:line:col: message"]; [None] for other
    exceptions. *)
