(* Lexical tokens of the supported C subset. *)

type keyword =
  | Kvoid | Kchar | Kint | Klong | Kshort | Kunsigned | Ksigned
  | Kfloat | Kdouble
  | Kif | Kelse | Kwhile | Kdo | Kfor | Kreturn | Kbreak | Kcontinue
  | Ksizeof | Kstatic | Kextern | Kconst | Kvolatile

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Char_lit of char
  | Kw of keyword
  (* arithmetic *)
  | Plus | Minus | Star | Slash | Percent
  | Plus_plus | Minus_minus
  (* comparison *)
  | Eq_eq | Bang_eq | Lt | Gt | Le | Ge
  (* logic *)
  | Amp_amp | Bar_bar | Bang
  (* bitwise *)
  | Amp | Bar | Caret | Tilde | Lt_lt | Gt_gt
  (* assignment *)
  | Eq | Plus_eq | Minus_eq | Star_eq | Slash_eq | Percent_eq
  | Amp_eq | Bar_eq | Caret_eq | Lt_lt_eq | Gt_gt_eq
  (* punctuation *)
  | Question | Colon | Semi | Comma
  | Lparen | Rparen | Lbracket | Rbracket | Lbrace | Rbrace
  | Arrow | Dot
  | Eof

let keyword_of_string = function
  | "void" -> Some Kvoid
  | "char" -> Some Kchar
  | "int" -> Some Kint
  | "long" -> Some Klong
  | "short" -> Some Kshort
  | "unsigned" -> Some Kunsigned
  | "signed" -> Some Ksigned
  | "float" -> Some Kfloat
  | "double" -> Some Kdouble
  | "if" -> Some Kif
  | "else" -> Some Kelse
  | "while" -> Some Kwhile
  | "do" -> Some Kdo
  | "for" -> Some Kfor
  | "return" -> Some Kreturn
  | "break" -> Some Kbreak
  | "continue" -> Some Kcontinue
  | "sizeof" -> Some Ksizeof
  | "static" -> Some Kstatic
  | "extern" -> Some Kextern
  | "const" -> Some Kconst
  | "volatile" -> Some Kvolatile
  | _ -> None

let keyword_to_string = function
  | Kvoid -> "void" | Kchar -> "char" | Kint -> "int" | Klong -> "long"
  | Kshort -> "short" | Kunsigned -> "unsigned" | Ksigned -> "signed"
  | Kfloat -> "float" | Kdouble -> "double"
  | Kif -> "if" | Kelse -> "else" | Kwhile -> "while" | Kdo -> "do"
  | Kfor -> "for" | Kreturn -> "return" | Kbreak -> "break"
  | Kcontinue -> "continue" | Ksizeof -> "sizeof" | Kstatic -> "static"
  | Kextern -> "extern" | Kconst -> "const" | Kvolatile -> "volatile"

let to_string = function
  | Ident s -> s
  | Int_lit n -> string_of_int n
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "%S" s
  | Char_lit c -> Printf.sprintf "%C" c
  | Kw k -> keyword_to_string k
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/" | Percent -> "%"
  | Plus_plus -> "++" | Minus_minus -> "--"
  | Eq_eq -> "==" | Bang_eq -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<="
  | Ge -> ">="
  | Amp_amp -> "&&" | Bar_bar -> "||" | Bang -> "!"
  | Amp -> "&" | Bar -> "|" | Caret -> "^" | Tilde -> "~"
  | Lt_lt -> "<<" | Gt_gt -> ">>"
  | Eq -> "=" | Plus_eq -> "+=" | Minus_eq -> "-=" | Star_eq -> "*="
  | Slash_eq -> "/=" | Percent_eq -> "%="
  | Amp_eq -> "&=" | Bar_eq -> "|=" | Caret_eq -> "^="
  | Lt_lt_eq -> "<<=" | Gt_gt_eq -> ">>="
  | Question -> "?" | Colon -> ":" | Semi -> ";" | Comma -> ","
  | Lparen -> "(" | Rparen -> ")" | Lbracket -> "[" | Rbracket -> "]"
  | Lbrace -> "{" | Rbrace -> "}"
  | Arrow -> "->" | Dot -> "."
  | Eof -> "<eof>"

let equal (a : t) (b : t) = a = b

type located = { tok : t; loc : Srcloc.t }
