(** Lexical tokens of the supported C subset. *)

type keyword =
  | Kvoid | Kchar | Kint | Klong | Kshort | Kunsigned | Ksigned
  | Kfloat | Kdouble
  | Kif | Kelse | Kwhile | Kdo | Kfor | Kreturn | Kbreak | Kcontinue
  | Ksizeof | Kstatic | Kextern | Kconst | Kvolatile

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Char_lit of char
  | Kw of keyword
  | Plus | Minus | Star | Slash | Percent
  | Plus_plus | Minus_minus
  | Eq_eq | Bang_eq | Lt | Gt | Le | Ge
  | Amp_amp | Bar_bar | Bang
  | Amp | Bar | Caret | Tilde | Lt_lt | Gt_gt
  | Eq | Plus_eq | Minus_eq | Star_eq | Slash_eq | Percent_eq
  | Amp_eq | Bar_eq | Caret_eq | Lt_lt_eq | Gt_gt_eq
  | Question | Colon | Semi | Comma
  | Lparen | Rparen | Lbracket | Rbracket | Lbrace | Rbrace
  | Arrow | Dot
  | Eof

val keyword_of_string : string -> keyword option

val keyword_to_string : keyword -> string

val to_string : t -> string
(** Concrete syntax of the token (literals are re-quoted). *)

val equal : t -> t -> bool

type located = { tok : t; loc : Srcloc.t }
