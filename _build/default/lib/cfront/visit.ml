(* Generic traversals over the AST.  The statement rewriter [rewrite_stmts]
   maps each statement to a *list* of replacements (empty list = removal),
   which is the shape every translation pass needs. *)

(* --- expressions -------------------------------------------------------- *)

let rec iter_expr f e =
  f e;
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Var _ | Ast.Sizeof_type _ -> ()
  | Ast.Unary (_, a) | Ast.Cast (_, a) | Ast.Sizeof_expr a -> iter_expr f a
  | Ast.Binary (_, a, b) | Ast.Assign (_, a, b) | Ast.Index (a, b)
  | Ast.Comma (a, b) ->
      iter_expr f a;
      iter_expr f b
  | Ast.Cond (a, b, c) ->
      iter_expr f a;
      iter_expr f b;
      iter_expr f c
  | Ast.Call (_, args) -> List.iter (iter_expr f) args

let fold_expr f acc e =
  let acc = ref acc in
  iter_expr (fun e -> acc := f !acc e) e;
  !acc

(* Bottom-up expression rewriting. *)
let rec map_expr f e =
  let e' =
    match e with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Var _ | Ast.Sizeof_type _ -> e
    | Ast.Unary (op, a) -> Ast.Unary (op, map_expr f a)
    | Ast.Cast (ty, a) -> Ast.Cast (ty, map_expr f a)
    | Ast.Sizeof_expr a -> Ast.Sizeof_expr (map_expr f a)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, map_expr f a, map_expr f b)
    | Ast.Assign (op, a, b) -> Ast.Assign (op, map_expr f a, map_expr f b)
    | Ast.Index (a, b) -> Ast.Index (map_expr f a, map_expr f b)
    | Ast.Comma (a, b) -> Ast.Comma (map_expr f a, map_expr f b)
    | Ast.Cond (a, b, c) ->
        Ast.Cond (map_expr f a, map_expr f b, map_expr f c)
    | Ast.Call (name, args) -> Ast.Call (name, List.map (map_expr f) args)
  in
  f e'

(* --- statements --------------------------------------------------------- *)

let exprs_of_decl (d : Ast.decl) =
  match d.Ast.d_init with
  | None -> []
  | Some (Ast.Init_expr e) -> [ e ]
  | Some (Ast.Init_list es) -> es

(* Expressions syntactically at this statement node (not inside nested
   statements). *)
let shallow_exprs (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sexpr e -> [ e ]
  | Ast.Sdecl ds -> List.concat_map exprs_of_decl ds
  | Ast.Sif (c, _, _) | Ast.Swhile (c, _) | Ast.Sdo (_, c) -> [ c ]
  | Ast.Sfor (init, cond, step, _) ->
      let of_init =
        match init with
        | Ast.For_none -> []
        | Ast.For_expr e -> [ e ]
        | Ast.For_decl ds -> List.concat_map exprs_of_decl ds
      in
      of_init
      @ (match cond with None -> [] | Some e -> [ e ])
      @ (match step with None -> [] | Some e -> [ e ])
  | Ast.Sreturn (Some e) -> [ e ]
  | Ast.Sreturn None | Ast.Sblock _ | Ast.Sbreak | Ast.Scontinue
  | Ast.Snull -> []

let rec iter_stmt f (s : Ast.stmt) =
  f s;
  match s.Ast.s_desc with
  | Ast.Sblock stmts -> List.iter (iter_stmt f) stmts
  | Ast.Sif (_, a, b) ->
      iter_stmt f a;
      Option.iter (iter_stmt f) b
  | Ast.Swhile (_, body) | Ast.Sdo (body, _) | Ast.Sfor (_, _, _, body) ->
      iter_stmt f body
  | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
  | Ast.Snull -> ()

let iter_exprs_of_stmt f s =
  iter_stmt (fun s -> List.iter (iter_expr f) (shallow_exprs s)) s

let iter_exprs_of_func f (fn : Ast.func) =
  List.iter (iter_exprs_of_stmt f) fn.Ast.f_body

let iter_exprs_of_program f (p : Ast.program) =
  List.iter
    (fun g ->
      match g with
      | Ast.Gvar d -> List.iter (iter_expr f) (exprs_of_decl d)
      | Ast.Gfunc fn -> iter_exprs_of_func f fn
      | Ast.Gproto _ -> ())
    p.Ast.p_globals

(* All direct calls [(callee, args, enclosing statement)] in a function. *)
let calls_in_func (fn : Ast.func) =
  let acc = ref [] in
  List.iter
    (fun s ->
      iter_stmt
        (fun s ->
          List.iter
            (iter_expr (fun e ->
                 match e with
                 | Ast.Call (name, args) -> acc := (name, args, s) :: !acc
                 | _ -> ()))
            (shallow_exprs s))
        s)
    fn.Ast.f_body;
  List.rev !acc

let calls_in_program p =
  List.concat_map
    (fun fn ->
      List.map (fun (n, a, s) -> (fn, n, a, s)) (calls_in_func fn))
    (Ast.functions p)

(* --- statement rewriting ------------------------------------------------ *)

(* [rewrite_stmts f stmts] rebuilds a statement list.  [f] receives each
   statement *after* its children have been rewritten and returns its
   replacement list; [None] keeps the statement unchanged. *)
let rec rewrite_stmts f stmts = List.concat_map (rewrite_stmt f) stmts

and rewrite_stmt f (s : Ast.stmt) =
  let rebuilt =
    match s.Ast.s_desc with
    | Ast.Sblock stmts ->
        { s with Ast.s_desc = Ast.Sblock (rewrite_stmts f stmts) }
    | Ast.Sif (c, a, b) ->
        let a = rewrap f a in
        let b = Option.map (rewrap f) b in
        { s with Ast.s_desc = Ast.Sif (c, a, b) }
    | Ast.Swhile (c, body) ->
        { s with Ast.s_desc = Ast.Swhile (c, rewrap f body) }
    | Ast.Sdo (body, c) ->
        { s with Ast.s_desc = Ast.Sdo (rewrap f body, c) }
    | Ast.Sfor (init, c, step, body) ->
        { s with Ast.s_desc = Ast.Sfor (init, c, step, rewrap f body) }
    | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak
    | Ast.Scontinue | Ast.Snull -> s
  in
  match f rebuilt with None -> [ rebuilt ] | Some replacement -> replacement

(* A loop/if body must stay a single statement: multi-statement
   replacements are wrapped in a block. *)
and rewrap f s =
  match rewrite_stmt f s with
  | [ single ] -> single
  | stmts -> Ast.stmt ~loc:s.Ast.s_loc (Ast.Sblock stmts)

(* Top-down variant: [f] sees each statement before its children; a [Some]
   replacement is final (children of the replacement are not revisited),
   [None] recurses into the children. *)
let rec rewrite_stmts_topdown f stmts =
  List.concat_map (rewrite_stmt_topdown f) stmts

and rewrite_stmt_topdown f (s : Ast.stmt) =
  match f s with
  | Some replacement -> replacement
  | None -> begin
      match s.Ast.s_desc with
      | Ast.Sblock stmts ->
          [ { s with Ast.s_desc = Ast.Sblock (rewrite_stmts_topdown f stmts) } ]
      | Ast.Sif (c, a, b) ->
          let a = rewrap_topdown f a in
          let b = Option.map (rewrap_topdown f) b in
          [ { s with Ast.s_desc = Ast.Sif (c, a, b) } ]
      | Ast.Swhile (c, body) ->
          [ { s with Ast.s_desc = Ast.Swhile (c, rewrap_topdown f body) } ]
      | Ast.Sdo (body, c) ->
          [ { s with Ast.s_desc = Ast.Sdo (rewrap_topdown f body, c) } ]
      | Ast.Sfor (init, c, step, body) ->
          [ { s with
              Ast.s_desc = Ast.Sfor (init, c, step, rewrap_topdown f body) } ]
      | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak
      | Ast.Scontinue | Ast.Snull -> [ s ]
    end

and rewrap_topdown f s =
  match rewrite_stmt_topdown f s with
  | [ single ] -> single
  | stmts -> Ast.stmt ~loc:s.Ast.s_loc (Ast.Sblock stmts)

let rewrite_func f (fn : Ast.func) =
  { fn with Ast.f_body = rewrite_stmts f fn.Ast.f_body }

let rewrite_program f (p : Ast.program) =
  let globals =
    List.map
      (fun g ->
        match g with
        | Ast.Gfunc fn -> Ast.Gfunc (rewrite_func f fn)
        | Ast.Gvar _ | Ast.Gproto _ -> g)
      p.Ast.p_globals
  in
  { p with Ast.p_globals = globals }

let rewrite_func_topdown f (fn : Ast.func) =
  { fn with Ast.f_body = rewrite_stmts_topdown f fn.Ast.f_body }

let rewrite_program_topdown f (p : Ast.program) =
  let globals =
    List.map
      (fun g ->
        match g with
        | Ast.Gfunc fn -> Ast.Gfunc (rewrite_func_topdown f fn)
        | Ast.Gvar _ | Ast.Gproto _ -> g)
      p.Ast.p_globals
  in
  { p with Ast.p_globals = globals }

(* Rewrite every expression of one statement tree (bottom-up). *)
let map_stmt_exprs f s =
  let map_init = function
    | Ast.Init_expr e -> Ast.Init_expr (map_expr f e)
    | Ast.Init_list es -> Ast.Init_list (List.map (map_expr f) es)
  in
  let map_decl d = { d with Ast.d_init = Option.map map_init d.Ast.d_init } in
  let rec map_stmt (s : Ast.stmt) =
    let desc =
      match s.Ast.s_desc with
      | Ast.Sexpr e -> Ast.Sexpr (map_expr f e)
      | Ast.Sdecl ds -> Ast.Sdecl (List.map map_decl ds)
      | Ast.Sblock stmts -> Ast.Sblock (List.map map_stmt stmts)
      | Ast.Sif (c, a, b) ->
          Ast.Sif (map_expr f c, map_stmt a, Option.map map_stmt b)
      | Ast.Swhile (c, body) -> Ast.Swhile (map_expr f c, map_stmt body)
      | Ast.Sdo (body, c) -> Ast.Sdo (map_stmt body, map_expr f c)
      | Ast.Sfor (init, c, step, body) ->
          let init =
            match init with
            | Ast.For_none -> Ast.For_none
            | Ast.For_expr e -> Ast.For_expr (map_expr f e)
            | Ast.For_decl ds -> Ast.For_decl (List.map map_decl ds)
          in
          Ast.Sfor
            (init, Option.map (map_expr f) c, Option.map (map_expr f) step,
             map_stmt body)
      | Ast.Sreturn e -> Ast.Sreturn (Option.map (map_expr f) e)
      | Ast.Sbreak | Ast.Scontinue | Ast.Snull -> s.Ast.s_desc
    in
    { s with Ast.s_desc = desc }
  in
  map_stmt s

let map_func_exprs f (fn : Ast.func) =
  { fn with Ast.f_body = List.map (map_stmt_exprs f) fn.Ast.f_body }

(* Rewrite every expression of the program in place (bottom-up). *)
let map_program_exprs f (p : Ast.program) =
  let map_init = function
    | Ast.Init_expr e -> Ast.Init_expr (map_expr f e)
    | Ast.Init_list es -> Ast.Init_list (List.map (map_expr f) es)
  in
  let map_decl d = { d with Ast.d_init = Option.map map_init d.Ast.d_init } in
  let globals =
    List.map
      (fun g ->
        match g with
        | Ast.Gvar d -> Ast.Gvar (map_decl d)
        | Ast.Gfunc fn -> Ast.Gfunc (map_func_exprs f fn)
        | Ast.Gproto _ -> g)
      p.Ast.p_globals
  in
  { p with Ast.p_globals = globals }
