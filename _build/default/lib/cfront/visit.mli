(** Generic traversals and rewriters over the AST. *)

(** {1 Expressions} *)

val iter_expr : (Ast.expr -> unit) -> Ast.expr -> unit
(** Pre-order visit of an expression and all its subexpressions. *)

val fold_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.expr -> 'a

val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr
(** Bottom-up rewriting: [f] sees each node after its children were
    rewritten. *)

(** {1 Statements} *)

val exprs_of_decl : Ast.decl -> Ast.expr list
(** Initializer expressions of a declaration. *)

val shallow_exprs : Ast.stmt -> Ast.expr list
(** Expressions syntactically at this node, not inside nested statements. *)

val iter_stmt : (Ast.stmt -> unit) -> Ast.stmt -> unit
(** Pre-order visit of a statement and all nested statements. *)

val iter_exprs_of_stmt : (Ast.expr -> unit) -> Ast.stmt -> unit
val iter_exprs_of_func : (Ast.expr -> unit) -> Ast.func -> unit
val iter_exprs_of_program : (Ast.expr -> unit) -> Ast.program -> unit
(** Visit every expression (including global initializers). *)

val calls_in_func : Ast.func -> (string * Ast.expr list * Ast.stmt) list
(** All direct calls [(callee, args, enclosing statement)], in source
    order. *)

val calls_in_program :
  Ast.program -> (Ast.func * string * Ast.expr list * Ast.stmt) list

(** {1 Statement rewriting} *)

val rewrite_stmts :
  (Ast.stmt -> Ast.stmt list option) -> Ast.stmt list -> Ast.stmt list
(** [rewrite_stmts f stmts] rebuilds a statement list bottom-up.  [f]
    receives each statement after its children were rewritten and returns
    [Some replacements] ([[]] removes the statement) or [None] to keep it.
    Replacements inside a loop/if body are wrapped in a block when needed. *)

val rewrite_func : (Ast.stmt -> Ast.stmt list option) -> Ast.func -> Ast.func

val rewrite_program :
  (Ast.stmt -> Ast.stmt list option) -> Ast.program -> Ast.program

val rewrite_stmts_topdown :
  (Ast.stmt -> Ast.stmt list option) -> Ast.stmt list -> Ast.stmt list
(** Top-down variant: [f] sees each statement before its children; a [Some]
    replacement is final, [None] recurses into the children. *)

val rewrite_func_topdown :
  (Ast.stmt -> Ast.stmt list option) -> Ast.func -> Ast.func

val rewrite_program_topdown :
  (Ast.stmt -> Ast.stmt list option) -> Ast.program -> Ast.program

val map_stmt_exprs : (Ast.expr -> Ast.expr) -> Ast.stmt -> Ast.stmt
(** Rewrite every expression of one statement tree bottom-up, including
    declaration initializers. *)

val map_func_exprs : (Ast.expr -> Ast.expr) -> Ast.func -> Ast.func

val map_program_exprs :
  (Ast.expr -> Ast.expr) -> Ast.program -> Ast.program
(** Rewrite every expression of the program bottom-up, including global and
    local initializers. *)
