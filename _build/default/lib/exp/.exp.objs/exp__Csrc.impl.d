lib/exp/csrc.ml: Printf
