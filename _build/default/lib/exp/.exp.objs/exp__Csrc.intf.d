lib/exp/csrc.mli:
