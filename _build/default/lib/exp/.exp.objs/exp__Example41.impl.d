lib/exp/example41.ml: Cfront
