lib/exp/example41.mli: Cfront
