lib/exp/experiments.ml: Analysis Buffer Cexec Cfront Csrc Example41 Ir List Partition Printf Scc String Tabulate Translate Workloads
