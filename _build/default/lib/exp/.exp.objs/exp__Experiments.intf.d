lib/exp/experiments.mli: Partition Workloads
