lib/exp/tabulate.ml: Array Buffer Float List Printf String
