lib/exp/tabulate.mli:
