(* The paper's running example (Example Code 4.1): stores thread-ID sums
   and a locally-defined shared variable.  Shared between the experiment
   harness, the tests and the examples so everything exercises the same
   source the paper analyzes in Tables 4.1/4.2 and translates into
   Example Code 4.2. *)

let source =
  {|#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *) local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
|}

let file = "example_4_1.c"

let parse () = Cfront.Parser.program ~file source
