(** The paper's running example (Example Code 4.1), shared by the
    experiment harness, the tests and the examples. *)

val source : string
val file : string
val parse : unit -> Cfront.Ast.program
