(* Plain-text table and bar-chart rendering for the experiment reports. *)

let widths rows =
  let ncols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 rows
  in
  let w = Array.make (max ncols 1) 0 in
  List.iter
    (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)))
    rows;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let trim_right s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do
    decr n
  done;
  String.sub s 0 !n

(* Render rows as aligned columns; with [header] (default), a rule is
   drawn under the first row. *)
let render ?(header = true) rows =
  match rows with
  | [] -> ""
  | _ ->
      let w = widths rows in
      let buf = Buffer.create 512 in
      let line row =
        let cells = List.mapi (fun i cell -> pad w.(i) cell) row in
        Buffer.add_string buf (trim_right (String.concat "  " cells));
        Buffer.add_char buf '\n'
      in
      List.iteri
        (fun i row ->
          line row;
          if header && i = 0 then begin
            let total =
              Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1))
            in
            Buffer.add_string buf (String.make total '-');
            Buffer.add_char buf '\n'
          end)
        rows;
      Buffer.contents buf

(* Horizontal ASCII bar chart: one bar per (label, value), scaled to
   [width] characters at the maximum value. *)
let bar_chart ?(width = 48) ?(unit = "x") items =
  match items with
  | [] -> ""
  | _ ->
      let vmax =
        List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 items
      in
      let vmax = if vmax <= 0.0 then 1.0 else vmax in
      let lw =
        List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items
      in
      let buf = Buffer.create 512 in
      List.iter
        (fun (label, v) ->
          let n =
            int_of_float (Float.round (v /. vmax *. float_of_int width))
          in
          Buffer.add_string buf
            (Printf.sprintf "%s  %s %.1f%s\n" (pad lw label)
               (String.make (max n 1) '#') v unit))
        items;
      Buffer.contents buf
