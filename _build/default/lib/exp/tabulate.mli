(** Plain-text table and bar-chart rendering for the experiment reports. *)

val render : ?header:bool -> string list list -> string
(** Aligned columns; with [header] (default) a rule is drawn under the
    first row. *)

val bar_chart : ?width:int -> ?unit:string -> (string * float) list -> string
(** One horizontal bar per (label, value), scaled to the maximum. *)
