lib/ir/cfg.ml: Array Ast Buffer Cfront List Pretty Printf String Visit
