lib/ir/cfg.mli: Ast Cfront
