lib/ir/dataflow.ml: Array Cfg List
