lib/ir/dataflow.mli: Cfg
