lib/ir/symtab.ml: Ast Cfront Ctype Hashtbl List Option Srcloc Var_id Visit
