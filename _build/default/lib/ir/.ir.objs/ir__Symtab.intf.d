lib/ir/symtab.mli: Ast Cfront Ctype Srcloc Var_id
