lib/ir/var_id.ml: Format Map Printf Set Stdlib
