lib/ir/var_id.mli: Format Map Set
