(* Generic forward dataflow solver: worklist iteration to a fixed point
   over a CFG, visiting nodes in reverse post-order. *)

module type DOMAIN = sig
  type t

  val bottom : t
  (** State for unreached program points. *)

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound at control-flow merges. *)
end

module type S = sig
  type fact

  type result = { in_facts : fact array; out_facts : fact array }

  val solve :
    Cfg.t -> init:fact -> transfer:(Cfg.node -> fact -> fact) -> result
end

module Forward (D : DOMAIN) : S with type fact = D.t = struct
  type fact = D.t

  type result = { in_facts : fact array; out_facts : fact array }

  let solve (cfg : Cfg.t) ~init ~transfer =
    let n = Cfg.length cfg in
    let in_facts = Array.make n D.bottom in
    let out_facts = Array.make n D.bottom in
    in_facts.(cfg.Cfg.entry) <- init;
    let order = Array.of_list (Cfg.reverse_postorder cfg) in
    let changed = ref true in
    (* Reverse post-order sweeps; loops converge in a few passes because
       the domain joins are monotone. *)
    while !changed do
      changed := false;
      Array.iter
        (fun id ->
          let node = Cfg.node cfg id in
          let input =
            if id = cfg.Cfg.entry then init
            else
              List.fold_left
                (fun acc p -> D.join acc out_facts.(p))
                D.bottom node.Cfg.preds
          in
          let output = transfer node input in
          if
            (not (D.equal input in_facts.(id)))
            || not (D.equal output out_facts.(id))
          then begin
            in_facts.(id) <- input;
            out_facts.(id) <- output;
            changed := true
          end)
        order
    done;
    { in_facts; out_facts }
end
