(** Generic forward dataflow solver over a {!Cfg}. *)

module type DOMAIN = sig
  type t

  val bottom : t
  (** State for unreached program points. *)

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound at control-flow merges; must be monotone for the
      solver to terminate. *)
end

module type S = sig
  type fact

  type result = { in_facts : fact array; out_facts : fact array }
  (** Facts indexed by {!Cfg.node} id, before and after each node. *)

  val solve :
    Cfg.t -> init:fact -> transfer:(Cfg.node -> fact -> fact) -> result
  (** Worklist iteration to a fixed point; [init] is the entry fact. *)
end

module Forward (D : DOMAIN) : S with type fact = D.t
