open Cfront

(* Symbol tables for a parsed program: the set of all declared variables,
   their types and declaration sites, and name resolution within a function
   (locals and parameters shadow globals). *)

type entry = {
  id : Var_id.t;
  ty : Ctype.t;
  decl_loc : Srcloc.t;
  initialized : bool;   (* has an initializer at its declaration *)
}

type t = {
  program : Ast.program;
  entries : entry Var_id.Map.t;
  order : entry list;   (* declaration order: globals, then per function *)
  by_function : (string, entry list) Hashtbl.t;  (* locals+params per func *)
  globals : entry list;
}

let add_entry map entry =
  if Var_id.Map.mem entry.id map then
    Srcloc.error entry.decl_loc "duplicate declaration of %s"
      (Var_id.to_string entry.id)
  else Var_id.Map.add entry.id entry map

let entry_of_decl id (d : Ast.decl) =
  { id; ty = d.Ast.d_type; decl_loc = d.Ast.d_loc;
    initialized = d.Ast.d_init <> None }

let locals_of_func (fn : Ast.func) =
  let acc = ref [] in
  let of_decls ds =
    List.iter
      (fun (d : Ast.decl) ->
        let id = Var_id.local ~func:fn.Ast.f_name d.Ast.d_name in
        acc := entry_of_decl id d :: !acc)
      ds
  in
  List.iter
    (fun s ->
      Visit.iter_stmt
        (fun (s : Ast.stmt) ->
          match s.Ast.s_desc with
          | Ast.Sdecl ds -> of_decls ds
          | Ast.Sfor (Ast.For_decl ds, _, _, _) -> of_decls ds
          | Ast.Sfor ((Ast.For_none | Ast.For_expr _), _, _, _)
          | Ast.Sexpr _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _
          | Ast.Sdo _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
          | Ast.Snull -> ())
        s)
    fn.Ast.f_body;
  List.rev !acc

let params_of_func (fn : Ast.func) =
  List.map
    (fun (name, ty) ->
      { id = Var_id.param ~func:fn.Ast.f_name name; ty;
        decl_loc = fn.Ast.f_loc; initialized = true })
    fn.Ast.f_params

let build (program : Ast.program) =
  let globals =
    List.map
      (fun (d : Ast.decl) -> entry_of_decl (Var_id.global d.Ast.d_name) d)
      (Ast.global_decls program)
  in
  let by_function = Hashtbl.create 16 in
  let entries = ref Var_id.Map.empty in
  let order = ref [] in
  let push e =
    entries := add_entry !entries e;
    order := e :: !order
  in
  List.iter push globals;
  List.iter
    (fun fn ->
      let scoped = params_of_func fn @ locals_of_func fn in
      Hashtbl.replace by_function fn.Ast.f_name scoped;
      List.iter push scoped)
    (Ast.functions program);
  { program; entries = !entries; order = List.rev !order; by_function;
    globals }

let program t = t.program

let all t = t.order

let globals t = t.globals

let scoped_of t func =
  match Hashtbl.find_opt t.by_function func with
  | Some entries -> entries
  | None -> []

let find t id = Var_id.Map.find_opt id t.entries

let type_of t id = Option.map (fun e -> e.ty) (find t id)

(* Resolve [name] as seen from inside [func] (or at global scope when
   [func] is [None]): innermost declaration wins. *)
let resolve t ?func name =
  let in_scope scope =
    Var_id.Map.find_opt { Var_id.name; scope } t.entries
  in
  let scoped =
    match func with
    | None -> None
    | Some f -> begin
        match in_scope (Var_id.Local f) with
        | Some e -> Some e
        | None -> in_scope (Var_id.Param f)
      end
  in
  match scoped with
  | Some e -> Some e
  | None -> in_scope Var_id.Global

let resolve_id t ?func name =
  Option.map (fun e -> e.id) (resolve t ?func name)
