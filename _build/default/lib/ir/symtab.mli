open Cfront

(** Symbol tables for a parsed program.

    Collects every declared variable with its type and declaration site and
    resolves names within a function (locals and parameters shadow
    globals). *)

type entry = {
  id : Var_id.t;
  ty : Ctype.t;
  decl_loc : Srcloc.t;
  initialized : bool;  (** has an initializer at its declaration *)
}

type t

val build : Ast.program -> t
(** @raise Srcloc.Error on duplicate declarations in one scope. *)

val program : t -> Ast.program

val all : t -> entry list
(** Every variable in the program, globals first. *)

val globals : t -> entry list

val scoped_of : t -> string -> entry list
(** Parameters and locals of the named function. *)

val find : t -> Var_id.t -> entry option

val type_of : t -> Var_id.t -> Ctype.t option

val resolve : t -> ?func:string -> string -> entry option
(** Resolve a source name as seen from inside [func] (innermost wins) or at
    global scope when [func] is omitted. *)

val resolve_id : t -> ?func:string -> string -> Var_id.t option
