(* Identity of a program variable.  Locals of different functions (and
   parameters) are distinct even when they share a name, so analyses key
   their maps on this type rather than on raw names. *)

type scope =
  | Global
  | Local of string   (* enclosing function *)
  | Param of string   (* enclosing function *)

type t = { name : string; scope : scope }

let global name = { name; scope = Global }
let local ~func name = { name; scope = Local func }
let param ~func name = { name; scope = Param func }

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b

let is_global v = v.scope = Global

let scope_function v =
  match v.scope with
  | Global -> None
  | Local f | Param f -> Some f

let to_string v =
  match v.scope with
  | Global -> v.name
  | Local f -> Printf.sprintf "%s@%s" v.name f
  | Param f -> Printf.sprintf "%s@%s(param)" v.name f

let pp fmt v = Format.pp_print_string fmt (to_string v)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)
