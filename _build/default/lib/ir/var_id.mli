(** Identity of a program variable.

    Locals of different functions (and parameters) are distinct even when
    they share a name, so analyses key their maps on this type rather than
    on raw names. *)

type scope =
  | Global
  | Local of string  (** enclosing function *)
  | Param of string  (** enclosing function *)

type t = { name : string; scope : scope }

val global : string -> t
val local : func:string -> string -> t
val param : func:string -> string -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val is_global : t -> bool

val scope_function : t -> string option
(** Enclosing function for locals and parameters; [None] for globals. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
