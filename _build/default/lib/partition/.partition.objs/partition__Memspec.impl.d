lib/partition/memspec.ml: Printf
