lib/partition/memspec.mli:
