lib/partition/partitioner.ml: Analysis Hashtbl Ir List Memspec Printf
