lib/partition/partitioner.mli: Analysis Ir Memspec
