(* Memory-hierarchy parameters of the target HSM architecture as Stage 4
   sees them.  Defaults are the Intel SCC's: 8 KB of on-die Message Passing
   Buffer SRAM per core (384 KB chip-wide), 32-byte lines, up to 64 GB of
   off-chip DDR3 configurable as private or shared through page tables. *)

type t = {
  cores : int;
  mpb_bytes_per_core : int;
  line_bytes : int;
  off_chip_bytes : int;
}

let scc =
  {
    cores = 48;
    mpb_bytes_per_core = 8 * 1024;
    line_bytes = 32;
    off_chip_bytes = 64 * 1024 * 1024 * 1024;
  }

let mpb_total t = t.cores * t.mpb_bytes_per_core

(* On-chip shared capacity available to an application running on [ncores]
   cores: the MPB slices of the participating cores. *)
let on_chip_capacity t ~ncores =
  if ncores < 1 || ncores > t.cores then
    invalid_arg
      (Printf.sprintf "Memspec.on_chip_capacity: ncores %d outside 1..%d"
         ncores t.cores)
  else ncores * t.mpb_bytes_per_core

(* Sizes handed to the MPB allocator are rounded up to whole lines, like
   RCCE_shmalloc does. *)
let round_to_line t bytes =
  (bytes + t.line_bytes - 1) / t.line_bytes * t.line_bytes
