(** Memory-hierarchy parameters of the target HSM architecture as Stage 4
    sees them. *)

type t = {
  cores : int;
  mpb_bytes_per_core : int;
  line_bytes : int;
  off_chip_bytes : int;
}

val scc : t
(** The Intel SCC: 48 cores, 8 KB MPB per core, 32-byte lines, 64 GB
    DDR3. *)

val mpb_total : t -> int
(** Chip-wide MPB capacity (384 KB on the SCC). *)

val on_chip_capacity : t -> ncores:int -> int
(** On-chip shared capacity for an application on [ncores] cores.
    @raise Invalid_argument when [ncores] is outside [1..cores]. *)

val round_to_line : t -> int -> int
(** Round a size up to whole MPB lines, like [RCCE_shmalloc]. *)
