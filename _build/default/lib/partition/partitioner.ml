(* Stage 4: partition the shared variables between the on-chip MPB SRAM
   and the off-chip shared DRAM.

   The paper's Algorithm 3: if everything fits on chip, put everything on
   chip; otherwise sort by size ascending and greedily fill the remaining
   on-chip space, sending the rest off chip.  Two alternative strategies
   are provided for the ablation bench: access-density (accesses per byte,
   the classic scratchpad heuristic of Panda et al. / Kandemir et al. that
   the paper extends) and all-off-chip (the Figure 6.1 configuration). *)

type placement =
  | On_chip
  | Off_chip
  | Split of int
      (* leading bytes on chip, the rest off chip — section 4.4's "larger
         arrays may be allocated entirely in DRAM or split between DRAM
         and SRAM" *)

type item = {
  var : Ir.Var_id.t;
  bytes : int;          (* raw size; MPB placement rounds to lines *)
  accesses : int;       (* estimated dynamic reads+writes, all threads *)
}

type assignment = { item : item; placement : placement }

type result = {
  assignments : assignment list;    (* input order *)
  on_chip_bytes : int;              (* line-rounded bytes used in the MPB *)
  off_chip_bytes : int;
  capacity : int;
}

type strategy =
  | Size_ascending   (* the paper's Algorithm 3 *)
  | Access_density   (* accesses/byte, descending *)
  | All_off_chip

let strategy_to_string = function
  | Size_ascending -> "size-ascending"
  | Access_density -> "access-density"
  | All_off_chip -> "all-off-chip"

let placement_to_string = function
  | On_chip -> "on-chip"
  | Off_chip -> "off-chip"
  | Split on -> Printf.sprintf "split(%dB on-chip)" on

(* Stable sort of the candidate order examined by the greedy fill. *)
let candidate_order strategy items =
  match strategy with
  | Size_ascending ->
      List.stable_sort (fun a b -> compare a.bytes b.bytes) items
  | Access_density ->
      let density i = float_of_int i.accesses /. float_of_int (max 1 i.bytes) in
      List.stable_sort (fun a b -> compare (density b) (density a)) items
  | All_off_chip -> items

let partition ?(strategy = Size_ascending) ?(allow_split = false)
    (spec : Memspec.t) ~capacity items =
  if capacity < 0 then invalid_arg "Partitioner.partition: negative capacity";
  let rounded i = Memspec.round_to_line spec i.bytes in
  let total = List.fold_left (fun acc i -> acc + rounded i) 0 items in
  let placements : (Ir.Var_id.t, placement) Hashtbl.t = Hashtbl.create 16 in
  let on_chip_bytes = ref 0 in
  let place i p =
    Hashtbl.replace placements i.var p;
    match p with
    | On_chip -> on_chip_bytes := !on_chip_bytes + rounded i
    | Split on -> on_chip_bytes := !on_chip_bytes + on
    | Off_chip -> ()
  in
  (if strategy <> All_off_chip && total <= capacity then
     (* Algorithm 3, lines 4-12: everything fits on chip *)
     List.iter (fun i -> place i On_chip) items
   else if strategy = All_off_chip then
     List.iter (fun i -> place i Off_chip) items
   else begin
     (* Algorithm 3, lines 13-29: greedy fill in strategy order; with
        [allow_split] an array that no longer fits leaves its leading
        lines on chip instead of spilling entirely *)
     let remaining = ref capacity in
     List.iter
       (fun i ->
         if rounded i <= !remaining then begin
           place i On_chip;
           remaining := !remaining - rounded i
         end
         else if
           allow_split && !remaining >= spec.Memspec.line_bytes
           && i.bytes > !remaining
         then begin
           let on = !remaining / spec.Memspec.line_bytes
                    * spec.Memspec.line_bytes in
           place i (Split on);
           remaining := !remaining - on
         end
         else place i Off_chip)
       (candidate_order strategy items)
   end);
  let assignments =
    List.map
      (fun i -> { item = i; placement = Hashtbl.find placements i.var })
      items
  in
  let off_chip_bytes =
    List.fold_left
      (fun acc a ->
        match a.placement with
        | Off_chip -> acc + a.item.bytes
        | Split on -> acc + max 0 (a.item.bytes - on)
        | On_chip -> acc)
      0 assignments
  in
  { assignments; on_chip_bytes = !on_chip_bytes; off_chip_bytes; capacity }

let placement_of result var =
  let rec find = function
    | [] -> None
    | a :: rest ->
        if Ir.Var_id.equal a.item.var var then Some a.placement
        else find rest
  in
  find result.assignments

(* Items for the partitioner from a completed analysis: every Shared
   variable with its size and estimated dynamic access count. *)
let items_of_analysis (analysis : Analysis.Pipeline.t) =
  List.map
    (fun (info : Analysis.Varinfo.t) ->
      {
        var = info.Analysis.Varinfo.id;
        bytes = info.Analysis.Varinfo.mem_size;
        accesses =
          Analysis.Access_count.total analysis.Analysis.Pipeline.access
            info.Analysis.Varinfo.id;
      })
    (Analysis.Pipeline.shared_variables analysis)

(* Fraction of all estimated shared accesses that hit the MPB under this
   partition — the figure of merit the ablation bench reports.  Accesses
   to a split array are prorated by its on-chip byte fraction (uniform
   access assumption). *)
let on_chip_access_fraction result =
  let on, all =
    List.fold_left
      (fun (on, all) a ->
        let acc = float_of_int a.item.accesses in
        let served =
          match a.placement with
          | On_chip -> acc
          | Off_chip -> 0.0
          | Split bytes_on ->
              acc *. float_of_int bytes_on
              /. float_of_int (max 1 a.item.bytes)
        in
        (on +. served, all +. acc))
      (0.0, 0.0) result.assignments
  in
  if all = 0.0 then 0.0 else on /. all
