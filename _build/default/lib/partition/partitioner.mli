(** Stage 4: partition shared variables between on-chip MPB SRAM and
    off-chip shared DRAM (the paper's Algorithm 3, plus ablation
    strategies). *)

type placement =
  | On_chip
  | Off_chip
  | Split of int
      (** leading bytes on chip, the rest off chip — section 4.4's
          "larger arrays may be ... split between DRAM and SRAM" *)

type item = {
  var : Ir.Var_id.t;
  bytes : int;     (** raw size; MPB placement rounds up to lines *)
  accesses : int;  (** estimated dynamic reads+writes over all threads *)
}

type assignment = { item : item; placement : placement }

type result = {
  assignments : assignment list;  (** in input order *)
  on_chip_bytes : int;            (** line-rounded bytes used in the MPB *)
  off_chip_bytes : int;
  capacity : int;
}

type strategy =
  | Size_ascending  (** the paper's Algorithm 3 *)
  | Access_density  (** accesses per byte, descending *)
  | All_off_chip    (** the Figure 6.1 configuration *)

val partition :
  ?strategy:strategy -> ?allow_split:bool -> Memspec.t -> capacity:int ->
  item list -> result
(** Algorithm 3: everything on chip if it fits, otherwise a greedy fill
    in strategy order.  With [allow_split] (default false) an array that
    no longer fits leaves its leading lines on chip.
    @raise Invalid_argument on negative capacity. *)

val placement_of : result -> Ir.Var_id.t -> placement option

val items_of_analysis : Analysis.Pipeline.t -> item list
(** Every Shared variable of a completed analysis, with size and estimated
    access count. *)

val on_chip_access_fraction : result -> float
(** Fraction of estimated shared accesses that hit the MPB; split arrays
    are prorated by their on-chip byte fraction. *)

val strategy_to_string : strategy -> string
val placement_to_string : placement -> string
