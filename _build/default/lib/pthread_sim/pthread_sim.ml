(* The Pthread runtime of the paper's baseline: a multi-threaded process
   pinned to a single SCC core.

   All threads share core 0's pipeline and caches; the engine's shared-
   core scheduling charges a context switch per time slice and per
   thread handoff, reproducing "32 threads compete for processor time".
   The process address space is core 0's cacheable private DRAM, so
   memory behaves exactly as it does for an unconverted program.

   Mutexes map onto the engine's lock resources (indexed from core 0's
   register up), and pthread_join of all threads is the implicit end of
   the simulation (the engine runs every context to completion). *)

type process = {
  eng : Scc.Engine.t;
  core : int;
  mutable next_mutex : int;
}

let create_process ?cfg () =
  { eng = Scc.Engine.create ?cfg (); core = 0; next_mutex = 0 }

let engine p = p.eng

(* Allocate in the process's (cacheable private) address space. *)
let malloc p ~bytes =
  Scc.Memmap.alloc (Scc.Engine.memmap p.eng) (Scc.Memmap.Private p.core)
    ~bytes

type mutex = int

let mutex_init p =
  let id = p.next_mutex in
  if id >= Scc.Config.n_cores (Scc.Engine.cfg p.eng) then
    invalid_arg "Pthread_sim.mutex_init: out of lock resources";
  p.next_mutex <- id + 1;
  id

let mutex_lock (api : Scc.Engine.api) (m : mutex) = api.Scc.Engine.acquire m

let mutex_unlock (api : Scc.Engine.api) (m : mutex) = api.Scc.Engine.release m

let spawn_thread p body = ignore (Scc.Engine.spawn p.eng ~core:p.core body)

(* Run [nthreads] copies of [body] on the single core and return the
   engine for inspection.  [body] receives the thread index via
   [api.self]. *)
let run ?cfg ~nthreads body =
  let p = create_process ?cfg () in
  for _ = 1 to nthreads do
    spawn_thread p body
  done;
  Scc.Engine.run p.eng;
  p.eng
