(** The Pthread runtime of the paper's baseline: a multi-threaded process
    pinned to a single SCC core, threads sharing that core's pipeline and
    caches with quantum/context-switch overhead. *)

type process

val create_process : ?cfg:Scc.Config.t -> unit -> process

val engine : process -> Scc.Engine.t

val malloc : process -> bytes:int -> int
(** Allocate in the process's cacheable private address space. *)

type mutex = int

val mutex_init : process -> mutex
(** @raise Invalid_argument when lock resources run out. *)

val mutex_lock : Scc.Engine.api -> mutex -> unit
val mutex_unlock : Scc.Engine.api -> mutex -> unit

val spawn_thread : process -> (Scc.Engine.api -> unit) -> unit

val run :
  ?cfg:Scc.Config.t -> nthreads:int -> (Scc.Engine.api -> unit) -> Scc.Engine.t
(** Run [nthreads] copies of [body] on one core; the thread index is
    [api.self]. *)
