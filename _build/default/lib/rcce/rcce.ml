(* The RCCE runtime on the simulator.

   Mirrors the C library the paper targets (van der Wijngaart et al.,
   "Light-weight communications on Intel's single-chip cloud computer
   processor"): units of execution (UEs) tied one-to-one to cores, a
   collective off-chip shared allocator (RCCE_shmalloc), an on-chip MPB
   allocator (RCCE_malloc), one-sided put/get moving data through the
   MPB, flag-based barriers, and the per-core test-and-set locks.

   Collective allocations must return the same address in every UE: the
   runtime keeps one allocation log keyed by per-UE call sequence — the
   first UE to reach the k-th collective call performs the real
   allocation, later UEs' k-th calls return the logged address. *)

type runtime = {
  eng : Scc.Engine.t;
  cores : int array;                   (* participating cores, rank order *)
  mutable shm_log : int list;          (* collective shmalloc results *)
  mutable mpb_log : int list list;     (* collective striped MPB results *)
  shm_counter : int array;             (* per-UE collective call index *)
  mpb_counter : int array;
  comm_buf : int option array;         (* per-UE MPB message buffer *)
}

let create_runtime eng ~cores =
  let n = Array.length cores in
  {
    eng;
    cores;
    shm_log = [];
    mpb_log = [];
    shm_counter = Array.make n 0;
    mpb_counter = Array.make n 0;
    comm_buf = Array.make n None;
  }

type t = { rt : runtime; api : Scc.Engine.api }

let attach rt api = { rt; api }

let ue t = t.api.Scc.Engine.self

let num_ues t = Array.length t.rt.cores

let api t = t.api

(* --- collective allocation ---------------------------------------------- *)

let shmalloc t ~bytes =
  let rank = ue t in
  let k = t.rt.shm_counter.(rank) in
  t.rt.shm_counter.(rank) <- k + 1;
  let log_len = List.length t.rt.shm_log in
  if k < log_len then List.nth t.rt.shm_log k
  else begin
    assert (k = log_len);
    let addr =
      Scc.Memmap.alloc (Scc.Engine.memmap t.rt.eng) Scc.Memmap.Shared_dram
        ~bytes
    in
    t.rt.shm_log <- t.rt.shm_log @ [ addr ];
    addr
  end

(* On-chip allocation: the block is striped across the participating
   cores' MPB slices; returns the per-chunk bases (rank order).
   @raise Scc.Memmap.Out_of_memory when a slice is exhausted. *)
let malloc_mpb t ~bytes =
  let rank = ue t in
  let k = t.rt.mpb_counter.(rank) in
  t.rt.mpb_counter.(rank) <- k + 1;
  let log_len = List.length t.rt.mpb_log in
  if k < log_len then List.nth t.rt.mpb_log k
  else begin
    assert (k = log_len);
    let chunks =
      Scc.Memmap.alloc_mpb_striped (Scc.Engine.memmap t.rt.eng)
        ~cores:(Array.to_list t.rt.cores) ~bytes
    in
    t.rt.mpb_log <- t.rt.mpb_log @ [ chunks ];
    chunks
  end

(* --- one-sided communication -------------------------------------------- *)

(* RCCE_put: move [bytes] from the caller into the MPB slice of the
   target UE. *)
let put t ~dest_ue ~offset ~bytes =
  let core = t.rt.cores.(dest_ue) in
  let addr = Scc.Memmap.addr_of_mpb ~core ~offset in
  t.api.Scc.Engine.store addr ~bytes

(* RCCE_get: move [bytes] from the MPB slice of the source UE into the
   caller. *)
let get t ~src_ue ~offset ~bytes =
  let core = t.rt.cores.(src_ue) in
  let addr = Scc.Memmap.addr_of_mpb ~core ~offset in
  t.api.Scc.Engine.load addr ~bytes

(* --- two-sided send/recv ------------------------------------------------- *)

(* RCCE's blocking send/recv: the receiver posts a "ready" flag, the
   sender moves the message into the receiver's MPB buffer and raises a
   "sent" flag, and the receiver drains its buffer.  One directed flag
   pair per (source, destination), so matched send/recv pairs alternate
   correctly. *)

let comm_buf_bytes = 1024

let comm_buf t ~ue =
  match t.rt.comm_buf.(ue) with
  | Some addr -> addr
  | None ->
      let addr =
        Scc.Memmap.alloc (Scc.Engine.memmap t.rt.eng)
          (Scc.Memmap.Mpb t.rt.cores.(ue)) ~bytes:comm_buf_bytes
      in
      t.rt.comm_buf.(ue) <- Some addr;
      addr

let flag_ready t ~src ~dest = 2 * ((src * num_ues t) + dest)
let flag_sent t ~src ~dest = (2 * ((src * num_ues t) + dest)) + 1

let send t ~dest_ue ~bytes =
  if dest_ue = ue t then invalid_arg "Rcce.send: send to self";
  let api = t.api in
  let buf = comm_buf t ~ue:dest_ue in
  let src = ue t in
  let rec chunk remaining =
    if remaining > 0 then begin
      let n = min remaining comm_buf_bytes in
      api.Scc.Engine.flag_wait ~id:(flag_ready t ~src ~dest:dest_ue);
      api.Scc.Engine.flag_set ~id:(flag_ready t ~src ~dest:dest_ue) false;
      api.Scc.Engine.store buf ~bytes:n;
      api.Scc.Engine.flag_set ~id:(flag_sent t ~src ~dest:dest_ue) true;
      chunk (remaining - n)
    end
  in
  chunk bytes

let recv t ~src_ue ~bytes =
  if src_ue = ue t then invalid_arg "Rcce.recv: receive from self";
  let api = t.api in
  let buf = comm_buf t ~ue:(ue t) in
  let dest = ue t in
  let rec chunk remaining =
    if remaining > 0 then begin
      let n = min remaining comm_buf_bytes in
      api.Scc.Engine.flag_set ~id:(flag_ready t ~src:src_ue ~dest) true;
      api.Scc.Engine.flag_wait ~id:(flag_sent t ~src:src_ue ~dest);
      api.Scc.Engine.flag_set ~id:(flag_sent t ~src:src_ue ~dest) false;
      api.Scc.Engine.load buf ~bytes:n;
      chunk (remaining - n)
    end
  in
  chunk bytes

(* --- synchronization ----------------------------------------------------- *)

let barrier t = t.api.Scc.Engine.barrier ()

let acquire_lock t id = t.api.Scc.Engine.acquire (t.rt.cores.(id mod num_ues t))

let release_lock t id = t.api.Scc.Engine.release (t.rt.cores.(id mod num_ues t))

(* --- power management ------------------------------------------------------ *)

(* RCCE's power API expresses frequency as a divider of the 1600 MHz
   mesh clock: divider 2 = 800 MHz (the paper's operating point), 3 =
   533 MHz, and so on.  The change applies to the caller's whole tile. *)
let set_frequency_divider t ~divider =
  if divider < 2 || divider > 16 then
    invalid_arg "Rcce.set_frequency_divider: divider outside 2..16";
  let mhz = 1600 / divider in
  t.api.Scc.Engine.set_frequency ~core:t.api.Scc.Engine.core ~mhz

(* --- running ------------------------------------------------------------- *)

(* Spawn one UE per core and run to completion; [program] is the RCCE_APP
   body. *)
let run ?cfg ~ncores program =
  let eng = Scc.Engine.create ?cfg () in
  let cores = Array.init ncores (fun i -> i) in
  let rt = create_runtime eng ~cores in
  Array.iter
    (fun core ->
      ignore
        (Scc.Engine.spawn eng ~core (fun api -> program (attach rt api))))
    cores;
  Scc.Engine.run eng;
  eng
