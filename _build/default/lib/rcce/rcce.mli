(** The RCCE runtime on the simulator.

    Mirrors the C library the paper targets: units of execution (UEs) tied
    one-to-one to cores, collective off-chip shared allocation
    ([RCCE_shmalloc]), striped on-chip MPB allocation ([RCCE_malloc]),
    one-sided put/get through the MPB, barriers, and the per-core
    test-and-set locks. *)

type runtime

val create_runtime : Scc.Engine.t -> cores:int array -> runtime
(** [cores] are the participating cores in rank order. *)

type t
(** A per-UE handle. *)

val attach : runtime -> Scc.Engine.api -> t
(** Bind a spawned context to the runtime (call inside the program). *)

val ue : t -> int
val num_ues : t -> int
val api : t -> Scc.Engine.api

val shmalloc : t -> bytes:int -> int
(** Collective off-chip shared allocation: the k-th call returns the same
    address in every UE. *)

val malloc_mpb : t -> bytes:int -> int list
(** Collective on-chip allocation, striped across the participating
    cores' MPB slices; returns the per-chunk base addresses.
    @raise Scc.Memmap.Out_of_memory when a slice is exhausted. *)

val put : t -> dest_ue:int -> offset:int -> bytes:int -> unit
(** [RCCE_put]: write into the MPB slice of the target UE. *)

val get : t -> src_ue:int -> offset:int -> bytes:int -> unit
(** [RCCE_get]: read from the MPB slice of the source UE. *)

val send : t -> dest_ue:int -> bytes:int -> unit
(** Blocking two-sided send: waits for the receiver's "ready" flag, moves
    the message into its MPB buffer (chunked), raises "sent".
    @raise Invalid_argument on send-to-self. *)

val recv : t -> src_ue:int -> bytes:int -> unit
(** Blocking receive matching {!send}. *)

val barrier : t -> unit

val acquire_lock : t -> int -> unit
(** Acquire the test-and-set register of the core hosting lock [id]. *)

val release_lock : t -> int -> unit

val set_frequency_divider : t -> divider:int -> unit
(** RCCE's power API: set the caller's tile frequency to
    1600 MHz / divider (divider 2..16 — 2 is the paper's 800 MHz
    operating point). *)

val run :
  ?cfg:Scc.Config.t -> ncores:int -> (t -> unit) -> Scc.Engine.t
(** Spawn one UE per core, run to completion, return the engine for
    inspection. *)
