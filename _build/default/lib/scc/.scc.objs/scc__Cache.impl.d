lib/scc/cache.ml: Array
