lib/scc/cache.mli:
