lib/scc/config.ml: Printf
