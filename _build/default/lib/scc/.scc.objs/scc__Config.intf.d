lib/scc/config.mli:
