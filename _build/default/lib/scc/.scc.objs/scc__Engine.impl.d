lib/scc/engine.ml: Array Cache Config Effect Hashtbl List Memmap Mesh Printf Queue Stats Trace
