lib/scc/engine.mli: Config Memmap Mesh Stats Trace
