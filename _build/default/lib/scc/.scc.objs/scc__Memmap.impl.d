lib/scc/memmap.ml: Array Config List Printf
