lib/scc/memmap.mli: Config
