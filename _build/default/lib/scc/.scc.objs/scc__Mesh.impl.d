lib/scc/mesh.ml: Array Config
