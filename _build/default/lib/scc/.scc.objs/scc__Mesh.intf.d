lib/scc/mesh.mli: Config
