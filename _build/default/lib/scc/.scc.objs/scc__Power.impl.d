lib/scc/power.ml: Config Float
