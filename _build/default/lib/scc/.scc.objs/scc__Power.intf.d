lib/scc/power.mli: Config
