lib/scc/stats.ml: Array Printf
