lib/scc/stats.mli:
