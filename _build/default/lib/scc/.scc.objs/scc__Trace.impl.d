lib/scc/trace.ml: Buffer List Printf
