lib/scc/trace.mli:
