(* Configuration of the simulated SCC chip.

   Structural numbers follow the published part (Howard et al., JSSC 2011;
   Mattson et al., SC 2010): 24 tiles on a 6x4 mesh, two P54C cores per
   tile, per-core L1/L2, 8 KB MPB slice per core, four DDR3 memory
   controllers at the mesh corners.  Frequencies default to the paper's
   Table 6.1 operating point: 800 MHz cores, 1600 MHz mesh, 1066 MHz
   DDR3.

   Latency constants are in the unit of the component that imposes them
   (core cycles, mesh cycles per hop, DRAM cycles) and converted to a
   picosecond timebase at simulation time, so changing a frequency changes
   timing the way DVFS does on the real part. *)

type t = {
  (* topology *)
  mesh_cols : int;
  mesh_rows : int;
  cores_per_tile : int;
  (* Table 6.1 *)
  core_freq_mhz : int;
  mesh_freq_mhz : int;
  dram_freq_mhz : int;
  (* per-core caches (P54C: 8 KB write-back L1D; 256 KB unified L2) *)
  l1_bytes : int;
  l1_assoc : int;
  l1_hit_cycles : int;          (* core cycles *)
  l2_bytes : int;
  l2_assoc : int;
  l2_hit_cycles : int;          (* core cycles *)
  line_bytes : int;
  (* message passing buffer *)
  mpb_bytes_per_core : int;
  mpb_base_cycles : int;        (* core cycles to reach the MPB ring *)
  (* mesh *)
  mesh_cycles_per_hop : int;    (* mesh cycles, one direction *)
  (* memory controllers *)
  n_mcs : int;
  dram_access_cycles : int;     (* DRAM cycles once at the controller *)
  mc_service_cycles : int;      (* DRAM cycles of controller occupancy per line *)
  dram_base_cycles : int;       (* core cycles to miss out of the core *)
  (* single-core thread scheduling (the Pthread baseline) *)
  quantum_cycles : int;         (* core cycles per time slice *)
  context_switch_cycles : int;  (* core cycles per switch *)
  (* model option: posted (write-combined) uncached shared stores — the
     SCC's write-combine buffer lets an uncached store retire once issued
     while the line drains to the controller in the background.  Off by
     default: the calibrated figures use blocking stores. *)
  posted_shared_writes : bool;
}

let default =
  {
    mesh_cols = 6;
    mesh_rows = 4;
    cores_per_tile = 2;
    core_freq_mhz = 800;
    mesh_freq_mhz = 1600;
    dram_freq_mhz = 1066;
    l1_bytes = 8 * 1024;
    l1_assoc = 2;
    l1_hit_cycles = 1;
    l2_bytes = 256 * 1024;
    l2_assoc = 4;
    l2_hit_cycles = 18;
    line_bytes = 32;
    mpb_bytes_per_core = 8 * 1024;
    mpb_base_cycles = 8;
    mesh_cycles_per_hop = 4;
    n_mcs = 4;
    dram_access_cycles = 46;
    mc_service_cycles = 36;
    dram_base_cycles = 40;
    quantum_cycles = 10_000;
    context_switch_cycles = 600;
    posted_shared_writes = false;
  }

let n_tiles t = t.mesh_cols * t.mesh_rows

let n_cores t = n_tiles t * t.cores_per_tile

(* --- picosecond timebase ------------------------------------------------ *)

let ps_per_cycle freq_mhz = 1_000_000 / freq_mhz

let core_cycles_ps t n = n * ps_per_cycle t.core_freq_mhz

let mesh_cycles_ps t n = n * ps_per_cycle t.mesh_freq_mhz

let dram_cycles_ps t n = n * ps_per_cycle t.dram_freq_mhz

let ps_to_core_cycles t ps = ps / ps_per_cycle t.core_freq_mhz

(* The paper's Table 6.1, as rendered rows. *)
let table_6_1 t ~rcce_cores ~pthread_threads =
  [
    [ ""; "RCCE"; "Pthreads" ];
    [ "Core Frequency";
      Printf.sprintf "%d MHz" t.core_freq_mhz;
      Printf.sprintf "%d MHz" t.core_freq_mhz ];
    [ "Communication Network";
      Printf.sprintf "%d MHz" t.mesh_freq_mhz;
      Printf.sprintf "%d MHz" t.mesh_freq_mhz ];
    [ "Off-chip Memory";
      Printf.sprintf "%d MHz" t.dram_freq_mhz;
      Printf.sprintf "%d MHz" t.dram_freq_mhz ];
    [ "Execution Units";
      Printf.sprintf "%d cores" rcce_cores;
      Printf.sprintf "%d threads" pthread_threads ];
  ]
