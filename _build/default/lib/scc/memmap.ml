(* Address-space layout and allocation.

   The simulator tracks timing, not data, so an "address" only needs to
   identify which physical resource serves it.  Addresses are 63-bit ints:

     bits 40..41  region kind (0 private, 1 shared DRAM, 2 MPB)
     bits 32..39  owning core (private and MPB regions)
     bits  0..31  byte offset within the region

   Private pages are cacheable; shared DRAM pages are uncacheable (the
   SCC's page-table configuration for shared memory); MPB space is the
   on-die SRAM.  Each region has a simple line-aligned bump allocator; the
   MPB enforces its 8 KB-per-core capacity. *)

type region =
  | Private of int      (* owning core *)
  | Shared_dram
  | Mpb of int          (* owning core *)

exception Out_of_memory of region

let region_to_string = function
  | Private core -> Printf.sprintf "private(core %d)" core
  | Shared_dram -> "shared-dram"
  | Mpb core -> Printf.sprintf "MPB(core %d)" core

let kind_shift = 40
let core_shift = 32
let offset_mask = (1 lsl 32) - 1

let encode ~kind ~core ~offset =
  (kind lsl kind_shift) lor (core lsl core_shift) lor offset

let addr_of ~region ~offset =
  match region with
  | Private core -> encode ~kind:0 ~core ~offset
  | Shared_dram -> encode ~kind:1 ~core:0 ~offset
  | Mpb core -> encode ~kind:2 ~core ~offset

let region_of_addr addr =
  let kind = (addr lsr kind_shift) land 0x3 in
  let core = (addr lsr core_shift) land 0xff in
  match kind with
  | 0 -> Private core
  | 1 -> Shared_dram
  | 2 -> Mpb core
  | _ -> invalid_arg "Memmap.region_of_addr: bad address"

let offset_of_addr addr = addr land offset_mask

(* Address of a byte offset within a core's MPB slice. *)
let addr_of_mpb ~core ~offset = addr_of ~region:(Mpb core) ~offset

type t = {
  cfg : Config.t;
  mutable shared_off : int;
  private_off : int array;   (* per core *)
  mpb_off : int array;       (* per core *)
}

(* DRAM offsets start one line in, so their offset 0 is a guard: no
   allocation ever returns an address a null (or null-adjacent) pointer
   could alias — a raw 0 decodes to Private(0) offset 0 — letting the
   interpreter diagnose null dereferences.  MPB slices are not guarded:
   their 8 KB capacity is precious and unreachable from a null pointer. *)
let create (cfg : Config.t) =
  let n = Config.n_cores cfg in
  let guard = cfg.Config.line_bytes in
  { cfg; shared_off = guard;
    private_off = Array.make n guard;
    mpb_off = Array.make n 0 }

let align_up line n = (n + line - 1) / line * line

let alloc t region ~bytes =
  if bytes <= 0 then invalid_arg "Memmap.alloc: non-positive size";
  let line = t.cfg.Config.line_bytes in
  let rounded = align_up line bytes in
  match region with
  | Shared_dram ->
      let offset = t.shared_off in
      t.shared_off <- offset + rounded;
      addr_of ~region ~offset
  | Private core ->
      let offset = t.private_off.(core) in
      t.private_off.(core) <- offset + rounded;
      addr_of ~region ~offset
  | Mpb core ->
      let offset = t.mpb_off.(core) in
      if offset + rounded > t.cfg.Config.mpb_bytes_per_core then
        raise (Out_of_memory region);
      t.mpb_off.(core) <- offset + rounded;
      addr_of ~region ~offset

let mpb_used t core = t.mpb_off.(core)

let shared_used t = t.shared_off

(* Allocate shared space striped across the MPB slices of [cores]: chunk i
   goes to core (i mod n).  Returns the per-chunk base addresses.  This is
   how an array larger than one slice still lands on chip. *)
let alloc_mpb_striped t ~cores ~bytes =
  let n = List.length cores in
  if n = 0 then invalid_arg "Memmap.alloc_mpb_striped: no cores";
  let per = align_up t.cfg.Config.line_bytes ((bytes + n - 1) / n) in
  List.map (fun core -> alloc t (Mpb core) ~bytes:per) cores
