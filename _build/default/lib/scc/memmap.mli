(** Address-space layout and allocation.

    Addresses identify the physical resource serving them: a core's
    cacheable private DRAM, the uncacheable shared DRAM, or a core's MPB
    slice.  Each region has a line-aligned bump allocator; the MPB
    enforces its per-core capacity. *)

type region =
  | Private of int  (** owning core *)
  | Shared_dram
  | Mpb of int      (** owning core *)

exception Out_of_memory of region

val region_to_string : region -> string

val region_of_addr : int -> region
val offset_of_addr : int -> int

val addr_of_mpb : core:int -> offset:int -> int
(** Address of a byte offset within a core's MPB slice. *)

type t

val create : Config.t -> t

val alloc : t -> region -> bytes:int -> int
(** Line-aligned allocation; returns the base address.
    @raise Out_of_memory when an MPB slice is exhausted.
    @raise Invalid_argument on non-positive sizes. *)

val alloc_mpb_striped : t -> cores:int list -> bytes:int -> int list
(** Allocate shared space striped across the MPB slices of [cores];
    returns per-chunk base addresses. *)

val mpb_used : t -> int -> int
val shared_used : t -> int
