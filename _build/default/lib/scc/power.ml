(* Power model of the SCC's DVFS envelope.

   The part's published operating range spans 0.7 V / 125 MHz at 25 W up
   to 1.14 V / 1 GHz at 125 W (at 50 degC).  Dynamic power scales as
   C * V^2 * f; the model fits the capacitance-and-static terms to the two
   published endpoints and interpolates between them, which is enough for
   the energy estimates the experiment harness reports alongside run
   times. *)

type operating_point = { volts : float; freq_mhz : int; watts : float }

let low_point = { volts = 0.7; freq_mhz = 125; watts = 25.0 }
let high_point = { volts = 1.14; freq_mhz = 1000; watts = 125.0 }

let operating_points = [ low_point; high_point ]

(* Fit watts = static + k * V^2 * f to the two endpoints. *)
let k, static =
  let term p = p.volts *. p.volts *. float_of_int p.freq_mhz in
  let k =
    (high_point.watts -. low_point.watts) /. (term high_point -. term low_point)
  in
  (k, low_point.watts -. (k *. term low_point))

(* Minimum published voltage that sustains a core frequency: linear
   interpolation between the endpoints, clamped. *)
let volts_for_freq freq_mhz =
  let f = float_of_int freq_mhz in
  let f0 = float_of_int low_point.freq_mhz in
  let f1 = float_of_int high_point.freq_mhz in
  let ratio = (f -. f0) /. (f1 -. f0) in
  let ratio = Float.max 0.0 (Float.min 1.0 ratio) in
  low_point.volts +. (ratio *. (high_point.volts -. low_point.volts))

let chip_watts ?volts ~freq_mhz () =
  let v = match volts with Some v -> v | None -> volts_for_freq freq_mhz in
  static +. (k *. v *. v *. float_of_int freq_mhz)

(* Energy of a run: chip power at the configured core frequency, scaled by
   the fraction of cores active (idle tiles still burn static power). *)
let energy_joules (cfg : Config.t) ~active_cores ~elapsed_ps =
  let total = float_of_int (Config.n_cores cfg) in
  let active = float_of_int active_cores in
  let dynamic =
    chip_watts ~freq_mhz:cfg.Config.core_freq_mhz () -. static
  in
  let watts = static +. (dynamic *. active /. total) in
  watts *. (float_of_int elapsed_ps *. 1e-12)
