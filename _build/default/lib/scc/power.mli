(** Power model of the SCC's DVFS envelope (0.7 V / 125 MHz / 25 W up to
    1.14 V / 1 GHz / 125 W), interpolated as static + C*V^2*f. *)

type operating_point = { volts : float; freq_mhz : int; watts : float }

val low_point : operating_point
val high_point : operating_point
val operating_points : operating_point list

val volts_for_freq : int -> float
(** Minimum modelled voltage sustaining a core frequency (clamped linear
    interpolation). *)

val chip_watts : ?volts:float -> freq_mhz:int -> unit -> float

val energy_joules : Config.t -> active_cores:int -> elapsed_ps:int -> float
(** Energy of a run: chip power at the configured frequency scaled by the
    active-core fraction (idle tiles still burn static power). *)
