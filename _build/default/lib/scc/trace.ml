(* Execution tracing: timed intervals per context, exportable in the
   Chrome tracing JSON format (chrome://tracing, Perfetto) so a
   simulation's interleaving can be inspected visually. *)

type kind =
  | Compute
  | Mem_private
  | Mem_shared
  | Mem_mpb
  | Barrier_wait
  | Lock_wait

let kind_to_string = function
  | Compute -> "compute"
  | Mem_private -> "private-mem"
  | Mem_shared -> "shared-dram"
  | Mem_mpb -> "mpb"
  | Barrier_wait -> "barrier"
  | Lock_wait -> "lock"

type event = {
  ctx : int;
  core : int;
  start_ps : int;
  end_ps : int;
  kind : kind;
}

type t = { mutable events : event list; mutable count : int; limit : int }

let create ?(limit = 1_000_000) () = { events = []; count = 0; limit }

let record t ~ctx ~core ~start_ps ~end_ps kind =
  if t.count < t.limit && end_ps > start_ps then begin
    t.events <- { ctx; core; start_ps; end_ps; kind } :: t.events;
    t.count <- t.count + 1
  end

let events t = List.rev t.events

let length t = t.count

(* Total busy picoseconds per kind, per context. *)
let busy_by_kind t ~ctx =
  List.fold_left
    (fun acc e ->
      if e.ctx = ctx then
        let dur = e.end_ps - e.start_ps in
        let prev = try List.assoc e.kind acc with Not_found -> 0 in
        (e.kind, prev + dur) :: List.remove_assoc e.kind acc
      else acc)
    [] t.events

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d}|}
           (kind_to_string e.kind)
           (float_of_int e.start_ps /. 1e6)
           (float_of_int (e.end_ps - e.start_ps) /. 1e6)
           e.core e.ctx))
    (events t);
  Buffer.add_string buf "]\n";
  Buffer.contents buf
