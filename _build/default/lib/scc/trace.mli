(** Execution tracing: timed intervals per context, exportable as Chrome
    tracing JSON (chrome://tracing, Perfetto). *)

type kind =
  | Compute
  | Mem_private
  | Mem_shared
  | Mem_mpb
  | Barrier_wait
  | Lock_wait

val kind_to_string : kind -> string

type event = {
  ctx : int;
  core : int;
  start_ps : int;
  end_ps : int;
  kind : kind;
}

type t

val create : ?limit:int -> unit -> t
(** Recording stops after [limit] events (default 10^6). *)

val record :
  t -> ctx:int -> core:int -> start_ps:int -> end_ps:int -> kind -> unit
(** Zero-length intervals are dropped. *)

val events : t -> event list
(** In recording order. *)

val length : t -> int

val busy_by_kind : t -> ctx:int -> (kind * int) list
(** Total busy picoseconds per kind for one context. *)

val to_chrome_json : t -> string
