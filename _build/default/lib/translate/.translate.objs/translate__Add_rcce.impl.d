lib/translate/add_rcce.ml: Ast Cfront Ctype List Pass String
