lib/translate/add_rcce.mli: Pass
