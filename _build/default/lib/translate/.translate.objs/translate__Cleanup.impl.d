lib/translate/cleanup.ml: Ast Cfront Constfold Hashtbl List Pass String Visit
