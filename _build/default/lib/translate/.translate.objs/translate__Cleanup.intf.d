lib/translate/cleanup.mli: Pass
