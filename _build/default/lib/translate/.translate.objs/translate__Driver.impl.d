lib/translate/driver.ml: Add_rcce Analysis Cfront Cleanup List Mutex_convert Optimize Parser Partition Pass Pretty Printf Remove_pthread Shared_rewrite Srcloc Thread_to_process
