lib/translate/driver.mli: Analysis Ast Cfront Partition Pass
