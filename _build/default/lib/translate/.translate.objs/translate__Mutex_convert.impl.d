lib/translate/mutex_convert.ml: Ast Cfront List Pass String Visit
