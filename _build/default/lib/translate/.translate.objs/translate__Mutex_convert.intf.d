lib/translate/mutex_convert.mli: Pass
