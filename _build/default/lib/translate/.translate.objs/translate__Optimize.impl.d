lib/translate/optimize.ml: Ast Cfront Constfold List Pass Visit
