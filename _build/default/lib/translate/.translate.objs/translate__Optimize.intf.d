lib/translate/optimize.mli: Pass
