lib/translate/pass.ml: Analysis Ast Cfront Ir List Parser Partition Pretty Printf Srcloc
