lib/translate/pass.mli: Analysis Ast Cfront Partition
