lib/translate/remove_pthread.ml: Ast Cfront Ctype Hashtbl List Pass Visit
