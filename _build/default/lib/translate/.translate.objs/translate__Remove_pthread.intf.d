lib/translate/remove_pthread.mli: Pass
