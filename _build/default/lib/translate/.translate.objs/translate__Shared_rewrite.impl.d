lib/translate/shared_rewrite.ml: Analysis Ast Cfront Ctype Ir List Partition Pass String Thread_to_process Visit
