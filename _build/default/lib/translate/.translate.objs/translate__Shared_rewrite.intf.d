lib/translate/shared_rewrite.mli: Pass
