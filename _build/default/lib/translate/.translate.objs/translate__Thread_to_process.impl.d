lib/translate/thread_to_process.ml: Analysis Ast Cfront Ctype List Option Pass Srcloc String Visit
