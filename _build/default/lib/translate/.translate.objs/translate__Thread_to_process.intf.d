lib/translate/thread_to_process.mli: Pass
