(** Stage 5 finalization (the paper's Algorithms 9–10): replace the
    pthread include with ["RCCE.h"], rename [main] to [RCCE_APP], insert
    [RCCE_init(&argc, &argv)] first and [RCCE_finalize()] before the final
    return. *)

val app_name : string
(** ["RCCE_APP"]. *)

val pass : Pass.t
