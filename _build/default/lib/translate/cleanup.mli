(** Final tidy-up: drop local declarations of variables no longer
    referenced anywhere (with effect-free initializers) and collapse
    consecutive [RCCE_barrier] statements. *)

val pass : Pass.t
