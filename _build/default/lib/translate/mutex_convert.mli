(** Stage 5 synchronization conversion: Pthread mutex lock/unlock become
    RCCE test-and-set acquire/release, one register per distinct mutex in
    order of first appearance.  Must run before {!Remove_pthread}. *)

exception Too_many_locks of int
(** More distinct mutexes than the target has test-and-set registers. *)

val pass : Pass.t
