(** Stage 5 code optimizations (the paper's section 7.3 future work):
    constant folding, dead-branch elimination, unreachable-statement
    removal.  Runs only with the [optimize] option. *)

val pass : Pass.t
