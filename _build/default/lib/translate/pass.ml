open Cfront

(* Pass manager in the style of the Cetus framework the paper builds on:
   each component is an analysis or transform pass, and a driver runs them
   in series, checking after every transform that the IR is still
   self-consistent (it prints to parseable C and its symbol table still
   builds). *)

type options = {
  ncores : int;            (* cores of the target chip *)
  capacity : int;          (* on-chip bytes available for shared data *)
  strategy : Partition.Partitioner.strategy;
  sound_locals : bool;
      (* hoist shared *locals* into shared memory too; the thesis's own
         example output leaves them on the process stack (see DESIGN.md) *)
  include_possible : bool; (* propagate sharing via Possible relations *)
  many_to_one : bool;
      (* map several threads onto one core with a task loop instead of
         rejecting programs with more threads than cores (the paper's
         section 7.2 future work, after Cichowski et al.) *)
  optimize : bool;
      (* constant folding + dead-branch elimination (section 7.3) *)
}

let default_options =
  {
    ncores = Partition.Memspec.scc.Partition.Memspec.cores;
    capacity = 0;   (* all-off-chip, the Figure 6.1 configuration *)
    strategy = Partition.Partitioner.Size_ascending;
    sound_locals = false;
    include_possible = false;
    many_to_one = false;
    optimize = false;
  }

type env = {
  options : options;
  analysis : Analysis.Pipeline.t;
  partition : Partition.Partitioner.result;
  mutable notes : string list;   (* pass-emitted remarks, reverse order *)
}

let note env fmt =
  Printf.ksprintf (fun msg -> env.notes <- msg :: env.notes) fmt

type t = {
  name : string;
  transform : env -> Ast.program -> Ast.program;
}

exception Inconsistent of string * string
(** [Inconsistent (pass, diagnostic)]: a transform produced an IR that no
    longer prints/parses cleanly. *)

let check_consistency pass_name program =
  let printed = Pretty.program program in
  (match Parser.program printed with
  | (_ : Ast.program) -> ()
  | exception Srcloc.Error (loc, msg) ->
      raise
        (Inconsistent
           (pass_name, Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg)));
  match Ir.Symtab.build program with
  | (_ : Ir.Symtab.t) -> ()
  | exception Srcloc.Error (loc, msg) ->
      raise
        (Inconsistent
           (pass_name, Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg))

let run_all ?(verify = true) passes env program =
  List.fold_left
    (fun program pass ->
      let program = pass.transform env program in
      if verify then check_consistency pass.name program;
      program)
    program passes
