open Cfront

(** Pass manager in the style of the Cetus framework: transform passes run
    in series, with an IR self-consistency check after each one. *)

type options = {
  ncores : int;
  capacity : int;
      (** on-chip bytes available for shared data; 0 = all off-chip *)
  strategy : Partition.Partitioner.strategy;
  sound_locals : bool;
      (** hoist shared locals into shared memory (the thesis's example
          output leaves them on the process stack) *)
  include_possible : bool;
  many_to_one : bool;
      (** map several threads onto one core with a task loop instead of
          rejecting programs with more threads than cores (the paper's
          section 7.2 future work) *)
  optimize : bool;
      (** constant folding + dead-branch elimination (section 7.3) *)
}

val default_options : options
(** 48 cores, all-off-chip placement, paper-faithful behaviour. *)

type env = {
  options : options;
  analysis : Analysis.Pipeline.t;
  partition : Partition.Partitioner.result;
  mutable notes : string list;
}

val note : env -> ('a, unit, string, unit) format4 -> 'a
(** Record a remark about what a pass did. *)

type t = {
  name : string;
  transform : env -> Ast.program -> Ast.program;
}

exception Inconsistent of string * string
(** [(pass, diagnostic)]: a transform produced an IR that no longer
    prints/parses cleanly. *)

val check_consistency : string -> Ast.program -> unit
(** @raise Inconsistent when printing then reparsing the program fails. *)

val run_all : ?verify:bool -> t list -> env -> Ast.program -> Ast.program
(** Run passes in order; [verify] (default true) checks consistency after
    each. *)
