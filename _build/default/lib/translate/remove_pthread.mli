(** Stage 5 cleanup (the paper's Algorithms 6–8): [pthread_self] becomes
    [RCCE_ue], declarations of pthread data types are removed, and every
    remaining [pthread_*] call statement is dropped.  Must run after
    {!Thread_to_process} (which gives joins their barrier semantics) and
    after {!Mutex_convert} (which rewrites lock/unlock before they would be
    dropped here). *)

val pthread_types : string list
val pthread_calls : string list

val pass : Pass.t
