(** Stage 4 code generation: implicitly-shared variables become explicitly
    shared through the RCCE allocation API ([RCCE_shmalloc] off-chip,
    [RCCE_malloc] on-chip), following the Stage 4 partitioner's placement.
    Shared global arrays and scalars are retyped to pointers; scalar uses
    are rewritten to [ *v ]; allocation statements are inserted at the top
    of [main]; prior [malloc] calls for the same variables are removed.
    With [sound_locals], scalar shared locals are hoisted into shared
    globals as well. *)

val pass : Pass.t
