(** Stage 5, Algorithm 4: convert thread launches into per-process calls.

    Create loops are dismantled into a direct call with the loop counter
    replaced by the core-ID variable; standalone creates become calls
    guarded by [if (myID == k)]; join loops collapse into one
    [RCCE_barrier] followed by the rest of their body; [myID] is declared
    and initialized from [RCCE_ue()] at the top of [main]. *)

val core_id_var : string
(** ["myID"]. *)

val task_var : string
(** ["myTask"]: the index of the many-to-one task loop emitted when
    [many_to_one] maps several threads onto one core (section 7.2). *)

exception Too_many_threads of int * int
(** [(threads, cores)]: the program statically creates more threads than
    the target has cores (the paper's section 7.2 limitation). *)

val pass : Pass.t
