lib/workloads/costs.ml:
