lib/workloads/costs.mli:
