lib/workloads/dot.ml: Array Costs Float Reduce Scc Sharr Workload
