lib/workloads/dot.mli: Workload
