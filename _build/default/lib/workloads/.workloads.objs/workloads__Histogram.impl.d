lib/workloads/histogram.ml: Array Costs Scc Sharr Workload
