lib/workloads/lu.ml: Array Costs Scc Sharr Workload
