lib/workloads/pi.ml: Costs Float Reduce Scc Sharr Workload
