lib/workloads/pi.mli: Workload
