lib/workloads/primes.ml: Costs Reduce Scc Sharr Workload
