lib/workloads/primes.mli: Workload
