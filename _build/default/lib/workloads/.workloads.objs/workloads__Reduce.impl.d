lib/workloads/reduce.ml: Costs Scc Sharr
