lib/workloads/reduce.mli: Scc Sharr
