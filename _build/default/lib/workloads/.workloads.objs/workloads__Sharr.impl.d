lib/workloads/sharr.ml: Array Printf Scc
