lib/workloads/sharr.mli: Scc
