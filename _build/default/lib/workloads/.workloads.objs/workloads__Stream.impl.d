lib/workloads/stream.ml: Array Costs List Scc Sharr Workload
