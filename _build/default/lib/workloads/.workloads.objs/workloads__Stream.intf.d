lib/workloads/stream.mli: Workload
