lib/workloads/suite.ml: Dot Histogram List Lu Pi Primes Stream String Sum35 Workload
