lib/workloads/sum35.ml: Costs Float Reduce Scc Sharr Workload
