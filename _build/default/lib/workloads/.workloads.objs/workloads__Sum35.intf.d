lib/workloads/sum35.mli: Workload
