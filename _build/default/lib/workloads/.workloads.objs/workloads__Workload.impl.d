lib/workloads/workload.ml: Array List Printf Scc Sharr
