lib/workloads/workload.mli: Scc Sharr
