(* Per-operation cycle costs on a P54C-class in-order core, used by the
   workloads to convert native computation into simulated core cycles.
   Values follow the published Pentium instruction timings (integer divide
   ~41 cycles, FDIV 39, FMUL 3, FADD 3, simple ALU 1). *)

let int_alu = 1
let int_mul = 10
let int_div = 41
let int_mod = 41
let fp_add = 3
let fp_mul = 3
let fp_div = 39
let branch = 2
let loop_overhead = 3   (* per iteration: index update + compare + branch *)

(* Cost of one Pi-approximation step: x = (i+0.5)*step (1 add, 1 mul);
   4.0/(1 + x*x) (1 mul, 1 add, 1 div); sum += (1 add). *)
let pi_step = fp_add + fp_mul + fp_mul + fp_add + fp_div + fp_add + loop_overhead

(* Cost of one trial division in Count Primes: i mod j, compare, branch. *)
let primes_trial = int_mod + branch

(* Cost of testing one candidate in 3-5-Sum: two mods, or, conditional
   add. *)
let sum35_test = int_mod + int_mod + branch + int_alu + loop_overhead

(* Stream kernel per-element compute (beyond the memory traffic). *)
let stream_copy_elt = loop_overhead
let stream_scale_elt = fp_mul + loop_overhead
let stream_add_elt = fp_add + loop_overhead
let stream_triad_elt = fp_add + fp_mul + loop_overhead

(* Dot product per element: multiply-accumulate. *)
let dot_elt = fp_mul + fp_add + loop_overhead

(* LU inner update per element: a[i][j] -= l * a[k][j]. *)
let lu_update_elt = fp_mul + fp_add + loop_overhead
