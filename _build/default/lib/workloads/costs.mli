(** Per-operation cycle costs on a P54C-class in-order core, following
    the published Pentium instruction timings. *)

val int_alu : int
val int_mul : int
val int_div : int
val int_mod : int
val fp_add : int
val fp_mul : int
val fp_div : int
val branch : int
val loop_overhead : int

val pi_step : int
(** One Pi-approximation step (adds, muls, one divide, loop overhead). *)

val primes_trial : int
(** One trial division (modulo, compare, branch). *)

val sum35_test : int
(** One 3-5-Sum candidate test (two modulos, or, add). *)

val stream_copy_elt : int
val stream_scale_elt : int
val stream_add_elt : int
val stream_triad_elt : int

val dot_elt : int
(** Multiply-accumulate per element. *)

val lu_update_elt : int
(** One inner elimination update. *)
