(* Dot Product: two large shared vectors, each unit multiply-accumulating
   its contiguous chunk, repeated [reps] times.  Two timed loads per
   element make it the most load-dense benchmark; in the off-chip
   configuration its cores sit in memory-controller contention (the
   paper's "at least 8 cores in contention per memory controller" remark
   on Figure 6.1).  The on-chip configuration stages blocks through each
   core's MPB slice once and runs the remaining reps from on-chip. *)

type params = { n : int; reps : int; block : int }

let default = { n = 1 lsl 17; reps = 8; block = 256 }

let fill_a i = float_of_int ((i mod 17) + 1) *. 0.25
let fill_b i = float_of_int ((i mod 23) + 2) *. 0.125

let reference { n; reps; _ } =
  let acc = ref 0.0 in
  for _ = 1 to reps do
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      sum := !sum +. (fill_a i *. fill_b i)
    done;
    acc := !acc +. !sum
  done;
  !acc

let make ?(params = default) () : Workload.t =
  {
    Workload.name = "dot";
    instantiate =
      (fun ctx ->
        let units = ctx.Workload.units in
        let { n; reps; block } = params in
        let a = Workload.alloc ctx ~name:"a" ~elts:n ~elt_bytes:8 in
        let b = Workload.alloc ctx ~name:"b" ~elts:n ~elt_bytes:8 in
        let partials =
          Workload.alloc ctx ~name:"partials" ~elts:units ~elt_bytes:8
        in
        (* main initializes before the timed region *)
        for i = 0 to n - 1 do
          (Sharr.data a).(i) <- fill_a i;
          (Sharr.data b).(i) <- fill_b i
        done;
        let da = Sharr.data a and db = Sharr.data b in
        let scratch = Workload.mpb_scratch ctx ~bytes:(2 * block * 8) in
        let result = ref Float.nan in
        let mac sum lo len =
          for i = lo to lo + len - 1 do
            sum := !sum +. (da.(i) *. db.(i))
          done
        in
        (* rep-outer sweep: every rep re-reads the vectors from wherever
           they live *)
        let direct_body (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          let lo, hi = Sharr.chunk_range ~n ~units ~u in
          let acc = ref 0.0 in
          for _ = 1 to reps do
            let sum = ref 0.0 in
            let off = ref lo in
            while !off < hi do
              let len = min block (hi - !off) in
              Sharr.load_block api a ~off:!off ~len;
              Sharr.load_block api b ~off:!off ~len;
              mac sum !off len;
              api.Scc.Engine.compute (len * Costs.dot_elt);
              off := !off + len
            done;
            acc := !acc +. !sum
          done;
          match Reduce.sum api partials !acc with
          | Some total -> result := total
          | None -> ()
        in
        (* block-outer sweep: stage the block into the MPB once, run all
           reps on-chip (the rep loop commutes with blocking because each
           rep's sum is a plain accumulation) *)
        let staged_body base (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          let lo, hi = Sharr.chunk_range ~n ~units ~u in
          let mpb_a = base and mpb_b = base + (block * 8) in
          let sums = Array.make reps 0.0 in
          let off = ref lo in
          while !off < hi do
            let len = min block (hi - !off) in
            let bytes = len * 8 in
            Sharr.load_block api a ~off:!off ~len;
            api.Scc.Engine.store mpb_a ~bytes;
            Sharr.load_block api b ~off:!off ~len;
            api.Scc.Engine.store mpb_b ~bytes;
            for r = 0 to reps - 1 do
              api.Scc.Engine.load mpb_a ~bytes;
              api.Scc.Engine.load mpb_b ~bytes;
              let sum = ref 0.0 in
              mac sum !off len;
              sums.(r) <- sums.(r) +. !sum;
              api.Scc.Engine.compute (len * Costs.dot_elt)
            done;
            off := !off + len
          done;
          let acc = Array.fold_left ( +. ) 0.0 sums in
          match Reduce.sum api partials acc with
          | Some total -> result := total
          | None -> ()
        in
        let body =
          match ctx.Workload.mode, scratch with
          | Workload.Rcce (Workload.On_chip, _), Some bases ->
              fun api -> staged_body bases.(api.Scc.Engine.self) api
          | (Workload.Pthread_baseline _ | Workload.Rcce _), _ -> direct_body
        in
        let verify () =
          Float.abs (!result -. reference params)
          <= 1e-6 *. Float.abs (reference params)
        in
        { Workload.body; verify });
  }
