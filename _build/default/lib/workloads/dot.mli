(** Dot Product: two large shared vectors multiply-accumulated over
    [reps] passes.  The most load-dense benchmark; off-chip it sits in
    memory-controller contention, on-chip it stages blocks through each
    core's MPB slice. *)

type params = { n : int; reps : int; block : int }

val default : params

val reference : params -> float

val make : ?params:params -> unit -> Workload.t
