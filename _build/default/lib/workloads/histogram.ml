(* Histogram: a synchronization-dependent application, added to probe the
   paper's remark that "because a Pthread mutex and hardware test-and-set
   register are not exactly the same, performance varies when converting
   a synchronization-dependent application".

   Each unit scans its chunk of a value array and increments shared bin
   counters under per-bin locks.  In the Pthread baseline the locks are
   local to the single core; after conversion every acquire is a mesh
   round trip to a test-and-set register, so the benchmark gains far less
   from 32 cores than the compute-bound suite does. *)

type params = { n : int; bins : int; locks : int }

let default = { n = 1 lsl 15; bins = 64; locks = 8 }

(* Deterministic pseudo-random values in [0, bins). *)
let value_at ~bins i = (i * 1103515245 + 12345) land 0x3FFFFFFF mod bins

let reference { n; bins; _ } =
  let counts = Array.make bins 0 in
  for i = 0 to n - 1 do
    counts.(value_at ~bins i) <- counts.(value_at ~bins i) + 1
  done;
  counts

let make ?(params = default) () : Workload.t =
  {
    Workload.name = "histogram";
    instantiate =
      (fun ctx ->
        let units = ctx.Workload.units in
        let { n; bins; locks } = params in
        let table =
          Workload.alloc ctx ~name:"bins" ~elts:bins ~elt_bytes:8
        in
        let dt = Sharr.data table in
        let body (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          let lo, hi = Sharr.chunk_range ~n ~units ~u in
          for i = lo to hi - 1 do
            let v = value_at ~bins i in
            let lock = v mod locks in
            api.Scc.Engine.compute Costs.int_mod;
            api.Scc.Engine.acquire lock;
            (* locked read-modify-write of the shared bin *)
            ignore (Sharr.get api table v);
            Sharr.set api table v (dt.(v) +. 1.0);
            api.Scc.Engine.release lock
          done
        in
        let verify () =
          let expected = reference params in
          let ok = ref true in
          Array.iteri
            (fun i c -> if dt.(i) <> float_of_int c then ok := false)
            expected;
          !ok
        in
        { Workload.body; verify });
  }
