(** Histogram: a synchronization-dependent application probing the paper's
    remark that mutex-to-test-and-set conversion makes performance vary —
    shared bin counters incremented under per-bin locks. *)

type params = { n : int; bins : int; locks : int }

val default : params

val value_at : bins:int -> int -> int
(** Deterministic pseudo-random value stream. *)

val reference : params -> int array
(** Sequential bin counts. *)

val make : ?params:params -> unit -> Workload.t
