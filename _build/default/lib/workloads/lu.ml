(* LU Decomposition: in-place Doolittle elimination without pivoting on a
   diagonally-dominant shared matrix, rows of each elimination step dealt
   round-robin to the units with a barrier per step.  The matrix is sized
   to exceed the 32-core MPB capacity, so the on-chip configuration falls
   back off-chip — reproducing the paper's Figure 6.2 observation that LU
   sees almost no MPB benefit. *)

type params = { n : int; block : int }

let default = { n = 192; block = 256 }

(* Diagonally dominant, deterministic entries: stable without pivoting. *)
let fill n i j =
  if i = j then float_of_int n
  else 1.0 /. float_of_int (1 + abs (i - j))

let eliminate_native m n =
  for k = 0 to n - 2 do
    for i = k + 1 to n - 1 do
      let l = m.((i * n) + k) /. m.((k * n) + k) in
      m.((i * n) + k) <- l;
      for j = k + 1 to n - 1 do
        m.((i * n) + j) <- m.((i * n) + j) -. (l *. m.((k * n) + j))
      done
    done
  done

let reference { n; _ } =
  let m = Array.init (n * n) (fun idx -> fill n (idx / n) (idx mod n)) in
  eliminate_native m n;
  m

let make ?(params = default) () : Workload.t =
  {
    Workload.name = "lu";
    instantiate =
      (fun ctx ->
        let units = ctx.Workload.units in
        let { n; block } = params in
        let m = Workload.alloc ctx ~name:"matrix" ~elts:(n * n) ~elt_bytes:8 in
        let dm = Sharr.data m in
        for idx = 0 to (n * n) - 1 do
          dm.(idx) <- fill n (idx / n) (idx mod n)
        done;
        let touch api ~write row ~from ~upto =
          let off = ref from in
          while !off < upto do
            let len = min block (upto - !off) in
            Sharr.touch_block api ~write m ~off:((row * n) + !off) ~len;
            off := !off + len
          done
        in
        (* On-chip configuration: the matrix exceeds the MPB and falls
           back off-chip, but the pivot row can be staged through one
           core's slice each step — the paper's "a small portion of the
           matrix, for example a few rows, may be allocated separately on
           the MPB" remark, worth only a slight improvement because the
           row updates still stream from DRAM. *)
        let pivot_scratch = Workload.mpb_scratch ctx ~bytes:(n * 8) in
        let read_pivot api k =
          match pivot_scratch with
          | None ->
              (* straight from shared DRAM *)
              touch api ~write:false k ~from:k ~upto:n
          | Some bases ->
              let u = api.Scc.Engine.self in
              let owner = k mod units in
              let bytes = (n - k) * 8 in
              if u = owner then begin
                touch api ~write:false k ~from:k ~upto:n;
                api.Scc.Engine.store bases.(owner) ~bytes
              end;
              api.Scc.Engine.barrier ();
              if u <> owner then api.Scc.Engine.load bases.(owner) ~bytes
        in
        let body (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          for k = 0 to n - 2 do
            (* every unit reads the pivot row once per step *)
            read_pivot api k;
            let i = ref (k + 1) in
            while !i < n do
              if !i mod units = u then begin
                let row = !i in
                touch api ~write:false row ~from:k ~upto:n;
                touch api ~write:true row ~from:k ~upto:n;
                api.Scc.Engine.compute
                  (Costs.fp_div + ((n - k) * Costs.lu_update_elt));
                let l = dm.((row * n) + k) /. dm.((k * n) + k) in
                dm.((row * n) + k) <- l;
                for j = k + 1 to n - 1 do
                  dm.((row * n) + j) <-
                    dm.((row * n) + j) -. (l *. dm.((k * n) + j))
                done
              end;
              incr i
            done;
            api.Scc.Engine.barrier ()
          done
        in
        let verify () =
          let r = reference params in
          let ok = ref true in
          Array.iteri (fun i v -> if v <> r.(i) then ok := false) dm;
          !ok
        in
        { Workload.body; verify });
  }
