(** LU Decomposition: in-place Doolittle elimination without pivoting on
    a diagonally-dominant shared matrix, rows dealt round-robin with a
    barrier per step.  Sized to exceed the 32-core MPB, so the on-chip
    configuration falls back off-chip and stages only the pivot row —
    the paper's "very slight improvement" observation. *)

type params = { n : int; block : int }

val default : params
(** 192 x 192 doubles (294912 bytes > the 256 KB 32-core MPB). *)

val reference : params -> float array
(** The sequentially eliminated matrix, row-major. *)

val make : ?params:params -> unit -> Workload.t
