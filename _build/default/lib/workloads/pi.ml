(* Pi Approximation (the paper's Algorithm 12): numerical integration of
   4/(1+x^2) over [0,1].  Perfectly balanced compute with negligible
   memory traffic — the benchmark the paper uses for its scalability study
   (Figure 6.3) and the best case of Figure 6.1 (32x on 32 cores). *)

type params = { steps : int }

let default = { steps = 1 lsl 20 }

let reference steps =
  let step = 1.0 /. float_of_int steps in
  let sum = ref 0.0 in
  for i = 0 to steps - 1 do
    let x = (float_of_int i +. 0.5) *. step in
    sum := !sum +. (4.0 /. (1.0 +. (x *. x)))
  done;
  !sum *. step

let make ?(params = default) () : Workload.t =
  {
    Workload.name = "pi";
    instantiate =
      (fun ctx ->
        let units = ctx.Workload.units in
        let partials =
          Workload.alloc ctx ~name:"partials" ~elts:units ~elt_bytes:8
        in
        let result = ref Float.nan in
        let steps = params.steps in
        let body (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          let lo, hi = Sharr.chunk_range ~n:steps ~units ~u in
          let step = 1.0 /. float_of_int steps in
          let sum = ref 0.0 in
          for i = lo to hi - 1 do
            let x = (float_of_int i +. 0.5) *. step in
            sum := !sum +. (4.0 /. (1.0 +. (x *. x)))
          done;
          api.Scc.Engine.compute ((hi - lo) * Costs.pi_step);
          match Reduce.sum api partials !sum with
          | Some total -> result := total *. step
          | None -> ()
        in
        let verify () = Float.abs (!result -. reference steps) < 1e-9 in
        { Workload.body; verify });
  }
