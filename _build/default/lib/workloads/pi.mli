(** Pi Approximation (the paper's Algorithm 12): numerical integration of
    4/(1+x^2) — perfectly balanced compute, the paper's Figure 6.3
    scalability benchmark and the best case of Figure 6.1. *)

type params = { steps : int }

val default : params
(** 2^20 steps. *)

val reference : int -> float
(** Sequential reference result for [steps]. *)

val make : ?params:params -> unit -> Workload.t
