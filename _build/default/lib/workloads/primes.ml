(* Count Primes (the paper's Algorithm 11): trial division over a
   contiguous range per thread.  Testing a candidate costs work roughly
   proportional to the candidate itself, so contiguous block partitioning
   leaves the highest-numbered unit with about twice the average work —
   which is why the paper measures ~16x rather than 32x for this
   benchmark on 32 cores. *)

type params = { limit : int }

let default = { limit = 20_000 }

(* Trial division exactly as Algorithm 11 writes it; returns (is_prime,
   trials), where [trials] counts the executed divisions for the cycle
   charge. *)
let test_candidate i =
  let rec loop j trials =
    if j >= i then (1, trials)
    else if i mod j = 0 then (0, trials + 1)
    else loop (j + 1) (trials + 1)
  in
  loop 2 0

let reference limit =
  let count = ref 0 in
  for i = 2 to limit - 1 do
    let p, _ = test_candidate i in
    count := !count + p
  done;
  !count

let make ?(params = default) () : Workload.t =
  {
    Workload.name = "primes";
    instantiate =
      (fun ctx ->
        let units = ctx.Workload.units in
        let partials =
          Workload.alloc ctx ~name:"partials" ~elts:units ~elt_bytes:8
        in
        let result = ref (-1) in
        let limit = params.limit in
        let body (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          let lo, hi = Sharr.chunk_range ~n:limit ~units ~u in
          let lo = max lo 2 in
          let count = ref 0 in
          let cycles = ref 0 in
          for i = lo to hi - 1 do
            let p, trials = test_candidate i in
            count := !count + p;
            cycles :=
              !cycles + (trials * Costs.primes_trial) + Costs.loop_overhead
          done;
          api.Scc.Engine.compute !cycles;
          match Reduce.sum api partials (float_of_int !count) with
          | Some total -> result := int_of_float total
          | None -> ()
        in
        let verify () = !result = reference limit in
        { Workload.body; verify });
  }
