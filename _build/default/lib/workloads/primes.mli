(** Count Primes (the paper's Algorithm 11): trial division over a
    contiguous range per thread.  Contiguous partitioning leaves the
    highest unit ~2x the average work — the paper's 16x-not-32x result. *)

type params = { limit : int }

val default : params
(** Primes below 20000. *)

val test_candidate : int -> int * int
(** [(is_prime as 0/1, trial divisions executed)] — Algorithm 11
    verbatim. *)

val reference : int -> int
(** Sequential prime count below the limit. *)

val make : ?params:params -> unit -> Workload.t
