(* The benchmarks' common ending: each unit writes its partial result to a
   shared array, everyone meets at a barrier, and unit 0 combines the
   partials.  All accesses are timed; only unit 0 gets the total. *)

let sum (api : Scc.Engine.api) partials v =
  let u = api.Scc.Engine.self in
  Sharr.set api partials u v;
  api.Scc.Engine.barrier ();
  if u = 0 then begin
    let total = ref 0.0 in
    for i = 0 to Sharr.length partials - 1 do
      total := !total +. Sharr.get api partials i;
      api.Scc.Engine.compute Costs.fp_add
    done;
    Some !total
  end
  else None
