(** Parallel sum-reduction over a shared partials array: write own
    partial, barrier, unit 0 combines.  All accesses are timed. *)

val sum : Scc.Engine.api -> Sharr.t -> float -> float option
(** Returns [Some total] in unit 0, [None] elsewhere. *)
