(* Simulated arrays: native OCaml data (so benchmarks compute verifiable
   results) paired with a simulated address layout (so every access is
   timed through the memory hierarchy).

   Layouts:
   - [Contiguous]: one base address — private DRAM or off-chip shared;
   - [Striped]: round-robin chunks across MPB slices, the layout
     [Rcce.malloc_mpb] produces. *)

type layout =
  | Contiguous of int                               (* base address *)
  | Striped of { chunks : int array; chunk_bytes : int }

type t = {
  name : string;
  data : float array;
  elt_bytes : int;
  layout : layout;
}

let create ~name ~elts ~elt_bytes layout =
  { name; data = Array.make elts 0.0; elt_bytes; layout }

let length t = Array.length t.data

let data t = t.data

let addr_of t i =
  let byte = i * t.elt_bytes in
  match t.layout with
  | Contiguous base -> base + byte
  | Striped { chunks; chunk_bytes } ->
      let chunk = byte / chunk_bytes in
      let within = byte mod chunk_bytes in
      if chunk >= Array.length chunks then
        invalid_arg
          (Printf.sprintf "Sharr.addr_of: %s[%d] beyond striped layout"
             t.name i)
      else chunks.(chunk) + within

(* Timed element access. *)
let get (api : Scc.Engine.api) t i =
  api.Scc.Engine.load (addr_of t i) ~bytes:t.elt_bytes;
  t.data.(i)

let set (api : Scc.Engine.api) t i v =
  api.Scc.Engine.store (addr_of t i) ~bytes:t.elt_bytes;
  t.data.(i) <- v

(* Timing-only block access over elements [off, off+len): issues one
   engine access per contiguous run (stripe chunks split runs).  The
   caller does the data work natively. *)
let touch_block (api : Scc.Engine.api) ~write t ~off ~len =
  if len > 0 then begin
    if off < 0 || off + len > length t then
      invalid_arg (Printf.sprintf "Sharr.touch_block: %s out of range" t.name);
    let issue addr bytes =
      if write then api.Scc.Engine.store addr ~bytes
      else api.Scc.Engine.load addr ~bytes
    in
    match t.layout with
    | Contiguous base ->
        issue (base + (off * t.elt_bytes)) (len * t.elt_bytes)
    | Striped { chunks = _; chunk_bytes } ->
        let start_byte = off * t.elt_bytes in
        let end_byte = (off + len) * t.elt_bytes in
        let rec go byte =
          if byte < end_byte then begin
            let chunk_end = (byte / chunk_bytes + 1) * chunk_bytes in
            let upto = min end_byte chunk_end in
            issue (addr_of t (byte / t.elt_bytes)) (upto - byte);
            go upto
          end
        in
        go start_byte
  end

let load_block api t ~off ~len = touch_block api ~write:false t ~off ~len
let store_block api t ~off ~len = touch_block api ~write:true t ~off ~len

(* The contiguous index range unit [u] of [units] owns in an [n]-element
   problem: the paper's divide-and-conquer partitioning by thread ID. *)
let chunk_range ~n ~units ~u =
  let per = n / units in
  let lo = u * per in
  let hi = if u = units - 1 then n else lo + per in
  (lo, hi)
