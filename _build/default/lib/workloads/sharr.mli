(** Simulated arrays: native OCaml data (benchmarks compute verifiable
    results) paired with a simulated address layout (every access is timed
    through the memory hierarchy). *)

type layout =
  | Contiguous of int  (** base address *)
  | Striped of { chunks : int array; chunk_bytes : int }
      (** round-robin chunks across MPB slices *)

type t = {
  name : string;
  data : float array;
  elt_bytes : int;
  layout : layout;
}

val create : name:string -> elts:int -> elt_bytes:int -> layout -> t

val length : t -> int
val data : t -> float array
val addr_of : t -> int -> int

val get : Scc.Engine.api -> t -> int -> float
(** Timed single-element read. *)

val set : Scc.Engine.api -> t -> int -> float -> unit

val touch_block :
  Scc.Engine.api -> write:bool -> t -> off:int -> len:int -> unit
(** Timing-only block access over elements [off, off+len); stripe chunks
    split the run.  The caller does the data work natively. *)

val load_block : Scc.Engine.api -> t -> off:int -> len:int -> unit
val store_block : Scc.Engine.api -> t -> off:int -> len:int -> unit

val chunk_range : n:int -> units:int -> u:int -> int * int
(** Contiguous index range owned by unit [u] of [units] (the paper's
    divide-by-thread-ID partitioning). *)
