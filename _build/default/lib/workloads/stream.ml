(* Stream (the paper's Algorithms 13-16): the Copy / Scale / Add / Triad
   kernels over three vectors sized well beyond the caches, each unit
   sweeping its contiguous chunk, a barrier between kernels.

   On-chip configuration: three 1 MB arrays cannot live in the 256 KB MPB,
   so blocks are *staged* through each core's slice — bulk-copied in from
   shared DRAM, run through every rep of the four (element-wise) kernels,
   and bulk-copied back.  This is exactly the paper's observation that
   "transfers to and from the MPB may be done in bulk copy of memory ...
   further improving performance for an all-memory synthetic benchmark",
   and it is why Stream gains the most in Figure 6.2. *)

type params = { n : int; reps : int; block : int }

let default = { n = 1 lsl 17; reps = 12; block = 256 }

let scalar = 3.0

let fill_a i = float_of_int ((i mod 13) + 1)
let fill_c i = float_of_int ((i mod 7) + 1) *. 0.5

(* One rep of the four kernels over [lo, hi): all element-wise, so
   blocking over the index space commutes with the rep loop. *)
let kernels_native a b c lo hi =
  for j = lo to hi - 1 do
    c.(j) <- a.(j)                       (* Copy:  c = a       *)
  done;
  for j = lo to hi - 1 do
    b.(j) <- scalar *. c.(j)             (* Scale: b = s*c     *)
  done;
  for j = lo to hi - 1 do
    c.(j) <- a.(j) +. b.(j)              (* Add:   c = a+b     *)
  done;
  for j = lo to hi - 1 do
    a.(j) <- b.(j) +. (scalar *. c.(j))  (* Triad: a = b+s*c   *)
  done

let reference { n; reps; _ } =
  let a = Array.init n fill_a in
  let b = Array.make n 0.0 in
  let c = Array.init n fill_c in
  for _ = 1 to reps do
    kernels_native a b c 0 n
  done;
  (a, b, c)

let arrays_equal x y =
  Array.length x = Array.length y
  && (let ok = ref true in
      Array.iteri (fun i v -> if v <> y.(i) then ok := false) x;
      !ok)

let kernel_cycles len =
  len
  * (Costs.stream_copy_elt + Costs.stream_scale_elt + Costs.stream_add_elt
   + Costs.stream_triad_elt)

let make ?(params = default) () : Workload.t =
  {
    Workload.name = "stream";
    instantiate =
      (fun ctx ->
        let units = ctx.Workload.units in
        let { n; reps; block } = params in
        let a = Workload.alloc ctx ~name:"a" ~elts:n ~elt_bytes:8 in
        let b = Workload.alloc ctx ~name:"b" ~elts:n ~elt_bytes:8 in
        let c = Workload.alloc ctx ~name:"c" ~elts:n ~elt_bytes:8 in
        for i = 0 to n - 1 do
          (Sharr.data a).(i) <- fill_a i;
          (Sharr.data c).(i) <- fill_c i
        done;
        let da = Sharr.data a and db = Sharr.data b and dc = Sharr.data c in
        (* staging buffers: block elements of each of the three arrays *)
        let scratch = Workload.mpb_scratch ctx ~bytes:(3 * block * 8) in
        let sweep api ~srcs ~dst ~elt_cycles ~update lo hi =
          let off = ref lo in
          while !off < hi do
            let len = min block (hi - !off) in
            List.iter (fun s -> Sharr.load_block api s ~off:!off ~len) srcs;
            Sharr.store_block api dst ~off:!off ~len;
            api.Scc.Engine.compute (len * elt_cycles);
            off := !off + len
          done;
          update lo hi
        in
        let direct_body (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          let lo, hi = Sharr.chunk_range ~n ~units ~u in
          for _ = 1 to reps do
            sweep api ~srcs:[ a ] ~dst:c ~elt_cycles:Costs.stream_copy_elt
              ~update:(fun lo hi ->
                for j = lo to hi - 1 do dc.(j) <- da.(j) done)
              lo hi;
            api.Scc.Engine.barrier ();
            sweep api ~srcs:[ c ] ~dst:b ~elt_cycles:Costs.stream_scale_elt
              ~update:(fun lo hi ->
                for j = lo to hi - 1 do db.(j) <- scalar *. dc.(j) done)
              lo hi;
            api.Scc.Engine.barrier ();
            sweep api ~srcs:[ a; b ] ~dst:c ~elt_cycles:Costs.stream_add_elt
              ~update:(fun lo hi ->
                for j = lo to hi - 1 do dc.(j) <- da.(j) +. db.(j) done)
              lo hi;
            api.Scc.Engine.barrier ();
            sweep api ~srcs:[ b; c ] ~dst:a ~elt_cycles:Costs.stream_triad_elt
              ~update:(fun lo hi ->
                for j = lo to hi - 1 do
                  da.(j) <- db.(j) +. (scalar *. dc.(j))
                done)
              lo hi;
            api.Scc.Engine.barrier ()
          done
        in
        (* Staged: per block — bulk copy a and c in, run all reps of the
           four kernels against the MPB, bulk copy a, b and c back. *)
        let staged_body base (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          let lo, hi = Sharr.chunk_range ~n ~units ~u in
          let mpb_a = base and mpb_b = base + (block * 8) in
          let mpb_c = base + (2 * block * 8) in
          let off = ref lo in
          while !off < hi do
            let len = min block (hi - !off) in
            let bytes = len * 8 in
            (* stage in: DRAM -> MPB *)
            Sharr.load_block api a ~off:!off ~len;
            api.Scc.Engine.store mpb_a ~bytes;
            Sharr.load_block api c ~off:!off ~len;
            api.Scc.Engine.store mpb_c ~bytes;
            for _ = 1 to reps do
              (* all four kernels against the MPB copies *)
              api.Scc.Engine.load mpb_a ~bytes;
              api.Scc.Engine.store mpb_c ~bytes;
              api.Scc.Engine.load mpb_c ~bytes;
              api.Scc.Engine.store mpb_b ~bytes;
              api.Scc.Engine.load mpb_a ~bytes;
              api.Scc.Engine.load mpb_b ~bytes;
              api.Scc.Engine.store mpb_c ~bytes;
              api.Scc.Engine.load mpb_b ~bytes;
              api.Scc.Engine.load mpb_c ~bytes;
              api.Scc.Engine.store mpb_a ~bytes;
              api.Scc.Engine.compute (kernel_cycles len);
              kernels_native da db dc !off (!off + len)
            done;
            (* stage out: MPB -> DRAM *)
            api.Scc.Engine.load mpb_a ~bytes;
            Sharr.store_block api a ~off:!off ~len;
            api.Scc.Engine.load mpb_b ~bytes;
            Sharr.store_block api b ~off:!off ~len;
            api.Scc.Engine.load mpb_c ~bytes;
            Sharr.store_block api c ~off:!off ~len;
            off := !off + len
          done;
          api.Scc.Engine.barrier ()
        in
        let body =
          match ctx.Workload.mode, scratch with
          | Workload.Rcce (Workload.On_chip, _), Some bases ->
              fun api -> staged_body bases.(api.Scc.Engine.self) api
          | (Workload.Pthread_baseline _ | Workload.Rcce _), _ -> direct_body
        in
        let verify () =
          let ra, rb, rc = reference params in
          arrays_equal da ra && arrays_equal db rb && arrays_equal dc rc
        in
        { Workload.body; verify });
  }
