(** Stream (the paper's Algorithms 13-16): Copy / Scale / Add / Triad
    over three vectors sized beyond the caches.  The on-chip
    configuration stages blocks through each core's MPB slice — the
    paper's "bulk copy" remark and its biggest Figure 6.2 gain. *)

type params = { n : int; reps : int; block : int }

val default : params

val scalar : float
(** The STREAM scale/triad constant (3.0). *)

val reference : params -> float array * float array * float array
(** Final (a, b, c) after [reps] passes of the four kernels. *)

val make : ?params:params -> unit -> Workload.t
