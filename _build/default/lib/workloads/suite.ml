(* The paper's benchmark suite, grouped as section 5.2 describes: linear
   algebra (LU Decomposition, Dot Product), approximation and number
   theory (Pi Approximation, Count Primes, 3-5-Sum), and the synthetic
   memory benchmark (Stream). *)

let pi = Pi.make ()
let primes = Primes.make ()
let sum35 = Sum35.make ()
let dot = Dot.make ()
let lu = Lu.make ()
let stream = Stream.make ()
let histogram = Histogram.make ()

(* Figure order used throughout the paper's result plots. *)
let all = [ pi; sum35; primes; stream; dot; lu ]

(* The paper's six plus the synchronization-sensitivity probe. *)
let extended = all @ [ histogram ]

let find name =
  List.find_opt
    (fun (w : Workload.t) -> String.equal w.Workload.name name)
    extended

let names = List.map (fun (w : Workload.t) -> w.Workload.name) extended
