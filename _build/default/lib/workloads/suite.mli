(** The paper's benchmark suite. *)

val pi : Workload.t
val primes : Workload.t
val sum35 : Workload.t
val dot : Workload.t
val lu : Workload.t
val stream : Workload.t
val histogram : Workload.t

val all : Workload.t list
(** The paper's six, in its figure order. *)

val extended : Workload.t list
(** The six plus the histogram synchronization probe. *)

val find : string -> Workload.t option
val names : string list
