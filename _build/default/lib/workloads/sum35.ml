(* 3-5-Sum: sum the increasingly large multiples of 3 and 5 below the
   bound, the range split by thread ID.  Balanced modulo-heavy compute —
   the paper's second-best Figure 6.1 result (29x on 32 cores): like Pi
   but with a slightly larger serial reduction share. *)

type params = { bound : int }

let default = { bound = 2_000_000 }

let chunk_sum lo hi =
  let sum = ref 0.0 in
  for i = lo to hi - 1 do
    if i mod 3 = 0 || i mod 5 = 0 then sum := !sum +. float_of_int i
  done;
  !sum

let reference bound = chunk_sum 1 bound

let make ?(params = default) () : Workload.t =
  {
    Workload.name = "3-5-sum";
    instantiate =
      (fun ctx ->
        let units = ctx.Workload.units in
        let partials =
          Workload.alloc ctx ~name:"partials" ~elts:units ~elt_bytes:8
        in
        let result = ref Float.nan in
        let bound = params.bound in
        let body (api : Scc.Engine.api) =
          let u = api.Scc.Engine.self in
          let lo, hi = Sharr.chunk_range ~n:bound ~units ~u in
          let lo = max lo 1 in
          let sum = chunk_sum lo hi in
          api.Scc.Engine.compute ((hi - lo) * Costs.sum35_test);
          match Reduce.sum api partials sum with
          | Some total -> result := total
          | None -> ()
        in
        let verify () = !result = reference bound in
        { Workload.body; verify });
  }
