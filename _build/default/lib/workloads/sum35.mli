(** 3-5-Sum: sum the multiples of 3 and 5 below the bound, split by
    thread ID — balanced modulo-heavy compute (the paper's 29x). *)

type params = { bound : int }

val default : params

val reference : int -> float
(** Sequential sum below the bound. *)

val make : ?params:params -> unit -> Workload.t
