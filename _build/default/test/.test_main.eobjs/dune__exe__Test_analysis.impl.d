test/test_analysis.ml: Alcotest Analysis Cfront Exp Ir List Parser QCheck QCheck_alcotest
