test/test_csrc_suite.ml: Alcotest Array Cexec Cfront Exp List Parser Printf String Translate Workloads
