test/test_ctype.ml: Alcotest Cfront Ctype
