test/test_exp.ml: Alcotest Exp List Printf String
