test/test_extensions.ml: Alcotest Array Cexec Cfront Exp List Parser Rcce Scc String Translate
