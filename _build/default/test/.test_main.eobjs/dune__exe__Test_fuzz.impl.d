test/test_fuzz.ml: Cexec Cfront Exp List Parser Preproc Printexc Printf QCheck QCheck_alcotest Scc Srcloc String
