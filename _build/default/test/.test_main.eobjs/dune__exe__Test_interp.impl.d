test/test_interp.ml: Alcotest Cexec Cfront Exp List Parser Pretty Scc String Translate
