test/test_ir.ml: Alcotest Array Ast Cfront Ir List Option Parser Srcloc String
