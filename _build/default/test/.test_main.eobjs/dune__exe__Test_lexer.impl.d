test/test_lexer.ml: Alcotest Cfront Lexer List Srcloc String Token
