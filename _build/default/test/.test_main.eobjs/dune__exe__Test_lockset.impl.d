test/test_lockset.ml: Alcotest Cexec Cfront Exp List Parser Translate
