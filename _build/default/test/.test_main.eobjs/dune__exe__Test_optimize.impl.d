test/test_optimize.ml: Alcotest Ast Cexec Cfront Constfold List Parser Pretty Printf QCheck QCheck_alcotest String Translate
