test/test_parser.ml: Alcotest Ast Cfront Ctype Exp Float List Parser Pretty Printf QCheck QCheck_alcotest Srcloc String
