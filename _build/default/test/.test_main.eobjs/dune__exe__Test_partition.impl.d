test/test_partition.ml: Alcotest Analysis Exp Ir List Partition Printf QCheck QCheck_alcotest String
