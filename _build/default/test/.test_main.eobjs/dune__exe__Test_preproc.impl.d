test/test_preproc.ml: Alcotest Cexec Cfront List Parser Preproc Pretty Srcloc String Translate
