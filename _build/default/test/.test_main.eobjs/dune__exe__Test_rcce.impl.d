test/test_rcce.ml: Alcotest Array List Printf Pthread_sim Rcce Scc
