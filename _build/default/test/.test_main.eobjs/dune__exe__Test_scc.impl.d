test/test_scc.ml: Alcotest Array List Printf Scc
