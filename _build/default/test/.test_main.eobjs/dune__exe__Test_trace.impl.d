test/test_trace.ml: Alcotest List Scc String
