test/test_translate.ml: Alcotest Ast Cexec Cfront Exp List Parser Srcloc String Translate
