test/test_visit.ml: Alcotest Ast Cfront List Parser Pretty Srcloc String Visit
