test/test_workloads.ml: Alcotest Array Exp List Printf QCheck QCheck_alcotest Scc String Workloads
