open Cfront

(* Stages 1-3 on the paper's running example and on targeted programs:
   Table 4.1 / 4.2 reproduction, Algorithm 1 classification, points-to
   definiteness, and the sharing lattice. *)

let analyze src = Analysis.Pipeline.analyze (Parser.program src)

let example_analysis () = Analysis.Pipeline.analyze (Exp.Example41.parse ())

(* The paper's Table 4.2, verbatim. *)
let test_table_4_2_matches_paper () =
  let a = example_analysis () in
  let expected =
    [ ("global", "true", "true", "false");
      ("ptr", "true", "true", "true");
      ("sum", "true", "true", "true");
      ("tLocal", "null", "false", "false");
      ("tid", "null", "false", "false");
      ("local", "null", "false", "false");
      ("tmp", "null", "false", "true");
      ("threads", "null", "false", "false");
      ("rc", "null", "false", "false") ]
  in
  let rows = List.tl (Analysis.Pipeline.table_4_2 a) in
  List.iter
    (fun (name, s1, s2, s3) ->
      match
        List.find_opt (fun row -> List.nth row 0 = name) rows
      with
      | Some [ _; g1; g2; g3 ] ->
          Alcotest.(check (list string))
            (name ^ " status per stage") [ s1; s2; s3 ] [ g1; g2; g3 ]
      | Some _ | None -> Alcotest.failf "missing row for %s" name)
    expected

let test_table_4_1_structure () =
  let a = example_analysis () in
  let rows = Analysis.Pipeline.table_4_1 a in
  Alcotest.(check int) "9 variables + header" 10 (List.length rows);
  let names = List.map (fun row -> List.nth row 0) (List.tl rows) in
  Alcotest.(check (list string))
    "declaration order matches the paper"
    [ "global"; "ptr"; "sum"; "tid"; "tLocal"; "local"; "tmp"; "threads";
      "rc" ]
    names

let find_info a name =
  let scope = a.Analysis.Pipeline.scope in
  match
    List.find_opt
      (fun (i : Analysis.Varinfo.t) -> i.Analysis.Varinfo.id.Ir.Var_id.name = name)
      (Analysis.Scope_analysis.infos scope)
  with
  | Some i -> i
  | None -> Alcotest.failf "no variable %s" name

let test_counts_on_example () =
  let a = example_analysis () in
  let check name reads writes =
    let i = find_info a name in
    Alcotest.(check (pair int int))
      (name ^ " rd/wr") (reads, writes)
      (i.Analysis.Varinfo.reads, i.Analysis.Varinfo.writes)
  in
  (* matches Table 4.1 exactly *)
  check "global" 0 0;
  check "ptr" 1 1;
  check "tLocal" 3 1;
  check "tid" 1 0;
  check "threads" 2 0;
  check "tmp" 1 1;
  (* the three cells where the thesis's own table is internally
     inconsistent (see EXPERIMENTS.md): our principled conventions give *)
  check "sum" 3 3;
  check "local" 8 5;
  check "rc" 0 1

let test_use_def_attribution () =
  let a = example_analysis () in
  let sum = find_info a "sum" in
  Alcotest.(check (list string)) "sum used in" [ "tf"; "main" ]
    sum.Analysis.Varinfo.use_in;
  Alcotest.(check (list string)) "sum defined in" [ "tf" ]
    sum.Analysis.Varinfo.def_in

(* --- Stage 2 / Algorithm 1 ------------------------------------------------ *)

let test_thread_sites () =
  let a = example_analysis () in
  let th = a.Analysis.Pipeline.threads in
  Alcotest.(check (list string)) "thread functions" [ "tf" ]
    th.Analysis.Thread_analysis.thread_funcs;
  match th.Analysis.Thread_analysis.sites with
  | [ site ] ->
      Alcotest.(check bool) "create in loop" true
        site.Analysis.Thread_analysis.in_loop;
      Alcotest.(check (option int)) "trip count 3" (Some 3)
        site.Analysis.Thread_analysis.loop_trip;
      Alcotest.(check bool) "argument is the loop counter" true
        site.Analysis.Thread_analysis.arg_is_thread_id
  | sites -> Alcotest.failf "expected 1 site, got %d" (List.length sites)

let test_algorithm_1 () =
  let a = example_analysis () in
  let th = a.Analysis.Pipeline.threads in
  let presence name scope =
    Analysis.Thread_analysis.presence th
      (match scope with
      | `Global -> Ir.Var_id.global name
      | `Local f -> Ir.Var_id.local ~func:f name
      | `Param f -> Ir.Var_id.param ~func:f name)
  in
  Alcotest.(check string) "sum in multiple threads" "In Multiple Threads"
    (Analysis.Thread_analysis.presence_to_string (presence "sum" `Global));
  Alcotest.(check string) "tLocal in multiple threads (launch x3)"
    "In Multiple Threads"
    (Analysis.Thread_analysis.presence_to_string
       (presence "tLocal" (`Local "tf")));
  Alcotest.(check string) "local not in thread" "Not in Thread"
    (Analysis.Thread_analysis.presence_to_string
       (presence "local" (`Local "main")))

let test_single_thread_classification () =
  let a =
    analyze
      {|#include <pthread.h>
        int shared_x;
        void *once(void *arg) { shared_x = 1; pthread_exit(NULL); }
        int main() {
          pthread_t t;
          pthread_create(&t, NULL, once, NULL);
          pthread_join(t, NULL);
          return shared_x;
        }|}
  in
  let th = a.Analysis.Pipeline.threads in
  Alcotest.(check string) "created once -> single thread"
    "In Single Thread"
    (Analysis.Thread_analysis.presence_to_string
       (Analysis.Thread_analysis.presence th (Ir.Var_id.global "shared_x")))

let test_static_thread_count () =
  let a = example_analysis () in
  Alcotest.(check (option int)) "3 threads" (Some 3)
    (Analysis.Thread_analysis.static_thread_count
       a.Analysis.Pipeline.threads)

(* --- Stage 3 / points-to --------------------------------------------------- *)

let test_points_to_example () =
  let a = example_analysis () in
  let targets =
    Analysis.Points_to.definite_var_targets a.Analysis.Pipeline.points_to
      (Ir.Var_id.global "ptr")
  in
  Alcotest.(check (list string)) "ptr definitely points to tmp"
    [ "tmp@main" ]
    (List.map Ir.Var_id.to_string targets)

let test_points_to_possible_after_branch () =
  let a =
    analyze
      {|int x; int y; int *p;
        int main(int c) {
          if (c) { p = &x; } else { p = &y; }
          return *p;
        }|}
  in
  let rels =
    Analysis.Points_to.targets_of a.Analysis.Pipeline.points_to
      (Ir.Var_id.global "p")
  in
  let definiteness tgt =
    List.find_map
      (fun (t, d) ->
        match t with
        | Analysis.Points_to.Tvar id when Ir.Var_id.to_string id = tgt ->
            Some d
        | _ -> None)
      rels
  in
  Alcotest.(check bool) "x is a possible target" true
    (definiteness "x" = Some Analysis.Points_to.Possible);
  Alcotest.(check bool) "y is a possible target" true
    (definiteness "y" = Some Analysis.Points_to.Possible)

let test_points_to_interprocedural () =
  (* pointer passed into a function: the parameter inherits the target *)
  let a =
    analyze
      {|int g;
        void set(int *q) { *q = 1; }
        int main() { set(&g); return g; }|}
  in
  let targets =
    Analysis.Points_to.definite_var_targets a.Analysis.Pipeline.points_to
      (Ir.Var_id.param ~func:"set" "q")
  in
  Alcotest.(check (list string)) "q points to g" [ "g" ]
    (List.map Ir.Var_id.to_string targets)

let test_sharing_propagates_through_pointer () =
  (* tmp becomes shared because shared ptr definitely points at it *)
  let a = example_analysis () in
  Alcotest.(check bool) "tmp shared after stage 3" true
    (Analysis.Pipeline.is_shared a (Ir.Var_id.local ~func:"main" "tmp"))

let test_unused_global_demoted () =
  let a = example_analysis () in
  Alcotest.(check bool) "unused global demoted to private" false
    (Analysis.Pipeline.is_shared a (Ir.Var_id.global "global"))

let test_include_possible_option () =
  (* a local that a shared pointer only *possibly* points at: the paper's
     Algorithm 2 leaves it private; the sound option promotes it *)
  let program =
    Parser.program
      {|int *p;
        void *tf(void *a) { *p = 3; }
        int main(int c) {
          int t1 = 1;
          int t2 = 2;
          pthread_t t;
          if (c) { p = &t1; } else { p = &t2; }
          pthread_create(&t, NULL, tf, NULL);
          pthread_join(t, NULL);
          return 0;
        }|}
  in
  let strict = Analysis.Pipeline.analyze program in
  let loose = Analysis.Pipeline.analyze ~include_possible:true program in
  let t1 = Ir.Var_id.local ~func:"main" "t1" in
  Alcotest.(check bool) "paper mode: t1 stays private" false
    (Analysis.Pipeline.is_shared strict t1);
  Alcotest.(check bool) "sound mode: t1 becomes shared" true
    (Analysis.Pipeline.is_shared loose t1)

let test_points_to_through_return () =
  (* a pointer-returning function: callers inherit its targets *)
  let a =
    analyze
      {|int g;
        int *locate(void) { return &g; }
        int main() {
          int *p = locate();
          *p = 5;
          return g;
        }|}
  in
  let targets =
    Analysis.Points_to.definite_var_targets a.Analysis.Pipeline.points_to
      (Ir.Var_id.local ~func:"main" "p")
  in
  Alcotest.(check (list string)) "p points to g through the call" [ "g" ]
    (List.map Ir.Var_id.to_string targets)

let test_points_to_chain () =
  (* shared pointer-to-pointer over two LOCALS: sharing must flow two
     hops through Algorithm 2's iteration *)
  let a =
    analyze
      {|int **pp;
        void *tf(void *a) { **pp = 1; }
        int main() {
          int x = 0;
          int *p = &x;
          pp = &p;
          pthread_t t;
          pthread_create(&t, NULL, tf, NULL);
          pthread_join(t, NULL);
          return x;
        }|}
  in
  Alcotest.(check bool) "local p shared via pp" true
    (Analysis.Pipeline.is_shared a (Ir.Var_id.local ~func:"main" "p"));
  Alcotest.(check bool) "local x shared via p" true
    (Analysis.Pipeline.is_shared a (Ir.Var_id.local ~func:"main" "x"))

let test_reassignment_degrades_definiteness () =
  (* even in straight-line code, a pointer that held two different
     targets over its lifetime keeps only Possible relations in the
     whole-program map — so the paper's definite-only Algorithm 2 will
     not promote either target (the include_possible option exists for
     exactly this precision limit) *)
  let a =
    analyze
      {|int x; int y; int *p;
        int main() {
          p = &x;
          *p = 1;
          p = &y;
          *p = 2;
          return 0;
        }|}
  in
  let rels =
    Analysis.Points_to.targets_of a.Analysis.Pipeline.points_to
      (Ir.Var_id.global "p")
  in
  List.iter
    (fun (tgt, d) ->
      match tgt with
      | Analysis.Points_to.Tvar _ ->
          Alcotest.(check bool)
            (Analysis.Points_to.target_to_string tgt ^ " is possible") true
            (d = Analysis.Points_to.Possible)
      | Analysis.Points_to.Tnull | Analysis.Points_to.Tunknown -> ())
    rels;
  Alcotest.(check int) "both targets recorded" 2
    (List.length
       (List.filter
          (fun (tgt, _) ->
            match tgt with
            | Analysis.Points_to.Tvar _ -> true
            | _ -> false)
          rels))

(* --- the sharing lattice ---------------------------------------------------- *)

let test_sharing_lattice () =
  let r = Analysis.Sharing.create () in
  Alcotest.(check bool) "starts unknown" true
    (Analysis.Sharing.status r = Analysis.Sharing.Unknown);
  Analysis.Sharing.refine r Analysis.Sharing.Shared;
  Alcotest.(check bool) "set to shared" true
    (Analysis.Sharing.status r = Analysis.Sharing.Shared);
  (* one flip allowed *)
  Analysis.Sharing.refine r Analysis.Sharing.Private;
  Alcotest.(check bool) "flipped to private" true
    (Analysis.Sharing.status r = Analysis.Sharing.Private);
  (* same-value refinement is fine *)
  Analysis.Sharing.refine r Analysis.Sharing.Private;
  (* second flip must be rejected *)
  match Analysis.Sharing.refine r Analysis.Sharing.Shared with
  | () -> Alcotest.fail "second flip should be rejected"
  | exception Analysis.Sharing.Refinement_rejected _ -> ()

let qcheck_lattice_never_reverts =
  (* random refinement sequences never produce two observable flips *)
  let gen =
    QCheck.Gen.(
      list_size (int_bound 12)
        (oneofl
           [ Analysis.Sharing.Unknown; Analysis.Sharing.Shared;
             Analysis.Sharing.Private ]))
  in
  QCheck.Test.make ~count:300
    ~name:"sharing lattice: at most one flip under any sequence"
    (QCheck.make gen)
    (fun seq ->
      let r = Analysis.Sharing.create () in
      let flips = ref 0 in
      let prev = ref Analysis.Sharing.Unknown in
      List.iter
        (fun s ->
          (try Analysis.Sharing.refine r s
           with Analysis.Sharing.Refinement_rejected _ -> ());
          let cur = Analysis.Sharing.status r in
          (match !prev, cur with
          | Analysis.Sharing.Shared, Analysis.Sharing.Private
          | Analysis.Sharing.Private, Analysis.Sharing.Shared ->
              incr flips
          | _, _ -> ());
          prev := cur)
        seq;
      !flips <= 1)

(* --- access-count estimation ------------------------------------------------ *)

let test_access_count_loop_multiplier () =
  let a =
    analyze
      {|int arr[100];
        int main() {
          int i;
          for (i = 0; i < 100; i++) { arr[i] = i; }
          return 0;
        }|}
  in
  let writes =
    Analysis.Access_count.writes a.Analysis.Pipeline.access
      (Ir.Var_id.global "arr")
  in
  Alcotest.(check int) "one write x100 trips" 100 writes

let test_access_count_unknown_loop_default () =
  (* a while loop with an unknown bound gets the documented default
     multiplier *)
  let a =
    analyze
      {|int arr[100];
        int main(int n) {
          int i = 0;
          while (i < n) { arr[i] = i; i++; }
          return 0;
        }|}
  in
  let writes =
    Analysis.Access_count.writes a.Analysis.Pipeline.access
      (Ir.Var_id.global "arr")
  in
  Alcotest.(check int) "default trip estimate"
    Analysis.Access_count.default_trip writes

let test_access_count_thread_multiplier () =
  let a = example_analysis () in
  (* sum written twice per thread body, three threads *)
  let writes =
    Analysis.Access_count.writes a.Analysis.Pipeline.access
      (Ir.Var_id.global "sum")
  in
  Alcotest.(check int) "2 writes x 3 threads" 6 writes

let suite =
  [
    Alcotest.test_case "Table 4.2 matches the paper" `Quick
      test_table_4_2_matches_paper;
    Alcotest.test_case "Table 4.1 structure" `Quick test_table_4_1_structure;
    Alcotest.test_case "occurrence counts" `Quick test_counts_on_example;
    Alcotest.test_case "use/def attribution" `Quick test_use_def_attribution;
    Alcotest.test_case "thread sites" `Quick test_thread_sites;
    Alcotest.test_case "Algorithm 1" `Quick test_algorithm_1;
    Alcotest.test_case "single-thread classification" `Quick
      test_single_thread_classification;
    Alcotest.test_case "static thread count" `Quick test_static_thread_count;
    Alcotest.test_case "points-to on the example" `Quick
      test_points_to_example;
    Alcotest.test_case "possible after if-else" `Quick
      test_points_to_possible_after_branch;
    Alcotest.test_case "interprocedural points-to" `Quick
      test_points_to_interprocedural;
    Alcotest.test_case "sharing via pointer" `Quick
      test_sharing_propagates_through_pointer;
    Alcotest.test_case "points-to through return" `Quick
      test_points_to_through_return;
    Alcotest.test_case "points-to chain" `Quick test_points_to_chain;
    Alcotest.test_case "reassignment degrades" `Quick
      test_reassignment_degrades_definiteness;
    Alcotest.test_case "unused global demoted" `Quick
      test_unused_global_demoted;
    Alcotest.test_case "include_possible option" `Quick
      test_include_possible_option;
    Alcotest.test_case "sharing lattice" `Quick test_sharing_lattice;
    QCheck_alcotest.to_alcotest qcheck_lattice_never_reverts;
    Alcotest.test_case "loop multiplier" `Quick
      test_access_count_loop_multiplier;
    Alcotest.test_case "unknown loop default" `Quick
      test_access_count_unknown_loop_default;
    Alcotest.test_case "thread multiplier" `Quick
      test_access_count_thread_multiplier;
  ]
