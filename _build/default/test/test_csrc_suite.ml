open Cfront

(* The full benchmark suite as C source, through the whole pipeline:
   parse, translate, and interpret both the Pthread original and the RCCE
   conversion — the outputs must agree benchmark by benchmark. *)

let first_line s =
  match String.split_on_char '\n' (String.trim s) with
  | l :: _ -> l
  | [] -> ""

(* Run original and converted; every process of the converted program
   must print the original's (first) line.  At these test sizes the
   converted program is not necessarily faster — per-element uncached
   shared accesses can outweigh a few cores of parallelism, which is the
   paper's own motivation for the MPB — so only equivalence is
   asserted. *)
let check_equivalent ?options ~name ~nt src =
  let program = Parser.program ~file:(name ^ ".c") src in
  let original = Cexec.Interp.run_pthread program in
  let translated, _ =
    Translate.Driver.translate_program ?options program
  in
  let converted = Cexec.Interp.run_rcce ~ncores:nt translated in
  let expected = first_line original.Cexec.Interp.output in
  Alcotest.(check bool) (name ^ ": original produced output") true
    (String.length expected > 0);
  String.split_on_char '\n' (String.trim converted.Cexec.Interp.output)
  |> List.iter (fun line ->
         Alcotest.(check string) (name ^ ": same result") expected line)

let test_sum35 () =
  check_equivalent ~name:"sum35" ~nt:4 (Exp.Csrc.sum35 ~nt:4 ~bound:5_000)

let test_dot () =
  check_equivalent ~name:"dot" ~nt:4 (Exp.Csrc.dot ~nt:4 ~n:2_048)

let test_stream () =
  check_equivalent ~name:"stream" ~nt:4 (Exp.Csrc.stream ~nt:4 ~n:1_024)

let test_lu () =
  check_equivalent ~name:"lu" ~nt:4 (Exp.Csrc.lu ~nt:4 ~n:24)

let test_stream_barriers_enforced () =
  (* the stream kernels have cross-thread dependencies through the
     barriers: scale reads what copy wrote on *other* threads' chunks is
     false here (chunks are disjoint), but triad reads b and c written in
     earlier kernels — check against a sequential reference *)
  let n = 512 in
  let src = Exp.Csrc.stream ~nt:4 ~n in
  let r = Cexec.Interp.run_pthread (Parser.program src) in
  (* sequential model of the four kernels *)
  let a = Array.init n (fun i -> float_of_int ((i mod 13) + 1)) in
  let b = Array.make n 0.0 in
  let c = Array.make n 0.0 in
  for j = 0 to n - 1 do c.(j) <- a.(j) done;
  for j = 0 to n - 1 do b.(j) <- 3.0 *. c.(j) done;
  for j = 0 to n - 1 do c.(j) <- a.(j) +. b.(j) done;
  for j = 0 to n - 1 do a.(j) <- b.(j) +. (3.0 *. c.(j)) done;
  let checksum = ref 0.0 in
  for i = 0 to n - 1 do
    checksum := !checksum +. a.(i) +. b.(i) +. c.(i)
  done;
  let expected = Printf.sprintf "stream checksum = %f" !checksum in
  Alcotest.(check string) "matches the sequential kernels" expected
    (first_line r.Cexec.Interp.output)

let test_lu_matches_native_workload () =
  (* the C program and the native OCaml workload implement the same
     elimination: their checksums must agree *)
  let n = 16 in
  let src = Exp.Csrc.lu ~nt:2 ~n in
  let r = Cexec.Interp.run_pthread (Parser.program src) in
  let reference =
    Workloads.Lu.reference { Workloads.Lu.n; block = 256 }
  in
  let checksum = Array.fold_left ( +. ) 0.0 reference in
  let expected = Printf.sprintf "lu checksum = %f" checksum in
  Alcotest.(check string) "C and OCaml eliminations agree" expected
    (first_line r.Cexec.Interp.output)

let test_whole_suite_many_to_one () =
  (* every benchmark source also survives the many-to-one mapping *)
  let options =
    { Translate.Pass.default_options with
      Translate.Pass.ncores = 2; many_to_one = true }
  in
  List.iter
    (fun (name, src) ->
      check_equivalent ~options ~name:(name ^ "-m21") ~nt:2 src)
    [ ("pi", Exp.Csrc.pi ~nt:6 ~steps:1_024);
      ("sum35", Exp.Csrc.sum35 ~nt:6 ~bound:2_000);
      ("dot", Exp.Csrc.dot ~nt:6 ~n:600) ]

let suite =
  [
    Alcotest.test_case "sum35 end to end" `Quick test_sum35;
    Alcotest.test_case "dot end to end" `Quick test_dot;
    Alcotest.test_case "stream end to end" `Quick test_stream;
    Alcotest.test_case "lu end to end" `Quick test_lu;
    Alcotest.test_case "stream barrier semantics" `Quick
      test_stream_barriers_enforced;
    Alcotest.test_case "lu matches native workload" `Quick
      test_lu_matches_native_workload;
    Alcotest.test_case "suite under many-to-one" `Quick
      test_whole_suite_many_to_one;
  ]
