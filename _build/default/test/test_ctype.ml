open Cfront

(* Types: 32-bit ABI sizes, element counts, declarator rendering. *)

let test_sizeof () =
  let check msg ty expected =
    Alcotest.(check int) msg expected (Ctype.sizeof ty)
  in
  check "char" Ctype.Char 1;
  check "short" Ctype.Short 2;
  check "int" Ctype.Int 4;
  check "long is 4 on IA-32" Ctype.Long 4;
  check "float" Ctype.Float 4;
  check "double" Ctype.Double 8;
  check "pointer is 4" (Ctype.Ptr Ctype.Double) 4;
  check "array" (Ctype.Array (Ctype.Int, Some 3)) 12;
  check "array of doubles" (Ctype.Array (Ctype.Double, Some 10)) 80;
  check "unsized array decays" (Ctype.Array (Ctype.Int, None)) 4;
  check "unsigned int" (Ctype.Unsigned Ctype.Int) 4;
  check "pthread_t" (Ctype.Named "pthread_t") 4;
  check "pthread_mutex_t" (Ctype.Named "pthread_mutex_t") 24

let test_element_count () =
  Alcotest.(check int) "scalar" 1 (Ctype.element_count Ctype.Int);
  Alcotest.(check int) "pointer" 1 (Ctype.element_count (Ctype.Ptr Ctype.Int));
  Alcotest.(check int) "array" 3
    (Ctype.element_count (Ctype.Array (Ctype.Int, Some 3)))

let test_predicates () =
  Alcotest.(check bool) "int is integer" true (Ctype.is_integer Ctype.Int);
  Alcotest.(check bool) "float not integer" false
    (Ctype.is_integer Ctype.Float);
  Alcotest.(check bool) "double is floating" true
    (Ctype.is_floating Ctype.Double);
  Alcotest.(check bool) "pointer is pointer" true
    (Ctype.is_pointer (Ctype.Ptr Ctype.Void));
  Alcotest.(check bool) "array decays to pointer" true
    (Ctype.is_pointer (Ctype.Array (Ctype.Int, Some 2)));
  Alcotest.(check bool) "scalar covers each class" true
    (Ctype.is_scalar Ctype.Int && Ctype.is_scalar Ctype.Float
    && Ctype.is_scalar (Ctype.Ptr Ctype.Void))

let test_pointee () =
  Alcotest.(check bool) "pointee of int*" true
    (Ctype.pointee (Ctype.Ptr Ctype.Int) = Some Ctype.Int);
  Alcotest.(check bool) "pointee of array" true
    (Ctype.pointee (Ctype.Array (Ctype.Double, Some 4)) = Some Ctype.Double);
  Alcotest.(check bool) "no pointee of int" true
    (Ctype.pointee Ctype.Int = None)

let test_decl_rendering () =
  let check msg ty name expected =
    Alcotest.(check string) msg expected (Ctype.decl ty name)
  in
  check "scalar" Ctype.Int "x" "int x";
  check "pointer" (Ctype.Ptr Ctype.Int) "p" "int *p";
  check "double pointer" (Ctype.Ptr (Ctype.Ptr Ctype.Char)) "argv"
    "char **argv";
  check "array" (Ctype.Array (Ctype.Int, Some 3)) "sum" "int sum[3]";
  check "array of pointers" (Ctype.Array (Ctype.Ptr Ctype.Int, Some 3)) "v"
    "int *v[3]";
  check "named type array" (Ctype.Array (Ctype.Named "pthread_t", Some 3))
    "threads" "pthread_t threads[3]"

let test_equal () =
  Alcotest.(check bool) "structural equality" true
    (Ctype.equal
       (Ctype.Ptr (Ctype.Array (Ctype.Int, Some 2)))
       (Ctype.Ptr (Ctype.Array (Ctype.Int, Some 2))));
  Alcotest.(check bool) "length matters" false
    (Ctype.equal
       (Ctype.Array (Ctype.Int, Some 2))
       (Ctype.Array (Ctype.Int, Some 3)))

let suite =
  [
    Alcotest.test_case "sizeof" `Quick test_sizeof;
    Alcotest.test_case "element count" `Quick test_element_count;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "pointee" `Quick test_pointee;
    Alcotest.test_case "declarator rendering" `Quick test_decl_rendering;
    Alcotest.test_case "equality" `Quick test_equal;
  ]
