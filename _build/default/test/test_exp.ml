(* The experiment harness: the rendered sections contain what the paper's
   tables and figures contain, at quick scale. *)

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec scan i = i + n <= m && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let check_contains msg needle hay =
  if not (contains needle hay) then
    Alcotest.failf "%s: %S not found in:\n%s" msg needle hay

let test_table_4_1 () =
  let t = Exp.Experiments.table_4_1 () in
  List.iter
    (fun name -> check_contains "row present" name t)
    [ "global"; "ptr"; "sum"; "tLocal"; "tid"; "local"; "tmp"; "threads";
      "rc" ]

let test_table_4_2 () =
  let t = Exp.Experiments.table_4_2 () in
  check_contains "headers" "Stage 1" t;
  check_contains "tmp row flips to true" "tmp" t

let test_table_6_1 () =
  let t = Exp.Experiments.table_6_1 () in
  check_contains "core frequency" "800 MHz" t;
  check_contains "mesh frequency" "1600 MHz" t;
  check_contains "dram frequency" "1066 MHz" t;
  check_contains "32 cores" "32 cores" t;
  check_contains "32 threads" "32 threads" t

let test_translation_example () =
  let t = Exp.Experiments.translation_example () in
  check_contains "RCCE_APP present" "RCCE_APP" t;
  check_contains "shmalloc present" "RCCE_shmalloc" t

let test_fig_6_1_quick () =
  let rows = Exp.Experiments.fig_6_1_data ~scale:Exp.Experiments.Quick () in
  Alcotest.(check int) "six benchmarks" 6 (List.length rows);
  List.iter
    (fun (r : Exp.Experiments.fig_6_1_row) ->
      Alcotest.(check bool) (r.Exp.Experiments.name ^ " verified") true
        r.Exp.Experiments.verified;
      Alcotest.(check bool)
        (Printf.sprintf "%s speedup %.1f > 1" r.Exp.Experiments.name
           r.Exp.Experiments.speedup)
        true
        (r.Exp.Experiments.speedup > 1.0))
    rows;
  (* the paper's ordering: pi beats primes (imbalance) *)
  let speedup name =
    (List.find (fun (r : Exp.Experiments.fig_6_1_row) -> r.Exp.Experiments.name = name) rows)
      .Exp.Experiments.speedup
  in
  Alcotest.(check bool) "pi > primes" true (speedup "pi" > speedup "primes")

let test_fig_6_2_quick () =
  let rows = Exp.Experiments.fig_6_2_data ~scale:Exp.Experiments.Quick () in
  List.iter
    (fun (r : Exp.Experiments.fig_6_2_row) ->
      Alcotest.(check bool) (r.Exp.Experiments.name ^ " verified") true
        r.Exp.Experiments.verified)
    rows;
  let improvement name =
    (List.find (fun (r : Exp.Experiments.fig_6_2_row) -> r.Exp.Experiments.name = name) rows)
      .Exp.Experiments.improvement
  in
  (* compute benchmarks gain nothing; a memory benchmark gains *)
  Alcotest.(check bool) "pi flat" true (improvement "pi" < 1.2);
  Alcotest.(check bool) "dot gains" true (improvement "dot" > 1.5)

let test_fig_6_3_quick () =
  let rows = Exp.Experiments.fig_6_3_data ~scale:Exp.Experiments.Quick () in
  Alcotest.(check int) "eight core counts" 8 (List.length rows);
  (* speedups increase with core count *)
  let rec ascending = function
    | (a : Exp.Experiments.fig_6_3_row) :: (b :: _ as rest) ->
        a.Exp.Experiments.speedup < b.Exp.Experiments.speedup
        && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone scaling" true (ascending rows);
  let last = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "48 cores well above 30x" true
    (last.Exp.Experiments.speedup > 30.0)

let test_ablation_partition () =
  let t = Exp.Experiments.ablation_partition () in
  check_contains "strategies present" "size-ascending" t;
  check_contains "density present" "access-density" t;
  check_contains "off-chip row" "all-off-chip" t

let test_interp_end_to_end () =
  let rows, speedup =
    Exp.Experiments.interp_end_to_end ~scale:Exp.Experiments.Quick ()
  in
  Alcotest.(check int) "two configurations" 2 (List.length rows);
  Alcotest.(check bool)
    (Printf.sprintf "translated faster (%.1fx)" speedup)
    true (speedup > 2.0);
  (* both computed the same pi *)
  match rows with
  | [ a; b ] ->
      let first_line s =
        match String.split_on_char '\n' s.Exp.Experiments.output with
        | l :: _ -> l
        | [] -> ""
      in
      Alcotest.(check string) "same result" (first_line a) (first_line b)
  | _ -> Alcotest.fail "expected two rows"

let test_bar_chart () =
  let chart = Exp.Tabulate.bar_chart [ ("a", 2.0); ("bb", 4.0) ] in
  check_contains "labels aligned" "a " chart;
  check_contains "bars drawn" "####" chart

let test_tabulate_render () =
  let t = Exp.Tabulate.render [ [ "A"; "B" ]; [ "1"; "22" ] ] in
  Alcotest.(check string) "aligned with rule" "A  B\n-----\n1  22\n" t

let suite =
  [
    Alcotest.test_case "table 4.1" `Quick test_table_4_1;
    Alcotest.test_case "table 4.2" `Quick test_table_4_2;
    Alcotest.test_case "table 6.1" `Quick test_table_6_1;
    Alcotest.test_case "translation example" `Quick test_translation_example;
    Alcotest.test_case "fig 6.1 quick" `Slow test_fig_6_1_quick;
    Alcotest.test_case "fig 6.2 quick" `Slow test_fig_6_2_quick;
    Alcotest.test_case "fig 6.3 quick" `Slow test_fig_6_3_quick;
    Alcotest.test_case "ablation partition" `Quick test_ablation_partition;
    Alcotest.test_case "interp end to end" `Slow test_interp_end_to_end;
    Alcotest.test_case "bar chart" `Quick test_bar_chart;
    Alcotest.test_case "tabulate" `Quick test_tabulate_render;
  ]
