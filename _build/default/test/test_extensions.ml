open Cfront

(* The paper's section-7 extensions: many-to-one thread mapping,
   pthread_barrier conversion, RCCE send/recv over MPB flags, and the
   counted-barrier/flag engine primitives underneath. *)

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec scan i = i + n <= m && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let check_contains msg needle hay =
  if not (contains needle hay) then
    Alcotest.failf "%s: %S not found in:\n%s" msg needle hay

(* --- many-to-one (section 7.2) ---------------------------------------------- *)

let many_to_one_options ncores =
  { Translate.Pass.default_options with
    Translate.Pass.ncores; many_to_one = true }

let test_many_to_one_emits_task_loop () =
  let src = Exp.Csrc.pi ~nt:16 ~steps:1024 in
  let out, report =
    Translate.Driver.translate_to_string ~options:(many_to_one_options 4) src
  in
  check_contains "task variable declared" "int myTask;" out;
  check_contains "task loop header"
    "for (myTask = myID; myTask < 16; myTask += RCCE_num_ues())" out;
  check_contains "call indexed by task" "work((void*)myTask);" out;
  Alcotest.(check bool) "note mentions many-to-one" true
    (List.exists (contains "many-to-one")
       report.Translate.Driver.notes)

let test_many_to_one_accepts_excess_threads () =
  (* 100 threads would be rejected without the option *)
  let src = Exp.Csrc.pi ~nt:100 ~steps:1000 in
  match
    Translate.Driver.translate_source ~options:(many_to_one_options 48) src
  with
  | _, report ->
      Alcotest.(check (option int)) "100 threads accepted" (Some 100)
        report.Translate.Driver.thread_count
  | exception Translate.Driver.Error e ->
      Alcotest.failf "rejected: %s" (Translate.Driver.error_to_string e)

let test_many_to_one_end_to_end () =
  (* 12 threads onto 3 cores: same result as the original *)
  let src = Exp.Csrc.pi ~nt:12 ~steps:2048 in
  let program = Parser.program ~file:"pi.c" src in
  let original = Cexec.Interp.run_pthread program in
  let translated, _ =
    Translate.Driver.translate_program ~options:(many_to_one_options 3)
      program
  in
  let converted = Cexec.Interp.run_rcce ~ncores:3 translated in
  let expected = String.trim original.Cexec.Interp.output in
  String.split_on_char '\n' (String.trim converted.Cexec.Interp.output)
  |> List.iter (fun line -> Alcotest.(check string) "same pi" expected line);
  Alcotest.(check bool) "3 cores still beat 1" true
    (converted.Cexec.Interp.elapsed_ps < original.Cexec.Interp.elapsed_ps)

let test_many_to_one_uneven_split () =
  (* 10 tasks on 4 cores: 3/3/2/2 — results must still be complete *)
  let src = Exp.Csrc.primes ~nt:10 ~limit:200 in
  let program = Parser.program ~file:"p.c" src in
  let original = Cexec.Interp.run_pthread program in
  let translated, _ =
    Translate.Driver.translate_program ~options:(many_to_one_options 4)
      program
  in
  let converted = Cexec.Interp.run_rcce ~ncores:4 translated in
  let expected = String.trim original.Cexec.Interp.output in
  String.split_on_char '\n' (String.trim converted.Cexec.Interp.output)
  |> List.iter (fun line -> Alcotest.(check string) "same count" expected line)

(* --- pthread_barrier (section 7.1 expansion) --------------------------------- *)

let barrier_src =
  {|#include <stdio.h>
    #include <pthread.h>
    int stage[4];
    pthread_barrier_t bar;
    void *w(void *tid) {
      int id = (int)tid;
      stage[id] = 1;
      pthread_barrier_wait(&bar);
      if (id == 0) {
        int total = 0;
        int i;
        for (i = 0; i < 4; i++) { total = total + stage[i]; }
        printf("after barrier: %d\n", total);
      }
      pthread_exit(NULL);
    }
    int main() {
      pthread_barrier_init(&bar, NULL, 4);
      pthread_t t[4];
      int i;
      for (i = 0; i < 4; i++) { pthread_create(&t[i], NULL, w, (void *)i); }
      for (i = 0; i < 4; i++) { pthread_join(t[i], NULL); }
      return 0;
    }|}

let test_pthread_barrier_translation () =
  let out, _ = Translate.Driver.translate_to_string barrier_src in
  check_contains "wait becomes RCCE barrier" "RCCE_barrier(&RCCE_COMM_WORLD)"
    out;
  if contains "pthread_barrier" out then
    Alcotest.failf "pthread_barrier survived:\n%s" out

let test_pthread_barrier_interp () =
  let r = Cexec.Interp.run_pthread (Parser.program barrier_src) in
  Alcotest.(check string) "all four stages visible after the barrier"
    "after barrier: 4\n" r.Cexec.Interp.output

let test_pthread_barrier_end_to_end () =
  let program = Parser.program barrier_src in
  let original = Cexec.Interp.run_pthread program in
  let translated, _ = Translate.Driver.translate_program program in
  let converted = Cexec.Interp.run_rcce ~ncores:4 translated in
  Alcotest.(check string) "same output" original.Cexec.Interp.output
    converted.Cexec.Interp.output

(* --- counted barriers and flags in the engine -------------------------------- *)

let test_engine_counted_barrier_subgroup () =
  let eng = Scc.Engine.create () in
  let released = ref 0 in
  (* contexts 0 and 1 meet at a 2-party barrier; context 2 never joins *)
  for core = 0 to 2 do
    ignore
      (Scc.Engine.spawn eng ~core (fun api ->
           if api.Scc.Engine.self < 2 then begin
             api.Scc.Engine.barrier_n ~id:7 ~count:2;
             incr released
           end
           else api.Scc.Engine.compute 1_000))
  done;
  Scc.Engine.run eng;
  Alcotest.(check int) "both members released" 2 !released

let test_engine_counted_barrier_reusable () =
  let eng = Scc.Engine.create () in
  let rounds = Array.make 2 0 in
  for core = 0 to 1 do
    ignore
      (Scc.Engine.spawn eng ~core (fun api ->
           for _ = 1 to 5 do
             api.Scc.Engine.barrier_n ~id:3 ~count:2;
             rounds.(api.Scc.Engine.self) <-
               rounds.(api.Scc.Engine.self) + 1
           done))
  done;
  Scc.Engine.run eng;
  Alcotest.(check int) "five rounds each" 5 rounds.(0);
  Alcotest.(check int) "five rounds each" 5 rounds.(1)

let test_engine_flags () =
  let eng = Scc.Engine.create () in
  let observed = ref (-1) in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api ->
         api.Scc.Engine.compute 10_000;
         api.Scc.Engine.flag_set ~id:1 true));
  ignore
    (Scc.Engine.spawn eng ~core:1 (fun api ->
         api.Scc.Engine.flag_wait ~id:1;
         observed := api.Scc.Engine.now_ps ()));
  Scc.Engine.run eng;
  Alcotest.(check bool) "waiter woke after the set" true
    (!observed >= Scc.Config.core_cycles_ps Scc.Config.default 10_000)

let test_engine_flag_already_set () =
  let eng = Scc.Engine.create () in
  let done_ = ref false in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api ->
         api.Scc.Engine.flag_set ~id:2 true;
         api.Scc.Engine.flag_wait ~id:2;
         done_ := true));
  Scc.Engine.run eng;
  Alcotest.(check bool) "wait on a set flag returns" true !done_

(* --- RCCE send/recv ------------------------------------------------------------ *)

let test_rcce_send_recv_pair () =
  let received_at = ref 0 and sent_at = ref 0 in
  let _eng =
    Rcce.run ~ncores:2 (fun t ->
        if Rcce.ue t = 0 then begin
          Rcce.send t ~dest_ue:1 ~bytes:512;
          sent_at := (Rcce.api t).Scc.Engine.now_ps ()
        end
        else begin
          Rcce.recv t ~src_ue:0 ~bytes:512;
          received_at := (Rcce.api t).Scc.Engine.now_ps ()
        end)
  in
  Alcotest.(check bool) "receive completes after data movement" true
    (!received_at > 0);
  Alcotest.(check bool) "sender finished too" true (!sent_at > 0)

let test_rcce_ring () =
  (* a token passes around an 8-UE ring and returns home *)
  let n = 8 in
  let hops = ref 0 in
  let _eng =
    Rcce.run ~ncores:n (fun t ->
        let me = Rcce.ue t in
        let next = (me + 1) mod n and prev = (me + n - 1) mod n in
        if me = 0 then begin
          Rcce.send t ~dest_ue:next ~bytes:64;
          Rcce.recv t ~src_ue:prev ~bytes:64;
          hops := n
        end
        else begin
          Rcce.recv t ~src_ue:prev ~bytes:64;
          Rcce.send t ~dest_ue:next ~bytes:64
        end)
  in
  Alcotest.(check int) "token went all the way round" 8 !hops

let test_rcce_send_to_self_rejected () =
  match
    Rcce.run ~ncores:2 (fun t ->
        if Rcce.ue t = 0 then Rcce.send t ~dest_ue:0 ~bytes:8)
  with
  | _ -> Alcotest.fail "send to self accepted"
  | exception Invalid_argument _ -> ()

let test_rcce_chunked_message () =
  (* larger than the 1 KB comm buffer: must still complete, in chunks *)
  let small = ref 0 and large = ref 0 in
  let time bytes =
    let finish = ref 0 in
    let _eng =
      Rcce.run ~ncores:2 (fun t ->
          if Rcce.ue t = 0 then Rcce.send t ~dest_ue:1 ~bytes
          else begin
            Rcce.recv t ~src_ue:0 ~bytes;
            finish := (Rcce.api t).Scc.Engine.now_ps ()
          end)
    in
    !finish
  in
  small := time 256;
  large := time 8192;
  Alcotest.(check bool) "bigger message takes longer" true (!large > !small)

(* --- RCCE flags in the interpreter -------------------------------------------- *)

let test_interp_rcce_flags_producer_consumer () =
  (* UE 0 produces a value into shared memory and raises UE 1's flag;
     UE 1 waits on its own flag copy before consuming *)
  let src =
    {|#include <stdio.h>
      int *cell;
      RCCE_FLAG ready;
      int RCCE_APP(int argc, char **argv) {
        RCCE_init(&argc, &argv);
        RCCE_flag_alloc(&ready);
        cell = (int*)RCCE_shmalloc(sizeof(int) * 1);
        int me;
        me = RCCE_ue();
        if (me == 0) {
          *cell = 42;
          RCCE_flag_write(&ready, RCCE_FLAG_SET, 1);
        }
        if (me == 1) {
          RCCE_wait_until(ready, RCCE_FLAG_SET);
          printf("consumed %d
", *cell);
        }
        RCCE_finalize();
        return 0;
      }|}
  in
  let r =
    Cexec.Interp.run_rcce ~ncores:2 (Parser.program ~file:"pc.c" src)
  in
  Alcotest.(check string) "value visible after the flag" "consumed 42
"
    r.Cexec.Interp.output

let test_interp_rcce_wait_unset_rejected () =
  let src =
    {|RCCE_FLAG f;
      int RCCE_APP(int argc, char **argv) {
        RCCE_init(&argc, &argv);
        RCCE_flag_alloc(&f);
        RCCE_wait_until(f, RCCE_FLAG_UNSET);
        return 0;
      }|}
  in
  match Cexec.Interp.run_rcce ~ncores:1 (Parser.program src) with
  | _ -> Alcotest.fail "waiting for UNSET should be rejected"
  | exception Cexec.Interp.Runtime_error _ -> ()

(* --- dynamic DVFS (section 5.1 power API) -------------------------------------- *)

let test_set_frequency_slows_compute () =
  let eng = Scc.Engine.create () in
  let fast = ref 0 and slow = ref 0 in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api ->
         let t0 = api.Scc.Engine.now_ps () in
         api.Scc.Engine.compute 100_000;
         let t1 = api.Scc.Engine.now_ps () in
         api.Scc.Engine.set_frequency ~core:0 ~mhz:400;
         let t2 = api.Scc.Engine.now_ps () in
         api.Scc.Engine.compute 100_000;
         let t3 = api.Scc.Engine.now_ps () in
         fast := t1 - t0;
         slow := t3 - t2));
  Scc.Engine.run eng;
  Alcotest.(check int) "half the frequency, twice the time" (2 * !fast)
    !slow

let test_set_frequency_is_tile_granular () =
  let eng = Scc.Engine.create () in
  let sibling = ref 0 and other_tile = ref 0 in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api ->
         api.Scc.Engine.set_frequency ~core:0 ~mhz:200;
         api.Scc.Engine.barrier ()));
  (* core 1 shares tile 0; core 2 is on tile 1 *)
  ignore
    (Scc.Engine.spawn eng ~core:1 (fun api ->
         api.Scc.Engine.barrier ();
         let t0 = api.Scc.Engine.now_ps () in
         api.Scc.Engine.compute 1_000;
         sibling := api.Scc.Engine.now_ps () - t0));
  ignore
    (Scc.Engine.spawn eng ~core:2 (fun api ->
         api.Scc.Engine.barrier ();
         let t0 = api.Scc.Engine.now_ps () in
         api.Scc.Engine.compute 1_000;
         other_tile := api.Scc.Engine.now_ps () - t0));
  Scc.Engine.run eng;
  Alcotest.(check int) "tile sibling slowed to 200 MHz"
    (1_000 * (1_000_000 / 200)) !sibling;
  Alcotest.(check int) "other tile still at 800 MHz"
    (1_000 * (1_000_000 / 800)) !other_tile

let test_set_frequency_bounds () =
  let eng = Scc.Engine.create () in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api ->
         api.Scc.Engine.set_frequency ~core:0 ~mhz:50));
  match Scc.Engine.run eng with
  | _ -> Alcotest.fail "50 MHz should be rejected"
  | exception Invalid_argument _ -> ()

let test_rcce_frequency_divider () =
  let slow_elapsed = ref 0 and fast_elapsed = ref 0 in
  let run ~divider =
    let finish = ref 0 in
    let _eng =
      Rcce.run ~ncores:1 (fun t ->
          Rcce.set_frequency_divider t ~divider;
          (Rcce.api t).Scc.Engine.compute 10_000;
          finish := (Rcce.api t).Scc.Engine.now_ps ())
    in
    !finish
  in
  fast_elapsed := run ~divider:2;
  slow_elapsed := run ~divider:4;
  Alcotest.(check bool) "divider 4 slower than divider 2" true
    (!slow_elapsed > !fast_elapsed)

let test_interp_program_slows_itself () =
  let src =
    {|int RCCE_APP(int argc, char **argv) {
        RCCE_init(&argc, &argv);
        int i;
        int acc = 0;
        RCCE_set_frequency_divider(8);
        for (i = 0; i < 1000; i++) { acc = acc + i; }
        RCCE_finalize();
        return acc;
      }|}
  in
  let slow = Cexec.Interp.run_rcce ~ncores:1 (Parser.program src) in
  let fast_src =
    {|int RCCE_APP(int argc, char **argv) {
        RCCE_init(&argc, &argv);
        int i;
        int acc = 0;
        for (i = 0; i < 1000; i++) { acc = acc + i; }
        RCCE_finalize();
        return acc;
      }|}
  in
  let fast = Cexec.Interp.run_rcce ~ncores:1 (Parser.program fast_src) in
  Alcotest.(check bool) "the divider slowed the program" true
    (slow.Cexec.Interp.elapsed_ps > fast.Cexec.Interp.elapsed_ps)

let suite =
  [
    Alcotest.test_case "many-to-one task loop" `Quick
      test_many_to_one_emits_task_loop;
    Alcotest.test_case "many-to-one accepts 100 threads" `Quick
      test_many_to_one_accepts_excess_threads;
    Alcotest.test_case "many-to-one end to end" `Quick
      test_many_to_one_end_to_end;
    Alcotest.test_case "many-to-one uneven split" `Quick
      test_many_to_one_uneven_split;
    Alcotest.test_case "pthread_barrier translation" `Quick
      test_pthread_barrier_translation;
    Alcotest.test_case "pthread_barrier interp" `Quick
      test_pthread_barrier_interp;
    Alcotest.test_case "pthread_barrier end to end" `Quick
      test_pthread_barrier_end_to_end;
    Alcotest.test_case "counted barrier subgroup" `Quick
      test_engine_counted_barrier_subgroup;
    Alcotest.test_case "counted barrier reusable" `Quick
      test_engine_counted_barrier_reusable;
    Alcotest.test_case "flags wake waiters" `Quick test_engine_flags;
    Alcotest.test_case "flag already set" `Quick test_engine_flag_already_set;
    Alcotest.test_case "send/recv pair" `Quick test_rcce_send_recv_pair;
    Alcotest.test_case "ring communication" `Quick test_rcce_ring;
    Alcotest.test_case "send to self rejected" `Quick
      test_rcce_send_to_self_rejected;
    Alcotest.test_case "chunked message" `Quick test_rcce_chunked_message;
    Alcotest.test_case "interp flags producer/consumer" `Quick
      test_interp_rcce_flags_producer_consumer;
    Alcotest.test_case "interp wait-unset rejected" `Quick
      test_interp_rcce_wait_unset_rejected;
    Alcotest.test_case "DVFS slows compute" `Quick
      test_set_frequency_slows_compute;
    Alcotest.test_case "DVFS tile granularity" `Quick
      test_set_frequency_is_tile_granular;
    Alcotest.test_case "DVFS bounds" `Quick test_set_frequency_bounds;
    Alcotest.test_case "RCCE frequency divider" `Quick
      test_rcce_frequency_divider;
    Alcotest.test_case "interp self-slowing program" `Quick
      test_interp_program_slows_itself;
  ]
