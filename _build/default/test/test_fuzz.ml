open Cfront

(* Robustness properties: no input — however malformed — may take the
   frontend or the engine outside its documented error channel, and the
   simulator stays deterministic under randomly generated programs. *)

(* --- frontend fuzz ----------------------------------------------------------- *)

(* Random printable soup: the parser must either succeed or raise
   Srcloc.Error — never any other exception. *)
let gen_soup =
  QCheck.Gen.(
    string_size (int_bound 200)
      ~gen:
        (frequency
           [ (8, printable);
             (2, oneofl [ '{'; '}'; '('; ')'; '"'; '\''; '\\'; '#'; '\n' ]) ]))

let qcheck_parser_total =
  QCheck.Test.make ~count:500 ~name:"parser is total over printable soup"
    (QCheck.make gen_soup ~print:(Printf.sprintf "%S"))
    (fun src ->
      match Parser.program src with
      | _ -> true
      | exception Srcloc.Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "unexpected exception %s on %S"
            (Printexc.to_string e) src)

(* Shuffled valid tokens: still only Srcloc.Error allowed. *)
let token_pool =
  [ "int"; "double"; "if"; "else"; "while"; "for"; "return"; "break";
    "x"; "y"; "f"; "42"; "3.5"; "+"; "-"; "*"; "/"; "="; "=="; "<"; ";";
    ","; "("; ")"; "{"; "}"; "["; "]"; "&"; "!"; "\"s\""; "'c'" ]

let gen_token_soup =
  QCheck.Gen.(
    map (String.concat " ")
      (list_size (int_bound 60) (oneofl token_pool)))

let qcheck_parser_total_on_tokens =
  QCheck.Test.make ~count:500
    ~name:"parser is total over shuffled valid tokens"
    (QCheck.make gen_token_soup ~print:(Printf.sprintf "%S"))
    (fun src ->
      match Parser.program src with
      | _ -> true
      | exception Srcloc.Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "unexpected exception %s on %S"
            (Printexc.to_string e) src)

let qcheck_preproc_total =
  QCheck.Test.make ~count:300 ~name:"preprocessor is total"
    (QCheck.make gen_soup ~print:(Printf.sprintf "%S"))
    (fun src ->
      match Preproc.expand src with
      | _ -> true
      | exception Srcloc.Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "unexpected exception %s on %S"
            (Printexc.to_string e) src)

(* --- random simulator programs ----------------------------------------------- *)

(* A structured random program per context: compute bursts, loads and
   stores into a shared region, matched acquire/release pairs, and an
   identical number of barriers in every context — well-formed by
   construction, so it must terminate without deadlock, and repeated runs
   must give identical elapsed times. *)
type op =
  | Op_compute of int
  | Op_load of int        (* offset *)
  | Op_store of int
  | Op_locked of int * int  (* lock id, compute inside *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_bound 20)
      (frequency
         [ (3, map (fun n -> Op_compute (1 + (abs n mod 5_000))) int);
           (3, map (fun o -> Op_load (abs o mod 4_096)) int);
           (3, map (fun o -> Op_store (abs o mod 4_096)) int);
           (1,
            map2
              (fun l n -> Op_locked (abs l mod 4, 1 + (abs n mod 500)))
              int int) ]))

let gen_program =
  QCheck.Gen.(
    pair (int_range 1 8) (pair (int_bound 3) (list_size (return 8) gen_ops)))

let print_program (ncores, (barriers, ops)) =
  Printf.sprintf "cores=%d barriers=%d ops=%s" ncores barriers
    (String.concat "|"
       (List.map
          (fun ops ->
            String.concat ";"
              (List.map
                 (function
                   | Op_compute n -> Printf.sprintf "c%d" n
                   | Op_load o -> Printf.sprintf "l%d" o
                   | Op_store o -> Printf.sprintf "s%d" o
                   | Op_locked (l, n) -> Printf.sprintf "k%d:%d" l n)
                 ops))
          ops))

let run_random (ncores, (barriers, per_ctx_ops)) =
  let eng = Scc.Engine.create () in
  let mm = Scc.Engine.memmap eng in
  let shared = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:8_192 in
  let ops_for u =
    match List.nth_opt per_ctx_ops (u mod max 1 (List.length per_ctx_ops)) with
    | Some ops -> ops
    | None -> []
  in
  for core = 0 to ncores - 1 do
    ignore
      (Scc.Engine.spawn eng ~core (fun api ->
           List.iter
             (fun op ->
               match op with
               | Op_compute n -> api.Scc.Engine.compute n
               | Op_load o -> api.Scc.Engine.load (shared + o) ~bytes:32
               | Op_store o -> api.Scc.Engine.store (shared + o) ~bytes:32
               | Op_locked (l, n) ->
                   api.Scc.Engine.acquire l;
                   api.Scc.Engine.compute n;
                   api.Scc.Engine.release l)
             (ops_for api.Scc.Engine.self);
           for _ = 1 to barriers do
             api.Scc.Engine.barrier ()
           done))
  done;
  Scc.Engine.run eng;
  Scc.Engine.elapsed_ps eng

let qcheck_engine_no_deadlock_and_deterministic =
  QCheck.Test.make ~count:200
    ~name:"engine: random well-formed programs terminate deterministically"
    (QCheck.make gen_program ~print:print_program)
    (fun program ->
      match run_random program, run_random program with
      | a, b ->
          if a <> b then
            QCheck.Test.fail_reportf "elapsed differs: %d vs %d" a b
          else true
      | exception Scc.Engine.Deadlock msg ->
          QCheck.Test.fail_reportf "deadlock: %s" msg)

(* --- interpreter determinism --------------------------------------------------- *)

let qcheck_interp_deterministic =
  QCheck.Test.make ~count:30
    ~name:"interpreter: repeated runs are bit-identical"
    (QCheck.make QCheck.Gen.(int_range 2 8) ~print:string_of_int)
    (fun nt ->
      let src = Exp.Csrc.pi ~nt ~steps:512 in
      let program = Parser.program src in
      let a = Cexec.Interp.run_pthread program in
      let b = Cexec.Interp.run_pthread program in
      a.Cexec.Interp.elapsed_ps = b.Cexec.Interp.elapsed_ps
      && String.equal a.Cexec.Interp.output b.Cexec.Interp.output)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_parser_total;
    QCheck_alcotest.to_alcotest qcheck_parser_total_on_tokens;
    QCheck_alcotest.to_alcotest qcheck_preproc_total;
    QCheck_alcotest.to_alcotest qcheck_engine_no_deadlock_and_deterministic;
    QCheck_alcotest.to_alcotest qcheck_interp_deterministic;
  ]
