open Cfront

(* Symbol tables, the CFG builder and the dataflow solver. *)

let build src = Ir.Symtab.build (Parser.program src)

let test_symtab_scoping () =
  let st =
    build
      {|int g;
        int f(int a) { int x = a; return x; }
        int main() { int x = 2; return g + x; }|}
  in
  (* g, f's parameter, and the two distinct x's *)
  Alcotest.(check int) "four variables" 4 (List.length (Ir.Symtab.all st));
  let resolve ?func name =
    Option.map
      (fun (e : Ir.Symtab.entry) -> Ir.Var_id.to_string e.Ir.Symtab.id)
      (Ir.Symtab.resolve st ?func name)
  in
  Alcotest.(check (option string)) "x in f" (Some "x@f") (resolve ~func:"f" "x");
  Alcotest.(check (option string)) "x in main" (Some "x@main")
    (resolve ~func:"main" "x");
  Alcotest.(check (option string)) "g anywhere" (Some "g")
    (resolve ~func:"f" "g");
  Alcotest.(check (option string)) "param resolves" (Some "a@f(param)")
    (resolve ~func:"f" "a");
  Alcotest.(check (option string)) "unknown" None (resolve ~func:"f" "nope")

let test_symtab_shadowing () =
  let st = build "int x;\nint f() { int x = 1; return x; }" in
  match Ir.Symtab.resolve st ~func:"f" "x" with
  | Some e ->
      Alcotest.(check bool) "local shadows global" false
        (Ir.Var_id.is_global e.Ir.Symtab.id)
  | None -> Alcotest.fail "x should resolve"

let test_symtab_duplicates_rejected () =
  match build "int f() { int a; int a; return 0; }" with
  | _ -> Alcotest.fail "duplicate locals should be rejected"
  | exception Srcloc.Error _ -> ()

let cfg_of src =
  let p = Parser.program src in
  match Ast.functions p with
  | [ fn ] -> Ir.Cfg.build fn
  | _ -> Alcotest.fail "expected one function"

let test_cfg_straight_line () =
  let cfg = cfg_of "int f() { int a = 1; a = a + 1; return a; }" in
  (* entry, 3 statements, exit *)
  Alcotest.(check int) "five nodes" 5 (Ir.Cfg.length cfg);
  let entry = Ir.Cfg.node cfg cfg.Ir.Cfg.entry in
  Alcotest.(check int) "entry has one successor" 1
    (List.length entry.Ir.Cfg.succs)

let test_cfg_if_join () =
  let cfg =
    cfg_of "int f(int c) { int a; if (c) { a = 1; } else { a = 2; } return a; }"
  in
  (* the return node must have two predecessors (both branches) *)
  let return_node =
    Array.to_list cfg.Ir.Cfg.nodes
    |> List.find (fun n ->
           match n.Ir.Cfg.kind with
           | Ir.Cfg.Statement { Ast.s_desc = Ast.Sreturn _; _ } -> true
           | _ -> false)
  in
  Alcotest.(check int) "join at return" 2
    (List.length return_node.Ir.Cfg.preds)

let test_cfg_loop_back_edge () =
  let cfg = cfg_of "int f() { int i = 0; while (i < 3) { i++; } return i; }" in
  let cond =
    Array.to_list cfg.Ir.Cfg.nodes
    |> List.find (fun n ->
           match n.Ir.Cfg.kind with
           | Ir.Cfg.Condition _ -> true
           | _ -> false)
  in
  Alcotest.(check int) "condition has 2 preds (entry path + back edge)" 2
    (List.length cond.Ir.Cfg.preds)

let test_cfg_break_continue () =
  let cfg =
    cfg_of
      {|int f() {
          int i;
          for (i = 0; i < 10; i++) {
            if (i == 2) continue;
            if (i == 5) break;
            g(i);
          }
          return i;
        }|}
  in
  (* just structural sanity: everything reachable flows to exit *)
  let exit_node = Ir.Cfg.node cfg cfg.Ir.Cfg.exit in
  Alcotest.(check bool) "exit reachable" true
    (List.length exit_node.Ir.Cfg.preds >= 1);
  let order = Ir.Cfg.reverse_postorder cfg in
  Alcotest.(check bool) "rpo covers reachable nodes" true
    (List.length order >= 8)

let test_cfg_dot_renders () =
  let cfg = cfg_of "int f() { return 0; }" in
  let dot = Ir.Cfg.to_dot cfg in
  Alcotest.(check bool) "digraph present" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph")

(* Reaching-constants dataflow over a diamond: checks the solver joins
   properly at merges and reaches a fixed point on loops. *)
module Const_domain = struct
  type t = Unreached | Const of int | Top

  let bottom = Unreached
  let equal = ( = )

  let join a b =
    match a, b with
    | Unreached, x | x, Unreached -> x
    | Const a, Const b when a = b -> Const a
    | _, _ -> Top
end

module Const_flow = Ir.Dataflow.Forward (Const_domain)

let test_dataflow_diamond () =
  let cfg =
    cfg_of
      "int f(int c) { int a; if (c) { a = 1; } else { a = 1; } return a; }"
  in
  (* transfer: an assignment [a = k] makes the fact Const k *)
  let transfer (node : Ir.Cfg.node) fact =
    match node.Ir.Cfg.kind with
    | Ir.Cfg.Statement
        { Ast.s_desc = Ast.Sexpr (Ast.Assign (None, Ast.Var "a", Ast.Int_lit k));
          _ } ->
        Const_domain.Const k
    | _ -> fact
  in
  let result =
    Const_flow.solve cfg ~init:Const_domain.Top ~transfer
  in
  let at_exit = result.Const_flow.in_facts.(cfg.Ir.Cfg.exit) in
  Alcotest.(check bool) "both branches assign 1 -> Const 1 at exit" true
    (at_exit = Const_domain.Const 1)

let test_dataflow_conflicting_branches () =
  let cfg =
    cfg_of
      "int f(int c) { int a; if (c) { a = 1; } else { a = 2; } return a; }"
  in
  let transfer (node : Ir.Cfg.node) fact =
    match node.Ir.Cfg.kind with
    | Ir.Cfg.Statement
        { Ast.s_desc = Ast.Sexpr (Ast.Assign (None, Ast.Var "a", Ast.Int_lit k));
          _ } ->
        Const_domain.Const k
    | _ -> fact
  in
  let result = Const_flow.solve cfg ~init:Const_domain.Top ~transfer in
  Alcotest.(check bool) "conflicting constants join to Top" true
    (result.Const_flow.in_facts.(cfg.Ir.Cfg.exit) = Const_domain.Top)

let test_var_id () =
  Alcotest.(check string) "global" "g" (Ir.Var_id.to_string (Ir.Var_id.global "g"));
  Alcotest.(check string) "local" "x@f"
    (Ir.Var_id.to_string (Ir.Var_id.local ~func:"f" "x"));
  Alcotest.(check bool) "distinct scopes differ" false
    (Ir.Var_id.equal (Ir.Var_id.local ~func:"f" "x")
       (Ir.Var_id.local ~func:"g" "x"));
  Alcotest.(check (option string)) "scope function" (Some "f")
    (Ir.Var_id.scope_function (Ir.Var_id.param ~func:"f" "p"))

let suite =
  [
    Alcotest.test_case "symtab scoping" `Quick test_symtab_scoping;
    Alcotest.test_case "symtab shadowing" `Quick test_symtab_shadowing;
    Alcotest.test_case "duplicate locals rejected" `Quick
      test_symtab_duplicates_rejected;
    Alcotest.test_case "cfg straight line" `Quick test_cfg_straight_line;
    Alcotest.test_case "cfg if join" `Quick test_cfg_if_join;
    Alcotest.test_case "cfg loop back edge" `Quick test_cfg_loop_back_edge;
    Alcotest.test_case "cfg break/continue" `Quick test_cfg_break_continue;
    Alcotest.test_case "cfg dot" `Quick test_cfg_dot_renders;
    Alcotest.test_case "dataflow diamond" `Quick test_dataflow_diamond;
    Alcotest.test_case "dataflow conflict" `Quick
      test_dataflow_conflicting_branches;
    Alcotest.test_case "var ids" `Quick test_var_id;
  ]
