open Cfront

(* Lexer: token streams, literals, comments, preprocessor handling,
   positions and error reporting. *)

let lex src =
  let toks, _ = Lexer.tokenize src in
  List.filter_map
    (fun { Token.tok; _ } -> if tok = Token.Eof then None else Some tok)
    toks

let check_tokens msg expected src =
  Alcotest.(check (list string))
    msg expected
    (List.map Token.to_string (lex src))

let test_punctuation () =
  check_tokens "operators split correctly"
    [ "a"; "+"; "+="; "++"; "b" ]
    "a + += ++ b";
  check_tokens "shift vs compare" [ "a"; "<<"; "b"; "<"; "c"; "<<="; "d" ]
    "a << b < c <<= d";
  check_tokens "arrow and minus" [ "p"; "->"; "x"; "-"; "--"; "y" ]
    "p->x - --y"

let test_keywords () =
  check_tokens "keywords recognized"
    [ "int"; "main"; "("; "void"; ")"; "{"; "return"; "0"; ";"; "}" ]
    "int main(void) { return 0; }";
  check_tokens "keyword prefix is an identifier" [ "integer"; "iffy" ]
    "integer iffy"

let test_literals () =
  (match lex "42 3.5 1e3 0.5f 10L 'a' '\\n'" with
  | [ Token.Int_lit 42; Token.Float_lit 3.5; Token.Float_lit 1000.0;
      Token.Float_lit 0.5; Token.Int_lit 10; Token.Char_lit 'a';
      Token.Char_lit '\n' ] -> ()
  | toks ->
      Alcotest.failf "unexpected literal tokens: %s"
        (String.concat " " (List.map Token.to_string toks)));
  match lex {|"hi\n" "a\"b"|} with
  | [ Token.Str_lit "hi\n"; Token.Str_lit "a\"b" ] -> ()
  | toks ->
      Alcotest.failf "unexpected string tokens: %s"
        (String.concat " " (List.map Token.to_string toks))

let test_comments () =
  check_tokens "line comments skipped" [ "a"; "b" ] "a // c1\nb // c2";
  check_tokens "block comments skipped" [ "a"; "b" ] "a /* x\ny */ b";
  check_tokens "comment between tokens" [ "a"; "+"; "b" ] "a/*c*/+/*d*/b"

let test_includes_collected () =
  let _, includes =
    Lexer.tokenize "#include <stdio.h>\n#define N 3\n#include \"x.h\"\nint a;"
  in
  Alcotest.(check (list string))
    "only #include lines collected"
    [ "#include <stdio.h>"; "#include \"x.h\"" ]
    includes

let test_positions () =
  let lexer = Lexer.create ~file:"t.c" "ab\n  cd" in
  let t1 = Lexer.next lexer in
  let t2 = Lexer.next lexer in
  Alcotest.(check string) "first at 1:1" "t.c:1:1"
    (Srcloc.to_string t1.Token.loc);
  Alcotest.(check string) "second at 2:3" "t.c:2:3"
    (Srcloc.to_string t2.Token.loc)

let expect_lex_error msg src =
  match Lexer.tokenize src with
  | _ -> Alcotest.failf "%s: expected a lexical error" msg
  | exception Srcloc.Error _ -> ()

let test_errors () =
  expect_lex_error "unterminated string" "\"abc";
  expect_lex_error "unterminated comment" "/* abc";
  expect_lex_error "unterminated char" "'a";
  expect_lex_error "bad escape" {|"\q"|};
  expect_lex_error "stray character" "a $ b"

let test_eof_is_sticky () =
  let lexer = Lexer.create "x" in
  ignore (Lexer.next lexer);
  Alcotest.(check bool) "eof" true ((Lexer.next lexer).Token.tok = Token.Eof);
  Alcotest.(check bool) "still eof" true
    ((Lexer.next lexer).Token.tok = Token.Eof)

let suite =
  [
    Alcotest.test_case "punctuation" `Quick test_punctuation;
    Alcotest.test_case "keywords" `Quick test_keywords;
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "includes collected" `Quick test_includes_collected;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "eof is sticky" `Quick test_eof_is_sticky;
  ]
