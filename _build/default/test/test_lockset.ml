open Cfront

(* The Eraser lockset race detector, standalone and wired into the
   interpreter. *)

module IS = Cexec.Lockset.Int_set

let set xs = List.fold_left (fun s x -> IS.add x s) IS.empty xs

(* --- state machine, directly --------------------------------------------- *)

let test_single_thread_never_races () =
  let d = Cexec.Lockset.create () in
  for _ = 1 to 10 do
    Cexec.Lockset.access d ~ctx:0 ~held:IS.empty ~write:true 100
  done;
  Alcotest.(check int) "no reports" 0 (List.length (Cexec.Lockset.reports d))

let test_read_sharing_is_fine () =
  let d = Cexec.Lockset.create () in
  Cexec.Lockset.access d ~ctx:0 ~held:IS.empty ~write:true 100;
  Cexec.Lockset.access d ~ctx:1 ~held:IS.empty ~write:false 100;
  Cexec.Lockset.access d ~ctx:2 ~held:IS.empty ~write:false 100;
  Alcotest.(check int) "initialization then read-sharing" 0
    (List.length (Cexec.Lockset.reports d))

let test_unlocked_write_write_races () =
  let d = Cexec.Lockset.create () in
  Cexec.Lockset.access d ~ctx:0 ~held:IS.empty ~write:true 100;
  Cexec.Lockset.access d ~ctx:1 ~held:IS.empty ~write:true 100;
  Alcotest.(check int) "one report" 1 (List.length (Cexec.Lockset.reports d))

let test_consistent_lock_protects () =
  let d = Cexec.Lockset.create () in
  Cexec.Lockset.access d ~ctx:0 ~held:(set [ 1 ]) ~write:true 100;
  Cexec.Lockset.access d ~ctx:1 ~held:(set [ 1 ]) ~write:true 100;
  Cexec.Lockset.access d ~ctx:2 ~held:(set [ 1; 2 ]) ~write:true 100;
  Alcotest.(check int) "no reports under a common lock" 0
    (List.length (Cexec.Lockset.reports d))

let test_inconsistent_locks_race () =
  let d = Cexec.Lockset.create () in
  Cexec.Lockset.access d ~ctx:0 ~held:(set [ 1 ]) ~write:true 100;
  (* Eraser initializes the candidate set at the access that leaves the
     Exclusive state, so the race surfaces on the next access *)
  Cexec.Lockset.access d ~ctx:1 ~held:(set [ 2 ]) ~write:true 100;
  Alcotest.(check int) "not yet reportable" 0
    (List.length (Cexec.Lockset.reports d));
  Cexec.Lockset.access d ~ctx:0 ~held:(set [ 1 ]) ~write:true 100;
  Alcotest.(check int) "disjoint locksets race" 1
    (List.length (Cexec.Lockset.reports d))

let test_reports_once_per_location () =
  let d = Cexec.Lockset.create () in
  for ctx = 0 to 4 do
    Cexec.Lockset.access d ~ctx ~held:IS.empty ~write:true 100
  done;
  Alcotest.(check int) "single report despite many racy accesses" 1
    (List.length (Cexec.Lockset.reports d))

let test_region_naming () =
  let d = Cexec.Lockset.create () in
  Cexec.Lockset.name_region d ~base:1000 ~bytes:40 "table";
  Cexec.Lockset.access d ~ctx:0 ~held:IS.empty ~write:true 1016;
  Cexec.Lockset.access d ~ctx:1 ~held:IS.empty ~write:true 1016;
  match Cexec.Lockset.reports d with
  | [ r ] ->
      Alcotest.(check string) "array element named" "table[+16]"
        r.Cexec.Lockset.location
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

(* --- through the interpreter ------------------------------------------------ *)

let run_detect src =
  Cexec.Interp.run_pthread ~detect_races:true (Parser.program ~file:"r.c" src)

let unsync_counter =
  {|#include <pthread.h>
    int counter;
    void *w(void *a) {
      int i;
      for (i = 0; i < 5; i++) { counter = counter + 1; }
      pthread_exit(NULL);
    }
    int main() {
      pthread_t t[3];
      int i;
      for (i = 0; i < 3; i++) { pthread_create(&t[i], NULL, w, (void *)i); }
      for (i = 0; i < 3; i++) { pthread_join(t[i], NULL); }
      return counter;
    }|}

let test_interp_detects_unsynchronized_counter () =
  let r = run_detect unsync_counter in
  Alcotest.(check bool) "counter flagged" true
    (List.exists
       (fun (rep : Cexec.Lockset.report) ->
         rep.Cexec.Lockset.location = "counter")
       r.Cexec.Interp.races)

let test_interp_mutex_protects () =
  let r = run_detect (Exp.Csrc.mutex_counter ~nt:3 ~iters:5) in
  Alcotest.(check (list string)) "no races with the mutex" []
    (List.map
       (fun (rep : Cexec.Lockset.report) -> rep.Cexec.Lockset.location)
       r.Cexec.Interp.races)

let test_interp_example_4_1_clean () =
  (* disjoint per-thread writes then post-join reads: no races *)
  let r =
    Cexec.Interp.run_pthread ~detect_races:true (Exp.Example41.parse ())
  in
  Alcotest.(check (list string)) "example 4.1 is race-free" []
    (List.map
       (fun (rep : Cexec.Lockset.report) -> rep.Cexec.Lockset.location)
       r.Cexec.Interp.races)

let test_interp_rcce_locked_counter_clean () =
  let src =
    {|int *counter;
      int RCCE_APP(int argc, char **argv) {
        RCCE_init(&argc, &argv);
        counter = (int*)RCCE_shmalloc(sizeof(int) * 1);
        int i;
        for (i = 0; i < 5; i++) {
          RCCE_acquire_lock(0);
          *counter = *counter + 1;
          RCCE_release_lock(0);
        }
        RCCE_finalize();
        return 0;
      }|}
  in
  let r =
    Cexec.Interp.run_rcce ~detect_races:true ~ncores:4
      (Parser.program ~file:"r.c" src)
  in
  Alcotest.(check (list string)) "rcce lock protects" []
    (List.map
       (fun (rep : Cexec.Lockset.report) -> rep.Cexec.Lockset.location)
       r.Cexec.Interp.races)

let test_interp_rcce_unlocked_flagged () =
  let src =
    {|int *counter;
      int RCCE_APP(int argc, char **argv) {
        RCCE_init(&argc, &argv);
        counter = (int*)RCCE_shmalloc(sizeof(int) * 1);
        *counter = *counter + 1;
        RCCE_finalize();
        return 0;
      }|}
  in
  let r =
    Cexec.Interp.run_rcce ~detect_races:true ~ncores:4
      (Parser.program ~file:"r.c" src)
  in
  Alcotest.(check bool) "unlocked shared increment flagged" true
    (List.exists
       (fun (rep : Cexec.Lockset.report) ->
         rep.Cexec.Lockset.location = "shmalloc#0")
       r.Cexec.Interp.races)

let test_translation_preserves_protection () =
  (* the paper's mutex -> test-and-set conversion must preserve the
     locking discipline: the converted program is also race-free *)
  let src = Exp.Csrc.mutex_counter ~nt:4 ~iters:6 in
  let program = Parser.program ~file:"mc.c" src in
  let translated, _ = Translate.Driver.translate_program program in
  let r = Cexec.Interp.run_rcce ~detect_races:true ~ncores:4 translated in
  Alcotest.(check (list string)) "converted program race-free" []
    (List.map
       (fun (rep : Cexec.Lockset.report) -> rep.Cexec.Lockset.location)
       r.Cexec.Interp.races)

let test_detection_off_by_default () =
  let r = Cexec.Interp.run_pthread (Parser.program unsync_counter) in
  Alcotest.(check int) "no reports when disabled" 0
    (List.length r.Cexec.Interp.races)

let suite =
  [
    Alcotest.test_case "single thread clean" `Quick
      test_single_thread_never_races;
    Alcotest.test_case "read sharing clean" `Quick test_read_sharing_is_fine;
    Alcotest.test_case "unlocked write-write" `Quick
      test_unlocked_write_write_races;
    Alcotest.test_case "consistent lock" `Quick test_consistent_lock_protects;
    Alcotest.test_case "inconsistent locks" `Quick
      test_inconsistent_locks_race;
    Alcotest.test_case "reports once" `Quick test_reports_once_per_location;
    Alcotest.test_case "region naming" `Quick test_region_naming;
    Alcotest.test_case "interp: unsynchronized counter" `Quick
      test_interp_detects_unsynchronized_counter;
    Alcotest.test_case "interp: mutex protects" `Quick
      test_interp_mutex_protects;
    Alcotest.test_case "interp: example 4.1 clean" `Quick
      test_interp_example_4_1_clean;
    Alcotest.test_case "interp: rcce locked clean" `Quick
      test_interp_rcce_locked_counter_clean;
    Alcotest.test_case "interp: rcce unlocked flagged" `Quick
      test_interp_rcce_unlocked_flagged;
    Alcotest.test_case "translation preserves protection" `Quick
      test_translation_preserves_protection;
    Alcotest.test_case "detection off by default" `Quick
      test_detection_off_by_default;
  ]
