open Cfront

(* Constant folding and the optimize pass, including a qcheck property:
   folding never changes what the interpreter computes. *)

let fold src = Pretty.expr (Constfold.expr (Parser.expression src))

let check_fold msg src expected =
  Alcotest.(check string) msg expected (fold src)

let test_int_folding () =
  check_fold "arithmetic" "2 + 3 * 4" "14";
  check_fold "division truncates" "7 / 2" "3";
  check_fold "modulo" "17 % 5" "2";
  check_fold "comparison" "3 < 5" "1";
  check_fold "logic" "1 && 0" "0";
  check_fold "bitwise" "(6 & 3) | 16" "18";
  check_fold "shift" "1 << 4" "16";
  check_fold "negation" "-(2 + 3)" "-5";
  check_fold "bitwise not" "~0" "-1";
  check_fold "nested" "(1 + 2) * (3 + 4)" "21"

let test_float_folding () =
  check_fold "float add" "1.5 + 2.25" "3.75";
  check_fold "mixed promotes" "1 / 2.0" "0.5";
  check_fold "float compare" "2.5 > 1.0" "1"

let test_division_by_zero_not_folded () =
  check_fold "div by zero untouched" "1 / 0" "1 / 0";
  check_fold "mod by zero untouched" "5 % 0" "5 % 0";
  check_fold "float div by zero untouched" "1.0 / 0.0" "1.0 / 0.0"

let test_identities () =
  check_fold "x + 0" "x + 0" "x";
  check_fold "0 + x" "0 + x" "x";
  check_fold "x * 1" "x * 1" "x";
  check_fold "x - 0" "x - 0" "x";
  check_fold "0 && f()" "0 && f()" "0";
  check_fold "1 || f()" "1 || f()" "1";
  (* effectful operands must not be dropped *)
  check_fold "g() + 0 kept" "g() + 0" "g() + 0"

let test_ternary_and_sizeof () =
  check_fold "true branch" "1 ? a : b" "a";
  check_fold "false branch" "0 ? a : b" "b";
  check_fold "sizeof int" "sizeof(int)" "4";
  check_fold "sizeof double" "sizeof(double)" "8";
  check_fold "cast to int" "(int)3.9" "3";
  check_fold "cast to double" "(double)3" "3.0"

let test_const_truth () =
  Alcotest.(check (option bool)) "2 > 1" (Some true)
    (Constfold.const_truth (Parser.expression "2 > 1"));
  Alcotest.(check (option bool)) "3 - 3" (Some false)
    (Constfold.const_truth (Parser.expression "3 - 3"));
  Alcotest.(check (option bool)) "unknown" None
    (Constfold.const_truth (Parser.expression "x + 1"))

(* --- the optimize pass -------------------------------------------------------- *)

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec scan i = i + n <= m && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let optimized_options =
  { Translate.Pass.default_options with Translate.Pass.optimize = true }

let test_dead_branch_removed () =
  let src =
    {|#include <pthread.h>
      int flag;
      void *w(void *a) {
        if (1 == 1) { flag = 1; } else { impossible(); }
        if (2 < 1) { never(); }
        while (0) { spin(); }
        pthread_exit(NULL);
      }
      int main() {
        pthread_t t;
        pthread_create(&t, NULL, w, NULL);
        pthread_join(t, NULL);
        return 0;
      }|}
  in
  let out, report =
    Translate.Driver.translate_to_string ~options:optimized_options src
  in
  Alcotest.(check bool) "impossible() gone" false (contains "impossible" out);
  Alcotest.(check bool) "never() gone" false (contains "never" out);
  Alcotest.(check bool) "spin() gone" false (contains "spin" out);
  Alcotest.(check bool) "kept the live branch" true (contains "flag" out);
  Alcotest.(check bool) "optimize noted" true
    (List.exists (contains "optimize:") report.Translate.Driver.notes)

let test_unreachable_after_return () =
  let src =
    {|int f(void) {
        return 1;
        unreachable();
      }
      int main() { return f(); }|}
  in
  let out, _ =
    Translate.Driver.translate_to_string ~options:optimized_options src
  in
  Alcotest.(check bool) "unreachable() dropped" false
    (contains "unreachable" out)

let test_off_by_default () =
  let src = "int main() { if (1) { a(); } return 2 + 3; }" in
  let out, _ = Translate.Driver.translate_to_string src in
  Alcotest.(check bool) "shape preserved without -O" true
    (contains "if (1)" out && contains "2 + 3" out)

(* --- qcheck: folding preserves interpreter semantics -------------------------- *)

(* integer expressions over variables a=5, b=-3, c=11, avoiding division
   (whose by-zero behaviour differs between folded and unfolded paths) *)
let gen_int_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun n -> Ast.Int_lit (n mod 100)) small_signed_int;
        oneofl [ Ast.Var "a"; Ast.Var "b"; Ast.Var "c" ] ]
  in
  let ops =
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Eq; Ast.Ne; Ast.Lt; Ast.Gt; Ast.Le;
      Ast.Ge; Ast.Land; Ast.Lor; Ast.Band; Ast.Bor; Ast.Bxor ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [ (2, leaf);
               (4,
                map3
                  (fun op x y -> Ast.Binary (op, x, y))
                  (oneofl ops) (self (n / 2)) (self (n / 2)));
               (1, map (fun e -> Ast.Unary (Ast.Neg, e)) (self (n - 1)));
               (1, map (fun e -> Ast.Unary (Ast.Not, e)) (self (n - 1)));
               (1,
                map3
                  (fun c x y -> Ast.Cond (c, x, y))
                  (self (n / 3)) (self (n / 3)) (self (n / 3))) ])

let interp_value expr_text =
  let src =
    Printf.sprintf
      "int main() { int a = 5; int b = -3; int c = 11; return %s; }"
      expr_text
  in
  match Cexec.Interp.run_pthread (Parser.program src) with
  | r -> begin
      match r.Cexec.Interp.exit_values with
      | [ v ] -> Some (Cexec.Value.as_int v)
      | _ -> None
    end
  | exception _ -> None

let qcheck_folding_preserves_semantics =
  QCheck.Test.make ~count:200
    ~name:"constant folding preserves interpreter results"
    (QCheck.make gen_int_expr ~print:Pretty.expr)
    (fun e ->
      let original = Pretty.expr e in
      let folded = Pretty.expr (Constfold.expr e) in
      match interp_value original, interp_value folded with
      | Some a, Some b ->
          if a <> b then
            QCheck.Test.fail_reportf "%s = %d but folded %s = %d" original a
              folded b
          else true
      | None, None -> true
      | Some _, None | None, Some _ ->
          QCheck.Test.fail_reportf "folding changed definedness of %s"
            original)

let qcheck_folding_never_grows =
  QCheck.Test.make ~count:200 ~name:"folding never grows the expression"
    (QCheck.make gen_int_expr ~print:Pretty.expr)
    (fun e ->
      String.length (Pretty.expr (Constfold.expr e))
      <= String.length (Pretty.expr e))

let suite =
  [
    Alcotest.test_case "int folding" `Quick test_int_folding;
    Alcotest.test_case "float folding" `Quick test_float_folding;
    Alcotest.test_case "division by zero" `Quick
      test_division_by_zero_not_folded;
    Alcotest.test_case "identities" `Quick test_identities;
    Alcotest.test_case "ternary and sizeof" `Quick test_ternary_and_sizeof;
    Alcotest.test_case "const truth" `Quick test_const_truth;
    Alcotest.test_case "dead branches removed" `Quick
      test_dead_branch_removed;
    Alcotest.test_case "unreachable after return" `Quick
      test_unreachable_after_return;
    Alcotest.test_case "off by default" `Quick test_off_by_default;
    QCheck_alcotest.to_alcotest qcheck_folding_preserves_semantics;
    QCheck_alcotest.to_alcotest qcheck_folding_never_grows;
  ]
