open Cfront

(* Parser: precedence, declarators, statements, error reporting, and the
   print->parse round trip, including a qcheck property over randomly
   generated expressions. *)

let roundtrip_expr src =
  (* parse, print, reparse: the printed forms must agree *)
  let e1 = Parser.expression src in
  let p1 = Pretty.expr e1 in
  let e2 = Parser.expression p1 in
  let p2 = Pretty.expr e2 in
  Alcotest.(check string) ("round trip of " ^ src) p1 p2;
  p1

let check_expr msg src expected_printed =
  let e = Parser.expression src in
  Alcotest.(check string) msg expected_printed (Pretty.expr e)

let test_precedence () =
  check_expr "mul over add" "a + b * c" "a + b * c";
  check_expr "parens preserved by meaning" "(a + b) * c" "(a + b) * c";
  check_expr "relational vs logical" "a < b && c > d" "a < b && c > d";
  check_expr "assign right-assoc" "a = b = c" "a = b = c";
  check_expr "ternary" "a ? b : c ? d : e" "a ? b : c ? d : e";
  check_expr "unary binds tighter" "-a * b" "-a * b";
  check_expr "shift and compare" "a << 2 < b" "a << 2 < b";
  check_expr "bitwise layering" "a | b ^ c & d" "a | b ^ c & d";
  check_expr "postfix over prefix" "*p++" "*p++";
  check_expr "index of deref needs parens" "(*p)[0]" "(*p)[0]"

let test_calls_and_casts () =
  check_expr "call with args" "f(a, b + 1, g())" "f(a, b + 1, g())";
  check_expr "cast of call" "(int)f(x)" "(int)f(x)";
  check_expr "cast pointer" "(void*)x" "(void*)x";
  check_expr "sizeof type" "sizeof(int)" "sizeof(int)";
  check_expr "sizeof pointer type" "sizeof(double*)" "sizeof(double*)";
  check_expr "sizeof expression" "sizeof x" "sizeof x";
  check_expr "nested cast arithmetic" "(double)(a + b)" "(double)(a + b)"

let test_assign_ops () =
  List.iter
    (fun op ->
      let src = Printf.sprintf "a %s b" op in
      ignore (roundtrip_expr src))
    [ "="; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<="; ">>=" ]

let parse_fn src =
  let p = Parser.program src in
  match Ast.functions p with
  | [ fn ] -> fn
  | fns -> Alcotest.failf "expected one function, got %d" (List.length fns)

let test_statements () =
  let fn =
    parse_fn
      {|void f(void) {
          int i;
          for (i = 0; i < 10; i++) { g(i); }
          while (i > 0) i--;
          do { i++; } while (i < 5);
          if (i == 5) h(); else i = 0;
          return;
        }|}
  in
  Alcotest.(check int) "six statements" 6 (List.length fn.Ast.f_body)

let test_declarations () =
  let p =
    Parser.program
      "int a = 1, *b, c[3];\ndouble d[4] = {1.0, 2.0, 3.0, 4.0};\n\
       static int s;\nunsigned int u;"
  in
  let decls = Ast.global_decls p in
  Alcotest.(check int) "six declarations" 6 (List.length decls);
  let find name =
    List.find (fun (d : Ast.decl) -> d.Ast.d_name = name) decls
  in
  Alcotest.(check bool) "a is int" true
    (Ctype.equal (find "a").Ast.d_type Ctype.Int);
  Alcotest.(check bool) "b is int*" true
    (Ctype.equal (find "b").Ast.d_type (Ctype.Ptr Ctype.Int));
  Alcotest.(check bool) "c is int[3]" true
    (Ctype.equal (find "c").Ast.d_type (Ctype.Array (Ctype.Int, Some 3)));
  Alcotest.(check bool) "s is static" true (find "s").Ast.d_static;
  Alcotest.(check bool) "u is unsigned" true
    (Ctype.equal (find "u").Ast.d_type (Ctype.Unsigned Ctype.Int))

let test_typedef_names () =
  let p = Parser.program "pthread_t t;\npthread_mutex_t m;" in
  Alcotest.(check int) "two declarations" 2
    (List.length (Ast.global_decls p))

let test_prototypes () =
  let p = Parser.program "int f(int a, double b);\nvoid g(void);" in
  let protos =
    List.filter_map
      (function Ast.Gproto (n, _, _) -> Some n | _ -> None)
      p.Ast.p_globals
  in
  Alcotest.(check (list string)) "both prototypes" [ "f"; "g" ] protos

let test_function_params () =
  let fn = parse_fn "int add(int a, int *b, double c[4]) { return a; }" in
  Alcotest.(check int) "three params" 3 (List.length fn.Ast.f_params)

let expect_parse_error msg src =
  match Parser.program src with
  | _ -> Alcotest.failf "%s: expected a parse error" msg
  | exception Srcloc.Error _ -> ()

let test_errors () =
  expect_parse_error "missing semicolon" "int a int b;";
  expect_parse_error "unbalanced paren" "int f() { return (1; }";
  expect_parse_error "missing brace" "int f() { return 1;";
  expect_parse_error "bad for" "int f() { for (;;;) {} }";
  expect_parse_error "stray else" "int f() { else; }"

let test_program_roundtrip () =
  let src = Exp.Example41.source in
  let p1 = Parser.program src in
  let s1 = Pretty.program p1 in
  let p2 = Parser.program s1 in
  let s2 = Pretty.program p2 in
  Alcotest.(check string) "Example 4.1 print fixpoint" s1 s2

(* --- qcheck: random expressions survive the round trip ------------------- *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun n -> Ast.Int_lit (abs n mod 1000)) int;
        map (fun f -> Ast.Float_lit (Float.abs f +. 0.5))
          (float_bound_inclusive 100.0);
        oneofl [ Ast.Var "a"; Ast.Var "b"; Ast.Var "c" ] ]
  in
  let binops =
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Ne; Ast.Lt;
      Ast.Gt; Ast.Le; Ast.Ge; Ast.Land; Ast.Lor; Ast.Band; Ast.Bor;
      Ast.Bxor; Ast.Shl; Ast.Shr ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [ (2, leaf);
               (4,
                map3
                  (fun op a b -> Ast.Binary (op, a, b))
                  (oneofl binops) (self (n / 2)) (self (n / 2)));
               (1, map (fun e -> Ast.Unary (Ast.Neg, e)) (self (n - 1)));
               (1, map (fun e -> Ast.Unary (Ast.Not, e)) (self (n - 1)));
               (1,
                map3
                  (fun a b c -> Ast.Cond (a, b, c))
                  (self (n / 3)) (self (n / 3)) (self (n / 3)));
               (1,
                map (fun b -> Ast.Index (Ast.Var "arr", b)) (self (n / 2)));
               (1,
                map (fun args -> Ast.Call ("f", args))
                  (list_size (int_bound 3) (self (n / 3)))) ])

let arbitrary_expr =
  QCheck.make gen_expr ~print:(fun e -> Pretty.expr e)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"print/parse round trip on random expressions"
    ~count:500 arbitrary_expr (fun e ->
      let printed = Pretty.expr e in
      match Parser.expression printed with
      | reparsed -> String.equal printed (Pretty.expr reparsed)
      | exception Srcloc.Error (_, msg) ->
          QCheck.Test.fail_reportf "failed to reparse %S: %s" printed msg)

(* --- qcheck: random statements survive the round trip --------------------- *)

let gen_stmt =
  let open QCheck.Gen in
  let simple =
    oneof
      [ map (fun e -> Ast.stmt (Ast.Sexpr (Ast.call "f" [ e ]))) gen_expr;
        map (fun e -> Ast.stmt (Ast.Sexpr (Ast.assign (Ast.var "x") e)))
          gen_expr;
        return (Ast.stmt (Ast.Sreturn (Some (Ast.var "x"))));
        return (Ast.stmt Ast.Snull) ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then simple
         else
           frequency
             [ (3, simple);
               (2,
                map2
                  (fun c body -> Ast.stmt (Ast.Sif (c, body, None)))
                  gen_expr (self (n / 2)));
               (2,
                map3
                  (fun c a b -> Ast.stmt (Ast.Sif (c, a, Some b)))
                  gen_expr (self (n / 2)) (self (n / 2)));
               (1,
                map2
                  (fun c body -> Ast.stmt (Ast.Swhile (c, body)))
                  gen_expr (self (n / 2)));
               (1,
                map2
                  (fun c body -> Ast.stmt (Ast.Sdo (body, c)))
                  gen_expr (self (n / 2)));
               (1,
                map
                  (fun stmts -> Ast.stmt (Ast.Sblock stmts))
                  (list_size (int_bound 4) (self (n / 3)))) ])

let qcheck_stmt_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"print/parse round trip on random statements (dangling else)"
    (QCheck.make gen_stmt ~print:Pretty.stmt)
    (fun s ->
      let printed = Pretty.stmt s in
      match Parser.statement printed with
      | reparsed -> String.equal printed (Pretty.stmt reparsed)
      | exception Srcloc.Error (_, msg) ->
          QCheck.Test.fail_reportf "failed to reparse:\n%s\nerror: %s"
            printed msg)

let test_dangling_else_roundtrip () =
  (* the classic ambiguity: the printed form must keep the else attached
     to the OUTER if *)
  let inner =
    Ast.stmt (Ast.Sif (Ast.var "b",
                       Ast.stmt (Ast.Sexpr (Ast.call "x" [])), None))
  in
  let outer =
    Ast.stmt
      (Ast.Sif (Ast.var "a", inner,
                Some (Ast.stmt (Ast.Sexpr (Ast.call "y" [])))))
  in
  let printed = Pretty.stmt outer in
  let reparsed = Parser.statement printed in
  Alcotest.(check string) "fixpoint" printed (Pretty.stmt reparsed)

let suite =
  [
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "calls and casts" `Quick test_calls_and_casts;
    Alcotest.test_case "assignment operators" `Quick test_assign_ops;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "declarations" `Quick test_declarations;
    Alcotest.test_case "typedef names" `Quick test_typedef_names;
    Alcotest.test_case "prototypes" `Quick test_prototypes;
    Alcotest.test_case "function params" `Quick test_function_params;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "program round trip" `Quick test_program_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "dangling else" `Quick test_dangling_else_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_stmt_roundtrip;
  ]
