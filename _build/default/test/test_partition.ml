(* Stage 4: Algorithm 3 and the ablation strategies, plus qcheck
   invariants (capacity respected, every variable placed, all-on-chip when
   everything fits). *)

let item name bytes accesses =
  { Partition.Partitioner.var = Ir.Var_id.global name; bytes; accesses }

let spec = Partition.Memspec.scc

let test_memspec () =
  Alcotest.(check int) "384 KB total MPB" (384 * 1024)
    (Partition.Memspec.mpb_total spec);
  Alcotest.(check int) "8 KB per core for one core" (8 * 1024)
    (Partition.Memspec.on_chip_capacity spec ~ncores:1);
  Alcotest.(check int) "32 cores" (256 * 1024)
    (Partition.Memspec.on_chip_capacity spec ~ncores:32);
  Alcotest.(check int) "line rounding" 64
    (Partition.Memspec.round_to_line spec 33);
  match Partition.Memspec.on_chip_capacity spec ~ncores:49 with
  | _ -> Alcotest.fail "49 cores should be rejected"
  | exception Invalid_argument _ -> ()

let test_all_fits_goes_on_chip () =
  let items = [ item "a" 100 10; item "b" 2000 5; item "c" 4 100 ] in
  let r =
    Partition.Partitioner.partition spec ~capacity:(8 * 1024) items
  in
  List.iter
    (fun (a : Partition.Partitioner.assignment) ->
      Alcotest.(check bool)
        (Ir.Var_id.to_string a.Partition.Partitioner.item.Partition.Partitioner.var
        ^ " on chip")
        true
        (a.Partition.Partitioner.placement = Partition.Partitioner.On_chip))
    r.Partition.Partitioner.assignments

let test_greedy_ascending () =
  (* capacity for the two small ones only: Algorithm 3 fills ascending *)
  let items = [ item "big" 4096 1000; item "small" 32 1; item "mid" 64 1 ] in
  let r = Partition.Partitioner.partition spec ~capacity:128 items in
  let placement name =
    match Partition.Partitioner.placement_of r (Ir.Var_id.global name) with
    | Some p -> p
    | None -> Alcotest.failf "no placement for %s" name
  in
  Alcotest.(check bool) "small on chip" true
    (placement "small" = Partition.Partitioner.On_chip);
  Alcotest.(check bool) "mid on chip" true
    (placement "mid" = Partition.Partitioner.On_chip);
  Alcotest.(check bool) "big off chip" true
    (placement "big" = Partition.Partitioner.Off_chip)

let test_density_beats_size_for_hot_array () =
  (* one hot array the size-ascending greedy skips (scalars fill first) *)
  let items =
    item "hot" 1024 100_000
    :: List.init 40 (fun i -> item (Printf.sprintf "cold%d" i) 32 1)
  in
  let by strategy =
    Partition.Partitioner.on_chip_access_fraction
      (Partition.Partitioner.partition ~strategy spec ~capacity:1024 items)
  in
  let size = by Partition.Partitioner.Size_ascending in
  let density = by Partition.Partitioner.Access_density in
  Alcotest.(check bool)
    (Printf.sprintf "density (%.2f) > size-ascending (%.2f)" density size)
    true (density > size)

let test_all_off_chip () =
  let items = [ item "a" 4 1000 ] in
  let r =
    Partition.Partitioner.partition
      ~strategy:Partition.Partitioner.All_off_chip spec ~capacity:(8 * 1024)
      items
  in
  Alcotest.(check int) "nothing on chip" 0
    r.Partition.Partitioner.on_chip_bytes;
  Alcotest.(check (float 0.001)) "no on-chip accesses" 0.0
    (Partition.Partitioner.on_chip_access_fraction r)

let test_zero_capacity () =
  let items = [ item "a" 4 1; item "b" 8 1 ] in
  let r = Partition.Partitioner.partition spec ~capacity:0 items in
  Alcotest.(check int) "nothing on chip" 0
    r.Partition.Partitioner.on_chip_bytes

let test_split_placement () =
  (* one 10 KB array against 8 KB capacity: with splitting its leading
     lines stay on chip *)
  let items = [ item "big" (10 * 1024) 1000 ] in
  let no_split =
    Partition.Partitioner.partition spec ~capacity:(8 * 1024) items
  in
  Alcotest.(check int) "without splitting, nothing on chip" 0
    no_split.Partition.Partitioner.on_chip_bytes;
  let split =
    Partition.Partitioner.partition ~allow_split:true spec
      ~capacity:(8 * 1024) items
  in
  Alcotest.(check int) "leading 8 KB on chip" (8 * 1024)
    split.Partition.Partitioner.on_chip_bytes;
  Alcotest.(check int) "tail off chip" (2 * 1024)
    split.Partition.Partitioner.off_chip_bytes;
  let f = Partition.Partitioner.on_chip_access_fraction split in
  Alcotest.(check (float 0.01)) "prorated access fraction" 0.8 f

let test_split_respects_capacity () =
  let items = [ item "a" 100 1; item "big" 50_000 1; item "b" 64 1 ] in
  let r =
    Partition.Partitioner.partition ~allow_split:true spec ~capacity:4096
      items
  in
  Alcotest.(check bool) "capacity honoured with splits" true
    (r.Partition.Partitioner.on_chip_bytes <= 4096)

let test_items_of_analysis () =
  let a = Analysis.Pipeline.analyze (Exp.Example41.parse ()) in
  let items = Partition.Partitioner.items_of_analysis a in
  let names =
    List.map
      (fun (i : Partition.Partitioner.item) ->
        i.Partition.Partitioner.var.Ir.Var_id.name)
      items
  in
  (* the example's final shared set: ptr, sum, tmp *)
  Alcotest.(check (list string)) "shared variables" [ "ptr"; "sum"; "tmp" ]
    names

(* --- qcheck invariants ------------------------------------------------------ *)

let gen_items =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (map2
         (fun bytes accesses -> (1 + abs bytes mod 20_000, abs accesses mod 10_000))
         int int))

let arbitrary_items =
  QCheck.make gen_items ~print:(fun items ->
      String.concat ";"
        (List.map (fun (b, a) -> Printf.sprintf "(%d,%d)" b a) items))

let make_items specs =
  List.mapi (fun i (bytes, accesses) ->
      item (Printf.sprintf "v%d" i) bytes accesses)
    specs

let strategies =
  [ Partition.Partitioner.Size_ascending;
    Partition.Partitioner.Access_density;
    Partition.Partitioner.All_off_chip ]

let qcheck_split_capacity =
  QCheck.Test.make ~count:300
    ~name:"partition: splitting never exceeds capacity"
    (QCheck.pair arbitrary_items (QCheck.make QCheck.Gen.(int_bound 100_000)))
    (fun (specs, capacity) ->
      let items = make_items specs in
      let r =
        Partition.Partitioner.partition ~allow_split:true spec ~capacity
          items
      in
      r.Partition.Partitioner.on_chip_bytes <= capacity)

let qcheck_split_never_worse =
  QCheck.Test.make ~count:300
    ~name:"partition: splitting never reduces on-chip accesses"
    (QCheck.pair arbitrary_items (QCheck.make QCheck.Gen.(int_bound 100_000)))
    (fun (specs, capacity) ->
      let items = make_items specs in
      let without =
        Partition.Partitioner.partition spec ~capacity items
      in
      let with_split =
        Partition.Partitioner.partition ~allow_split:true spec ~capacity
          items
      in
      Partition.Partitioner.on_chip_access_fraction with_split
      +. 1e-9
      >= Partition.Partitioner.on_chip_access_fraction without)


let qcheck_capacity_never_exceeded =
  QCheck.Test.make ~count:300
    ~name:"partition: line-rounded on-chip bytes never exceed capacity"
    (QCheck.pair arbitrary_items (QCheck.make QCheck.Gen.(int_bound 100_000)))
    (fun (specs, capacity) ->
      let items = make_items specs in
      List.for_all
        (fun strategy ->
          let r =
            Partition.Partitioner.partition ~strategy spec ~capacity items
          in
          r.Partition.Partitioner.on_chip_bytes <= capacity)
        strategies)

let qcheck_every_item_placed =
  QCheck.Test.make ~count:300 ~name:"partition: every variable is placed"
    arbitrary_items (fun specs ->
      let items = make_items specs in
      List.for_all
        (fun strategy ->
          let r =
            Partition.Partitioner.partition ~strategy spec ~capacity:4096
              items
          in
          List.length r.Partition.Partitioner.assignments
          = List.length items)
        strategies)

let qcheck_all_on_chip_when_fits =
  QCheck.Test.make ~count:300
    ~name:"partition: everything on chip when the total fits"
    arbitrary_items (fun specs ->
      let items = make_items specs in
      let total =
        List.fold_left
          (fun acc (i : Partition.Partitioner.item) ->
            acc
            + Partition.Memspec.round_to_line spec
                i.Partition.Partitioner.bytes)
          0 items
      in
      let r =
        Partition.Partitioner.partition spec ~capacity:total items
      in
      List.for_all
        (fun (a : Partition.Partitioner.assignment) ->
          a.Partition.Partitioner.placement = Partition.Partitioner.On_chip)
        r.Partition.Partitioner.assignments)

let suite =
  [
    Alcotest.test_case "memspec" `Quick test_memspec;
    Alcotest.test_case "all fits -> on chip" `Quick
      test_all_fits_goes_on_chip;
    Alcotest.test_case "greedy ascending" `Quick test_greedy_ascending;
    Alcotest.test_case "density beats size" `Quick
      test_density_beats_size_for_hot_array;
    Alcotest.test_case "all off chip" `Quick test_all_off_chip;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    Alcotest.test_case "items from analysis" `Quick test_items_of_analysis;
    QCheck_alcotest.to_alcotest qcheck_capacity_never_exceeded;
    QCheck_alcotest.to_alcotest qcheck_every_item_placed;
    QCheck_alcotest.to_alcotest qcheck_all_on_chip_when_fits;
    Alcotest.test_case "split placement" `Quick test_split_placement;
    Alcotest.test_case "split capacity" `Quick test_split_respects_capacity;
    QCheck_alcotest.to_alcotest qcheck_split_capacity;
    QCheck_alcotest.to_alcotest qcheck_split_never_worse;
  ]
