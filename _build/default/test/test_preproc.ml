open Cfront

(* The macro preprocessor (section 7.1): defines, function-like macros,
   conditionals, literals/comments protection, and the end-to-end case
   the paper calls out — Pthread calls wrapped in macros.  Output is
   line-preserving: every input line maps to one output line. *)

let expand ?defines src = Preproc.expand ?defines src

let check msg src expected =
  Alcotest.(check string) msg expected (expand src)

let test_object_macros () =
  check "simple substitution" "#define N 3\nint a[N];" "\nint a[3];";
  check "several uses" "#define X 7\nint a = X + X;" "\nint a = 7 + 7;";
  check "identifier boundaries respected" "#define N 3\nint NN = N;"
    "\nint NN = 3;";
  check "redefinition wins" "#define A 1\n#define A 2\nint x = A;"
    "\n\nint x = 2;"

let test_chained_expansion () =
  check "macro in macro" "#define A B\n#define B 5\nint x = A;"
    "\n\nint x = 5;"

let test_function_macros () =
  check "parameters substituted"
    "#define SQ(x) ((x) * (x))\nint a = SQ(4);" "\nint a = ((4) * (4));";
  check "two parameters" "#define ADD(a, b) (a + b)\nint x = ADD(1, 2);"
    "\nint x = (1 + 2);";
  check "nested call argument" "#define ID(x) x\nint y = ID(f(1, 2));"
    "\nint y = f(1, 2);";
  check "name without args left alone" "#define F(x) x\nint F;" "\nint F;";
  check "zero-argument macro" "#define Z() 9\nint x = Z();" "\nint x = 9;"

let test_undef () =
  check "undef stops substitution" "#define A 1\n#undef A\nint x = A;"
    "\n\nint x = A;"

let test_conditionals () =
  check "ifdef taken" "#define ON 1\n#ifdef ON\nint a;\n#endif"
    "\n\nint a;\n";
  check "ifdef skipped" "#ifdef OFF\nint a;\n#endif\nint b;"
    "\n\n\nint b;";
  check "ifndef" "#ifndef OFF\nint a;\n#endif" "\nint a;\n";
  check "else branch" "#ifdef OFF\nint a;\n#else\nint b;\n#endif"
    "\n\n\nint b;\n";
  check "nested"
    "#define A 1\n#ifdef A\n#ifdef B\nint x;\n#else\nint y;\n#endif\n#endif"
    "\n\n\n\n\nint y;\n\n"

let test_literals_protected () =
  check "strings untouched" "#define N 3\nchar *s = \"N N\";"
    "\nchar *s = \"N N\";";
  check "line comments untouched" "#define N 3\nint a; // N stays"
    "\nint a; // N stays";
  check "block comments untouched" "#define N 3\nint a; /* N */ int b[N];"
    "\nint a; /* N */ int b[3];";
  check "multi-line comment"
    "#define N 3\n/* first N\n   second N */\nint b[N];"
    "\n/* first N\n   second N */\nint b[3];"

let test_line_structure_preserved () =
  (* diagnostics after preprocessing must point at original lines *)
  let src = "#define N 3\n\nint a[N]\nint b;" in
  match Parser.program ~file:"lines.c" src with
  | _ -> Alcotest.fail "missing semicolon should fail"
  | exception Srcloc.Error (loc, _) ->
      Alcotest.(check int) "error on original line 4" 4 loc.Srcloc.line

let test_seeded_defines () =
  Alcotest.(check string) "-D style seeding" "int n = 32;"
    (expand ~defines:[ ("CORES", "32") ] "int n = CORES;")

let test_errors () =
  let expect msg src =
    match expand src with
    | _ -> Alcotest.failf "%s: expected an error" msg
    | exception Srcloc.Error _ -> ()
  in
  expect "recursive macro" "#define A A + 1\nint x = A;";
  expect "mutually recursive" "#define A B\n#define B A\nint x = A;";
  expect "unterminated ifdef" "#ifdef X\nint a;";
  expect "stray endif" "#endif";
  expect "stray else" "#else";
  expect "arity mismatch" "#define F(a, b) a\nint x = F(1);";
  expect "unsupported directive" "#error nope"

(* --- the paper's section 7.1 case: macro-wrapped Pthread code ------------------ *)

let macro_pthread_src =
  {|#include <stdio.h>
#include <pthread.h>
#define NT 4
#define CREATE(t, f, a) pthread_create(&t, NULL, f, (void *) a)
#define JOIN(t) pthread_join(t, NULL)

int cells[NT];

void *work(void *tid) {
    int id = (int)tid;
    cells[id] = id + 10;
    pthread_exit(NULL);
}

int main() {
    pthread_t th[NT];
    int i;
    for (i = 0; i < NT; i++) { CREATE(th[i], work, i); }
    for (i = 0; i < NT; i++) { JOIN(th[i]); }
    for (i = 0; i < NT; i++) { printf("%d\n", cells[i]); }
    return 0;
}
|}

let test_macro_wrapped_pthreads_translate () =
  let translated, report =
    Translate.Driver.translate_source ~file:"macro.c" macro_pthread_src
  in
  let out = Pretty.program translated in
  let contains needle =
    let n = String.length needle and m = String.length out in
    let rec scan i = i + n <= m && (String.sub out i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "create loop dismantled" true
    (contains "work((void*)myID)");
  Alcotest.(check bool) "no pthread left" false (contains "pthread");
  Alcotest.(check (option int)) "four threads seen" (Some 4)
    report.Translate.Driver.thread_count

let test_macro_wrapped_pthreads_end_to_end () =
  let program = Parser.program ~file:"macro.c" macro_pthread_src in
  let original = Cexec.Interp.run_pthread program in
  let translated, _ = Translate.Driver.translate_program program in
  let converted = Cexec.Interp.run_rcce ~ncores:4 translated in
  (* the final print loop survives on every process, so the converted
     output is four interleaved copies of the original's lines *)
  let sorted output =
    String.split_on_char '\n' (String.trim output) |> List.sort compare
  in
  let expected =
    List.concat_map (fun l -> [ l; l; l; l ])
      (sorted original.Cexec.Interp.output)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "four copies of each line" expected
    (sorted converted.Cexec.Interp.output)

let test_no_directives_is_identity () =
  let src = "int main() { return 1 + 2; }\n" in
  Alcotest.(check string) "identity" src (expand src)

let suite =
  [
    Alcotest.test_case "object macros" `Quick test_object_macros;
    Alcotest.test_case "chained expansion" `Quick test_chained_expansion;
    Alcotest.test_case "function macros" `Quick test_function_macros;
    Alcotest.test_case "undef" `Quick test_undef;
    Alcotest.test_case "conditionals" `Quick test_conditionals;
    Alcotest.test_case "literals protected" `Quick test_literals_protected;
    Alcotest.test_case "line structure preserved" `Quick
      test_line_structure_preserved;
    Alcotest.test_case "seeded defines" `Quick test_seeded_defines;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "macro-wrapped pthreads translate" `Quick
      test_macro_wrapped_pthreads_translate;
    Alcotest.test_case "macro-wrapped pthreads end to end" `Quick
      test_macro_wrapped_pthreads_end_to_end;
    Alcotest.test_case "no directives = identity" `Quick
      test_no_directives_is_identity;
  ]
