(* The RCCE runtime layer: collective allocation, put/get through the
   MPB, and the single-core Pthread runtime. *)

let test_collective_shmalloc_same_address () =
  let seen = Array.make 4 (-1) in
  let _eng =
    Rcce.run ~ncores:4 (fun t ->
        let a = Rcce.shmalloc t ~bytes:256 in
        let _b = Rcce.shmalloc t ~bytes:64 in
        seen.(Rcce.ue t) <- a;
        Rcce.barrier t)
  in
  Array.iter
    (fun a -> Alcotest.(check int) "same first allocation" seen.(0) a)
    seen;
  Alcotest.(check bool) "shared region" true
    (Scc.Memmap.region_of_addr seen.(0) = Scc.Memmap.Shared_dram)

let test_collective_mpb_striping () =
  let chunks = ref [] in
  let _eng =
    Rcce.run ~ncores:4 (fun t ->
        let cs = Rcce.malloc_mpb t ~bytes:4096 in
        if Rcce.ue t = 0 then chunks := cs;
        Rcce.barrier t)
  in
  Alcotest.(check int) "one chunk per UE" 4 (List.length !chunks);
  List.iteri
    (fun i addr ->
      Alcotest.(check bool) "chunk on its core" true
        (Scc.Memmap.region_of_addr addr = Scc.Memmap.Mpb i))
    !chunks

let test_put_get_cost_asymmetry () =
  (* put/get to a neighbour costs more than to the own slice *)
  let own = ref 0 and remote = ref 0 in
  let _eng =
    Rcce.run ~ncores:8 (fun t ->
        if Rcce.ue t = 0 then begin
          let api = Rcce.api t in
          let t0 = api.Scc.Engine.now_ps () in
          Rcce.put t ~dest_ue:0 ~offset:0 ~bytes:1024;
          let t1 = api.Scc.Engine.now_ps () in
          Rcce.put t ~dest_ue:7 ~offset:0 ~bytes:1024;
          let t2 = api.Scc.Engine.now_ps () in
          own := t1 - t0;
          remote := t2 - t1
        end;
        Rcce.barrier t)
  in
  Alcotest.(check bool)
    (Printf.sprintf "remote put (%d ps) dearer than local (%d ps)" !remote
       !own)
    true (!remote > !own)

let test_rcce_num_ues () =
  let seen = ref 0 in
  let _eng =
    Rcce.run ~ncores:5 (fun t ->
        if Rcce.ue t = 3 then seen := Rcce.num_ues t;
        Rcce.barrier t)
  in
  Alcotest.(check int) "num_ues" 5 !seen

let test_rcce_lock_roundtrip () =
  let order = ref [] in
  let _eng =
    Rcce.run ~ncores:3 (fun t ->
        Rcce.acquire_lock t 0;
        order := Rcce.ue t :: !order;
        Rcce.release_lock t 0;
        Rcce.barrier t)
  in
  Alcotest.(check int) "all three passed the lock" 3 (List.length !order)

(* --- pthread_sim ------------------------------------------------------------ *)

let test_pthread_sim_threads_serialize () =
  let eng =
    Pthread_sim.run ~nthreads:4 (fun api -> api.Scc.Engine.compute 10_000)
  in
  let expected_min = Scc.Config.core_cycles_ps Scc.Config.default 40_000 in
  Alcotest.(check bool) "4 threads serialize on one core" true
    (Scc.Engine.elapsed_ps eng >= expected_min)

let test_pthread_sim_mutex () =
  let p = Pthread_sim.create_process () in
  let m = Pthread_sim.mutex_init p in
  let holders = ref 0 and overlap = ref false in
  for _ = 1 to 3 do
    Pthread_sim.spawn_thread p (fun api ->
        Pthread_sim.mutex_lock api m;
        incr holders;
        if !holders > 1 then overlap := true;
        api.Scc.Engine.compute 1_000;
        decr holders;
        Pthread_sim.mutex_unlock api m)
  done;
  Scc.Engine.run (Pthread_sim.engine p);
  Alcotest.(check bool) "no overlapping critical sections" false !overlap

let test_pthread_sim_malloc_private () =
  let p = Pthread_sim.create_process () in
  let addr = Pthread_sim.malloc p ~bytes:128 in
  Alcotest.(check bool) "process memory is core 0 private" true
    (Scc.Memmap.region_of_addr addr = Scc.Memmap.Private 0)

let suite =
  [
    Alcotest.test_case "collective shmalloc" `Quick
      test_collective_shmalloc_same_address;
    Alcotest.test_case "collective MPB striping" `Quick
      test_collective_mpb_striping;
    Alcotest.test_case "put/get cost asymmetry" `Quick
      test_put_get_cost_asymmetry;
    Alcotest.test_case "num_ues" `Quick test_rcce_num_ues;
    Alcotest.test_case "lock round trip" `Quick test_rcce_lock_roundtrip;
    Alcotest.test_case "pthread_sim serializes" `Quick
      test_pthread_sim_threads_serialize;
    Alcotest.test_case "pthread_sim mutex" `Quick test_pthread_sim_mutex;
    Alcotest.test_case "pthread_sim malloc" `Quick
      test_pthread_sim_malloc_private;
  ]
