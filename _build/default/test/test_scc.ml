(* The simulator substrate: cache model, address map, mesh, power model,
   and the discrete-event engine (determinism, barriers, locks, dynamic
   spawn/join, deadlock detection, contention behaviour). *)

(* --- cache -------------------------------------------------------------- *)

let test_cache_basics () =
  let c = Scc.Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:2 in
  let r1 = Scc.Cache.access c ~write:false 0 in
  Alcotest.(check bool) "cold miss" false r1.Scc.Cache.hit;
  let r2 = Scc.Cache.access c ~write:false 0 in
  Alcotest.(check bool) "warm hit" true r2.Scc.Cache.hit;
  let r3 = Scc.Cache.access c ~write:false 16 in
  Alcotest.(check bool) "same line hits" true r3.Scc.Cache.hit;
  let r4 = Scc.Cache.access c ~write:false 32 in
  Alcotest.(check bool) "next line misses" false r4.Scc.Cache.hit

let test_cache_lru_eviction () =
  (* 2-way, 16 sets of 32B lines: three lines mapping to one set evict
     the least recently used *)
  let c = Scc.Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:2 in
  let set_stride = 16 * 32 in
  ignore (Scc.Cache.access c ~write:false 0);
  ignore (Scc.Cache.access c ~write:false set_stride);
  (* touch line 0 so line set_stride is LRU *)
  ignore (Scc.Cache.access c ~write:false 0);
  ignore (Scc.Cache.access c ~write:false (2 * set_stride));
  let r0 = Scc.Cache.access c ~write:false 0 in
  Alcotest.(check bool) "MRU line survived" true r0.Scc.Cache.hit;
  let r1 = Scc.Cache.access c ~write:false set_stride in
  Alcotest.(check bool) "LRU line evicted" false r1.Scc.Cache.hit

let test_cache_dirty_writeback () =
  let c = Scc.Cache.create ~size_bytes:64 ~line_bytes:32 ~assoc:1 in
  ignore (Scc.Cache.access c ~write:true 0);
  (* conflicting line in the same (single) set *)
  let r = Scc.Cache.access c ~write:false 64 in
  Alcotest.(check bool) "dirty victim reported" true r.Scc.Cache.evicted_dirty

let test_cache_flush_and_rates () =
  let c = Scc.Cache.create ~size_bytes:256 ~line_bytes:32 ~assoc:2 in
  ignore (Scc.Cache.access c ~write:false 0);
  ignore (Scc.Cache.access c ~write:false 0);
  Alcotest.(check (float 0.01)) "hit rate 1/2" 0.5 (Scc.Cache.hit_rate c);
  Scc.Cache.flush c;
  let r = Scc.Cache.access c ~write:false 0 in
  Alcotest.(check bool) "flushed" false r.Scc.Cache.hit

let test_cache_bad_geometry () =
  match Scc.Cache.create ~size_bytes:1024 ~line_bytes:32 ~assoc:5 with
  | _ -> Alcotest.fail "inconsistent geometry accepted"
  | exception Invalid_argument _ -> ()

(* --- memmap -------------------------------------------------------------- *)

let test_memmap_regions_roundtrip () =
  let mm = Scc.Memmap.create Scc.Config.default in
  let p = Scc.Memmap.alloc mm (Scc.Memmap.Private 7) ~bytes:100 in
  let s = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:100 in
  let m = Scc.Memmap.alloc mm (Scc.Memmap.Mpb 3) ~bytes:100 in
  Alcotest.(check bool) "private region" true
    (Scc.Memmap.region_of_addr p = Scc.Memmap.Private 7);
  Alcotest.(check bool) "shared region" true
    (Scc.Memmap.region_of_addr s = Scc.Memmap.Shared_dram);
  Alcotest.(check bool) "mpb region" true
    (Scc.Memmap.region_of_addr m = Scc.Memmap.Mpb 3)

let test_memmap_line_alignment () =
  let mm = Scc.Memmap.create Scc.Config.default in
  let a = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:1 in
  let b = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:1 in
  Alcotest.(check int) "line-aligned bump" 32
    (Scc.Memmap.offset_of_addr b - Scc.Memmap.offset_of_addr a)

let test_mpb_capacity_enforced () =
  let mm = Scc.Memmap.create Scc.Config.default in
  ignore (Scc.Memmap.alloc mm (Scc.Memmap.Mpb 0) ~bytes:(8 * 1024));
  match Scc.Memmap.alloc mm (Scc.Memmap.Mpb 0) ~bytes:32 with
  | _ -> Alcotest.fail "MPB slice overflow accepted"
  | exception Scc.Memmap.Out_of_memory (Scc.Memmap.Mpb 0) -> ()
  | exception Scc.Memmap.Out_of_memory _ -> Alcotest.fail "wrong region"

let test_mpb_striping () =
  let mm = Scc.Memmap.create Scc.Config.default in
  let chunks =
    Scc.Memmap.alloc_mpb_striped mm ~cores:[ 0; 1; 2; 3 ] ~bytes:4096
  in
  Alcotest.(check int) "four chunks" 4 (List.length chunks);
  List.iteri
    (fun i addr ->
      Alcotest.(check bool)
        (Printf.sprintf "chunk %d on core %d" i i)
        true
        (Scc.Memmap.region_of_addr addr = Scc.Memmap.Mpb i))
    chunks

(* --- mesh ----------------------------------------------------------------- *)

let test_mesh_hops () =
  let mesh = Scc.Mesh.create Scc.Config.default in
  Alcotest.(check int) "same tile" 0
    (Scc.Mesh.hops mesh ~from_tile:0 ~to_tile:0);
  Alcotest.(check int) "adjacent" 1
    (Scc.Mesh.hops mesh ~from_tile:0 ~to_tile:1);
  (* opposite corners of the 6x4 mesh: 5 + 3 *)
  Alcotest.(check int) "diagonal" 8
    (Scc.Mesh.hops mesh ~from_tile:0 ~to_tile:23)

let test_mesh_core_mapping () =
  let mesh = Scc.Mesh.create Scc.Config.default in
  Alcotest.(check int) "cores 0,1 on tile 0" 0 (Scc.Mesh.tile_of_core mesh 1);
  Alcotest.(check int) "cores 2,3 on tile 1" 1 (Scc.Mesh.tile_of_core mesh 2)

let test_mesh_mc_quadrants () =
  let mesh = Scc.Mesh.create Scc.Config.default in
  Alcotest.(check int) "4 controllers" 4 (Scc.Mesh.n_mcs mesh);
  (* corner cores map to their own corner's controller *)
  Alcotest.(check int) "core 0 -> MC 0" 0 (Scc.Mesh.mc_of_core mesh 0);
  let n = Scc.Config.n_cores Scc.Config.default in
  Alcotest.(check int) "last core -> MC 3" 3
    (Scc.Mesh.mc_of_core mesh (n - 1));
  (* every core maps to some controller at most 4 hops away *)
  for core = 0 to n - 1 do
    let mc = Scc.Mesh.mc_of_core mesh core in
    let hops = Scc.Mesh.hops_core_to_mc mesh ~core ~mc in
    if hops > 4 then
      Alcotest.failf "core %d is %d hops from its controller" core hops
  done

(* --- power ------------------------------------------------------------------ *)

let test_power_endpoints () =
  Alcotest.(check (float 0.5)) "low endpoint" 25.0
    (Scc.Power.chip_watts ~volts:0.7 ~freq_mhz:125 ());
  Alcotest.(check (float 0.5)) "high endpoint" 125.0
    (Scc.Power.chip_watts ~volts:1.14 ~freq_mhz:1000 ())

let test_power_monotone_energy () =
  let e8 =
    Scc.Power.energy_joules Scc.Config.default ~active_cores:8
      ~elapsed_ps:1_000_000_000
  in
  let e48 =
    Scc.Power.energy_joules Scc.Config.default ~active_cores:48
      ~elapsed_ps:1_000_000_000
  in
  Alcotest.(check bool) "more active cores, more energy" true (e48 > e8);
  Alcotest.(check bool) "positive" true (e8 > 0.0)

(* --- engine ------------------------------------------------------------------ *)

let test_engine_determinism () =
  let run_once () =
    let eng = Scc.Engine.create () in
    let mm = Scc.Engine.memmap eng in
    let sh = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:4096 in
    for core = 0 to 7 do
      ignore
        (Scc.Engine.spawn eng ~core (fun api ->
             api.Scc.Engine.compute (100 * (api.Scc.Engine.self + 1));
             api.Scc.Engine.store (sh + (api.Scc.Engine.self * 512)) ~bytes:512;
             api.Scc.Engine.barrier ();
             api.Scc.Engine.load sh ~bytes:512))
    done;
    Scc.Engine.run eng;
    Scc.Engine.elapsed_ps eng
  in
  Alcotest.(check int) "identical elapsed time" (run_once ()) (run_once ())

let test_engine_compute_timing () =
  let eng = Scc.Engine.create () in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api -> api.Scc.Engine.compute 800));
  Scc.Engine.run eng;
  (* 800 cycles at 800 MHz = 1 us *)
  Alcotest.(check int) "800 cycles = 1us" 1_000_000 (Scc.Engine.elapsed_ps eng)

let test_engine_barrier_sync () =
  let eng = Scc.Engine.create () in
  let after = Array.make 2 0 in
  for core = 0 to 1 do
    ignore
      (Scc.Engine.spawn eng ~core (fun api ->
           api.Scc.Engine.compute (if api.Scc.Engine.self = 0 then 100 else 10_000);
           api.Scc.Engine.barrier ();
           after.(api.Scc.Engine.self) <- api.Scc.Engine.now_ps ()))
  done;
  Scc.Engine.run eng;
  Alcotest.(check int) "both leave the barrier together" after.(0) after.(1);
  Alcotest.(check bool) "after the slow one arrived" true
    (after.(0) >= Scc.Config.core_cycles_ps Scc.Config.default 10_000)

let test_engine_lock_mutual_exclusion () =
  let eng = Scc.Engine.create () in
  let in_section = ref 0 in
  let max_seen = ref 0 in
  for core = 0 to 3 do
    ignore
      (Scc.Engine.spawn eng ~core (fun api ->
           for _ = 1 to 5 do
             api.Scc.Engine.acquire 0;
             incr in_section;
             max_seen := max !max_seen !in_section;
             api.Scc.Engine.compute 500;
             decr in_section;
             api.Scc.Engine.release 0
           done))
  done;
  Scc.Engine.run eng;
  Alcotest.(check int) "never two holders" 1 !max_seen

let test_engine_release_without_hold () =
  let eng = Scc.Engine.create () in
  ignore (Scc.Engine.spawn eng ~core:0 (fun api -> api.Scc.Engine.release 0));
  match Scc.Engine.run eng with
  | _ -> Alcotest.fail "release without acquire should fail"
  | exception Invalid_argument _ -> ()

let test_engine_deadlock_detected () =
  let eng = Scc.Engine.create () in
  (* two members, but only one reaches the barrier *)
  ignore (Scc.Engine.spawn eng ~core:0 (fun api -> api.Scc.Engine.barrier ()));
  ignore
    (Scc.Engine.spawn eng ~core:1 (fun api ->
         api.Scc.Engine.acquire 5;
         api.Scc.Engine.acquire 5 (* self-deadlock *)));
  match Scc.Engine.run eng with
  | _ -> Alcotest.fail "deadlock should be detected"
  | exception Scc.Engine.Deadlock _ -> ()

let test_engine_spawn_join () =
  let eng = Scc.Engine.create () in
  let child_done = ref false in
  let joined_at = ref 0 in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api ->
         let child =
           api.Scc.Engine.spawn_child ~core:0 (fun capi ->
               capi.Scc.Engine.compute 50_000;
               child_done := true)
         in
         api.Scc.Engine.join child;
         joined_at := api.Scc.Engine.now_ps ();
         Alcotest.(check bool) "child ran before join returned" true
           !child_done));
  Scc.Engine.run eng;
  Alcotest.(check bool) "join waited for the child's compute" true
    (!joined_at >= Scc.Config.core_cycles_ps Scc.Config.default 50_000)

let test_engine_shared_core_serializes () =
  let elapsed nthreads =
    let eng = Scc.Engine.create () in
    for _ = 1 to nthreads do
      ignore
        (Scc.Engine.spawn eng ~core:0 (fun api ->
             api.Scc.Engine.compute 100_000))
    done;
    Scc.Engine.run eng;
    Scc.Engine.elapsed_ps eng
  in
  let one = elapsed 1 in
  let four = elapsed 4 in
  Alcotest.(check bool) "4 threads at least 4x one thread" true
    (four >= 4 * one);
  Alcotest.(check bool) "but switching overhead is bounded (< 5x)" true
    (four < 5 * one)

let test_engine_mc_contention_monotone () =
  (* same total shared traffic is never faster with fewer cores *)
  let elapsed ncores =
    let eng = Scc.Engine.create () in
    let mm = Scc.Engine.memmap eng in
    let sh = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:(1 lsl 18) in
    let total = 1 lsl 16 in
    let per = total / ncores in
    for core = 0 to ncores - 1 do
      ignore
        (Scc.Engine.spawn eng ~core (fun api ->
             api.Scc.Engine.load (sh + (api.Scc.Engine.self * per)) ~bytes:per))
    done;
    Scc.Engine.run eng;
    Scc.Engine.elapsed_ps eng
  in
  let e1 = elapsed 1 and e8 = elapsed 8 and e32 = elapsed 32 in
  Alcotest.(check bool) "8 cores faster than 1" true (e8 < e1);
  Alcotest.(check bool) "32 cores no slower than 8" true (e32 <= e8);
  (* physical floor: the controllers must serve every line *)
  let cfg = Scc.Config.default in
  let lines = (1 lsl 16) / cfg.Scc.Config.line_bytes in
  let service_floor =
    lines / cfg.Scc.Config.n_mcs
    * Scc.Config.dram_cycles_ps cfg cfg.Scc.Config.mc_service_cycles
  in
  Alcotest.(check bool) "bounded below by controller service" true
    (e32 >= service_floor)

let test_engine_mpb_faster_than_shared_dram () =
  let run region_of =
    let eng = Scc.Engine.create () in
    let mm = Scc.Engine.memmap eng in
    let addr = Scc.Memmap.alloc mm (region_of ()) ~bytes:4096 in
    ignore
      (Scc.Engine.spawn eng ~core:0 (fun api ->
           api.Scc.Engine.load addr ~bytes:4096));
    Scc.Engine.run eng;
    Scc.Engine.elapsed_ps eng
  in
  let mpb = run (fun () -> Scc.Memmap.Mpb 0) in
  let dram = run (fun () -> Scc.Memmap.Shared_dram) in
  Alcotest.(check bool)
    (Printf.sprintf "MPB (%d ps) beats uncached DRAM (%d ps)" mpb dram)
    true
    (mpb * 3 < dram)

let test_engine_cached_private_beats_shared () =
  let run region =
    let eng = Scc.Engine.create () in
    let mm = Scc.Engine.memmap eng in
    let addr = Scc.Memmap.alloc mm region ~bytes:4096 in
    ignore
      (Scc.Engine.spawn eng ~core:0 (fun api ->
           (* warm pass then measured pass *)
           api.Scc.Engine.load addr ~bytes:4096;
           let t0 = api.Scc.Engine.now_ps () in
           api.Scc.Engine.load addr ~bytes:4096;
           let t1 = api.Scc.Engine.now_ps () in
           ignore (t1 - t0)));
    Scc.Engine.run eng;
    Scc.Engine.elapsed_ps eng
  in
  let priv = run (Scc.Memmap.Private 0) in
  let shared = run Scc.Memmap.Shared_dram in
  Alcotest.(check bool) "cacheable private wins overall" true (priv < shared)

let test_posted_writes_cheaper () =
  let run cfg =
    let eng = Scc.Engine.create ~cfg () in
    let mm = Scc.Engine.memmap eng in
    let sh = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:8192 in
    ignore
      (Scc.Engine.spawn eng ~core:0 (fun api ->
           api.Scc.Engine.store sh ~bytes:8192));
    Scc.Engine.run eng;
    Scc.Engine.elapsed_ps eng
  in
  let blocking = run Scc.Config.default in
  let posted =
    run { Scc.Config.default with Scc.Config.posted_shared_writes = true }
  in
  Alcotest.(check bool)
    (Printf.sprintf "posted stores (%d ps) beat blocking (%d ps)" posted
       blocking)
    true
    (posted * 2 < blocking);
  (* reads are unaffected *)
  let read_with cfg =
    let eng = Scc.Engine.create ~cfg () in
    let mm = Scc.Engine.memmap eng in
    let sh = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:8192 in
    ignore
      (Scc.Engine.spawn eng ~core:0 (fun api ->
           api.Scc.Engine.load sh ~bytes:8192));
    Scc.Engine.run eng;
    Scc.Engine.elapsed_ps eng
  in
  Alcotest.(check int) "loads unchanged" (read_with Scc.Config.default)
    (read_with
       { Scc.Config.default with Scc.Config.posted_shared_writes = true })

let test_spawn_after_run_rejected () =
  let eng = Scc.Engine.create () in
  ignore (Scc.Engine.spawn eng ~core:0 (fun _ -> ()));
  Scc.Engine.run eng;
  match Scc.Engine.spawn eng ~core:0 (fun _ -> ()) with
  | _ -> Alcotest.fail "spawn after run accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "cache basics" `Quick test_cache_basics;
    Alcotest.test_case "cache LRU" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache dirty writeback" `Quick
      test_cache_dirty_writeback;
    Alcotest.test_case "cache flush and rates" `Quick
      test_cache_flush_and_rates;
    Alcotest.test_case "cache bad geometry" `Quick test_cache_bad_geometry;
    Alcotest.test_case "memmap regions" `Quick test_memmap_regions_roundtrip;
    Alcotest.test_case "memmap alignment" `Quick test_memmap_line_alignment;
    Alcotest.test_case "MPB capacity" `Quick test_mpb_capacity_enforced;
    Alcotest.test_case "MPB striping" `Quick test_mpb_striping;
    Alcotest.test_case "mesh hops" `Quick test_mesh_hops;
    Alcotest.test_case "mesh core mapping" `Quick test_mesh_core_mapping;
    Alcotest.test_case "mesh MC quadrants" `Quick test_mesh_mc_quadrants;
    Alcotest.test_case "power endpoints" `Quick test_power_endpoints;
    Alcotest.test_case "power energy" `Quick test_power_monotone_energy;
    Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
    Alcotest.test_case "engine compute timing" `Quick
      test_engine_compute_timing;
    Alcotest.test_case "engine barrier" `Quick test_engine_barrier_sync;
    Alcotest.test_case "engine lock exclusion" `Quick
      test_engine_lock_mutual_exclusion;
    Alcotest.test_case "engine bad release" `Quick
      test_engine_release_without_hold;
    Alcotest.test_case "engine deadlock" `Quick test_engine_deadlock_detected;
    Alcotest.test_case "engine spawn/join" `Quick test_engine_spawn_join;
    Alcotest.test_case "engine shared core" `Quick
      test_engine_shared_core_serializes;
    Alcotest.test_case "engine MC contention" `Quick
      test_engine_mc_contention_monotone;
    Alcotest.test_case "engine MPB vs DRAM" `Quick
      test_engine_mpb_faster_than_shared_dram;
    Alcotest.test_case "engine private vs shared" `Quick
      test_engine_cached_private_beats_shared;
    Alcotest.test_case "posted shared writes" `Quick
      test_posted_writes_cheaper;
    Alcotest.test_case "spawn after run" `Quick test_spawn_after_run_rejected;
  ]
