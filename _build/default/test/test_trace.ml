(* Execution tracing. *)

let run_traced () =
  let trace = Scc.Trace.create () in
  let eng = Scc.Engine.create ~trace () in
  let mm = Scc.Engine.memmap eng in
  let shared = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:256 in
  let mpb = Scc.Memmap.alloc mm (Scc.Memmap.Mpb 0) ~bytes:64 in
  for core = 0 to 1 do
    ignore
      (Scc.Engine.spawn eng ~core (fun api ->
           api.Scc.Engine.compute 1_000;
           api.Scc.Engine.load shared ~bytes:64;
           api.Scc.Engine.load mpb ~bytes:32;
           api.Scc.Engine.barrier ()))
  done;
  Scc.Engine.run eng;
  (eng, trace)

let test_events_recorded () =
  let _, trace = run_traced () in
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun (e : Scc.Trace.event) -> Scc.Trace.kind_to_string e.Scc.Trace.kind)
         (Scc.Trace.events trace))
  in
  List.iter
    (fun k ->
      if not (List.mem k kinds) then
        Alcotest.failf "missing %s events (have: %s)" k
          (String.concat ", " kinds))
    [ "compute"; "shared-dram"; "mpb"; "barrier" ]

let test_intervals_well_formed () =
  let eng, trace = run_traced () in
  let horizon = Scc.Engine.elapsed_ps eng in
  List.iter
    (fun (e : Scc.Trace.event) ->
      if e.Scc.Trace.start_ps < 0 || e.Scc.Trace.end_ps > horizon
         || e.Scc.Trace.start_ps >= e.Scc.Trace.end_ps then
        Alcotest.failf "bad interval [%d, %d] (horizon %d)"
          e.Scc.Trace.start_ps e.Scc.Trace.end_ps horizon)
    (Scc.Trace.events trace)

let test_busy_accounting () =
  let _, trace = run_traced () in
  let busy = Scc.Trace.busy_by_kind trace ~ctx:0 in
  let compute = try List.assoc Scc.Trace.Compute busy with Not_found -> 0 in
  Alcotest.(check int) "1000 cycles of compute traced"
    (Scc.Config.core_cycles_ps Scc.Config.default 1_000)
    compute

let test_chrome_json_shape () =
  let _, trace = run_traced () in
  let json = Scc.Trace.to_chrome_json trace in
  Alcotest.(check bool) "array brackets" true
    (String.length json > 2 && json.[0] = '[');
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec scan i = i + n <= m && (String.sub json i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "duration events" true (contains {|"ph":"X"|});
  Alcotest.(check bool) "kind names present" true (contains "shared-dram")

let test_limit_respected () =
  let trace = Scc.Trace.create ~limit:3 () in
  for i = 0 to 9 do
    Scc.Trace.record trace ~ctx:0 ~core:0 ~start_ps:(i * 10)
      ~end_ps:((i * 10) + 5) Scc.Trace.Compute
  done;
  Alcotest.(check int) "capped at 3" 3 (Scc.Trace.length trace)

let test_tracing_off_by_default () =
  let eng = Scc.Engine.create () in
  ignore (Scc.Engine.spawn eng ~core:0 (fun api -> api.Scc.Engine.compute 10));
  Scc.Engine.run eng;
  Alcotest.(check bool) "no trace" true (Scc.Engine.trace eng = None)

let suite =
  [
    Alcotest.test_case "events recorded" `Quick test_events_recorded;
    Alcotest.test_case "intervals well-formed" `Quick
      test_intervals_well_formed;
    Alcotest.test_case "busy accounting" `Quick test_busy_accounting;
    Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
    Alcotest.test_case "limit respected" `Quick test_limit_respected;
    Alcotest.test_case "off by default" `Quick test_tracing_off_by_default;
  ]
