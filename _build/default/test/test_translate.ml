open Cfront

(* Stage 5: the full translation of the paper's example, each pass's
   behaviour in isolation, error paths, and the no-pthread-survivor
   property. *)

let translate ?options src =
  Translate.Driver.translate_source ?options ~file:"test.c" src

let translated_text ?options src = fst (Translate.Driver.translate_to_string ?options ~file:"test.c" src)

let contains ~needle haystack =
  let n = String.length needle and m = String.length haystack in
  let rec scan i =
    i + n <= m && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let check_contains msg needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: expected to find %S in:\n%s" msg needle haystack

let check_absent msg needle haystack =
  if contains ~needle haystack then
    Alcotest.failf "%s: expected NOT to find %S in:\n%s" msg needle haystack

(* --- the running example ---------------------------------------------------- *)

let test_example_4_2_shape () =
  let out = translated_text Exp.Example41.source in
  (* global declarations transformed *)
  check_contains "sum becomes a pointer" "int *sum;" out;
  check_contains "RCCE header" "#include \"RCCE.h\"" out;
  check_absent "pthread header gone" "pthread.h" out;
  (* main body, in the paper's order *)
  check_contains "renamed main" "int RCCE_APP(int argc, char **argv)" out;
  check_contains "init first" "RCCE_init(&argc, &argv);" out;
  check_contains "ptr allocation" "ptr = (int*)RCCE_shmalloc(sizeof(int) * 1);" out;
  check_contains "sum allocation" "sum = (int*)RCCE_shmalloc(sizeof(int) * 3);" out;
  check_contains "core id variable" "myID = RCCE_ue();" out;
  check_contains "direct call with core id" "tf((void*)myID);" out;
  check_contains "barrier" "RCCE_barrier(&RCCE_COMM_WORLD);" out;
  check_contains "per-core print" "sum[myID]" out;
  check_contains "finalize before return" "RCCE_finalize();" out;
  (* dead thread-management code removed *)
  check_absent "threads array gone" "pthread_t" out;
  check_absent "rc gone" "int rc" out;
  check_absent "create loop gone" "pthread_create" out;
  check_absent "exit call gone" "pthread_exit" out

let test_statement_order_in_main () =
  let out = translated_text Exp.Example41.source in
  let pos needle =
    let n = String.length needle in
    let rec scan i =
      if i + n > String.length out then
        Alcotest.failf "missing %S" needle
      else if String.sub out i n = needle then i
      else scan (i + 1)
    in
    scan 0
  in
  let order =
    [ "RCCE_init"; "RCCE_shmalloc"; "myID = RCCE_ue()"; "tf((void*)myID)";
      "RCCE_barrier"; "printf"; "RCCE_finalize"; "return 0" ]
  in
  let positions = List.map pos order in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "main statements in the paper's order" true
    (ascending positions)

let test_translation_reparses () =
  let out = translated_text Exp.Example41.source in
  match Parser.program out with
  | p ->
      Alcotest.(check bool) "non-empty" true (List.length p.Ast.p_globals > 0)
  | exception Srcloc.Error (loc, msg) ->
      Alcotest.failf "translated output does not reparse: %s: %s"
        (Srcloc.to_string loc) msg

(* --- individual behaviours --------------------------------------------------- *)

let test_standalone_create_pinned () =
  let out =
    translated_text
      {|#include <pthread.h>
        int flag;
        void *taskA(void *a) { flag = 1; pthread_exit(NULL); }
        void *taskB(void *a) { flag = 2; pthread_exit(NULL); }
        int main() {
          pthread_t t1;
          pthread_t t2;
          pthread_create(&t1, NULL, taskA, NULL);
          pthread_create(&t2, NULL, taskB, NULL);
          pthread_join(t1, NULL);
          pthread_join(t2, NULL);
          return 0;
        }|}
  in
  check_contains "taskA pinned to core 0" "if (myID == 0)" out;
  check_contains "taskB pinned to core 1" "if (myID == 1)" out;
  check_contains "joins become barriers" "RCCE_barrier" out;
  (* consecutive barriers collapse *)
  let count needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length out then acc
      else if String.sub out i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "two joins collapse to one barrier" 1
    (count "RCCE_barrier(")

let test_mutex_conversion () =
  let out =
    translated_text
      {|#include <pthread.h>
        int counter;
        pthread_mutex_t m;
        void *w(void *a) {
          pthread_mutex_lock(&m);
          counter = counter + 1;
          pthread_mutex_unlock(&m);
          pthread_exit(NULL);
        }
        int main() {
          pthread_mutex_init(&m, NULL);
          pthread_t t[4];
          int i;
          for (i = 0; i < 4; i++) { pthread_create(&t[i], NULL, w, (void *)i); }
          for (i = 0; i < 4; i++) { pthread_join(t[i], NULL); }
          return counter;
        }|}
  in
  check_contains "lock converted" "RCCE_acquire_lock(0)" out;
  check_contains "unlock converted" "RCCE_release_lock(0)" out;
  check_absent "mutex declaration gone" "pthread_mutex_t" out;
  check_absent "mutex init gone" "pthread_mutex_init" out;
  (* the shared scalar becomes a dereferenced pointer *)
  check_contains "counter allocated" "counter = (int*)RCCE_shmalloc" out;
  check_contains "counter uses dereferenced" "*counter = *counter + 1" out

let test_two_mutexes_two_registers () =
  let out =
    translated_text
      {|#include <pthread.h>
        pthread_mutex_t a;
        pthread_mutex_t b;
        int main() {
          pthread_mutex_lock(&a);
          pthread_mutex_lock(&b);
          pthread_mutex_unlock(&b);
          pthread_mutex_unlock(&a);
          return 0;
        }|}
  in
  check_contains "first mutex register 0" "RCCE_acquire_lock(0)" out;
  check_contains "second mutex register 1" "RCCE_acquire_lock(1)" out

let test_pthread_self_replaced () =
  let out =
    translated_text
      {|#include <pthread.h>
        int ids[4];
        void *w(void *a) { ids[(int)a] = (int)pthread_self(); pthread_exit(NULL); }
        int main() {
          pthread_t t[4];
          int i;
          for (i = 0; i < 4; i++) { pthread_create(&t[i], NULL, w, (void *)i); }
          for (i = 0; i < 4; i++) { pthread_join(t[i], NULL); }
          return 0;
        }|}
  in
  check_contains "self replaced" "RCCE_ue()" out;
  check_absent "self gone" "pthread_self" out

let test_prior_malloc_removed () =
  let out =
    translated_text
      {|#include <pthread.h>
        #include <stdlib.h>
        int *buf;
        void *w(void *a) { buf[(int)a] = 1; pthread_exit(NULL); }
        int main() {
          buf = (int*)malloc(sizeof(int) * 8);
          pthread_t t[8];
          int i;
          for (i = 0; i < 8; i++) { pthread_create(&t[i], NULL, w, (void *)i); }
          for (i = 0; i < 8; i++) { pthread_join(t[i], NULL); }
          return 0;
        }|}
  in
  check_contains "shmalloc inserted" "RCCE_shmalloc" out;
  check_absent "prior malloc removed" "malloc(sizeof(int) * 8)" out

let test_nonzero_initializer_reemitted () =
  let out =
    translated_text
      {|#include <pthread.h>
        int table[3] = {10, 20, 30};
        void *w(void *a) { table[(int)a] += 1; pthread_exit(NULL); }
        int main() {
          pthread_t t[3];
          int i;
          for (i = 0; i < 3; i++) { pthread_create(&t[i], NULL, w, (void *)i); }
          for (i = 0; i < 3; i++) { pthread_join(t[i], NULL); }
          return 0;
        }|}
  in
  check_contains "core 0 re-initializes" "if (myID == 0)" out;
  check_contains "element store" "table[0] = 10" out

let test_sound_locals_option () =
  let options =
    { Translate.Pass.default_options with Translate.Pass.sound_locals = true }
  in
  let out = translated_text ~options Exp.Example41.source in
  (* tmp is hoisted into a shared global pointer *)
  check_contains "tmp now global" "int *tmp;" out;
  check_contains "tmp allocated" "tmp = (int*)RCCE_shmalloc" out;
  check_contains "tmp written through pointer" "*tmp = 1" out

let test_on_chip_placement_uses_rcce_malloc () =
  let options =
    { Translate.Pass.default_options with
      Translate.Pass.capacity = 8 * 1024 }
  in
  let out = translated_text ~options Exp.Example41.source in
  check_contains "small shared data on chip" "RCCE_malloc" out;
  check_absent "nothing off chip" "RCCE_shmalloc" out

let test_too_many_threads_rejected () =
  let src =
    {|#include <pthread.h>
      void *w(void *a) { pthread_exit(NULL); }
      int main() {
        pthread_t t[100];
        int i;
        for (i = 0; i < 100; i++) { pthread_create(&t[i], NULL, w, (void *)i); }
        return 0;
      }|}
  in
  match translate src with
  | _ -> Alcotest.fail "100 threads on 48 cores should be rejected"
  | exception Translate.Driver.Error (Translate.Driver.Too_many_threads (100, 48)) ->
      ()
  | exception Translate.Driver.Error e ->
      Alcotest.failf "wrong error: %s" (Translate.Driver.error_to_string e)

let test_parse_error_reported () =
  match translate "int main( {" with
  | _ -> Alcotest.fail "should not parse"
  | exception Translate.Driver.Error (Translate.Driver.Parse_error _) -> ()

(* --- properties -------------------------------------------------------------- *)

(* every benchmark source we generate translates with no pthread token
   surviving, and the output reparses *)
let test_no_pthread_survivors () =
  let sources =
    [ Exp.Example41.source;
      Exp.Csrc.pi ~nt:8 ~steps:1000;
      Exp.Csrc.primes ~nt:8 ~limit:100;
      Exp.Csrc.mutex_counter ~nt:4 ~iters:10 ]
  in
  List.iter
    (fun src ->
      let out = translated_text src in
      check_absent "no pthread anywhere" "pthread" out;
      match Parser.program out with
      | _ -> ()
      | exception Srcloc.Error (loc, msg) ->
          Alcotest.failf "output does not reparse: %s: %s"
            (Srcloc.to_string loc) msg)
    sources

let test_serial_program_translates () =
  (* no threads at all: the conversion must still produce a valid RCCE
     program (every core runs the whole computation) *)
  let src =
    {|#include <stdio.h>
      int total;
      int main() {
        int i;
        for (i = 1; i <= 10; i++) { total = total + i; }
        printf("%d
", total);
        return 0;
      }|}
  in
  let out, report = Translate.Driver.translate_to_string src in
  check_contains "still gets RCCE scaffolding" "RCCE_init" out;
  check_contains "shared global allocated" "total = (int*)RCCE_shmalloc" out;
  Alcotest.(check (option int)) "zero threads" (Some 0)
    report.Translate.Driver.thread_count;
  (* and it runs: every process computes and prints 55 *)
  let translated, _ = Translate.Driver.translate_source src in
  let r = Cexec.Interp.run_rcce ~ncores:2 translated in
  String.split_on_char '
' (String.trim r.Cexec.Interp.output)
  |> List.iter (fun line -> Alcotest.(check string) "sum printed" "55" line)

let test_no_main_is_handled () =
  (* a translation unit without main: passes run, nothing to insert into *)
  let src = "int helper(int x) { return x + 1; }" in
  let out, _ = Translate.Driver.translate_to_string src in
  check_contains "function preserved" "helper" out

let test_report_contents () =
  let _, report = translate Exp.Example41.source in
  Alcotest.(check (option int)) "thread count" (Some 3)
    report.Translate.Driver.thread_count;
  Alcotest.(check bool) "notes mention the create loop" true
    (List.exists
       (fun n -> contains ~needle:"dismantled create loop" n)
       report.Translate.Driver.notes)

let suite =
  [
    Alcotest.test_case "Example 4.2 shape" `Quick test_example_4_2_shape;
    Alcotest.test_case "statement order" `Quick test_statement_order_in_main;
    Alcotest.test_case "output reparses" `Quick test_translation_reparses;
    Alcotest.test_case "standalone creates pinned" `Quick
      test_standalone_create_pinned;
    Alcotest.test_case "mutex conversion" `Quick test_mutex_conversion;
    Alcotest.test_case "two mutexes" `Quick test_two_mutexes_two_registers;
    Alcotest.test_case "pthread_self" `Quick test_pthread_self_replaced;
    Alcotest.test_case "prior malloc removed" `Quick
      test_prior_malloc_removed;
    Alcotest.test_case "non-zero initializer" `Quick
      test_nonzero_initializer_reemitted;
    Alcotest.test_case "sound locals" `Quick test_sound_locals_option;
    Alcotest.test_case "on-chip placement" `Quick
      test_on_chip_placement_uses_rcce_malloc;
    Alcotest.test_case "too many threads" `Quick
      test_too_many_threads_rejected;
    Alcotest.test_case "parse errors" `Quick test_parse_error_reported;
    Alcotest.test_case "no pthread survivors" `Quick
      test_no_pthread_survivors;
    Alcotest.test_case "serial program" `Quick
      test_serial_program_translates;
    Alcotest.test_case "no main" `Quick test_no_main_is_handled;
    Alcotest.test_case "report contents" `Quick test_report_contents;
  ]
