open Cfront

(* AST traversals and rewriters. *)

let expr src = Parser.expression src

let test_iter_counts_nodes () =
  let count = ref 0 in
  Visit.iter_expr (fun _ -> incr count) (expr "a + b * f(c, d)");
  (* +, a, *, b, call, c, d *)
  Alcotest.(check int) "seven nodes" 7 !count

let test_fold_collects_vars () =
  let vars =
    Visit.fold_expr
      (fun acc e ->
        match e with Ast.Var v -> v :: acc | _ -> acc)
      []
      (expr "x + y[z] * x")
  in
  Alcotest.(check (list string)) "vars in reverse visit order"
    [ "x"; "z"; "y"; "x" ] vars

let test_map_expr_bottom_up () =
  let renamed =
    Visit.map_expr
      (fun e ->
        match e with Ast.Var "a" -> Ast.Var "b" | e -> e)
      (expr "a + a * a")
  in
  Alcotest.(check string) "all renamed" "b + b * b" (Pretty.expr renamed)

let test_rewrite_removal_and_insertion () =
  let p =
    Parser.program
      "void f(void) { keep1(); drop(); keep2(); }"
  in
  let rewritten =
    Visit.rewrite_program
      (fun s ->
        match s.Ast.s_desc with
        | Ast.Sexpr (Ast.Call ("drop", _)) -> Some []
        | Ast.Sexpr (Ast.Call ("keep2", _)) ->
            Some
              [ s; Ast.stmt (Ast.Sexpr (Ast.call "added" [])) ]
        | _ -> None)
      p
  in
  let text = Pretty.program rewritten in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec scan i = i + n <= m && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "drop removed" false (contains "drop()");
  Alcotest.(check bool) "added inserted" true (contains "added()")

let test_rewrite_wraps_loop_bodies () =
  let p = Parser.program "void f(void) { while (c) one(); }" in
  let rewritten =
    Visit.rewrite_program
      (fun s ->
        match s.Ast.s_desc with
        | Ast.Sexpr (Ast.Call ("one", _)) ->
            Some
              [ Ast.stmt (Ast.Sexpr (Ast.call "a" []));
                Ast.stmt (Ast.Sexpr (Ast.call "b" [])) ]
        | _ -> None)
      p
  in
  (* must still parse: the two statements need a block inside the loop *)
  match Parser.program (Pretty.program rewritten) with
  | _ -> ()
  | exception Srcloc.Error (loc, msg) ->
      Alcotest.failf "rewritten program invalid: %s: %s"
        (Srcloc.to_string loc) msg

let test_topdown_stops_at_replacement () =
  let p =
    Parser.program
      "void f(void) { for (i = 0; i < 3; i++) { inner(); } }"
  in
  let loop_seen = ref 0 and inner_seen = ref 0 in
  ignore
    (Visit.rewrite_program_topdown
       (fun s ->
         match s.Ast.s_desc with
         | Ast.Sfor _ ->
             incr loop_seen;
             Some [ Ast.stmt (Ast.Sexpr (Ast.call "replaced" [])) ]
         | Ast.Sexpr (Ast.Call ("inner", _)) ->
             incr inner_seen;
             None
         | _ -> None)
       p);
  Alcotest.(check int) "loop replaced" 1 !loop_seen;
  Alcotest.(check int) "children not revisited" 0 !inner_seen

let test_calls_in_func () =
  let p =
    Parser.program "void f(void) { g(1); if (c) { h(2); } while (x) g(3); }"
  in
  match Ast.functions p with
  | [ fn ] ->
      let names = List.map (fun (n, _, _) -> n) (Visit.calls_in_func fn) in
      Alcotest.(check (list string)) "calls in order" [ "g"; "h"; "g" ] names
  | _ -> Alcotest.fail "one function expected"

let test_map_program_exprs_reaches_initializers () =
  let p = Parser.program "int a = old;\nvoid f(void) { int b = old; }" in
  let rewritten =
    Visit.map_program_exprs
      (fun e -> match e with Ast.Var "old" -> Ast.Var "new_" | e -> e)
      p
  in
  let text = Pretty.program rewritten in
  let count needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length text then acc
      else if String.sub text i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "both initializers rewritten" 2 (count "new_")

let suite =
  [
    Alcotest.test_case "iter counts" `Quick test_iter_counts_nodes;
    Alcotest.test_case "fold collects" `Quick test_fold_collects_vars;
    Alcotest.test_case "map bottom-up" `Quick test_map_expr_bottom_up;
    Alcotest.test_case "rewrite remove/insert" `Quick
      test_rewrite_removal_and_insertion;
    Alcotest.test_case "rewrite wraps bodies" `Quick
      test_rewrite_wraps_loop_bodies;
    Alcotest.test_case "topdown stops" `Quick
      test_topdown_stops_at_replacement;
    Alcotest.test_case "calls in func" `Quick test_calls_in_func;
    Alcotest.test_case "initializers rewritten" `Quick
      test_map_program_exprs_reaches_initializers;
  ]
