(* The benchmark suite: every workload verifies in all three execution
   modes, and the relationships the paper reports hold at test scale. *)

let quick_suite = Exp.Experiments.suite Exp.Experiments.Quick

let run w mode = Workloads.Workload.run w mode

let test_all_verify_in_all_modes () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun mode ->
          let r = run w mode in
          if not r.Workloads.Workload.verified then
            Alcotest.failf "%s not verified under %s"
              w.Workloads.Workload.name
              (Workloads.Workload.mode_to_string mode))
        [ Workloads.Workload.Pthread_baseline 8;
          Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 8);
          Workloads.Workload.Rcce (Workloads.Workload.On_chip, 8) ])
    quick_suite

let test_rcce_beats_baseline () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let base = run w (Workloads.Workload.Pthread_baseline 8) in
      let rcce =
        run w (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 8))
      in
      let s = Workloads.Workload.speedup ~baseline:base rcce in
      if s <= 1.5 then
        Alcotest.failf "%s: expected clear parallel speedup, got %.2fx"
          w.Workloads.Workload.name s)
    quick_suite

let test_more_cores_never_slower () =
  let w = List.hd quick_suite (* pi *) in
  let elapsed n =
    (run w (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, n)))
      .Workloads.Workload.elapsed_ps
  in
  let e2 = elapsed 2 and e8 = elapsed 8 and e32 = elapsed 32 in
  Alcotest.(check bool) "8 <= 2 cores" true (e8 <= e2);
  Alcotest.(check bool) "32 <= 8 cores" true (e32 <= e8)

let test_primes_imbalance () =
  (* contiguous partitioning makes the last unit the straggler: speedup
     clearly below the unit count *)
  let w = Workloads.Primes.make ~params:{ Workloads.Primes.limit = 6_000 } () in
  let base = run w (Workloads.Workload.Pthread_baseline 16) in
  let rcce =
    run w (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 16))
  in
  let s = Workloads.Workload.speedup ~baseline:base rcce in
  Alcotest.(check bool)
    (Printf.sprintf "primes speedup %.1fx well below 16x" s)
    true
    (s > 4.0 && s < 13.0)

let test_pi_near_linear () =
  let w = Workloads.Pi.make ~params:{ Workloads.Pi.steps = 1 lsl 16 } () in
  let base = run w (Workloads.Workload.Pthread_baseline 16) in
  let rcce =
    run w (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 16))
  in
  let s = Workloads.Workload.speedup ~baseline:base rcce in
  Alcotest.(check bool)
    (Printf.sprintf "pi speedup %.1fx close to 16x" s)
    true
    (s > 13.0 && s < 20.0)

let test_stream_gains_from_mpb () =
  let w =
    Workloads.Stream.make
      ~params:{ Workloads.Stream.n = 1 lsl 14; reps = 4; block = 256 } ()
  in
  let off = run w (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 32)) in
  let mpb = run w (Workloads.Workload.Rcce (Workloads.Workload.On_chip, 32)) in
  Alcotest.(check bool) "MPB variant verified" true
    mpb.Workloads.Workload.verified;
  Alcotest.(check bool) "MPB clearly faster for stream" true
    (mpb.Workloads.Workload.elapsed_ps * 3 / 2
    < off.Workloads.Workload.elapsed_ps)

let test_lu_mpb_fallback_noted () =
  let w = Workloads.Lu.make ~params:{ Workloads.Lu.n = 96; block = 256 } () in
  let mpb = run w (Workloads.Workload.Rcce (Workloads.Workload.On_chip, 4)) in
  (* 96x96 doubles = 73 KB > 4 cores x 8 KB: must fall back *)
  Alcotest.(check bool) "fallback note emitted" true
    (List.exists
       (fun n ->
         let contains needle hay =
           let ln = String.length needle and lh = String.length hay in
           let rec scan i =
             i + ln <= lh && (String.sub hay i ln = needle || scan (i + 1))
           in
           scan 0
         in
         contains "exceeds the on-chip MPB" n)
       mpb.Workloads.Workload.notes);
  Alcotest.(check bool) "still verified" true mpb.Workloads.Workload.verified

let test_deterministic_results () =
  let w = Workloads.Dot.make ~params:{ Workloads.Dot.n = 4096; reps = 2; block = 256 } () in
  let mode = Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 8) in
  let a = run w mode and b = run w mode in
  Alcotest.(check int) "identical elapsed time"
    a.Workloads.Workload.elapsed_ps b.Workloads.Workload.elapsed_ps

let test_chunk_range_covers () =
  (* the per-unit ranges partition [0, n) exactly *)
  let check n units =
    let covered = Array.make n 0 in
    for u = 0 to units - 1 do
      let lo, hi = Workloads.Sharr.chunk_range ~n ~units ~u in
      for i = lo to hi - 1 do
        covered.(i) <- covered.(i) + 1
      done
    done;
    Array.iteri
      (fun i c ->
        if c <> 1 then
          Alcotest.failf "n=%d units=%d: index %d covered %d times" n units
            i c)
      covered
  in
  check 100 7;
  check 64 8;
  check 13 4;
  check 5 5

let qcheck_chunk_range =
  QCheck.Test.make ~count:200 ~name:"chunk ranges partition the index space"
    (QCheck.pair QCheck.(int_range 1 1000) QCheck.(int_range 1 48))
    (fun (n, units) ->
      QCheck.assume (units <= n);
      let total =
        List.fold_left
          (fun acc u ->
            let lo, hi = Workloads.Sharr.chunk_range ~n ~units ~u in
            acc + (hi - lo))
          0
          (List.init units (fun u -> u))
      in
      total = n)

let test_sharr_striped_addressing () =
  let chunks = [| 1000; 2000; 3000 |] in
  let arr =
    Workloads.Sharr.create ~name:"x" ~elts:24 ~elt_bytes:8
      (Workloads.Sharr.Striped { chunks; chunk_bytes = 64 })
  in
  (* 8 elements per 64-byte chunk *)
  Alcotest.(check int) "element 0 in chunk 0" 1000
    (Workloads.Sharr.addr_of arr 0);
  Alcotest.(check int) "element 8 in chunk 1" 2000
    (Workloads.Sharr.addr_of arr 8);
  Alcotest.(check int) "element 9 offset" 2008
    (Workloads.Sharr.addr_of arr 9);
  Alcotest.(check int) "element 23 in chunk 2" (3000 + 56)
    (Workloads.Sharr.addr_of arr 23)

let test_sharr_bounds_checked () =
  let arr =
    Workloads.Sharr.create ~name:"x" ~elts:4 ~elt_bytes:8
      (Workloads.Sharr.Contiguous 0)
  in
  let eng = Scc.Engine.create () in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api ->
         match Workloads.Sharr.load_block api arr ~off:2 ~len:10 with
         | _ -> Alcotest.fail "out-of-range block accepted"
         | exception Invalid_argument _ -> ()));
  Scc.Engine.run eng

let test_histogram_verifies_and_lags () =
  let w =
    Workloads.Histogram.make
      ~params:{ Workloads.Histogram.n = 1 lsl 12; bins = 32; locks = 4 } ()
  in
  let base = run w (Workloads.Workload.Pthread_baseline 16) in
  let rcce =
    run w (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 16))
  in
  Alcotest.(check bool) "baseline verified" true
    base.Workloads.Workload.verified;
  Alcotest.(check bool) "rcce verified" true rcce.Workloads.Workload.verified;
  let s = Workloads.Workload.speedup ~baseline:base rcce in
  Alcotest.(check bool)
    (Printf.sprintf "lock-bound speedup %.1fx well below 16x" s)
    true (s < 10.0)

let suite =
  [
    Alcotest.test_case "all verify in all modes" `Slow
      test_all_verify_in_all_modes;
    Alcotest.test_case "rcce beats baseline" `Slow test_rcce_beats_baseline;
    Alcotest.test_case "more cores never slower" `Slow
      test_more_cores_never_slower;
    Alcotest.test_case "primes imbalance" `Quick test_primes_imbalance;
    Alcotest.test_case "pi near linear" `Quick test_pi_near_linear;
    Alcotest.test_case "stream MPB gain" `Quick test_stream_gains_from_mpb;
    Alcotest.test_case "lu MPB fallback" `Quick test_lu_mpb_fallback_noted;
    Alcotest.test_case "deterministic" `Quick test_deterministic_results;
    Alcotest.test_case "chunk ranges" `Quick test_chunk_range_covers;
    QCheck_alcotest.to_alcotest qcheck_chunk_range;
    Alcotest.test_case "striped addressing" `Quick
      test_sharr_striped_addressing;
    Alcotest.test_case "block bounds" `Quick test_sharr_bounds_checked;
    Alcotest.test_case "histogram lock-bound" `Quick
      test_histogram_verifies_and_lags;
  ]
