(* opt_bench — what does `translate -O` buy on the simulated SCC?
   Written to BENCH_opt.json.

   Each row translates one shared-data-heavy benchmark twice — the plain
   pipeline and the optimizer bundle (MPB software caching + PRE of
   shared loads + folding) — interprets both on the simulated chip, and
   reports simulated picoseconds, the shared-DRAM load counts, and the
   speedup.  The two runs must print the same output: the optimizer is
   only allowed to move loads, never results.

     opt_bench [--quick] [--out FILE] [--check BASELINE] [--min-speedup F]

   --check compares the headline speedup against a previously written
   BENCH_opt.json and exits 1 when the current speedup falls below
   max(--min-speedup, 0.9 x baseline) — the CI gate that keeps the
   optimizer worth shipping (default --min-speedup 1.10, the paper-style
   >= 10% bar). *)

type row = {
  label : string;
  ncores : int;
  naive_ps : int;
  opt_ps : int;
  naive_shared_loads : int;
  opt_shared_loads : int;
  speedup : float;
}

let run_config ~label ~ncores src =
  let program = Cfront.Parser.program ~file:(label ^ ".c") src in
  let translate optimize =
    let options =
      { Translate.Pass.default_options with
        Translate.Pass.ncores; optimize }
    in
    fst (Translate.Driver.translate_program ~options program)
  in
  let interp translated = Cexec.Interp.run_rcce ~ncores translated in
  let naive = interp (translate false) in
  let opt = interp (translate true) in
  if
    not
      (String.equal naive.Cexec.Interp.output opt.Cexec.Interp.output)
  then begin
    Printf.eprintf
      "opt_bench: OUTPUT MISMATCH on %s\n  naive: %s\n  -O:    %s\n" label
      (String.trim naive.Cexec.Interp.output)
      (String.trim opt.Cexec.Interp.output);
    exit 1
  end;
  let shared_loads (r : Cexec.Interp.result) =
    Scc.Stats.total_shared_dram_loads (Scc.Engine.stats r.Cexec.Interp.engine)
  in
  {
    label;
    ncores;
    naive_ps = naive.Cexec.Interp.elapsed_ps;
    opt_ps = opt.Cexec.Interp.elapsed_ps;
    naive_shared_loads = shared_loads naive;
    opt_shared_loads = shared_loads opt;
    speedup =
      float_of_int naive.Cexec.Interp.elapsed_ps
      /. float_of_int (max 1 opt.Cexec.Interp.elapsed_ps);
  }

let json_of ~mode ~rows ~headline =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hsmc-opt-bench-1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": %S,\n" mode);
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"label\": %S, \"ncores\": %d, \"naive_ps\": %d, \
            \"opt_ps\": %d, \"naive_shared_loads\": %d, \
            \"opt_shared_loads\": %d, \"speedup\": %.3f}%s\n"
           r.label r.ncores r.naive_ps r.opt_ps r.naive_shared_loads
           r.opt_shared_loads r.speedup
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"headline_speedup\": %.3f\n" headline);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Minimal field scan — the file is our own fixed format. *)
let headline_of_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let key = "\"headline_speedup\":" in
  let rec find i =
    if i + String.length key > String.length s then None
    else if String.sub s i (String.length key) = key then
      Some (i + String.length key)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
      let k = ref j in
      while
        !k < String.length s
        && (s.[!k] = ' ' || s.[!k] = '.' || s.[!k] = '-'
           || (s.[!k] >= '0' && s.[!k] <= '9'))
      do
        incr k
      done;
      float_of_string_opt (String.trim (String.sub s j (!k - j)))

let () =
  let quick = ref false in
  let out = ref "BENCH_opt.json" in
  let check = ref None in
  let min_speedup = ref 1.10 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: f :: rest ->
        out := f;
        parse rest
    | "--check" :: f :: rest ->
        check := Some f;
        parse rest
    | "--min-speedup" :: f :: rest -> (
        match float_of_string_opt f with
        | Some v when v >= 1.0 ->
            min_speedup := v;
            parse rest
        | _ ->
            Printf.eprintf
              "opt_bench: --min-speedup wants a factor >= 1.0, got %S\n" f;
            exit 64)
    | a :: _ ->
        Printf.eprintf
          "opt_bench: unknown argument %S\n\
           usage: opt_bench [--quick] [--out FILE] [--check BASELINE] \
           [--min-speedup F]\n"
          a;
        exit 64
  in
  parse (List.tl (Array.to_list Sys.argv));
  let nt = if !quick then 8 else 32 in
  let reps = if !quick then 4 else 8 in
  let rows =
    [
      run_config ~label:(Printf.sprintf "dot-nt%d-n512-reps%d" nt reps)
        ~ncores:nt
        (Exp.Csrc.dot_reps ~reps ~nt ~n:512);
      run_config ~label:(Printf.sprintf "hot-loop-nt%d" nt) ~ncores:nt
        (Exp.Csrc.hot_loop ~nt ~steps:4096);
    ]
  in
  let headline =
    List.fold_left (fun acc r -> max acc r.speedup) 0.0 rows
  in
  let json =
    json_of ~mode:(if !quick then "quick" else "full") ~rows ~headline
  in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  print_string json;
  match !check with
  | None -> ()
  | Some baseline_file -> (
      match headline_of_file baseline_file with
      | None ->
          Printf.eprintf "opt_bench: cannot read baseline %s\n" baseline_file;
          exit 65
      | Some base ->
          let floor = Float.max !min_speedup (0.9 *. base) in
          if headline < floor then begin
            Printf.eprintf
              "opt_bench: REGRESSION: -O speedup %.3fx is below the floor \
               %.3fx (baseline %.3fx, min %.2fx)\n"
              headline floor base !min_speedup;
            exit 1
          end
          else
            Printf.printf
              "opt_bench: ok: -O speedup %.3fx vs baseline %.3fx (floor \
               %.3fx)\n"
              headline base floor)
