(* sim_bench — simulator throughput, written to BENCH_sim.json.

   Per-component metrics, so a regression names its culprit instead of
   showing up as one opaque events/s delta:

   - interp_compiled (the headline): events/s interpreting the Pi
     Pthread program at 1024 threads under the closure-compiled
     interpreter — the configuration every ROADMAP sweep item is gated
     on.  "Events" are scheduler resumes (Scc.Engine.events), a pure
     function of the simulated schedule, so the rate is comparable
     across implementations that produce the same results.
   - interp_tree: the same run under the tree-walking reference
     interpreter.  compiled/tree is the measured compilation speedup.
   - sched_raw: a synthetic workload performing compute/load effects
     directly against the engine API with no C interpreter at all —
     the scheduler + effect-machinery + memory-model ceiling.  If this
     figure regresses, the engine regressed; if it holds while the
     interp figures drop, the interpreter regressed.
   - sweep: the Figure 6.1 sweep (each benchmark in Pthread baseline
     and translated RCCE form) end to end, configs/s.
   - parallel: (a) the conservative parallel-DES ceiling measured by the
     LBTS window accounting (Scc.Engine.par_report) on a 32-rank RCCE
     run partitioned across sim_jobs=8 scheduler partitions, and (b) the
     wall-clock speedup of running independent simulations on the
     PR 3 domain pool (Exp.Pool) — >1 on a multi-core host, ~1 in a
     single-CPU container (the committed baselines come from such a
     container; see EXPERIMENTS.md).

   Each measurement is best-of-N wall time: the simulator is
   deterministic, so the minimum is the least-noise estimate.

     sim_bench [--quick] [--out FILE] [--check BASELINE] [--max-regress F]

   --check compares headline, interp_tree, sched_raw and sweep figures
   against a previously written BENCH_sim.json and exits 1 when any
   regresses by more than --max-regress (a fraction, default 0.30),
   naming the regressed component(s) and the implied attribution.  The
   observability CI step re-runs the gate at 0.05 to hold the
   instrumented-but-disabled simulator within 5% of the committed
   baseline. *)

type meas = {
  label : string;
  events : int;
  best_s : float;
  events_per_sec : float;
}

let best_of ~iters f =
  let best = ref infinity in
  let events = ref 0 in
  for _ = 1 to iters do
    let t0 = Unix.gettimeofday () in
    let ev = f () in
    let dt = Unix.gettimeofday () -. t0 in
    events := ev;
    if dt < !best then best := dt
  done;
  (!events, !best)

let bench_pi ~label ~interp ~nt ~steps ~iters =
  let src = Exp.Csrc.pi ~nt ~steps in
  let program = Cfront.Parser.program ~file:"pi.c" src in
  ignore (Cexec.Interp.run_pthread ~interp program);
  let events, best =
    best_of ~iters (fun () ->
        let r = Cexec.Interp.run_pthread ~interp program in
        Scc.Engine.events r.Cexec.Interp.engine)
  in
  { label; events; best_s = best; events_per_sec = float_of_int events /. best }

(* The engine with no interpreter in front of it: contexts time-sharing
   one core, each alternating a short compute burst with a private-line
   load — the same effect mix the Pi run generates, minus all
   interpretation.  This is the scheduler/effect/memory-model ceiling. *)
let bench_sched_raw ~nctx ~rounds ~iters =
  let run () =
    let eng = Scc.Engine.create () in
    let addr =
      Scc.Memmap.alloc (Scc.Engine.memmap eng) (Scc.Memmap.Private 0) ~bytes:64
    in
    for i = 0 to nctx - 1 do
      ignore
        (Scc.Engine.spawn eng ~core:0 (fun api ->
             for r = 0 to rounds - 1 do
               api.Scc.Engine.compute 20;
               api.Scc.Engine.load (addr + (((i + r) mod 16) * 4)) ~bytes:4
             done))
    done;
    Scc.Engine.run eng;
    Scc.Engine.events eng
  in
  ignore (run ());
  let events, best = best_of ~iters run in
  {
    label = Printf.sprintf "raw-%d-ctx-compute-load" nctx;
    events;
    best_s = best;
    events_per_sec = float_of_int events /. best;
  }

let bench_sweep ~iters =
  ignore (Exp.Experiments.fig_6_1_data ~scale:Exp.Experiments.Quick ());
  let best = ref infinity in
  let configs = ref 0 in
  for _ = 1 to iters do
    let t0 = Unix.gettimeofday () in
    let rows = Exp.Experiments.fig_6_1_data ~scale:Exp.Experiments.Quick () in
    let dt = Unix.gettimeofday () -. t0 in
    configs := 2 * List.length rows;
    if dt < !best then best := dt
  done;
  (!configs, !best, float_of_int !configs /. !best)

type par_meas = {
  sim_jobs : int;
  lookahead_ps : int;
  windows : int;
  par_ceiling : float;
  domain_events : int array;
  pool_jobs : int;
  pool_speedup : float;
}

(* Parallel component: LBTS ceiling of a 32-rank RCCE run under an
   8-partition scheduler, plus the domain-pool speedup for independent
   simulations (four Pi runs, jobs=1 vs jobs=pool). *)
let bench_parallel ~steps ~iters =
  let sim_jobs = 8 in
  let src = Exp.Csrc.pi ~nt:32 ~steps in
  let program = Cfront.Parser.program ~file:"pi.c" src in
  let translated, _report = Translate.Driver.translate_program program in
  let r = Cexec.Interp.run_rcce ~sim_jobs ~ncores:32 translated in
  let rep = Scc.Engine.par_report r.Cexec.Interp.engine in
  let pool_jobs = min 4 (Exp.Pool.default_jobs ()) in
  let sim () =
    ignore (Cexec.Interp.run_pthread program);
    ()
  in
  let thunks = List.init 4 (fun _ -> sim) in
  let time jobs =
    let best = ref infinity in
    for _ = 1 to iters do
      let t0 = Unix.gettimeofday () in
      Exp.Pool.map_fixed ~jobs thunks |> ignore;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let seq_s = time 1 in
  let par_s = time pool_jobs in
  {
    sim_jobs = Scc.Engine.n_partitions r.Cexec.Interp.engine;
    lookahead_ps = rep.Scc.Engine.lookahead_ps;
    windows = rep.Scc.Engine.windows;
    par_ceiling = Scc.Engine.par_ceiling rep;
    domain_events = rep.Scc.Engine.domain_events;
    pool_jobs;
    pool_speedup = (if par_s > 0. then seq_s /. par_s else 1.);
  }

let meas_json m =
  Printf.sprintf
    "{\"label\": %S, \"events\": %d, \"best_s\": %.6f, \"events_per_sec\": \
     %.0f}"
    m.label m.events m.best_s m.events_per_sec

let json_of ~mode ~compiled ~tree ~moderate ~raw
    ~sweep:(configs, sweep_s, cps) ~par =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hsmc-sim-bench-2\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": %S,\n" mode);
  Buffer.add_string b "  \"components\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"interp_compiled\": %s,\n" (meas_json compiled));
  Buffer.add_string b
    (Printf.sprintf "    \"interp_tree\": %s,\n" (meas_json tree));
  Buffer.add_string b
    (Printf.sprintf "    \"interp_compiled_8\": %s,\n" (meas_json moderate));
  Buffer.add_string b
    (Printf.sprintf "    \"sched_raw\": %s,\n" (meas_json raw));
  Buffer.add_string b
    (Printf.sprintf
       "    \"sweep\": {\"label\": \"fig-6.1-quick\", \"configs\": %d, \
        \"best_s\": %.6f, \"configs_per_sec\": %.2f},\n"
       configs sweep_s cps);
  Buffer.add_string b
    (Printf.sprintf
       "    \"parallel\": {\"sim_jobs\": %d, \"lookahead_ps\": %d, \
        \"windows\": %d, \"par_ceiling\": %.2f, \"domain_events\": [%s], \
        \"pool_jobs\": %d, \"pool_speedup\": %.2f}\n"
       par.sim_jobs par.lookahead_ps par.windows par.par_ceiling
       (String.concat ", "
          (Array.to_list (Array.map string_of_int par.domain_events)))
       par.pool_jobs par.pool_speedup);
  Buffer.add_string b "  },\n";
  Buffer.add_string b
    (Printf.sprintf "  \"compile_speedup\": %.2f,\n"
       (compiled.events_per_sec /. tree.events_per_sec));
  Buffer.add_string b
    (Printf.sprintf "  \"headline_events_per_sec\": %.0f\n"
       compiled.events_per_sec);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Minimal field scan — the file is our own fixed format.  Finds the
   number following ["key": ] anywhere in the file. *)
let scan_number s key =
  let key = Printf.sprintf "\"%s\":" key in
  let kl = String.length key in
  let sl = String.length s in
  let rec find i =
    if i + kl > sl then None
    else if String.sub s i kl = key then Some (i + kl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
      let k = ref j in
      while
        !k < sl
        && (s.[!k] = ' ' || s.[!k] = '.' || s.[!k] = '-'
           || (s.[!k] >= '0' && s.[!k] <= '9'))
      do
        incr k
      done;
      float_of_string_opt (String.trim (String.sub s j (!k - j)))

let read_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Per-component figures from a baseline file.  The old schema-1 format
   only carried the headline; missing components are skipped, so a check
   against an old baseline still gates the headline. *)
let baseline_figures s =
  let after key sub = scan_number s sub |> Option.map (fun v -> (key, v)) in
  (* events_per_sec inside one component object: scan from the component
     key onwards *)
  let component name =
    let key = Printf.sprintf "\"%s\":" name in
    let kl = String.length key in
    let sl = String.length s in
    let rec find i =
      if i + kl > sl then None
      else if String.sub s i kl = key then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
        scan_number (String.sub s i (min (sl - i) 400)) "events_per_sec"
        |> Option.map (fun v -> (name, v))
  in
  List.filter_map
    (fun x -> x)
    [
      after "headline" "headline_events_per_sec";
      component "interp_tree";
      component "interp_compiled_8";
      component "sched_raw";
      after "sweep_configs_per_sec" "configs_per_sec";
    ]

let () =
  let quick = ref false in
  let out = ref "BENCH_sim.json" in
  let check = ref None in
  let max_regress = ref 0.30 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: f :: rest ->
        out := f;
        parse rest
    | "--check" :: f :: rest ->
        check := Some f;
        parse rest
    | "--max-regress" :: f :: rest -> (
        match float_of_string_opt f with
        | Some v when v > 0. && v < 1. ->
            max_regress := v;
            parse rest
        | _ ->
            Printf.eprintf
              "sim_bench: --max-regress wants a fraction in (0, 1), got %S\n"
              f;
            exit 64)
    | a :: _ ->
        Printf.eprintf
          "sim_bench: unknown argument %S\n\
           usage: sim_bench [--quick] [--out FILE] [--check BASELINE] \
           [--max-regress F]\n"
          a;
        exit 64
  in
  parse (List.tl (Array.to_list Sys.argv));
  let steps = if !quick then 16384 else 65536 in
  let iters = if !quick then 3 else 10 in
  let compiled =
    bench_pi ~label:"pi-pthread-1024-threads" ~interp:Cexec.Interp.Compiled
      ~nt:1024 ~steps ~iters
  in
  let tree =
    bench_pi ~label:"pi-pthread-1024-threads-tree" ~interp:Cexec.Interp.Tree
      ~nt:1024 ~steps ~iters
  in
  let moderate =
    bench_pi ~label:"pi-pthread-8-threads" ~interp:Cexec.Interp.Compiled ~nt:8
      ~steps ~iters
  in
  let raw =
    bench_sched_raw ~nctx:256
      ~rounds:(if !quick then 128 else 512)
      ~iters
  in
  let sweep = bench_sweep ~iters:(if !quick then 2 else 5) in
  let par = bench_parallel ~steps ~iters:(if !quick then 2 else 3) in
  let json =
    json_of
      ~mode:(if !quick then "quick" else "full")
      ~compiled ~tree ~moderate ~raw ~sweep ~par
  in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  print_string json;
  match !check with
  | None -> ()
  | Some baseline_file ->
      let base = baseline_figures (read_file baseline_file) in
      if base = [] then begin
        Printf.eprintf "sim_bench: cannot read baseline %s\n" baseline_file;
        exit 65
      end
      else begin
        let current =
          [
            ("headline", compiled.events_per_sec);
            ("interp_tree", tree.events_per_sec);
            ("interp_compiled_8", moderate.events_per_sec);
            ("sched_raw", raw.events_per_sec);
            ("sweep_configs_per_sec",
             let _, _, cps = sweep in
             cps);
          ]
        in
        (* every compared component gets a verdict in the one run — a
           multi-component regression shows every culprit at once, never
           just the first *)
        let verdicts =
          List.filter_map
            (fun (key, basev) ->
              match List.assoc_opt key current with
              | None -> None
              | Some now ->
                  let floor = (1. -. !max_regress) *. basev in
                  Some (key, basev, now, floor, now >= floor))
            base
        in
        let regressed =
          List.filter (fun (_, _, _, _, ok) -> not ok) verdicts
        in
        let out = if regressed = [] then stdout else stderr in
        Printf.fprintf out
          "sim_bench: %s: headline %.0f events/s vs baseline (max regress \
           %.0f%%)\n"
          (if regressed = [] then "ok" else "REGRESSION")
          compiled.events_per_sec
          (100. *. !max_regress);
        List.iter
          (fun (key, basev, now, floor, ok) ->
            Printf.fprintf out
              "  %-22s %12.0f  (baseline %12.0f, floor %12.0f)  %s\n" key
              now basev floor
              (if ok then "ok" else "REGRESSED"))
          verdicts;
        if regressed <> [] then begin
          let r k =
            List.exists (fun (key, _, _, _, _) -> key = k) regressed
          in
          let attribution =
            if r "sched_raw" then
              "engine/scheduler regression (raw effect path slowed down)"
            else if r "headline" && not (r "interp_tree") then
              "compiled-interpreter regression (tree reference held steady)"
            else if r "headline" && r "interp_tree" then
              "interpreter-wide regression (both modes slowed; engine raw \
               path held)"
            else "see component list above"
          in
          Printf.eprintf "sim_bench: attribution: %s\n" attribution;
          exit 1
        end
      end
