(* sim_bench — simulator throughput, written to BENCH_sim.json.

   Two metrics:

   - single-run events/s: the scheduler's event rate interpreting the Pi
     Pthread program, at a many-context count (1024 threads on 48 cores,
     where scheduling cost dominates) and at a moderate one (8 threads,
     where interpretation dominates).  "Events" are scheduler resumes
     (Scc.Engine.events), a pure function of the simulated schedule, so
     the rate is comparable across implementations that produce the same
     results.

   - swept configs/s: the Figure 6.1 sweep (each benchmark in Pthread
     baseline and translated RCCE form) end to end.

   Each measurement is best-of-N wall time: the simulator is
   deterministic, so the minimum is the least-noise estimate.

     sim_bench [--quick] [--out FILE] [--check BASELINE] [--max-regress F]

   --check compares the headline events/s against a previously written
   BENCH_sim.json and exits 1 on a regression of more than --max-regress
   (a fraction, default 0.30) — the CI gate.  The observability CI step
   re-runs the gate at 0.05 to hold the instrumented-but-disabled
   simulator within 5% of the committed baseline. *)

type meas = {
  label : string;
  events : int;
  best_s : float;
  events_per_sec : float;
}

let bench_pi ~label ~nt ~steps ~iters =
  let src = Exp.Csrc.pi ~nt ~steps in
  let program = Cfront.Parser.program ~file:"pi.c" src in
  ignore (Cexec.Interp.run_pthread program);
  let best = ref infinity in
  let events = ref 0 in
  for _ = 1 to iters do
    let t0 = Unix.gettimeofday () in
    let r = Cexec.Interp.run_pthread program in
    let dt = Unix.gettimeofday () -. t0 in
    events := Scc.Engine.events r.Cexec.Interp.engine;
    if dt < !best then best := dt
  done;
  {
    label;
    events = !events;
    best_s = !best;
    events_per_sec = float_of_int !events /. !best;
  }

let bench_sweep ~iters =
  ignore (Exp.Experiments.fig_6_1_data ~scale:Exp.Experiments.Quick ());
  let best = ref infinity in
  let configs = ref 0 in
  for _ = 1 to iters do
    let t0 = Unix.gettimeofday () in
    let rows =
      Exp.Experiments.fig_6_1_data ~scale:Exp.Experiments.Quick ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    configs := 2 * List.length rows;
    if dt < !best then best := dt
  done;
  (!configs, !best, float_of_int !configs /. !best)

let json_of ~mode ~singles ~sweep:(configs, sweep_s, cps) ~headline =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hsmc-sim-bench-1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": %S,\n" mode);
  Buffer.add_string b "  \"single_run\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"label\": %S, \"events\": %d, \"best_s\": %.6f, \
            \"events_per_sec\": %.0f}%s\n"
           m.label m.events m.best_s m.events_per_sec
           (if i = List.length singles - 1 then "" else ",")))
    singles;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"sweep\": {\"label\": \"fig-6.1-quick\", \"configs\": %d, \
        \"best_s\": %.6f, \"configs_per_sec\": %.2f},\n"
       configs sweep_s cps);
  Buffer.add_string b
    (Printf.sprintf "  \"headline_events_per_sec\": %.0f\n" headline);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Minimal field scan — the file is our own fixed format. *)
let headline_of_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let key = "\"headline_events_per_sec\":" in
  match String.index_opt s '}' with
  | None -> None
  | Some _ -> (
      let rec find i =
        if i + String.length key > String.length s then None
        else if String.sub s i (String.length key) = key then
          Some (i + String.length key)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some j ->
          let k = ref j in
          while
            !k < String.length s
            && (s.[!k] = ' ' || s.[!k] = '.' || s.[!k] = '-'
               || (s.[!k] >= '0' && s.[!k] <= '9'))
          do
            incr k
          done;
          float_of_string_opt (String.trim (String.sub s j (!k - j))))

let () =
  let quick = ref false in
  let out = ref "BENCH_sim.json" in
  let check = ref None in
  let max_regress = ref 0.30 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: f :: rest ->
        out := f;
        parse rest
    | "--check" :: f :: rest ->
        check := Some f;
        parse rest
    | "--max-regress" :: f :: rest -> (
        match float_of_string_opt f with
        | Some v when v > 0. && v < 1. ->
            max_regress := v;
            parse rest
        | _ ->
            Printf.eprintf
              "sim_bench: --max-regress wants a fraction in (0, 1), got %S\n"
              f;
            exit 64)
    | a :: _ ->
        Printf.eprintf
          "sim_bench: unknown argument %S\n\
           usage: sim_bench [--quick] [--out FILE] [--check BASELINE] \
           [--max-regress F]\n"
          a;
        exit 64
  in
  parse (List.tl (Array.to_list Sys.argv));
  let steps = if !quick then 16384 else 65536 in
  let iters = if !quick then 3 else 10 in
  let many =
    bench_pi ~label:"pi-pthread-1024-threads" ~nt:1024 ~steps ~iters
  in
  let moderate = bench_pi ~label:"pi-pthread-8-threads" ~nt:8 ~steps ~iters in
  let sweep = bench_sweep ~iters:(if !quick then 2 else 5) in
  let headline = many.events_per_sec in
  let json =
    json_of
      ~mode:(if !quick then "quick" else "full")
      ~singles:[ many; moderate ] ~sweep ~headline
  in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  print_string json;
  match !check with
  | None -> ()
  | Some baseline_file -> (
      match headline_of_file baseline_file with
      | None ->
          Printf.eprintf "sim_bench: cannot read baseline %s\n" baseline_file;
          exit 65
      | Some base ->
          let floor = (1. -. !max_regress) *. base in
          if headline < floor then begin
            Printf.eprintf
              "sim_bench: REGRESSION: %.0f events/s is more than %.0f%% \
               below the committed baseline %.0f (floor %.0f)\n"
              headline (100. *. !max_regress) base floor;
            exit 1
          end
          else
            Printf.printf
              "sim_bench: ok: %.0f events/s vs baseline %.0f (floor %.0f, \
               max regress %.0f%%)\n"
              headline base floor (100. *. !max_regress))
