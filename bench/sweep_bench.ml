(* sweep_bench — throughput of the synthetic characterization sweep.
   Written to BENCH_sweep.json.

   Runs a prefix of the lib/synth quick grid sequentially (jobs=1: the
   deterministic reference path), times it, and reports configs/second
   plus the mean greedy-vs-all-off-chip speedup over the measured
   configs — the number the sweep exists to chart.

     sweep_bench [--quick] [--out FILE] [--check BASELINE] [--min-rate F]

   --check compares the headline configs/second against a previously
   written BENCH_sweep.json and exits 1 when the current rate falls
   below max(--min-rate, 0.5 x baseline) — a generous floor because the
   CI containers are noisy, but enough to catch an accidental
   super-linear slowdown in the per-config engine work (default
   --min-rate 1.0 configs/s). *)

let () =
  let quick = ref false in
  let out = ref "BENCH_sweep.json" in
  let check = ref None in
  let min_rate = ref 1.0 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: f :: rest ->
        out := f;
        parse rest
    | "--check" :: f :: rest ->
        check := Some f;
        parse rest
    | "--min-rate" :: f :: rest -> (
        match float_of_string_opt f with
        | Some v when v > 0.0 ->
            min_rate := v;
            parse rest
        | _ ->
            Printf.eprintf
              "sweep_bench: --min-rate wants a rate > 0, got %S\n" f;
            exit 64)
    | a :: _ ->
        Printf.eprintf
          "sweep_bench: unknown argument %S\n\
           usage: sweep_bench [--quick] [--out FILE] [--check BASELINE] \
           [--min-rate F]\n"
          a;
        exit 64
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n_configs = if !quick then 24 else 96 in
  let specs =
    List.filteri (fun i _ -> i < n_configs) (Synth.Spec.grid Synth.Spec.Quick)
  in
  let t0 = Unix.gettimeofday () in
  let groups = List.map Synth.Sweep.rows_of_spec specs in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let rate = float_of_int (List.length specs) /. elapsed_s in
  let ratios =
    List.filter_map
      (fun rows ->
        match
          ( Synth.Sweep.find_measurement rows Synth.Kernel.All_dram,
            Synth.Sweep.find_measurement rows Synth.Kernel.Greedy )
        with
        | Some d, Some g
          when g.Synth.Sweep.r_m.Synth.Kernel.m_elapsed_ps > 0 ->
            Some
              (float_of_int d.Synth.Sweep.r_m.Synth.Kernel.m_elapsed_ps
              /. float_of_int g.Synth.Sweep.r_m.Synth.Kernel.m_elapsed_ps)
        | _ -> None)
      groups
  in
  let mean_speedup =
    List.fold_left ( +. ) 0.0 ratios
    /. float_of_int (max 1 (List.length ratios))
  in
  let losses = List.filter_map Synth.Sweep.loss_of_rows groups in
  let unverified =
    List.length
      (List.filter
         (fun r -> not r.Synth.Sweep.r_m.Synth.Kernel.m_verified)
         (List.concat groups))
  in
  if unverified > 0 then begin
    Printf.eprintf "sweep_bench: %d rows FAILED verification\n" unverified;
    exit 1
  end;
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"hsmc-sweep-bench-1\",\n\
      \  \"mode\": %S,\n\
      \  \"configs\": %d,\n\
      \  \"policies\": %d,\n\
      \  \"elapsed_s\": %.3f,\n\
      \  \"mean_greedy_speedup\": %.3f,\n\
      \  \"losses\": %d,\n\
      \  \"headline_configs_per_sec\": %.3f\n\
       }\n"
      (if !quick then "quick" else "full")
      (List.length specs)
      (List.length Synth.Kernel.policies)
      elapsed_s mean_speedup (List.length losses) rate
  in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  print_string json;
  match !check with
  | None -> ()
  | Some baseline_file -> (
      (* minimal field scan, same shape as opt_bench's *)
      let baseline =
        let ic = open_in baseline_file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        let key = "\"headline_configs_per_sec\":" in
        let rec find i =
          if i + String.length key > String.length s then None
          else if String.sub s i (String.length key) = key then
            Some (i + String.length key)
          else find (i + 1)
        in
        match find 0 with
        | None -> None
        | Some j ->
            let k = ref j in
            while
              !k < String.length s
              && (s.[!k] = ' ' || s.[!k] = '.' || s.[!k] = '-'
                 || (s.[!k] >= '0' && s.[!k] <= '9'))
            do
              incr k
            done;
            float_of_string_opt (String.trim (String.sub s j (!k - j)))
      in
      match baseline with
      | None ->
          Printf.eprintf "sweep_bench: cannot read baseline %s\n"
            baseline_file;
          exit 65
      | Some base ->
          let floor = Float.max !min_rate (0.5 *. base) in
          if rate < floor then begin
            Printf.eprintf
              "sweep_bench: REGRESSION: %.3f configs/s is below the floor \
               %.3f (baseline %.3f, min %.2f)\n"
              rate floor base !min_rate;
            exit 1
          end
          else
            Printf.printf
              "sweep_bench: ok: %.3f configs/s vs baseline %.3f (floor \
               %.3f)\n"
              rate base floor)
