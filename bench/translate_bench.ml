(* Translation-throughput benchmark: the full session path — parse,
   demand every Stage 1-4 fact, run the Stage-5 passes with structural
   verification — over the generated benchmark sources, repeated until a
   fixed wall-clock budget is spent.

     dune exec bench/translate_bench.exe [-- OUT.json]

   writes BENCH_translate.json:
     { "wall_s": ..., "programs_per_s": ..., "facts_computed": ... }
*)

let nt = 8

let sources =
  [
    ("pi", Exp.Csrc.pi ~nt ~steps:4096);
    ("primes", Exp.Csrc.primes ~nt ~limit:2_000);
    ("sum35", Exp.Csrc.sum35 ~nt ~bound:20_000);
    ("dot", Exp.Csrc.dot ~nt ~n:4096);
    ("stream", Exp.Csrc.stream ~nt ~n:4096);
    ("lu", Exp.Csrc.lu ~nt ~n:32);
    ("mutex_counter", Exp.Csrc.mutex_counter ~nt ~iters:1_000);
    ("example41", Exp.Example41.source);
  ]

let translate_one (name, src) =
  let file = name ^ ".c" in
  let session = Session.create ~file (Cfront.Parser.program ~file src) in
  let _translated, _report = Translate.Driver.translate_session session in
  Session.facts_computed session

let budget_s = 2.0

let () =
  let out =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> "BENCH_translate.json"
  in
  (* warm-up: fault in the whole path once before the clock starts *)
  ignore (List.fold_left (fun acc s -> acc + translate_one s) 0 sources);
  let started = Unix.gettimeofday () in
  let programs = ref 0 in
  let facts = ref 0 in
  while Unix.gettimeofday () -. started < budget_s do
    List.iter
      (fun s ->
        facts := !facts + translate_one s;
        incr programs)
      sources
  done;
  let wall_s = Unix.gettimeofday () -. started in
  let json =
    Printf.sprintf
      "{\n  \"wall_s\": %.3f,\n  \"programs_per_s\": %.1f,\n  \
       \"facts_computed\": %d\n}\n"
      wall_s
      (float_of_int !programs /. wall_s)
      !facts
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf "translated %d programs in %.2f s (%.1f programs/s, %d facts) -> %s\n"
    !programs wall_s
    (float_of_int !programs /. wall_s)
    !facts out
