(* conform: differential conformance harness for the Pthread -> RCCE
   translator.

   Generates seeded, data-race-free Pthread programs, runs each on the
   single-core pthread baseline and (translated) on the SCC simulator,
   compares the observable behaviours, and delta-debugs any diverging
   program to a minimal counterexample.

     conform --seed 42 --count 200
     conform --seed 7 --count 40 --sabotage drop-pass:mutex-convert \
             --expect-diverge
     conform replay test/conformance/*.c
     conform emit --seed 1 --count 10 --dir test/conformance *)

open Cmdliner

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let directives_of_spec ~expect (sp : Conform.Gen.spec) =
  { Conform.Harness.d_cores = sp.Conform.Gen.run_cores;
    d_many_to_one = sp.Conform.Gen.many_to_one;
    d_optimize = sp.Conform.Gen.optimize;
    d_expect = expect }

let save_failure dir (o : Conform.Harness.outcome) =
  ensure_dir dir;
  let kind = Conform.Oracle.kind_of_failure o.Conform.Harness.o_failure in
  let spec_line = Conform.Gen.describe o.o_spec in
  let d =
    directives_of_spec ~expect:(Conform.Harness.Expect_diverge kind) o.o_spec
  in
  let note = Conform.Oracle.failure_to_string o.o_failure in
  let min_path = Filename.concat dir (Printf.sprintf "seed%d.min.c" o.o_seed) in
  let orig_path =
    Filename.concat dir (Printf.sprintf "seed%d.orig.c" o.o_seed)
  in
  write_file min_path
    (Conform.Harness.corpus_file ~seed:o.o_seed ~note ~spec_line d o.o_shrunk);
  write_file orig_path
    (Conform.Harness.corpus_file ~seed:o.o_seed ~note ~spec_line d o.o_program);
  min_path

let report_failure ~save_dir (o : Conform.Harness.outcome) =
  Printf.printf "FAIL seed %d (%s)\n  %s\n" o.Conform.Harness.o_seed
    (Conform.Gen.describe o.o_spec)
    (Conform.Oracle.failure_to_string o.o_failure);
  Printf.printf "  shrunk from %d to %d (size metric, %d oracle evals)\n"
    (Conform.Shrink.size o.o_program)
    (Conform.Shrink.size o.o_shrunk)
    o.o_evals;
  (match save_dir with
  | Some dir ->
      let path = save_failure dir o in
      Printf.printf "  saved counterexample to %s\n" path
  | None -> ());
  Printf.printf "  reproduce with: conform --seed %d --count 1\n" o.o_seed;
  print_string "  --- minimized counterexample ---\n";
  print_string (Conform.Gen.source_of_program o.o_shrunk);
  print_string "  --------------------------------\n"

(* Soundness stressor for the bounds verifier: on every generated
   program, analyze the translated RCCE code and cross-check the
   verifier's verdict against the dual-execution oracle.  An analyzer
   that claims every access is proved in bounds while the converted
   execution crashes or diverges is unsound — that is the one outcome
   this mode fails on.  With --sabotage shrink-shmalloc every
   multi-element region is under-allocated by one, so a sound verifier
   must refuse to prove those programs. *)
let verify_run ~seed ~count ~sabotage ~verbose =
  let unsound = ref 0
  and flagged = ref 0
  and proved = ref 0
  and skipped = ref 0 in
  for i = 0 to count - 1 do
    let gseed = seed + i in
    let spec, program = Conform.Gen.generate ~seed:gseed in
    let cfg = Conform.Oracle.config_of_spec spec in
    let cfg =
      match sabotage with
      | None -> cfg
      | Some s -> Conform.Harness.apply_sabotage s cfg
    in
    match Conform.Oracle.translate cfg program with
    | exception _ ->
        incr skipped;
        if verbose then
          Printf.printf "[%d] seed %d: translation failed, skipped\n%!" i
            gseed
    | translated ->
        let summary =
          Absint.analyze
            ~ncores:cfg.Conform.Oracle.options.Translate.Pass.ncores
            translated
        in
        let safe = Absint.Oblig.all_proved summary in
        let oracle_crashes =
          match Conform.Oracle.check cfg program with
          | Conform.Oracle.Agree -> false
          | Conform.Oracle.Diverge
              (Conform.Oracle.Converted_error _
              | Conform.Oracle.Output_mismatch _
              | Conform.Oracle.Exit_mismatch _) -> true
          | Conform.Oracle.Diverge _ -> false
        in
        if safe && oracle_crashes then begin
          incr unsound;
          Printf.printf
            "UNSOUND seed %d (%s): verifier proved every access in \
             bounds, but the converted execution diverges\n"
            gseed (Conform.Gen.describe spec);
          print_string (Conform.Gen.source_of_program translated)
        end
        else begin
          if safe then incr proved else incr flagged;
          if verbose then
            Printf.printf "[%d] seed %d: %s\n%!" i gseed
              (if safe then "all proved"
               else
                 Printf.sprintf "%d obligation(s) not discharged"
                   (List.length (Absint.Oblig.unproved summary)))
        end
  done;
  Printf.printf
    "%d program(s): %d fully proved, %d flagged, %d skipped, %d UNSOUND%s\n"
    count !proved !flagged !skipped !unsound
    (match sabotage with
    | Some s -> " [sabotage: " ^ Conform.Harness.sabotage_to_string s ^ "]"
    | None -> "");
  if !unsound > 0 then 1 else 0

(* Differential execution-mode check: the closure-compiled interpreter
   and the partitioned scheduler must be invisible — byte-identical
   printf output, exit values and final simulated time against the
   tree-walking sequential reference, on both the Pthread baseline and
   (when the program translates) the converted RCCE execution. *)
let diff_modes_run ~seed ~count ~sim_jobs ~verbose =
  let fails = ref 0 in
  let obs r =
    ( r.Cexec.Interp.output,
      List.map Cexec.Value.to_string r.Cexec.Interp.exit_values,
      r.Cexec.Interp.elapsed_ps )
  in
  let fail gseed what =
    incr fails;
    Printf.printf "DIFF seed %d: %s\n%!" gseed what
  in
  for i = 0 to count - 1 do
    let gseed = seed + i in
    let spec, program = Conform.Gen.generate ~seed:gseed in
    let cfg = Conform.Oracle.config_of_spec spec in
    (match
       let tree =
         Cexec.Interp.run_pthread ~interp:Cexec.Interp.Tree program
       in
       let compiled =
         Cexec.Interp.run_pthread ~interp:Cexec.Interp.Compiled program
       in
       let parts =
         Cexec.Interp.run_pthread ~interp:Cexec.Interp.Compiled ~sim_jobs
           program
       in
       (obs tree, obs compiled, obs parts)
     with
    | exception e ->
        fail gseed ("pthread run raised " ^ Printexc.to_string e)
    | t, c, p ->
        if c <> t then fail gseed "pthread: compiled differs from tree";
        if p <> t then
          fail gseed "pthread: partitioned scheduler differs from sequential");
    (match Conform.Oracle.translate cfg program with
    | exception _ -> ()  (* untranslatable configs are the oracle's job *)
    | translated -> (
        let ncores = cfg.Conform.Oracle.options.Translate.Pass.ncores in
        match
          let tree =
            Cexec.Interp.run_rcce ~interp:Cexec.Interp.Tree ~ncores
              translated
          in
          let parts =
            Cexec.Interp.run_rcce ~interp:Cexec.Interp.Compiled ~sim_jobs
              ~ncores translated
          in
          (obs tree, obs parts)
        with
        | exception e ->
            fail gseed ("rcce run raised " ^ Printexc.to_string e)
        | t, p ->
            if p <> t then
              fail gseed
                "rcce: compiled+partitioned differs from tree+sequential"));
    if verbose then Printf.printf "[%d] seed %d: modes agree\n%!" i gseed
    else if (i + 1) mod 25 = 0 then
      Printf.printf "  ... %d programs checked\n%!" (i + 1)
  done;
  Printf.printf
    "%d program(s) under tree/compiled x sequential/%d-partition: %d \
     mismatch(es)\n"
    count sim_jobs !fails;
  if !fails > 0 then 1 else 0

(* Synthetic-workload stressor: every config of the synth sweep grid
   (lib/synth) emits a deterministic Pthread program; each runs through
   the dual-execution oracle with the optimizer forced on — the same
   programs whose direct-route twins the characterization sweep times.
   Divergences delta-debug to minimal counterexamples like any other. *)
let synth_run ~quick ~count ~no_shrink ~save_dir ~verbose =
  let grid = if quick then Synth.Spec.Quick else Synth.Spec.Full in
  let specs = Synth.Spec.grid grid in
  let total_grid = List.length specs in
  let specs = List.filteri (fun i _ -> i < count) specs in
  let fails = ref 0 in
  List.iteri
    (fun i sp ->
      let program = Synth.Emit.program_of_spec sp in
      let cfg = Synth.Emit.oracle_config sp in
      (match Conform.Oracle.check cfg program with
      | Conform.Oracle.Agree ->
          if verbose then
            Printf.printf "[%d] %s: agree\n%!" i (Synth.Spec.describe sp)
      | Conform.Oracle.Diverge f ->
          incr fails;
          let kind = Conform.Oracle.kind_of_failure f in
          let budget = if no_shrink then 0 else if quick then 60 else 250 in
          let shrunk, evals =
            Conform.Shrink.shrink ~budget cfg ~kind program
          in
          Printf.printf "FAIL %s\n  %s\n  shrunk from %d to %d (%d oracle \
                         evals)\n"
            (Synth.Spec.describe sp)
            (Conform.Oracle.failure_to_string f)
            (Conform.Shrink.size program)
            (Conform.Shrink.size shrunk) evals;
          (match save_dir with
          | Some dir ->
              ensure_dir dir;
              let base =
                Filename.concat dir
                  (Printf.sprintf "synth_seed%d" sp.Synth.Spec.seed)
              in
              let header =
                Printf.sprintf "// synth spec: %s\n// failure: %s\n"
                  (Synth.Spec.describe sp)
                  (Conform.Oracle.failure_to_string f)
              in
              write_file (base ^ ".min.c")
                (header ^ Conform.Gen.source_of_program shrunk);
              write_file (base ^ ".orig.c")
                (header ^ Conform.Gen.source_of_program program);
              Printf.printf "  saved counterexample to %s.min.c\n" base
          | None -> ());
          print_string "  --- minimized counterexample ---\n";
          print_string (Conform.Gen.source_of_program shrunk);
          print_string "  --------------------------------\n");
      if (not verbose) && (i + 1) mod 25 = 0 then
        Printf.printf "  ... %d configs checked\n%!" (i + 1))
    specs;
  Printf.printf
    "%d synth config(s) of the %s grid (%d total), optimizer on: %d \
     divergence(s)\n"
    (List.length specs)
    (Synth.Spec.grid_to_string grid)
    total_grid !fails;
  if !fails > 0 then 1 else 0

let run_cmd seed count quick no_shrink save_dir sabotage expect_diverge
    verify diff_modes synth sim_jobs optimize verbose =
  if diff_modes then exit (diff_modes_run ~seed ~count ~sim_jobs ~verbose);
  if synth then
    exit (synth_run ~quick ~count ~no_shrink ~save_dir ~verbose);
  let sabotage =
    match sabotage with
    | None -> None
    | Some s -> (
        match Conform.Harness.sabotage_of_string s with
        | Ok s -> Some s
        | Error e ->
            prerr_endline ("conform: " ^ e);
            exit 2)
  in
  if verify then begin
    (match sabotage with
    | Some (Conform.Harness.Drop_pass _) ->
        prerr_endline
          "conform: --verify only composes with --sabotage \
           shrink-shmalloc (drop-pass divergences are about thread \
           multiplicity, not bounds)";
        exit 2
    | _ -> ());
    exit (verify_run ~seed ~count ~sabotage ~verbose)
  end;
  let shrink_budget =
    if no_shrink then 0 else if quick then 60 else 250
  in
  let progress ~index ~seed verdict =
    if verbose then
      Printf.printf "[%d] seed %d: %s\n%!" index seed
        (match verdict with
        | Conform.Oracle.Agree -> "agree"
        | Conform.Oracle.Diverge f -> Conform.Oracle.failure_to_string f)
    else if (index + 1) mod 25 = 0 then
      Printf.printf "  ... %d programs checked\n%!" (index + 1)
  in
  let summary =
    Conform.Harness.run ~progress ~shrink_budget ?sabotage ~optimize ~seed
      ~count ()
  in
  let nfail = List.length summary.Conform.Harness.s_failures in
  List.iter (report_failure ~save_dir) summary.s_failures;
  Printf.printf "%d program(s), %d agreement(s), %d divergence(s)%s\n"
    summary.s_total (summary.s_total - nfail) nfail
    (match sabotage with
    | Some s -> " [sabotage: " ^ Conform.Harness.sabotage_to_string s ^ "]"
    | None -> "");
  if expect_diverge then
    if nfail > 0 then begin
      Printf.printf
        "killing-mutation check passed: the harness caught the sabotaged \
         pipeline\n";
      0
    end
    else begin
      Printf.printf
        "killing-mutation check FAILED: no divergence reported for a broken \
         pipeline\n";
      1
    end
  else if nfail > 0 then 1
  else 0

let replay_cmd optimize files =
  let failed = ref 0 in
  List.iter
    (fun file ->
      let ic = open_in file in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      match Conform.Harness.replay ~force_optimize:optimize ~file contents with
      | Ok () -> Printf.printf "ok   %s\n" file
      | Error e ->
          incr failed;
          Printf.printf "FAIL %s\n  %s\n" file e)
    files;
  Printf.printf "%d file(s), %d failure(s)\n" (List.length files) !failed;
  if !failed > 0 then 1 else 0

let emit_cmd seed count dir =
  ensure_dir dir;
  for i = 0 to count - 1 do
    let gseed = seed + i in
    let spec, program = Conform.Gen.generate ~seed:gseed in
    let cfg = Conform.Oracle.config_of_spec spec in
    let expect =
      match Conform.Oracle.check cfg program with
      | Conform.Oracle.Agree -> Conform.Harness.Expect_agree
      | Conform.Oracle.Diverge f ->
          Conform.Harness.Expect_diverge (Conform.Oracle.kind_of_failure f)
    in
    let d = directives_of_spec ~expect spec in
    let path = Filename.concat dir (Printf.sprintf "gen_seed%d.c" gseed) in
    write_file path
      (Conform.Harness.corpus_file ~seed:gseed
         ~spec_line:(Conform.Gen.describe spec) d program);
    Printf.printf "wrote %s (%s)\n" path (Conform.Gen.describe spec)
  done;
  0

(* ---------------------------------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Base seed; program $(i,i) uses seed N+i.")

let count_arg =
  Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate and check.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller shrink budget, for CI.")

let no_shrink_arg =
  Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report divergences without minimizing them.")

let save_arg =
  Arg.(value & opt (some string) None
       & info [ "save-failures" ] ~docv:"DIR"
           ~doc:"Write original and shrunk counterexamples to $(docv).")

let sabotage_arg =
  Arg.(value & opt (some string) None
       & info [ "sabotage" ] ~docv:"MUTATION"
           ~doc:"Deliberately break the pipeline (drop-pass:$(i,name)) to \
                 verify the harness catches it.")

let expect_diverge_arg =
  Arg.(value & flag
       & info [ "expect-diverge" ]
           ~doc:"Invert the exit status: succeed only if at least one \
                 divergence was found (killing-mutation check).")

let verify_arg =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Soundness stressor for the bounds verifier: analyze \
                 each translated program and fail if the verifier \
                 proves every access in bounds on a program whose \
                 converted execution the oracle can crash.  Composes \
                 with --sabotage shrink-shmalloc.")

let diff_modes_arg =
  Arg.(value & flag
       & info [ "diff-modes" ]
           ~doc:"Differential execution-mode check: every generated \
                 program must behave byte-identically under the \
                 tree-walking vs closure-compiled interpreter and the \
                 sequential vs partitioned (--sim-jobs) scheduler, on \
                 both the Pthread baseline and the RCCE translation.")

let synth_arg =
  Arg.(value & flag
       & info [ "synth" ]
           ~doc:"Synthetic-workload stressor: run the lib/synth sweep \
                 grid's emitted Pthread programs (first --count configs; \
                 --quick selects the CI grid) through the dual-execution \
                 oracle with the optimizer on, shrinking any divergence.")

let sim_jobs_arg =
  Arg.(value & opt int 8
       & info [ "sim-jobs" ] ~docv:"N"
           ~doc:"Scheduler partitions for the --diff-modes parallel runs.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"One line per program.")

let optimize_arg =
  Arg.(value & flag
       & info [ "O"; "optimize" ]
           ~doc:"Force the optimizer bundle (MPB caching, PRE, folding) \
                 on every configuration checked.")

let run_term =
  Term.(const run_cmd $ seed_arg $ count_arg $ quick_arg $ no_shrink_arg
        $ save_arg $ sabotage_arg $ expect_diverge_arg $ verify_arg
        $ diff_modes_arg $ synth_arg $ sim_jobs_arg $ optimize_arg
        $ verbose_arg)

let replay_cmd_v =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Corpus files (with // conform-* directives) to replay.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-run checked-in conformance corpus files")
    Term.(const replay_cmd $ optimize_arg $ files)

let emit_cmd_v =
  let dir =
    Arg.(value & opt string "test/conformance"
         & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Write generated programs as corpus files")
    Term.(const emit_cmd $ seed_arg $ count_arg $ dir)

let main =
  Cmd.group ~default:run_term
    (Cmd.info "conform" ~version:"1.0.0"
       ~doc:"Differential conformance testing of the Pthread->RCCE translator")
    [ replay_cmd_v; emit_cmd_v ]

let () = exit (Cmd.eval' main)
