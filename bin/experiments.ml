(* experiments — regenerate the paper's tables and figures.

     experiments all                  everything, full scale
     experiments all --quick          everything, small parameters
     experiments all --jobs 4         sections across a 4-domain pool
     experiments fig-6.1              one section

   Unknown sections exit with status 2.  Output is byte-identical for
   any --jobs value (fixed-order gather). *)

open Cmdliner

let run_cmd which quick jobs =
  let scale =
    if quick then Exp.Experiments.Quick else Exp.Experiments.Full
  in
  let jobs =
    match jobs with Some n -> max 1 n | None -> Exp.Pool.default_jobs ()
  in
  match Exp.Experiments.run_section ~scale ~jobs which with
  | Ok out -> print_string out
  | Error msg ->
      Printf.eprintf "experiments: %s\n" msg;
      exit 2

let which_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"SECTION")

let quick_arg =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Small parameters (seconds, not minutes).")

let jobs_arg =
  Arg.(value
       & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:
             "Run sections on $(docv) domains (default: the recommended \
              domain count).  The output is byte-identical for any N.")

let main =
  Cmd.v
    (Cmd.info "experiments" ~version:"1.0.0"
       ~doc:"Regenerate the paper's tables and figures")
    Term.(const run_cmd $ which_arg $ quick_arg $ jobs_arg)

let () = exit (Cmd.eval main)
