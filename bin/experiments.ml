(* experiments — regenerate the paper's tables and figures.

     experiments all                  everything, full scale
     experiments all --quick          everything, small parameters
     experiments all --jobs 4         sections across a 4-domain pool
     experiments fig-6.1              one section
     experiments sweep --quick --jobs 4 --jsonl rows.jsonl
                                      characterization sweep: synthetic
                                      configs x placement policies
     experiments sweep --quick --find-losses
                                      also report configs where greedy
                                      placement loses to a forced
                                      alternative
     experiments sweep --quick --limit 12
                                      only the first 12 grid configs

   Unknown sections exit with status 2.  Output is byte-identical for
   any --jobs value (fixed-order gather). *)

open Cmdliner

let run_cmd which quick jobs jsonl find_losses limit =
  let scale =
    if quick then Exp.Experiments.Quick else Exp.Experiments.Full
  in
  let jobs =
    match jobs with Some n -> max 1 n | None -> Exp.Pool.default_jobs ()
  in
  match which with
  | "sweep" ->
      let r = Exp.Experiments.run_sweep ~scale ~jobs ?limit () in
      (match jsonl with
      | None -> ()
      | Some file ->
          let oc = open_out file in
          output_string oc r.Exp.Experiments.sweep_jsonl;
          close_out oc);
      print_string r.Exp.Experiments.sweep_summary;
      if find_losses then
        print_string
          (Exp.Experiments.losses_report r.Exp.Experiments.sweep_losses)
  | which -> begin
      match Exp.Experiments.run_section ~scale ~jobs which with
      | Ok out -> print_string out
      | Error msg ->
          Printf.eprintf "experiments: %s\n" msg;
          exit 2
    end

let which_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"SECTION")

let quick_arg =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Small parameters (seconds, not minutes).")

let jobs_arg =
  Arg.(value
       & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:
             "Run sections on $(docv) domains (default: the recommended \
              domain count).  The output is byte-identical for any N.")

let jsonl_arg =
  Arg.(value
       & opt (some string) None
       & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"(sweep) Write one JSON line per (config, policy) to \
                 $(docv).")

let find_losses_arg =
  Arg.(value & flag
       & info [ "find-losses" ]
           ~doc:"(sweep) Report configs where the greedy Algorithm 3 \
                 placement is beaten by a forced alternative by more \
                 than 5%.")

let limit_arg =
  Arg.(value
       & opt (some int) None
       & info [ "limit" ] ~docv:"N"
           ~doc:"(sweep) Only the first $(docv) configs of the grid.")

let main =
  Cmd.v
    (Cmd.info "experiments" ~version:"1.0.0"
       ~doc:"Regenerate the paper's tables and figures")
    Term.(const run_cmd $ which_arg $ quick_arg $ jobs_arg $ jsonl_arg
          $ find_losses_arg $ limit_arg)

let () = exit (Cmd.eval main)
