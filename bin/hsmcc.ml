(* hsmcc — the Pthread-to-RCCE source-to-source translator CLI.

     hsmcc translate file.c            translated C on stdout
     hsmcc analyze file.c              Tables 4.1/4.2-style analysis report
     hsmcc check file.c                static data-race detection
     hsmcc run file.c --cores 8        interpret on the simulated SCC
*)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_die = function
  | Ok x -> x
  | Error msg ->
      prerr_endline ("hsmcc: " ^ msg);
      exit 1

let parse_source path =
  match Cfront.Parser.program ~file:path (read_file path) with
  | program -> Ok program
  | exception Cfront.Srcloc.Error (loc, msg) ->
      Error (Printf.sprintf "%s: %s" (Cfront.Srcloc.to_string loc) msg)
  | exception Sys_error msg -> Error msg

let options_of ~ncores ~capacity ~density ~sound_locals ~many_to_one
    ~optimize ~opt_pre ~opt_mpb_cache ~sharpen =
  {
    Translate.Pass.default_options with
    Translate.Pass.ncores;
    capacity;
    strategy =
      (if density then Partition.Partitioner.Access_density
       else Partition.Partitioner.Size_ascending);
    sound_locals;
    many_to_one;
    optimize;
    opt_pre;
    opt_mpb_cache;
    sharpen;
  }

let timings_format_of_flag fmt =
  match Session.timings_format_of_string fmt with
  | Some f -> f
  | None ->
      prerr_endline
        (Printf.sprintf "hsmcc: unknown timings format '%s' \
                         (expected table or json)" fmt);
      exit 2

(* Per-provider/per-pass instrumentation, on stderr so stdout stays the
   translated program. *)
let emit_timings session format =
  let rendered =
    match timings_format_of_flag format with
    | `Table -> Session.render_timings session
    | `Json -> Session.render_timings_json session
  in
  output_string stderr rendered

let diag_format_of_flag fmt =
  match Diag.format_of_string fmt with
  | Some f -> f
  | None ->
      prerr_endline
        (Printf.sprintf "hsmcc: unknown diagnostic format '%s' \
                         (expected gcc or json)" fmt);
      exit 2

(* The one diagnostic sink for `check` and `verify`: promote warnings
   under --warn-error, render in the requested format, print the gcc
   summary line, and return the process exit status — so the two
   commands cannot drift apart in exit-code or rendering behaviour. *)
let emit_diags ~out ~warn_error ~diag_format diags =
  let diags = if warn_error then Diag.promote_warnings diags else diags in
  let format = diag_format_of_flag diag_format in
  let status = Diag.emit ~format out diags in
  if format = Diag.Gcc then prerr_endline (Diag.summary diags);
  status

(* --- translate ------------------------------------------------------------ *)

let translate_cmd path ncores capacity density sound_locals many_to_one
    optimize opt_pre opt_mpb_cache sharpen race_check warn_error diag_format
    timings timings_format trace_out verbose =
  let program = or_die (parse_source path) in
  let options =
    options_of ~ncores ~capacity ~density ~sound_locals ~many_to_one
      ~optimize ~opt_pre ~opt_mpb_cache ~sharpen
  in
  (* one session carries the whole command: the race check below reuses
     the very facts the translator demanded — nothing runs twice *)
  let session = Session.create ~file:path ~options program in
  match Translate.Driver.translate_session session with
  | translated, report ->
      print_string (Cfront.Pretty.program translated);
      if verbose then begin
        prerr_endline "-- pass notes:";
        List.iter
          (fun n -> prerr_endline ("--   " ^ n))
          report.Translate.Driver.notes
      end;
      if timings || timings_format <> None then
        emit_timings session
          (Option.value timings_format ~default:"table");
      (match trace_out with
      | None -> ()
      | Some path ->
          (* merge-write: a later `simrun --trace` on the same file adds
             the simulator tracks to this compiler track *)
          Obs.Chrome.write_merge path (Session.chrome_events session);
          Printf.eprintf "-- trace: %d provider spans -> %s (Perfetto)\n"
            (Obs.Spans.length (Session.spans session))
            path);
      if race_check then begin
        let status =
          Diag.emit ~format:(diag_format_of_flag diag_format)
            ~werror:warn_error stderr report.Translate.Driver.diagnostics
        in
        if status <> 0 then exit status
      end
  | exception Translate.Driver.Error e ->
      prerr_endline ("hsmcc: " ^ Translate.Driver.error_to_string e);
      exit 1

(* --- check ---------------------------------------------------------------- *)

let check_cmd path warn_error diag_format =
  let program = or_die (parse_source path) in
  let session = Session.create ~file:path program in
  match Session.race_diags session with
  | diags -> exit (emit_diags ~out:stdout ~warn_error ~diag_format diags)
  | exception Cfront.Srcloc.Error (loc, msg) ->
      prerr_endline
        (Printf.sprintf "hsmcc: %s: %s" (Cfront.Srcloc.to_string loc) msg);
      exit 1

(* --- verify --------------------------------------------------------------- *)

(* Thread-modular abstract interpretation: prove every indexed access in
   bounds.  A Pthread input is verified twice — as written and after
   translation to RCCE, where every shmalloc access raises a proof
   obligation; an already-translated program (RCCE_APP entry) once. *)
let verify_cmd path ncores many_to_one optimize sharpen domain json
    warn_error diag_format timings timings_format =
  (match Absint.domain_of_string domain with
  | Ok Absint.Interval -> ()
  | Error msg ->
      prerr_endline ("hsmcc: " ^ msg);
      exit 2);
  let program = or_die (parse_source path) in
  let options =
    { Translate.Pass.default_options with Translate.Pass.ncores;
      many_to_one; optimize; sharpen }
  in
  let session = Session.create ~file:path ~options program in
  match
    let source = Session.absint_summary session in
    let source_diags = Session.bounds_verdict session in
    let sharpened =
      if sharpen then Session.sharpened session else []
    in
    let translated =
      if Absint.detect_mode program = Absint.Oblig.Rcce then None
      else
        match Translate.Driver.translate_session session with
        | (_ : Cfront.Ast.program * Translate.Driver.report) ->
            (* the translator published a new generation; the fact
               recomputes against the RCCE program *)
            Some (Session.absint_summary session,
                  Session.bounds_verdict session)
        | exception Translate.Driver.Error e ->
            Printf.eprintf
              "hsmcc: note: translation failed (%s); verifying the \
               source program only\n"
              (Translate.Driver.error_to_string e);
            None
    in
    (source, source_diags, sharpened, translated)
  with
  | source, source_diags, sharpened, translated ->
      let runs =
        source :: (match translated with Some (s, _) -> [ s ] | None -> [])
      in
      if json then print_string (Absint.render_json ~file:path runs)
      else begin
        List.iter (fun s -> print_string (Absint.render_human s)) runs;
        if sharpened <> [] then
          Printf.printf "  sharpened to private: %s\n"
            (String.concat ", " sharpened)
      end;
      if timings || timings_format <> None then
        emit_timings session (Option.value timings_format ~default:"table");
      let diags =
        source_diags
        @ (match translated with Some (_, d) -> d | None -> [])
      in
      exit (emit_diags ~out:stderr ~warn_error ~diag_format diags)
  | exception Cfront.Srcloc.Error (loc, msg) ->
      prerr_endline
        (Printf.sprintf "hsmcc: %s: %s" (Cfront.Srcloc.to_string loc) msg);
      exit 1

(* --- analyze -------------------------------------------------------------- *)

let analyze_cmd path =
  let program = or_die (parse_source path) in
  let session = Session.create ~file:path program in
  match Session.pipeline session with
  | a ->
      print_endline "Per-variable information (post Stage 3):";
      print_string (Exp.Tabulate.render (Analysis.Pipeline.table_4_1 a));
      print_newline ();
      print_endline "Sharing status after each stage:";
      print_string (Exp.Tabulate.render (Analysis.Pipeline.table_4_2 a));
      print_newline ();
      print_endline "Points-to relationships:";
      let rels =
        Analysis.Points_to.relationships a.Analysis.Pipeline.points_to
      in
      if rels = [] then print_endline "  (none)"
      else
        List.iter
          (fun (ptr, tgt, d) ->
            Printf.printf "  %s -> %s (%s)\n"
              (Ir.Var_id.to_string ptr)
              (Analysis.Points_to.target_to_string tgt)
              (Analysis.Points_to.definiteness_to_string d))
          rels
  | exception Cfront.Srcloc.Error (loc, msg) ->
      prerr_endline
        (Printf.sprintf "hsmcc: %s: %s" (Cfront.Srcloc.to_string loc) msg);
      exit 1

(* --- preprocess ------------------------------------------------------------ *)

let preprocess_cmd path defines =
  let defines =
    List.map
      (fun d ->
        match String.index_opt d '=' with
        | Some i ->
            (String.sub d 0 i,
             String.sub d (i + 1) (String.length d - i - 1))
        | None -> (d, "1"))
      defines
  in
  match Cfront.Preproc.expand ~file:path ~defines (read_file path) with
  | expanded -> print_string expanded
  | exception Cfront.Srcloc.Error (loc, msg) ->
      prerr_endline
        (Printf.sprintf "hsmcc: %s: %s" (Cfront.Srcloc.to_string loc) msg);
      exit 1
  | exception Sys_error msg ->
      prerr_endline ("hsmcc: " ^ msg);
      exit 1

(* --- cfg -------------------------------------------------------------------- *)

let cfg_cmd path func =
  let program = or_die (parse_source path) in
  let session = Session.create ~file:path program in
  let cfgs = Session.cfgs session in
  let selected =
    match func with
    | None -> cfgs
    | Some name -> List.filter (fun (n, _) -> n = name) cfgs
  in
  if selected = [] then begin
    prerr_endline "hsmcc: no matching function";
    exit 1
  end;
  List.iter (fun (_, cfg) -> print_string (Ir.Cfg.to_dot cfg)) selected

(* --- run -------------------------------------------------------------------- *)

let run_cmd path ncores detect_races diag_format profile_on trace_out
    interp_name sim_jobs explain_on explain_json =
  let program = or_die (parse_source path) in
  let trace = Option.map (fun _ -> Scc.Trace.create ()) trace_out in
  let explain = explain_on || explain_json <> None in
  (* --explain borrows the profiler's intern tables so critical-path steps
     carry C function/line names; the profile report itself still prints
     only under --profile *)
  let profile =
    if profile_on || explain then Some (Scc.Profile.create ()) else None
  in
  let critpath =
    if explain then Some (Scc.Critpath.create ()) else None
  in
  let interp =
    match interp_name with
    | "compiled" -> Cexec.Interp.Compiled
    | "tree" -> Cexec.Interp.Tree
    | other ->
        Printf.eprintf "hsmcc: unknown --interp %S (tree | compiled)\n"
          other;
        exit 2
  in
  let result =
    try
      if ncores <= 1 then
        Cexec.Interp.run_pthread ?trace ?profile ?critpath ~interp
          ~sim_jobs ~detect_races program
      else
        Cexec.Interp.run_rcce ?trace ?profile ?critpath ~interp ~sim_jobs
          ~detect_races ~ncores program
    with Cexec.Interp.Runtime_error msg ->
      prerr_endline ("hsmcc: runtime error: " ^ msg);
      exit 1
  in
  print_string result.Cexec.Interp.output;
  Printf.eprintf "-- simulated time: %.3f ms\n"
    (float_of_int result.Cexec.Interp.elapsed_ps /. 1e9);
  (match profile with
  | None -> ()
  | Some p -> if profile_on then prerr_string (Scc.Profile.render p));
  (match critpath with
  | None -> ()
  | Some cp ->
      if explain_on then prerr_string (Scc.Critpath.render ?profile cp);
      (match explain_json with
      | None -> ()
      | Some out ->
          let oc = open_out out in
          output_string oc (Scc.Critpath.to_json ?profile cp);
          close_out oc;
          Printf.eprintf "-- explain: -> %s (json)\n" out));
  (match trace_out, trace with
  | Some out, Some tr ->
      if Scc.Trace.dropped tr > 0 then
        Printf.eprintf
          "hsmcc: warning: trace truncated, %d events dropped%s\n"
          (Scc.Trace.dropped tr)
          (if critpath <> None then
             "; critical-path flow arrows clipped to the retained window"
           else "");
      let events =
        Scc.Trace.to_chrome_events tr
        @ (match profile with
          | None -> []
          | Some p -> Scc.Profile.counter_events p)
        @ (match critpath with
          | None -> []
          | Some cp ->
              (* clip the flow chain at the trace horizon so no arrow
                 points at a dropped slice *)
              let max_end_ps =
                if Scc.Trace.dropped tr > 0 then
                  Some (Scc.Trace.max_end_ps tr)
                else None
              in
              Scc.Critpath.flow_events ?max_end_ps cp)
      in
      Obs.Chrome.write_merge out events;
      Printf.eprintf "-- trace: %d events -> %s (Perfetto)\n"
        (Scc.Trace.length tr) out
  | _, _ -> ());
  (* dynamic reports print through the same renderer as [hsmcc check] *)
  let diags =
    List.map Cexec.Lockset.report_to_diag result.Cexec.Interp.races
  in
  ignore
    (Diag.emit ~format:(diag_format_of_flag diag_format) stderr diags
      : int);
  if detect_races && result.Cexec.Interp.races = [] then
    prerr_endline "-- no data races detected"

(* --- command line ----------------------------------------------------------- *)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")

let cores_arg =
  Arg.(value & opt int 48 & info [ "cores" ] ~docv:"N"
         ~doc:"Cores of the target chip.")

let capacity_arg =
  Arg.(value & opt int 0
       & info [ "capacity" ] ~docv:"BYTES"
           ~doc:"On-chip shared memory available to the partitioner \
                 (0 = all shared data off-chip, the Figure 6.1 setup).")

let density_arg =
  Arg.(value & flag
       & info [ "density" ]
           ~doc:"Partition by access density instead of the paper's \
                 ascending-size greedy.")

let sound_locals_arg =
  Arg.(value & flag
       & info [ "sound-locals" ]
           ~doc:"Hoist shared locals into shared memory (the thesis's \
                 example output leaves them on the process stack).")

let many_to_one_arg =
  Arg.(value & flag
       & info [ "many-to-one" ]
           ~doc:"Map several threads onto one core with a task loop \
                 instead of rejecting programs with more threads than \
                 cores (the paper's section 7.2).")

let optimize_arg =
  Arg.(value & flag
       & info [ "O"; "optimize" ]
           ~doc:"The full optimizer bundle: MPB software caching of hot \
                 read-only shared data, partial redundancy elimination \
                 of shared loads, then constant folding and dead-branch \
                 elimination (the paper's section 7.3).")

let opt_pre_arg =
  Arg.(value & flag
       & info [ "opt-pre" ]
           ~doc:"Just the PRE/load-hoisting pass (a subset of $(b,-O)).")

let opt_mpb_cache_arg =
  Arg.(value & flag
       & info [ "opt-mpb-cache" ]
           ~doc:"Just the MPB software-cache pass (a subset of $(b,-O)).")

let sharpen_arg =
  Arg.(value & flag
       & info [ "sharpen" ]
           ~doc:"Feed thread-locality facts proved by the abstract \
                 interpretation back into the sharing lattice: globals \
                 touched by exactly one thread become Private and stay \
                 out of shared memory.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print pass notes.")

let race_check_arg =
  Arg.(value & flag
       & info [ "race-check" ]
           ~doc:"Run the static data-race detector and print its \
                 diagnostics on stderr.")

let warn_error_arg =
  Arg.(value & flag
       & info [ "warn-error"; "Werror" ]
           ~doc:"Treat warnings as errors (non-zero exit when any \
                 diagnostic is emitted).")

let diag_format_arg =
  Arg.(value & opt string "gcc"
       & info [ "diag-format" ] ~docv:"FORMAT"
           ~doc:"Diagnostic output format: gcc (file:line:col text) or \
                 json (one array of objects).")

let timings_arg =
  Arg.(value & flag
       & info [ "timings" ]
           ~doc:"Print per-provider/per-pass wall-clock and invocation \
                 counts on stderr after translating.")

let timings_format_arg =
  Arg.(value & opt (some string) None
       & info [ "timings-format" ] ~docv:"FORMAT"
           ~doc:"Timings output format: table (fixed columns) or json. \
                 Implies $(b,--timings).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE.json"
           ~doc:"Write the per-provider/per-pass wall-clock spans as a \
                 Chrome/Perfetto trace.  If FILE already holds a trace \
                 (or a later $(b,simrun --trace) targets the same file), \
                 compiler and simulator tracks share one timeline.")

let translate_term =
  Term.(const translate_cmd $ file_arg $ cores_arg $ capacity_arg
        $ density_arg $ sound_locals_arg $ many_to_one_arg $ optimize_arg
        $ opt_pre_arg $ opt_mpb_cache_arg $ sharpen_arg $ race_check_arg
        $ warn_error_arg $ diag_format_arg $ timings_arg
        $ timings_format_arg $ trace_out_arg $ verbose_arg)

let translate_cmd_info =
  Cmd.v (Cmd.info "translate" ~doc:"Translate a Pthread program to RCCE")
    translate_term

let analyze_cmd_info =
  Cmd.v (Cmd.info "analyze" ~doc:"Run Stages 1-3 and print the analysis")
    Term.(const analyze_cmd $ file_arg)

let check_cmd_info =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically detect data races (lockset analysis over the \
             Stage 1-3 facts)")
    Term.(const check_cmd $ file_arg $ warn_error_arg $ diag_format_arg)

let domain_arg =
  Arg.(value & opt string "interval"
       & info [ "domain" ] ~docv:"DOMAIN"
           ~doc:"Abstract numeric domain for the verifier (only \
                 $(b,interval) is implemented; the engine is \
                 domain-generic, octagons can slot in).")

let verify_json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Print the verification report as one JSON document \
                 (stable field order; diagnostics go to stderr).")

let verify_cmd_info =
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Prove array and shmalloc accesses in bounds by \
             thread-modular abstract interpretation (source program \
             and its RCCE translation)")
    Term.(const verify_cmd $ file_arg $ cores_arg $ many_to_one_arg
          $ optimize_arg $ sharpen_arg $ domain_arg $ verify_json_arg
          $ warn_error_arg $ diag_format_arg $ timings_arg
          $ timings_format_arg)

let run_cores_arg =
  Arg.(value & opt int 1
       & info [ "cores" ] ~docv:"N"
           ~doc:"Interpret as an RCCE program on N cores (1 = Pthread \
                 single-core baseline).")

let detect_races_arg =
  Arg.(value & flag
       & info [ "detect-races" ]
           ~doc:"Run the Eraser lockset race detector during execution.")

let run_profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Attribute every simulated picosecond to the executing C \
                 function and source line; print flat/inclusive \
                 profiles, line heat, mutex contention and barrier \
                 imbalance on stderr.")

let run_trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE.json"
           ~doc:"Write a Chrome/Perfetto timeline of the simulated run \
                 (merged into FILE if it already holds a trace).")

let run_interp_arg =
  Arg.(value & opt string "compiled"
       & info [ "interp" ] ~docv:"MODE"
           ~doc:"Interpreter mode: $(b,compiled) (closure-compiled, the \
                 default) or $(b,tree) (tree-walking reference).  Both \
                 produce bit-identical output and timings.")

let run_sim_jobs_arg =
  Arg.(value & opt int 1
       & info [ "sim-jobs" ] ~docv:"N"
           ~doc:"Scheduler partitions (conservative parallel DES).  \
                 Results are bit-identical for every value; with N > 1 \
                 per-domain event counters appear in --profile and \
                 --trace output.")

let run_explain_arg =
  Arg.(value & flag
       & info [ "explain" ]
           ~doc:"Where the time goes: a full picosecond accounting whose \
                 identity (sum over contexts and categories = wall x \
                 contexts) is checked exactly, the critical path through \
                 the event-dependency graph attributed to C \
                 functions/lines, and what-if speedup ceilings (zero \
                 mesh, zero lock waits, MPB-speed shared DRAM, ...), on \
                 stderr.  With $(b,--trace), the critical path is drawn \
                 as Perfetto flow arrows over the timeline.")

let run_explain_json_arg =
  Arg.(value & opt (some string) None
       & info [ "explain-json" ] ~docv:"FILE"
           ~doc:"Write the $(b,--explain) report as one JSON document \
                 (implies the recording, not the human tables).")

let run_cmd_info =
  Cmd.v (Cmd.info "run" ~doc:"Interpret a program on the simulated SCC")
    Term.(const run_cmd $ file_arg $ run_cores_arg $ detect_races_arg
          $ diag_format_arg $ run_profile_arg $ run_trace_arg
          $ run_interp_arg $ run_sim_jobs_arg $ run_explain_arg
          $ run_explain_json_arg)

let defines_arg =
  Arg.(value & opt_all string []
       & info [ "D"; "define" ] ~docv:"NAME[=BODY]"
           ~doc:"Seed an object-like macro (repeatable).")

let preprocess_cmd_info =
  Cmd.v (Cmd.info "preprocess" ~doc:"Expand macros and conditionals")
    Term.(const preprocess_cmd $ file_arg $ defines_arg)

let func_arg =
  Arg.(value & opt (some string) None
       & info [ "function" ] ~docv:"NAME"
           ~doc:"Only this function (default: all).")

let cfg_cmd_info =
  Cmd.v
    (Cmd.info "cfg"
       ~doc:"Print control-flow graphs in Graphviz dot format")
    Term.(const cfg_cmd $ file_arg $ func_arg)

let main =
  Cmd.group
    (Cmd.info "hsmcc" ~version:"1.0.0"
       ~doc:"Pthread-to-RCCE translation framework for hybrid shared \
             memory manycores")
    [ translate_cmd_info; analyze_cmd_info; check_cmd_info;
      verify_cmd_info; run_cmd_info; preprocess_cmd_info; cfg_cmd_info ]

let () = exit (Cmd.eval main)
