(* simrun — run one benchmark of the paper's suite on the simulated SCC.

     simrun pi --mode rcce-mpb --units 32
     simrun stream --mode pthread --units 32
     simrun --name pi --profile --trace out.json
*)

open Cmdliner

let run_cmd name name_flag mode units sim_jobs trace_out profile_on
    metrics_out explain_on explain_json verbose =
  let name =
    match name, name_flag with
    | Some n, _ | None, Some n -> n
    | None, None ->
        prerr_endline "simrun: missing workload (positional or --name)";
        exit 2
  in
  match Workloads.Suite.find name with
  | None ->
      Printf.eprintf "simrun: unknown workload %S (have: %s)\n" name
        (String.concat ", " Workloads.Suite.names);
      exit 1
  | Some w ->
      let mode =
        match mode with
        | "pthread" -> Workloads.Workload.Pthread_baseline units
        | "rcce-offchip" ->
            Workloads.Workload.Rcce (Workloads.Workload.Off_chip, units)
        | "rcce-mpb" ->
            Workloads.Workload.Rcce (Workloads.Workload.On_chip, units)
        | other ->
            Printf.eprintf
              "simrun: unknown mode %S (pthread | rcce-offchip | rcce-mpb)\n"
              other;
            exit 1
      in
      let cfg = Scc.Config.default in
      let trace = Option.map (fun _ -> Scc.Trace.create ()) trace_out in
      let explain = explain_on || explain_json <> None in
      let profile =
        (* --explain borrows the profiler's intern tables so critical-path
           steps carry function names; its report still prints only
           under --profile *)
        if profile_on || metrics_out <> None || explain then
          Some (Scc.Profile.create ())
        else None
      in
      let critpath =
        if explain then Some (Scc.Critpath.create ()) else None
      in
      let r =
        Workloads.Workload.run ?trace ?profile ?critpath ~sim_jobs ~cfg w
          mode
      in
      Printf.printf "workload:   %s\n" r.Workloads.Workload.workload;
      Printf.printf "mode:       %s\n"
        (Workloads.Workload.mode_to_string r.Workloads.Workload.mode);
      Printf.printf "elapsed:    %.3f ms simulated\n"
        (Workloads.Workload.elapsed_ms r);
      Printf.printf "verified:   %b\n" r.Workloads.Workload.verified;
      let s = r.Workloads.Workload.stats in
      Printf.printf "traffic:    %s\n" (Scc.Stats.summary s);
      List.iter (fun n -> Printf.printf "note:       %s\n" n)
        r.Workloads.Workload.notes;
      if verbose then begin
        print_endline "per-unit breakdown:";
        let header =
          [ "unit"; "compute ms"; "mem stall ms"; "barrier ms"; "lock ms";
            "switches" ]
        in
        let ms ps = Printf.sprintf "%.3f" (float_of_int ps /. 1e9) in
        let rows =
          Array.to_list
            (Array.mapi
               (fun i (c : Scc.Stats.ctx_stats) ->
                 [ string_of_int i;
                   ms c.Scc.Stats.compute_ps;
                   ms c.Scc.Stats.mem_stall_ps;
                   ms c.Scc.Stats.barrier_wait_ps;
                   ms c.Scc.Stats.lock_wait_ps;
                   string_of_int c.Scc.Stats.context_switches ])
               s.Scc.Stats.ctxs)
        in
        print_string (Exp.Tabulate.render (header :: rows))
      end;
      (match profile with
      | None -> ()
      | Some p ->
          if profile_on then begin
            print_newline ();
            print_string (Scc.Profile.render p)
          end;
          match metrics_out with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc
                (Obs.Registry.to_prometheus (Scc.Profile.registry p));
              close_out oc;
              Printf.printf "metrics:    -> %s (prometheus text)\n" path);
      (match critpath with
      | None -> ()
      | Some cp ->
          if explain_on then begin
            print_newline ();
            print_string (Scc.Critpath.render ?profile cp)
          end;
          (match explain_json with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc (Scc.Critpath.to_json ?profile cp);
              close_out oc;
              Printf.printf "explain:    -> %s (json)\n" path));
      (match trace_out, trace with
      | Some path, Some tr ->
          if Scc.Trace.dropped tr > 0 then
            Printf.eprintf
              "simrun: warning: trace truncated, %d events dropped past \
               the buffer limit%s\n"
              (Scc.Trace.dropped tr)
              (if critpath <> None then
                 "; critical-path flow arrows clipped to the retained \
                  window"
               else "");
          let events =
            Scc.Trace.to_chrome_events tr
            @ (match profile with
              | None -> []
              | Some p -> Scc.Profile.counter_events p)
            @ (match critpath with
              | None -> []
              | Some cp ->
                  (* clip the flow chain at the trace horizon so no arrow
                     points at a dropped slice *)
                  let max_end_ps =
                    if Scc.Trace.dropped tr > 0 then
                      Some (Scc.Trace.max_end_ps tr)
                    else None
                  in
                  Scc.Critpath.flow_events ?max_end_ps cp)
          in
          (* merge-write: lands in the same JSON array as compiler spans
             when the file came from `hsmcc translate --trace` *)
          Obs.Chrome.write_merge path events;
          Printf.printf "trace:      %d events -> %s (Perfetto)\n"
            (Scc.Trace.length tr) path
      | _, _ -> ());
      if not r.Workloads.Workload.verified then exit 1

let name_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let name_flag_arg =
  Arg.(value & opt (some string) None
       & info [ "name" ] ~docv:"WORKLOAD"
           ~doc:"Workload name (alternative to the positional argument).")

let mode_arg =
  Arg.(value & opt string "rcce-offchip"
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"pthread | rcce-offchip | rcce-mpb")

let units_arg =
  Arg.(value & opt int 32
       & info [ "units" ] ~docv:"N" ~doc:"Threads or cores.")

let sim_jobs_arg =
  Arg.(value & opt int 1
       & info [ "sim-jobs" ] ~docv:"N"
           ~doc:"Scheduler partitions (conservative parallel DES).  \
                 Results are bit-identical for every value; partitions \
                 add per-domain event counters to --metrics and \
                 --trace/--profile output.")

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Per-unit time breakdown.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE.json"
           ~doc:"Write a Chrome-tracing timeline of the run.  If FILE \
                 already holds a trace (e.g. from hsmcc translate \
                 --trace), the simulator events are merged into it.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Attribute every simulated picosecond to the running \
                 workload and print flat/inclusive profiles, source-line \
                 heat, mutex contention and barrier imbalance tables.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write aggregate counters and wait histograms in \
                 Prometheus text exposition format.")

let explain_arg =
  Arg.(value & flag
       & info [ "explain" ]
           ~doc:"Where the time goes: a full picosecond accounting whose \
                 identity (sum over contexts and categories = wall x \
                 contexts) is checked exactly, the critical path through \
                 the event-dependency graph, and what-if speedup \
                 ceilings (zero mesh, zero lock waits, MPB-speed shared \
                 DRAM, ...).  With $(b,--trace), the critical path is \
                 drawn as Perfetto flow arrows over the timeline.")

let explain_json_arg =
  Arg.(value & opt (some string) None
       & info [ "explain-json" ] ~docv:"FILE"
           ~doc:"Write the $(b,--explain) report as one JSON document \
                 (implies the recording, not the human tables).")

let main =
  Cmd.v
    (Cmd.info "simrun" ~version:"1.0.0"
       ~doc:"Run one benchmark on the simulated SCC")
    Term.(const run_cmd $ name_arg $ name_flag_arg $ mode_arg $ units_arg
          $ sim_jobs_arg $ trace_arg $ profile_arg $ metrics_arg
          $ explain_arg $ explain_json_arg $ verbose_arg)

let () = exit (Cmd.eval main)
