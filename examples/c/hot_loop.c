/* A read-traffic-bound kernel: every iteration of the hot loop re-reads
   the shared parameters `nsteps` and `scale`, which after translation
   live in uncached shared DRAM.  `hsmcc translate -O` hoists both loads
   out of the loop into private temporaries (they are written only
   before the threads start), leaving two shared reads per core instead
   of two per iteration.  The lock-protected `total` accumulator must
   NOT be touched by the optimizer. */
#include <stdio.h>
#include <pthread.h>

int nsteps;
double scale;
double total;
pthread_mutex_t m;

void *work(void *tid) {
    int i;
    double sum = 0.0;
    for (i = 0; i < nsteps; i++) {
        sum = sum + scale * i;
    }
    pthread_mutex_lock(&m);
    total = total + sum;
    pthread_mutex_unlock(&m);
    pthread_exit(NULL);
}

int main() {
    nsteps = 4096;
    scale = 3.0;
    total = 0.0;
    pthread_mutex_init(&m, NULL);
    int t;
    pthread_t threads[4];
    for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("total = %f\n", total);
    return 0;
}
