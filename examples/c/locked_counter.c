/* The correctly synchronized variant: every access to `counter` from a
   thread context holds mutex `m`, so `hsmcc check` reports nothing. */
#include <stdio.h>
#include <pthread.h>

int counter;
pthread_mutex_t m;

void *work(void *tid) {
    int i;
    for (i = 0; i < 1000; i++) {
        pthread_mutex_lock(&m);
        counter = counter + 1;
        pthread_mutex_unlock(&m);
    }
    pthread_exit(NULL);
}

int main() {
    pthread_mutex_init(&m, NULL);
    int t;
    pthread_t threads[4];
    for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("counter = %d\n", counter);
    return 0;
}
