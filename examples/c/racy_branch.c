/* A race the default dynamic schedule never sees: the write to `data`
   sits behind `enable`, which stays 0 in this run.  The static lockset
   detector still reports it, because both workers may reach the store
   with no lock held. */
#include <stdio.h>
#include <pthread.h>

int data;
int enable;

void *work(void *tid) {
    if (enable) {
        data = data + 1;
    }
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[4];
    for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("data = %d\n", data);
    return 0;
}
