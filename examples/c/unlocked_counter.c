/* The classic unsynchronized counter: two worker instances increment
   `counter` with no lock held.  Both `hsmcc check` (statically) and
   `hsmcc run --detect-races` (dynamically, schedule permitting) flag
   the same location. */
#include <stdio.h>
#include <pthread.h>

int counter;

void *work(void *tid) {
    int i;
    for (i = 0; i < 1000; i++) {
        counter = counter + 1;
    }
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[4];
    for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("counter = %d\n", counter);
    return 0;
}
