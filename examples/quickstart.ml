(* Quickstart: the complete path the paper describes, on its own running
   example — analyze a Pthread program, translate it to RCCE, and execute
   both on the simulated SCC.

     dune exec examples/quickstart.exe
*)

let () =
  print_endline "=== 1. The Pthread program (the paper's Example 4.1) ===\n";
  print_string Exp.Example41.source;

  (* One compilation session: the translator below reuses the memoized
     Stage 1-3 facts these tables demand, so nothing is analyzed twice *)
  let program = Exp.Example41.parse () in
  let session = Session.create program in
  let analysis = Session.pipeline session in
  print_endline "\n=== 2. Analysis (Tables 4.1 and 4.2) ===\n";
  print_string (Exp.Tabulate.render (Analysis.Pipeline.table_4_1 analysis));
  print_newline ();
  print_string (Exp.Tabulate.render (Analysis.Pipeline.table_4_2 analysis));

  (* Stages 4-5: partition shared data and translate to RCCE *)
  let translated, report = Translate.Driver.translate_session session in
  print_endline "\n=== 3. The translated RCCE program (Example 4.2) ===\n";
  print_string (Cfront.Pretty.program translated);
  print_endline "\nWhat the passes did:";
  List.iter
    (fun note -> Printf.printf "  - %s\n" note)
    report.Translate.Driver.notes;

  (* Execute both versions on the simulated SCC *)
  print_endline "\n=== 4. Both versions on the simulated SCC ===\n";
  let original = Cexec.Interp.run_pthread program in
  Printf.printf "Original (3 threads, 1 core), %.2f us simulated:\n%s\n"
    (float_of_int original.Cexec.Interp.elapsed_ps /. 1e6)
    original.Cexec.Interp.output;
  let converted = Cexec.Interp.run_rcce ~ncores:3 translated in
  Printf.printf "Converted (3 cores), %.2f us simulated:\n%s\n"
    (float_of_int converted.Cexec.Interp.elapsed_ps /. 1e6)
    converted.Cexec.Interp.output;
  Printf.printf "Speedup: %.1fx\n"
    (float_of_int original.Cexec.Interp.elapsed_ps
    /. float_of_int converted.Cexec.Interp.elapsed_ps)
