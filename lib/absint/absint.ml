open Cfront

(* Library facade: mode detection, domain selection, and the concrete
   interval instantiation of the thread-modular engine. *)

module Domain_sig = Domain_sig
module Itv = Itv
module Aval = Aval
module Oblig = Oblig
module Engine = Engine
module Report = Report
module Sharpen = Sharpen

module Interval_engine = Engine.Make (Itv)

type domain = Interval

let domain_of_string = function
  | "interval" -> Ok Interval
  | "octagon" ->
      Error "domain `octagon' is not implemented yet (only `interval')"
  | s -> Error (Printf.sprintf "unknown abstract domain `%s'" s)

let domain_name = function Interval -> Itv.name

(* A program is analyzed under RCCE semantics when it defines the
   [RCCE_APP] entry point (the shape [lib/translate] emits); everything
   else is treated as a Pthread program. *)
let detect_mode (program : Ast.program) =
  if Ast.find_function program "RCCE_APP" <> None then Oblig.Rcce
  else Oblig.Pthread

let analyze ?mode ?(domain = Interval) ?(interference = true) ~ncores
    (program : Ast.program) =
  let mode = match mode with Some m -> m | None -> detect_mode program in
  match domain with
  | Interval ->
      Interval_engine.run
        { Engine.mode; ncores; interference }
        program

(* Re-exported report helpers, so consumers need only [Absint]. *)
let diags_of = Report.diags_of
let render_human = Report.render_human
let render_json = Report.render_json
