(* Abstract values and environments, parameterized by the numeric domain.

   A value carries three facets:
   - [num]: the numeric component (interval);
   - [ptr]: the points-to component — the set of storage blocks the value
     may address, or [Ptop] when unknown;
   - [tid]: whether the value is a pure copy of the enclosing thread's
     identifier (spawn argument or [RCCE_ue()] result).  Arithmetic kills
     the flag; copies and casts keep it.  Thread-extent facts for the
     sharing lattice are derived from it. *)

module VMap = Ir.Var_id.Map
module VSet = Ir.Var_id.Set

module Make (D : Domain_sig.S) = struct
  type ptr = Pbot | Pblocks of VSet.t | Ptop

  type t = { num : D.t; ptr : ptr; tid : bool }

  let bottom = { num = D.bottom; ptr = Pbot; tid = false }
  let top = { num = D.top; ptr = Ptop; tid = false }

  let of_num ?(tid = false) n = { num = n; ptr = Pbot; tid }
  let of_blocks bs = { num = D.top; ptr = Pblocks bs; tid = false }
  let null = { num = D.const 0; ptr = Pbot; tid = false }

  let ptr_join a b =
    match (a, b) with
    | Ptop, _ | _, Ptop -> Ptop
    | Pbot, x | x, Pbot -> x
    | Pblocks s1, Pblocks s2 -> Pblocks (VSet.union s1 s2)

  let ptr_leq a b =
    match (a, b) with
    | Pbot, _ | _, Ptop -> true
    | _, Pbot | Ptop, _ -> false
    | Pblocks s1, Pblocks s2 -> VSet.subset s1 s2

  let ptr_equal a b =
    match (a, b) with
    | Pbot, Pbot | Ptop, Ptop -> true
    | Pblocks s1, Pblocks s2 -> VSet.equal s1 s2
    | _ -> false

  let join a b =
    { num = D.join a.num b.num; ptr = ptr_join a.ptr b.ptr;
      tid = a.tid && b.tid }

  (* Block sets are finite (one per program variable), so joining the
     pointer facet is already a terminating widening. *)
  let widen old next =
    { num = D.widen old.num (D.join old.num next.num);
      ptr = ptr_join old.ptr next.ptr;
      tid = old.tid && next.tid }

  let equal a b =
    D.equal a.num b.num && ptr_equal a.ptr b.ptr && a.tid = b.tid

  let leq a b =
    D.leq a.num b.num && ptr_leq a.ptr b.ptr && (a.tid || not b.tid)

  let is_top v = equal v top

  (* Environments: local variables of the function under analysis.  A
     missing binding means top (uninitialized storage), so joins keep only
     keys present on both sides and drop any binding that reaches top. *)

  type env = Bot | Env of t VMap.t

  let env_empty = Env VMap.empty
  let env_is_bot e = e = Bot

  let env_lookup e v =
    match e with
    | Bot -> bottom
    | Env m -> ( match VMap.find_opt v m with Some x -> x | None -> top)

  let env_update e v x =
    match e with
    | Bot -> Bot
    | Env m -> if is_top x then Env (VMap.remove v m) else Env (VMap.add v x m)

  let env_merge f a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Env m1, Env m2 ->
        Env
          (VMap.merge
             (fun _ x y ->
               match (x, y) with
               | Some x, Some y ->
                   let r = f x y in
                   if is_top r then None else Some r
               | _ -> None)
             m1 m2)

  let env_join = env_merge join
  let env_widen old next = env_merge widen old next

  let env_equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Bot, _ | _, Bot -> false
    | Env m1, Env m2 -> VMap.equal equal m1 m2

  (* The dataflow fact for {!Ir.Dataflow.Forward_widen}. *)
  module Envdom = struct
    type t = env

    let bottom = Bot
    let equal = env_equal
    let join = env_join
    let widen = env_widen
  end
end
