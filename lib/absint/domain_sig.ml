open Cfront

(* Signature of a non-relational numeric value domain.

   The engine is a functor over this signature so richer domains (octagons
   would additionally carry a relational environment, with the value-level
   operations below as its projection) can slot in without touching the
   fixpoint machinery.  [Itv] is the interval instance. *)

module type S = sig
  type t

  val name : string
  (** Domain name as accepted by [--domain] (e.g. ["interval"]). *)

  val bottom : t
  val top : t

  val is_bottom : t -> bool

  val const : int -> t
  val range : int -> int -> t

  val equal : t -> t -> bool
  val leq : t -> t -> bool

  val join : t -> t -> t
  val meet : t -> t -> t

  val widen : t -> t -> t
  (** [widen old next]: over-approximates [join old next]; repeated
      application of [widen] along a growing chain must stabilize. *)

  val contained_in : t -> lo:int -> hi:int -> bool
  (** Every concrete value lies in [lo, hi]; discharges a bounds
      obligation. *)

  val disjoint_from : t -> lo:int -> hi:int -> bool
  (** No concrete value lies in [lo, hi]; the access is definitely out of
      bounds. *)

  val singleton : t -> int option

  val binop : Ast.binop -> t -> t -> t
  (** Forward abstract transfer of a C binary operator.  Comparison and
      logical operators yield a subset of [0, 1]. *)

  val neg : t -> t
  val bnot : t -> t

  val lognot : t -> t
  (** Abstract [!x]. *)

  val filter : Ast.binop -> t -> t -> t
  (** [filter op a b] refines [a] assuming the comparison [a op b] holds;
      identity for non-comparison operators. *)

  val filter_nonzero : t -> t
  val filter_zero : t -> t

  val to_string : t -> string
end
