open Cfront

(* Thread-modular abstract interpretation engine.

   Locals are flow-sensitive: per-node environments computed by the
   widening dataflow solver with branch refinement.  Globals live in a
   flow-insensitive store G that only grows: a cell holds the join of
   every value any thread may ever store there, seeded from static
   initializers.  That store *is* the interference environment of Miné's
   thread-modular scheme collapsed to its flow-insensitive core: each
   round re-analyzes every reachable function against the current G, calls
   join argument values into per-function contexts, and spawned thread
   entries against the join of their create-site arguments, until nothing
   grows.  Joins into G, contexts and summaries switch to widening after a
   few rounds so the chaotic iteration terminates.  A final collection
   pass over the stabilized state emits one proof obligation per memory
   access. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)
module VMap = Ir.Var_id.Map
module VSet = Ir.Var_id.Set

let widen_round = 4
let max_rounds = 64

type config = {
  mode : Oblig.mode;
  ncores : int;
  interference : bool;
      (* [false]: the naive sequential lifting (each thread analyzed
         against a snapshot of G, writes discarded) — unsound on purpose,
         kept as the strawman for the soundness tests *)
}

module Make (D : Domain_sig.S) = struct
  module V = Aval.Make (D)

  type cell = Cvar of Ir.Var_id.t | Cmem of Ir.Var_id.t

  module CMap = Map.Make (struct
    type t = cell

    let compare a b =
      match (a, b) with
      | Cvar x, Cvar y | Cmem x, Cmem y -> Ir.Var_id.compare x y
      | Cvar _, Cmem _ -> -1
      | Cmem _, Cvar _ -> 1
  end)

  type iextent = Emain | Ethread of string * D.t | Emixed

  type st = {
    conf : config;
    symtab : Ir.Symtab.t;
    program : Ast.program;
    entry : string;
    cfgs : (string, Ir.Cfg.t * (Ast.expr * Ast.stmt) list) Hashtbl.t;
    blocks : (Ir.Var_id.t, int option) Hashtbl.t;
    allocs : (Ir.Var_id.t, string) Hashtbl.t;
    obligs : (string * int * int * string, Oblig.t) Hashtbl.t;
    mutable g : V.t CMap.t;
    mutable ctx : V.t list SMap.t;
    mutable spawned : V.t SMap.t;
    mutable summaries : V.t SMap.t;
    mutable spawn_sites : D.t SMap.t; (* key: "file:line:col/func" *)
    mutable gaccess : iextent VMap.t;
    mutable addr_taken : VSet.t;
    mutable direct_called : SSet.t;
    mutable changed : bool;
    mutable widen_now : bool;
    mutable collect : bool;
    mutable rounds : int;
    mutable cur_func : string;
    mutable cur_loc : Srcloc.t;
    mutable ret_acc : V.t;
  }

  (* ---- store and merge helpers ------------------------------------- *)

  let vmerge st old v =
    let j = V.join old v in
    if st.widen_now then V.widen old j else j

  let dmerge st old v =
    let j = D.join old v in
    if st.widen_now then D.widen old j else j

  let g_read st cell =
    match CMap.find_opt cell st.g with Some v -> v | None -> V.top

  let g_join st cell v =
    let old =
      match CMap.find_opt cell st.g with Some v -> v | None -> V.bottom
    in
    let nv = vmerge st old v in
    if not (V.equal old nv) then begin
      st.g <- CMap.add cell nv st.g;
      st.changed <- true
    end

  let resolve st name =
    let f = st.cur_func in
    if f = "" then Ir.Symtab.resolve st.symtab name
    else Ir.Symtab.resolve st.symtab ~func:f name

  let is_array_entry (e : Ir.Symtab.entry) =
    match e.ty with Ctype.Array _ -> true | _ -> false

  let is_local st (id : Ir.Var_id.t) =
    Ir.Var_id.scope_function id = Some st.cur_func

  (* Canonical content cell of a block: arrays and heap allocations have a
     content cell distinct from the variable's own value; an address-taken
     scalar's content is the variable itself. *)
  let cell_of_block st (id : Ir.Var_id.t) =
    if Hashtbl.mem st.allocs id then Cmem id
    else
      match Ir.Symtab.type_of st.symtab id with
      | Some (Ctype.Array _) -> Cmem id
      | _ -> Cvar id

  let register_block st (e : Ir.Symtab.entry) =
    if not (Hashtbl.mem st.blocks e.id) then
      Hashtbl.replace st.blocks e.id
        (match e.ty with
        | Ctype.Array (_, Some n) -> Some n
        | Ctype.Array (_, None) -> None
        | t -> Some (Ctype.element_count t))

  let register_alloc st (e : Ir.Symtab.entry) fn count =
    if not (Hashtbl.mem st.allocs e.id) then begin
      (* the block named by [e.id] changes identity here: it is no longer
         the pointer variable's own cell (1 element, recorded at its
         declaration) but the heap region it points to, so the alloc's
         count replaces whatever the declaration registered *)
      Hashtbl.replace st.allocs e.id fn;
      Hashtbl.replace st.blocks e.id count;
      st.changed <- true
    end
    else begin
      (* several alloc sites feed one pointer: keep the smallest extent *)
      let old = try Hashtbl.find st.blocks e.id with Not_found -> None in
      let nv =
        match (old, count) with
        | Some a, Some b -> Some (min a b)
        | None, c | c, None -> c
      in
      if old <> nv then begin
        Hashtbl.replace st.blocks e.id nv;
        st.changed <- true
      end
    end

  (* ---- thread extents (sharing-lattice feedback) -------------------- *)

  let extent_at st env =
    if st.conf.mode <> Oblig.Pthread then Emixed
    else if st.cur_func = st.entry then Emain
    else
      match SMap.find_opt st.cur_func st.spawned with
      | None -> Emixed
      | Some spawn -> begin
          match env with
          | V.Bot -> Ethread (st.cur_func, D.bottom)
          | V.Env m ->
              let ext =
                VMap.fold
                  (fun _ (v : V.t) acc ->
                    if v.tid then D.meet acc v.num else acc)
                  m spawn.num
              in
              Ethread (st.cur_func, ext)
        end

  let extent_join a b =
    match (a, b) with
    | Ethread (f1, i1), Ethread (f2, i2) when f1 = f2 ->
        Ethread (f1, D.join i1 i2)
    | Emain, Emain -> Emain
    | _ -> Emixed

  let record_gaccess st env (id : Ir.Var_id.t) =
    if st.collect && Ir.Var_id.is_global id then begin
      let ext = extent_at st env in
      let joined =
        match VMap.find_opt id st.gaccess with
        | None -> ext
        | Some old -> extent_join old ext
      in
      st.gaccess <- VMap.add id joined st.gaccess
    end

  (* ---- proof obligations -------------------------------------------- *)

  let blk_count st id =
    match Hashtbl.find_opt st.blocks id with Some c -> c | None -> None

  let record_oblig st ~kind ~path (base : V.t) (idx : D.t) =
    if st.collect then begin
      let mk status blocks alloc bound =
        let o =
          { Oblig.o_func = st.cur_func; o_loc = st.cur_loc; o_path = path;
            o_kind = kind; o_blocks = blocks; o_alloc = alloc;
            o_index = D.to_string idx; o_bound = bound; o_status = status }
        in
        Hashtbl.replace st.obligs
          (st.cur_func, st.cur_loc.Srcloc.line, st.cur_loc.Srcloc.col, path)
          o
      in
      match base.ptr with
      | V.Pbot -> ()
      | V.Ptop -> mk (Oblig.Unproved "base address unknown") [] None None
      | V.Pblocks bs when VSet.is_empty bs -> ()
      | V.Pblocks bs ->
          let ids = VSet.elements bs in
          let names = List.map (fun id -> id.Ir.Var_id.name) ids in
          let alloc =
            if List.exists
                 (fun id -> Hashtbl.find_opt st.allocs id
                            = Some "RCCE_shmalloc") ids
            then Some "RCCE_shmalloc"
            else
              List.find_map (fun id -> Hashtbl.find_opt st.allocs id) ids
          in
          let counts = List.map (blk_count st) ids in
          if List.exists (fun c -> c = None) counts then
            mk (Oblig.Unproved "block extent unknown") names alloc None
          else
            let bound =
              List.fold_left
                (fun acc c -> match c with Some n -> min acc n | None -> acc)
                max_int counts
            in
            let status =
              if D.contained_in idx ~lo:0 ~hi:(bound - 1) then Oblig.Proved
              else if D.disjoint_from idx ~lo:0 ~hi:(bound - 1) then
                Oblig.Out_of_bounds
              else
                Oblig.Unproved
                  (Printf.sprintf "index %s may leave [0,%d]"
                     (D.to_string idx) (bound - 1))
            in
            mk status names alloc (Some bound)
    end

  (* ---- known library functions -------------------------------------- *)

  let alloc_fns = [ "RCCE_shmalloc"; "RCCE_malloc"; "malloc" ]

  let noop_fns =
    SSet.of_list
      [ "pthread_mutex_init"; "pthread_mutex_lock"; "pthread_mutex_unlock";
        "pthread_mutex_destroy"; "pthread_join"; "pthread_exit";
        "pthread_barrier_init"; "pthread_barrier_wait";
        "pthread_barrier_destroy"; "RCCE_init"; "RCCE_finalize";
        "RCCE_barrier"; "RCCE_acquire_lock"; "RCCE_release_lock";
        "RCCE_shfree"; "free"; "exit" ]

  let print_fns = SSet.of_list [ "printf"; "fprintf"; "puts"; "putchar" ]

  (* ---- expression evaluation ---------------------------------------- *)

  let rec eval st (env : V.env) (e : Ast.expr) : V.t * V.env =
    match e with
    | Ast.Int_lit n -> (V.of_num (D.const n), env)
    | Ast.Char_lit c -> (V.of_num (D.const (Char.code c)), env)
    | Ast.Float_lit _ -> (V.of_num D.top, env)
    | Ast.Str_lit _ -> (V.top, env)
    | Ast.Var x -> (read_var st env x, env)
    | Ast.Cast (_, e1) -> eval st env e1
    | Ast.Sizeof_type t -> (V.of_num (D.const (Ctype.sizeof t)), env)
    | Ast.Sizeof_expr _ -> (V.of_num D.top, env)
    | Ast.Comma (a, b) ->
        let _, env = eval st env a in
        eval st env b
    | Ast.Cond (c, a, b) ->
        let _, env = eval st env c in
        let va, ea = eval st env a in
        let vb, eb = eval st env b in
        (V.join va vb, V.env_join ea eb)
    | Ast.Unary (u, e1) -> eval_unary st env u e1
    | Ast.Binary (op, a, b) -> eval_binary st env op a b
    | Ast.Assign (opo, lhs, rhs) -> eval_assign st env opo lhs rhs
    | Ast.Index (b, i) ->
        let vb, env = eval st env b in
        let vi, env = eval st env i in
        record_oblig st ~kind:Oblig.Index ~path:(Pretty.expr e) vb vi.V.num;
        (read_mem st env vb, env)
    | Ast.Call (f, args) -> eval_call st env f args

  and read_var st env x =
    match resolve st x with
    | None -> V.top
    | Some entry ->
        if is_array_entry entry then begin
          register_block st entry;
          record_gaccess st env entry.id;
          V.of_blocks (VSet.singleton entry.id)
        end
        else if Ir.Var_id.is_global entry.id then begin
          record_gaccess st env entry.id;
          g_read st (Cvar entry.id)
        end
        else V.env_lookup env entry.id

  and read_mem st env (base : V.t) =
    match base.ptr with
    | V.Pbot -> V.bottom
    | V.Ptop -> V.top
    | V.Pblocks bs ->
        VSet.fold
          (fun id acc ->
            let v =
              match cell_of_block st id with
              | (Cvar gid | Cmem gid) when Ir.Var_id.is_global gid ->
                  record_gaccess st env gid;
                  g_read st (cell_of_block st id)
              | Cvar lid | Cmem lid ->
                  if is_local st lid then V.env_lookup env lid else V.top
            in
            V.join acc v)
          bs V.bottom

  and eval_unary st env u e1 =
    match u with
    | Ast.Neg ->
        let v, env = eval st env e1 in
        (V.of_num (D.neg v.V.num), env)
    | Ast.Not ->
        let v, env = eval st env e1 in
        (V.of_num (D.lognot v.V.num), env)
    | Ast.Bnot ->
        let v, env = eval st env e1 in
        (V.of_num (D.bnot v.V.num), env)
    | Ast.Deref ->
        let vp, env = eval st env e1 in
        record_oblig st ~kind:Oblig.Deref
          ~path:(Pretty.expr (Ast.Unary (Ast.Deref, e1)))
          vp (D.const 0);
        (read_mem st env vp, env)
    | Ast.Addr -> begin
        match e1 with
        | Ast.Var x -> begin
            match resolve st x with
            | Some entry ->
                register_block st entry;
                st.addr_taken <- VSet.add entry.id st.addr_taken;
                (V.of_blocks (VSet.singleton entry.id), env)
            | None -> (V.top, env)
          end
        | Ast.Index (b, i) ->
            let vb, env = eval st env b in
            let vi, env = eval st env i in
            record_oblig st ~kind:Oblig.Index
              ~path:(Pretty.expr (Ast.Unary (Ast.Addr, e1)))
              vb vi.V.num;
            ({ vb with num = D.top; tid = false }, env)
        | Ast.Unary (Ast.Deref, p) -> eval st env p
        | _ -> (V.top, env)
      end
    | Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec ->
        let op = match u with
          | Ast.Preinc | Ast.Postinc -> Ast.Add
          | _ -> Ast.Sub
        in
        let old, env = eval st env e1 in
        let nv =
          { V.num = D.binop op old.V.num (D.const 1); ptr = old.V.ptr;
            tid = false }
        in
        let env = write_lv st env e1 nv in
        let v = match u with
          | Ast.Postinc | Ast.Postdec -> old
          | _ -> nv
        in
        (v, env)

  and eval_binary st env op a b =
    let va, env = eval st env a in
    let vb, env = eval st env b in
    let num = D.binop op va.V.num vb.V.num in
    let ptr =
      match op with
      | Ast.Add | Ast.Sub -> begin
          (* pointer arithmetic loses the offset we track implicitly as
             zero, so the result may address anywhere in memory *)
          match (va.V.ptr, vb.V.ptr) with
          | V.Pbot, V.Pbot -> V.Pbot
          | V.Pblocks s, V.Pbot | V.Pbot, V.Pblocks s
            when VSet.is_empty s -> V.Pbot
          | _ -> V.Ptop
        end
      | _ -> V.Pbot
    in
    ({ V.num; ptr; tid = false }, env)

  and eval_assign st env opo lhs rhs =
    match (opo, lhs, alloc_call rhs) with
    | None, Ast.Var x, Some (fn, size) -> begin
        match resolve st x with
        | Some entry ->
            let count = alloc_count st env entry size in
            register_alloc st entry fn count;
            let v = V.of_blocks (VSet.singleton entry.id) in
            let env = write_var st env entry v in
            (v, env)
        | None -> (V.top, env)
      end
    | _ ->
        let vr, env = eval st env rhs in
        let v, env =
          match opo with
          | None -> (vr, env)
          | Some op ->
              let cur, env = eval st env lhs in
              ( { V.num = D.binop op cur.V.num vr.V.num; ptr = V.Pbot;
                  tid = false },
                env )
        in
        let env = write_lv st env lhs v in
        (v, env)

  and alloc_call (e : Ast.expr) =
    match e with
    | Ast.Cast (_, e1) -> alloc_call e1
    | Ast.Call (fn, [ size ]) when List.mem fn alloc_fns -> Some (fn, size)
    | _ -> None

  and alloc_count st env (entry : Ir.Symtab.entry) (size : Ast.expr) =
    let elt_size =
      match Ctype.pointee entry.ty with
      | Some t -> Ctype.sizeof t
      | None -> 1
    in
    match size with
    | Ast.Binary (Ast.Mul, Ast.Sizeof_type _, e)
    | Ast.Binary (Ast.Mul, e, Ast.Sizeof_type _) ->
        let v, _ = eval st env e in
        D.singleton v.V.num
    | Ast.Sizeof_type _ -> Some 1
    | Ast.Int_lit n when elt_size > 0 && n mod elt_size = 0 ->
        Some (n / elt_size)
    | _ ->
        let v, _ = eval st env size in
        Option.map
          (fun n -> if elt_size > 0 then n / elt_size else n)
          (D.singleton v.V.num)

  and write_var st env (entry : Ir.Symtab.entry) v =
    if is_array_entry entry then env (* ill-formed; arrays are not lvalues *)
    else if Ir.Var_id.is_global entry.id then begin
      record_gaccess st env entry.id;
      g_join st (Cvar entry.id) v;
      env
    end
    else V.env_update env entry.id v

  and write_mem st env (base : V.t) v =
    match base.ptr with
    | V.Pbot -> env
    | V.Ptop -> havoc_all st env
    | V.Pblocks bs ->
        VSet.fold
          (fun id env ->
            match cell_of_block st id with
            | (Cvar gid | Cmem gid) as c when Ir.Var_id.is_global gid ->
                record_gaccess st env gid;
                g_join st c v;
                env
            | Cvar lid | Cmem lid ->
                if is_local st lid then
                  (* weak update: other elements / earlier values remain *)
                  V.env_update env lid (V.join (V.env_lookup env lid) v)
                else env)
          bs env

  (* A write through an unknown pointer may land in any block. *)
  and havoc_all st env =
    CMap.iter (fun c _ -> g_join st c V.top) st.g;
    match env with
    | V.Bot -> env
    | V.Env m ->
        VMap.fold
          (fun id _ env ->
            let blockish =
              VSet.mem id st.addr_taken
              ||
              match Ir.Symtab.type_of st.symtab id with
              | Some (Ctype.Array _) -> true
              | _ -> false
            in
            if blockish then V.env_update env id V.top else env)
          m env

  and write_lv st env (lhs : Ast.expr) v =
    match lhs with
    | Ast.Var x -> begin
        match resolve st x with
        | Some entry -> write_var st env entry v
        | None -> env
      end
    | Ast.Index (b, i) ->
        let vb, env = eval st env b in
        let vi, env = eval st env i in
        record_oblig st ~kind:Oblig.Index ~path:(Pretty.expr lhs) vb
          vi.V.num;
        write_mem st env vb v
    | Ast.Unary (Ast.Deref, p) ->
        let vp, env = eval st env p in
        record_oblig st ~kind:Oblig.Deref ~path:(Pretty.expr lhs) vp
          (D.const 0);
        write_mem st env vp v
    | Ast.Cast (_, l) -> write_lv st env l v
    | _ -> env

  and eval_call st env f args =
    (* evaluate arguments left to right, collecting their values *)
    let vargs, env =
      List.fold_left
        (fun (vs, env) a ->
          let v, env = eval st env a in
          (v :: vs, env))
        ([], env) args
    in
    let vargs = List.rev vargs in
    if f = "pthread_create" then begin
      (match args with
      | [ _; _; fe; _ ] -> begin
          match Analysis.Thread_analysis.func_name_of_arg fe with
          | Some fname when Ast.find_function st.program fname <> None ->
              let arg =
                match vargs with [ _; _; _; va ] -> va | _ -> V.top
              in
              spawn st fname arg
          | _ -> ()
        end
      | _ -> ());
      (V.of_num (D.const 0), env)
    end
    else if f = "RCCE_ue" then
      (V.of_num ~tid:true (D.range 0 (st.conf.ncores - 1)), env)
    else if f = "RCCE_num_ues" then
      (V.of_num (D.const st.conf.ncores), env)
    else if SSet.mem f noop_fns then (V.of_num (D.const 0), env)
    else if SSet.mem f print_fns then (V.of_num D.top, env)
    else if List.mem f alloc_fns then (V.top, env)
    else
      match Ast.find_function st.program f with
      | Some callee ->
          if SMap.mem f st.spawned then
            st.direct_called <- SSet.add f st.direct_called;
          join_ctx st f callee vargs;
          let r =
            match SMap.find_opt f st.summaries with
            | Some v -> v
            | None -> V.bottom
          in
          (r, env)
      | None ->
          (* unknown external: anything reachable from pointer arguments
             may be overwritten *)
          let env =
            List.fold_left
              (fun env (v : V.t) ->
                match v.ptr with
                | V.Pblocks bs when not (VSet.is_empty bs) ->
                    write_mem st env v V.top
                | V.Ptop -> env (* joining top everywhere helps nobody *)
                | _ -> env)
              env vargs
          in
          (V.top, env)

  and spawn st fname (arg : V.t) =
    let tagged = { arg with tid = true } in
    let old =
      match SMap.find_opt fname st.spawned with
      | Some v -> v
      | None -> V.bottom
    in
    let nv = vmerge st old tagged in
    if not (V.equal old nv) then begin
      st.spawned <- SMap.add fname nv st.spawned;
      st.changed <- true
    end;
    let key =
      Printf.sprintf "%s/%s" (Srcloc.to_string st.cur_loc) fname
    in
    let oldi =
      match SMap.find_opt key st.spawn_sites with
      | Some i -> i
      | None -> D.bottom
    in
    let ni = dmerge st oldi arg.V.num in
    if not (D.equal oldi ni) then
      st.spawn_sites <- SMap.add key ni st.spawn_sites

  and join_ctx st fname (callee : Ast.func) vargs =
    let nparams = List.length callee.Ast.f_params in
    let vargs =
      if List.length vargs >= nparams then
        List.filteri (fun i _ -> i < nparams) vargs
      else vargs @ List.init (nparams - List.length vargs) (fun _ -> V.top)
    in
    let old = SMap.find_opt fname st.ctx in
    let nv =
      match old with
      | None -> vargs
      | Some old -> List.map2 (fun o v -> vmerge st o v) old vargs
    in
    let same =
      match old with
      | None -> false
      | Some old -> List.for_all2 V.equal old nv
    in
    if not same then begin
      st.ctx <- SMap.add fname nv st.ctx;
      st.changed <- true
    end

  (* ---- statements and transfer -------------------------------------- *)

  let exec_decl st env (d : Ast.decl) =
    match resolve st d.Ast.d_name with
    | None -> env
    | Some entry -> begin
        register_block st entry;
        match d.Ast.d_init with
        | None ->
            if Ir.Var_id.is_global entry.id then env
            else V.env_update env entry.id V.top (* uninitialized garbage *)
        | Some (Ast.Init_expr e) ->
            let v, env = eval st env e in
            write_var st env entry v
        | Some (Ast.Init_list es) ->
            let v, env =
              List.fold_left
                (fun (acc, env) e ->
                  let v, env = eval st env e in
                  (V.join acc v, env))
                (V.bottom, env) es
            in
            let size =
              match entry.ty with
              | Ctype.Array (_, Some n) -> n
              | _ -> List.length es
            in
            let v =
              if List.length es < size then V.join v (V.of_num (D.const 0))
              else v
            in
            if is_array_entry entry then V.env_update env entry.id v
            else write_var st env entry v
      end

  let exec_stmt st env (s : Ast.stmt) =
    st.cur_loc <- s.Ast.s_loc;
    match s.Ast.s_desc with
    | Ast.Sexpr e -> snd (eval st env e)
    | Ast.Sdecl ds -> List.fold_left (exec_decl st) env ds
    | Ast.Sreturn (Some e) ->
        let v, env = eval st env e in
        st.ret_acc <- V.join st.ret_acc v;
        env
    | Ast.Sreturn None | Ast.Snull -> env
    | _ -> env (* structured statements are edges, not nodes *)

  (* ---- condition refinement ----------------------------------------- *)

  let rec pure (e : Ast.expr) =
    match e with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Var _ | Ast.Sizeof_type _ | Ast.Sizeof_expr _ -> true
    | Ast.Unary ((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec), _)
      -> false
    | Ast.Unary (_, a) | Ast.Cast (_, a) -> pure a
    | Ast.Binary (_, a, b) | Ast.Index (a, b) | Ast.Comma (a, b) ->
        pure a && pure b
    | Ast.Cond (a, b, c) -> pure a && pure b && pure c
    | Ast.Assign _ | Ast.Call _ -> false

  let negate_cmp (op : Ast.binop) =
    match op with
    | Ast.Eq -> Ast.Ne
    | Ast.Ne -> Ast.Eq
    | Ast.Lt -> Ast.Ge
    | Ast.Ge -> Ast.Lt
    | Ast.Gt -> Ast.Le
    | Ast.Le -> Ast.Gt
    | op -> op

  (* Refine [side] knowing that [side op other] holds, where [vother] is
     the value of the other side.  Handles a bare variable and the shifted
     forms [x + e] / [x - e] (interval arithmetic keeps the bound sound
     even when [e] is not a singleton). *)
  let rec refine_side st env side op (vother : D.t) =
    match side with
    | Ast.Var x -> begin
        match resolve st x with
        | Some entry
          when (not (Ir.Var_id.is_global entry.id))
               && not (is_array_entry entry) ->
            let cur = V.env_lookup env entry.id in
            let refined = D.filter op cur.V.num vother in
            V.env_update env entry.id { cur with num = refined }
        | _ -> env
      end
    | Ast.Cast (_, e) -> refine_side st env e op vother
    | Ast.Binary (Ast.Add, x, e) when pure e ->
        let ve, _ = eval st env e in
        refine_side st env x op (D.binop Ast.Sub vother ve.V.num)
    | Ast.Binary (Ast.Sub, x, e) when pure e ->
        let ve, _ = eval st env e in
        refine_side st env x op (D.binop Ast.Add vother ve.V.num)
    | _ -> env

  let swap_cmp (op : Ast.binop) =
    match op with
    | Ast.Lt -> Ast.Gt
    | Ast.Gt -> Ast.Lt
    | Ast.Le -> Ast.Ge
    | Ast.Ge -> Ast.Le
    | op -> op

  let rec filter_cond st (env : V.env) (e : Ast.expr) outcome =
    if V.env_is_bot env then env
    else
      match e with
      | Ast.Unary (Ast.Not, e1) -> filter_cond st env e1 (not outcome)
      | Ast.Cast (_, e1) -> filter_cond st env e1 outcome
      | Ast.Int_lit n -> if n <> 0 = outcome then env else V.Bot
      | Ast.Binary (Ast.Land, a, b) ->
          if outcome then
            filter_cond st (filter_cond st env a true) b true
          else
            V.env_join
              (filter_cond st env a false)
              (filter_cond st env b false)
      | Ast.Binary (Ast.Lor, a, b) ->
          if outcome then
            V.env_join (filter_cond st env a true) (filter_cond st env b true)
          else filter_cond st (filter_cond st env a false) b false
      | Ast.Binary ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge)
                    as op, a, b)
        when pure a && pure b ->
          let op = if outcome then op else negate_cmp op in
          let va, _ = eval st env a in
          let vb, _ = eval st env b in
          if D.is_bottom (D.binop op va.V.num vb.V.num |> D.filter_nonzero)
          then V.Bot
          else
            let env = refine_side st env a op vb.V.num in
            refine_side st env b (swap_cmp op) va.V.num
      | Ast.Var _ when pure e ->
          let v, _ = eval st env e in
          let refined =
            if outcome then D.filter_nonzero v.V.num
            else D.filter_zero v.V.num
          in
          if D.is_bottom refined then V.Bot
          else refine_side st env e (if outcome then Ast.Ne else Ast.Eq)
                 (D.const 0)
      | _ -> env

  (* ---- per-function analysis ---------------------------------------- *)

  module Flow = Ir.Dataflow.Forward_widen (struct
    type t = V.env

    let bottom = V.Bot
    let equal = V.env_equal
    let join = V.env_join
    let widen = V.env_widen
  end)

  let cfg_of st (fn : Ast.func) =
    match Hashtbl.find_opt st.cfgs fn.Ast.f_name with
    | Some c -> c
    | None ->
        let cfg = Ir.Cfg.build fn in
        let tbl = ref [] in
        List.iter
          (Visit.iter_stmt (fun s ->
               List.iter
                 (fun e -> tbl := (e, s) :: !tbl)
                 (Visit.shallow_exprs s)))
          fn.Ast.f_body;
        let c = (cfg, !tbl) in
        Hashtbl.replace st.cfgs fn.Ast.f_name c;
        c

  let resolve_param st (fn : Ast.func) pname =
    match Ir.Symtab.resolve st.symtab ~func:fn.Ast.f_name pname with
    | Some e -> Some e.Ir.Symtab.id
    | None -> None

  let entry_env st (fn : Ast.func) =
    let ctx_args = SMap.find_opt fn.Ast.f_name st.ctx in
    let spawn_arg = SMap.find_opt fn.Ast.f_name st.spawned in
    let env = V.env_empty in
    let env, _ =
      List.fold_left
        (fun (env, i) (pname, _) ->
          match resolve_param st fn pname with
          | None -> (env, i + 1)
          | Some id ->
              let from_ctx =
                match ctx_args with
                | Some args when i < List.length args -> List.nth args i
                | _ -> V.bottom
              in
              let from_spawn =
                match spawn_arg with
                | Some v when i = 0 -> v
                | _ -> V.bottom
              in
              let v =
                if fn.Ast.f_name = st.entry then V.top
                else V.join from_ctx from_spawn
              in
              let v = if V.equal v V.bottom then V.top else v in
              (V.env_update env id v, i + 1))
        (env, 0) fn.Ast.f_params
    in
    env

  let analyze_fn st (fn : Ast.func) =
    st.cur_func <- fn.Ast.f_name;
    st.ret_acc <- V.bottom;
    let cfg, stmt_of_expr = cfg_of st fn in
    let transfer (node : Ir.Cfg.node) env =
      if V.env_is_bot env then env
      else
        match node.Ir.Cfg.kind with
        | Ir.Cfg.Statement s -> exec_stmt st env s
        | Ir.Cfg.Condition e ->
            (match List.assq_opt e stmt_of_expr with
            | Some s -> st.cur_loc <- s.Ast.s_loc
            | None -> ());
            snd (eval st env e)
        | _ -> env
    in
    let branch _node e outcome env = filter_cond st env e outcome in
    let result = Flow.solve ~branch cfg ~init:(entry_env st fn) ~transfer in
    (* summary: joined return values; a fall-through exit contributes top *)
    let exit_node = Ir.Cfg.node cfg cfg.Ir.Cfg.exit in
    let falls =
      List.exists
        (fun p ->
          let pn = Ir.Cfg.node cfg p in
          let is_return =
            match pn.Ir.Cfg.kind with
            | Ir.Cfg.Statement { Ast.s_desc = Ast.Sreturn _; _ } -> true
            | _ -> false
          in
          (not is_return)
          && not (V.env_is_bot result.Flow.out_facts.(p)))
        exit_node.Ir.Cfg.preds
    in
    let ret = if falls then V.join st.ret_acc V.top else st.ret_acc in
    let old =
      match SMap.find_opt fn.Ast.f_name st.summaries with
      | Some v -> v
      | None -> V.bottom
    in
    let nv = vmerge st old ret in
    if not (V.equal old nv) then begin
      st.summaries <- SMap.add fn.Ast.f_name nv st.summaries;
      st.changed <- true
    end

  (* ---- global store seeding ----------------------------------------- *)

  let seed_globals st =
    st.cur_func <- "";
    List.iter
      (fun (d : Ast.decl) ->
        match Ir.Symtab.resolve st.symtab d.Ast.d_name with
        | None -> ()
        | Some entry ->
            register_block st entry;
            let zero = V.of_num (D.const 0) in
            let cell, v =
              match entry.ty with
              | Ctype.Array (_, size) -> begin
                  let init =
                    match d.Ast.d_init with
                    | Some (Ast.Init_list es) ->
                        let v =
                          List.fold_left
                            (fun acc e ->
                              let ve, _ = eval st V.env_empty e in
                              V.join acc ve)
                            V.bottom es
                        in
                        let full =
                          match size with
                          | Some n -> List.length es >= n
                          | None -> true
                        in
                        if full then v else V.join v zero
                    | Some (Ast.Init_expr _) -> V.top
                    | None -> zero (* C static storage is zero-filled *)
                  in
                  (Cmem entry.id, init)
                end
              | _ ->
                  let init =
                    match d.Ast.d_init with
                    | Some (Ast.Init_expr e) -> fst (eval st V.env_empty e)
                    | Some (Ast.Init_list _) -> V.top
                    | None ->
                        if Ctype.is_pointer entry.ty then V.null else zero
                  in
                  (Cvar entry.id, init)
            in
            st.g <- CMap.add cell v st.g)
      (Ast.global_decls st.program)

  (* ---- driver -------------------------------------------------------- *)

  let should_analyze st (fn : Ast.func) =
    fn.Ast.f_name = st.entry
    || SMap.mem fn.Ast.f_name st.ctx
    || SMap.mem fn.Ast.f_name st.spawned

  let is_thread_fn st (fn : Ast.func) = SMap.mem fn.Ast.f_name st.spawned

  let sweep st funcs ~filter =
    List.iter (fun fn -> if should_analyze st fn && filter fn then
                  analyze_fn st fn)
      funcs

  let iterate st funcs ~filter =
    let continue_ = ref true in
    while !continue_ && st.rounds < max_rounds do
      st.rounds <- st.rounds + 1;
      st.widen_now <- st.rounds >= widen_round;
      st.changed <- false;
      sweep st funcs ~filter;
      continue_ := st.changed
    done

  (* ---- summary ------------------------------------------------------- *)

  let summarize st =
    let obligations =
      Hashtbl.fold (fun _ o acc -> o :: acc) st.obligs []
      |> List.sort Oblig.compare_site
    in
    let spawns =
      SMap.bindings st.spawn_sites
      |> List.map (fun (key, itv) ->
             let loc, fname =
               match String.rindex_opt key '/' with
               | Some i ->
                   ( String.sub key 0 i,
                     String.sub key (i + 1) (String.length key - i - 1) )
               | None -> (key, key)
             in
             let parse_loc s =
               match String.split_on_char ':' s with
               | [ file; line; col ] -> begin
                   try
                     Srcloc.make ~file ~line:(int_of_string line)
                       ~col:(int_of_string col)
                   with _ -> Srcloc.dummy
                 end
               | _ -> Srcloc.dummy
             in
             { Oblig.sp_func = fname; sp_loc = parse_loc loc;
               sp_interval = D.to_string itv })
      |> List.sort (fun a b ->
             compare
               (a.Oblig.sp_loc.Srcloc.line, a.Oblig.sp_loc.Srcloc.col)
               (b.Oblig.sp_loc.Srcloc.line, b.Oblig.sp_loc.Srcloc.col))
    in
    let gfacts =
      VMap.bindings st.gaccess
      |> List.map (fun (id, ext) ->
             let extent, interval, single =
               match ext with
               | Emain -> (Oblig.Main_only, "", false)
               | Emixed -> (Oblig.Mixed, "", false)
               | Ethread (f, itv) ->
                   if SSet.mem f st.direct_called then
                     (Oblig.Mixed, D.to_string itv, false)
                   else
                     ( Oblig.Single_thread f,
                       D.to_string itv,
                       D.singleton itv <> None )
             in
             { Oblig.gf_name = id.Ir.Var_id.name; gf_extent = extent;
               gf_interval = interval; gf_single_instance = single;
               gf_addr_taken = VSet.mem id st.addr_taken })
      |> List.sort (fun a b -> compare a.Oblig.gf_name b.Oblig.gf_name)
    in
    let functions =
      List.filter_map
        (fun (fn : Ast.func) ->
          if should_analyze st fn then Some fn.Ast.f_name else None)
        (Ast.functions st.program)
    in
    { Oblig.s_mode = st.conf.mode; s_domain = D.name;
      s_obligations = obligations; s_spawns = spawns; s_gfacts = gfacts;
      s_rounds = st.rounds; s_functions = functions }

  let run conf (program : Ast.program) =
    let symtab = Ir.Symtab.build program in
    let entry =
      if Ast.find_function program "RCCE_APP" <> None then "RCCE_APP"
      else "main"
    in
    let st =
      { conf; symtab; program; entry;
        cfgs = Hashtbl.create 16; blocks = Hashtbl.create 32;
        allocs = Hashtbl.create 16; obligs = Hashtbl.create 64;
        g = CMap.empty; ctx = SMap.empty; spawned = SMap.empty;
        summaries = SMap.empty; spawn_sites = SMap.empty;
        gaccess = VMap.empty; addr_taken = VSet.empty;
        direct_called = SSet.empty; changed = false; widen_now = false;
        collect = false; rounds = 0; cur_func = "";
        cur_loc = Srcloc.dummy; ret_acc = V.bottom }
    in
    seed_globals st;
    let funcs = Ast.functions program in
    if conf.interference then begin
      iterate st funcs ~filter:(fun _ -> true);
      st.collect <- true;
      sweep st funcs ~filter:(fun _ -> true)
    end
    else begin
      (* Naive sequential lifting: fixpoint over the sequential part, then
         each thread body against a snapshot of the store, its writes
         discarded afterwards.  Unsound in the presence of interference —
         this is the strawman the unit tests compare against. *)
      iterate st funcs ~filter:(fun fn -> not (is_thread_fn st fn));
      let snapshot = st.g in
      st.collect <- true;
      sweep st funcs ~filter:(fun fn -> not (is_thread_fn st fn));
      st.collect <- false;
      List.iter
        (fun fn ->
          if is_thread_fn st fn then begin
            st.g <- snapshot;
            st.rounds <- 0;
            iterate st funcs ~filter:(fun f ->
                f.Ast.f_name = fn.Ast.f_name
                || (not (is_thread_fn st f)
                    && f.Ast.f_name <> st.entry));
            st.collect <- true;
            analyze_fn st fn;
            st.collect <- false
          end)
        funcs;
      st.g <- snapshot
    end;
    summarize st
end
