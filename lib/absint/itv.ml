open Cfront

type bound = Ninf | Fin of int | Pinf

type t = Bot | Itv of bound * bound

let name = "interval"

let bottom = Bot
let top = Itv (Ninf, Pinf)

let is_bottom v = v = Bot

let const n = Itv (Fin n, Fin n)
let range lo hi = if lo > hi then Bot else Itv (Fin lo, Fin hi)

(* Bound arithmetic.  [add_b]/[mul_b] saturate: a finite result that
   overflows the native integer is replaced by the matching infinity. *)

let bcmp a b =
  match (a, b) with
  | Ninf, Ninf | Pinf, Pinf -> 0
  | Ninf, _ -> -1
  | _, Ninf -> 1
  | Pinf, _ -> 1
  | _, Pinf -> -1
  | Fin x, Fin y -> compare x y

let bmin a b = if bcmp a b <= 0 then a else b
let bmax a b = if bcmp a b >= 0 then a else b

let add_b a b =
  match (a, b) with
  | Ninf, Pinf | Pinf, Ninf -> invalid_arg "Itv.add_b"
  | Ninf, _ | _, Ninf -> Ninf
  | Pinf, _ | _, Pinf -> Pinf
  | Fin x, Fin y ->
      let s = x + y in
      if x > 0 && y > 0 && s < 0 then Pinf
      else if x < 0 && y < 0 && s >= 0 then Ninf
      else Fin s

let neg_b = function Ninf -> Pinf | Pinf -> Ninf | Fin x -> Fin (-x)

let mul_b a b =
  let sign = function
    | Ninf -> -1
    | Pinf -> 1
    | Fin x -> compare x 0
  in
  match (a, b) with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Fin x, Fin y ->
      let p = x * y in
      if p / y <> x then if sign a * sign b > 0 then Pinf else Ninf
      else Fin p
  | _ -> if sign a * sign b > 0 then Pinf else Ninf

let mk lo hi = if bcmp lo hi > 0 then Bot else Itv (lo, hi)

let equal a b = a = b

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv (l1, h1), Itv (l2, h2) -> bcmp l2 l1 <= 0 && bcmp h1 h2 <= 0

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv (l1, h1), Itv (l2, h2) -> Itv (bmin l1 l2, bmax h1 h2)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) -> mk (bmax l1 l2) (bmin h1 h2)

let widen old next =
  match (old, next) with
  | Bot, x -> x
  | x, Bot -> x
  | Itv (l1, h1), Itv (l2, h2) ->
      let lo = if bcmp l2 l1 < 0 then Ninf else l1 in
      let hi = if bcmp h2 h1 > 0 then Pinf else h1 in
      Itv (lo, hi)

let contained_in v ~lo ~hi =
  match v with
  | Bot -> true
  | Itv (l, h) -> bcmp (Fin lo) l <= 0 && bcmp h (Fin hi) <= 0

let disjoint_from v ~lo ~hi = meet v (range lo hi) = Bot

let singleton = function
  | Itv (Fin a, Fin b) when a = b -> Some a
  | _ -> None

let neg = function
  | Bot -> Bot
  | Itv (l, h) -> Itv (neg_b h, neg_b l)

let bnot v =
  (* ~x = -x - 1 *)
  match neg v with
  | Bot -> Bot
  | Itv (l, h) -> Itv (add_b l (Fin (-1)), add_b h (Fin (-1)))

let lognot = function
  | Bot -> Bot
  | Itv (l, h) as v ->
      if l = Fin 0 && h = Fin 0 then const 1
      else if meet v (const 0) = Bot then const 0
      else range 0 1

let filter_nonzero v =
  match v with
  | Itv (Fin 0, Fin 0) -> Bot
  | Itv (Fin 0, h) -> mk (Fin 1) h
  | Itv (l, Fin 0) -> mk l (Fin (-1))
  | v -> v

let filter_zero v = meet v (const 0)

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) -> Itv (add_b l1 l2, add_b h1 h2)

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) ->
      let c = [ mul_b l1 l2; mul_b l1 h2; mul_b h1 l2; mul_b h1 h2 ] in
      Itv (List.fold_left bmin Pinf c, List.fold_left bmax Ninf c)

(* Truncated division and remainder are only modelled for a divisor that is
   strictly positive (the common case: literal divisors); anything else
   goes to top — dividing by a range containing zero is undefined anyway. *)
let div a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) ->
      if bcmp l2 (Fin 1) < 0 then top
      else
        let div_b x y =
          match (x, y) with
          | Ninf, _ -> Ninf
          | Pinf, _ -> Pinf
          | Fin v, Fin d -> Fin (v / d)
          | Fin v, Pinf -> Fin (if v = min_int then -1 else 0)
          | _, Ninf -> assert false
        in
        let c = [ div_b l1 l2; div_b l1 h2; div_b h1 l2; div_b h1 h2 ] in
        Itv (List.fold_left bmin Pinf c, List.fold_left bmax Ninf c)

let rem a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (_, h2) as _ab -> begin
      match b with
      | Itv (l2, _) when bcmp l2 (Fin 1) >= 0 -> begin
          match h2 with
          | Fin d ->
              if bcmp l1 (Fin 0) >= 0 then
                (* nonnegative dividend: 0 <= a % b <= min(a, d-1) *)
                Itv (Fin 0, bmin h1 (Fin (d - 1)))
              else Itv (Fin (-(d - 1)), Fin (d - 1))
          | _ -> if bcmp l1 (Fin 0) >= 0 then Itv (Fin 0, h1) else top
        end
      | _ -> top
    end

(* x & m with m >= 0 lands in [0, m] in two's complement whatever the sign
   of x, so a nonnegative side bounds the result on its own. *)
let band a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) ->
      let nonneg l = bcmp l (Fin 0) >= 0 in
      if nonneg l1 && nonneg l2 then Itv (Fin 0, bmin h1 h2)
      else if nonneg l1 then Itv (Fin 0, h1)
      else if nonneg l2 then Itv (Fin 0, h2)
      else top

(* | and ^ of nonnegatives stay below the next power of two of the larger
   operand. *)
let pow2_ceil n =
  let rec go p = if p > n then p - 1 else go (p * 2) in
  if n < 0 then max_int else go 1

let bor a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) -> begin
      match (l1, l2, h1, h2) with
      | Fin x1, Fin x2, Fin y1, Fin y2 when x1 >= 0 && x2 >= 0 ->
          Itv (Fin 0, Fin (pow2_ceil (max y1 y2)))
      | _ -> top
    end

let bxor = bor

let shl a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, _), Itv (l2, _) -> begin
      match (a, b) with
      | Itv (_, Fin _), Itv (_, Fin h2)
        when bcmp l1 (Fin 0) >= 0 && bcmp l2 (Fin 0) >= 0 && h2 < 62 ->
          mul a (Itv (Fin 1, Fin (1 lsl h2)))
      | _ -> top
    end

let shr a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, _) ->
      if bcmp l1 (Fin 0) >= 0 && bcmp l2 (Fin 0) >= 0 then Itv (Fin 0, h1)
      else top

(* Comparisons decide to a constant when the interval endpoints settle the
   outcome; otherwise [0, 1]. *)
let cmp_result op a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) -> begin
      let always, never =
        match (op : Ast.binop) with
        | Ast.Lt -> (bcmp h1 l2 < 0, bcmp l1 h2 >= 0)
        | Ast.Le -> (bcmp h1 l2 <= 0, bcmp l1 h2 > 0)
        | Ast.Gt -> (bcmp l1 h2 > 0, bcmp h1 l2 <= 0)
        | Ast.Ge -> (bcmp l1 h2 >= 0, bcmp h1 l2 < 0)
        | Ast.Eq -> (
            (match (singleton a, singleton b) with
            | Some x, Some y -> x = y
            | _ -> false),
            meet a b = Bot )
        | Ast.Ne -> (
            meet a b = Bot,
            match (singleton a, singleton b) with
            | Some x, Some y -> x = y
            | _ -> false )
        | _ -> (false, false)
      in
      if always then const 1 else if never then const 0 else range 0 1
    end

let logical_result a b ~conj =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ ->
      let t v = meet v (const 0) = Bot in
      let f v = equal v (const 0) in
      if conj then
        if t a && t b then const 1
        else if f a || f b then const 0
        else range 0 1
      else if t a || t b then const 1
      else if f a && f b then const 0
      else range 0 1

let binop (op : Ast.binop) a b =
  match op with
  | Ast.Add -> add a b
  | Ast.Sub -> sub a b
  | Ast.Mul -> mul a b
  | Ast.Div -> div a b
  | Ast.Mod -> rem a b
  | Ast.Band -> band a b
  | Ast.Bor -> bor a b
  | Ast.Bxor -> bxor a b
  | Ast.Shl -> shl a b
  | Ast.Shr -> shr a b
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> cmp_result op a b
  | Ast.Land -> logical_result a b ~conj:true
  | Ast.Lor -> logical_result a b ~conj:false

let filter (op : Ast.binop) a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _, Itv (l2, h2) -> begin
      match op with
      | Ast.Lt -> meet a (mk Ninf (add_b h2 (Fin (-1))))
      | Ast.Le -> meet a (mk Ninf h2)
      | Ast.Gt -> meet a (mk (add_b l2 (Fin 1)) Pinf)
      | Ast.Ge -> meet a (mk l2 Pinf)
      | Ast.Eq -> meet a b
      | Ast.Ne -> begin
          match (a, singleton b) with
          | Itv (l1, h1), Some n ->
              if l1 = Fin n && h1 = Fin n then Bot
              else if l1 = Fin n then mk (Fin (n + 1)) h1
              else if h1 = Fin n then mk l1 (Fin (n - 1))
              else a
          | _ -> a
        end
      | _ -> a
    end

let to_string = function
  | Bot -> "bot"
  | Itv (l, h) ->
      let b = function
        | Ninf -> "-inf"
        | Pinf -> "+inf"
        | Fin x -> string_of_int x
      in
      Printf.sprintf "[%s,%s]" (b l) (b h)
