(** Interval abstract domain: the classic instance of {!Domain_sig.S}.

    Bounds are OCaml integers extended with infinities; arithmetic on
    finite bounds saturates to the matching infinity on overflow, which is
    a sound over-approximation. *)

type bound = Ninf | Fin of int | Pinf

type t = Bot | Itv of bound * bound
(** Non-[Bot] values are normalized: lower bound not above the upper. *)

include Domain_sig.S with type t := t
