open Cfront

(* Proof obligations and the domain-neutral analysis summary.

   The engine renders intervals to strings before they leave the functor,
   so sessions, reports and tests handle one concrete type regardless of
   the numeric domain in use. *)

type status =
  | Proved
  | Unproved of string  (** reason the interval did not discharge it *)
  | Out_of_bounds       (** every concrete index is outside the block *)

type kind = Index | Deref

type t = {
  o_func : string;          (** function containing the access *)
  o_loc : Srcloc.t;
  o_path : string;          (** rendered access expression *)
  o_kind : kind;
  o_blocks : string list;   (** storage blocks the base may address *)
  o_alloc : string option;  (** allocator when a block is heap-backed,
                                e.g. ["RCCE_shmalloc"] *)
  o_index : string;         (** inferred index interval *)
  o_bound : int option;     (** smallest element count over the blocks *)
  o_status : status;
}

type mode = Pthread | Rcce

type spawn_fact = {
  sp_func : string;      (** spawned thread function *)
  sp_loc : Srcloc.t;     (** create site *)
  sp_interval : string;  (** inferred range of the thread-id argument *)
}

type extent = Main_only | Single_thread of string | Mixed

type gfact = {
  gf_name : string;
  gf_extent : extent;
  gf_interval : string;       (** joined thread extent at access sites *)
  gf_single_instance : bool;  (** the extent interval is a singleton *)
  gf_addr_taken : bool;
}

type summary = {
  s_mode : mode;
  s_domain : string;
  s_obligations : t list;    (** sorted by location *)
  s_spawns : spawn_fact list;
  s_gfacts : gfact list;
  s_rounds : int;            (** interference iterations to the fixpoint *)
  s_functions : string list; (** functions reached by the analysis *)
}

let mode_to_string = function Pthread -> "pthread" | Rcce -> "rcce"

let kind_to_string = function Index -> "index" | Deref -> "deref"

let status_to_string = function
  | Proved -> "proved"
  | Unproved _ -> "unproved"
  | Out_of_bounds -> "out-of-bounds"

let is_proved o = o.o_status = Proved

let all_proved s = List.for_all is_proved s.s_obligations

let unproved s = List.filter (fun o -> not (is_proved o)) s.s_obligations

let shmalloc_obligations s =
  List.filter (fun o -> o.o_alloc = Some "RCCE_shmalloc") s.s_obligations

let compare_site a b =
  let c = compare a.o_loc.Srcloc.line b.o_loc.Srcloc.line in
  if c <> 0 then c
  else
    let c = compare a.o_loc.Srcloc.col b.o_loc.Srcloc.col in
    if c <> 0 then c
    else
      let c = compare a.o_func b.o_func in
      if c <> 0 then c else compare a.o_path b.o_path
