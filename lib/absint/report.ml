open Cfront

(* Rendering of an analysis summary: human-readable text for the terminal,
   a deterministic JSON document for golden tests and tooling, and lib/diag
   diagnostics for the undischarged obligations. *)

let buf_add = Buffer.add_string

(* ---- diagnostics ---------------------------------------------------- *)

let diag_of_oblig (o : Oblig.t) =
  let target =
    match o.Oblig.o_alloc with
    | Some "RCCE_shmalloc" -> "shmalloc region"
    | Some fn -> fn ^ " region"
    | None -> "block"
  in
  let blocks =
    match o.Oblig.o_blocks with
    | [] -> ""
    | bs -> Printf.sprintf " of %s" (String.concat ", " bs)
  in
  let bound =
    match o.Oblig.o_bound with
    | Some n -> Printf.sprintf " (%d element%s)" n (if n = 1 then "" else "s")
    | None -> ""
  in
  match o.Oblig.o_status with
  | Oblig.Proved -> None
  | Oblig.Out_of_bounds ->
      Some
        (Diag.error ~loc:o.Oblig.o_loc ~code:"bounds"
           (Printf.sprintf
              "`%s' in %s is out of bounds: index %s never enters the %s%s%s"
              o.Oblig.o_path o.Oblig.o_func o.Oblig.o_index target blocks
              bound))
  | Oblig.Unproved reason ->
      Some
        (Diag.warning ~loc:o.Oblig.o_loc ~code:"bounds"
           (Printf.sprintf
              "cannot prove `%s' in %s within the %s%s%s: %s"
              o.Oblig.o_path o.Oblig.o_func target blocks bound reason))

let diags_of (s : Oblig.summary) =
  List.filter_map diag_of_oblig s.Oblig.s_obligations

(* ---- human-readable report ------------------------------------------ *)

let render_human (s : Oblig.summary) =
  let b = Buffer.create 1024 in
  let proved =
    List.length (List.filter Oblig.is_proved s.Oblig.s_obligations)
  in
  let total = List.length s.Oblig.s_obligations in
  buf_add b
    (Printf.sprintf "%s program: %d/%d accesses proved in bounds (%s, %d rounds)\n"
       (Oblig.mode_to_string s.Oblig.s_mode) proved total s.Oblig.s_domain
       s.Oblig.s_rounds);
  List.iter
    (fun (o : Oblig.t) ->
      buf_add b
        (Printf.sprintf "  %-14s %s  %s : %s%s\n"
           ("[" ^ Oblig.status_to_string o.Oblig.o_status ^ "]")
           (Srcloc.to_string o.Oblig.o_loc) o.Oblig.o_path o.Oblig.o_index
           (match o.Oblig.o_bound with
           | Some n -> Printf.sprintf " vs [0,%d]" (n - 1)
           | None -> "")))
    s.Oblig.s_obligations;
  List.iter
    (fun (sp : Oblig.spawn_fact) ->
      buf_add b
        (Printf.sprintf "  spawn %s at %s: thread ids %s\n" sp.Oblig.sp_func
           (Srcloc.to_string sp.Oblig.sp_loc) sp.Oblig.sp_interval))
    s.Oblig.s_spawns;
  Buffer.contents b

(* ---- JSON report ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> buf_add b "\\\""
      | '\\' -> buf_add b "\\\\"
      | '\n' -> buf_add b "\\n"
      | c when Char.code c < 0x20 ->
          buf_add b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One summary as a JSON object at indentation [ind] (no trailing
   newline); [render_json] stitches one or more of these — the source
   program and its translation — into the `hsmcc verify --json`
   document. *)
let render_json_run ~ind (s : Oblig.summary) =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun l -> buf_add b (ind ^ "  " ^ l)) fmt in
  buf_add b (ind ^ "{\n");
  line "\"mode\": \"%s\",\n" (Oblig.mode_to_string s.Oblig.s_mode);
  line "\"domain\": \"%s\",\n" s.Oblig.s_domain;
  line "\"rounds\": %d,\n" s.Oblig.s_rounds;
  line "\"functions\": [%s],\n"
    (String.concat ", "
       (List.map (fun f -> "\"" ^ json_escape f ^ "\"") s.Oblig.s_functions));
  let proved =
    List.length (List.filter Oblig.is_proved s.Oblig.s_obligations)
  in
  line "\"proved\": %d,\n" proved;
  line "\"total\": %d,\n" (List.length s.Oblig.s_obligations);
  line "\"obligations\": [";
  let first = ref true in
  List.iter
    (fun (o : Oblig.t) ->
      if !first then first := false else buf_add b ",";
      buf_add b ("\n" ^ ind ^ "    { ");
      buf_add b
        (String.concat ", "
           ([ Printf.sprintf "\"line\": %d" o.Oblig.o_loc.Srcloc.line;
              Printf.sprintf "\"col\": %d" o.Oblig.o_loc.Srcloc.col;
              Printf.sprintf "\"func\": \"%s\"" (json_escape o.Oblig.o_func);
              Printf.sprintf "\"path\": \"%s\"" (json_escape o.Oblig.o_path);
              Printf.sprintf "\"kind\": \"%s\""
                (Oblig.kind_to_string o.Oblig.o_kind);
              Printf.sprintf "\"blocks\": [%s]"
                (String.concat ", "
                   (List.map
                      (fun n -> "\"" ^ json_escape n ^ "\"")
                      o.Oblig.o_blocks)) ]
           @ (match o.Oblig.o_alloc with
             | Some a -> [ Printf.sprintf "\"alloc\": \"%s\"" (json_escape a) ]
             | None -> [])
           @ [ Printf.sprintf "\"index\": \"%s\""
                 (json_escape o.Oblig.o_index) ]
           @ (match o.Oblig.o_bound with
             | Some n -> [ Printf.sprintf "\"bound\": %d" n ]
             | None -> [])
           @ [ Printf.sprintf "\"status\": \"%s\""
                 (Oblig.status_to_string o.Oblig.o_status) ]
           @
           match o.Oblig.o_status with
           | Oblig.Unproved reason ->
               [ Printf.sprintf "\"reason\": \"%s\"" (json_escape reason) ]
           | _ -> []));
      buf_add b " }")
    s.Oblig.s_obligations;
  if not !first then buf_add b ("\n" ^ ind ^ "  ");
  buf_add b "],\n";
  line "\"spawns\": [";
  let first = ref true in
  List.iter
    (fun (sp : Oblig.spawn_fact) ->
      if !first then first := false else buf_add b ",";
      buf_add b
        (Printf.sprintf
           "\n%s    { \"line\": %d, \"col\": %d, \"func\": \"%s\", \
            \"ids\": \"%s\" }"
           ind sp.Oblig.sp_loc.Srcloc.line sp.Oblig.sp_loc.Srcloc.col
           (json_escape sp.Oblig.sp_func)
           (json_escape sp.Oblig.sp_interval)))
    s.Oblig.s_spawns;
  if not !first then buf_add b ("\n" ^ ind ^ "  ");
  buf_add b ("]\n" ^ ind ^ "}");
  Buffer.contents b

let render_json ~file (runs : Oblig.summary list) =
  let b = Buffer.create 4096 in
  buf_add b "{\n";
  buf_add b (Printf.sprintf "  \"file\": \"%s\",\n" (json_escape file));
  buf_add b "  \"runs\": [\n";
  buf_add b
    (String.concat ",\n"
       (List.map (fun s -> render_json_run ~ind:"    " s) runs));
  buf_add b "\n  ]\n}\n";
  Buffer.contents b
