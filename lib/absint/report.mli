(** Rendering of an analysis summary: [lib/diag] diagnostics for the
    undischarged obligations, a human-readable report, and the
    deterministic JSON document behind [hsmcc verify --json]. *)

val diag_of_oblig : Oblig.t -> Diag.t option
(** [None] for a proved obligation; a warning for [Unproved], an error
    for [Out_of_bounds] — both carrying the access path, the inferred
    interval and the target region. *)

val diags_of : Oblig.summary -> Diag.t list

val render_human : Oblig.summary -> string

val render_json_run : ind:string -> Oblig.summary -> string
(** One summary as a JSON object at indentation [ind], no trailing
    newline. *)

val render_json : file:string -> Oblig.summary list -> string
(** The [hsmcc verify --json] document: the CLI-visible [file] plus one
    run object per analyzed generation (source, then translation).
    Field order is fixed, so golden tests may byte-compare. *)
