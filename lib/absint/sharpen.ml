(* Feed proven thread-locality facts back into the sharing lattice.

   A global the scope analysis marked [Shared] can be demoted to
   [Private] when the abstract interpretation proves that exactly one
   thread ever touches it:

   - every access happens inside a single thread function [f] that is
     never called directly (only spawned), and
   - either [f] has exactly one dynamic instance, or the joined
     thread-id interval over all access sites is a singleton (the
     accesses are guarded so that one specific thread performs them),
   - and the variable's address is never taken (an escaping address
     could smuggle the storage into another thread).

   The demotion goes through {!Analysis.Sharing.refine}, so the
   lattice's flip-once law still holds; [can_refine] is consulted first
   and anything already flipped is left alone. *)

module Thread_analysis = Analysis.Thread_analysis
module Scope_analysis = Analysis.Scope_analysis
module Sharing = Analysis.Sharing

(* Number of dynamic instances of thread function [f], when statically
   known: sites outside loops count 1, create-loops with a known trip
   count their trip.  [None] when any site's multiplicity is unknown. *)
let instances_of (threads : Thread_analysis.t) f =
  let sites =
    List.filter (fun (s : Thread_analysis.site) -> s.thread_func = f)
      threads.sites
  in
  List.fold_left
    (fun acc (s : Thread_analysis.site) ->
      match acc with
      | None -> None
      | Some n ->
          if not s.in_loop then Some (n + 1)
          else
            (match s.loop_trip with
            | Some t -> Some (n + t)
            | None -> None))
    (Some 0) sites

let refineable ~(threads : Thread_analysis.t) (s : Oblig.summary) =
  List.filter_map
    (fun (g : Oblig.gfact) ->
      match g.Oblig.gf_extent with
      | Oblig.Single_thread f
        when (not g.Oblig.gf_addr_taken)
             && (instances_of threads f = Some 1
                || g.Oblig.gf_single_instance) ->
          Some g.Oblig.gf_name
      | _ -> None)
    s.Oblig.s_gfacts

(* Apply the demotions to the scope table; returns the names actually
   refined (already-private or flip-exhausted records are skipped). *)
let apply ~(scope : Scope_analysis.t) ~(threads : Thread_analysis.t)
    (s : Oblig.summary) =
  List.filter
    (fun name ->
      let id = Ir.Var_id.global name in
      match Scope_analysis.find scope id with
      | None -> false
      | Some (info : Analysis.Varinfo.t) ->
          Sharing.status info.sharing = Sharing.Shared
          && Sharing.can_refine info.sharing Sharing.Private
          && begin
               Sharing.refine info.sharing Sharing.Private;
               true
             end)
    (refineable ~threads s)
