(** Feed proven thread-locality facts back into the sharing lattice.

    A global the scope analysis marked [Shared] is demoted to [Private]
    when the abstract interpretation proves exactly one thread ever
    touches it: every access lies in a single spawned-only thread
    function, that function has one dynamic instance (or the accesses
    are guarded to a singleton thread id), and the global's address is
    never taken. *)

val instances_of : Analysis.Thread_analysis.t -> string -> int option
(** Statically-known dynamic instance count of a thread function, or
    [None] when some create site's multiplicity is unknown. *)

val refineable :
  threads:Analysis.Thread_analysis.t -> Oblig.summary -> string list
(** Globals whose extent facts justify a [Shared] -> [Private]
    demotion, in summary order. *)

val apply :
  scope:Analysis.Scope_analysis.t ->
  threads:Analysis.Thread_analysis.t ->
  Oblig.summary ->
  string list
(** Apply the demotions to the scope table through
    {!Analysis.Sharing.refine} (the flip-once law is respected via
    [can_refine]); returns the names actually refined. *)
