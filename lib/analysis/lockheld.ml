open Cfront

(* Forward must-hold-locks dataflow over a function's CFG.

   The fact at a program point is the set of mutexes held on *every* path
   reaching it, so the merge at a join is set intersection and the
   unreached state is "all locks" (the top of the must lattice).
   [pthread_mutex_lock(&m)] adds [m]; [pthread_mutex_unlock(&m)] removes
   it; the RCCE test-and-set pair [RCCE_acquire_lock(n)] /
   [RCCE_release_lock(n)] with a statically-known lock number behaves the
   same through a synthetic per-number variable, so the detector also
   covers already-translated programs.

   The analysis is intraprocedural: a call to an unknown function is
   assumed to preserve the lockset, which matches the translator's C
   subset where mutex operations are always direct calls. *)

type fact = All | Held of Ir.Var_id.Set.t

let fact_equal a b =
  match a, b with
  | All, All -> true
  | Held a, Held b -> Ir.Var_id.Set.equal a b
  | All, Held _ | Held _, All -> false

let fact_join a b =
  match a, b with
  | All, f | f, All -> f
  | Held a, Held b -> Held (Ir.Var_id.Set.inter a b)

module Flow = Ir.Dataflow.Forward (struct
  type t = fact
  let bottom = All
  let equal = fact_equal
  let join = fact_join
end)

type t = { cfg : Ir.Cfg.t; result : Flow.result }

(* The mutex behind [&m] / [m] / [mutexes[i]] — the base variable. *)
let rec mutex_of_arg symtab ~func e =
  match e with
  | Ast.Unary (Ast.Addr, e) | Ast.Cast (_, e) -> mutex_of_arg symtab ~func e
  | Ast.Var name -> Ir.Symtab.resolve_id symtab ?func name
  | Ast.Index (arr, _) -> mutex_of_arg symtab ~func arr
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Unary _ | Ast.Binary _ | Ast.Assign _ | Ast.Cond _ | Ast.Call _
  | Ast.Sizeof_type _ | Ast.Sizeof_expr _ | Ast.Comma _ -> None

(* RCCE locks are numbered, not named; a statically-known number gets a
   synthetic global so it can live in the same lockset as mutexes. *)
let rcce_lock_var e =
  match e with
  | Ast.Int_lit n -> Some (Ir.Var_id.global (Printf.sprintf "<rcce-lock-%d>" n))
  | _ -> None

let transfer symtab ~func (node : Ir.Cfg.node) fact =
  match fact with
  | All -> All
  | Held held ->
      let held = ref held in
      List.iter
        (Visit.iter_expr (fun e ->
             match e with
             | Ast.Call ("pthread_mutex_lock", [ m ]) -> begin
                 match mutex_of_arg symtab ~func m with
                 | Some id -> held := Ir.Var_id.Set.add id !held
                 | None -> ()
               end
             | Ast.Call ("pthread_mutex_unlock", [ m ]) -> begin
                 match mutex_of_arg symtab ~func m with
                 | Some id -> held := Ir.Var_id.Set.remove id !held
                 | None ->
                     (* unlock of an unresolvable mutex: drop everything,
                        staying a must-approximation *)
                     held := Ir.Var_id.Set.empty
               end
             | Ast.Call ("RCCE_acquire_lock", [ n ]) -> begin
                 match rcce_lock_var n with
                 | Some id -> held := Ir.Var_id.Set.add id !held
                 | None -> ()
               end
             | Ast.Call ("RCCE_release_lock", [ n ]) -> begin
                 match rcce_lock_var n with
                 | Some id -> held := Ir.Var_id.Set.remove id !held
                 | None -> held := Ir.Var_id.Set.empty
               end
             | _ -> ()))
        (Ir.Cfg.exprs_of_node node);
      Held !held

let analyze symtab (fn : Ast.func) =
  let cfg = Ir.Cfg.build fn in
  let func = Some fn.Ast.f_name in
  let result =
    Flow.solve cfg ~init:(Held Ir.Var_id.Set.empty)
      ~transfer:(transfer symtab ~func)
  in
  { cfg; result }

let cfg t = t.cfg

(* Locks held on every path *before* the node executes.  An access inside
   the statement that also performs the lock call conservatively uses the
   pre-statement set. *)
let held_before t id =
  match t.result.Flow.in_facts.(id) with
  | All -> Ir.Var_id.Set.empty   (* unreachable node: nothing to protect *)
  | Held s -> s

let held_after t id =
  match t.result.Flow.out_facts.(id) with
  | All -> Ir.Var_id.Set.empty
  | Held s -> s
