open Cfront

(** Forward must-hold-locks dataflow over one function's CFG: the set of
    mutexes provably held at every program point (join = intersection).
    Recognizes [pthread_mutex_lock]/[pthread_mutex_unlock] and the RCCE
    [RCCE_acquire_lock]/[RCCE_release_lock] pair with statically-known
    lock numbers. *)

type fact = All | Held of Ir.Var_id.Set.t
(** [All] is the unreached top of the must lattice. *)

type t

val analyze : Ir.Symtab.t -> Ast.func -> t

val cfg : t -> Ir.Cfg.t
(** The CFG the solution is indexed by. *)

val held_before : t -> int -> Ir.Var_id.Set.t
(** Locks held on every path before node [id] executes (empty for
    unreachable nodes). *)

val held_after : t -> int -> Ir.Var_id.Set.t

val mutex_of_arg :
  Ir.Symtab.t -> func:string option -> Ast.expr -> Ir.Var_id.t option
(** Base variable of a mutex argument ([&m], [m], [mutexes[i]]). *)
