open Cfront

(* The analysis phase of the framework: Stages 1-3 run in order, with a
   snapshot of every variable's sharing status taken after each stage —
   exactly the columns of the paper's Table 4.2. *)

type snapshot = Sharing.status Ir.Var_id.Map.t

type t = {
  scope : Scope_analysis.t;
  threads : Thread_analysis.t;
  points_to : Points_to.t;
  access : Access_count.t;
  after_stage1 : snapshot;
  after_stage2 : snapshot;
  after_stage3 : snapshot;
}

let snapshot (scope : Scope_analysis.t) : snapshot =
  List.fold_left
    (fun acc id ->
      let info = Scope_analysis.get scope id in
      Ir.Var_id.Map.add id (Sharing.status info.Varinfo.sharing) acc)
    Ir.Var_id.Map.empty scope.Scope_analysis.all_vars

(* The stages as separately callable steps, so a demand-driven session
   (lib/session) can run — and memoize — each exactly once.  Stage 2 and
   Stage 3 refine [scope] in place, so the caller must force them in
   order; the sharing snapshot each returns is the corresponding Table
   4.2 column. *)

let stage1 symtab =
  let scope = Scope_analysis.run symtab in
  (scope, snapshot scope)

let stage2 scope =
  let threads = Thread_analysis.run scope in
  Thread_analysis.refine_sharing scope threads;
  (threads, snapshot scope)

let stage3 ?(include_possible = false) symtab scope =
  let points_to = Points_to.run symtab in
  Points_to.refine_sharing ~include_possible scope points_to;
  Points_to.demote_unused_globals scope;
  (points_to, snapshot scope)

let analyze ?include_possible (program : Ast.program) =
  let symtab = Ir.Symtab.build program in
  let scope, after_stage1 = stage1 symtab in
  let threads, after_stage2 = stage2 scope in
  let points_to, after_stage3 = stage3 ?include_possible symtab scope in
  let access = Access_count.run scope threads in
  { scope; threads; points_to; access;
    after_stage1; after_stage2; after_stage3 }

let status_in snap id =
  match Ir.Var_id.Map.find_opt id snap with
  | Some s -> s
  | None -> Sharing.Unknown

let shared_variables t =
  List.filter
    (fun (info : Varinfo.t) ->
      Sharing.status info.Varinfo.sharing = Sharing.Shared)
    (Scope_analysis.infos t.scope)

let is_shared t id =
  match Scope_analysis.find t.scope id with
  | Some info -> Sharing.status info.Varinfo.sharing = Sharing.Shared
  | None -> false

(* Table 4.1: information extracted per variable (post Stage 3). *)
let table_4_1 t =
  Varinfo.row_header
  :: List.map Varinfo.to_row (Scope_analysis.infos t.scope)

(* Table 4.2: sharing status after each stage. *)
let table_4_2 t =
  [ "Variable"; "Stage 1"; "Stage 2"; "Stage 3" ]
  :: List.map
       (fun id ->
         [
           id.Ir.Var_id.name;
           Sharing.status_to_string (status_in t.after_stage1 id);
           Sharing.status_to_string (status_in t.after_stage2 id);
           Sharing.status_to_string (status_in t.after_stage3 id);
         ])
       t.scope.Scope_analysis.all_vars
