open Cfront

(** The analysis phase of the framework: Stages 1–3 in order, with a
    snapshot of every variable's sharing status after each stage (the
    columns of Table 4.2). *)

type snapshot = Sharing.status Ir.Var_id.Map.t

type t = {
  scope : Scope_analysis.t;
  threads : Thread_analysis.t;
  points_to : Points_to.t;
  access : Access_count.t;
  after_stage1 : snapshot;
  after_stage2 : snapshot;
  after_stage3 : snapshot;
}

val analyze : ?include_possible:bool -> Ast.program -> t
(** Run Stages 1–3.  [include_possible] also propagates sharing through
    [Possible] points-to relations.
    @raise Srcloc.Error on semantic errors (duplicate declarations). *)

(** {2 Individual stages}

    The demand-driven compilation session ([Session]) runs each stage as
    its own memoized fact provider.  Stages 2 and 3 refine the Stage-1
    scope table in place, so they must be forced in order; each returns
    the sharing snapshot taken after it ran (a Table 4.2 column). *)

val snapshot : Scope_analysis.t -> snapshot
(** The current sharing status of every variable. *)

val stage1 : Ir.Symtab.t -> Scope_analysis.t * snapshot
val stage2 : Scope_analysis.t -> Thread_analysis.t * snapshot

val stage3 :
  ?include_possible:bool -> Ir.Symtab.t -> Scope_analysis.t ->
  Points_to.t * snapshot

val status_in : snapshot -> Ir.Var_id.t -> Sharing.status

val shared_variables : t -> Varinfo.t list
(** All variables whose final status is Shared, in declaration order. *)

val is_shared : t -> Ir.Var_id.t -> bool

val table_4_1 : t -> string list list
(** Header row plus one row per variable (the paper's Table 4.1). *)

val table_4_2 : t -> string list list
(** Header row plus per-variable status after Stages 1/2/3 (Table 4.2). *)
