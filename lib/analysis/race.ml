open Cfront

(* Static lockset-based data-race detection, layered on the facts Stages
   1-3 already compute.

   The detector walks every function reachable from a concurrency root —
   each pthread thread function, each creator (a function containing a
   [pthread_create] site), and [RCCE_APP] for already-translated SPMD
   programs — and collects every read and write of a variable the sharing
   lattice marked Shared, including accesses through pointers using the
   Stage-3 may-alias information.  Each access carries the lockset the
   {!Lockheld} must-analysis proves held at that point.  Two accesses
   race when they come from contexts that can overlap, at least one is a
   write, and their must-held locksets are disjoint (the RacerX /
   thread-modular recipe of Engler & Ashcraft and Miné).

   Approximations, chosen to match the dynamic Eraser detector's own:
   - accesses in a creator are ordered before the threads it creates
     until the first [pthread_create] statement, and ordered after them
     once a [pthread_join] statement has been passed (the join-all
     pattern); everything between is concurrent;
   - arrays are one location: disjoint per-element index expressions are
     not proved disjoint, so chunked writes to a shared array report a
     race the dynamic detector (which sees per-address accesses) does
     not — a may-level over-approximation, never a missed race;
   - barriers do not order accesses statically. *)

type ctx =
  | Creator of string   (* runs pthread_create; a single instance *)
  | Thread of string    (* a pthread thread function *)
  | Spmd of string      (* RCCE_APP: every core runs it *)

let ctx_func = function Creator f | Thread f | Spmd f -> f

let ctx_to_string = function
  | Creator f -> Printf.sprintf "'%s'" f
  | Thread f -> Printf.sprintf "thread '%s'" f
  | Spmd f -> Printf.sprintf "SPMD function '%s'" f

type access = {
  var : Ir.Var_id.t;
  write : bool;
  ctx : ctx;
  multi : bool;             (* the context has concurrent instances *)
  in_func : string;         (* function containing the access *)
  loc : Srcloc.t;
  locks : Ir.Var_id.Set.t;  (* must-held at the access *)
  via : Ir.Var_id.t option; (* pointer the access went through, if any *)
}

type race = {
  rvar : Ir.Var_id.t;
  writer : access;          (* always a write *)
  other : access;           (* the conflicting access (may be the same
                               source access when the context has
                               multiple instances) *)
}

type t = {
  accesses : access list;   (* every concurrent shared access considered *)
  races : race list;        (* one per racy variable, deterministic order *)
}

(* --- shared-variable candidates ------------------------------------------ *)

let sync_type_names =
  [ "pthread_t"; "pthread_attr_t"; "pthread_mutex_t"; "pthread_mutexattr_t";
    "pthread_cond_t"; "pthread_barrier_t"; "pthread_barrierattr_t";
    "RCCE_FLAG"; "RCCE_COMM" ]

let rec is_sync_type = function
  | Ctype.Named n -> List.mem n sync_type_names
  | Ctype.Array (t, _) | Ctype.Ptr t -> is_sync_type t
  | Ctype.Void | Ctype.Char | Ctype.Short | Ctype.Int | Ctype.Long
  | Ctype.Unsigned _ | Ctype.Float | Ctype.Double | Ctype.Func _ -> false

let is_candidate pipeline symtab id =
  Pipeline.is_shared pipeline id
  && (match Ir.Symtab.type_of symtab id with
     | Some ty -> not (is_sync_type ty)
     | None -> true)
  (* the synthetic <rcce-lock-n> variables are locks, not data *)
  && not (String.length id.Ir.Var_id.name > 0 && id.Ir.Var_id.name.[0] = '<')

(* --- access collection ---------------------------------------------------- *)

(* A raw access, before context attribution. *)
type raw = {
  r_var : Ir.Var_id.t;
  r_write : bool;
  r_stmt : Ast.stmt option;   (* enclosing statement, when known *)
  r_loc : Srcloc.t;
  r_locks : Ir.Var_id.Set.t;
  r_via : Ir.Var_id.t option;
}

type wstate = {
  symtab : Ir.Symtab.t;
  points_to : Points_to.t;
  func : string option;
  emit : write:bool -> via:Ir.Var_id.t option -> Ir.Var_id.t -> unit;
}

let resolve st name = Ir.Symtab.resolve_id st.symtab ?func:st.func name

(* Base variable of a pointer-valued expression ([p], [&a[i]], [p + 1]). *)
let rec pointer_base st e =
  match e with
  | Ast.Var name -> resolve st name
  | Ast.Cast (_, e) | Ast.Unary (Ast.Addr, e) -> pointer_base st e
  | Ast.Index (a, _) -> pointer_base st a
  | Ast.Binary ((Ast.Add | Ast.Sub), a, _) -> pointer_base st a
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Unary _ | Ast.Binary _ | Ast.Assign _ | Ast.Cond _ | Ast.Call _
  | Ast.Sizeof_type _ | Ast.Sizeof_expr _ | Ast.Comma _ -> None

let is_plain_pointer st id =
  match Ir.Symtab.type_of st.symtab id with
  | Some (Ctype.Ptr _) -> true
  | Some _ | None -> false

(* Every may-target of the pointer behind [p]: the Stage-3 alias set,
   Possible relations included (a may-analysis must not drop them). *)
let emit_targets st ~write p =
  match pointer_base st p with
  | None -> ()
  | Some pid ->
      List.iter
        (fun (tgt, _d) ->
          match tgt with
          | Points_to.Tvar v -> st.emit ~write ~via:(Some pid) v
          | Points_to.Tnull | Points_to.Tunknown -> ())
        (Points_to.targets_of st.points_to pid)

(* Mirror of {!Access.visit} with pointer dereferences resolved through
   the points-to map instead of stopping at the pointer itself. *)
let rec visit_expr st e =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Sizeof_type _ -> ()
  | Ast.Var name -> Option.iter (st.emit ~write:false ~via:None) (resolve st name)
  | Ast.Unary ((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec), lhs) ->
      visit_lvalue st ~also_read:true lhs
  | Ast.Unary (Ast.Deref, p) ->
      visit_expr st p;
      emit_targets st ~write:false p
  | Ast.Unary ((Ast.Addr | Ast.Neg | Ast.Not | Ast.Bnot), e) -> visit_expr st e
  | Ast.Binary (_, a, b) | Ast.Comma (a, b) ->
      visit_expr st a;
      visit_expr st b
  | Ast.Assign (op, lhs, rhs) ->
      visit_lvalue st ~also_read:(op <> None) lhs;
      visit_expr st rhs
  | Ast.Cond (a, b, c) ->
      visit_expr st a;
      visit_expr st b;
      visit_expr st c
  | Ast.Call (_, args) -> List.iter (visit_expr st) args
  | Ast.Index (arr, idx) ->
      visit_expr st idx;
      read_indexed st arr
  | Ast.Cast (_, e) | Ast.Sizeof_expr e -> visit_expr st e

(* [a[i]] as an r-value: a read of the array, or of the pointees when the
   base is a plain pointer. *)
and read_indexed st arr =
  match pointer_base st arr with
  | Some id when is_plain_pointer st id ->
      st.emit ~write:false ~via:None id;
      emit_targets st ~write:false arr
  | Some id -> st.emit ~write:false ~via:None id
  | None -> visit_expr st arr

and visit_lvalue st ~also_read e =
  let emit_both emit1 =
    emit1 ~write:true;
    if also_read then emit1 ~write:false
  in
  match e with
  | Ast.Var name ->
      Option.iter
        (fun id -> emit_both (fun ~write -> st.emit ~write ~via:None id))
        (resolve st name)
  | Ast.Index (arr, idx) -> begin
      visit_expr st idx;
      match pointer_base st arr with
      | Some id when is_plain_pointer st id ->
          st.emit ~write:false ~via:None id;
          emit_both (fun ~write -> emit_targets st ~write arr)
      | Some id -> emit_both (fun ~write -> st.emit ~write ~via:None id)
      | None -> visit_expr st arr
    end
  | Ast.Unary (Ast.Deref, p) ->
      visit_expr st p;
      emit_both (fun ~write -> emit_targets st ~write p)
  | Ast.Cast (_, e) -> visit_lvalue st ~also_read e
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Unary _ | Ast.Binary _ | Ast.Assign _ | Ast.Cond _ | Ast.Call _
  | Ast.Sizeof_type _ | Ast.Sizeof_expr _ | Ast.Comma _ -> visit_expr st e

(* Enclosing statement of each shallow expression, by physical equality —
   the CFG reuses the very expression values of the AST, so [assq] finds
   the statement (and thus the location) of a Condition node. *)
let expr_stmt_table (fn : Ast.func) =
  let tbl = ref [] in
  List.iter
    (Visit.iter_stmt (fun s ->
         List.iter
           (fun e -> tbl := (e, s) :: !tbl)
           (Visit.shallow_exprs s)))
    fn.Ast.f_body;
  !tbl

(* Raw accesses of one function, with the must-held lockset attached.
   [lockheld] lets a session supply its memoized per-function dataflow
   solutions instead of re-running the analysis here. *)
let accesses_of_func ~symtab ~points_to ?lockheld (fn : Ast.func) =
  let lh =
    match lockheld with
    | Some lh -> lh
    | None -> Lockheld.analyze symtab fn
  in
  let cfg = Lockheld.cfg lh in
  let expr_stmt = expr_stmt_table fn in
  let acc = ref [] in
  for id = 0 to Ir.Cfg.length cfg - 1 do
    let node = Ir.Cfg.node cfg id in
    let stmt =
      match node.Ir.Cfg.kind with
      | Ir.Cfg.Statement s -> Some s
      | Ir.Cfg.Condition e -> List.assq_opt e expr_stmt
      | Ir.Cfg.Entry | Ir.Cfg.Exit | Ir.Cfg.Join -> None
    in
    match node.Ir.Cfg.kind with
    | Ir.Cfg.Entry | Ir.Cfg.Exit | Ir.Cfg.Join -> ()
    | Ir.Cfg.Condition _ | Ir.Cfg.Statement _ ->
        let locks = Lockheld.held_before lh id in
        let default_loc =
          match stmt with Some s -> s.Ast.s_loc | None -> fn.Ast.f_loc
        in
        let emit_at loc ~write ~via var =
          acc :=
            { r_var = var; r_write = write; r_stmt = stmt; r_loc = loc;
              r_locks = locks; r_via = via }
            :: !acc
        in
        let st =
          { symtab; points_to; func = Some fn.Ast.f_name;
            emit = emit_at default_loc }
        in
        List.iter (visit_expr st) (Ir.Cfg.exprs_of_node node);
        (* a declaration with an initializer writes the declared variable
           (the shallow expressions above only covered the reads) *)
        (match node.Ir.Cfg.kind with
        | Ir.Cfg.Statement { Ast.s_desc = Ast.Sdecl ds; _ } ->
            List.iter
              (fun (d : Ast.decl) ->
                if d.Ast.d_init <> None then
                  Option.iter
                    (emit_at d.Ast.d_loc ~write:true ~via:None)
                    (Ir.Symtab.resolve_id symtab ~func:fn.Ast.f_name
                       d.Ast.d_name))
              ds
        | _ -> ())
  done;
  List.rev !acc

(* --- creator happens-before phases ---------------------------------------- *)

(* Statement-order phase of each statement in a creator: [Before] until
   the first [pthread_create], [Parallel] while threads may run, [After]
   once a [pthread_join] statement has been passed (and no later create
   reopens the window).  The same join-all approximation the dynamic
   detector's [synchronize] uses. *)
type phase = Before | Parallel | After

let stmt_phases (fn : Ast.func) =
  let tbl = ref [] in
  let phase = ref Before in
  let calls name (s : Ast.stmt) =
    List.exists
      (Visit.fold_expr
         (fun found e ->
           found
           || match e with Ast.Call (n, _) -> String.equal n name | _ -> false)
         false)
      (Visit.shallow_exprs s)
  in
  let rec walk (s : Ast.stmt) =
    tbl := (s, !phase) :: !tbl;
    match s.Ast.s_desc with
    | Ast.Sblock ss -> List.iter walk ss
    | Ast.Sif (_, a, b) ->
        walk a;
        Option.iter walk b
    | Ast.Swhile (_, body) | Ast.Sdo (body, _) | Ast.Sfor (_, _, _, body) ->
        walk body
    | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sreturn _ | Ast.Sbreak
    | Ast.Scontinue | Ast.Snull ->
        if calls "pthread_create" s then phase := Parallel
        else if calls "pthread_join" s && !phase = Parallel then
          phase := After
  in
  List.iter walk fn.Ast.f_body;
  !tbl

(* --- whole-program detection ---------------------------------------------- *)

let dedup_keep_order items =
  List.fold_left
    (fun acc x -> if List.mem x acc then acc else acc @ [ x ])
    [] items

(* Functions reachable from [root] through direct calls (thread functions
   are reached through their own root, not through [pthread_create]'s
   function-pointer argument, which is not a call expression). *)
let reachable program root =
  let rec go acc name =
    if List.mem name acc then acc
    else
      match Ast.find_function program name with
      | None -> acc
      | Some fn ->
          List.fold_left
            (fun acc (callee, _, _) -> go acc callee)
            (acc @ [ name ])
            (Visit.calls_in_func fn)
  in
  go [] root

let run ?(locksets = []) (pipeline : Pipeline.t) =
  let scope = pipeline.Pipeline.scope in
  let symtab = scope.Scope_analysis.symtab in
  let program = Ir.Symtab.program symtab in
  let threads = pipeline.Pipeline.threads in
  let points_to = pipeline.Pipeline.points_to in
  let sites = threads.Thread_analysis.sites in
  let multi_of f =
    let launches =
      List.filter
        (fun (s : Thread_analysis.site) -> String.equal s.thread_func f)
        sites
    in
    List.length launches > 1
    || List.exists (fun (s : Thread_analysis.site) -> s.in_loop) launches
  in
  let roots =
    List.map (fun f -> (Thread f, multi_of f))
      threads.Thread_analysis.thread_funcs
    @ List.map
        (fun c -> (Creator c, false))
        (dedup_keep_order
           (List.map (fun (s : Thread_analysis.site) -> s.creator) sites))
    @ (match Ast.find_function program "RCCE_APP" with
      | Some _ -> [ (Spmd "RCCE_APP", true) ]
      | None -> [])
  in
  let raw_cache = Hashtbl.create 16 in
  let raws_of fn_name fn =
    match Hashtbl.find_opt raw_cache fn_name with
    | Some raws -> raws
    | None ->
        let lockheld = List.assoc_opt fn_name locksets in
        let raws = accesses_of_func ~symtab ~points_to ?lockheld fn in
        Hashtbl.replace raw_cache fn_name raws;
        raws
  in
  let accesses =
    List.concat_map
      (fun (ctx, multi) ->
        List.concat_map
          (fun fn_name ->
            match Ast.find_function program fn_name with
            | None -> []
            | Some fn ->
                let phases =
                  match ctx with
                  | Creator c when String.equal c fn_name ->
                      Some (stmt_phases fn)
                  | Creator _ | Thread _ | Spmd _ -> None
                in
                List.filter_map
                  (fun r ->
                    if not (is_candidate pipeline symtab r.r_var) then None
                    else
                      let concurrent =
                        match phases, r.r_stmt with
                        | Some tbl, Some s -> begin
                            match List.assq_opt s tbl with
                            | Some Parallel -> true
                            | Some (Before | After) -> false
                            | None -> true
                          end
                        | Some _, None | None, _ -> true
                      in
                      if not concurrent then None
                      else
                        Some
                          { var = r.r_var; write = r.r_write; ctx; multi;
                            in_func = fn_name; loc = r.r_loc;
                            locks = r.r_locks; via = r.r_via })
                  (raws_of fn_name fn))
          (reachable program (ctx_func ctx)))
      roots
  in
  (* Two accesses conflict when their contexts can overlap and no lock is
     common to both must-held sets.  An access conflicts with itself when
     its context has multiple concurrent instances. *)
  let conflicting w o =
    (w != o || w.multi)
    && (w.ctx <> o.ctx || w.multi)
    && Ir.Var_id.Set.is_empty (Ir.Var_id.Set.inter w.locks o.locks)
  in
  let by_var =
    List.fold_left
      (fun m a ->
        let existing =
          match Ir.Var_id.Map.find_opt a.var m with
          | Some l -> l
          | None -> []
        in
        Ir.Var_id.Map.add a.var (a :: existing) m)
      Ir.Var_id.Map.empty accesses
  in
  let races =
    Ir.Var_id.Map.fold
      (fun var accs acc ->
        let accs = List.rev accs in    (* back to collection order *)
        let writes = List.filter (fun a -> a.write) accs in
        let pair =
          List.find_map
            (fun w ->
              List.find_map
                (fun o -> if conflicting w o then Some (w, o) else None)
                accs)
            writes
        in
        match pair with
        | Some (w, o) -> { rvar = var; writer = w; other = o } :: acc
        | None -> acc)
      by_var []
  in
  let races =
    List.sort
      (fun a b -> Ir.Var_id.compare a.rvar b.rvar)
      races
  in
  { accesses; races }

(* --- reporting ------------------------------------------------------------ *)

let var_display id =
  if Ir.Var_id.is_global id then id.Ir.Var_id.name
  else Ir.Var_id.to_string id

let locks_to_string locks =
  if Ir.Var_id.Set.is_empty locks then "no locks held"
  else
    Printf.sprintf "holding {%s}"
      (String.concat ", "
         (List.map
            (fun l -> l.Ir.Var_id.name)
            (Ir.Var_id.Set.elements locks)))

let access_to_string a =
  Printf.sprintf "%s in %s (%s)%s"
    (if a.write then "write" else "read")
    (ctx_to_string a.ctx)
    (locks_to_string a.locks)
    (match a.via with
    | Some p -> Printf.sprintf " through pointer '%s'" p.Ir.Var_id.name
    | None -> "")

let to_diag r =
  let instances =
    if r.writer == r.other && r.writer.multi then
      " by concurrent instances of the same thread"
    else ""
  in
  Diag.warning ~loc:r.writer.loc ~code:"race"
    ~related:
      [ Diag.related_note ~loc:r.other.loc
          (Printf.sprintf "conflicting %s of '%s'%s"
             (access_to_string r.other) (var_display r.rvar) instances) ]
    (Printf.sprintf "data race on '%s': %s with disjoint lockset"
       (var_display r.rvar) (access_to_string r.writer))

let to_diags t = List.map to_diag t.races

let racy_variables t = List.map (fun r -> r.rvar) t.races

(* The one-call entry point: analyze, then detect. *)
let check ?locksets (pipeline : Pipeline.t) =
  to_diags (run ?locksets pipeline)
