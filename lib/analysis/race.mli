open Cfront

(** Static lockset-based data-race detection over the Stage 1-3 facts:
    every read/write of a Shared variable (including through Stage-3
    may-aliases) from each concurrency context is paired against every
    other; two accesses race when their contexts can overlap, at least
    one is a write, and their {!Lockheld} must-held locksets are
    disjoint.  Reports through {!Diag}, one diagnostic per racy
    variable. *)

type ctx =
  | Creator of string   (** runs [pthread_create]; a single instance *)
  | Thread of string    (** a pthread thread function *)
  | Spmd of string      (** [RCCE_APP]: every core runs it *)

type access = {
  var : Ir.Var_id.t;
  write : bool;
  ctx : ctx;
  multi : bool;             (** the context has concurrent instances *)
  in_func : string;
  loc : Srcloc.t;
  locks : Ir.Var_id.Set.t;  (** must-held at the access *)
  via : Ir.Var_id.t option; (** pointer the access went through *)
}

type race = {
  rvar : Ir.Var_id.t;
  writer : access;
  other : access;
}

type t = {
  accesses : access list;
  races : race list;        (** one per racy variable, sorted *)
}

val run : ?locksets:(string * Lockheld.t) list -> Pipeline.t -> t
(** [locksets] supplies precomputed per-function must-hold dataflow
    solutions (keyed by function name, e.g. a session's memoized lockset
    fact); functions not in the list are analyzed on demand. *)

val to_diag : race -> Diag.t
val to_diags : t -> Diag.t list

val check : ?locksets:(string * Lockheld.t) list -> Pipeline.t -> Diag.t list
(** [to_diags (run pipeline)]. *)

val racy_variables : t -> Ir.Var_id.t list

val access_to_string : access -> string
val ctx_to_string : ctx -> string
