open Cfront

(* A C interpreter over the SCC simulator: the translated RCCE programs
   produced by the Stage 5 translator — and the original Pthread programs
   they came from — execute with every load, store, synchronization call
   and arithmetic operator charged to the simulated machine.

   Execution modes mirror the paper's experimental setup:
   - [run_pthread]: one process on core 0; [pthread_create] spawns
     additional contexts on the same core (the unconverted program "can
     only take advantage of a single core");
   - [run_rcce ~ncores]: one process per core, each interpreting the
     whole program from its own private globals, with RCCE collective
     allocation, put/get-backed barrier and the test-and-set locks.

   Programs are first run through [Resolve], which interns identifiers
   to integer slots; the evaluator here works on that resolved form, so
   the per-access cost is an array index (falling back to the original
   name-walk only for genuinely dynamic references).  Data lives in a
   store keyed by simulated address; compute cycles are accumulated per
   task and flushed as one engine effect at every memory or
   synchronization operation, so event counts stay proportional to
   memory traffic rather than to executed operators. *)

exception Runtime_error of string

let runtime_error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

exception Thread_exit

type lvalue = { addr : int; ty : Ctype.t }

type outcome = Normal | Returned of Value.t | Broke | Continued

(* Two execution modes over the same resolved program: [Tree] walks the
   resolved AST directly (the reference); [Compiled] first lowers every
   function body to OCaml closures (direct-threaded code) that replay
   exactly the tree-walker's charge/effect sequence, so both modes are
   bit-identical and differ only in dispatch cost. *)
type mode = Tree | Compiled

(* One region's backing store: values indexed directly by byte offset.
   Offsets come from the memmap's bump allocators, so they are small and
   dense; an empty cell reads as the type's zero (C-style zero-filled
   memory).  Indexing an array beats hashing the full 63-bit address on
   every load and store.

   Empty cells hold a physically-unique sentinel instead of [None]: a
   store writes the value directly with no [Some] wrapper, which removes
   one allocation from every simulated store. *)
let absent : Value.t = Value.Vint (Sys.opaque_identity 0)

type region_store = { mutable cells : Value.t array }

let region_store_create () = { cells = Array.make 1024 absent }

(* Returns [absent] (physical identity) when the cell was never written. *)
let region_store_get rs offset =
  if offset < Array.length rs.cells then rs.cells.(offset) else absent

let region_store_set rs offset v =
  let n = Array.length rs.cells in
  if offset >= n then begin
    let grown = Array.make (max (n * 2) (offset + 1)) absent in
    Array.blit rs.cells 0 grown 0 n;
    rs.cells <- grown
  end;
  rs.cells.(offset) <- v

(* State shared by every task of one simulated run. *)
type shared = {
  resolved : Resolve.t;
  eng : Scc.Engine.t;
  shared_store : region_store;
  private_stores : region_store array;      (* per core *)
  mpb_stores : region_store array;          (* per core *)
  strings : (string, int) Hashtbl.t;        (* literal -> address *)
  string_at : (int, string) Hashtbl.t;      (* address -> literal *)
  output : Buffer.t;
  mutexes : (string, int) Hashtbl.t;        (* mutex name -> lock id *)
  barriers : (string, int * int) Hashtbl.t;
      (* pthread barrier name -> (engine barrier id, group count) *)
  rcce_flags : (string, int) Hashtbl.t;     (* flag name -> flag index *)
  shm_log : (int, int) Hashtbl.t;           (* collective RCCE_shmalloc *)
  mpb_alloc_log : (int, int) Hashtbl.t;     (* collective RCCE_malloc *)
  ncores : int;                             (* RCCE ranks; 1 for pthread *)
  races : Lockset.t option;                 (* Eraser detector, if enabled *)
  profile : Scc.Profile.t option;           (* simulated-time profiler *)
  fn_slots : int array;      (* profiler slot per [rp_funcs] index *)
  line_slots : int array;    (* profiler line slot per [rp_locs] index *)
  imode : mode;
  cfuns : (task -> Value.t array -> Value.t) array;
      (* compiled call implementation per [rp_funcs] index (arguments
         already evaluated); only filled in [Compiled] mode *)
  cbodies : (task -> outcome) array;
      (* compiled function body per [rp_funcs] index (caller sets up the
         frame — thread entry points and [run_entry]) *)
}

(* One process: an address space with its own globals.  [globals] is the
   diagnostics/dynamic-walk view by name; [global_slots] the resolved
   fast path by table index — both updated together. *)
and process = {
  sh : shared;
  globals : (string, lvalue) Hashtbl.t;
  global_slots : lvalue option array;
  core : int;
  rank : int;   (* RCCE rank; 0 for the pthread process *)
}

(* One call frame: a slot per distinct name declared by the function; an
   empty slot means that declaration has not executed in this call. *)
and frame = { f_fn : Resolve.rfunc; f_slots : lvalue option array }

(* One executing context (an RCCE process body or one Pthread). *)
and task = {
  proc : process;
  api : Scc.Engine.api;
  mutable frames : frame list;
  mutable pending_cycles : int;
  mutable shm_count : int;     (* per-task collective call counters *)
  mutable mpb_count : int;
  mutable held_locks : Lockset.Int_set.t;   (* for race detection *)
}

let make_frame (fn : Resolve.rfunc) =
  { f_fn = fn; f_slots = Array.make fn.Resolve.rf_nslots None }

(* --- cycle accounting ---------------------------------------------------- *)

let flush_threshold = 8192

let flush task =
  if task.pending_cycles > 0 then begin
    task.api.Scc.Engine.compute task.pending_cycles;
    task.pending_cycles <- 0
  end

let charge task cycles =
  task.pending_cycles <- task.pending_cycles + cycles;
  if task.pending_cycles >= flush_threshold then flush task

(* Profiler attribution frames.  Pending cycles are flushed at the frame
   boundary so batched compute lands on the frame it was executed in:
   cycles accumulated before a call belong to the caller, cycles pending
   at return belong to the callee. *)
let prof_push task fidx =
  match task.proc.sh.profile with
  | None -> ()
  | Some p ->
      flush task;
      Scc.Profile.push p ~ctx:task.api.Scc.Engine.self
        task.proc.sh.fn_slots.(fidx)

let prof_pop task =
  match task.proc.sh.profile with
  | None -> ()
  | Some p ->
      flush task;
      Scc.Profile.pop p ~ctx:task.api.Scc.Engine.self

(* --- memory -------------------------------------------------------------- *)

let value_bytes ty =
  match ty with
  | Ctype.Array (elt, _) -> Ctype.sizeof elt
  | ty -> Ctype.sizeof ty

let sync_races task =
  match task.proc.sh.races with
  | None -> ()
  | Some detector -> Lockset.synchronize detector

let observe task ~write addr =
  match task.proc.sh.races with
  | None -> ()
  | Some detector ->
      Lockset.access detector ~ctx:task.api.Scc.Engine.self
        ~held:task.held_locks ~write addr

(* Offset 0 of every region is a guard line (see Scc.Memmap.create), so
   a small address can only come from NULL or NULL-adjacent pointer
   arithmetic. *)
let check_addr addr =
  (* offset < 32 on a private or shared page; MPB (kind 2) is unguarded *)
  if addr land 0xffffffff < 32 && (addr lsr 40) land 0x3 <> 2 then
    runtime_error "null pointer dereference (address %#x)" addr

let store_of sh addr =
  let kind = (addr lsr 40) land 0x3 in
  if kind = 1 then sh.shared_store
  else
    let core = (addr lsr 32) land 0xff in
    if kind = 0 then sh.private_stores.(core) else sh.mpb_stores.(core)

let read_mem_at task addr ty =
  check_addr addr;
  flush task;
  observe task ~write:false addr;
  task.api.Scc.Engine.load addr ~bytes:(value_bytes ty);
  let v = region_store_get (store_of task.proc.sh addr) (addr land 0xffffffff) in
  if v == absent then Value.zero_of ty else v

let read_mem task { addr; ty } = read_mem_at task addr ty

let write_mem_at task addr ty v =
  check_addr addr;
  flush task;
  observe task ~write:true addr;
  task.api.Scc.Engine.store addr ~bytes:(value_bytes ty);
  region_store_set (store_of task.proc.sh addr) (addr land 0xffffffff)
    (Value.convert ty v)

let write_mem task { addr; ty } v = write_mem_at task addr ty v

(* Untimed store initialization (global initializers run at load time). *)
let poke task addr ty v =
  region_store_set
    (store_of task.proc.sh addr)
    (addr land 0xffffffff) (Value.convert ty v)

let alloc_private task ~bytes =
  Scc.Memmap.alloc
    (Scc.Engine.memmap task.proc.sh.eng)
    (Scc.Memmap.Private task.proc.core) ~bytes

(* --- scoping -------------------------------------------------------------- *)

(* The original dynamic walk, by name: innermost frame outwards, then
   the process globals.  Only the slow path — slot misses and [Dynamic]
   references — comes through here. *)
let find_in_frame frame name =
  match Hashtbl.find_opt frame.f_fn.Resolve.rf_locals name with
  | Some i -> frame.f_slots.(i)
  | None -> None

let rec lookup_frames proc frames name =
  match frames with
  | [] -> Hashtbl.find_opt proc.globals name
  | frame :: rest -> begin
      match find_in_frame frame name with
      | Some _ as r -> r
      | None -> lookup_frames proc rest name
    end

let resolve_slot task (slot : Resolve.slot) name : lvalue option =
  match slot with
  | Resolve.Local i -> begin
      match task.frames with
      | frame :: rest -> begin
          match frame.f_slots.(i) with
          | Some _ as r -> r
          | None ->
              (* declaration not yet executed in this call: the name may
                 still resolve dynamically in a caller's frame *)
              lookup_frames task.proc rest name
        end
      | [] -> lookup_frames task.proc [] name
    end
  | Resolve.Global g -> task.proc.global_slots.(g)
  | Resolve.Dynamic -> lookup_frames task.proc task.frames name

let name_region task ?loc ~base ~bytes name =
  match task.proc.sh.races with
  | None -> ()
  | Some detector -> Lockset.name_region detector ?loc ~base ~bytes name

let declare task ?loc ~slot name ty =
  let bytes = max (Ctype.sizeof ty) 4 in
  let lv = { addr = alloc_private task ~bytes; ty } in
  name_region task ?loc ~base:lv.addr ~bytes name;
  (match task.frames with
  | frame :: _ -> frame.f_slots.(slot) <- Some lv
  | [] -> runtime_error "no active stack frame");
  lv

let string_value task s =
  let sh = task.proc.sh in
  let addr =
    match Hashtbl.find_opt sh.strings s with
    | Some addr -> addr
    | None ->
        let addr = alloc_private task ~bytes:(String.length s + 1) in
        Hashtbl.replace sh.strings s addr;
        Hashtbl.replace sh.string_at addr s;
        addr
  in
  Value.Vptr { addr; elt = Ctype.Char }

(* --- expression evaluation ------------------------------------------------ *)

let rec eval task (e : Resolve.rexpr) : Value.t =
  match e with
  | Resolve.Rlit v -> v
  | Resolve.Rstr s -> string_value task s
  | Resolve.Rconst_var (v, _, _) -> v
  | Resolve.Rvar (slot, name) -> begin
      match resolve_slot task slot name with
      | Some { ty = Ctype.Array (elt, _); addr } ->
          (* arrays decay to a pointer to their storage, no load *)
          Value.Vptr { addr; elt }
      | Some lv -> read_mem task lv
      | None -> runtime_error "unbound variable '%s'" name
    end
  | Resolve.Runary (Ast.Addr, inner) ->
      let lv = eval_lvalue task inner in
      let elt =
        match lv.ty with Ctype.Array (elt, _) -> elt | ty -> ty
      in
      Value.Vptr { addr = lv.addr; elt }
  | Resolve.Runary (Ast.Deref, inner) -> begin
      match eval task inner with
      | Value.Vptr { addr; elt } -> read_mem task { addr; ty = elt }
      | v -> runtime_error "dereference of non-pointer %s" (Value.to_string v)
    end
  | Resolve.Runary
      (((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec) as op), inner)
    ->
      let lv = eval_lvalue task inner in
      let old_v = read_mem task lv in
      let delta = if op = Ast.Preinc || op = Ast.Postinc then 1 else -1 in
      let new_v = Value.binop Ast.Add old_v (Value.Vint delta) in
      charge task 1;
      write_mem task lv new_v;
      if op = Ast.Postinc || op = Ast.Postdec then old_v else new_v
  | Resolve.Runary (op, inner) ->
      charge task 1;
      Value.unop op (eval task inner)
  | Resolve.Rbinary (Ast.Land, a, b) ->
      (* short-circuit *)
      charge task 1;
      if Value.is_truthy (eval task a) then
        Value.Vint (if Value.is_truthy (eval task b) then 1 else 0)
      else Value.Vint 0
  | Resolve.Rbinary (Ast.Lor, a, b) ->
      charge task 1;
      if Value.is_truthy (eval task a) then Value.Vint 1
      else Value.Vint (if Value.is_truthy (eval task b) then 1 else 0)
  | Resolve.Rbinary (op, a, b) ->
      let va = eval task a in
      let vb = eval task b in
      charge task (Value.binop_cycles op va vb);
      Value.binop op va vb
  | Resolve.Rassign (None, lhs, rhs) ->
      let v = eval task rhs in
      let lv = eval_lvalue task lhs in
      write_mem task lv v;
      v
  | Resolve.Rassign (Some op, lhs, rhs) ->
      let vb = eval task rhs in
      let lv = eval_lvalue task lhs in
      let va = read_mem task lv in
      charge task (Value.binop_cycles op va vb);
      let v = Value.binop op va vb in
      write_mem task lv v;
      v
  | Resolve.Rcond (c, a, b) ->
      charge task 2;
      if Value.is_truthy (eval task c) then eval task a else eval task b
  | Resolve.Rcall_user (idx, args) -> call_user task idx args
  | Resolve.Rcall_builtin (name, args, ast_args) ->
      call_builtin task name args ast_args
  | Resolve.Rindex (arr, idx) -> begin
      let base = eval task arr in
      let i = Value.as_int (eval task idx) in
      charge task 2;
      match base with
      | Value.Vptr { addr; elt } ->
          read_mem task { addr = addr + (i * Ctype.sizeof elt); ty = elt }
      | v -> runtime_error "indexing non-pointer %s" (Value.to_string v)
    end
  | Resolve.Rcast (ty, inner) -> Value.convert ty (eval task inner)
  | Resolve.Rsizeof_var (slot, name) ->
      (* sizeof does not evaluate its operand in C; approximate with the
         syntactic type when the operand is a variable *)
      let ty =
        match resolve_slot task slot name with
        | Some lv -> lv.ty
        | None -> Ctype.Int
      in
      Value.Vint (Ctype.sizeof ty)
  | Resolve.Rcomma (a, b) ->
      ignore (eval task a);
      eval task b

and eval_lvalue task (e : Resolve.rexpr) : lvalue =
  match e with
  | Resolve.Rvar (slot, name) | Resolve.Rconst_var (_, slot, name) -> begin
      match resolve_slot task slot name with
      | Some lv -> lv
      | None -> runtime_error "unbound variable '%s'" name
    end
  | Resolve.Runary (Ast.Deref, inner) -> begin
      match eval task inner with
      | Value.Vptr { addr; elt } -> { addr; ty = elt }
      | v ->
          runtime_error "dereference of non-pointer %s" (Value.to_string v)
    end
  | Resolve.Rindex (arr, idx) -> begin
      let base = eval task arr in
      let i = Value.as_int (eval task idx) in
      charge task 2;
      match base with
      | Value.Vptr { addr; elt } ->
          { addr = addr + (i * Ctype.sizeof elt); ty = elt }
      | v -> runtime_error "indexing non-pointer %s" (Value.to_string v)
    end
  | Resolve.Rcast (_, inner) -> eval_lvalue task inner
  | Resolve.Rlit _ | Resolve.Rstr _ | Resolve.Runary _ | Resolve.Rbinary _
  | Resolve.Rassign _ | Resolve.Rcond _ | Resolve.Rcall_user _
  | Resolve.Rcall_builtin _ | Resolve.Rsizeof_var _ | Resolve.Rcomma _ ->
      runtime_error "expression is not an l-value"

(* --- statements ------------------------------------------------------------ *)

and exec_stmt task (s : Resolve.rstmt) : outcome =
  match s with
  | Resolve.Rsexpr e ->
      ignore (eval task e);
      Normal
  | Resolve.Rsdecl ds ->
      List.iter (exec_decl task) ds;
      Normal
  | Resolve.Rsblock stmts -> exec_block task stmts
  | Resolve.Rsif (c, a, b) -> begin
      charge task 2;
      if Value.is_truthy (eval task c) then exec_stmt task a
      else match b with Some b -> exec_stmt task b | None -> Normal
    end
  | Resolve.Rswhile (c, body) ->
      let rec loop () =
        charge task 2;
        if Value.is_truthy (eval task c) then
          match exec_stmt task body with
          | Normal | Continued -> loop ()
          | Broke -> Normal
          | Returned v -> Returned v
        else Normal
      in
      loop ()
  | Resolve.Rsdo (body, c) ->
      let rec loop () =
        match exec_stmt task body with
        | Normal | Continued ->
            charge task 2;
            if Value.is_truthy (eval task c) then loop () else Normal
        | Broke -> Normal
        | Returned v -> Returned v
      in
      loop ()
  | Resolve.Rsfor (init, cond, step, body) ->
      (match init with
      | Resolve.Rfor_none -> ()
      | Resolve.Rfor_expr e -> ignore (eval task e)
      | Resolve.Rfor_decl ds -> List.iter (exec_decl task) ds);
      let rec loop () =
        charge task 2;
        let continue_loop =
          match cond with
          | None -> true
          | Some c -> Value.is_truthy (eval task c)
        in
        if not continue_loop then Normal
        else
          match exec_stmt task body with
          | Normal | Continued ->
              Option.iter (fun e -> ignore (eval task e)) step;
              loop ()
          | Broke -> Normal
          | Returned v -> Returned v
      in
      loop ()
  | Resolve.Rsreturn None -> Returned Value.Vvoid
  | Resolve.Rsreturn (Some e) -> Returned (eval task e)
  | Resolve.Rsbreak -> Broke
  | Resolve.Rscontinue -> Continued
  | Resolve.Rsnull -> Normal
  | Resolve.Rsat (loc, inner) ->
      (match task.proc.sh.profile with
      | None -> ()
      | Some p ->
          Scc.Profile.set_line p ~ctx:task.api.Scc.Engine.self
            task.proc.sh.line_slots.(loc));
      exec_stmt task inner

and exec_block task stmts =
  let rec go = function
    | [] -> Normal
    | s :: rest -> begin
        match exec_stmt task s with
        | Normal -> go rest
        | (Returned _ | Broke | Continued) as out -> out
      end
  in
  go stmts

and exec_decl task (d : Resolve.rdecl) =
  let lv =
    declare task ~loc:d.Resolve.rd_loc ~slot:d.Resolve.rd_slot
      d.Resolve.rd_name d.Resolve.rd_type
  in
  match d.Resolve.rd_init with
  | None -> ()
  | Some (Resolve.Rinit_expr e) ->
      let v = eval task e in
      write_mem task lv v
  | Some (Resolve.Rinit_list es) ->
      let elt =
        match d.Resolve.rd_type with
        | Ctype.Array (elt, _) -> elt
        | ty -> ty
      in
      List.iteri
        (fun i e ->
          let v = eval task e in
          write_mem task
            { addr = lv.addr + (i * Ctype.sizeof elt); ty = elt }
            v)
        es

(* --- calls ------------------------------------------------------------------ *)

and call_user task fidx args =
  let fn = task.proc.sh.resolved.Resolve.rp_funcs.(fidx) in
  if List.length args <> fn.Resolve.rf_nparams then
    runtime_error "%s expects %d arguments, got %d" fn.Resolve.rf_name
      fn.Resolve.rf_nparams (List.length args);
  let values = List.map (eval task) args in
  charge task 10;   (* call/return overhead *)
  prof_push task fidx;
  task.frames <- make_frame fn :: task.frames;
  List.iter2
    (fun (slot, pname, pty) v ->
      let lv = declare task ~slot pname pty in
      write_mem task lv v)
    fn.Resolve.rf_params values;
  let result =
    match exec_block task fn.Resolve.rf_body with
    | Returned v -> v
    | Normal | Broke | Continued -> Value.Vvoid
  in
  (match task.frames with
  | _ :: rest -> task.frames <- rest
  | [] -> ());
  prof_pop task;
  result

(* --- builtins ----------------------------------------------------------------- *)

and mini_printf task fmt values =
  let buf = Buffer.create 64 in
  let n = String.length fmt in
  let args = ref values in
  let next () =
    match !args with
    | [] -> runtime_error "printf: not enough arguments"
    | v :: rest ->
        args := rest;
        v
  in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '%' && !i + 1 < n then begin
      (* skip width/precision flags *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (match fmt.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | 'l' -> true
           | _ -> false)
      do
        incr j
      done;
      (match fmt.[!j] with
      | 'd' | 'i' | 'u' | 'x' ->
          Buffer.add_string buf (string_of_int (Value.as_int (next ())))
      | 'f' | 'g' | 'e' ->
          Buffer.add_string buf (Printf.sprintf "%f" (Value.as_float (next ())))
      | 'c' ->
          Buffer.add_char buf (Char.chr (Value.as_int (next ()) land 0xff))
      | 's' -> begin
          let v = next () in
          match
            Hashtbl.find_opt task.proc.sh.string_at (Value.as_addr v)
          with
          | Some s -> Buffer.add_string buf s
          | None -> Buffer.add_string buf "<str>"
        end
      | '%' -> Buffer.add_char buf '%'
      | c -> runtime_error "printf: unsupported conversion %%%c" c);
      i := !j + 1
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.add_buffer task.proc.sh.output buf;
  Buffer.length buf

and rank_to_core task rank = rank mod task.proc.sh.ncores

and collective_shmalloc task bytes =
  let sh = task.proc.sh in
  let k = task.shm_count in
  task.shm_count <- k + 1;
  match Hashtbl.find_opt sh.shm_log k with
  | Some addr -> addr
  | None ->
      let addr =
        Scc.Memmap.alloc (Scc.Engine.memmap sh.eng) Scc.Memmap.Shared_dram
          ~bytes
      in
      Hashtbl.add sh.shm_log k addr;
      addr

(* Collective on-chip allocation: the k-th call returns the same address
   in every rank; block k lives contiguously in the MPB slice of core
   (k mod ncores).  Contiguity keeps C pointer arithmetic valid, at the
   price of capping one allocation at a slice (documented in DESIGN.md). *)
and collective_mpb_malloc task bytes =
  let sh = task.proc.sh in
  let k = task.mpb_count in
  task.mpb_count <- k + 1;
  match Hashtbl.find_opt sh.mpb_alloc_log k with
  | Some addr -> addr
  | None ->
      let owner = k mod sh.ncores in
      let addr =
        Scc.Memmap.alloc (Scc.Engine.memmap sh.eng) (Scc.Memmap.Mpb owner)
          ~bytes
      in
      Hashtbl.add sh.mpb_alloc_log k addr;
      addr

(* Sync objects are keyed by source name; ids are assigned in order of
   first dynamic use (the table size before insertion), exactly as the
   original association lists did. *)
and barrier_entry task name ~count =
  let sh = task.proc.sh in
  match Hashtbl.find_opt sh.barriers name with
  | Some entry -> entry
  | None ->
      let entry = (Hashtbl.length sh.barriers, count) in
      Hashtbl.add sh.barriers name entry;
      entry

(* RCCE flags live one copy per UE; the engine flag id combines the
   flag's index with the owning rank. *)
and rcce_flag_index task name =
  let sh = task.proc.sh in
  match Hashtbl.find_opt sh.rcce_flags name with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.length sh.rcce_flags in
      Hashtbl.add sh.rcce_flags name idx;
      idx

and rcce_flag_id task ~name ~rank =
  (rcce_flag_index task name * task.proc.sh.ncores) + rank

and mutex_lock_id task name =
  let sh = task.proc.sh in
  match Hashtbl.find_opt sh.mutexes name with
  | Some id -> id
  | None ->
      let id = Hashtbl.length sh.mutexes in
      Hashtbl.add sh.mutexes name id;
      id

and mutex_name_of_expr = function
  | Ast.Var name -> name
  | Ast.Unary (Ast.Addr, Ast.Var name) -> name
  | Ast.Unary (Ast.Addr, Ast.Index (Ast.Var name, _)) -> name
  | _ -> "<anonymous-mutex>"

(* Builtins that name a sync object or a thread entry point inspect the
   syntactic argument, which rides along on [Rcall_builtin]. *)
and ast_arg ast_args i = List.nth ast_args i

and call_builtin task name args ast_args =
  let api = task.api in
  match name, args with
  | "printf", fmt_expr :: rest -> begin
      let fmt_v = eval task fmt_expr in
      let values = List.map (eval task) rest in
      match Hashtbl.find_opt task.proc.sh.string_at (Value.as_addr fmt_v) with
      | Some fmt ->
          charge task 1_000;
          Value.Vint (mini_printf task fmt values)
      | None -> runtime_error "printf: format is not a string literal"
    end
  | "malloc", [ size ] ->
      let bytes = max 4 (Value.as_int (eval task size)) in
      charge task 200;
      Value.Vptr { addr = alloc_private task ~bytes; elt = Ctype.Void }
  | "free", [ _ ] -> Value.Vvoid
  | "exit", [ code ] -> begin
      ignore (eval task code);
      raise Thread_exit
    end
  (* --- pthreads --------------------------------------------------------- *)
  | "pthread_create", [ tid; _attr; _func; arg ] -> begin
      match
        Analysis.Thread_analysis.func_name_of_arg (ast_arg ast_args 2)
      with
      | None -> runtime_error "pthread_create: cannot resolve thread function"
      | Some fname -> begin
          match
            Hashtbl.find_opt task.proc.sh.resolved.Resolve.rp_fn_index fname
          with
          | None -> runtime_error "pthread_create: unknown function %s" fname
          | Some fidx ->
              let fn = task.proc.sh.resolved.Resolve.rp_funcs.(fidx) in
              let argv = eval task arg in
              flush task;
              let child_id =
                api.Scc.Engine.spawn_child ~core:task.proc.core
                  (fun child_api ->
                    let child =
                      { proc = task.proc; api = child_api;
                        frames = [ make_frame fn ];
                        pending_cycles = 0; shm_count = 0; mpb_count = 0;
                        held_locks = Lockset.Int_set.empty }
                    in
                    prof_push child fidx;
                    (try
                       List.iter
                         (fun (slot, pname, pty) ->
                           let lv = declare child ~slot pname pty in
                           write_mem child lv argv)
                         fn.Resolve.rf_params;
                       ignore (exec_block child fn.Resolve.rf_body)
                     with Thread_exit -> ());
                    flush child;
                    prof_pop child)
              in
              let tid_lv =
                eval_lvalue task (Resolve.Runary (Ast.Deref, tid))
              in
              write_mem task tid_lv (Value.Vint child_id);
              Value.Vint 0
        end
    end
  | "pthread_join", [ tid; _ ] ->
      let target = Value.as_int (eval task tid) in
      flush task;
      api.Scc.Engine.join target;
      sync_races task;
      Value.Vint 0
  | "pthread_exit", [ _ ] -> raise Thread_exit
  | "pthread_self", [] -> Value.Vint api.Scc.Engine.self
  | "pthread_barrier_init", [ _b; _attr; count ] ->
      let n = Value.as_int (eval task count) in
      ignore
        (barrier_entry task (mutex_name_of_expr (ast_arg ast_args 0))
           ~count:n);
      Value.Vint 0
  | "pthread_barrier_destroy", [ _ ] -> Value.Vint 0
  | "pthread_barrier_wait", [ _b ] ->
      let id, count =
        barrier_entry task (mutex_name_of_expr (ast_arg ast_args 0)) ~count:1
      in
      flush task;
      api.Scc.Engine.barrier_n ~id ~count;
      sync_races task;
      Value.Vint 0
  | "pthread_mutex_init", (_m :: _) ->
      ignore (mutex_lock_id task (mutex_name_of_expr (ast_arg ast_args 0)));
      Value.Vint 0
  | "pthread_mutex_destroy", [ _ ] -> Value.Vint 0
  | "pthread_mutex_lock", [ _m ] ->
      let mname = mutex_name_of_expr (ast_arg ast_args 0) in
      let id = mutex_lock_id task mname in
      (match task.proc.sh.profile with
      | None -> ()
      | Some p ->
          Scc.Profile.name_lock p ~lock:(rank_to_core task id) mname);
      flush task;
      api.Scc.Engine.acquire (rank_to_core task id);
      task.held_locks <- Lockset.Int_set.add id task.held_locks;
      Value.Vint 0
  | "pthread_mutex_unlock", [ _m ] ->
      let id = mutex_lock_id task (mutex_name_of_expr (ast_arg ast_args 0)) in
      flush task;
      api.Scc.Engine.release (rank_to_core task id);
      task.held_locks <- Lockset.Int_set.remove id task.held_locks;
      Value.Vint 0
  (* --- RCCE ------------------------------------------------------------- *)
  | "RCCE_init", [ _; _ ] -> Value.Vint 0
  | "RCCE_finalize", [] -> Value.Vint 0
  | "RCCE_ue", [] -> Value.Vint task.proc.rank
  | "RCCE_num_ues", [] -> Value.Vint task.proc.sh.ncores
  | "RCCE_shmalloc", [ size ] ->
      let bytes = max 4 (Value.as_int (eval task size)) in
      charge task 200;
      let k = task.shm_count in
      let addr = collective_shmalloc task bytes in
      name_region task ~base:addr ~bytes (Printf.sprintf "shmalloc#%d" k);
      Value.Vptr { addr; elt = Ctype.Void }
  | "RCCE_malloc", [ size ] ->
      let bytes = max 4 (Value.as_int (eval task size)) in
      charge task 200;
      Value.Vptr
        { addr = collective_mpb_malloc task bytes; elt = Ctype.Void }
  | "RCCE_shfree", [ _ ] | "RCCE_free", [ _ ] -> Value.Vvoid
  | "RCCE_flag_alloc", [ _f ] ->
      ignore (rcce_flag_index task (mutex_name_of_expr (ast_arg ast_args 0)));
      Value.Vint 0
  | "RCCE_flag_free", [ _ ] -> Value.Vint 0
  | "RCCE_flag_write", [ _f; v; ue_expr ] ->
      let value = Value.is_truthy (eval task v) in
      let rank = Value.as_int (eval task ue_expr) in
      let id =
        rcce_flag_id task ~name:(mutex_name_of_expr (ast_arg ast_args 0))
          ~rank
      in
      flush task;
      api.Scc.Engine.flag_set ~id value;
      Value.Vint 0
  | "RCCE_wait_until", [ _f; v ] ->
      if not (Value.is_truthy (eval task v)) then
        runtime_error "RCCE_wait_until: only RCCE_FLAG_SET is supported"
      else begin
        let id =
          rcce_flag_id task ~name:(mutex_name_of_expr (ast_arg ast_args 0))
            ~rank:task.proc.rank
        in
        flush task;
        api.Scc.Engine.flag_wait ~id;
        Value.Vint 0
      end
  | "RCCE_set_frequency_divider", [ d ] ->
      let divider = Value.as_int (eval task d) in
      if divider < 2 || divider > 16 then
        runtime_error "RCCE_set_frequency_divider: divider outside 2..16"
      else begin
        flush task;
        api.Scc.Engine.set_frequency ~core:api.Scc.Engine.core
          ~mhz:(1600 / divider);
        Value.Vint 0
      end
  | "RCCE_barrier", [ _ ] ->
      flush task;
      api.Scc.Engine.barrier ();
      sync_races task;
      Value.Vint 0
  | "RCCE_acquire_lock", [ n ] ->
      let id = Value.as_int (eval task n) in
      (match task.proc.sh.profile with
      | None -> ()
      | Some p ->
          Scc.Profile.name_lock p ~lock:(rank_to_core task id)
            (Printf.sprintf "rcce-lock-%d" id));
      flush task;
      api.Scc.Engine.acquire (rank_to_core task id);
      task.held_locks <- Lockset.Int_set.add id task.held_locks;
      Value.Vint 0
  | "RCCE_release_lock", [ n ] ->
      let id = Value.as_int (eval task n) in
      flush task;
      api.Scc.Engine.release (rank_to_core task id);
      task.held_locks <- Lockset.Int_set.remove id task.held_locks;
      Value.Vint 0
  | _, _ ->
      runtime_error "call to unknown function '%s' (%d args)" name
        (List.length args)

(* --- closure compilation -------------------------------------------------- *)

(* Lower the resolved AST to OCaml closures (direct-threaded code): one
   closure per node, built once per run, specializing everything that is
   static — slot kind, builtin dispatch, sync-object names, profiler
   presence — while replaying exactly the tree-walker's charge amounts,
   evaluation order and engine-effect sequence.  A compiled run is
   therefore bit-identical to a tree-walk run; only the per-node dispatch
   cost differs.

   Compilation never raises: paths where the tree-walker fails at
   evaluation time (arity mismatch, unknown builtin, non-lvalue) compile
   to closures that raise the same [Runtime_error] when executed, so
   programs with unreachable bad code behave identically in both modes.

   Sync-object ids are still assigned by first dynamic use (the shared
   hashtables), but each call site caches the id after its first lookup:
   closures are per-run, and a name's id never changes within a run. *)

type ecode = task -> Value.t
type lcode = task -> lvalue
type scode = task -> outcome

(* Everything compilation reads; [cs_funcs]/[cs_bodies] are the same
   arrays stored in [shared], filled as each function compiles — call
   sites index them at run time, when every entry is in place. *)
type cstate = {
  cs_rp : Resolve.t;
  cs_prof : Scc.Profile.t option;
  cs_line_slots : int array;
  cs_funcs : (task -> Value.t array -> Value.t) array;
  cs_bodies : scode array;
}

(* Specialized variable fetch: the slot match happens once, at compile
   time.  The [Local] fallback to the dynamic walk (declaration not yet
   executed in this call) is preserved. *)
let compile_fetch slot name : task -> lvalue option =
  match slot with
  | Resolve.Local i -> (
      fun task ->
        match task.frames with
        | frame :: rest -> (
            match frame.f_slots.(i) with
            | Some _ as r -> r
            | None -> lookup_frames task.proc rest name)
        | [] -> lookup_frames task.proc [] name)
  | Resolve.Global g -> fun task -> task.proc.global_slots.(g)
  | Resolve.Dynamic -> fun task -> lookup_frames task.proc task.frames name

let outcome_normal = Normal
let returned_void = Returned Value.Vvoid

let rec compile_expr st (e : Resolve.rexpr) : ecode =
  match e with
  | Resolve.Rlit v -> fun _ -> v
  | Resolve.Rstr s -> fun task -> string_value task s
  | Resolve.Rconst_var (v, _, _) -> fun _ -> v
  | Resolve.Rvar (slot, name) ->
      let fetch = compile_fetch slot name in
      fun task -> (
        match fetch task with
        | Some { ty = Ctype.Array (elt, _); addr } ->
            (* arrays decay to a pointer to their storage, no load *)
            Value.Vptr { addr; elt }
        | Some lv -> read_mem task lv
        | None -> runtime_error "unbound variable '%s'" name)
  | Resolve.Runary (Ast.Addr, inner) ->
      let clv = compile_lvalue st inner in
      fun task ->
        let lv = clv task in
        let elt =
          match lv.ty with Ctype.Array (elt, _) -> elt | ty -> ty
        in
        Value.Vptr { addr = lv.addr; elt }
  | Resolve.Runary (Ast.Deref, inner) ->
      let ci = compile_expr st inner in
      fun task -> (
        match ci task with
        | Value.Vptr { addr; elt } -> read_mem_at task addr elt
        | v ->
            runtime_error "dereference of non-pointer %s" (Value.to_string v))
  | Resolve.Runary
      (((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec) as op), inner)
    ->
      let clv = compile_lvalue st inner in
      let vdelta =
        Value.Vint (if op = Ast.Preinc || op = Ast.Postinc then 1 else -1)
      in
      let post = op = Ast.Postinc || op = Ast.Postdec in
      fun task ->
        let lv = clv task in
        let old_v = read_mem task lv in
        let new_v = Value.binop Ast.Add old_v vdelta in
        charge task 1;
        write_mem task lv new_v;
        if post then old_v else new_v
  | Resolve.Runary (op, inner) ->
      let ci = compile_expr st inner in
      fun task ->
        charge task 1;
        Value.unop op (ci task)
  | Resolve.Rbinary (Ast.Land, a, b) ->
      let ca = compile_expr st a in
      let cb = compile_expr st b in
      fun task ->
        charge task 1;
        if Value.is_truthy (ca task) then
          Value.Vint (if Value.is_truthy (cb task) then 1 else 0)
        else Value.Vint 0
  | Resolve.Rbinary (Ast.Lor, a, b) ->
      let ca = compile_expr st a in
      let cb = compile_expr st b in
      fun task ->
        charge task 1;
        if Value.is_truthy (ca task) then Value.Vint 1
        else Value.Vint (if Value.is_truthy (cb task) then 1 else 0)
  | Resolve.Rbinary (op, a, b) ->
      let ca = compile_expr st a in
      let cb = compile_expr st b in
      fun task ->
        let va = ca task in
        let vb = cb task in
        charge task (Value.binop_cycles op va vb);
        Value.binop op va vb
  | Resolve.Rassign (None, lhs, rhs) ->
      let crhs = compile_expr st rhs in
      let clhs = compile_lvalue st lhs in
      fun task ->
        let v = crhs task in
        let lv = clhs task in
        write_mem task lv v;
        v
  | Resolve.Rassign (Some op, lhs, rhs) ->
      let crhs = compile_expr st rhs in
      let clhs = compile_lvalue st lhs in
      fun task ->
        let vb = crhs task in
        let lv = clhs task in
        let va = read_mem task lv in
        charge task (Value.binop_cycles op va vb);
        let v = Value.binop op va vb in
        write_mem task lv v;
        v
  | Resolve.Rcond (c, a, b) ->
      let cc = compile_expr st c in
      let ca = compile_expr st a in
      let cb = compile_expr st b in
      fun task ->
        charge task 2;
        if Value.is_truthy (cc task) then ca task else cb task
  | Resolve.Rcall_user (idx, args) ->
      let fn = st.cs_rp.Resolve.rp_funcs.(idx) in
      let n = List.length args in
      if n <> fn.Resolve.rf_nparams then begin
        let fname = fn.Resolve.rf_name in
        let nparams = fn.Resolve.rf_nparams in
        fun _ ->
          runtime_error "%s expects %d arguments, got %d" fname nparams n
      end
      else begin
        let cargs = Array.of_list (List.map (compile_expr st) args) in
        let funcs = st.cs_funcs in
        fun task ->
          (* explicit left-to-right loop: [Array.map]'s order is
             unspecified, the tree-walker's [List.map] is head-first *)
          let values = Array.make n Value.Vvoid in
          for i = 0 to n - 1 do
            values.(i) <- (Array.unsafe_get cargs i) task
          done;
          funcs.(idx) task values
      end
  | Resolve.Rcall_builtin (name, args, ast_args) ->
      compile_builtin st name args ast_args
  | Resolve.Rindex (arr, idx) ->
      let carr = compile_expr st arr in
      let cidx = compile_expr st idx in
      fun task -> (
        let base = carr task in
        let i = Value.as_int (cidx task) in
        charge task 2;
        match base with
        | Value.Vptr { addr; elt } ->
            read_mem_at task (addr + (i * Ctype.sizeof elt)) elt
        | v -> runtime_error "indexing non-pointer %s" (Value.to_string v))
  | Resolve.Rcast (ty, inner) ->
      let ci = compile_expr st inner in
      fun task -> Value.convert ty (ci task)
  | Resolve.Rsizeof_var (slot, name) ->
      fun task ->
        let ty =
          match resolve_slot task slot name with
          | Some lv -> lv.ty
          | None -> Ctype.Int
        in
        Value.Vint (Ctype.sizeof ty)
  | Resolve.Rcomma (a, b) ->
      let ca = compile_expr st a in
      let cb = compile_expr st b in
      fun task ->
        ignore (ca task);
        cb task

and compile_lvalue st (e : Resolve.rexpr) : lcode =
  match e with
  | Resolve.Rvar (slot, name) | Resolve.Rconst_var (_, slot, name) ->
      let fetch = compile_fetch slot name in
      fun task -> (
        match fetch task with
        | Some lv -> lv
        | None -> runtime_error "unbound variable '%s'" name)
  | Resolve.Runary (Ast.Deref, inner) ->
      let ci = compile_expr st inner in
      fun task -> (
        match ci task with
        | Value.Vptr { addr; elt } -> { addr; ty = elt }
        | v ->
            runtime_error "dereference of non-pointer %s" (Value.to_string v))
  | Resolve.Rindex (arr, idx) ->
      let carr = compile_expr st arr in
      let cidx = compile_expr st idx in
      fun task -> (
        let base = carr task in
        let i = Value.as_int (cidx task) in
        charge task 2;
        match base with
        | Value.Vptr { addr; elt } ->
            { addr = addr + (i * Ctype.sizeof elt); ty = elt }
        | v -> runtime_error "indexing non-pointer %s" (Value.to_string v))
  | Resolve.Rcast (_, inner) -> compile_lvalue st inner
  | Resolve.Rlit _ | Resolve.Rstr _ | Resolve.Runary _ | Resolve.Rbinary _
  | Resolve.Rassign _ | Resolve.Rcond _ | Resolve.Rcall_user _
  | Resolve.Rcall_builtin _ | Resolve.Rsizeof_var _ | Resolve.Rcomma _ ->
      fun _ -> runtime_error "expression is not an l-value"

and compile_stmt st (s : Resolve.rstmt) : scode =
  match s with
  | Resolve.Rsexpr e ->
      let ce = compile_expr st e in
      fun task ->
        ignore (ce task);
        outcome_normal
  | Resolve.Rsdecl ds ->
      let cds = Array.of_list (List.map (compile_decl st) ds) in
      fun task ->
        Array.iter (fun cd -> cd task) cds;
        outcome_normal
  | Resolve.Rsblock stmts -> compile_block st stmts
  | Resolve.Rsif (c, a, b) ->
      let cc = compile_expr st c in
      let ca = compile_stmt st a in
      let cb =
        match b with
        | Some b -> compile_stmt st b
        | None -> fun _ -> outcome_normal
      in
      fun task ->
        charge task 2;
        if Value.is_truthy (cc task) then ca task else cb task
  | Resolve.Rswhile (c, body) ->
      let cc = compile_expr st c in
      let cbody = compile_stmt st body in
      fun task ->
        let rec loop () =
          charge task 2;
          if Value.is_truthy (cc task) then
            match cbody task with
            | Normal | Continued -> loop ()
            | Broke -> outcome_normal
            | Returned _ as r -> r
          else outcome_normal
        in
        loop ()
  | Resolve.Rsdo (body, c) ->
      let cbody = compile_stmt st body in
      let cc = compile_expr st c in
      fun task ->
        let rec loop () =
          match cbody task with
          | Normal | Continued ->
              charge task 2;
              if Value.is_truthy (cc task) then loop () else outcome_normal
          | Broke -> outcome_normal
          | Returned _ as r -> r
        in
        loop ()
  | Resolve.Rsfor (init, cond, step, body) ->
      let cinit : task -> unit =
        match init with
        | Resolve.Rfor_none -> fun _ -> ()
        | Resolve.Rfor_expr e ->
            let ce = compile_expr st e in
            fun task -> ignore (ce task)
        | Resolve.Rfor_decl ds ->
            let cds = Array.of_list (List.map (compile_decl st) ds) in
            fun task -> Array.iter (fun cd -> cd task) cds
      in
      let ccond = Option.map (compile_expr st) cond in
      let cstep = Option.map (compile_expr st) step in
      let cbody = compile_stmt st body in
      fun task ->
        cinit task;
        let rec loop () =
          charge task 2;
          let continue_loop =
            match ccond with
            | None -> true
            | Some c -> Value.is_truthy (c task)
          in
          if not continue_loop then outcome_normal
          else
            match cbody task with
            | Normal | Continued ->
                (match cstep with None -> () | Some c -> ignore (c task));
                loop ()
            | Broke -> outcome_normal
            | Returned _ as r -> r
        in
        loop ()
  | Resolve.Rsreturn None -> fun _ -> returned_void
  | Resolve.Rsreturn (Some e) ->
      let ce = compile_expr st e in
      fun task -> Returned (ce task)
  | Resolve.Rsbreak -> fun _ -> Broke
  | Resolve.Rscontinue -> fun _ -> Continued
  | Resolve.Rsnull -> fun _ -> outcome_normal
  | Resolve.Rsat (loc, inner) -> (
      let cinner = compile_stmt st inner in
      match st.cs_prof with
      | None -> cinner   (* no profiler: the position marker melts away *)
      | Some p ->
          let slots = st.cs_line_slots in
          fun task ->
            Scc.Profile.set_line p ~ctx:task.api.Scc.Engine.self slots.(loc);
            cinner task)

and compile_block st stmts : scode =
  match stmts with
  | [] -> fun _ -> outcome_normal
  | [ s ] -> compile_stmt st s
  | stmts ->
      let cs = Array.of_list (List.map (compile_stmt st) stmts) in
      let n = Array.length cs in
      fun task ->
        let rec go i =
          if i >= n then outcome_normal
          else
            match (Array.unsafe_get cs i) task with
            | Normal -> go (i + 1)
            | (Returned _ | Broke | Continued) as out -> out
        in
        go 0

and compile_decl st (d : Resolve.rdecl) : task -> unit =
  let loc = d.Resolve.rd_loc in
  let slot = d.Resolve.rd_slot in
  let name = d.Resolve.rd_name in
  let ty = d.Resolve.rd_type in
  match d.Resolve.rd_init with
  | None -> fun task -> ignore (declare task ~loc ~slot name ty)
  | Some (Resolve.Rinit_expr e) ->
      let ce = compile_expr st e in
      fun task ->
        let lv = declare task ~loc ~slot name ty in
        let v = ce task in
        write_mem task lv v
  | Some (Resolve.Rinit_list es) ->
      let ces = Array.of_list (List.map (compile_expr st) es) in
      let elt = match ty with Ctype.Array (elt, _) -> elt | ty -> ty in
      let esz = Ctype.sizeof elt in
      fun task ->
        let lv = declare task ~loc ~slot name ty in
        for i = 0 to Array.length ces - 1 do
          let v = (Array.unsafe_get ces i) task in
          write_mem_at task (lv.addr + (i * esz)) elt v
        done

(* Builtins: dispatch by name and arity happens once, at compile time, as
   does extracting sync-object names and thread entry points from the
   syntactic arguments.  Ids keep their first-dynamic-use assignment
   order; call sites cache the id after the first lookup. *)
and compile_builtin st name args ast_args : ecode =
  match (name, args) with
  | "printf", fmt_expr :: rest ->
      let cfmt = compile_expr st fmt_expr in
      let crest = Array.of_list (List.map (compile_expr st) rest) in
      let n = Array.length crest in
      fun task -> (
        let fmt_v = cfmt task in
        let rec ev i =
          if i >= n then []
          else
            let v = (Array.unsafe_get crest i) task in
            v :: ev (i + 1)
        in
        let values = ev 0 in
        match
          Hashtbl.find_opt task.proc.sh.string_at (Value.as_addr fmt_v)
        with
        | Some fmt ->
            charge task 1_000;
            Value.Vint (mini_printf task fmt values)
        | None -> runtime_error "printf: format is not a string literal")
  | "malloc", [ size ] ->
      let csize = compile_expr st size in
      fun task ->
        let bytes = max 4 (Value.as_int (csize task)) in
        charge task 200;
        Value.Vptr { addr = alloc_private task ~bytes; elt = Ctype.Void }
  | "free", [ _ ] -> fun _ -> Value.Vvoid
  | "exit", [ code ] ->
      let cc = compile_expr st code in
      fun task ->
        ignore (cc task);
        raise Thread_exit
  (* --- pthreads --------------------------------------------------------- *)
  | "pthread_create", [ tid; _attr; _func; arg ] -> (
      match Analysis.Thread_analysis.func_name_of_arg (ast_arg ast_args 2) with
      | None ->
          fun _ ->
            runtime_error "pthread_create: cannot resolve thread function"
      | Some fname -> (
          match Hashtbl.find_opt st.cs_rp.Resolve.rp_fn_index fname with
          | None ->
              fun _ ->
                runtime_error "pthread_create: unknown function %s" fname
          | Some fidx ->
              let fn = st.cs_rp.Resolve.rp_funcs.(fidx) in
              let params = fn.Resolve.rf_params in
              let carg = compile_expr st arg in
              let ctid = compile_lvalue st (Resolve.Runary (Ast.Deref, tid)) in
              let bodies = st.cs_bodies in
              fun task ->
                let argv = carg task in
                flush task;
                let child_id =
                  task.api.Scc.Engine.spawn_child ~core:task.proc.core
                    (fun child_api ->
                      let child =
                        { proc = task.proc; api = child_api;
                          frames = [ make_frame fn ];
                          pending_cycles = 0; shm_count = 0; mpb_count = 0;
                          held_locks = Lockset.Int_set.empty }
                      in
                      prof_push child fidx;
                      (try
                         List.iter
                           (fun (slot, pname, pty) ->
                             let lv = declare child ~slot pname pty in
                             write_mem child lv argv)
                           params;
                         ignore (bodies.(fidx) child)
                       with Thread_exit -> ());
                      flush child;
                      prof_pop child)
                in
                let tid_lv = ctid task in
                write_mem task tid_lv (Value.Vint child_id);
                Value.Vint 0))
  | "pthread_join", [ tid; _ ] ->
      let ctid = compile_expr st tid in
      fun task ->
        let target = Value.as_int (ctid task) in
        flush task;
        task.api.Scc.Engine.join target;
        sync_races task;
        Value.Vint 0
  | "pthread_exit", [ _ ] -> fun _ -> raise Thread_exit
  | "pthread_self", [] -> fun task -> Value.Vint task.api.Scc.Engine.self
  | "pthread_barrier_init", [ _b; _attr; count ] ->
      let ccount = compile_expr st count in
      let bname = mutex_name_of_expr (ast_arg ast_args 0) in
      fun task ->
        let n = Value.as_int (ccount task) in
        ignore (barrier_entry task bname ~count:n);
        Value.Vint 0
  | "pthread_barrier_destroy", [ _ ] -> fun _ -> Value.Vint 0
  | "pthread_barrier_wait", [ _b ] ->
      let bname = mutex_name_of_expr (ast_arg ast_args 0) in
      let cache = ref None in
      fun task ->
        let id, count =
          match !cache with
          | Some entry -> entry
          | None ->
              let entry = barrier_entry task bname ~count:1 in
              cache := Some entry;
              entry
        in
        flush task;
        task.api.Scc.Engine.barrier_n ~id ~count;
        sync_races task;
        Value.Vint 0
  | "pthread_mutex_init", _m :: _ ->
      let mname = mutex_name_of_expr (ast_arg ast_args 0) in
      fun task ->
        ignore (mutex_lock_id task mname);
        Value.Vint 0
  | "pthread_mutex_destroy", [ _ ] -> fun _ -> Value.Vint 0
  | "pthread_mutex_lock", [ _m ] -> (
      let mname = mutex_name_of_expr (ast_arg ast_args 0) in
      let cache = ref (-1) in
      let lock_id task =
        if !cache >= 0 then !cache
        else begin
          let id = mutex_lock_id task mname in
          cache := id;
          id
        end
      in
      match st.cs_prof with
      | None ->
          fun task ->
            let id = lock_id task in
            flush task;
            task.api.Scc.Engine.acquire (rank_to_core task id);
            task.held_locks <- Lockset.Int_set.add id task.held_locks;
            Value.Vint 0
      | Some p ->
          fun task ->
            let id = lock_id task in
            Scc.Profile.name_lock p ~lock:(rank_to_core task id) mname;
            flush task;
            task.api.Scc.Engine.acquire (rank_to_core task id);
            task.held_locks <- Lockset.Int_set.add id task.held_locks;
            Value.Vint 0)
  | "pthread_mutex_unlock", [ _m ] ->
      let mname = mutex_name_of_expr (ast_arg ast_args 0) in
      let cache = ref (-1) in
      fun task ->
        let id =
          if !cache >= 0 then !cache
          else begin
            let id = mutex_lock_id task mname in
            cache := id;
            id
          end
        in
        flush task;
        task.api.Scc.Engine.release (rank_to_core task id);
        task.held_locks <- Lockset.Int_set.remove id task.held_locks;
        Value.Vint 0
  (* --- RCCE ------------------------------------------------------------- *)
  | "RCCE_init", [ _; _ ] -> fun _ -> Value.Vint 0
  | "RCCE_finalize", [] -> fun _ -> Value.Vint 0
  | "RCCE_ue", [] -> fun task -> Value.Vint task.proc.rank
  | "RCCE_num_ues", [] -> fun task -> Value.Vint task.proc.sh.ncores
  | "RCCE_shmalloc", [ size ] ->
      let csize = compile_expr st size in
      fun task ->
        let bytes = max 4 (Value.as_int (csize task)) in
        charge task 200;
        let k = task.shm_count in
        let addr = collective_shmalloc task bytes in
        name_region task ~base:addr ~bytes (Printf.sprintf "shmalloc#%d" k);
        Value.Vptr { addr; elt = Ctype.Void }
  | "RCCE_malloc", [ size ] ->
      let csize = compile_expr st size in
      fun task ->
        let bytes = max 4 (Value.as_int (csize task)) in
        charge task 200;
        Value.Vptr { addr = collective_mpb_malloc task bytes; elt = Ctype.Void }
  | "RCCE_shfree", [ _ ] | "RCCE_free", [ _ ] -> fun _ -> Value.Vvoid
  | "RCCE_flag_alloc", [ _f ] ->
      let fname = mutex_name_of_expr (ast_arg ast_args 0) in
      fun task ->
        ignore (rcce_flag_index task fname);
        Value.Vint 0
  | "RCCE_flag_free", [ _ ] -> fun _ -> Value.Vint 0
  | "RCCE_flag_write", [ _f; v; ue_expr ] ->
      let fname = mutex_name_of_expr (ast_arg ast_args 0) in
      let cv = compile_expr st v in
      let cue = compile_expr st ue_expr in
      let idx_cache = ref (-1) in
      fun task ->
        let value = Value.is_truthy (cv task) in
        let rank = Value.as_int (cue task) in
        let idx =
          if !idx_cache >= 0 then !idx_cache
          else begin
            let i = rcce_flag_index task fname in
            idx_cache := i;
            i
          end
        in
        let id = (idx * task.proc.sh.ncores) + rank in
        flush task;
        task.api.Scc.Engine.flag_set ~id value;
        Value.Vint 0
  | "RCCE_wait_until", [ _f; v ] ->
      let fname = mutex_name_of_expr (ast_arg ast_args 0) in
      let cv = compile_expr st v in
      let idx_cache = ref (-1) in
      fun task ->
        if not (Value.is_truthy (cv task)) then
          runtime_error "RCCE_wait_until: only RCCE_FLAG_SET is supported"
        else begin
          let idx =
            if !idx_cache >= 0 then !idx_cache
            else begin
              let i = rcce_flag_index task fname in
              idx_cache := i;
              i
            end
          in
          let id = (idx * task.proc.sh.ncores) + task.proc.rank in
          flush task;
          task.api.Scc.Engine.flag_wait ~id;
          Value.Vint 0
        end
  | "RCCE_set_frequency_divider", [ d ] ->
      let cd = compile_expr st d in
      fun task ->
        let divider = Value.as_int (cd task) in
        if divider < 2 || divider > 16 then
          runtime_error "RCCE_set_frequency_divider: divider outside 2..16"
        else begin
          flush task;
          task.api.Scc.Engine.set_frequency ~core:task.api.Scc.Engine.core
            ~mhz:(1600 / divider);
          Value.Vint 0
        end
  | "RCCE_barrier", [ _ ] ->
      fun task ->
        flush task;
        task.api.Scc.Engine.barrier ();
        sync_races task;
        Value.Vint 0
  | "RCCE_acquire_lock", [ n ] -> (
      let cn = compile_expr st n in
      match st.cs_prof with
      | None ->
          fun task ->
            let id = Value.as_int (cn task) in
            flush task;
            task.api.Scc.Engine.acquire (rank_to_core task id);
            task.held_locks <- Lockset.Int_set.add id task.held_locks;
            Value.Vint 0
      | Some p ->
          fun task ->
            let id = Value.as_int (cn task) in
            Scc.Profile.name_lock p ~lock:(rank_to_core task id)
              (Printf.sprintf "rcce-lock-%d" id);
            flush task;
            task.api.Scc.Engine.acquire (rank_to_core task id);
            task.held_locks <- Lockset.Int_set.add id task.held_locks;
            Value.Vint 0)
  | "RCCE_release_lock", [ n ] ->
      let cn = compile_expr st n in
      fun task ->
        let id = Value.as_int (cn task) in
        flush task;
        task.api.Scc.Engine.release (rank_to_core task id);
        task.held_locks <- Lockset.Int_set.remove id task.held_locks;
        Value.Vint 0
  | _, _ ->
      let nargs = List.length args in
      fun _ ->
        runtime_error "call to unknown function '%s' (%d args)" name nargs

(* Compile one function: its body (for thread entry points, which set up
   the frame themselves) and its call implementation (arguments already
   evaluated — mirrors [call_user] after the argument [List.map]). *)
let compile_fn st fidx =
  let fn = st.cs_rp.Resolve.rp_funcs.(fidx) in
  let cbody = compile_block st fn.Resolve.rf_body in
  st.cs_bodies.(fidx) <- cbody;
  let params = Array.of_list fn.Resolve.rf_params in
  let nparams = fn.Resolve.rf_nparams in
  st.cs_funcs.(fidx) <-
    (fun task values ->
      charge task 10;   (* call/return overhead *)
      prof_push task fidx;
      task.frames <- make_frame fn :: task.frames;
      for i = 0 to nparams - 1 do
        let slot, pname, pty = Array.unsafe_get params i in
        let lv = declare task ~slot pname pty in
        write_mem task lv values.(i)
      done;
      let result =
        match cbody task with
        | Returned v -> v
        | Normal | Broke | Continued -> Value.Vvoid
      in
      (match task.frames with
      | _ :: rest -> task.frames <- rest
      | [] -> ());
      prof_pop task;
      result)

let compile_program ~profile ~line_slots (rp : Resolve.t) =
  let nfuncs = Array.length rp.Resolve.rp_funcs in
  let cfuns = Array.make nfuncs (fun _ _ -> Value.Vvoid) in
  let cbodies = Array.make nfuncs (fun _ -> Normal) in
  let st =
    { cs_rp = rp; cs_prof = profile; cs_line_slots = line_slots;
      cs_funcs = cfuns; cs_bodies = cbodies }
  in
  for i = 0 to nfuncs - 1 do
    compile_fn st i
  done;
  (cfuns, cbodies)

(* --- program setup ------------------------------------------------------- *)

(* Allocate and initialize one process's globals (load-time, untimed).
   Runs with an empty frame stack, so initializer expressions resolve
   against the globals created so far — including duplicate names, where
   each declaration re-points the canonical table slot just as
   [Hashtbl.replace] re-pointed the name. *)
let setup_globals task =
  let rp = task.proc.sh.resolved in
  Array.iter
    (fun (g : Resolve.rglobal) ->
      let ty = g.Resolve.rg_type in
      let bytes = max (Ctype.sizeof ty) 4 in
      let lv = { addr = alloc_private task ~bytes; ty } in
      name_region task ~loc:g.Resolve.rg_loc ~base:lv.addr ~bytes
        g.Resolve.rg_name;
      Hashtbl.replace task.proc.globals g.Resolve.rg_name lv;
      let canonical =
        Hashtbl.find rp.Resolve.rp_global_index g.Resolve.rg_name
      in
      task.proc.global_slots.(canonical) <- Some lv;
      match g.Resolve.rg_init with
      | None -> poke task lv.addr ty (Value.zero_of ty)
      | Some (Resolve.Rinit_expr e) -> poke task lv.addr ty (eval task e)
      | Some (Resolve.Rinit_list es) ->
          let elt = match ty with Ctype.Array (e, _) -> e | ty -> ty in
          List.iteri
            (fun i e ->
              poke task (lv.addr + (i * Ctype.sizeof elt)) elt (eval task e))
            es)
    rp.Resolve.rp_globals

let make_shared ?cfg ?trace ?profile ?critpath ?(interp = Compiled)
    ?(sim_jobs = 1) ~detect_races ~ncores program =
  let eng = Scc.Engine.create ?cfg ?trace ?profile ?critpath ~sim_jobs () in
  let n = Scc.Config.n_cores (Scc.Engine.cfg eng) in
  let resolved = Resolve.resolve program in
  (* pre-intern every function and statement position, so the profiling
     hot path is an array index *)
  let fn_slots, line_slots =
    match profile with
    | None -> ([||], [||])
    | Some p ->
        ( Array.map
            (fun (f : Resolve.rfunc) -> Scc.Profile.intern p f.Resolve.rf_name)
            resolved.Resolve.rp_funcs,
          Array.map
            (fun (loc : Srcloc.t) ->
              Scc.Profile.intern_line p
                (Printf.sprintf "%s:%d" loc.Srcloc.file loc.Srcloc.line))
            resolved.Resolve.rp_locs )
  in
  let cfuns, cbodies =
    match interp with
    | Tree ->
        let nfuncs = Array.length resolved.Resolve.rp_funcs in
        ( Array.make nfuncs (fun _ _ -> Value.Vvoid),
          Array.make nfuncs (fun _ -> Normal) )
    | Compiled -> compile_program ~profile ~line_slots resolved
  in
  {
    resolved;
    eng;
    shared_store = region_store_create ();
    private_stores = Array.init n (fun _ -> region_store_create ());
    mpb_stores = Array.init n (fun _ -> region_store_create ());
    strings = Hashtbl.create 16;
    string_at = Hashtbl.create 16;
    output = Buffer.create 256;
    mutexes = Hashtbl.create 16;
    barriers = Hashtbl.create 16;
    rcce_flags = Hashtbl.create 16;
    shm_log = Hashtbl.create 16;
    mpb_alloc_log = Hashtbl.create 16;
    ncores;
    races = (if detect_races then Some (Lockset.create ()) else None);
    profile;
    fn_slots;
    line_slots;
    imode = interp;
    cfuns;
    cbodies;
  }

let make_process sh ~core ~rank =
  {
    sh;
    globals = Hashtbl.create 64;
    global_slots =
      Array.make (Array.length sh.resolved.Resolve.rp_globals) None;
    core;
    rank;
  }

type result = {
  engine : Scc.Engine.t;
  output : string;
  exit_values : Value.t list;   (* per process, rank order *)
  elapsed_ps : int;
  races : Lockset.report list;  (* empty unless detection was enabled *)
}

(* Index of the program's entry function in [rp_funcs]. *)
let entry_function sh =
  let rp = sh.resolved in
  let find name = Hashtbl.find_opt rp.Resolve.rp_fn_index name in
  match find "RCCE_APP" with
  | Some i -> i
  | None -> begin
      match find "main" with
      | Some i -> i
      | None -> runtime_error "program has neither RCCE_APP nor main"
    end

(* Run the entry function in a fresh task for one process. *)
let run_entry sh proc api =
  let task =
    { proc; api; frames = []; pending_cycles = 0;
      shm_count = 0; mpb_count = 0; held_locks = Lockset.Int_set.empty }
  in
  setup_globals task;
  let fidx = entry_function sh in
  let fn = sh.resolved.Resolve.rp_funcs.(fidx) in
  prof_push task fidx;
  task.frames <- [ make_frame fn ];
  List.iter
    (fun (slot, pname, pty) ->
      let lv = declare task ~slot pname pty in
      match pty with
      | Ctype.Int -> write_mem task lv (Value.Vint 1)   (* argc *)
      | _ -> write_mem task lv (Value.Vint 0))
    fn.Resolve.rf_params;
  let v =
    try
      let out =
        match sh.imode with
        | Tree -> exec_block task fn.Resolve.rf_body
        | Compiled -> sh.cbodies.(fidx) task
      in
      match out with
      | Returned v -> v
      | Normal | Broke | Continued -> Value.Vint 0
    with Thread_exit -> Value.Vint 0
  in
  flush task;
  prof_pop task;
  v

let race_reports (sh : shared) =
  match sh.races with Some d -> Lockset.reports d | None -> []

let run_pthread ?cfg ?trace ?profile ?critpath ?interp ?sim_jobs
    ?(detect_races = false) (program : Ast.program) =
  let sh =
    make_shared ?cfg ?trace ?profile ?critpath ?interp ?sim_jobs ~detect_races
      ~ncores:1 program
  in
  let proc = make_process sh ~core:0 ~rank:0 in
  let exit_value = ref Value.Vvoid in
  ignore
    (Scc.Engine.spawn sh.eng ~core:0 (fun api ->
         exit_value := run_entry sh proc api));
  Scc.Engine.run sh.eng;
  {
    engine = sh.eng;
    output = Buffer.contents sh.output;
    exit_values = [ !exit_value ];
    elapsed_ps = Scc.Engine.elapsed_ps sh.eng;
    races = race_reports sh;
  }

let run_rcce ?cfg ?trace ?profile ?critpath ?interp ?sim_jobs
    ?(detect_races = false) ~ncores (program : Ast.program) =
  if ncores < 1 then invalid_arg "Interp.run_rcce: ncores must be positive";
  let sh =
    make_shared ?cfg ?trace ?profile ?critpath ?interp ?sim_jobs ~detect_races
      ~ncores program
  in
  let exit_values = Array.make ncores Value.Vvoid in
  for rank = 0 to ncores - 1 do
    let proc = make_process sh ~core:rank ~rank in
    ignore
      (Scc.Engine.spawn sh.eng ~core:rank (fun api ->
           exit_values.(rank) <- run_entry sh proc api))
  done;
  Scc.Engine.run sh.eng;
  {
    engine = sh.eng;
    output = Buffer.contents sh.output;
    exit_values = Array.to_list exit_values;
    elapsed_ps = Scc.Engine.elapsed_ps sh.eng;
    races = race_reports sh;
  }
