open Cfront

(** A C interpreter over the SCC simulator: translated RCCE programs and
    the Pthread programs they came from execute with every load, store,
    synchronization call and operator charged to the simulated machine. *)

exception Runtime_error of string

type mode = Tree | Compiled
(** [Compiled] (the default) lowers every function body to OCaml closures
    (direct-threaded code) once per run; [Tree] walks the resolved AST —
    the reference the closures are checked against.  Both modes replay
    the same charge amounts, evaluation order and engine-effect sequence,
    so their output, timings and statistics are bit-identical. *)

type result = {
  engine : Scc.Engine.t;
  output : string;              (** concatenated printf output *)
  exit_values : Value.t list;   (** per process, rank order *)
  elapsed_ps : int;
  races : Lockset.report list;
      (** Eraser findings; empty unless [detect_races] was set *)
}

val run_pthread :
  ?cfg:Scc.Config.t -> ?trace:Scc.Trace.t -> ?profile:Scc.Profile.t ->
  ?critpath:Scc.Critpath.t -> ?interp:mode -> ?sim_jobs:int ->
  ?detect_races:bool -> Ast.program -> result
(** One process on core 0; [pthread_create] spawns further contexts on
    the same core — the paper's unconverted-program baseline.
    [detect_races] (default false) runs the Eraser lockset detector over
    every access.  With [trace] the run records a timeline; with
    [profile] every simulated picosecond is attributed to the executing
    C function and source line (see {!Scc.Profile}) — in both interpreter
    modes.  With [critpath] the engine additionally records the causal
    event-dependency graph for {!Scc.Critpath} critical-path extraction
    and what-if ceilings.  [sim_jobs] partitions the scheduler (see
    {!Scc.Engine.create});
    results are bit-identical for every value.
    @raise Runtime_error on dynamic errors (unbound names, bad calls). *)

val run_rcce :
  ?cfg:Scc.Config.t -> ?trace:Scc.Trace.t -> ?profile:Scc.Profile.t ->
  ?critpath:Scc.Critpath.t -> ?interp:mode -> ?sim_jobs:int ->
  ?detect_races:bool -> ncores:int -> Ast.program -> result
(** One process per core, each interpreting the whole program ([RCCE_APP]
    if present, else [main]), with collective [RCCE_shmalloc] /
    [RCCE_malloc], barriers, and test-and-set locks. *)
