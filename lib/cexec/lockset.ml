(* Eraser-style lockset race detection (Savage et al., TOCS 1997 — one of
   the dynamic approaches the paper's related-work chapter surveys).

   Every memory location moves through the Eraser state machine:

     Virgin -> Exclusive(first thread) -> Shared (second thread reads)
                                       -> Shared_modified (second thread
                                          writes, or a write while Shared)

   From the moment a second thread touches the location, its candidate
   lockset is intersected with the locks the accessing thread holds; an
   empty candidate set in Shared_modified is a data race.  Each location
   is reported at most once. *)

module Int_set = Set.Make (Int)

type state =
  | Virgin
  | Exclusive of int          (* owning context *)
  | Shared
  | Shared_modified

type entry = {
  mutable state : state;
  mutable candidates : Int_set.t;
  mutable reported : bool;
}

type report = {
  addr : int;
  location : string;   (* variable or region name, when known *)
  loc : Cfront.Srcloc.t option;   (* declaration site of the region *)
  by_ctx : int;
  write : bool;
}

type region = {
  base : int;
  bytes : int;
  name : string;
  decl_loc : Cfront.Srcloc.t option;
}

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable regions : region list;
  mutable reports : report list;
}

let create () =
  { entries = Hashtbl.create 256; regions = []; reports = [] }

let name_region t ?loc ~base ~bytes name =
  t.regions <- { base; bytes; name; decl_loc = loc } :: t.regions

let region_of t addr =
  List.find_opt
    (fun r -> addr >= r.base && addr < r.base + r.bytes)
    t.regions

let location_of t addr =
  match region_of t addr with
  | None -> Printf.sprintf "address %#x" addr
  | Some r ->
      if r.bytes <= 8 then r.name
      else Printf.sprintf "%s[+%d]" r.name (addr - r.base)

let entry_of t addr =
  match Hashtbl.find_opt t.entries addr with
  | Some e -> e
  | None ->
      let e = { state = Virgin; candidates = Int_set.empty; reported = false } in
      Hashtbl.replace t.entries addr e;
      e

let report t e ~addr ~ctx ~write =
  if not e.reported then begin
    e.reported <- true;
    let loc = Option.bind (region_of t addr) (fun r -> r.decl_loc) in
    t.reports <-
      { addr; location = location_of t addr; loc; by_ctx = ctx; write }
      :: t.reports
  end

(* One access by context [ctx] holding [held], at [addr]. *)
let access t ~ctx ~held ~write addr =
  let e = entry_of t addr in
  match e.state with
  | Virgin -> e.state <- Exclusive ctx
  | Exclusive owner when owner = ctx -> ()
  | Exclusive _ ->
      e.candidates <- held;
      if write then begin
        e.state <- Shared_modified;
        if Int_set.is_empty e.candidates then report t e ~addr ~ctx ~write
      end
      else e.state <- Shared
  | Shared ->
      e.candidates <- Int_set.inter e.candidates held;
      if write then begin
        e.state <- Shared_modified;
        if Int_set.is_empty e.candidates then report t e ~addr ~ctx ~write
      end
  | Shared_modified ->
      e.candidates <- Int_set.inter e.candidates held;
      if Int_set.is_empty e.candidates then report t e ~addr ~ctx ~write

(* A global synchronization point (barrier, join): accesses before it are
   ordered before accesses after it, so the state machine restarts for
   every location.  This is a pragmatic happens-before approximation —
   precise for whole-world barriers and join-all patterns, and it hides a
   race only when both conflicting accesses straddle the point on which
   they are in fact ordered. *)
let synchronize t =
  Hashtbl.iter
    (fun _ e ->
      e.state <- Virgin;
      e.candidates <- Int_set.empty)
    t.entries

let reports t = List.rev t.reports

let racy_locations t =
  List.sort_uniq compare (List.map (fun r -> r.location) (reports t))

let report_to_string r =
  let where =
    match r.loc with
    | Some loc -> Printf.sprintf " (declared at %s)" (Cfront.Srcloc.to_string loc)
    | None -> ""
  in
  Printf.sprintf "data race: %s %s by context %d with no common lock%s"
    (if r.write then "written" else "read")
    r.location r.by_ctx where

(* The dynamic reports flow through the same diagnostics engine as the
   static detector's, so [hsmcc run] and [hsmcc check] print alike. *)
let report_to_diag r =
  Diag.warning ?loc:r.loc ~code:"race-dynamic"
    (Printf.sprintf "data race: %s %s by context %d with no common lock"
       (if r.write then "written" else "read")
       r.location r.by_ctx)
