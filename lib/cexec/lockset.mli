(** Eraser-style lockset race detection (Savage et al., 1997 — one of the
    dynamic approaches the paper's related-work chapter surveys).

    Locations move Virgin → Exclusive → Shared / Shared-modified; from the
    second thread on, the candidate lockset is intersected with the locks
    the accessing context holds, and an empty candidate set on a modified
    shared location is a data race.  Each location reports once. *)

module Int_set : Set.S with type elt = int

type t

type report = {
  addr : int;
  location : string;  (** variable or region name, when known *)
  loc : Cfront.Srcloc.t option;
      (** declaration site of the containing region, when known *)
  by_ctx : int;
  write : bool;
}

val create : unit -> t

val name_region :
  t -> ?loc:Cfront.Srcloc.t -> base:int -> bytes:int -> string -> unit
(** Associate an address range with a variable name (and, when known,
    its declaration site) for reporting. *)

val access : t -> ctx:int -> held:Int_set.t -> write:bool -> int -> unit
(** One access by context [ctx] holding lock set [held]. *)

val synchronize : t -> unit
(** A global synchronization point (barrier, join): restart the state
    machine for every location — a pragmatic happens-before
    approximation, precise for whole-world barriers and join-all
    patterns. *)

val reports : t -> report list
(** In detection order. *)

val racy_locations : t -> string list
(** Distinct locations with at least one race, sorted. *)

val report_to_string : report -> string

val report_to_diag : report -> Diag.t
(** Render through the unified diagnostics engine (code
    ["race-dynamic"]), so dynamic and static reports print alike. *)
