open Cfront

(* Pre-execution identifier resolution (see resolve.mli).

   The interpreter's scoping rule is dynamic: a name resolves in the
   innermost frame that binds it, walking out through the callers'
   frames and landing on the process globals.  Frames are flat per
   function call — block scoping does not introduce new frames, and a
   re-declaration overwrites — so "bound in the current frame" is
   exactly "the declaration statement has executed in this call".
   Resolution therefore assigns one slot per distinct name per
   function; a use whose slot is still empty at run time (use before
   the declaration executes) falls back to the dynamic walk, which
   keeps the pass semantics-preserving without proving anything about
   execution order. *)

type slot =
  | Local of int
  | Global of int
  | Dynamic

type rexpr =
  | Rlit of Value.t
  | Rstr of string
  | Rvar of slot * string
  | Rconst_var of Value.t * slot * string
  | Runary of Ast.unop * rexpr
  | Rbinary of Ast.binop * rexpr * rexpr
  | Rassign of Ast.binop option * rexpr * rexpr
  | Rcond of rexpr * rexpr * rexpr
  | Rcall_user of int * rexpr list
  | Rcall_builtin of string * rexpr list * Ast.expr list
  | Rindex of rexpr * rexpr
  | Rcast of Ctype.t * rexpr
  | Rsizeof_var of slot * string
  | Rcomma of rexpr * rexpr

type rdecl = {
  rd_slot : int;
  rd_name : string;
  rd_type : Ctype.t;
  rd_loc : Srcloc.t;
  rd_init : rinit option;
}

and rinit = Rinit_expr of rexpr | Rinit_list of rexpr list

type rstmt =
  | Rsexpr of rexpr
  | Rsdecl of rdecl list
  | Rsblock of rstmt list
  | Rsif of rexpr * rstmt * rstmt option
  | Rswhile of rexpr * rstmt
  | Rsdo of rstmt * rexpr
  | Rsfor of rfor_init * rexpr option * rexpr option * rstmt
  | Rsreturn of rexpr option
  | Rsbreak
  | Rscontinue
  | Rsnull
  | Rsat of int * rstmt

and rfor_init = Rfor_none | Rfor_expr of rexpr | Rfor_decl of rdecl list

type rfunc = {
  rf_name : string;
  rf_params : (int * string * Ctype.t) list;
  rf_nparams : int;
  rf_nslots : int;
  rf_body : rstmt list;
  rf_locals : (string, int) Hashtbl.t;
}

type rglobal = {
  rg_name : string;
  rg_type : Ctype.t;
  rg_loc : Srcloc.t;
  rg_init : rinit option;
}

type t = {
  rp_funcs : rfunc array;
  rp_fn_index : (string, int) Hashtbl.t;
  rp_globals : rglobal array;
  rp_global_index : (string, int) Hashtbl.t;
  rp_locs : Srcloc.t array;
}

(* One slot per distinct name: parameters first, then declarations in
   syntactic order. *)
let collect_locals (fn : Ast.func) =
  let tbl = Hashtbl.create 16 in
  let next = ref 0 in
  let add name =
    if not (Hashtbl.mem tbl name) then begin
      Hashtbl.add tbl name !next;
      incr next
    end
  in
  List.iter (fun (p, _) -> add p) fn.Ast.f_params;
  let rec stmt s =
    match s.Ast.s_desc with
    | Ast.Sdecl ds -> List.iter (fun (d : Ast.decl) -> add d.Ast.d_name) ds
    | Ast.Sblock ss -> List.iter stmt ss
    | Ast.Sif (_, a, b) ->
        stmt a;
        Option.iter stmt b
    | Ast.Swhile (_, b) -> stmt b
    | Ast.Sdo (b, _) -> stmt b
    | Ast.Sfor (init, _, _, b) ->
        (match init with
        | Ast.For_decl ds ->
            List.iter (fun (d : Ast.decl) -> add d.Ast.d_name) ds
        | Ast.For_none | Ast.For_expr _ -> ());
        stmt b
    | Ast.Sexpr _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Snull
      ->
        ()
  in
  List.iter stmt fn.Ast.f_body;
  tbl

let resolve (program : Ast.program) : t =
  let globals = Ast.global_decls program in
  let funcs = Ast.functions program in
  let global_index = Hashtbl.create 16 in
  List.iteri
    (fun i (d : Ast.decl) -> Hashtbl.replace global_index d.Ast.d_name i)
    globals;
  let fn_index = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Ast.func) ->
      if not (Hashtbl.mem fn_index f.Ast.f_name) then
        Hashtbl.add fn_index f.Ast.f_name i)
    funcs;
  let locals_of = List.map collect_locals funcs in
  (* Names some function binds: a use of such a name outside a function
     that declares it might resolve to a caller's local at run time, so
     it cannot be pinned to the global table statically. *)
  let frame_bound = Hashtbl.create 64 in
  List.iter
    (fun tbl -> Hashtbl.iter (fun n _ -> Hashtbl.replace frame_bound n ()) tbl)
    locals_of;
  (* [locals = None] is the global-initializer context: initializers
     evaluate under an empty frame stack, so a global name can always be
     pinned there. *)
  let slot_of ~locals name =
    match locals with
    | Some tbl when Hashtbl.mem tbl name -> Local (Hashtbl.find tbl name)
    | _ ->
        let shadowable =
          match locals with
          | Some _ -> Hashtbl.mem frame_bound name
          | None -> false
        in
        if (not shadowable) && Hashtbl.mem global_index name then
          Global (Hashtbl.find global_index name)
        else Dynamic
  in
  let rec rexpr ~locals (e : Ast.expr) : rexpr =
    let sub = rexpr ~locals in
    match e with
    | Ast.Int_lit n -> Rlit (Value.Vint n)
    | Ast.Float_lit f -> Rlit (Value.Vfloat f)
    | Ast.Char_lit c -> Rlit (Value.Vint (Char.code c))
    | Ast.Str_lit s -> Rstr s
    | Ast.Var (("NULL" | "RCCE_FLAG_UNSET") as name) ->
        Rconst_var (Value.Vint 0, slot_of ~locals name, name)
    | Ast.Var ("RCCE_FLAG_SET" as name) ->
        Rconst_var (Value.Vint 1, slot_of ~locals name, name)
    | Ast.Var name -> Rvar (slot_of ~locals name, name)
    | Ast.Unary (op, inner) -> Runary (op, sub inner)
    | Ast.Binary (op, a, b) -> Rbinary (op, sub a, sub b)
    | Ast.Assign (op, lhs, rhs) -> Rassign (op, sub lhs, sub rhs)
    | Ast.Cond (c, a, b) -> Rcond (sub c, sub a, sub b)
    | Ast.Call (name, args) -> begin
        let rargs = List.map sub args in
        match Hashtbl.find_opt fn_index name with
        | Some idx -> Rcall_user (idx, rargs)
        | None -> Rcall_builtin (name, rargs, args)
      end
    | Ast.Index (arr, idx) -> Rindex (sub arr, sub idx)
    | Ast.Cast (ty, inner) -> Rcast (ty, sub inner)
    | Ast.Sizeof_type ty -> Rlit (Value.Vint (Ctype.sizeof ty))
    | Ast.Sizeof_expr (Ast.Var name) ->
        Rsizeof_var (slot_of ~locals name, name)
    | Ast.Sizeof_expr _ -> Rlit (Value.Vint (Ctype.sizeof Ctype.Int))
    | Ast.Comma (a, b) -> Rcomma (sub a, sub b)
  in
  let rinit ~locals = function
    | Ast.Init_expr e -> Rinit_expr (rexpr ~locals e)
    | Ast.Init_list es -> Rinit_list (List.map (rexpr ~locals) es)
  in
  let rdecl ~locals ~tbl (d : Ast.decl) =
    {
      rd_slot = Hashtbl.find tbl d.Ast.d_name;
      rd_name = d.Ast.d_name;
      rd_type = d.Ast.d_type;
      rd_loc = d.Ast.d_loc;
      rd_init = Option.map (rinit ~locals) d.Ast.d_init;
    }
  in
  (* Source lines interned to indices into [rp_locs]: one entry per
     distinct (file, line), so the profiler's line attribution is an
     array lookup. *)
  let loc_tbl = Hashtbl.create 64 in
  let locs_rev = ref [] in
  let n_locs = ref 0 in
  let intern_loc (loc : Srcloc.t) =
    let key = (loc.Srcloc.file, loc.Srcloc.line) in
    match Hashtbl.find_opt loc_tbl key with
    | Some i -> i
    | None ->
        let i = !n_locs in
        incr n_locs;
        Hashtbl.replace loc_tbl key i;
        locs_rev := loc :: !locs_rev;
        i
  in
  let rec rstmt ~locals ~tbl (s : Ast.stmt) : rstmt =
    let body = rstmt_desc ~locals ~tbl s in
    match s.Ast.s_desc with
    (* blocks only recurse (their children carry their own lines) and
       nulls execute nothing — wrapping them would be pure overhead *)
    | Ast.Sblock _ | Ast.Snull -> body
    | _ ->
        if s.Ast.s_loc.Srcloc.line > 0 then
          Rsat (intern_loc s.Ast.s_loc, body)
        else body
  and rstmt_desc ~locals ~tbl (s : Ast.stmt) : rstmt =
    match s.Ast.s_desc with
    | Ast.Sexpr e -> Rsexpr (rexpr ~locals e)
    | Ast.Sdecl ds -> Rsdecl (List.map (rdecl ~locals ~tbl) ds)
    | Ast.Sblock ss -> Rsblock (List.map (rstmt ~locals ~tbl) ss)
    | Ast.Sif (c, a, b) ->
        Rsif
          ( rexpr ~locals c,
            rstmt ~locals ~tbl a,
            Option.map (rstmt ~locals ~tbl) b )
    | Ast.Swhile (c, b) -> Rswhile (rexpr ~locals c, rstmt ~locals ~tbl b)
    | Ast.Sdo (b, c) -> Rsdo (rstmt ~locals ~tbl b, rexpr ~locals c)
    | Ast.Sfor (init, cond, step, body) ->
        let rinit_ =
          match init with
          | Ast.For_none -> Rfor_none
          | Ast.For_expr e -> Rfor_expr (rexpr ~locals e)
          | Ast.For_decl ds -> Rfor_decl (List.map (rdecl ~locals ~tbl) ds)
        in
        Rsfor
          ( rinit_,
            Option.map (rexpr ~locals) cond,
            Option.map (rexpr ~locals) step,
            rstmt ~locals ~tbl body )
    | Ast.Sreturn e -> Rsreturn (Option.map (rexpr ~locals) e)
    | Ast.Sbreak -> Rsbreak
    | Ast.Scontinue -> Rscontinue
    | Ast.Snull -> Rsnull
  in
  let rfunc (fn : Ast.func) tbl =
    let locals = Some tbl in
    {
      rf_name = fn.Ast.f_name;
      rf_params =
        List.map
          (fun (p, ty) -> (Hashtbl.find tbl p, p, ty))
          fn.Ast.f_params;
      rf_nparams = List.length fn.Ast.f_params;
      rf_nslots = Hashtbl.length tbl;
      rf_body = List.map (rstmt ~locals ~tbl) fn.Ast.f_body;
      rf_locals = tbl;
    }
  in
  let rp_funcs = Array.of_list (List.map2 rfunc funcs locals_of) in
  let rp_globals =
    Array.of_list
      (List.map
         (fun (d : Ast.decl) ->
           {
             rg_name = d.Ast.d_name;
             rg_type = d.Ast.d_type;
             rg_loc = d.Ast.d_loc;
             rg_init = Option.map (rinit ~locals:None) d.Ast.d_init;
           })
         globals)
  in
  {
    rp_funcs;
    rp_fn_index = fn_index;
    rp_globals;
    rp_global_index = global_index;
    rp_locs = Array.of_list (List.rev !locs_rev);
  }
