open Cfront

(** Pre-execution identifier resolution.

    A one-shot pass over the AST that interns every identifier to an
    integer slot, so the interpreter's hot path is array indexing
    instead of hashing strings on every access:

    - names declared in the enclosing function (parameters and block
      locals) become frame offsets ([Local]);
    - names that can only ever denote a global — no function in the
      program declares them — become indices into the per-process
      global table ([Global]);
    - everything else stays [Dynamic] and is resolved at use time by
      the interpreter's original caller-frame walk, preserving the
      observable dynamic-scoping semantics exactly (a callee that uses
      a name before declaring it sees the caller's binding).

    Literals, [sizeof], and the RCCE flag constants are folded to
    values; call targets are split into user-function indices and
    builtin names.  The original name strings ride along on every
    variable reference purely for diagnostics. *)

type slot =
  | Local of int   (** offset into the current function's frame *)
  | Global of int  (** index into the per-process global table *)
  | Dynamic        (** resolved at use time: frame walk, then globals *)

type rexpr =
  | Rlit of Value.t
  | Rstr of string
  | Rvar of slot * string
  | Rconst_var of Value.t * slot * string
      (** [NULL] / [RCCE_FLAG_SET] / [RCCE_FLAG_UNSET]: a literal as an
          rvalue, an ordinary variable reference in lvalue position *)
  | Runary of Ast.unop * rexpr
  | Rbinary of Ast.binop * rexpr * rexpr
  | Rassign of Ast.binop option * rexpr * rexpr
  | Rcond of rexpr * rexpr * rexpr
  | Rcall_user of int * rexpr list  (** index into [rp_funcs] *)
  | Rcall_builtin of string * rexpr list * Ast.expr list
      (** builtin args both resolved (for evaluation) and syntactic
          (for [pthread_create] target and sync-object naming) *)
  | Rindex of rexpr * rexpr
  | Rcast of Ctype.t * rexpr
  | Rsizeof_var of slot * string
  | Rcomma of rexpr * rexpr

type rdecl = {
  rd_slot : int;
  rd_name : string;
  rd_type : Ctype.t;
  rd_loc : Srcloc.t;
  rd_init : rinit option;
}

and rinit = Rinit_expr of rexpr | Rinit_list of rexpr list

type rstmt =
  | Rsexpr of rexpr
  | Rsdecl of rdecl list
  | Rsblock of rstmt list
  | Rsif of rexpr * rstmt * rstmt option
  | Rswhile of rexpr * rstmt
  | Rsdo of rstmt * rexpr
  | Rsfor of rfor_init * rexpr option * rexpr option * rstmt
  | Rsreturn of rexpr option
  | Rsbreak
  | Rscontinue
  | Rsnull
  | Rsat of int * rstmt
      (** the statement's source position, as an index into [rp_locs];
          the profiler's line attribution hook (blocks and null
          statements are not wrapped) *)

and rfor_init = Rfor_none | Rfor_expr of rexpr | Rfor_decl of rdecl list

type rfunc = {
  rf_name : string;
  rf_params : (int * string * Ctype.t) list;  (** slot, name, type *)
  rf_nparams : int;
  rf_nslots : int;  (** frame size: one slot per distinct local name *)
  rf_body : rstmt list;
  rf_locals : (string, int) Hashtbl.t;
      (** name -> slot; consulted by the dynamic caller-frame walk *)
}

type rglobal = {
  rg_name : string;
  rg_type : Ctype.t;
  rg_loc : Srcloc.t;
  rg_init : rinit option;
}

type t = {
  rp_funcs : rfunc array;
  rp_fn_index : (string, int) Hashtbl.t;
      (** first definition wins, like [Ast.find_function] *)
  rp_globals : rglobal array;  (** in declaration order *)
  rp_global_index : (string, int) Hashtbl.t;
      (** canonical table slot per name; on duplicate declarations the
          last one wins, like the interpreter's [Hashtbl.replace] *)
  rp_locs : Srcloc.t array;
      (** interned statement positions, one per distinct (file, line);
          indexed by {!Rsat} *)
}

val resolve : Ast.program -> t
