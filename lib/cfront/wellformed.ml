(* Structural AST well-formedness: the in-memory replacement for the old
   print-then-reparse IR consistency hack.  A program is well-formed when
   every identifier is scope-closed (locals declared before use, every
   name resolving to a declaration, a function, or a known ambient
   symbol) and, after a removal pass, no node of a forbidden family
   (e.g. [pthread]) survives anywhere — declarations, types, calls or
   variables. *)

type error = { wf_loc : Srcloc.t; wf_message : string }

(* Symbols that the C subset treats as defined by the environment:
   [NULL] from the headers, and the RCCE runtime's exported globals. *)
let default_ambient = [ "NULL"; "RCCE_FLAG_UNSET"; "RCCE_COMM_WORLD" ]

module Names = Set.Make (String)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let forbidden forbid name =
  List.exists (fun prefix -> starts_with ~prefix name) forbid

(* Every [Named] library type mentioned inside a type. *)
let rec named_types = function
  | Ctype.Named n -> [ n ]
  | Ctype.Ptr t | Ctype.Array (t, _) | Ctype.Unsigned t -> named_types t
  | Ctype.Func (ret, args) -> List.concat_map named_types (ret :: args)
  | Ctype.Void | Ctype.Char | Ctype.Short | Ctype.Int | Ctype.Long
  | Ctype.Float | Ctype.Double -> []

exception Bad of error

let failf loc fmt =
  Printf.ksprintf (fun wf_message -> raise (Bad { wf_loc = loc; wf_message }))
    fmt

let check_type ~forbid loc what ty =
  List.iter
    (fun n ->
      if forbidden forbid n then
        failf loc "%s has forbidden type '%s'" what n)
    (named_types ty)

(* Scope-closed expression check: every [Var] resolves against the local
   scope stack, the global environment, or the ambient set; forbidden
   names may not appear as variables or callees. *)
let rec check_expr ~forbid ~globals ~scope loc e =
  let recur = check_expr ~forbid ~globals ~scope loc in
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _ -> ()
  | Ast.Var name ->
      if forbidden forbid name then
        failf loc "forbidden identifier '%s' survives" name
      else if not (Names.mem name !scope || Names.mem name globals) then
        failf loc "identifier '%s' is not declared in this scope" name
  | Ast.Unary (_, e) | Ast.Sizeof_expr e -> recur e
  | Ast.Cast (ty, e) ->
      check_type ~forbid loc "cast" ty;
      recur e
  | Ast.Binary (_, a, b) | Ast.Comma (a, b) ->
      recur a;
      recur b
  | Ast.Assign (_, lhs, rhs) ->
      recur lhs;
      recur rhs
  | Ast.Cond (a, b, c) ->
      recur a;
      recur b;
      recur c
  | Ast.Call (callee, args) ->
      if forbidden forbid callee then
        failf loc "forbidden call '%s' survives" callee;
      List.iter recur args
  | Ast.Index (a, i) ->
      recur a;
      recur i
  | Ast.Sizeof_type ty -> check_type ~forbid loc "sizeof operand" ty

let check_init ~forbid ~globals ~scope loc = function
  | None -> ()
  | Some (Ast.Init_expr e) -> check_expr ~forbid ~globals ~scope loc e
  | Some (Ast.Init_list es) ->
      List.iter (check_expr ~forbid ~globals ~scope loc) es

(* A declaration's name becomes visible to its own initializer (C scoping:
   the declarator is in scope inside its initializer). *)
let check_decl ~forbid ~globals ~scope (d : Ast.decl) =
  if forbidden forbid d.Ast.d_name then
    failf d.Ast.d_loc "forbidden declaration '%s' survives" d.Ast.d_name;
  check_type ~forbid d.Ast.d_loc
    (Printf.sprintf "declaration '%s'" d.Ast.d_name)
    d.Ast.d_type;
  scope := Names.add d.Ast.d_name !scope;
  check_init ~forbid ~globals ~scope d.Ast.d_loc d.Ast.d_init

let rec check_stmt ~forbid ~globals ~scope (s : Ast.stmt) =
  let loc = s.Ast.s_loc in
  let in_child_scope f =
    let saved = !scope in
    f ();
    scope := saved
  in
  match s.Ast.s_desc with
  | Ast.Sexpr e -> check_expr ~forbid ~globals ~scope loc e
  | Ast.Sdecl ds -> List.iter (check_decl ~forbid ~globals ~scope) ds
  | Ast.Sblock ss ->
      in_child_scope (fun () ->
          List.iter (check_stmt ~forbid ~globals ~scope) ss)
  | Ast.Sif (c, a, b) ->
      check_expr ~forbid ~globals ~scope loc c;
      in_child_scope (fun () -> check_stmt ~forbid ~globals ~scope a);
      Option.iter
        (fun b ->
          in_child_scope (fun () -> check_stmt ~forbid ~globals ~scope b))
        b
  | Ast.Swhile (c, body) ->
      check_expr ~forbid ~globals ~scope loc c;
      in_child_scope (fun () -> check_stmt ~forbid ~globals ~scope body)
  | Ast.Sdo (body, c) ->
      in_child_scope (fun () -> check_stmt ~forbid ~globals ~scope body);
      check_expr ~forbid ~globals ~scope loc c
  | Ast.Sfor (init, cond, step, body) ->
      in_child_scope (fun () ->
          (match init with
          | Ast.For_none -> ()
          | Ast.For_expr e -> check_expr ~forbid ~globals ~scope loc e
          | Ast.For_decl ds ->
              List.iter (check_decl ~forbid ~globals ~scope) ds);
          Option.iter (check_expr ~forbid ~globals ~scope loc) cond;
          Option.iter (check_expr ~forbid ~globals ~scope loc) step;
          check_stmt ~forbid ~globals ~scope body)
  | Ast.Sreturn e ->
      Option.iter (check_expr ~forbid ~globals ~scope loc) e
  | Ast.Sbreak | Ast.Scontinue | Ast.Snull -> ()

let check_func ~forbid ~globals (fn : Ast.func) =
  if forbidden forbid fn.Ast.f_name then
    failf fn.Ast.f_loc "forbidden function '%s' survives" fn.Ast.f_name;
  check_type ~forbid fn.Ast.f_loc
    (Printf.sprintf "return of '%s'" fn.Ast.f_name)
    fn.Ast.f_ret;
  let scope =
    ref
      (List.fold_left
         (fun acc (p, ty) ->
           check_type ~forbid fn.Ast.f_loc
             (Printf.sprintf "parameter '%s' of '%s'" p fn.Ast.f_name)
             ty;
           Names.add p acc)
         Names.empty fn.Ast.f_params)
  in
  List.iter (check_stmt ~forbid ~globals ~scope) fn.Ast.f_body

let check ?(ambient = default_ambient) ?(forbid = [])
    (program : Ast.program) =
  try
    (* includes are verbatim pass-through text, not AST nodes; the
       forbid check covers declarations, types, calls and variables *)
    (* globals are program-wide: every global declaration, function and
       prototype is nameable from any function body *)
    let globals =
      List.fold_left
        (fun acc g ->
          match g with
          | Ast.Gvar d -> Names.add d.Ast.d_name acc
          | Ast.Gfunc fn -> Names.add fn.Ast.f_name acc
          | Ast.Gproto (name, _, _) -> Names.add name acc)
        (Names.of_list ambient) program.Ast.p_globals
    in
    List.iter
      (fun g ->
        match g with
        | Ast.Gvar d ->
            let scope = ref Names.empty in
            check_decl ~forbid ~globals ~scope d
        | Ast.Gfunc fn -> check_func ~forbid ~globals fn
        | Ast.Gproto (name, ty, loc) ->
            if forbidden forbid name then
              failf loc "forbidden prototype '%s' survives" name;
            check_type ~forbid loc (Printf.sprintf "prototype '%s'" name) ty)
      program.Ast.p_globals;
    Ok ()
  with Bad e -> Error e

let error_to_string e =
  Printf.sprintf "%s: %s" (Srcloc.to_string e.wf_loc) e.wf_message
