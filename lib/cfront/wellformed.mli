(** Structural AST well-formedness checking.

    The in-memory replacement for the old print-then-reparse consistency
    hack: a visitor that checks every identifier is scope-closed (locals
    declared before use, every name resolving to a declaration, function,
    prototype or ambient symbol) and that no node of a forbidden family
    — declaration, [Named] type, call or variable — survives a removal
    pass.  (Include lines are verbatim pass-through text, not AST nodes,
    and are not checked.) *)

type error = { wf_loc : Srcloc.t; wf_message : string }

val default_ambient : string list
(** Names defined by the environment rather than the program: [NULL] and
    the RCCE runtime's exported globals. *)

val check :
  ?ambient:string list -> ?forbid:string list -> Ast.program ->
  (unit, error) result
(** [check ~forbid program] walks the whole program.  [forbid] is a list
    of name prefixes (e.g. ["pthread"]) that must not appear in any
    declaration, type, call or variable once the corresponding removal
    pass has run.  The first violation is returned. *)

val error_to_string : error -> string
(** ["file:line:col: message"]. *)
