open Cfront

type mode = Create_loop | Standalone

type acc_kind = Add_acc | Mul_acc

type acc = {
  a_name : string;
  a_kind : acc_kind;
  a_init : int option;
  a_mutex : int;
}

type spec = {
  seed : int;
  nt : int;
  mode : mode;
  many_to_one : bool;
  run_cores : int;
  phases : int;
  n_mutexes : int;
  accs : acc list;
  n_slots : int;
  n_ro : int;
  use_pointer : bool;
  optimize : bool;
}

(* ---------------------------------------------------------------- *)
(* AST shorthands                                                   *)

let s d = Ast.stmt d
let ex e = s (Ast.Sexpr e)
let il n = Ast.int n
let v = Ast.var
let bin op a b = Ast.Binary (op, a, b)
let idx a i = Ast.Index (a, i)
let addr e = Ast.Unary (Ast.Addr, e)
let deref e = Ast.Unary (Ast.Deref, e)
let null = v "NULL"

let printf_ fmt args = Ast.call "printf" (Ast.Str_lit fmt :: args)

(* [for (var = 0; var < bound; var++) body] — the canonical counted loop
   shape [Analysis.Thread_analysis.loop_bounds] recognizes. *)
let for_to var bound body =
  s
    (Ast.Sfor
       ( Ast.For_expr (Ast.assign (v var) (il 0)),
         Some (bin Ast.Lt (v var) bound),
         Some (Ast.Unary (Ast.Postinc, v var)),
         s (Ast.Sblock body) ))

let decl_stmt ?init name ty = s (Ast.Sdecl [ Ast.decl ?init name ty ])

(* ---------------------------------------------------------------- *)
(* Spec drawing                                                     *)

let spec_of rng seed =
  let nt = Rng.range rng 2 4 in
  let mode = Rng.weighted rng [ (3, Create_loop); (1, Standalone) ] in
  let many_to_one =
    (match mode with Create_loop -> nt > 2 && Rng.chance rng 0.25 | Standalone -> false)
  in
  let run_cores = if many_to_one then 2 else nt in
  let phases =
    match mode with
    | Create_loop when (not many_to_one) && Rng.chance rng 0.35 -> 2
    | _ -> 1
  in
  let n_mutexes = Rng.range rng 1 (min 2 run_cores) in
  let n_accs = Rng.range rng 1 3 in
  let accs =
    List.init n_accs (fun j ->
        let a_kind = Rng.weighted rng [ (3, Add_acc); (1, Mul_acc) ] in
        let a_init =
          match a_kind with
          | Mul_acc -> Some (Rng.range rng 1 2)
          | Add_acc ->
              if Rng.chance rng 0.4 then Some (Rng.range rng 0 9) else None
        in
        { a_name = Printf.sprintf "g%d" j; a_kind; a_init;
          a_mutex = j mod n_mutexes })
  in
  let n_slots = if phases = 2 then 2 else Rng.range rng 1 2 in
  let use_pointer = Rng.chance rng 0.3 in
  let n_ro =
    let n = Rng.range rng 0 2 in
    if use_pointer && n = 0 then 1 else n
  in
  let optimize = Rng.chance rng 0.2 in
  { seed; nt; mode; many_to_one; run_cores; phases; n_mutexes; accs;
    n_slots; n_ro; use_pointer; optimize }

(* ---------------------------------------------------------------- *)
(* Expression generation                                            *)

type genv = {
  rng : Rng.t;
  locals : string list;        (* initialized int locals *)
  loop_var : string option;    (* counter of the enclosing loop, if any *)
  ro : string list;            (* read-only array names, length 8 each *)
  cross : string list;         (* slot arrays readable across threads *)
  nt : int;
  pointer : bool;
}

let rec atom g =
  let choices =
    [ (3, `Lit); (3, `Tid) ]
    @ (match g.loop_var with Some _ -> [ (3, `Loop) ] | None -> [])
    @ (if g.locals <> [] then [ (2, `Local) ] else [])
    @ (if g.ro <> [] then [ (2, `Ro) ] else [])
    @ (if g.pointer then [ (1, `Ptr) ] else [])
    @ (if g.cross <> [] then [ (3, `Cross) ] else [])
  in
  match Rng.weighted g.rng choices with
  | `Lit -> il (Rng.range g.rng 0 9)
  | `Tid -> v "tid"
  | `Loop -> v (Option.get g.loop_var)
  | `Local -> v (Rng.pick g.rng g.locals)
  | `Ro ->
      (* masked index keeps every access inside the 8-element array *)
      idx (v (Rng.pick g.rng g.ro)) (bin Ast.Band (atom g) (il 7))
  | `Ptr -> deref (v "p0")
  | `Cross ->
      (* a neighbour's phase-1 slot: safe only after the barrier *)
      let a = Rng.pick g.rng g.cross in
      let off = Rng.range g.rng 1 (g.nt - 1) in
      idx (v a) (bin Ast.Mod (bin Ast.Add (v "tid") (il off)) (il g.nt))

let rec expr g depth =
  if depth <= 0 then atom g
  else
    match Rng.int g.rng 6 with
    | 0 -> bin Ast.Add (expr g (depth - 1)) (expr g (depth - 1))
    | 1 -> bin Ast.Sub (expr g (depth - 1)) (expr g (depth - 1))
    | 2 -> bin Ast.Mul (expr g (depth - 1)) (il (Rng.range g.rng 0 5))
    | 3 -> bin Ast.Mod (expr g (depth - 1)) (il (Rng.range g.rng 2 7))
    | 4 -> bin Ast.Div (expr g (depth - 1)) (il (Rng.range g.rng 2 5))
    | _ -> atom g

(* ---------------------------------------------------------------- *)
(* Worker bodies                                                    *)

(* Thread-local computation: loops, branches and plain updates over the
   [xK] locals.  Nothing here touches shared state. *)
let local_stmt g ~loop_var =
  let target () = Rng.pick g.rng g.locals in
  match Rng.int g.rng 3 with
  | 0 ->
      let x = target () in
      let k = Rng.range g.rng 2 8 in
      let gl = { g with loop_var = Some loop_var } in
      for_to loop_var (il k)
        [ ex (Ast.assign (v x) (bin Ast.Add (v x) (expr gl 2))) ]
  | 1 ->
      let cond = bin Ast.Eq (bin Ast.Mod (expr g 1) (il 2)) (il 0) in
      let x = target () and y = target () in
      s
        (Ast.Sif
           ( cond,
             ex (Ast.assign (v x) (expr g 2)),
             Some (ex (Ast.assign (v y) (expr g 2))) ))
  | _ ->
      let x = target () in
      if Rng.bool g.rng then ex (Ast.assign (v x) (expr g 2))
      else ex (Ast.Assign (Some Ast.Add, v x, expr g 2))

(* One mutex-protected update of accumulator [a].  The added amount is
   thread-local, so per-thread contributions commute. *)
let acc_update g (a : acc) =
  let lock = ex (Ast.call "pthread_mutex_lock" [ addr (v (Printf.sprintf "m%d" a.a_mutex)) ]) in
  let unlock =
    ex (Ast.call "pthread_mutex_unlock" [ addr (v (Printf.sprintf "m%d" a.a_mutex)) ])
  in
  let update =
    match a.a_kind with
    | Add_acc ->
        let e = expr g 2 in
        if Rng.bool g.rng then ex (Ast.assign (v a.a_name) (bin Ast.Add (v a.a_name) e))
        else ex (Ast.Assign (Some Ast.Add, v a.a_name, e))
    | Mul_acc ->
        let c = il (Rng.range g.rng 2 3) in
        if Rng.bool g.rng then ex (Ast.assign (v a.a_name) (bin Ast.Mul (v a.a_name) c))
        else ex (Ast.Assign (Some Ast.Mul, v a.a_name, c))
  in
  let once = [ lock; update; unlock ] in
  if Rng.chance g.rng 0.3 then
    [ for_to "j" (il (Rng.range g.rng 1 3)) once ]
  else once

let slot_name k = Printf.sprintf "out%d" k
let ro_name k = Printf.sprintf "ro%d" k

(* The worker body for one spec.  With two phases: phase 1 writes
   [out0[tid]] and the accumulators, then a barrier, then phase 2 reads
   neighbours' [out0] slots and writes [out1[tid]]. *)
let worker_body rng (sp : spec) =
  let locals = [ "x0"; "x1"; "x2" ] in
  let ro = List.init sp.n_ro ro_name in
  let base =
    { rng; locals; loop_var = None; ro; cross = []; nt = sp.nt;
      pointer = sp.use_pointer }
  in
  let decls =
    decl_stmt ~init:(Ast.Init_expr (Ast.Cast (Ctype.Int, v "arg"))) "tid"
      Ctype.Int
    :: decl_stmt "i" Ctype.Int
    :: decl_stmt "j" Ctype.Int
    :: List.map
         (fun x ->
           decl_stmt ~init:(Ast.Init_expr (il (Rng.range rng 0 5))) x
             Ctype.Int)
         locals
  in
  let phase1 =
    let stmts =
      List.concat
        (List.init (Rng.range rng 1 3) (fun _ -> [ local_stmt base ~loop_var:"i" ]))
    in
    let writes =
      let nwrite = if sp.phases = 2 then 1 else sp.n_slots in
      List.init nwrite (fun k ->
          ex (Ast.assign (idx (v (slot_name k)) (v "tid")) (expr base 2)))
    in
    let updates = List.concat_map (acc_update base) sp.accs in
    stmts @ writes @ updates
  in
  let phase2 =
    if sp.phases < 2 then []
    else
      let g2 = { base with cross = [ slot_name 0 ] } in
      [ ex (Ast.call "pthread_barrier_wait" [ addr (v "bar") ]);
        local_stmt g2 ~loop_var:"i";
        ex (Ast.assign (idx (v (slot_name 1)) (v "tid")) (expr g2 2)) ]
  in
  decls @ phase1 @ phase2 @ [ ex (Ast.call "pthread_exit" [ null ]) ]

(* ---------------------------------------------------------------- *)
(* Whole programs                                                   *)

let generate ~seed =
  let rng = Rng.create seed in
  let sp = spec_of rng seed in
  let void_ptr = Ctype.Ptr Ctype.Void in
  let workers =
    match sp.mode with
    | Create_loop ->
        [ Ast.func "work" ~ret:void_ptr
            ~params:[ ("arg", void_ptr) ]
            (worker_body rng sp) ]
    | Standalone ->
        List.init sp.nt (fun k ->
            Ast.func (Printf.sprintf "work%d" k) ~ret:void_ptr
              ~params:[ ("arg", void_ptr) ]
              (worker_body rng sp))
  in
  let acc_globals =
    List.map
      (fun a ->
        let init = Option.map (fun n -> Ast.Init_expr (il n)) a.a_init in
        Ast.Gvar (Ast.decl ?init a.a_name Ctype.Int))
      sp.accs
  in
  let mutex_globals =
    List.init sp.n_mutexes (fun k ->
        Ast.Gvar (Ast.decl (Printf.sprintf "m%d" k) (Ctype.Named "pthread_mutex_t")))
  in
  let slot_globals =
    List.init sp.n_slots (fun k ->
        Ast.Gvar (Ast.decl (slot_name k) (Ctype.Array (Ctype.Int, Some sp.nt))))
  in
  let ro_globals =
    List.init sp.n_ro (fun k ->
        Ast.Gvar (Ast.decl (ro_name k) (Ctype.Array (Ctype.Int, Some 8))))
  in
  let ptr_globals =
    if not sp.use_pointer then []
    else
      [ Ast.Gvar (Ast.decl ~init:(Ast.Init_expr (il (Rng.range rng 1 9))) "c0" Ctype.Int);
        Ast.Gvar (Ast.decl "p0" (Ctype.Ptr Ctype.Int)) ]
  in
  let barrier_globals =
    if sp.phases = 2 then
      [ Ast.Gvar (Ast.decl "bar" (Ctype.Named "pthread_barrier_t")) ]
    else []
  in
  let main_body =
    let thread_decls =
      match sp.mode with
      | Create_loop ->
          [ decl_stmt "threads"
              (Ctype.Array (Ctype.Named "pthread_t", Some sp.nt)) ]
      | Standalone ->
          List.init sp.nt (fun k ->
              decl_stmt (Printf.sprintf "th%d" k) (Ctype.Named "pthread_t"))
    in
    let inits =
      List.init sp.n_mutexes (fun k ->
          ex (Ast.call "pthread_mutex_init" [ addr (v (Printf.sprintf "m%d" k)); null ]))
      @ (if sp.phases = 2 then
           [ ex (Ast.call "pthread_barrier_init" [ addr (v "bar"); null; il sp.nt ]) ]
         else [])
    in
    (* every core of the translated program re-runs these writes with
       identical values, so they are idempotent *)
    let ro_inits =
      List.init sp.n_ro (fun k ->
          let a = Rng.range rng 1 5
          and b = Rng.range rng 0 6
          and m = Rng.range rng 5 9 in
          for_to "t" (il 8)
            [ ex
                (Ast.assign
                   (idx (v (ro_name k)) (v "t"))
                   (bin Ast.Mod
                      (bin Ast.Add (bin Ast.Mul (v "t") (il a)) (il b))
                      (il m))) ])
    in
    let ptr_init =
      if sp.use_pointer then [ ex (Ast.assign (v "p0") (addr (v "c0"))) ]
      else []
    in
    let creates, joins =
      match sp.mode with
      | Create_loop ->
          ( [ for_to "t" (il sp.nt)
                [ ex
                    (Ast.call "pthread_create"
                       [ addr (idx (v "threads") (v "t")); null; v "work";
                         Ast.Cast (void_ptr, v "t") ]) ] ],
            [ for_to "t" (il sp.nt)
                [ ex (Ast.call "pthread_join" [ idx (v "threads") (v "t"); null ]) ] ] )
      | Standalone ->
          ( List.init sp.nt (fun k ->
                ex
                  (Ast.call "pthread_create"
                     [ addr (v (Printf.sprintf "th%d" k)); null;
                       v (Printf.sprintf "work%d" k);
                       Ast.Cast (void_ptr, il k) ])),
            List.init sp.nt (fun k ->
                ex (Ast.call "pthread_join" [ v (Printf.sprintf "th%d" k); null ])) )
    in
    let observations =
      List.map
        (fun a ->
          ex (printf_ (Printf.sprintf "OBS %s 0 %%d\n" a.a_name) [ v a.a_name ]))
        sp.accs
      @ List.init sp.n_slots (fun k ->
            for_to "t" (il sp.nt)
              [ ex
                  (printf_
                     (Printf.sprintf "OBS %s %%d %%d\n" (slot_name k))
                     [ v "t"; idx (v (slot_name k)) (v "t") ]) ])
      @ (if sp.use_pointer then
           [ ex (printf_ "OBS deref 0 %d\n" [ deref (v "p0") ]) ]
         else [])
      @ (if Rng.chance rng 0.5 then
           [ ex
               (printf_ "checksum %d\n"
                  [ bin Ast.Add (v (List.hd sp.accs).a_name)
                      (idx (v (slot_name 0)) (il 0)) ]) ]
         else [])
    in
    (decl_stmt "t" Ctype.Int :: thread_decls)
    @ inits @ ro_inits @ ptr_init @ creates @ joins @ observations
    @ [ s (Ast.Sreturn (Some (il 0))) ]
  in
  let main = Ast.func "main" ~ret:Ctype.Int ~params:[] main_body in
  let program =
    { Ast.p_includes = [ "#include <stdio.h>"; "#include <pthread.h>" ];
      p_globals =
        acc_globals @ mutex_globals @ slot_globals @ ro_globals
        @ ptr_globals @ barrier_globals
        @ List.map (fun f -> Ast.Gfunc f) workers
        @ [ Ast.Gfunc main ] }
  in
  (sp, program)

(* Re-export the AST shorthands so other seeded generators (lib/synth's
   Graphite-style kernel emitter) build programs with the same idioms —
   in particular [for_to], whose canonical counted-loop shape is what
   [Analysis.Thread_analysis.loop_bounds] recognizes. *)
module Build = struct
  let s = s
  let ex = ex
  let il = il
  let v = v
  let bin = bin
  let idx = idx
  let addr = addr
  let deref = deref
  let null = null
  let printf_ = printf_
  let for_to = for_to
  let decl_stmt = decl_stmt
end

let describe sp =
  Printf.sprintf
    "%s nt=%d cores=%d phases=%d accs=%d mutexes=%d slots=%d ro=%d%s%s%s"
    (match sp.mode with Create_loop -> "loop" | Standalone -> "standalone")
    sp.nt sp.run_cores sp.phases (List.length sp.accs) sp.n_mutexes
    sp.n_slots sp.n_ro
    (if sp.use_pointer then " ptr" else "")
    (if sp.many_to_one then " m21" else "")
    (if sp.optimize then " opt" else "")

let source_of_program = Pretty.program
