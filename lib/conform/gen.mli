open Cfront

(** Seeded generator of well-typed Pthread C programs for differential
    conformance testing.

    Every generated program is {b data-race-free by construction} and has
    exactly one defined outcome, so the single-core pthread baseline and
    the translated RCCE execution must observe the same values:

    - shared accumulators are updated only inside their own mutex, and
      every update to one accumulator is drawn from a single commutative
      class (all additive, or all multiply-by-constant), so the final
      value is independent of thread interleaving;
    - per-thread slot arrays are written only at the writer's own [tid]
      index;
    - cross-thread slot reads happen only after a [pthread_barrier_wait]
      phase boundary, and the two phases have disjoint write sets;
    - every other input is thread-local ([tid], loop counters, locals)
      or read-only shared state initialized idempotently in [main];
    - arithmetic is integer-only with constant positive divisors, and
      array indices are masked into bounds.

    Programs stay inside the translatable subset: thread creation is
    either the canonical counted [pthread_create] loop or a fixed list
    of standalone creates, observations are tagged [printf] lines
    emitted by [main] after the joins. *)

type mode =
  | Create_loop   (** [for (t = 0; t < NT; t++) pthread_create(...)] *)
  | Standalone    (** one [pthread_create] statement per thread *)

type acc_kind =
  | Add_acc  (** updates are [g += e] with thread-local [e] *)
  | Mul_acc  (** updates are [g *= c] with a constant [c] *)

type acc = {
  a_name : string;
  a_kind : acc_kind;
  a_init : int option;  (** declaration initializer, if any *)
  a_mutex : int;        (** index of the protecting mutex *)
}

type spec = {
  seed : int;
  nt : int;             (** thread count, 2..4 *)
  mode : mode;
  many_to_one : bool;   (** translate with the task-loop mapping *)
  run_cores : int;      (** cores for the RCCE run (= translator ncores) *)
  phases : int;         (** 1, or 2 with a barrier between phases *)
  n_mutexes : int;
  accs : acc list;
  n_slots : int;        (** per-thread slot arrays [int outK[nt]] *)
  n_ro : int;           (** read-only arrays [int roK[8]] *)
  use_pointer : bool;   (** global [int *p0] aimed at shared state *)
  optimize : bool;      (** run the optional constant-folding pass *)
}

val generate : seed:int -> spec * Ast.program
(** The program for a seed — a pure function of the integer: the same
    seed yields a byte-identical pretty-printed program on every run. *)

val describe : spec -> string
(** One-line human summary ("loop nt=4 phases=2 accs=2 ..."). *)

val source_of_program : Ast.program -> string
(** Pretty-print back to C (the canonical corpus file body). *)

(** AST shorthands shared with other seeded program generators
    ([Synth.Emit]): statement/expression wrappers and the canonical
    counted-loop shape the thread analysis recognizes. *)
module Build : sig
  val s : Ast.stmt_desc -> Ast.stmt
  val ex : Ast.expr -> Ast.stmt
  val il : int -> Ast.expr
  val v : string -> Ast.expr
  val bin : Ast.binop -> Ast.expr -> Ast.expr -> Ast.expr
  val idx : Ast.expr -> Ast.expr -> Ast.expr
  val addr : Ast.expr -> Ast.expr
  val deref : Ast.expr -> Ast.expr
  val null : Ast.expr
  val printf_ : string -> Ast.expr list -> Ast.expr
  val for_to : string -> Ast.expr -> Ast.stmt list -> Ast.stmt
  val decl_stmt : ?init:Ast.init -> string -> Ctype.t -> Ast.stmt
end
