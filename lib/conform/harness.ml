open Cfront

(* ---------------------------------------------------------------- *)
(* Sabotage                                                         *)

type sabotage =
  | Drop_pass of string
  | Shrink_shmalloc
  | Illegal_hoist

let sabotage_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "drop-pass" ->
      let name = String.sub s (i + 1) (String.length s - i - 1) in
      let known =
        List.map
          (fun p -> p.Translate.Pass.name)
          (Translate.Driver.passes_for
             { Translate.Pass.default_options with Translate.Pass.optimize = true })
      in
      if List.mem name known then Ok (Drop_pass name)
      else
        Error
          (Printf.sprintf "unknown pass %S (known: %s)" name
             (String.concat ", " known))
  | _ ->
      if s = "shrink-shmalloc" then Ok Shrink_shmalloc
      else if s = "illegal-hoist" then Ok Illegal_hoist
      else
        Error
          (Printf.sprintf
             "unrecognized sabotage %S (try drop-pass:<name>, \
              shrink-shmalloc or illegal-hoist)" s)

let sabotage_to_string = function
  | Drop_pass name -> "drop-pass:" ^ name
  | Shrink_shmalloc -> "shrink-shmalloc"
  | Illegal_hoist -> "illegal-hoist"

(* Under-allocate every multi-element shmalloc region by one element —
   [RCCE_shmalloc(sizeof(T) * n)] becomes [... * (n - 1)] — as a final
   pipeline pass.  Every generated index into such a region can then
   reach past the end, so a bounds verifier that still proves the
   program safe is unsound (the soundness stressor's killing mutation). *)
let shrink_shmalloc_pass =
  { Translate.Pass.name = "shrink-shmalloc";
    transform =
      (fun _ctx program ->
        Visit.map_program_exprs
          (fun e ->
            match e with
            | Ast.Call
                ("RCCE_shmalloc",
                 [ Ast.Binary (Ast.Mul, (Ast.Sizeof_type _ as sz),
                               Ast.Int_lit n) ])
              when n >= 2 ->
                Ast.Call
                  ("RCCE_shmalloc",
                   [ Ast.Binary (Ast.Mul, sz, Ast.Int_lit (n - 1)) ])
            | e -> e)
          program);
    forbids_after = [];
    must_follow = [] }

(* Hoist a lock-protected shared read out of its critical section — the
   exact transformation the optimizer's legality analysis must refuse.
   Every adjacent triple

     RCCE_acquire_lock(k); *g = ... *g ...; RCCE_release_lock(k);

   is rewritten to read [*g] into a fresh private temporary BEFORE the
   acquire and use the stale copy inside the critical section.  Two
   cores racing through the same critical section then lose updates, so
   the dual-execution oracle must diverge; if it does not, it has no
   teeth against an optimizer bug of this shape. *)
let illegal_hoist_pass =
  let pointee program g =
    program.Ast.p_globals
    |> List.find_map (fun glob ->
           match glob with
           | Ast.Gvar d when String.equal d.Ast.d_name g -> (
               match d.Ast.d_type with
               | Ctype.Ptr t -> Some t
               | _ -> None)
           | _ -> None)
    |> Option.value ~default:Ctype.Int
  in
  { Translate.Pass.name = "illegal-hoist";
    transform =
      (fun _ctx program ->
        let fresh = ref 0 in
        let rec stmts = function
          | ({ Ast.s_desc = Ast.Sexpr (Ast.Call ("RCCE_acquire_lock", _));
               _ } as acq)
            :: ({ Ast.s_desc =
                    Ast.Sexpr
                      (Ast.Assign (op, (Ast.Unary (Ast.Deref, Ast.Var g)
                                        as lhs), rhs));
                  _ } as upd)
            :: ({ Ast.s_desc = Ast.Sexpr (Ast.Call ("RCCE_release_lock", _));
                  _ } as rel)
            :: rest ->
              let tmp = Printf.sprintf "__sab_%d" !fresh in
              incr fresh;
              let stale = Ast.var tmp in
              (* [*g op= rhs] reads *g implicitly; rewrite it to the
                 explicit [*g = tmp op rhs] over the stale copy.  A plain
                 [*g = rhs] has its rhs reads of *g redirected. *)
              let upd' =
                match op with
                | Some binop ->
                    { upd with
                      Ast.s_desc =
                        Ast.Sexpr
                          (Ast.assign lhs (Ast.Binary (binop, stale, rhs))) }
                | None ->
                    { upd with
                      Ast.s_desc =
                        Ast.Sexpr
                          (Ast.assign lhs
                             (Visit.map_expr
                                (fun e ->
                                  match e with
                                  | Ast.Unary (Ast.Deref, Ast.Var x)
                                    when String.equal x g ->
                                      stale
                                  | e -> e)
                                rhs)) }
              in
              Ast.stmt
                (Ast.Sdecl
                   [ Ast.decl
                       ~init:
                         (Ast.Init_expr (Ast.Unary (Ast.Deref, Ast.var g)))
                       tmp (pointee program g) ])
              :: acq :: upd' :: rel :: stmts rest
          | s :: rest -> into s :: stmts rest
          | [] -> []
        and into s =
          match s.Ast.s_desc with
          | Ast.Sblock b -> { s with Ast.s_desc = Ast.Sblock (stmts b) }
          | Ast.Sif (c, a, b) ->
              { s with Ast.s_desc = Ast.Sif (c, into a, Option.map into b) }
          | Ast.Swhile (c, body) ->
              { s with Ast.s_desc = Ast.Swhile (c, into body) }
          | Ast.Sdo (body, c) ->
              { s with Ast.s_desc = Ast.Sdo (into body, c) }
          | Ast.Sfor (i, c, st, body) ->
              { s with Ast.s_desc = Ast.Sfor (i, c, st, into body) }
          | _ -> s
        in
        let globals =
          List.map
            (fun g ->
              match g with
              | Ast.Gfunc fn ->
                  Ast.Gfunc { fn with Ast.f_body = stmts fn.Ast.f_body }
              | g -> g)
            program.Ast.p_globals
        in
        { program with Ast.p_globals = globals });
    forbids_after = [];
    must_follow = [] }

let apply_sabotage sabotage (cfg : Oracle.config) =
  let passes = Translate.Driver.passes_for cfg.Oracle.options in
  let passes =
    match sabotage with
    | Drop_pass name ->
        List.filter (fun p -> p.Translate.Pass.name <> name) passes
    | Shrink_shmalloc -> passes @ [ shrink_shmalloc_pass ]
    | Illegal_hoist -> passes @ [ illegal_hoist_pass ]
  in
  { cfg with Oracle.passes = Some passes }

(* ---------------------------------------------------------------- *)
(* Fuzzing                                                          *)

type outcome = {
  o_seed : int;
  o_spec : Gen.spec;
  o_failure : Oracle.failure;
  o_program : Ast.program;
  o_shrunk : Ast.program;
  o_evals : int;
}

type summary = { s_total : int; s_failures : outcome list }

let run ?(progress = fun ~index:_ ~seed:_ _ -> ()) ?(shrink_budget = 250)
    ?sabotage ?(optimize = false) ~seed ~count () =
  let failures = ref [] in
  for i = 0 to count - 1 do
    let gseed = seed + i in
    let spec, program = Gen.generate ~seed:gseed in
    let cfg = Oracle.config_of_spec spec in
    let cfg =
      if optimize then
        { cfg with
          Oracle.options =
            { cfg.Oracle.options with Translate.Pass.optimize = true } }
      else cfg
    in
    let cfg =
      match sabotage with None -> cfg | Some s -> apply_sabotage s cfg
    in
    let verdict = Oracle.check cfg program in
    progress ~index:i ~seed:gseed verdict;
    match verdict with
    | Oracle.Agree -> ()
    | Oracle.Diverge failure ->
        let shrunk, evals =
          if shrink_budget <= 0 then (program, 0)
          else
            Shrink.shrink ~budget:shrink_budget cfg
              ~kind:(Oracle.kind_of_failure failure)
              program
        in
        failures :=
          { o_seed = gseed; o_spec = spec; o_failure = failure;
            o_program = program; o_shrunk = shrunk; o_evals = evals }
          :: !failures
  done;
  { s_total = count; s_failures = List.rev !failures }

(* ---------------------------------------------------------------- *)
(* Corpus files                                                     *)

type expectation = Expect_agree | Expect_diverge of string

type directives = {
  d_cores : int;
  d_many_to_one : bool;
  d_optimize : bool;
  d_expect : expectation;
}

let expectation_to_string = function
  | Expect_agree -> "agree"
  | Expect_diverge kind -> "diverge " ^ kind

let corpus_file ?seed ?note ~spec_line d program =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b ("// " ^ s ^ "\n")) fmt in
  (match seed with Some s -> line "conform-seed: %d" s | None -> ());
  line "conform-spec: %s" spec_line;
  line "conform-cores: %d" d.d_cores;
  line "conform-many-to-one: %b" d.d_many_to_one;
  line "conform-optimize: %b" d.d_optimize;
  line "conform-expect: %s" (expectation_to_string d.d_expect);
  (match note with
  | Some n ->
      String.split_on_char '\n' n |> List.iter (fun l -> line "conform-note: %s" l)
  | None -> ());
  Buffer.add_char b '\n';
  Buffer.add_string b (Pretty.program program);
  Buffer.contents b

let parse_directives contents =
  let directive line =
    (* "// conform-key: value" *)
    let line = String.trim line in
    if String.length line > 3 && String.sub line 0 3 = "// " then
      let rest = String.sub line 3 (String.length line - 3) in
      match String.index_opt rest ':' with
      | Some i when String.length rest > 8 && String.sub rest 0 8 = "conform-" ->
          let key = String.sub rest 0 i in
          let value = String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) in
          Some (key, value)
      | _ -> None
    else None
  in
  let kvs =
    String.split_on_char '\n' contents |> List.filter_map directive
  in
  let find key = List.assoc_opt ("conform-" ^ key) kvs in
  let int_of key =
    match find key with
    | None -> Error (Printf.sprintf "missing // conform-%s directive" key)
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "conform-%s: not an integer: %S" key v))
  in
  let bool_of key default =
    match find key with
    | None -> Ok default
    | Some "true" -> Ok true
    | Some "false" -> Ok false
    | Some v -> Error (Printf.sprintf "conform-%s: not a boolean: %S" key v)
  in
  let ( let* ) = Result.bind in
  let* d_cores = int_of "cores" in
  let* d_many_to_one = bool_of "many-to-one" false in
  let* d_optimize = bool_of "optimize" false in
  let* d_expect =
    match find "expect" with
    | None | Some "agree" -> Ok Expect_agree
    | Some v -> (
        match String.split_on_char ' ' v with
        | [ "diverge"; kind ] -> Ok (Expect_diverge kind)
        | _ -> Error (Printf.sprintf "conform-expect: unrecognized %S" v))
  in
  Ok { d_cores; d_many_to_one; d_optimize; d_expect }

let config_of_directives d =
  { Oracle.options =
      { Translate.Pass.default_options with
        Translate.Pass.ncores = d.d_cores;
        many_to_one = d.d_many_to_one;
        optimize = d.d_optimize };
    passes = None;
    interp = Cexec.Interp.Compiled;
    sim_jobs = 1 }

let replay ?(force_optimize = false) ~file contents =
  match parse_directives contents with
  | Error e -> Error e
  | Ok d -> (
      let d = { d with d_optimize = d.d_optimize || force_optimize } in
      match
        try Ok (Parser.program ~file contents)
        with Srcloc.Error (loc, m) ->
          Error (Printf.sprintf "%s: %s" (Srcloc.to_string loc) m)
      with
      | Error e -> Error ("parse error: " ^ e)
      | Ok program -> (
          let verdict = Oracle.check (config_of_directives d) program in
          match (d.d_expect, verdict) with
          | Expect_agree, Oracle.Agree -> Ok ()
          | Expect_diverge kind, Oracle.Diverge f
            when Oracle.kind_of_failure f = kind ->
              Ok ()
          | Expect_agree, Oracle.Diverge f ->
              Error
                (Printf.sprintf "expected agreement, diverged: %s"
                   (Oracle.failure_to_string f))
          | Expect_diverge kind, Oracle.Agree ->
              Error
                (Printf.sprintf
                   "expected a %s divergence, but the executions agree" kind)
          | Expect_diverge kind, Oracle.Diverge f ->
              Error
                (Printf.sprintf "expected a %s divergence, got %s" kind
                   (Oracle.failure_to_string f))))
