(** The conformance campaign driver: generate → check → shrink → record,
    plus the corpus file format used by [test/conformance/].

    Program [i] of a run started with [--seed S] is generated from seed
    [S + i], so any reported failure is reproducible standalone with
    [--seed (S + i) --count 1]. *)

(** {1 Sabotage}

    Deliberate pipeline mutations for the killing-mutation check: the
    harness must catch a hand-broken translator. *)

type sabotage =
  | Drop_pass of string  (** run the pipeline without the named pass *)
  | Shrink_shmalloc
      (** under-allocate every multi-element shmalloc region by one
          element after the pipeline — a guaranteed out-of-bounds
          mutation the bounds verifier must flag *)
  | Illegal_hoist
      (** hoist every lock-protected shared read out of its critical
          section — the transformation the optimizer's legality
          analysis must refuse; the oracle must see the lost updates *)

val sabotage_of_string : string -> (sabotage, string) result
(** Recognizes ["drop-pass:<name>"] where [<name>] is a Stage-5 pass
    (e.g. ["mutex-convert"], ["shared-rewrite"]), ["shrink-shmalloc"],
    and ["illegal-hoist"]. *)

val sabotage_to_string : sabotage -> string

val apply_sabotage : sabotage -> Oracle.config -> Oracle.config

(** {1 Fuzzing} *)

type outcome = {
  o_seed : int;             (** the standalone-reproducing seed *)
  o_spec : Gen.spec;
  o_failure : Oracle.failure;
  o_program : Cfront.Ast.program;  (** as generated *)
  o_shrunk : Cfront.Ast.program;   (** minimized (= [o_program] if
                                       shrinking was disabled) *)
  o_evals : int;            (** oracle evaluations the shrinker spent *)
}

type summary = {
  s_total : int;
  s_failures : outcome list;  (** in discovery order *)
}

val run :
  ?progress:(index:int -> seed:int -> Oracle.verdict -> unit) ->
  ?shrink_budget:int ->
  ?sabotage:sabotage ->
  ?optimize:bool ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** [run ~seed ~count ()] fuzzes [count] programs.  [shrink_budget] = 0
    disables shrinking (default 250 evaluations per failure);
    [optimize] (default false) forces the [-O] pipeline on every
    generated configuration. *)

(** {1 Corpus files}

    A corpus file is a C program preceded by [// conform-*] directive
    comments recording how to run it and what to expect. *)

type expectation = Expect_agree | Expect_diverge of string
    (** the string is an {!Oracle.kind_of_failure} tag *)

type directives = {
  d_cores : int;
  d_many_to_one : bool;
  d_optimize : bool;
  d_expect : expectation;
}

val corpus_file :
  ?seed:int ->
  ?note:string ->
  spec_line:string ->
  directives ->
  Cfront.Ast.program ->
  string
(** Render a corpus file: directive header plus pretty-printed source. *)

val parse_directives : string -> (directives, string) result
(** Read the [// conform-*] header of a corpus file's contents. *)

val replay :
  ?force_optimize:bool -> file:string -> string -> (unit, string) result
(** [replay ~file contents] parses directives and source, runs the
    oracle, and checks the verdict against the expectation.
    [force_optimize] replays with the [-O] pipeline even when the file's
    directives did not record it.  [Error] carries a human-readable
    explanation. *)
