open Cfront

type failure =
  | Translation_error of string
  | Baseline_error of string
  | Converted_error of string
  | Output_mismatch of string
  | Exit_mismatch of string

type verdict = Agree | Diverge of failure

let kind_of_failure = function
  | Translation_error _ -> "translation-error"
  | Baseline_error _ -> "baseline-error"
  | Converted_error _ -> "converted-error"
  | Output_mismatch _ -> "output-mismatch"
  | Exit_mismatch _ -> "exit-mismatch"

let failure_to_string f =
  let detail =
    match f with
    | Translation_error s | Baseline_error s | Converted_error s
    | Output_mismatch s | Exit_mismatch s -> s
  in
  Printf.sprintf "%s: %s" (kind_of_failure f) detail

type config = {
  options : Translate.Pass.options;
  passes : Translate.Pass.t list option;
  interp : Cexec.Interp.mode;
  sim_jobs : int;
}

let default_config ~ncores =
  { options = { Translate.Pass.default_options with Translate.Pass.ncores };
    passes = None;
    interp = Cexec.Interp.Compiled;
    sim_jobs = 1 }

let config_of_spec (sp : Gen.spec) =
  { options =
      { Translate.Pass.default_options with
        Translate.Pass.ncores = sp.Gen.run_cores;
        many_to_one = sp.Gen.many_to_one;
        optimize = sp.Gen.optimize };
    passes = None;
    interp = Cexec.Interp.Compiled;
    sim_jobs = 1 }

let translate cfg program =
  match cfg.passes with
  | None -> fst (Translate.Driver.translate_program ~options:cfg.options program)
  | Some passes ->
      let session = Session.create ~options:cfg.options program in
      let ctx = Translate.Pass.ctx_of_session session in
      Translate.Pass.run_all passes ctx program

(* ---------------------------------------------------------------- *)
(* Output comparison                                                *)

let lines_of output =
  String.split_on_char '\n' output |> List.filter (fun l -> l <> "")

exception Malformed of string

(* Partition printf lines into tagged observations and plain lines.
   An observation line is ["OBS <name> <idx> <value>"]; its key is
   ["<name> <idx>"]. *)
let split_obs lines =
  List.partition_map
    (fun line ->
      if String.length line >= 4 && String.sub line 0 4 = "OBS " then
        match String.split_on_char ' ' line with
        | [ _; name; idx; value ] -> (
            match (int_of_string_opt idx, int_of_string_opt value) with
            | Some _, Some v -> Left (name ^ " " ^ idx, v)
            | _ -> raise (Malformed ("unparseable observation: " ^ line)))
        | _ -> raise (Malformed ("unparseable observation: " ^ line))
      else Right line)
    lines

let counts xs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace tbl x (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x)))
    xs;
  tbl

let compare_output ~ncores ~base ~conv =
  let base_obs, base_plain = split_obs (lines_of base) in
  let conv_obs, conv_plain = split_obs (lines_of conv) in
  (* the baseline prints each observation key exactly once *)
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (key, value) ->
      if Hashtbl.mem expected key then
        raise (Malformed ("baseline printed observation twice: " ^ key));
      Hashtbl.add expected key value)
    base_obs;
  (* the converted program prints each key once per core, always with
     the baseline's value *)
  let seen = counts conv_obs in
  List.iter
    (fun (key, value) ->
      match Hashtbl.find_opt seen (key, value) with
      | Some n when n = ncores -> ()
      | Some n ->
          raise
            (Malformed
               (Printf.sprintf
                  "observation %s = %d: converted printed it %d times, expected %d"
                  key value n ncores))
      | None ->
          let actual =
            List.filter_map
              (fun (k, v) -> if k = key then Some (string_of_int v) else None)
              conv_obs
          in
          raise
            (Malformed
               (Printf.sprintf "observation %s: baseline %d, converted {%s}"
                  key value (String.concat ", " actual))))
    base_obs;
  List.iter
    (fun (key, _) ->
      if not (Hashtbl.mem expected key) then
        raise (Malformed ("converted printed an extra observation: " ^ key)))
    conv_obs;
  (* untagged lines: converted = ncores copies of the baseline multiset *)
  let bc = counts base_plain and cc = counts conv_plain in
  Hashtbl.iter
    (fun line n ->
      let m = Option.value ~default:0 (Hashtbl.find_opt cc line) in
      if m <> n * ncores then
        raise
          (Malformed
             (Printf.sprintf
                "line %S: baseline %d time(s), converted %d (expected %d)"
                line n m (n * ncores))))
    bc;
  Hashtbl.iter
    (fun line _ ->
      if not (Hashtbl.mem bc line) then
        raise (Malformed ("converted printed an extra line: " ^ line)))
    cc

let compare_exits ~base ~conv =
  match base with
  | [] -> raise (Malformed "baseline produced no exit value")
  | b0 :: _ ->
      List.iteri
        (fun rank v ->
          if v <> b0 then
            raise
              (Malformed
                 (Printf.sprintf "core %d exited with %s, baseline %s" rank
                    (Cexec.Value.to_string v) (Cexec.Value.to_string b0))))
        conv

(* ---------------------------------------------------------------- *)

let describe_exn = function
  | Cexec.Interp.Runtime_error m -> m
  | Cexec.Value.Type_error m -> "type error: " ^ m
  | Srcloc.Error (loc, m) -> Printf.sprintf "%s: %s" (Srcloc.to_string loc) m
  | e -> Printexc.to_string e

let check cfg program =
  let ncores = cfg.options.Translate.Pass.ncores in
  match
    try Ok (translate cfg program) with
    | Translate.Driver.Error e ->
        Error (Translate.Driver.error_to_string e)
    | Translate.Pass.Inconsistent (pass, diag) ->
        Error (Printf.sprintf "pass %s: %s" pass diag)
    | e -> Error (describe_exn e)
  with
  | Error msg -> Diverge (Translation_error msg)
  | Ok translated -> (
      match
        try
          Ok
            (Cexec.Interp.run_pthread ~interp:cfg.interp
               ~sim_jobs:cfg.sim_jobs program)
        with e -> Error e
      with
      | Error e -> Diverge (Baseline_error (describe_exn e))
      | Ok base -> (
          match
            try
              Ok
                (Cexec.Interp.run_rcce ~interp:cfg.interp
                   ~sim_jobs:cfg.sim_jobs ~ncores translated)
            with e -> Error e
          with
          | Error e -> Diverge (Converted_error (describe_exn e))
          | Ok conv -> (
              match
                try
                  compare_output ~ncores ~base:base.Cexec.Interp.output
                    ~conv:conv.Cexec.Interp.output;
                  Ok ()
                with Malformed m -> Error (Output_mismatch m)
              with
              | Error f -> Diverge f
              | Ok () -> (
                  try
                    compare_exits ~base:base.Cexec.Interp.exit_values
                      ~conv:conv.Cexec.Interp.exit_values;
                    Agree
                  with Malformed m -> Diverge (Exit_mismatch m)))))
