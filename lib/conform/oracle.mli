open Cfront

(** The dual-execution oracle: run a Pthread program on the single-core
    baseline, translate it, run the translation on the SCC simulator,
    and compare the observable behaviours.

    {b Observable behaviour} is (1) the tagged observation lines [main]
    prints after the joins — ["OBS <name> <idx> <value>"] — (2) every
    other printf line, and (3) the process exit values.  The baseline
    prints each observation key once; the converted program runs [main]
    on every core, so each key must appear exactly [ncores] times and
    always with the baseline's value.  Untagged lines must appear
    exactly [ncores] times each (as a multiset); every converted exit
    value must equal the baseline's. *)

type failure =
  | Translation_error of string
      (** the Stage 1–5 pipeline rejected or crashed on the program *)
  | Baseline_error of string   (** the pthread interpretation raised *)
  | Converted_error of string  (** the RCCE interpretation raised *)
  | Output_mismatch of string  (** observations / lines disagree *)
  | Exit_mismatch of string    (** exit values disagree *)

type verdict = Agree | Diverge of failure

val kind_of_failure : failure -> string
(** A stable short tag: ["translation-error"], ["baseline-error"],
    ["converted-error"], ["output-mismatch"], ["exit-mismatch"]. *)

val failure_to_string : failure -> string

type config = {
  options : Translate.Pass.options;
      (** translator options; [options.ncores] is also the RCCE run's
          core count *)
  passes : Translate.Pass.t list option;
      (** [None] = the paper-faithful pipeline for [options]; [Some l]
          substitutes a custom (e.g. sabotaged) pass list *)
  interp : Cexec.Interp.mode;
      (** interpreter mode for both executions (default [Compiled]) *)
  sim_jobs : int;
      (** scheduler partitions for both executions (default 1); any
          value must produce identical verdicts — the differential
          tests rely on this *)
}

val config_of_spec : Gen.spec -> config
(** Translator options matching a generated program: [ncores] =
    [run_cores], the spec's [many_to_one]/[optimize] flags, defaults
    otherwise. *)

val default_config : ncores:int -> config

val check : config -> Ast.program -> verdict
(** Run both executions and compare.  Never raises: interpreter and
    translator exceptions become [Diverge] verdicts. *)

val translate : config -> Ast.program -> Ast.program
(** Just the translation leg (with the config's pass list), for golden
    tests and debugging.  Raises on translation failure. *)
