(* splitmix64 (Steele, Lea & Flood 2014): a tiny, statistically solid
   generator whose entire state is one int64.  Chosen over
   [Stdlib.Random] so a corpus regenerated years later from the same
   seed is byte-identical. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = if p >= 1.0 then true else int t 1_000_000 < int_of_float (p *. 1_000_000.)

let pick t = function
  | [] -> invalid_arg "Rng.pick"
  | xs -> List.nth xs (int t (List.length xs))

let weighted t choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted";
  let rec go n = function
    | [] -> invalid_arg "Rng.weighted"
    | (w, x) :: rest -> if n < w then x else go (n - w) rest
  in
  go (int t total) choices
