(** A small self-contained splitmix64 PRNG.

    The conformance harness promises byte-identical corpora for a given
    seed across runs and machines, so it carries its own generator
    instead of depending on [Stdlib.Random]'s evolving algorithms.  All
    draws reduce the same 64-bit stream, making every generated program
    a pure function of its integer seed. *)

type t

val create : int -> t
(** A fresh stream seeded from the given integer. *)

val copy : t -> t

val bits64 : t -> int64
(** The next raw 64-bit word of the stream. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0 .. n-1].  [n] must be positive. *)

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from [lo .. hi] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** A uniform element of a non-empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** An element drawn with the given relative integer weights (all
    weights must be positive, the list non-empty). *)
