open Cfront

(* ---------------------------------------------------------------- *)
(* Size metric                                                      *)

let size (p : Ast.program) =
  let n = ref (10 * List.length p.Ast.p_globals) in
  ignore
    (Visit.rewrite_program
       (fun _ ->
         n := !n + 10;
         None)
       p);
  Visit.iter_exprs_of_program
    (function Ast.Int_lit k -> n := !n + min (abs k) 16 | _ -> ())
    p;
  !n

(* ---------------------------------------------------------------- *)
(* Candidate enumeration                                            *)

(* Statements are addressed by their position in [Visit.rewrite_program]'s
   bottom-up traversal order, which is stable for a given program. *)

type stmt_shape = Plain | If_stmt of bool (* has else *) | Loop_stmt

let stmt_shapes p =
  let shapes = ref [] in
  let c = ref 0 in
  ignore
    (Visit.rewrite_program
       (fun st ->
         let shape =
           match st.Ast.s_desc with
           | Ast.Sif (_, _, els) -> If_stmt (els <> None)
           | Ast.Sfor _ | Ast.Swhile _ | Ast.Sdo _ -> Loop_stmt
           | _ -> Plain
         in
         shapes := (!c, shape) :: !shapes;
         incr c;
         None)
       p);
  List.rev !shapes

let rewrite_nth p i f =
  let c = ref 0 in
  Visit.rewrite_program
    (fun st ->
      let here = !c = i in
      incr c;
      if here then f st else None)
    p

let delete_stmt p i = rewrite_nth p i (fun _ -> Some [])

let collapse_if p i keep_then =
  rewrite_nth p i (fun st ->
      match st.Ast.s_desc with
      | Ast.Sif (_, then_, els) ->
          if keep_then then Some [ then_ ]
          else Some (match els with Some e -> [ e ] | None -> [])
      | _ -> None)

let unwrap_loop p i =
  rewrite_nth p i (fun st ->
      match st.Ast.s_desc with
      | Ast.Sfor (_, _, _, body) | Ast.Swhile (_, body) | Ast.Sdo (body, _)
        ->
          Some [ body ]
      | _ -> None)

let count_literals p =
  let c = ref 0 in
  Visit.iter_exprs_of_program
    (function Ast.Int_lit k when k <> 0 -> incr c | _ -> ())
    p;
  !c

let halve_literal p i =
  let c = ref 0 in
  Visit.map_program_exprs
    (function
      | Ast.Int_lit k when k <> 0 ->
          let here = !c = i in
          incr c;
          if here then Ast.Int_lit (k / 2) else Ast.Int_lit k
      | e -> e)
    p

let delete_global (p : Ast.program) i =
  { p with
    Ast.p_globals =
      List.filteri
        (fun j g ->
          j <> i
          || (match g with Ast.Gfunc f -> f.Ast.f_name = "main" | _ -> false))
        p.Ast.p_globals }

(* All one-step reductions of [p], biggest cuts first. *)
let candidates (p : Ast.program) =
  let globals =
    List.mapi (fun i _ -> fun () -> delete_global p i) p.Ast.p_globals
  in
  let shapes = stmt_shapes p in
  let structural =
    List.concat_map
      (fun (i, shape) ->
        match shape with
        | If_stmt has_else ->
            [ (fun () -> collapse_if p i true) ]
            @ (if has_else then [ (fun () -> collapse_if p i false) ] else [])
            @ [ (fun () -> delete_stmt p i) ]
        | Loop_stmt ->
            [ (fun () -> unwrap_loop p i); (fun () -> delete_stmt p i) ]
        | Plain -> [ (fun () -> delete_stmt p i) ])
      shapes
  in
  let literals =
    List.init (count_literals p) (fun i -> fun () -> halve_literal p i)
  in
  globals @ structural @ literals

(* ---------------------------------------------------------------- *)
(* Greedy descent                                                   *)

let diverges_like cfg kind program =
  match Oracle.check cfg program with
  | Oracle.Diverge f -> Oracle.kind_of_failure f = kind
  | Oracle.Agree -> false

let shrink ?(budget = 250) cfg ~kind program =
  let evals = ref 0 in
  let rec descend current current_size =
    if !evals >= budget then current
    else
      let rec try_candidates = function
        | [] -> current
        | cand :: rest ->
            if !evals >= budget then current
            else
              let candidate = cand () in
              let csize = size candidate in
              if csize >= current_size then try_candidates rest
              else begin
                incr evals;
                if diverges_like cfg kind candidate then
                  descend candidate csize
                else try_candidates rest
              end
      in
      try_candidates (candidates current)
  in
  let result = descend program (size program) in
  (result, !evals)
