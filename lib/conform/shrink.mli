open Cfront

(** Delta-debugging minimizer for diverging programs.

    Greedy descent over structural reductions — delete a global, delete
    a statement, collapse an [if] to one branch, unwrap a loop body,
    halve an integer literal — accepting a candidate only when the
    {!Oracle} still reports a divergence of the {e same kind} and the
    program got strictly smaller, so the search always terminates.  A
    candidate that stops diverging (or diverges differently) is
    rejected; well-typedness is not preserved by construction but a
    candidate the pipeline rejects simply lands in the
    [translation-error] kind and is discarded the same way. *)

val size : Ast.program -> int
(** The strictly-decreasing metric: statements and globals weigh 10
    each, plus the magnitude of every integer literal (capped). *)

val shrink :
  ?budget:int ->
  Oracle.config ->
  kind:string ->
  Ast.program ->
  Ast.program * int
(** [shrink cfg ~kind p] minimizes [p] while {!Oracle.check} keeps
    returning a divergence whose {!Oracle.kind_of_failure} equals
    [kind].  [budget] (default 250) caps oracle evaluations — each one
    is two full simulated executions.  Returns the smallest program
    found and the number of evaluations spent. *)
