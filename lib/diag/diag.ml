open Cfront

(* The unified diagnostics engine: every checker — the static race
   detector, the dynamic Eraser lockset, future analyses — produces
   [Diag.t] values, and one renderer pair (gcc-style text and JSON)
   prints them all, so tools composing hsmcc see a single format.

   A diagnostic is anchored at a source location when one is known,
   carries a stable machine-readable [code] (printed in brackets, the
   way gcc prints [-Wname]), and may attach related notes pointing at
   the other half of a conflict. *)

type severity = Note | Warning | Error

type related = { rel_loc : Srcloc.t option; rel_message : string }

type t = {
  severity : severity;
  code : string;              (* stable identifier, e.g. "race" *)
  loc : Srcloc.t option;
  message : string;
  related : related list;     (* secondary locations, in emission order *)
}

let make ?loc ?(related = []) ~severity ~code message =
  { severity; code; loc; message; related }

let error ?loc ?related ~code message =
  make ?loc ?related ~severity:Error ~code message

let warning ?loc ?related ~code message =
  make ?loc ?related ~severity:Warning ~code message

let note ?loc ?related ~code message =
  make ?loc ?related ~severity:Note ~code message

let related_note ?loc message = { rel_loc = loc; rel_message = message }

let severity_to_string = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

(* Errors first, then warnings, then notes; within a severity keep
   source order by location. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Note -> 2

let loc_key = function
  | None -> ("", 0, 0)
  | Some { Srcloc.file; line; col } -> (file, line, col)

let compare_diag a b =
  match compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> compare (loc_key a.loc) (loc_key b.loc)
  | c -> c

let sort diags = List.stable_sort compare_diag diags

(* --- counting and -Werror semantics ------------------------------------- *)

type counts = { errors : int; warnings : int; notes : int }

let count diags =
  List.fold_left
    (fun c d ->
      match d.severity with
      | Error -> { c with errors = c.errors + 1 }
      | Warning -> { c with warnings = c.warnings + 1 }
      | Note -> { c with notes = c.notes + 1 })
    { errors = 0; warnings = 0; notes = 0 }
    diags

(* gcc's -Werror: warnings become errors (notes stay notes). *)
let promote_warnings diags =
  List.map
    (fun d ->
      match d.severity with
      | Warning -> { d with severity = Error }
      | Error | Note -> d)
    diags

let exit_code ?(werror = false) diags =
  let c = count diags in
  if c.errors > 0 || (werror && c.warnings > 0) then 1 else 0

let plural n word = if n = 1 then word else word ^ "s"

(* The one-line tail gcc prints after a noisy compile. *)
let summary diags =
  let c = count diags in
  let parts =
    (if c.warnings > 0 then
       [ Printf.sprintf "%d %s" c.warnings (plural c.warnings "warning") ]
     else [])
    @
    if c.errors > 0 then
      [ Printf.sprintf "%d %s" c.errors (plural c.errors "error") ]
    else []
  in
  match parts with
  | [] -> "no diagnostics generated"
  | parts -> String.concat " and " parts ^ " generated"

(* --- renderers ----------------------------------------------------------- *)

type format = Gcc | Json

let format_of_string = function
  | "gcc" | "text" -> Some Gcc
  | "json" -> Some Json
  | _ -> None

let loc_prefix = function
  | Some loc -> Srcloc.to_string loc ^ ": "
  | None -> ""

let to_gcc_string d =
  let head =
    Printf.sprintf "%s%s: %s [%s]" (loc_prefix d.loc)
      (severity_to_string d.severity)
      d.message d.code
  in
  let notes =
    List.map
      (fun r ->
        Printf.sprintf "%snote: %s" (loc_prefix r.rel_loc) r.rel_message)
      d.related
  in
  String.concat "\n" (head :: notes)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_loc = function
  | None -> "null"
  | Some { Srcloc.file; line; col } ->
      Printf.sprintf {|{"file":"%s","line":%d,"col":%d}|}
        (json_escape file) line col

let to_json_string d =
  let related =
    List.map
      (fun r ->
        Printf.sprintf {|{"loc":%s,"message":"%s"}|} (json_of_loc r.rel_loc)
          (json_escape r.rel_message))
      d.related
  in
  Printf.sprintf
    {|{"severity":"%s","code":"%s","loc":%s,"message":"%s","related":[%s]}|}
    (severity_to_string d.severity)
    (json_escape d.code) (json_of_loc d.loc) (json_escape d.message)
    (String.concat "," related)

(* Render a batch: gcc-style prints one (multi-line) block per diagnostic;
   JSON prints a single array so consumers can [json.parse] the whole
   output. *)
let render_all format diags =
  match format with
  | Gcc -> String.concat "\n" (List.map to_gcc_string diags)
  | Json ->
      "[" ^ String.concat "," (List.map to_json_string diags) ^ "]"

(* Print to a channel and return the exit status the caller should use:
   the full -Werror pipeline in one call. *)
let emit ?(format = Gcc) ?(werror = false) oc diags =
  let diags = sort (if werror then promote_warnings diags else diags) in
  if diags <> [] then begin
    output_string oc (render_all format diags);
    output_char oc '\n'
  end;
  exit_code ~werror diags
