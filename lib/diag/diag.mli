open Cfront

(** The unified diagnostics engine: severity-tagged, source-anchored
    messages with gcc-style and JSON renderers, warning counts and
    [-Werror] semantics.  Both the static race detector and the dynamic
    Eraser lockset report through this type, so [hsmcc check] and
    [hsmcc run] print in one format. *)

type severity = Note | Warning | Error

type related = { rel_loc : Srcloc.t option; rel_message : string }
(** A secondary location attached to a diagnostic (e.g. the other access
    of a race pair). *)

type t = {
  severity : severity;
  code : string;        (** stable machine-readable identifier, e.g. "race" *)
  loc : Srcloc.t option;
  message : string;
  related : related list;
}

val make :
  ?loc:Srcloc.t -> ?related:related list ->
  severity:severity -> code:string -> string -> t

val error : ?loc:Srcloc.t -> ?related:related list -> code:string -> string -> t
val warning : ?loc:Srcloc.t -> ?related:related list -> code:string -> string -> t
val note : ?loc:Srcloc.t -> ?related:related list -> code:string -> string -> t

val related_note : ?loc:Srcloc.t -> string -> related

val severity_to_string : severity -> string

val sort : t list -> t list
(** Errors, then warnings, then notes; by source location within a
    severity (stable). *)

type counts = { errors : int; warnings : int; notes : int }

val count : t list -> counts

val promote_warnings : t list -> t list
(** gcc's [-Werror]: every [Warning] becomes an [Error]. *)

val exit_code : ?werror:bool -> t list -> int
(** [1] when any error is present — or, under [werror], any warning —
    [0] otherwise. *)

val summary : t list -> string
(** The "[N] warnings generated" tail line. *)

type format = Gcc | Json

val format_of_string : string -> format option
(** Recognizes ["gcc"] (alias ["text"]) and ["json"]. *)

val to_gcc_string : t -> string
(** ["file:line:col: severity: message \[code\]"], followed by one
    indent-free note line per related location. *)

val to_json_string : t -> string

val render_all : format -> t list -> string
(** Gcc: newline-separated blocks.  Json: one array of objects. *)

val emit : ?format:format -> ?werror:bool -> out_channel -> t list -> int
(** Sort (promoting under [werror]), print, and return the exit code. *)
