(* Pthread C sources for the end-to-end experiments: the same benchmark
   both interpreted directly (the paper's single-core baseline) and pushed
   through the five-stage translator and interpreted as an RCCE program.

   The thread count is baked into the generated source — exactly how the
   paper's benchmarks were "built for 32 threads". *)

let pi ~nt ~steps =
  Printf.sprintf
    {|#include <stdio.h>
#include <pthread.h>

double partial[%d];

void *work(void *tid) {
    int id = (int)tid;
    int chunk = %d / %d;
    int lo = id * chunk;
    int hi = lo + chunk;
    double step = 1.0 / %d;
    double sum = 0.0;
    int i;
    for (i = lo; i < hi; i++) {
        double x = (i + 0.5) * step;
        sum = sum + 4.0 / (1.0 + x * x);
    }
    partial[id] = sum;
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[%d];
    for (t = 0; t < %d; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < %d; t++) {
        pthread_join(threads[t], NULL);
    }
    double pi = 0.0;
    for (t = 0; t < %d; t++) {
        pi = pi + partial[t];
    }
    pi = pi * (1.0 / %d);
    printf("pi = %%f\n", pi);
    return 0;
}
|}
    nt steps nt steps nt nt nt nt steps

let primes ~nt ~limit =
  Printf.sprintf
    {|#include <stdio.h>
#include <pthread.h>

int counts[%d];

void *work(void *tid) {
    int id = (int)tid;
    int chunk = %d / %d;
    int lo = id * chunk;
    int hi = lo + chunk;
    int i;
    if (lo < 2) {
        lo = 2;
    }
    int found = 0;
    for (i = lo; i < hi; i++) {
        int prime = 1;
        int j;
        for (j = 2; j < i; j++) {
            if (i %% j == 0) {
                prime = 0;
                break;
            }
        }
        found = found + prime;
    }
    counts[id] = found;
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[%d];
    for (t = 0; t < %d; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < %d; t++) {
        pthread_join(threads[t], NULL);
    }
    int total = 0;
    for (t = 0; t < %d; t++) {
        total = total + counts[t];
    }
    printf("primes below %d: %%d\n", total);
    return 0;
}
|}
    nt limit nt nt nt nt nt limit

let sum35 ~nt ~bound =
  Printf.sprintf
    {|#include <stdio.h>
#include <pthread.h>

double partial[%d];

void *work(void *tid) {
    int id = (int)tid;
    int chunk = %d / %d;
    int lo = id * chunk;
    int hi = lo + chunk;
    if (lo < 1) {
        lo = 1;
    }
    double sum = 0.0;
    int i;
    for (i = lo; i < hi; i++) {
        if (i %% 3 == 0 || i %% 5 == 0) {
            sum = sum + i;
        }
    }
    partial[id] = sum;
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[%d];
    for (t = 0; t < %d; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < %d; t++) {
        pthread_join(threads[t], NULL);
    }
    double total = 0.0;
    for (t = 0; t < %d; t++) {
        total = total + partial[t];
    }
    printf("sum35 = %%f\n", total);
    return 0;
}
|}
    nt bound nt nt nt nt nt

(* [reps] re-sweeps each chunk; > 1 makes the kernel read-traffic bound
   (every sweep re-reads the shared a/b arrays), the configuration the
   optimizer's MPB caching is aimed at. *)
let dot_reps ~reps ~nt ~n =
  let sweep =
    if reps = 1 then
      {|    for (i = lo; i < hi; i++) {
        sum = sum + a[i] * b[i];
    }|}
    else
      Printf.sprintf
        {|    int r;
    for (r = 0; r < %d; r++) {
        for (i = lo; i < hi; i++) {
            sum = sum + a[i] * b[i];
        }
    }|}
        reps
  in
  Printf.sprintf
    {|#include <stdio.h>
#include <pthread.h>

double a[%d];
double b[%d];
double partial[%d];

void *work(void *tid) {
    int id = (int)tid;
    int chunk = %d / %d;
    int lo = id * chunk;
    int hi = lo + chunk;
    double sum = 0.0;
    int i;
%s
    partial[id] = sum;
    pthread_exit(NULL);
}

int main() {
    int i;
    for (i = 0; i < %d; i++) {
        a[i] = i %% 7 + 1;
        b[i] = i %% 5 + 2;
    }
    int t;
    pthread_t threads[%d];
    for (t = 0; t < %d; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < %d; t++) {
        pthread_join(threads[t], NULL);
    }
    double total = 0.0;
    for (t = 0; t < %d; t++) {
        total = total + partial[t];
    }
    printf("dot = %%f\n", total);
    return 0;
}
|}
    n n nt n nt sweep n nt nt nt nt

let dot ~nt ~n = dot_reps ~reps:1 ~nt ~n

(* A read-traffic-bound kernel: the hot loop re-reads the shared
   parameters nsteps and scale on every iteration, so the -O load
   hoisting collapses almost all of its shared-DRAM traffic. *)
let hot_loop ~nt ~steps =
  Printf.sprintf
    {|#include <stdio.h>
#include <pthread.h>

int nsteps;
double scale;
double total;
pthread_mutex_t m;

void *work(void *tid) {
    int i;
    double sum = 0.0;
    for (i = 0; i < nsteps; i++) {
        sum = sum + scale * i;
    }
    pthread_mutex_lock(&m);
    total = total + sum;
    pthread_mutex_unlock(&m);
    pthread_exit(NULL);
}

int main() {
    nsteps = %d;
    scale = 3.0;
    total = 0.0;
    pthread_mutex_init(&m, NULL);
    int t;
    pthread_t threads[%d];
    for (t = 0; t < %d; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < %d; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("total = %%f\n", total);
    return 0;
}
|}
    steps nt nt nt

(* The four Stream kernels (the paper's Algorithms 13-16), each thread
   sweeping its chunk, a barrier between kernels. *)
let stream ~nt ~n =
  Printf.sprintf
    {|#include <stdio.h>
#include <pthread.h>

double a[%d];
double b[%d];
double c[%d];
pthread_barrier_t bar;

void *work(void *tid) {
    int id = (int)tid;
    int chunk = %d / %d;
    int lo = id * chunk;
    int hi = lo + chunk;
    int j;
    for (j = lo; j < hi; j++) {
        c[j] = a[j];
    }
    pthread_barrier_wait(&bar);
    for (j = lo; j < hi; j++) {
        b[j] = 3.0 * c[j];
    }
    pthread_barrier_wait(&bar);
    for (j = lo; j < hi; j++) {
        c[j] = a[j] + b[j];
    }
    pthread_barrier_wait(&bar);
    for (j = lo; j < hi; j++) {
        a[j] = b[j] + 3.0 * c[j];
    }
    pthread_exit(NULL);
}

int main() {
    int i;
    for (i = 0; i < %d; i++) {
        a[i] = i %% 13 + 1;
    }
    pthread_barrier_init(&bar, NULL, %d);
    int t;
    pthread_t threads[%d];
    for (t = 0; t < %d; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < %d; t++) {
        pthread_join(threads[t], NULL);
    }
    double checksum = 0.0;
    for (i = 0; i < %d; i++) {
        checksum = checksum + a[i] + b[i] + c[i];
    }
    printf("stream checksum = %%f\n", checksum);
    return 0;
}
|}
    n n n n nt n nt nt nt nt n

(* In-place LU elimination on a diagonally-dominant matrix, rows dealt
   round-robin, a barrier per step. *)
let lu ~nt ~n =
  Printf.sprintf
    {|#include <stdio.h>
#include <pthread.h>

double m[%d];
pthread_barrier_t bar;

void *work(void *tid) {
    int id = (int)tid;
    int n = %d;
    int k;
    for (k = 0; k < n - 1; k++) {
        int i;
        for (i = k + 1; i < n; i++) {
            if (i %% %d == id) {
                double l = m[i * n + k] / m[k * n + k];
                m[i * n + k] = l;
                int j;
                for (j = k + 1; j < n; j++) {
                    m[i * n + j] = m[i * n + j] - l * m[k * n + j];
                }
            }
        }
        pthread_barrier_wait(&bar);
    }
    pthread_exit(NULL);
}

int main() {
    int n = %d;
    int i;
    int j;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            if (i == j) {
                m[i * n + j] = n;
            } else {
                m[i * n + j] = 1.0 / (1 + i - j > 0 ? 1 + i - j : 1 + j - i);
            }
        }
    }
    pthread_barrier_init(&bar, NULL, %d);
    int t;
    pthread_t threads[%d];
    for (t = 0; t < %d; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < %d; t++) {
        pthread_join(threads[t], NULL);
    }
    double checksum = 0.0;
    for (i = 0; i < n * n; i++) {
        checksum = checksum + m[i];
    }
    printf("lu checksum = %%f\n", checksum);
    return 0;
}
|}
    (n * n) n nt n nt nt nt nt

(* A mutex-protected shared counter: exercises the paper's lock
   conversion (pthread mutex -> RCCE test-and-set acquire/release). *)
let mutex_counter ~nt ~iters =
  Printf.sprintf
    {|#include <stdio.h>
#include <pthread.h>

int counter;
pthread_mutex_t m;

void *work(void *tid) {
    int i;
    for (i = 0; i < %d; i++) {
        pthread_mutex_lock(&m);
        counter = counter + 1;
        pthread_mutex_unlock(&m);
    }
    pthread_exit(NULL);
}

int main() {
    pthread_mutex_init(&m, NULL);
    int t;
    pthread_t threads[%d];
    for (t = 0; t < %d; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < %d; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("counter = %%d\n", counter);
    return 0;
}
|}
    iters nt nt nt
