(** Pthread C sources for the end-to-end experiments; the thread count is
    baked into the generated source, exactly how the paper's benchmarks
    were "built for 32 threads". *)

val pi : nt:int -> steps:int -> string
val primes : nt:int -> limit:int -> string
val sum35 : nt:int -> bound:int -> string
val dot : nt:int -> n:int -> string

val dot_reps : reps:int -> nt:int -> n:int -> string
(** [dot] with each chunk re-swept [reps] times, making the kernel
    read-traffic bound — the shared-load optimizer's target
    configuration.  [dot] is [dot_reps ~reps:1]. *)

val hot_loop : nt:int -> steps:int -> string
(** A mutex-guarded accumulator whose hot loop re-reads two shared
    parameters every iteration — the PRE pass's target configuration. *)

val stream : nt:int -> n:int -> string
(** The four kernels with a [pthread_barrier_t] between them. *)

val lu : nt:int -> n:int -> string
(** [n x n] elimination, a barrier per step. *)

val mutex_counter : nt:int -> iters:int -> string
(** A mutex-protected shared counter: exercises the paper's lock
    conversion. *)
