(* The experiment harness: regenerates every table and figure of the
   paper's evaluation, plus the ablations DESIGN.md calls out.

   [Quick] scale shrinks the workload parameters so the whole set runs in
   seconds (used by tests); [Full] scale is the configuration whose
   numbers EXPERIMENTS.md records. *)

type scale = Quick | Full

let scale_to_string = function Quick -> "quick" | Full -> "full"

(* --- benchmark suite at a given scale ------------------------------------ *)

let suite = function
  | Full -> Workloads.Suite.all
  | Quick ->
      [
        Workloads.Pi.make ~params:{ Workloads.Pi.steps = 1 lsl 16 } ();
        Workloads.Sum35.make ~params:{ Workloads.Sum35.bound = 200_000 } ();
        Workloads.Primes.make ~params:{ Workloads.Primes.limit = 4_000 } ();
        Workloads.Stream.make
          ~params:{ Workloads.Stream.n = 1 lsl 14; reps = 4; block = 256 } ();
        Workloads.Dot.make
          ~params:{ Workloads.Dot.n = 1 lsl 14; reps = 4; block = 256 } ();
        Workloads.Lu.make ~params:{ Workloads.Lu.n = 64; block = 256 } ();
      ]

(* --- Tables 4.1 / 4.2 / 6.1 ---------------------------------------------- *)

(* One session for the running example: both tables (and anything else
   that joins later) share the memoized Stage 1-3 facts. *)
let example_session =
  lazy (Session.create ~file:Example41.file (Example41.parse ()))

let analysis_of_example () = Session.pipeline (Lazy.force example_session)

let table_4_1 () =
  let a = analysis_of_example () in
  "Table 4.1: Information Extracted Per Variable (Post Stage 3)\n\n"
  ^ Tabulate.render (Analysis.Pipeline.table_4_1 a)

let table_4_2 () =
  let a = analysis_of_example () in
  "Table 4.2: Variables Sharing Status\n\n"
  ^ Tabulate.render (Analysis.Pipeline.table_4_2 a)

let table_6_1 () =
  "Table 6.1: SCC Configuration\n\n"
  ^ Tabulate.render
      (Scc.Config.table_6_1 Scc.Config.default ~rcce_cores:32
         ~pthread_threads:32)

(* --- the running example through the whole translator --------------------- *)

let translation_example () =
  let translated, report =
    Translate.Driver.translate_source ~file:Example41.file Example41.source
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Example Code 4.1 translated to RCCE (the paper's Example Code 4.2)\n\n";
  Buffer.add_string buf (Cfront.Pretty.program translated);
  Buffer.add_string buf "\nPass notes:\n";
  List.iter
    (fun note -> Buffer.add_string buf (Printf.sprintf "  - %s\n" note))
    report.Translate.Driver.notes;
  Buffer.contents buf

(* --- Figure 6.1 ------------------------------------------------------------ *)

type fig_6_1_row = {
  name : string;
  baseline_ms : float;
  rcce_ms : float;
  speedup : float;
  verified : bool;
}

let fig_6_1_data ?(scale = Full) ?(units = 32) () =
  List.map
    (fun w ->
      let baseline =
        Workloads.Workload.run w (Workloads.Workload.Pthread_baseline units)
      in
      let rcce =
        Workloads.Workload.run w
          (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, units))
      in
      {
        name = w.Workloads.Workload.name;
        baseline_ms = Workloads.Workload.elapsed_ms baseline;
        rcce_ms = Workloads.Workload.elapsed_ms rcce;
        speedup = Workloads.Workload.speedup ~baseline rcce;
        verified =
          baseline.Workloads.Workload.verified
          && rcce.Workloads.Workload.verified;
      })
    (suite scale)

let fig_6_1 ?scale ?units () =
  let rows = fig_6_1_data ?scale ?units () in
  let table =
    [ "Benchmark"; "Pthread 1-core (ms)"; "RCCE off-chip (ms)"; "Speedup";
      "Verified" ]
    :: List.map
         (fun r ->
           [ r.name;
             Printf.sprintf "%.2f" r.baseline_ms;
             Printf.sprintf "%.2f" r.rcce_ms;
             Printf.sprintf "%.1fx" r.speedup;
             string_of_bool r.verified ])
         rows
  in
  "Figure 6.1: RCCE (32 cores, off-chip shared memory) vs 32-thread \
   Pthread program on one core\n\n"
  ^ Tabulate.render table ^ "\n"
  ^ Tabulate.bar_chart (List.map (fun r -> (r.name, r.speedup)) rows)

(* --- Figure 6.2 ------------------------------------------------------------ *)

type fig_6_2_row = {
  name : string;
  off_chip_ms : float;
  mpb_ms : float;
  improvement : float;
  verified : bool;
  notes : string list;
}

let fig_6_2_data ?(scale = Full) ?(units = 32) () =
  List.map
    (fun w ->
      let off =
        Workloads.Workload.run w
          (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, units))
      in
      let mpb =
        Workloads.Workload.run w
          (Workloads.Workload.Rcce (Workloads.Workload.On_chip, units))
      in
      {
        name = w.Workloads.Workload.name;
        off_chip_ms = Workloads.Workload.elapsed_ms off;
        mpb_ms = Workloads.Workload.elapsed_ms mpb;
        improvement =
          float_of_int off.Workloads.Workload.elapsed_ps
          /. float_of_int mpb.Workloads.Workload.elapsed_ps;
        verified =
          off.Workloads.Workload.verified && mpb.Workloads.Workload.verified;
        notes = mpb.Workloads.Workload.notes;
      })
    (suite scale)

let fig_6_2 ?scale ?units () =
  let rows = fig_6_2_data ?scale ?units () in
  let table =
    [ "Benchmark"; "Off-chip (ms)"; "MPB (ms)"; "Improvement"; "Verified" ]
    :: List.map
         (fun r ->
           [ r.name;
             Printf.sprintf "%.2f" r.off_chip_ms;
             Printf.sprintf "%.2f" r.mpb_ms;
             Printf.sprintf "%.1fx" r.improvement;
             string_of_bool r.verified ])
         rows
  in
  let notes =
    List.concat_map
      (fun r -> List.map (fun n -> Printf.sprintf "  - %s: %s" r.name n) r.notes)
      rows
  in
  "Figure 6.2: RCCE run time, off-chip shared memory vs on-chip MPB (32 \
   cores)\n\n"
  ^ Tabulate.render table ^ "\n"
  ^ Tabulate.bar_chart (List.map (fun r -> (r.name, r.improvement)) rows)
  ^ (if notes = [] then ""
     else "\nPlacement notes:\n" ^ String.concat "\n" notes ^ "\n")

(* --- Figure 6.3 ------------------------------------------------------------ *)

type fig_6_3_row = {
  cores : int;
  rcce_ms : float;
  speedup : float;   (* over the fixed 32-thread single-core baseline *)
  energy_j : float;
}

let fig_6_3_core_counts = [ 1; 2; 4; 8; 16; 24; 32; 48 ]

let fig_6_3_data ?(scale = Full) ?(baseline_threads = 32) () =
  let w =
    match scale with
    | Full -> Workloads.Suite.pi
    | Quick -> Workloads.Pi.make ~params:{ Workloads.Pi.steps = 1 lsl 16 } ()
  in
  let baseline =
    Workloads.Workload.run w
      (Workloads.Workload.Pthread_baseline baseline_threads)
  in
  List.map
    (fun cores ->
      let r =
        Workloads.Workload.run w
          (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, cores))
      in
      {
        cores;
        rcce_ms = Workloads.Workload.elapsed_ms r;
        speedup = Workloads.Workload.speedup ~baseline r;
        energy_j =
          Scc.Power.energy_joules Scc.Config.default ~active_cores:cores
            ~elapsed_ps:r.Workloads.Workload.elapsed_ps;
      })
    fig_6_3_core_counts

let fig_6_3 ?scale ?baseline_threads () =
  let rows = fig_6_3_data ?scale ?baseline_threads () in
  let table =
    [ "Cores"; "RCCE (ms)"; "Speedup vs 1-core Pthread"; "Energy (J)" ]
    :: List.map
         (fun r ->
           [ string_of_int r.cores;
             Printf.sprintf "%.2f" r.rcce_ms;
             Printf.sprintf "%.1fx" r.speedup;
             Printf.sprintf "%.3f" r.energy_j ])
         rows
  in
  "Figure 6.3: Pi Approximation speedup over the single-core Pthread \
   application, varying core count\n\n"
  ^ Tabulate.render table ^ "\n"
  ^ Tabulate.bar_chart
      (List.map (fun r -> (Printf.sprintf "%2d cores" r.cores, r.speedup)) rows)

(* --- Ablation A: partitioning strategies ----------------------------------- *)

(* Deterministic synthetic variable population: sizes and access counts
   from a small LCG, heavy-tailed so strategy differences show. *)
let synthetic_items ~count ~seed =
  let state = ref seed in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  List.init count (fun i ->
      let size_class = next () mod 10 in
      let bytes =
        if size_class < 6 then 4 + (next () mod 64)          (* scalars *)
        else if size_class < 9 then 256 + (next () mod 4096) (* arrays *)
        else 16_384 + (next () mod 65_536)                   (* big arrays *)
      in
      let accesses = 1 + (next () mod 10_000) in
      { Partition.Partitioner.var =
          Ir.Var_id.global (Printf.sprintf "v%d" i);
        bytes; accesses })

let ablation_partition () =
  let items = synthetic_items ~count:64 ~seed:20141215 in
  let spec = Partition.Memspec.scc in
  let configs =
    [ (Partition.Partitioner.Size_ascending, false, "size-ascending");
      (Partition.Partitioner.Size_ascending, true, "size-ascending+split");
      (Partition.Partitioner.Access_density, false, "access-density");
      (Partition.Partitioner.All_off_chip, false, "all-off-chip") ]
  in
  let capacities = [ 8 * 1024; 64 * 1024; 256 * 1024 ] in
  let rows =
    List.concat_map
      (fun capacity ->
        List.map
          (fun (strategy, allow_split, label) ->
            let r =
              Partition.Partitioner.partition ~strategy ~allow_split spec
                ~capacity items
            in
            [ Printf.sprintf "%d KB" (capacity / 1024);
              label;
              Printf.sprintf "%d B" r.Partition.Partitioner.on_chip_bytes;
              Printf.sprintf "%.1f%%"
                (100.0 *. Partition.Partitioner.on_chip_access_fraction r) ])
          configs)
      capacities
  in
  "Ablation A: Stage 4 partitioning strategies on 64 synthetic shared \
   variables\n(figure of merit: fraction of estimated accesses served \
   on-chip)\n\n"
  ^ Tabulate.render
      ([ "Capacity"; "Strategy"; "On-chip bytes"; "On-chip accesses" ] :: rows)

(* --- Ablation B: the end-to-end interpreter path --------------------------- *)

type interp_row = {
  label : string;
  elapsed_ms : float;
  output : string;
}

let interp_end_to_end ?(scale = Full) () =
  let nt, steps =
    match scale with Full -> (32, 65_536) | Quick -> (8, 8_192)
  in
  let src = Csrc.pi ~nt ~steps in
  let program = Cfront.Parser.program ~file:"pi_pthread.c" src in
  let pthread_result = Cexec.Interp.run_pthread program in
  let translated, _report = Translate.Driver.translate_program program in
  let rcce_result = Cexec.Interp.run_rcce ~ncores:nt translated in
  let row label (r : Cexec.Interp.result) =
    {
      label;
      elapsed_ms = float_of_int r.Cexec.Interp.elapsed_ps /. 1e9;
      output = String.trim r.Cexec.Interp.output;
    }
  in
  let rows =
    [ row (Printf.sprintf "Pthread program, %d threads on 1 core" nt)
        pthread_result;
      row (Printf.sprintf "Translated RCCE program on %d cores" nt)
        rcce_result ]
  in
  let speedup =
    float_of_int pthread_result.Cexec.Interp.elapsed_ps
    /. float_of_int rcce_result.Cexec.Interp.elapsed_ps
  in
  (rows, speedup)

let interp_experiment ?scale () =
  let rows, speedup = interp_end_to_end ?scale () in
  let table =
    [ "Configuration"; "Simulated time (ms)"; "Program output" ]
    :: List.map
         (fun r ->
           [ r.label; Printf.sprintf "%.3f" r.elapsed_ms;
             (match String.split_on_char '\n' r.output with
             | first :: _ -> first
             | [] -> "") ])
         rows
  in
  "Ablation B: the translator's own output executing on the simulated \
   SCC\n(Pi benchmark interpreted: original Pthreads vs translated \
   RCCE)\n\n"
  ^ Tabulate.render table
  ^ Printf.sprintf "\nEnd-to-end speedup: %.1fx\n" speedup

(* --- DVFS sweep --------------------------------------------------------------- *)

type dvfs_row = {
  freq_mhz : int;
  volts : float;
  watts : float;
  dvfs_ms : float;
  dvfs_energy_j : float;
}

(* The paper's section 5.1 describes the SCC's frequency/voltage envelope
   (0.7 V / 125 MHz / 25 W up to 1.14 V / 1 GHz / 125 W) and its
   per-domain control; this sweep runs the Pi benchmark at several core
   frequencies and reports the time/energy tradeoff the envelope buys. *)
let dvfs_points = [ 125; 320; 533; 800; 1000 ]

let dvfs_data ?(scale = Full) () =
  let w =
    match scale with
    | Full -> Workloads.Suite.pi
    | Quick -> Workloads.Pi.make ~params:{ Workloads.Pi.steps = 1 lsl 16 } ()
  in
  List.map
    (fun freq_mhz ->
      let cfg = { Scc.Config.default with Scc.Config.core_freq_mhz = freq_mhz } in
      let r =
        Workloads.Workload.run ~cfg w
          (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 32))
      in
      {
        freq_mhz;
        volts = Scc.Power.volts_for_freq freq_mhz;
        watts = Scc.Power.chip_watts ~freq_mhz ();
        dvfs_ms = Workloads.Workload.elapsed_ms r;
        dvfs_energy_j =
          Scc.Power.energy_joules cfg ~active_cores:32
            ~elapsed_ps:r.Workloads.Workload.elapsed_ps;
      })
    dvfs_points

let dvfs_experiment ?scale () =
  let rows = dvfs_data ?scale () in
  let table =
    [ "Core freq"; "Voltage"; "Chip power"; "Pi runtime"; "Energy" ]
    :: List.map
         (fun r ->
           [ Printf.sprintf "%d MHz" r.freq_mhz;
             Printf.sprintf "%.2f V" r.volts;
             Printf.sprintf "%.1f W" r.watts;
             Printf.sprintf "%.2f ms" r.dvfs_ms;
             Printf.sprintf "%.3f J" r.dvfs_energy_j ])
         rows
  in
  "DVFS sweep: the Pi benchmark (32 cores, off-chip) across the SCC's operating envelope\n(section 5.1: 0.7 V / 125 MHz / 25 W up to 1.14 V / 1 GHz / 125 W)\n\n"
  ^ Tabulate.render table

(* --- synchronization sensitivity ----------------------------------------------- *)

type sync_row = {
  sync_name : string;
  sync_baseline_ms : float;
  sync_rcce_ms : float;
  sync_speedup : float;
}

(* The paper: "because a Pthread mutex and hardware test-and-set register
   are not exactly the same, performance varies when converting a
   synchronization-dependent application."  Comparing the compute-bound
   best case against the lock-bound histogram makes the variation
   concrete. *)
let sync_sensitivity_data ?(scale = Full) ?(units = 32) () =
  let pairs =
    match scale with
    | Full ->
        [ Workloads.Suite.pi; Workloads.Suite.histogram ]
    | Quick ->
        [ Workloads.Pi.make ~params:{ Workloads.Pi.steps = 1 lsl 16 } ();
          Workloads.Histogram.make
            ~params:{ Workloads.Histogram.n = 1 lsl 13; bins = 64; locks = 8 }
            () ]
  in
  List.map
    (fun w ->
      let baseline =
        Workloads.Workload.run w (Workloads.Workload.Pthread_baseline units)
      in
      let rcce =
        Workloads.Workload.run w
          (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, units))
      in
      {
        sync_name = w.Workloads.Workload.name;
        sync_baseline_ms = Workloads.Workload.elapsed_ms baseline;
        sync_rcce_ms = Workloads.Workload.elapsed_ms rcce;
        sync_speedup = Workloads.Workload.speedup ~baseline rcce;
      })
    pairs

let sync_sensitivity ?scale ?units () =
  let rows = sync_sensitivity_data ?scale ?units () in
  let table =
    [ "Benchmark"; "Pthread 1-core (ms)"; "RCCE (ms)"; "Speedup" ]
    :: List.map
         (fun r ->
           [ r.sync_name;
             Printf.sprintf "%.2f" r.sync_baseline_ms;
             Printf.sprintf "%.2f" r.sync_rcce_ms;
             Printf.sprintf "%.1fx" r.sync_speedup ])
         rows
  in
  "Synchronization sensitivity: compute-bound vs lock-bound conversion
(mutex -> test-and-set register, 32 units)

"
  ^ Tabulate.render table

(* --- model sensitivity ---------------------------------------------------------- *)

(* How much do the memory-bound Figure 6.1 results depend on the one
   debatable model choice — blocking vs posted (write-combined) uncached
   stores?  The SCC has a write-combine buffer; the calibrated figures
   use blocking stores. *)
let model_sensitivity ?(scale = Full) () =
  let memory_benchmarks =
    match scale with
    | Full -> [ Workloads.Suite.stream; Workloads.Suite.dot ]
    | Quick ->
        [ Workloads.Stream.make
            ~params:{ Workloads.Stream.n = 1 lsl 13; reps = 2; block = 256 }
            ();
          Workloads.Dot.make
            ~params:{ Workloads.Dot.n = 1 lsl 13; reps = 2; block = 256 } () ]
  in
  let run ~posted w =
    let cfg =
      { Scc.Config.default with Scc.Config.posted_shared_writes = posted }
    in
    Workloads.Workload.elapsed_ms
      (Workloads.Workload.run ~cfg w
         (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 32)))
  in
  let rows =
    List.map
      (fun w ->
        let blocking = run ~posted:false w in
        let posted = run ~posted:true w in
        [ w.Workloads.Workload.name;
          Printf.sprintf "%.2f ms" blocking;
          Printf.sprintf "%.2f ms" posted;
          Printf.sprintf "%.0f%%" (100.0 *. (1.0 -. (posted /. blocking))) ])
      memory_benchmarks
  in
  "Model sensitivity: blocking vs posted uncached shared stores
(the SCC's write-combine buffer; the calibrated figures use blocking)

"
  ^ Tabulate.render
      ([ "Benchmark"; "Blocking stores"; "Posted stores"; "Faster by" ]
      :: rows)

(* --- section 7.2: more threads than cores ---------------------------------------- *)

(* A 96-thread Pi program (double the chip) translated with the
   many-to-one task mapping and interpreted at increasing core counts —
   the scaling path the paper's section 7.2 sketches. *)
let many_to_one_scaling ?(scale = Full) () =
  let nt, steps =
    match scale with Full -> (96, 32_768) | Quick -> (24, 4_096)
  in
  let src = Csrc.pi ~nt ~steps in
  let program = Cfront.Parser.program ~file:"pi_many.c" src in
  let baseline = Cexec.Interp.run_pthread program in
  let core_counts =
    List.filter (fun c -> c <= 48) [ 8; 16; 32; 48 ]
  in
  let rows =
    List.map
      (fun ncores ->
        let options =
          { Translate.Pass.default_options with
            Translate.Pass.ncores; many_to_one = true }
        in
        let translated, _ =
          Translate.Driver.translate_program ~options program
        in
        let r = Cexec.Interp.run_rcce ~ncores translated in
        [ string_of_int ncores;
          Printf.sprintf "%.3f ms"
            (float_of_int r.Cexec.Interp.elapsed_ps /. 1e9);
          Printf.sprintf "%.1fx"
            (float_of_int baseline.Cexec.Interp.elapsed_ps
            /. float_of_int r.Cexec.Interp.elapsed_ps) ])
      core_counts
  in
  Printf.sprintf
    "Section 7.2: %d threads mapped many-to-one onto fewer cores
(baseline: the %d-thread Pthread program on one core, %.3f ms)

"
    nt nt
    (float_of_int baseline.Cexec.Interp.elapsed_ps /. 1e9)
  ^ Tabulate.render
      ([ "Cores"; "Interpreted RCCE"; "Speedup" ] :: rows)

(* --- everything ------------------------------------------------------------- *)

(* --- the shared-traffic optimizer ------------------------------------------ *)

type opt_row = {
  opt_label : string;
  opt_ncores : int;
  opt_naive_ms : float;
  opt_o_ms : float;
  opt_naive_loads : int;
  opt_o_loads : int;
  opt_speedup : float;
}

let opt_end_to_end ?(scale = Full) () =
  let nt, reps = match scale with Full -> (32, 8) | Quick -> (8, 4) in
  let bench label ncores src =
    let program = Cfront.Parser.program ~file:(label ^ ".c") src in
    let run optimize =
      let options =
        { Translate.Pass.default_options with
          Translate.Pass.ncores; optimize }
      in
      let translated, _ = Translate.Driver.translate_program ~options program in
      Cexec.Interp.run_rcce ~ncores translated
    in
    let naive = run false in
    let opt = run true in
    if not (String.equal naive.Cexec.Interp.output opt.Cexec.Interp.output)
    then
      invalid_arg
        (Printf.sprintf "optimizer changed the output of %s" label);
    let loads (r : Cexec.Interp.result) =
      Scc.Stats.total_shared_dram_loads
        (Scc.Engine.stats r.Cexec.Interp.engine)
    in
    {
      opt_label = label;
      opt_ncores = ncores;
      opt_naive_ms = float_of_int naive.Cexec.Interp.elapsed_ps /. 1e9;
      opt_o_ms = float_of_int opt.Cexec.Interp.elapsed_ps /. 1e9;
      opt_naive_loads = loads naive;
      opt_o_loads = loads opt;
      opt_speedup =
        float_of_int naive.Cexec.Interp.elapsed_ps
        /. float_of_int (max 1 opt.Cexec.Interp.elapsed_ps);
    }
  in
  [
    bench
      (Printf.sprintf "dot (n=512, reps=%d)" reps)
      nt
      (Csrc.dot_reps ~reps ~nt ~n:512);
    bench "hot-loop (steps=4096)" nt (Csrc.hot_loop ~nt ~steps:4096);
  ]

let opt_experiment ?scale () =
  let rows = opt_end_to_end ?scale () in
  let table =
    [ "Benchmark"; "Cores"; "Naive (ms)"; "-O (ms)"; "Shared loads";
      "Shared loads -O"; "Speedup" ]
    :: List.map
         (fun r ->
           [ r.opt_label;
             string_of_int r.opt_ncores;
             Printf.sprintf "%.3f" r.opt_naive_ms;
             Printf.sprintf "%.3f" r.opt_o_ms;
             string_of_int r.opt_naive_loads;
             string_of_int r.opt_o_loads;
             Printf.sprintf "%.2fx" r.opt_speedup ])
         rows
  in
  "Optimized translation: the shared-traffic optimizer (-O) on the \
   simulated SCC\n(PRE of shared loads + MPB software caching; both \
   runs print identical output)\n\n"
  ^ Tabulate.render table

(* --- characterization sweep (lib/synth) ----------------------------------- *)

(* Thousands of synthetic configs through the fixed-order domain pool:
   each config runs all four placement policies on its own engine, so the
   thunks are independent and [Pool.map_fixed] keeps the row order — and
   therefore the JSONL and every summary table — byte-identical for any
   [--jobs].  [Quick] is the CI grid; [Full] is the characterization grid
   EXPERIMENTS.md reports (hours of simulation). *)

type sweep_result = {
  sweep_jsonl : string;
  sweep_summary : string;
  sweep_configs : int;
  sweep_losses : Synth.Sweep.loss list;
}

let sweep_ratio rows num_policy den_policy =
  match
    ( Synth.Sweep.find_measurement rows num_policy,
      Synth.Sweep.find_measurement rows den_policy )
  with
  | Some n, Some d when d.Synth.Sweep.r_m.Synth.Kernel.m_elapsed_ps > 0 ->
      Some
        (float_of_int n.Synth.Sweep.r_m.Synth.Kernel.m_elapsed_ps
        /. float_of_int d.Synth.Sweep.r_m.Synth.Kernel.m_elapsed_ps)
  | _ -> None

let sweep_surface groups =
  (* one table per DVFS point: mean (all-dram / greedy) elapsed ratio
     over the configs at each (threads, sharing) cell *)
  let uniq f =
    List.sort_uniq compare
      (List.map (fun (sp, _) -> f sp) groups)
  in
  let dvfs_points = uniq (fun sp -> sp.Synth.Spec.dvfs_mhz) in
  let threads_vals = uniq (fun sp -> sp.Synth.Spec.threads) in
  let sharing_vals = uniq (fun sp -> sp.Synth.Spec.sharing) in
  let buf = Buffer.create 1024 in
  List.iter
    (fun dvfs ->
      Buffer.add_string buf
        (Printf.sprintf
           "Speedup of greedy placement over all-off-chip at %d MHz\n\
            (mean elapsed ratio all-dram / greedy; > 1.00x = greedy wins)\n\n"
           dvfs);
      let header =
        "threads \\ sharing"
        :: List.map string_of_int sharing_vals
      in
      let rows =
        List.map
          (fun t ->
            string_of_int t
            :: List.map
                 (fun d ->
                   let samples =
                     List.filter_map
                       (fun (sp, rows) ->
                         if
                           sp.Synth.Spec.threads = t
                           && sp.Synth.Spec.sharing = d
                           && sp.Synth.Spec.dvfs_mhz = dvfs
                         then
                           sweep_ratio rows Synth.Kernel.All_dram
                             Synth.Kernel.Greedy
                         else None)
                       groups
                   in
                   match samples with
                   | [] -> "-"
                   | l ->
                       Printf.sprintf "%.2fx"
                         (List.fold_left ( +. ) 0.0 l
                         /. float_of_int (List.length l)))
                 sharing_vals)
          threads_vals
      in
      Buffer.add_string buf (Tabulate.render (header :: rows));
      Buffer.add_char buf '\n')
    dvfs_points;
  Buffer.contents buf

let sweep_best_policy groups =
  (* a config's best policy is the argmin of elapsed time, ties going to
     the first policy in [Kernel.policies] order *)
  let best_of (_, rows) =
    let elapsed q =
      match Synth.Sweep.find_measurement rows q with
      | Some r -> r.Synth.Sweep.r_m.Synth.Kernel.m_elapsed_ps
      | None -> max_int
    in
    List.fold_left
      (fun acc q -> if elapsed q < elapsed acc then q else acc)
      (List.hd Synth.Kernel.policies)
      Synth.Kernel.policies
  in
  let bests = List.map best_of groups in
  Tabulate.render
    ([ "Policy"; "Fastest on (configs)" ]
    :: List.map
         (fun p ->
           [ Synth.Kernel.policy_to_string p;
             string_of_int (List.length (List.filter (fun b -> b = p) bests)) ])
         Synth.Kernel.policies)

let losses_report losses =
  match losses with
  | [] ->
      "Greedy-placement losses (> "
      ^ string_of_int Synth.Sweep.loss_threshold_pct
      ^ "% vs best forced alternative): none found on this grid.\n"
  | l ->
      Printf.sprintf
        "Greedy-placement losses (> %d%% vs best forced alternative): %d\n%s"
        Synth.Sweep.loss_threshold_pct (List.length l)
        (String.concat "\n"
           (List.map (fun x -> "  " ^ Synth.Sweep.loss_to_string x) l))
      ^ "\n"

let run_sweep ?(scale = Full) ?(jobs = 1) ?limit () =
  let g =
    match scale with Quick -> Synth.Spec.Quick | Full -> Synth.Spec.Full
  in
  let specs = Synth.Spec.grid g in
  let specs =
    match limit with
    | Some n when n >= 0 -> List.filteri (fun i _ -> i < n) specs
    | _ -> specs
  in
  let row_groups =
    Pool.map_fixed ~jobs
      (List.map (fun sp () -> Synth.Sweep.rows_of_spec sp) specs)
  in
  let groups = List.combine specs row_groups in
  let all_rows = List.concat row_groups in
  let jsonl = Synth.Sweep.jsonl_of_rows all_rows ^ "\n" in
  let losses = List.filter_map Synth.Sweep.loss_of_rows row_groups in
  let unverified =
    List.length
      (List.filter
         (fun r -> not r.Synth.Sweep.r_m.Synth.Kernel.m_verified)
         all_rows)
  in
  let summary =
    Printf.sprintf
      "Characterization sweep: %d configs x %d policies (grid=%s)\n\
       Row order is the canonical grid order; identical for any --jobs.\n\
       Verified: %s\n\n"
      (List.length specs)
      (List.length Synth.Kernel.policies)
      (Synth.Spec.grid_to_string g)
      (if unverified = 0 then "all rows"
       else Printf.sprintf "%d rows FAILED verification" unverified)
    ^ sweep_surface groups ^ "\n" ^ sweep_best_policy groups ^ "\n\n"
    ^ losses_report losses
  in
  { sweep_jsonl = jsonl;
    sweep_summary = summary;
    sweep_configs = List.length specs;
    sweep_losses = losses }

let sections =
  [ ("table-4.1", fun _scale -> table_4_1 ());
    ("table-4.2", fun _scale -> table_4_2 ());
    ("table-6.1", fun _scale -> table_6_1 ());
    ("translate-example", fun _scale -> translation_example ());
    ("fig-6.1", fun scale -> fig_6_1 ~scale ());
    ("fig-6.2", fun scale -> fig_6_2 ~scale ());
    ("fig-6.3", fun scale -> fig_6_3 ~scale ());
    ("ablation-partition", fun _scale -> ablation_partition ());
    ("interp", fun scale -> interp_experiment ~scale ());
    ("dvfs", fun scale -> dvfs_experiment ~scale ());
    ("sync", fun scale -> sync_sensitivity ~scale ());
    ("model-sensitivity", fun scale -> model_sensitivity ~scale ());
    ("many-to-one", fun scale -> many_to_one_scaling ~scale ());
    ("opt", fun scale -> opt_experiment ~scale ()) ]

let section_names = List.map fst sections

let run_all ?(scale = Full) ?(jobs = 1) () =
  (* Force the shared example session (and its memoized pipeline facts)
     in this domain before any worker can race to do it: from here on
     the session is only read. *)
  ignore (analysis_of_example ());
  let bodies =
    Pool.map_fixed ~jobs
      (List.map (fun (_, f) () -> f scale) sections)
  in
  let rule = String.make 72 '=' in
  Printf.sprintf "Scale: %s\n%s\n" (scale_to_string scale) rule
  ^ String.concat (Printf.sprintf "\n%s\n" rule) bodies

let run_section ?(scale = Full) ?(jobs = 1) name =
  match name with
  | "all" -> Ok (run_all ~scale ~jobs ())
  | "sweep" -> Ok ((run_sweep ~scale ~jobs ()).sweep_summary)
  | name -> begin
      match List.assoc_opt name sections with
      | Some f -> Ok (f scale)
      | None ->
          Error
            (Printf.sprintf "unknown section %S (have: all, sweep, %s)" name
               (String.concat ", " section_names))
    end
