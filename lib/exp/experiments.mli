(** The experiment harness: regenerates every table and figure of the
    paper's evaluation, plus the ablations DESIGN.md calls out. *)

type scale = Quick | Full

val scale_to_string : scale -> string

val suite : scale -> Workloads.Workload.t list
(** The six benchmarks at the given scale. *)

(** {1 Tables} *)

val table_4_1 : unit -> string
val table_4_2 : unit -> string
val table_6_1 : unit -> string

val translation_example : unit -> string
(** Example Code 4.1 through the full translator (the paper's Example
    Code 4.2), with pass notes. *)

(** {1 Figures} *)

type fig_6_1_row = {
  name : string;
  baseline_ms : float;
  rcce_ms : float;
  speedup : float;
  verified : bool;
}

val fig_6_1_data :
  ?scale:scale -> ?units:int -> unit -> fig_6_1_row list

val fig_6_1 : ?scale:scale -> ?units:int -> unit -> string

type fig_6_2_row = {
  name : string;
  off_chip_ms : float;
  mpb_ms : float;
  improvement : float;
  verified : bool;
  notes : string list;
}

val fig_6_2_data :
  ?scale:scale -> ?units:int -> unit -> fig_6_2_row list

val fig_6_2 : ?scale:scale -> ?units:int -> unit -> string

type fig_6_3_row = {
  cores : int;
  rcce_ms : float;
  speedup : float;
  energy_j : float;
}

val fig_6_3_core_counts : int list

val fig_6_3_data :
  ?scale:scale -> ?baseline_threads:int -> unit -> fig_6_3_row list

val fig_6_3 : ?scale:scale -> ?baseline_threads:int -> unit -> string

(** {1 Ablations} *)

val synthetic_items :
  count:int -> seed:int -> Partition.Partitioner.item list
(** Deterministic heavy-tailed variable population for the partitioning
    ablation. *)

val ablation_partition : unit -> string

type interp_row = {
  label : string;
  elapsed_ms : float;
  output : string;
}

val interp_end_to_end :
  ?scale:scale -> unit -> interp_row list * float
(** The Pi Pthread source interpreted directly vs its translated RCCE
    form; returns the two rows and the speedup. *)

val interp_experiment : ?scale:scale -> unit -> string

type dvfs_row = {
  freq_mhz : int;
  volts : float;
  watts : float;
  dvfs_ms : float;
  dvfs_energy_j : float;
}

val dvfs_points : int list

val dvfs_data : ?scale:scale -> unit -> dvfs_row list
(** The Pi benchmark across the SCC's DVFS envelope (section 5.1). *)

val dvfs_experiment : ?scale:scale -> unit -> string

type sync_row = {
  sync_name : string;
  sync_baseline_ms : float;
  sync_rcce_ms : float;
  sync_speedup : float;
}

val sync_sensitivity_data :
  ?scale:scale -> ?units:int -> unit -> sync_row list
(** Compute-bound (Pi) vs lock-bound (histogram) conversion speedups. *)

val sync_sensitivity : ?scale:scale -> ?units:int -> unit -> string

val model_sensitivity : ?scale:scale -> unit -> string
(** Blocking vs posted uncached shared stores on the memory-bound
    benchmarks. *)

val many_to_one_scaling : ?scale:scale -> unit -> string
(** Section 7.2: a program with more threads than cores, translated with
    the many-to-one task mapping and interpreted at several core
    counts. *)

type opt_row = {
  opt_label : string;
  opt_ncores : int;
  opt_naive_ms : float;
  opt_o_ms : float;
  opt_naive_loads : int;
  opt_o_loads : int;
  opt_speedup : float;
}

val opt_end_to_end : ?scale:scale -> unit -> opt_row list
(** Each shared-data-heavy benchmark translated twice (plain pipeline
    vs [-O]) and interpreted on the simulated chip; raises
    [Invalid_argument] if the optimizer changes a program's output. *)

val opt_experiment : ?scale:scale -> unit -> string

(** {1 Characterization sweep}

    Thousands of synthetic configs (lib/synth) through the fixed-order
    domain pool: speedup surfaces over threads x sharing-degree x
    placement x DVFS, plus the greedy-placement loss hunter. *)

type sweep_result = {
  sweep_jsonl : string;
      (** one JSONL line per (config, policy), trailing newline; row
          order is the canonical grid order *)
  sweep_summary : string;
      (** speedup surfaces, best-policy table, losses line *)
  sweep_configs : int;
  sweep_losses : Synth.Sweep.loss list;
}

val run_sweep :
  ?scale:scale -> ?jobs:int -> ?limit:int -> unit -> sweep_result
(** [Quick] runs {!Synth.Spec.grid} [Quick] (the CI grid, seconds);
    [Full] is the characterization grid EXPERIMENTS.md reports.  [limit]
    keeps only the first [n] configs of the grid (goldens).  Per-config
    work is an independent engine run, gathered fixed-order: the JSONL
    and summary are byte-identical for any [jobs]. *)

val losses_report : Synth.Sweep.loss list -> string
(** The [--find-losses] report; explicit wording when none were found. *)

val sections : (string * (scale -> string)) list
(** Every named section, in presentation order — the dispatch table
    behind [bin/experiments]. *)

val section_names : string list

val run_all : ?scale:scale -> ?jobs:int -> unit -> string
(** Every section, concatenated — what [bin/experiments] prints.  With
    [jobs > 1] the sections run across an OCaml 5 domain pool
    ({!Pool.map_fixed}); the gather is fixed-order, so the output is
    byte-identical for any [jobs]. *)

val run_section :
  ?scale:scale -> ?jobs:int -> string -> (string, string) result
(** Dispatch one section by name ("all" for {!run_all}).  [Error]
    carries the unknown-section message; the CLI maps it to exit
    status 2. *)
