(* A fixed-order domain pool for the experiment sweeps.

   Thunks are claimed by index from a single atomic counter, executed on
   [jobs] domains, and gathered into an array slot keyed by the claim
   index — so the result order is the input order no matter which domain
   finished first, and concatenated output is byte-identical to a
   sequential run.  [jobs = 1] bypasses the pool entirely and runs in
   the calling domain, giving a true sequential reference.

   A thunk that raises poisons only its own slot; the first failure (in
   input order, not completion order) is re-raised in the caller once
   every domain has been joined, so no domain is ever left running. *)

let default_jobs () = Domain.recommended_domain_count ()

let map_fixed ~jobs thunks =
  let n = List.length thunks in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then List.map (fun f -> f ()) thunks
  else begin
    let work = Array.of_list thunks in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match work.(i) () with
             | v -> Some (Ok v)
             | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> invalid_arg "Pool.map_fixed: unclaimed slot")
  end
