(** A fixed-order domain pool: run independent thunks on OCaml 5 domains
    and gather their results in input order, so output built from the
    results is byte-identical to a sequential run. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_fixed : jobs:int -> (unit -> 'a) list -> 'a list
(** Run the thunks on [jobs] domains (clamped to [1 .. length]); results
    are returned in input order.  [jobs = 1] runs sequentially in the
    calling domain without spawning.  If any thunk raises, the exception
    of the earliest failing index is re-raised after all domains have
    been joined. *)
