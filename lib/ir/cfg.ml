open Cfront

(* Intraprocedural control-flow graph.

   Elementary statements (expressions, declarations, returns) and branch
   conditions become nodes; structured control flow becomes edges.  The
   graph always has a single entry and a single exit node. *)

type node_kind =
  | Entry
  | Exit
  | Statement of Ast.stmt      (* Sexpr / Sdecl / Sreturn / Snull *)
  | Condition of Ast.expr      (* if/while/do/for condition *)
  | Join                       (* structured merge point *)

type node = {
  id : int;
  kind : node_kind;
  mutable succs : int list;
  mutable preds : int list;
}

type polarity = True_branch | False_branch | Either

type t = {
  func : Ast.func;
  nodes : node array;
  entry : int;
  exit : int;
  marks : (int * int, bool) Hashtbl.t;
}

type builder = {
  mutable acc : node list;   (* reverse order *)
  mutable count : int;
  bmarks : (int * int, bool) Hashtbl.t;
}

let new_node b kind =
  let n = { id = b.count; kind; succs = []; preds = [] } in
  b.count <- b.count + 1;
  b.acc <- n :: b.acc;
  n

let add_edge src dst =
  if not (List.mem dst.id src.succs) then begin
    src.succs <- dst.id :: src.succs;
    dst.preds <- src.id :: dst.preds
  end

(* Edges added out of [cnode] since [before] carry branch polarity [pol].
   A destination reachable under both polarities (e.g. an empty branch
   falling through to the same node) loses its mark and stays [Either]. *)
let mark_new_edges b cnode ~before pol =
  List.iter
    (fun dst ->
      if not (List.mem dst before) then
        let key = (cnode.id, dst) in
        match Hashtbl.find_opt b.bmarks key with
        | Some p when p <> pol -> Hashtbl.remove b.bmarks key
        | Some _ -> ()
        | None -> Hashtbl.replace b.bmarks key pol)
    cnode.succs

(* Lower a statement list.  [preds] are the nodes whose control falls into
   this construct; the result is the set of nodes falling out of it.
   [brk]/[cont] collect break/continue sources; [ret] collects returns. *)
let rec lower_stmts b ~brk ~cont ~ret preds stmts =
  List.fold_left (fun preds s -> lower_stmt b ~brk ~cont ~ret preds s)
    preds stmts

and lower_stmt b ~brk ~cont ~ret preds (s : Ast.stmt) =
  let connect_to node = List.iter (fun p -> add_edge p node) preds in
  match s.Ast.s_desc with
  | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Snull ->
      let n = new_node b (Statement s) in
      connect_to n;
      [ n ]
  | Ast.Sreturn _ ->
      let n = new_node b (Statement s) in
      connect_to n;
      ret := n :: !ret;
      []
  | Ast.Sbreak ->
      brk := preds @ !brk;
      []
  | Ast.Scontinue ->
      cont := preds @ !cont;
      []
  | Ast.Sblock stmts -> lower_stmts b ~brk ~cont ~ret preds stmts
  | Ast.Sif (c, then_branch, else_branch) -> begin
      let cnode = new_node b (Condition c) in
      connect_to cnode;
      let before = cnode.succs in
      let then_out = lower_stmt b ~brk ~cont ~ret [ cnode ] then_branch in
      mark_new_edges b cnode ~before true;
      match else_branch with
      | None -> cnode :: then_out
      | Some else_branch ->
          let before = cnode.succs in
          let else_out = lower_stmt b ~brk ~cont ~ret [ cnode ] else_branch in
          mark_new_edges b cnode ~before false;
          then_out @ else_out
    end
  | Ast.Swhile (c, body) ->
      let cnode = new_node b (Condition c) in
      connect_to cnode;
      let inner_brk = ref [] and inner_cont = ref [] in
      let before = cnode.succs in
      let body_out =
        lower_stmt b ~brk:inner_brk ~cont:inner_cont ~ret [ cnode ] body
      in
      mark_new_edges b cnode ~before true;
      List.iter (fun n -> add_edge n cnode) (body_out @ !inner_cont);
      cnode :: !inner_brk
  | Ast.Sdo (body, c) ->
      (* the body needs a stable head to receive the back edge *)
      let head = new_node b Join in
      connect_to head;
      let inner_brk = ref [] and inner_cont = ref [] in
      let body_out =
        lower_stmt b ~brk:inner_brk ~cont:inner_cont ~ret [ head ] body
      in
      let cnode = new_node b (Condition c) in
      List.iter (fun n -> add_edge n cnode) (body_out @ !inner_cont);
      add_edge cnode head;
      Hashtbl.replace b.bmarks (cnode.id, head.id) true;
      cnode :: !inner_brk
  | Ast.Sfor (init, cond, step, body) ->
      let preds =
        match init with
        | Ast.For_none -> preds
        | Ast.For_expr e ->
            let n =
              new_node b
                (Statement (Ast.stmt ~loc:s.Ast.s_loc (Ast.Sexpr e)))
            in
            connect_to n;
            [ n ]
        | Ast.For_decl ds ->
            let n =
              new_node b
                (Statement (Ast.stmt ~loc:s.Ast.s_loc (Ast.Sdecl ds)))
            in
            connect_to n;
            [ n ]
      in
      let head =
        match cond with
        | Some c -> new_node b (Condition c)
        | None -> new_node b Join
      in
      List.iter (fun p -> add_edge p head) preds;
      let inner_brk = ref [] and inner_cont = ref [] in
      let before = head.succs in
      let body_out =
        lower_stmt b ~brk:inner_brk ~cont:inner_cont ~ret [ head ] body
      in
      if cond <> None then mark_new_edges b head ~before true;
      let back_sources =
        match step with
        | None -> body_out @ !inner_cont
        | Some e ->
            let n =
              new_node b
                (Statement (Ast.stmt ~loc:s.Ast.s_loc (Ast.Sexpr e)))
            in
            List.iter (fun p -> add_edge p n) (body_out @ !inner_cont);
            [ n ]
      in
      List.iter (fun n -> add_edge n head) back_sources;
      let exits = if cond = None then [] else [ head ] in
      exits @ !inner_brk

let build (func : Ast.func) =
  let b = { acc = []; count = 0; bmarks = Hashtbl.create 16 } in
  let entry = new_node b Entry in
  let ret = ref [] in
  let brk = ref [] and cont = ref [] in
  let out = lower_stmts b ~brk ~cont ~ret [ entry ] func.Ast.f_body in
  let exit = new_node b Exit in
  List.iter (fun n -> add_edge n exit) (out @ !ret);
  (* break/continue outside a loop: treat as flowing to exit *)
  List.iter (fun n -> add_edge n exit) (!brk @ !cont);
  let nodes = Array.make b.count entry in
  List.iter (fun n -> nodes.(n.id) <- n) b.acc;
  (* A two-way condition with exactly one marked edge gives the other edge
     the opposite polarity (if-without-else fallthrough, loop exit). *)
  Array.iter
    (fun n ->
      match n.kind with
      | Condition _ -> begin
          match n.succs with
          | [ s1; s2 ] -> begin
              match
                ( Hashtbl.find_opt b.bmarks (n.id, s1),
                  Hashtbl.find_opt b.bmarks (n.id, s2) )
              with
              | Some p, None -> Hashtbl.replace b.bmarks (n.id, s2) (not p)
              | None, Some p -> Hashtbl.replace b.bmarks (n.id, s1) (not p)
              | _ -> ()
            end
          | _ -> ()
        end
      | _ -> ())
    nodes;
  { func; nodes; entry = entry.id; exit = exit.id; marks = b.bmarks }

let node t id = t.nodes.(id)
let length t = Array.length t.nodes

let edge_polarity t ~src ~dst =
  match (node t src).kind with
  | Condition _ -> begin
      match Hashtbl.find_opt t.marks (src, dst) with
      | Some true -> True_branch
      | Some false -> False_branch
      | None -> Either
    end
  | _ -> Either

let exprs_of_node n =
  match n.kind with
  | Entry | Exit | Join -> []
  | Condition e -> [ e ]
  | Statement s -> Visit.shallow_exprs s

(* Reverse-post-order from entry, for fast dataflow convergence. *)
let reverse_postorder t =
  let visited = Array.make (length t) false in
  let order = ref [] in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs t.nodes.(id).succs;
      order := id :: !order
    end
  in
  dfs t.entry;
  !order

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n" t.func.Ast.f_name);
  Array.iter
    (fun n ->
      let label =
        match n.kind with
        | Entry -> "entry"
        | Exit -> "exit"
        | Join -> "join"
        | Condition e -> "if " ^ Pretty.expr e
        | Statement s -> String.trim (Pretty.stmt s)
      in
      let label = String.map (fun c -> if c = '"' then '\'' else c) label in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" n.id label);
      List.iter
        (fun succ ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n.id succ))
        n.succs)
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
