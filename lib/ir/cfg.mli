open Cfront

(** Intraprocedural control-flow graph.

    Elementary statements and branch conditions become nodes; structured
    control flow becomes edges.  The graph has a single entry and a single
    exit node. *)

type node_kind =
  | Entry
  | Exit
  | Statement of Ast.stmt  (** [Sexpr] / [Sdecl] / [Sreturn] / [Snull] *)
  | Condition of Ast.expr  (** if/while/do/for condition *)
  | Join                   (** structured merge point *)

type node = {
  id : int;
  kind : node_kind;
  mutable succs : int list;
  mutable preds : int list;
}

type polarity = True_branch | False_branch | Either

type t = {
  func : Ast.func;
  nodes : node array;
  entry : int;
  exit : int;
  marks : (int * int, bool) Hashtbl.t;  (** branch polarity per (src, dst) *)
}

val build : Ast.func -> t

val node : t -> int -> node
val length : t -> int

val edge_polarity : t -> src:int -> dst:int -> polarity
(** Which outcome of the [src] condition the edge to [dst] represents.
    [Either] when the edge is not out of a condition or when the builder
    could not attribute a single polarity (e.g. a branch that is a bare
    [break]); consumers must then assume both outcomes flow along it. *)

val exprs_of_node : node -> Ast.expr list
(** Expressions evaluated at this node. *)

val reverse_postorder : t -> int list
(** Node ids in reverse post-order from the entry (good iteration order for
    forward dataflow). *)

val to_dot : t -> string
(** Graphviz rendering, for debugging. *)
