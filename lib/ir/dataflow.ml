(* Generic forward dataflow solver: worklist iteration to a fixed point
   over a CFG, visiting nodes in reverse post-order. *)

module type DOMAIN = sig
  type t

  val bottom : t
  (** State for unreached program points. *)

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound at control-flow merges. *)
end

module type S = sig
  type fact

  type result = { in_facts : fact array; out_facts : fact array }

  val solve :
    Cfg.t -> init:fact -> transfer:(Cfg.node -> fact -> fact) -> result
end

module type WIDEN_DOMAIN = sig
  include DOMAIN

  val widen : t -> t -> t
  (** [widen old next] over-approximates [join old next] and guarantees
      that repeated widening of a growing chain stabilizes. *)
end

module type BRANCHING = sig
  type fact

  type result = { in_facts : fact array; out_facts : fact array }

  val solve :
    ?branch:(Cfg.node -> Cfront.Ast.expr -> bool -> fact -> fact) ->
    Cfg.t ->
    init:fact ->
    transfer:(Cfg.node -> fact -> fact) ->
    result
end

module Forward (D : DOMAIN) : S with type fact = D.t = struct
  type fact = D.t

  type result = { in_facts : fact array; out_facts : fact array }

  let solve (cfg : Cfg.t) ~init ~transfer =
    let n = Cfg.length cfg in
    let in_facts = Array.make n D.bottom in
    let out_facts = Array.make n D.bottom in
    in_facts.(cfg.Cfg.entry) <- init;
    let order = Array.of_list (Cfg.reverse_postorder cfg) in
    let changed = ref true in
    (* Reverse post-order sweeps; loops converge in a few passes because
       the domain joins are monotone. *)
    while !changed do
      changed := false;
      Array.iter
        (fun id ->
          let node = Cfg.node cfg id in
          let input =
            if id = cfg.Cfg.entry then init
            else
              List.fold_left
                (fun acc p -> D.join acc out_facts.(p))
                D.bottom node.Cfg.preds
          in
          let output = transfer node input in
          if
            (not (D.equal input in_facts.(id)))
            || not (D.equal output out_facts.(id))
          then begin
            in_facts.(id) <- input;
            out_facts.(id) <- output;
            changed := true
          end)
        order
    done;
    { in_facts; out_facts }
end

(* Widening variant for infinite-height domains (intervals).  Differs from
   [Forward] in two ways: condition nodes may refine the fact flowing along
   each out-edge according to its branch polarity, and targets of retreating
   edges (loop heads in reverse post-order) apply [widen] instead of plain
   [join] so iteration terminates. *)
module Forward_widen (D : WIDEN_DOMAIN) : BRANCHING with type fact = D.t =
struct
  type fact = D.t

  type result = { in_facts : fact array; out_facts : fact array }

  let solve ?branch (cfg : Cfg.t) ~init ~transfer =
    let n = Cfg.length cfg in
    let in_facts = Array.make n D.bottom in
    let out_facts = Array.make n D.bottom in
    let order = Array.of_list (Cfg.reverse_postorder cfg) in
    let rpo_index = Array.make n max_int in
    Array.iteri (fun i id -> rpo_index.(id) <- i) order;
    let widen_point = Array.make n false in
    Array.iter
      (fun (nd : Cfg.node) ->
        List.iter
          (fun s ->
            if rpo_index.(s) <> max_int && rpo_index.(s) <= rpo_index.(nd.Cfg.id)
            then widen_point.(s) <- true)
          nd.Cfg.succs)
      cfg.Cfg.nodes;
    (* Fact carried by the edge [p -> id]: the out-fact of [p], refined by
       the branch outcome when [p] is a condition and a refiner is given. *)
    let edge_fact p id =
      let o = out_facts.(p) in
      match branch with
      | None -> o
      | Some refine -> begin
          match (Cfg.node cfg p).Cfg.kind with
          | Cfg.Condition e -> begin
              match Cfg.edge_polarity cfg ~src:p ~dst:id with
              | Cfg.True_branch -> refine (Cfg.node cfg p) e true o
              | Cfg.False_branch -> refine (Cfg.node cfg p) e false o
              | Cfg.Either ->
                  D.join
                    (refine (Cfg.node cfg p) e true o)
                    (refine (Cfg.node cfg p) e false o)
            end
          | _ -> o
        end
    in
    let visited = Array.make n false in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun id ->
          let node = Cfg.node cfg id in
          let input =
            if id = cfg.Cfg.entry then init
            else
              List.fold_left
                (fun acc p -> D.join acc (edge_fact p id))
                D.bottom node.Cfg.preds
          in
          let input =
            if widen_point.(id) then
              D.widen in_facts.(id) (D.join in_facts.(id) input)
            else input
          in
          let output = transfer node input in
          if
            (not visited.(id))
            || (not (D.equal input in_facts.(id)))
            || not (D.equal output out_facts.(id))
          then begin
            visited.(id) <- true;
            in_facts.(id) <- input;
            out_facts.(id) <- output;
            changed := true
          end)
        order
    done;
    { in_facts; out_facts }
end
