(** Generic forward dataflow solver over a {!Cfg}. *)

module type DOMAIN = sig
  type t

  val bottom : t
  (** State for unreached program points. *)

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound at control-flow merges; must be monotone for the
      solver to terminate. *)
end

module type S = sig
  type fact

  type result = { in_facts : fact array; out_facts : fact array }
  (** Facts indexed by {!Cfg.node} id, before and after each node. *)

  val solve :
    Cfg.t -> init:fact -> transfer:(Cfg.node -> fact -> fact) -> result
  (** Worklist iteration to a fixed point; [init] is the entry fact. *)
end

module Forward (D : DOMAIN) : S with type fact = D.t

module type WIDEN_DOMAIN = sig
  include DOMAIN

  val widen : t -> t -> t
  (** [widen old next] over-approximates [join old next] and guarantees
      that repeated widening of a growing chain stabilizes. *)
end

module type BRANCHING = sig
  type fact

  type result = { in_facts : fact array; out_facts : fact array }

  val solve :
    ?branch:(Cfg.node -> Cfront.Ast.expr -> bool -> fact -> fact) ->
    Cfg.t ->
    init:fact ->
    transfer:(Cfg.node -> fact -> fact) ->
    result
  (** Like {!S.solve}, plus: [branch node cond outcome fact] refines the
      fact flowing along a condition out-edge of known polarity (consulted
      via {!Cfg.edge_polarity}), and facts entering targets of retreating
      edges are widened so infinite-height domains terminate. *)
end

module Forward_widen (D : WIDEN_DOMAIN) : BRANCHING with type fact = D.t
(** Widening forward solver for abstract-interpretation domains such as
    intervals: plain [join] at acyclic merges, [widen] at loop heads. *)
