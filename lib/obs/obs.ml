(* Shared observability core (see obs.mli).

   Instruments never read a clock themselves: timestamps are integers in
   an explicit unit handed in by the owner, which is what lets the
   simulator feed deterministic picoseconds through the exact same
   counters and spans the compiler feeds wall-clock nanoseconds. *)

type time_unit = Picoseconds | Nanoseconds

let us_of unit t =
  match unit with
  | Picoseconds -> float_of_int t /. 1e6
  | Nanoseconds -> float_of_int t /. 1e3

let wall_clock_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- counters ------------------------------------------------------------- *)

module Counter = struct
  type t = {
    c_name : string;
    c_help : string;
    c_labels : (string * string) list;   (* sorted by key at [make] *)
    mutable c_value : int;
  }

  let make ~name ?(labels = []) ~help () =
    let labels =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    { c_name = name; c_help = help; c_labels = labels; c_value = 0 }

  let name c = c.c_name
  let help c = c.c_help
  let labels c = c.c_labels
  let value c = c.c_value
  let incr c = c.c_value <- c.c_value + 1

  let add c n =
    if n < 0 then invalid_arg "Obs.Counter.add: counters are monotonic";
    c.c_value <- c.c_value + n

  (* Prometheus-style label set, e.g. {partition="3"}; "" when unlabelled. *)
  let label_string c =
    match c.c_labels with
    | [] -> ""
    | ls ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) ls)
        ^ "}"
end

(* --- histograms ------------------------------------------------------------ *)

module Histogram = struct
  type t = {
    h_name : string;
    h_help : string;
    h_bounds : int array;   (* strictly increasing upper bounds *)
    h_counts : int array;   (* one per bound, plus the +Inf bucket *)
    mutable h_sum : int;
    mutable h_count : int;
  }

  let make ~name ~help ~bounds =
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Obs.Histogram: no buckets";
    for i = 1 to n - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Obs.Histogram: bounds must be strictly increasing"
    done;
    {
      h_name = name;
      h_help = help;
      h_bounds = Array.copy bounds;
      h_counts = Array.make (n + 1) 0;
      h_sum = 0;
      h_count = 0;
    }

  let name h = h.h_name
  let bounds h = Array.copy h.h_bounds

  let observe h v =
    let n = Array.length h.h_bounds in
    (* buckets are few and fixed: a linear scan beats binary search *)
    let i = ref 0 in
    while !i < n && v > h.h_bounds.(!i) do
      incr i
    done;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1;
    h.h_sum <- h.h_sum + v;
    h.h_count <- h.h_count + 1

  let count h = h.h_count
  let sum h = h.h_sum
  let bucket_counts h = Array.copy h.h_counts
end

(* --- table rendering --------------------------------------------------------- *)

let render_table rows =
  match rows with
  | [] -> ""
  | _ ->
      let ncols =
        List.fold_left (fun acc r -> max acc (List.length r)) 0 rows
      in
      let widths = Array.make ncols 0 in
      List.iter
        (List.iteri (fun i cell ->
             widths.(i) <- max widths.(i) (String.length cell)))
        rows;
      let buf = Buffer.create 256 in
      List.iter
        (fun row ->
          List.iteri
            (fun i cell ->
              if i > 0 then Buffer.add_string buf "  ";
              Buffer.add_string buf cell;
              if i < List.length row - 1 then
                Buffer.add_string buf
                  (String.make (widths.(i) - String.length cell) ' '))
            row;
          Buffer.add_char buf '\n')
        rows;
      Buffer.contents buf

(* --- registry and sinks ----------------------------------------------------- *)

module Registry = struct
  type item = C of Counter.t | H of Histogram.t

  type t = {
    tbl : (string, item) Hashtbl.t;
    mutable order : string list;   (* reverse registration order *)
  }

  let create () = { tbl = Hashtbl.create 16; order = [] }

  let register t key item =
    Hashtbl.replace t.tbl key item;
    t.order <- key :: t.order

  (* Counters are keyed by name + label set, so one metric family can
     hold many labelled children (sim_domain_events_total{partition="N"}). *)
  let counter t ?(help = "") ?(labels = []) name =
    let probe = Counter.make ~name ~labels ~help () in
    let key = name ^ Counter.label_string probe in
    match Hashtbl.find_opt t.tbl key with
    | Some (C c) -> c
    | Some (H _) -> invalid_arg ("Obs.Registry.counter: " ^ key ^ " is a histogram")
    | None ->
        register t key (C probe);
        probe

  let histogram t ?(help = "") ~bounds name =
    match Hashtbl.find_opt t.tbl name with
    | Some (H h) -> h
    | Some (C _) -> invalid_arg ("Obs.Registry.histogram: " ^ name ^ " is a counter")
    | None ->
        let h = Histogram.make ~name ~help ~bounds in
        register t name (H h);
        h

  let items t =
    List.rev_map (fun name -> Hashtbl.find t.tbl name) t.order

  let emit_histogram buf h =
    let name = Histogram.name h in
    if h.Histogram.h_help <> "" then
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" name h.Histogram.h_help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
    let bounds = Histogram.bounds h in
    let counts = Histogram.bucket_counts h in
    let cum = ref 0 in
    Array.iteri
      (fun i b ->
        cum := !cum + counts.(i);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name b !cum))
      bounds;
    cum := !cum + counts.(Array.length bounds);
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name !cum);
    Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name (Histogram.sum h));
    Buffer.add_string buf
      (Printf.sprintf "%s_count %d\n" name (Histogram.count h))

  (* Prometheus text exposition: [le] labels are cumulative and include
     the implicit +Inf bucket; metric names pass through unsanitized
     (callers pick exposition-safe names).  Labelled counters sharing a
     family name are grouped under one # HELP / # TYPE header, per the
     exposition format's one-header-per-family rule. *)
  let to_prometheus t =
    let buf = Buffer.create 1024 in
    (* group items by metric family, preserving first-registration order *)
    let fam_order = ref [] in
    let fams : (string, item list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun item ->
        let fam =
          match item with C c -> Counter.name c | H h -> Histogram.name h
        in
        match Hashtbl.find_opt fams fam with
        | Some cell -> cell := item :: !cell
        | None ->
            Hashtbl.add fams fam (ref [ item ]);
            fam_order := fam :: !fam_order)
      (items t);
    List.iter
      (fun fam ->
        let members = List.rev !(Hashtbl.find fams fam) in
        let help =
          List.fold_left
            (fun acc item ->
              if acc <> "" then acc
              else
                match item with
                | C c -> Counter.help c
                | H h -> h.Histogram.h_help)
            "" members
        in
        (match members with
        | C _ :: _ ->
            if help <> "" then
              Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam help);
            Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" fam)
        | _ -> ());
        List.iter
          (fun item ->
            match item with
            | C c ->
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %d\n" fam (Counter.label_string c)
                     (Counter.value c))
            | H h -> emit_histogram buf h)
          members)
      (List.rev !fam_order);
    Buffer.contents buf

  let to_jsonl t =
    let buf = Buffer.create 1024 in
    List.iter
      (fun item ->
        (match item with
        | C c ->
            let labels =
              match Counter.labels c with
              | [] -> ""
              | ls ->
                  Printf.sprintf {|,"labels":{%s}|}
                    (String.concat ","
                       (List.map
                          (fun (k, v) ->
                            Printf.sprintf {|"%s":"%s"|} (json_escape k)
                              (json_escape v))
                          ls))
            in
            Buffer.add_string buf
              (Printf.sprintf
                 {|{"type":"counter","name":"%s"%s,"value":%d}|}
                 (json_escape (Counter.name c))
                 labels (Counter.value c))
        | H h ->
            let bounds = Histogram.bounds h in
            let counts = Histogram.bucket_counts h in
            Buffer.add_string buf
              (Printf.sprintf
                 {|{"type":"histogram","name":"%s","sum":%d,"count":%d,"bounds":[%s],"counts":[%s]}|}
                 (json_escape (Histogram.name h))
                 (Histogram.sum h) (Histogram.count h)
                 (String.concat ","
                    (Array.to_list (Array.map string_of_int bounds)))
                 (String.concat ","
                    (Array.to_list (Array.map string_of_int counts)))));
        Buffer.add_char buf '\n')
      (items t);
    Buffer.contents buf

  let to_table t =
    let rows =
      List.map
        (fun item ->
          match item with
          | C c ->
              [ Counter.name c ^ Counter.label_string c;
                "counter";
                string_of_int (Counter.value c) ]
          | H h ->
              [ Histogram.name h;
                "histogram";
                Printf.sprintf "count=%d sum=%d" (Histogram.count h)
                  (Histogram.sum h) ])
        (items t)
    in
    render_table ([ "name"; "kind"; "value" ] :: rows)
end

(* --- Chrome trace events ------------------------------------------------------ *)

module Chrome = struct
  type flow_phase = Flow_start | Flow_step | Flow_end

  type event =
    | Flow of {
        name : string;
        cat : string;
        id : int;
        pid : int;
        tid : int;
        ts_us : float;
        phase : flow_phase;
      }
    | Complete of {
        name : string;
        cat : string;
        pid : int;
        tid : int;
        ts_us : float;
        dur_us : float;
        args : (string * string) list;
      }
    | Counter of {
        name : string;
        pid : int;
        ts_us : float;
        series : (string * float) list;
      }
    | Process_name of { pid : int; name : string }
    | Thread_name of { pid : int; tid : int; name : string }

  let args_json args =
    String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
         args)

  let event_json = function
    | Flow { name; cat; id; pid; tid; ts_us; phase } ->
        let ph, extra =
          match phase with
          | Flow_start -> "s", ""
          | Flow_step -> "t", ""
          (* bp:e binds the terminator to its enclosing slice, so the
             arrow lands on the slice the final event charged *)
          | Flow_end -> "f", {|,"bp":"e"|}
        in
        Printf.sprintf
          {|{"name":"%s","cat":"%s","ph":"%s","id":%d,"ts":%.3f,"pid":%d,"tid":%d%s}|}
          (json_escape name) (json_escape cat) ph id ts_us pid tid extra
    | Complete { name; cat; pid; tid; ts_us; dur_us; args } ->
        let base =
          Printf.sprintf
            {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d|}
            (json_escape name) (json_escape cat) ts_us dur_us pid tid
        in
        if args = [] then base ^ "}"
        else Printf.sprintf {|%s,"args":{%s}}|} base (args_json args)
    | Counter { name; pid; ts_us; series } ->
        Printf.sprintf
          {|{"name":"%s","ph":"C","ts":%.3f,"pid":%d,"args":{%s}}|}
          (json_escape name) ts_us pid
          (String.concat ","
             (List.map
                (fun (k, v) ->
                  Printf.sprintf {|"%s":%.4f|} (json_escape k) v)
                series))
    | Process_name { pid; name } ->
        Printf.sprintf
          {|{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"%s"}}|}
          pid (json_escape name)
    | Thread_name { pid; tid; name } ->
        Printf.sprintf
          {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
          pid tid (json_escape name)

  let to_json events =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "[";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (event_json e))
      events;
    Buffer.add_string buf "]\n";
    Buffer.contents buf

  (* Splice new events into an existing JSON array so sequential tools
     (hsmcc translate --trace, then simrun --trace) build one combined
     Perfetto trace.  Anything that is not recognisably a JSON array is
     overwritten. *)
  let existing_array_body path =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        let s =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let s = String.trim s in
        let n = String.length s in
        if n >= 2 && s.[0] = '[' && s.[n - 1] = ']' then
          let body = String.trim (String.sub s 1 (n - 2)) in
          if body = "" then None else Some body
        else None

  let write_merge path events =
    let body = existing_array_body path in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "[";
        (match body with
        | Some b ->
            output_string oc b;
            if events <> [] then output_string oc ",\n"
        | None -> ());
        List.iteri
          (fun i e ->
            if i > 0 then output_string oc ",\n";
            output_string oc (event_json e))
          events;
        output_string oc "]\n")
end

(* --- spans --------------------------------------------------------------------- *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_pid : int;
  sp_tid : int;
  sp_start : int;
  sp_dur : int;
  sp_args : (string * string) list;
}

module Spans = struct
  type t = {
    unit_ : time_unit;
    epoch : int;
    mutable spans : span list;   (* reverse recording order *)
    mutable count : int;
  }

  let create ?(epoch = 0) unit_ = { unit_; epoch; spans = []; count = 0 }

  let time_unit t = t.unit_

  let record t ~name ?(cat = "") ?(args = []) ~pid ~tid ~start ~dur () =
    t.spans <-
      {
        sp_name = name;
        sp_cat = cat;
        sp_pid = pid;
        sp_tid = tid;
        sp_start = start - t.epoch;
        sp_dur = max 0 dur;
        sp_args = args;
      }
      :: t.spans;
    t.count <- t.count + 1

  let spans t = List.rev t.spans

  let length t = t.count

  let to_chrome t =
    List.map
      (fun s ->
        Chrome.Complete
          {
            name = s.sp_name;
            cat = s.sp_cat;
            pid = s.sp_pid;
            tid = s.sp_tid;
            ts_us = us_of t.unit_ s.sp_start;
            dur_us = us_of t.unit_ s.sp_dur;
            args = s.sp_args;
          })
      (spans t)
end
