(** Shared observability core: monotonic counters, fixed-bucket
    histograms, and nestable spans over an {e explicit} time source —
    simulated picoseconds in the engine, wall-clock nanoseconds in the
    compiler — with pluggable sinks (human table, JSON-lines, Chrome
    trace, Prometheus-style text exposition).

    Nothing here reads a clock on its own: every instrument is fed
    integer timestamps by its owner, so the same code serves both the
    deterministic simulator (where "time" is the DES clock) and the
    compiler (where it is [wall_clock_ns]). *)

type time_unit = Picoseconds | Nanoseconds

val us_of : time_unit -> int -> float
(** Convert a raw timestamp to the microseconds the Chrome trace format
    expects. *)

val wall_clock_ns : unit -> int
(** Wall-clock time in integer nanoseconds (for [Nanoseconds] spans). *)

val json_escape : string -> string

(** {1 Counters} *)

module Counter : sig
  type t

  val name : t -> string
  val help : t -> string

  val labels : t -> (string * string) list
  (** Label pairs, sorted by key.  Empty for unlabelled counters. *)

  val label_string : t -> string
  (** Prometheus-style rendering of the label set, e.g.
      [{partition="3"}]; [""] when unlabelled. *)

  val value : t -> int
  val incr : t -> unit
  val add : t -> int -> unit
  (** Monotonic: [add] of a negative amount raises [Invalid_argument]. *)
end

(** {1 Fixed-bucket histograms} *)

module Histogram : sig
  type t

  val name : t -> string
  val bounds : t -> int array
  (** Upper bounds (inclusive), strictly increasing; an implicit +Inf
      bucket follows the last bound. *)

  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int

  val bucket_counts : t -> int array
  (** Per-bucket (non-cumulative) counts; length [bounds + 1], the last
      entry being the +Inf overflow bucket. *)
end

(** {1 Registry and sinks} *)

module Registry : sig
  type t

  val create : unit -> t

  val counter :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
  (** Idempotent per (name, label set): a second call with the same name
      and labels returns the first counter; distinct label sets under one
      name form a labelled metric family. *)

  val histogram : t -> ?help:string -> bounds:int array -> string -> Histogram.t

  val to_prometheus : t -> string
  (** Prometheus text exposition format (counters and histograms, with
      cumulative [le] buckets, [_sum] and [_count] series).  Labelled
      counters sharing a family name are grouped under a single
      [# HELP] / [# TYPE] header, one [name{k="v"} value] line each. *)

  val to_jsonl : t -> string
  (** One JSON object per line, one line per instrument. *)

  val to_table : t -> string
  (** Fixed-column human table. *)
end

(** {1 Chrome trace events}

    The subset of the Chrome tracing JSON format Perfetto needs: complete
    ("X") duration events, counter ("C") events, and process/thread
    metadata ("M") events.  Timestamps are microseconds. *)

module Chrome : sig
  type flow_phase = Flow_start | Flow_step | Flow_end

  type event =
    | Flow of {
        name : string;
        cat : string;
        id : int;   (** all events of one flow chain share an id *)
        pid : int;
        tid : int;
        ts_us : float;
        phase : flow_phase;
      }  (** Flow arrows ("s"/"t"/"f" events): Perfetto draws an arrow
             chain through the slices enclosing each flow event — used
             for the critical path through the simulated run.  A
             well-formed chain starts with [Flow_start] and ends with
             [Flow_end]. *)
    | Complete of {
        name : string;
        cat : string;
        pid : int;
        tid : int;
        ts_us : float;
        dur_us : float;
        args : (string * string) list;
      }
    | Counter of {
        name : string;
        pid : int;
        ts_us : float;
        series : (string * float) list;
      }
    | Process_name of { pid : int; name : string }
    | Thread_name of { pid : int; tid : int; name : string }

  val to_json : event list -> string
  (** A complete JSON array document. *)

  val write_merge : string -> event list -> unit
  (** Write [events] to a file as a JSON array; when the file already
      holds a JSON array (for example the other half of a
      compile-then-simulate run), the new events are appended inside the
      existing array, so compiler and simulator tracks land in one
      Perfetto-loadable trace. *)
end

(** {1 Spans} *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_pid : int;
  sp_tid : int;
  sp_start : int;  (** in the owner's [time_unit], relative to the epoch *)
  sp_dur : int;
  sp_args : (string * string) list;
}

module Spans : sig
  type t

  val create : ?epoch:int -> time_unit -> t
  (** [epoch] is subtracted from every recorded start, anchoring
      wall-clock spans to the start of the run instead of 1970. *)

  val time_unit : t -> time_unit

  val record :
    t ->
    name:string ->
    ?cat:string ->
    ?args:(string * string) list ->
    pid:int ->
    tid:int ->
    start:int ->
    dur:int ->
    unit ->
    unit

  val spans : t -> span list
  (** In recording order. *)

  val length : t -> int

  val to_chrome : t -> Chrome.event list
end

(** {1 Table rendering} *)

val render_table : string list list -> string
(** Left-aligned fixed-width columns from a header row plus data rows
    (a dependency-free sibling of [Exp.Tabulate.render]). *)
