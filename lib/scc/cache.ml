(* Set-associative cache model with true LRU replacement.

   Only tags are modelled — the simulator tracks timing, not data (data
   lives in the workloads' native arrays).  Writes allocate (write-back,
   write-allocate, like the P54C L1D in WB mode); dirty-line writeback
   cost is charged by the caller via the [evicted_dirty] result. *)

type result = { hit : bool; evicted_dirty : bool }

(* [access_code] results *)
let hit = 0
let miss = 1
let miss_evict_dirty = 2

type line = { mutable tag : int; mutable dirty : bool; mutable last_use : int }

type t = {
  sets : line array array;   (* [set].[way] *)
  set_count : int;
  line_bytes : int;
  mutable tick : int;        (* LRU clock *)
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~line_bytes ~assoc =
  if size_bytes <= 0 || line_bytes <= 0 || assoc <= 0 then
    invalid_arg "Cache.create: non-positive geometry";
  let lines = size_bytes / line_bytes in
  if lines mod assoc <> 0 then
    invalid_arg "Cache.create: lines not divisible by associativity";
  let set_count = lines / assoc in
  {
    sets =
      Array.init set_count (fun _ ->
          Array.init assoc (fun _ ->
              { tag = -1; dirty = false; last_use = 0 }));
    set_count;
    line_bytes;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let line_addr t addr = addr / t.line_bytes

(* Allocation-free access used on the simulator's per-event hot path. *)
let access_code t ~write addr =
  t.tick <- t.tick + 1;
  let la = line_addr t addr in
  let set = t.sets.(la mod t.set_count) in
  let tag = la / t.set_count in
  let ways = Array.length set in
  let found = ref (-1) in
  for w = 0 to ways - 1 do
    if set.(w).tag = tag then found := w
  done;
  if !found >= 0 then begin
    let l = set.(!found) in
    l.last_use <- t.tick;
    if write then l.dirty <- true;
    t.hits <- t.hits + 1;
    hit
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict the least recently used way *)
    let victim = ref 0 in
    for w = 1 to ways - 1 do
      if set.(w).last_use < set.(!victim).last_use then victim := w
    done;
    let v = set.(!victim) in
    let evicted_dirty = v.tag >= 0 && v.dirty in
    v.tag <- tag;
    v.dirty <- write;
    v.last_use <- t.tick;
    if evicted_dirty then miss_evict_dirty else miss
  end

let access t ~write addr =
  match access_code t ~write addr with
  | c when c = hit -> { hit = true; evicted_dirty = false }
  | c when c = miss -> { hit = false; evicted_dirty = false }
  | _ -> { hit = false; evicted_dirty = true }

let flush t =
  Array.iter
    (fun set ->
      Array.iter
        (fun l ->
          l.tag <- -1;
          l.dirty <- false;
          l.last_use <- 0)
        set)
    t.sets

let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
