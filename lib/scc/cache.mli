(** Set-associative cache model with true LRU replacement.

    Only tags are modelled — the simulator tracks timing, not data.
    Write-back, write-allocate. *)

type t

type result = { hit : bool; evicted_dirty : bool }

val create : size_bytes:int -> line_bytes:int -> assoc:int -> t
(** @raise Invalid_argument on inconsistent geometry. *)

val access : t -> write:bool -> int -> result
(** Touch the line containing the byte address; fills on miss and reports
    whether a dirty victim was evicted. *)

val hit : int
val miss : int
val miss_evict_dirty : int

val access_code : t -> write:bool -> int -> int
(** Allocation-free [access] for the simulator's hot path: returns
    {!hit}, {!miss}, or {!miss_evict_dirty}. *)

val flush : t -> unit
(** Invalidate everything (e.g. at process start). *)

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
