(** Configuration of the simulated SCC chip.

    Structural numbers follow the published part; frequencies default to
    the paper's Table 6.1 operating point (800 MHz cores, 1600 MHz mesh,
    1066 MHz DDR3).  Latency constants are expressed in the cycles of the
    component that imposes them and converted to picoseconds at simulation
    time. *)

type t = {
  mesh_cols : int;
  mesh_rows : int;
  cores_per_tile : int;
  core_freq_mhz : int;
  mesh_freq_mhz : int;
  dram_freq_mhz : int;
  l1_bytes : int;
  l1_assoc : int;
  l1_hit_cycles : int;
  l2_bytes : int;
  l2_assoc : int;
  l2_hit_cycles : int;
  line_bytes : int;
  mpb_bytes_per_core : int;
  mpb_base_cycles : int;
  mesh_cycles_per_hop : int;
  n_mcs : int;
  dram_access_cycles : int;
  mc_service_cycles : int;
  dram_base_cycles : int;
  quantum_cycles : int;
  context_switch_cycles : int;
  posted_shared_writes : bool;
      (** model the SCC's write-combine buffer: uncached shared stores
          retire once issued while the line drains in the background
          (default false; the calibrated figures use blocking stores) *)
}

val default : t
(** The 48-core SCC at the paper's operating point. *)

val n_tiles : t -> int
val n_cores : t -> int

val ps_per_cycle : int -> int
(** Picoseconds per cycle at a frequency in MHz. *)

val core_cycles_ps : t -> int -> int
val mesh_cycles_ps : t -> int -> int
val dram_cycles_ps : t -> int -> int
val ps_to_core_cycles : t -> int -> int

val table_6_1 : t -> rcce_cores:int -> pthread_threads:int -> string list list
(** The paper's Table 6.1 as header and rows. *)
