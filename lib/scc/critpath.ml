(* Causal observability over the DES (see critpath.mli).

   The engine reports every local-clock advance here exactly once, as an
   interval with a category, an optional cross-context dependency edge
   (lock holder, barrier last-arriver, flag setter, join target, spawn
   parent), and the profiler's current function/line slots.  Two things
   are built from that stream:

   - a full accounting: per-context per-category picosecond totals that
     by construction satisfy  sum over categories == wall ps  for every
     context (idle head/tail fills the gaps), so nothing is silently
     dropped.  The accumulators are plain adds and never stop, even
     when the event buffer hits its cap;

   - the event-dependency graph itself, in growable flat int arrays
     (Trace-style: record is a handful of array stores, overflow is
     counted, never silent).  The critical path is the backward walk
     from the last event of the last-finishing context: follow the
     dependency edge when there is one, program order otherwise.

   What-if estimators replay the accounting under counterfactuals
   (zero mesh latency, zero lock waits, MPB-speed shared DRAM) by
   subtracting the removable picoseconds from each context's finish
   time; the new wall is the max over contexts.  These are ceilings,
   not predictions: removing a wait can re-order a lock queue or shift
   a barrier's last arriver, which the replay ignores. *)

(* --- categories ------------------------------------------------------------ *)

(* 0..5 mirror Trace.kind_index; 6..8 cover the advances the trace does
   not see, so that every picosecond lands somewhere. *)
let cat_compute = 0
let cat_mem_private = 1
let cat_mem_shared = 2
let cat_mem_mpb = 3
let cat_barrier_wait = 4
let cat_lock_wait = 5
let cat_sched_wait = 6
let cat_sync = 7
let cat_idle = 8
let n_categories = 9

let () = assert (Trace.n_kinds = 6)

let category_name = function
  | 0 -> "compute"
  | 1 -> "mem-private"
  | 2 -> "mem-shared"
  | 3 -> "mem-mpb"
  | 4 -> "barrier-wait"
  | 5 -> "lock-wait"
  | 6 -> "sched-wait"
  | 7 -> "sync"
  | 8 -> "idle"
  | c -> invalid_arg (Printf.sprintf "Critpath.category_name: %d" c)

let cat_of_kind k = Trace.kind_index k

(* --- state ----------------------------------------------------------------- *)

type t = {
  limit : int;
  (* event-dependency graph, parallel flat arrays indexed by event id *)
  mutable e_ctx : int array;
  mutable e_core : int array;
  mutable e_cat : int array;
  mutable e_dur : int array;
  mutable e_end : int array;
  mutable e_fn : int array;
  mutable e_line : int array;
  mutable e_pred : int array;   (* causal edge, -1 = program order only *)
  mutable e_prev : int array;   (* previous event of the same ctx, -1 = first *)
  mutable len : int;
  mutable n_dropped : int;
  (* per-context state (growable) *)
  mutable last_ev : int array;        (* last recorded event id, -1 none *)
  mutable fin : int array;            (* local clock after the last advance *)
  mutable acct : int array array;     (* [ctx].[cat] picoseconds, exact *)
  mutable acct_n : int array array;   (* [ctx].[cat] interval counts *)
  mutable mesh_ps : int array;        (* mesh-hop ps inside mem intervals *)
  mutable shared_n : int array;       (* shared-DRAM line transfers *)
  mutable n_ctx : int;
  (* set by finalize *)
  mutable wall_ps : int;
  mutable mpb_line_ps : int;          (* nominal MPB line round trip *)
  mutable finalized : bool;
  (* parallel-DES lookahead ceilings, set by the engine when it knows them *)
  mutable la_parts : int;
  mutable la_windowed : float;
  mutable la_infinite : float;
}

let create ?(limit = 1_000_000) () =
  {
    limit;
    e_ctx = [||]; e_core = [||]; e_cat = [||]; e_dur = [||]; e_end = [||];
    e_fn = [||]; e_line = [||]; e_pred = [||]; e_prev = [||];
    len = 0;
    n_dropped = 0;
    last_ev = [||];
    fin = [||];
    acct = [||];
    acct_n = [||];
    mesh_ps = [||];
    shared_n = [||];
    n_ctx = 0;
    wall_ps = 0;
    mpb_line_ps = 0;
    finalized = false;
    la_parts = 1;
    la_windowed = 1.0;
    la_infinite = 1.0;
  }

let grow a n fill =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let bigger = Array.make (max n (2 * max 1024 cap)) fill in
    Array.blit a 0 bigger 0 cap;
    bigger
  end

let ensure_ctx t ctx =
  if ctx >= t.n_ctx then begin
    let n = ctx + 1 in
    let old = t.n_ctx in
    t.last_ev <- grow t.last_ev n (-1);
    t.fin <- grow t.fin n 0;
    t.mesh_ps <- grow t.mesh_ps n 0;
    t.shared_n <- grow t.shared_n n 0;
    let cap = Array.length t.acct in
    if n > cap then begin
      let grow_2d a =
        let bigger = Array.make (max n (2 * max 1 cap)) [||] in
        Array.blit a 0 bigger 0 cap;
        bigger
      in
      t.acct <- grow_2d t.acct;
      t.acct_n <- grow_2d t.acct_n
    end;
    for c = old to n - 1 do
      if Array.length t.acct.(c) = 0 then begin
        t.acct.(c) <- Array.make n_categories 0;
        t.acct_n.(c) <- Array.make n_categories 0
      end
    done;
    t.n_ctx <- n
  end

(* --- recording (engine side) ----------------------------------------------- *)

let record t ~ctx ~core ~cat ~dur ~end_ps ~fn ~line ~pred =
  if dur > 0 then begin
    ensure_ctx t ctx;
    (* accounting is exact regardless of event-buffer truncation *)
    t.acct.(ctx).(cat) <- t.acct.(ctx).(cat) + dur;
    t.acct_n.(ctx).(cat) <- t.acct_n.(ctx).(cat) + 1;
    if end_ps > t.fin.(ctx) then t.fin.(ctx) <- end_ps;
    if t.len >= t.limit then t.n_dropped <- t.n_dropped + 1
    else begin
      let i = t.len in
      let cap = Array.length t.e_ctx in
      if i = cap then begin
        t.e_ctx <- grow t.e_ctx (i + 1) 0;
        t.e_core <- grow t.e_core (i + 1) 0;
        t.e_cat <- grow t.e_cat (i + 1) 0;
        t.e_dur <- grow t.e_dur (i + 1) 0;
        t.e_end <- grow t.e_end (i + 1) 0;
        t.e_fn <- grow t.e_fn (i + 1) 0;
        t.e_line <- grow t.e_line (i + 1) 0;
        t.e_pred <- grow t.e_pred (i + 1) (-1);
        t.e_prev <- grow t.e_prev (i + 1) (-1)
      end;
      t.e_ctx.(i) <- ctx;
      t.e_core.(i) <- core;
      t.e_cat.(i) <- cat;
      t.e_dur.(i) <- dur;
      t.e_end.(i) <- end_ps;
      t.e_fn.(i) <- fn;
      t.e_line.(i) <- line;
      t.e_pred.(i) <- (if pred >= 0 && pred < i then pred else -1);
      t.e_prev.(i) <- t.last_ev.(ctx);
      t.last_ev.(ctx) <- i;
      t.len <- i + 1
    end
  end

let last_event t ~ctx = if ctx < t.n_ctx then t.last_ev.(ctx) else -1

let note_mesh t ~ctx ps =
  if ps > 0 then begin
    ensure_ctx t ctx;
    t.mesh_ps.(ctx) <- t.mesh_ps.(ctx) + ps
  end

let note_shared_access t ~ctx =
  ensure_ctx t ctx;
  t.shared_n.(ctx) <- t.shared_n.(ctx) + 1

let set_lookahead t ~parts ~windowed ~infinite =
  t.la_parts <- parts;
  t.la_windowed <- windowed;
  t.la_infinite <- infinite

let finalize t ~wall_ps ~mpb_line_ps =
  if not t.finalized then begin
    t.finalized <- true;
    t.wall_ps <- wall_ps;
    t.mpb_line_ps <- mpb_line_ps;
    (* idle tail: a context that finished before the wall is idle until
       the wall; recording it makes the accounting identity hold with
       no special cases *)
    for ctx = 0 to t.n_ctx - 1 do
      if t.fin.(ctx) < wall_ps then
        record t ~ctx ~core:(-1) ~cat:cat_idle ~dur:(wall_ps - t.fin.(ctx))
          ~end_ps:wall_ps ~fn:0 ~line:0 ~pred:(-1)
    done
  end

(* --- accounting ------------------------------------------------------------- *)

let events t = t.len
let dropped t = t.n_dropped
let n_ctxs t = t.n_ctx
let wall_ps t = t.wall_ps

let account t ~ctx ~cat =
  if ctx < t.n_ctx then t.acct.(ctx).(cat) else 0

let account_events t ~ctx ~cat =
  if ctx < t.n_ctx then t.acct_n.(ctx).(cat) else 0

let account_totals t =
  let acc = Array.make n_categories 0 in
  for ctx = 0 to t.n_ctx - 1 do
    for cat = 0 to n_categories - 1 do
      acc.(cat) <- acc.(cat) + t.acct.(ctx).(cat)
    done
  done;
  acc

let account_event_totals t =
  let acc = Array.make n_categories 0 in
  for ctx = 0 to t.n_ctx - 1 do
    for cat = 0 to n_categories - 1 do
      acc.(cat) <- acc.(cat) + t.acct_n.(ctx).(cat)
    done
  done;
  acc

(* sum of every charged picosecond vs wall * contexts: equal after
   finalize, or the engine missed (or double-charged) an advance *)
let identity t =
  let sum = Array.fold_left ( + ) 0 (account_totals t) in
  (sum, t.wall_ps * t.n_ctx)

let identity_ok t =
  let sum, expect = identity t in
  sum = expect

(* --- critical path ----------------------------------------------------------- *)

type step = {
  st_ctx : int;
  st_core : int;
  st_cat : int;
  st_dur : int;
  st_end_ps : int;
  st_fn : int;
  st_line : int;
}

let step_of t i =
  {
    st_ctx = t.e_ctx.(i);
    st_core = t.e_core.(i);
    st_cat = t.e_cat.(i);
    st_dur = t.e_dur.(i);
    st_end_ps = t.e_end.(i);
    st_fn = t.e_fn.(i);
    st_line = t.e_line.(i);
  }

(* Backward walk from the last event of the last-finishing context:
   follow the causal edge when the event has one (the wait ends because
   of what the edge points at), program order otherwise.  Returned in
   execution order.  With a truncated buffer the walk simply bottoms
   out at the oldest recorded ancestor — callers surface [dropped]. *)
let critical_path t =
  if t.n_ctx = 0 || t.len = 0 then []
  else begin
    let last_ctx = ref 0 in
    for ctx = 1 to t.n_ctx - 1 do
      if t.fin.(ctx) > t.fin.(!last_ctx) then last_ctx := ctx
    done;
    let path = ref [] in
    let cur = ref t.last_ev.(!last_ctx) in
    while !cur >= 0 do
      let i = !cur in
      (* idle-tail events pad the accounting; the path skips them *)
      if t.e_cat.(i) <> cat_idle || t.e_pred.(i) >= 0 then
        path := step_of t i :: !path;
      cur := (if t.e_pred.(i) >= 0 then t.e_pred.(i) else t.e_prev.(i))
    done;
    !path
  end

let path_span steps =
  List.fold_left (fun acc s -> acc + s.st_dur) 0 steps

let path_by_category steps =
  let ps = Array.make n_categories 0 in
  let n = Array.make n_categories 0 in
  List.iter
    (fun s ->
      ps.(s.st_cat) <- ps.(s.st_cat) + s.st_dur;
      n.(s.st_cat) <- n.(s.st_cat) + 1)
    steps;
  (ps, n)

(* top {fn, line, category} contributors along the path, hottest first *)
let path_contributors steps =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let key = (s.st_fn, s.st_line, s.st_cat) in
      let cur = try Hashtbl.find tbl key with Not_found -> (0, 0) in
      Hashtbl.replace tbl key (fst cur + s.st_dur, snd cur + 1))
    steps;
  let rows =
    Hashtbl.fold
      (fun (fn, line, cat) (ps, n) acc -> (fn, line, cat, ps, n) :: acc)
      tbl []
  in
  List.sort
    (fun (fa, la, ca, pa, _) (fb, lb, cb, pb, _) ->
      match compare pb pa with
      | 0 -> compare (fa, la, ca) (fb, lb, cb)
      | c -> c)
    rows

(* --- what-if estimators ------------------------------------------------------ *)

type whatif = {
  wi_name : string;
  wi_desc : string;
  wi_removed_ps : int;      (* total removable across contexts *)
  wi_new_wall_ps : int;
  wi_ceiling : float;       (* old wall / new wall, >= 1.0 *)
}

(* new wall under a counterfactual that removes [removable ctx]
   picoseconds from each context's finish time *)
let replay t removable =
  let new_wall = ref 1 in
  let removed = ref 0 in
  for ctx = 0 to t.n_ctx - 1 do
    let r = min (removable ctx) t.fin.(ctx) in
    removed := !removed + r;
    if t.fin.(ctx) - r > !new_wall then new_wall := t.fin.(ctx) - r
  done;
  (!removed, max 1 !new_wall)

let make_whatif t ~name ~desc removable =
  let removed, new_wall = replay t removable in
  {
    wi_name = name;
    wi_desc = desc;
    wi_removed_ps = removed;
    wi_new_wall_ps = new_wall;
    wi_ceiling =
      (if t.wall_ps <= 0 then 1.0
       else float_of_int t.wall_ps /. float_of_int new_wall);
  }

let whatifs t =
  [
    make_whatif t ~name:"zero-mesh"
      ~desc:"mesh hops take 0 ps (perfect on-chip network)"
      (fun ctx -> t.mesh_ps.(ctx));
    make_whatif t ~name:"zero-lock-wait"
      ~desc:"every lock acquisition is uncontended"
      (fun ctx -> t.acct.(ctx).(cat_lock_wait));
    make_whatif t ~name:"zero-barrier-wait"
      ~desc:"every barrier arrival is the last (perfect balance)"
      (fun ctx -> t.acct.(ctx).(cat_barrier_wait));
    make_whatif t ~name:"mpb-speed-shared"
      ~desc:"shared DRAM lines served at on-chip MPB cost"
      (fun ctx ->
        let subst = t.shared_n.(ctx) * t.mpb_line_ps in
        max 0 (t.acct.(ctx).(cat_mem_shared) - subst));
    make_whatif t ~name:"zero-sched-wait"
      ~desc:"every context owns a core (no time slicing)"
      (fun ctx -> t.acct.(ctx).(cat_sched_wait));
  ]

type lookahead = {
  la_partitions : int;
  la_windowed_ceiling : float;   (* with the current LBTS lookahead *)
  la_infinite_ceiling : float;   (* one window spanning the whole run *)
}

let lookahead t =
  {
    la_partitions = t.la_parts;
    la_windowed_ceiling = t.la_windowed;
    la_infinite_ceiling = t.la_infinite;
  }

(* --- Perfetto flow arrows ----------------------------------------------------- *)

(* One flow chain threaded through the trace slices the path's events
   fall inside (pid = core, tid = ctx, matching Trace.to_chrome_events).
   [max_end_ps] clips the chain when the flat trace buffer truncated:
   steps past the last traced picosecond have no slice to bind to, so
   emitting them would leave dangling flow ids — the chain is instead
   re-terminated at the last in-range step.  Idle/sched steps carry no
   trace slice either and are skipped the same way. *)
let flow_events ?(flow_id = 1) ?max_end_ps t =
  let steps = critical_path t in
  let in_range s =
    s.st_core >= 0
    && s.st_cat <= cat_lock_wait   (* categories with trace slices *)
    && (match max_end_ps with None -> true | Some m -> s.st_end_ps <= m)
  in
  let steps = List.filter in_range steps in
  let n = List.length steps in
  if n < 2 then []
  else
    List.mapi
      (fun i s ->
        let phase =
          if i = 0 then Obs.Chrome.Flow_start
          else if i = n - 1 then Obs.Chrome.Flow_end
          else Obs.Chrome.Flow_step
        in
        (* a timestamp strictly inside the slice, so Perfetto binds the
           arrow to the right interval *)
        let ts_ps = s.st_end_ps - ((s.st_dur + 1) / 2) in
        Obs.Chrome.Flow
          {
            name = "critical-path";
            cat = category_name s.st_cat;
            id = flow_id;
            pid = s.st_core;
            tid = s.st_ctx;
            ts_us = float_of_int ts_ps /. 1e6;
            phase;
          })
      steps

(* --- Prometheus ---------------------------------------------------------------- *)

let register_metrics t reg =
  let totals = account_totals t in
  for cat = 0 to n_categories - 1 do
    let c =
      Obs.Registry.counter reg
        ~help:"simulated picoseconds accounted per category (all contexts)"
        ~labels:[ ("category", category_name cat) ]
        "sim_account_ps_total"
    in
    Obs.Counter.add c totals.(cat)
  done

(* --- rendering ------------------------------------------------------------------ *)

let pct num den =
  if den <= 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let fn_of profile slot =
  match profile with
  | Some p -> Profile.fn_name p slot
  | None -> if slot = 0 then "<toplevel>" else Printf.sprintf "fn#%d" slot

let line_of profile slot =
  match profile with
  | Some p -> Profile.line_name p slot
  | None -> if slot = 0 then "<unknown>" else Printf.sprintf "line#%d" slot

let render_account t =
  let totals = account_totals t in
  let counts = account_event_totals t in
  let sum, expect = identity t in
  let rows = ref [] in
  for cat = n_categories - 1 downto 0 do
    if totals.(cat) > 0 then
      rows :=
        [ category_name cat;
          string_of_int totals.(cat);
          Printf.sprintf "%.1f%%" (pct totals.(cat) expect);
          string_of_int counts.(cat) ]
        :: !rows
  done;
  let table =
    Obs.render_table ([ "category"; "ps"; "share"; "intervals" ] :: !rows)
  in
  table
  ^ Printf.sprintf "accounted %d ps over %d contexts x %d ps wall (%s)\n" sum
      t.n_ctx t.wall_ps
      (if sum = expect then "identity holds"
       else Printf.sprintf "IDENTITY BROKEN: expected %d" expect)

let render_path ?profile ?(limit = 12) t =
  let steps = critical_path t in
  match steps with
  | [] -> "critical path: empty (no events recorded)\n"
  | _ ->
      let span = path_span steps in
      let by_cat, _ = path_by_category steps in
      let buf = Buffer.create 512 in
      Buffer.add_string buf
        (Printf.sprintf
           "critical path: %d steps, %d ps (%.1f%% of the %d ps wall)%s\n"
           (List.length steps) span (pct span t.wall_ps) t.wall_ps
           (if t.n_dropped > 0 then
              Printf.sprintf " [approximate: %d events dropped]" t.n_dropped
            else ""));
      let rows = ref [] in
      for cat = n_categories - 1 downto 0 do
        if by_cat.(cat) > 0 then
          rows :=
            [ category_name cat;
              string_of_int by_cat.(cat);
              Printf.sprintf "%.1f%%" (pct by_cat.(cat) span) ]
            :: !rows
      done;
      Buffer.add_string buf
        (Obs.render_table ([ "path category"; "ps"; "share" ] :: !rows));
      let contributors = path_contributors steps in
      let shown = List.filteri (fun i _ -> i < limit) contributors in
      Buffer.add_string buf "\nheaviest path contributors:\n";
      Buffer.add_string buf
        (Obs.render_table
           ([ "function"; "line"; "category"; "ps"; "steps" ]
           :: List.map
                (fun (fn, line, cat, ps, n) ->
                  [ fn_of profile fn;
                    line_of profile line;
                    category_name cat;
                    string_of_int ps;
                    string_of_int n ])
                shown));
      Buffer.contents buf

let render_whatifs t =
  let rows =
    List.map
      (fun w ->
        [ w.wi_name;
          string_of_int w.wi_removed_ps;
          string_of_int w.wi_new_wall_ps;
          Printf.sprintf "%.2fx" w.wi_ceiling;
          w.wi_desc ])
      (whatifs t)
  in
  let la = lookahead t in
  let table =
    Obs.render_table
      ([ "what-if"; "removed-ps"; "new-wall-ps"; "ceiling"; "assumption" ]
      :: rows)
  in
  table
  ^
  if la.la_partitions > 1 then
    Printf.sprintf
      "LBTS lookahead: %d partitions, windowed simulator ceiling %.2fx, \
       infinite-lookahead ceiling %.2fx\n"
      la.la_partitions la.la_windowed_ceiling la.la_infinite_ceiling
  else "LBTS lookahead: n/a (sequential run; rerun with --sim-jobs > 1)\n"

let render ?profile t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "where the time goes (full accounting):\n";
  Buffer.add_string buf (render_account t);
  Buffer.add_string buf "\n";
  Buffer.add_string buf (render_path ?profile t);
  Buffer.add_string buf "\nspeedup ceilings (what-if replay):\n";
  Buffer.add_string buf (render_whatifs t);
  Buffer.contents buf

(* --- JSON report ----------------------------------------------------------------- *)

let to_json ?profile t =
  let totals = account_totals t in
  let counts = account_event_totals t in
  let sum, expect = identity t in
  let steps = critical_path t in
  let span = path_span steps in
  let by_cat, by_cat_n = path_by_category steps in
  let la = lookahead t in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"wall_ps\": %d,\n  \"contexts\": %d,\n  \"events\": %d,\n  \
        \"dropped\": %d,\n"
       t.wall_ps t.n_ctx t.len t.n_dropped);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"identity\": {\"sum_ps\": %d, \"wall_x_contexts\": %d, \"ok\": %b},\n"
       sum expect (sum = expect));
  Buffer.add_string buf "  \"account\": [";
  let first = ref true in
  for cat = 0 to n_categories - 1 do
    if totals.(cat) > 0 then begin
      if not !first then Buffer.add_string buf ", ";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"category\": \"%s\", \"ps\": %d, \"intervals\": %d}"
           (category_name cat) totals.(cat) counts.(cat))
    end
  done;
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"critical_path\": {\"steps\": %d, \"span_ps\": %d, \
        \"by_category\": ["
       (List.length steps) span);
  let first = ref true in
  for cat = 0 to n_categories - 1 do
    if by_cat.(cat) > 0 then begin
      if not !first then Buffer.add_string buf ", ";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "{\"category\": \"%s\", \"ps\": %d, \"steps\": %d}"
           (category_name cat) by_cat.(cat) by_cat_n.(cat))
    end
  done;
  Buffer.add_string buf "], \"top\": [";
  let contributors = path_contributors steps in
  List.iteri
    (fun i (fn, line, cat, ps, n) ->
      if i < 12 then begin
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf
             "{\"function\": \"%s\", \"line\": \"%s\", \"category\": \
              \"%s\", \"ps\": %d, \"steps\": %d}"
             (Obs.json_escape (fn_of profile fn))
             (Obs.json_escape (line_of profile line))
             (category_name cat) ps n)
      end)
    contributors;
  Buffer.add_string buf "]},\n";
  Buffer.add_string buf "  \"whatif\": [";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\": \"%s\", \"removed_ps\": %d, \"new_wall_ps\": %d, \
            \"ceiling\": %.4f}"
           w.wi_name w.wi_removed_ps w.wi_new_wall_ps w.wi_ceiling))
    (whatifs t);
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"lookahead\": {\"partitions\": %d, \"windowed_ceiling\": %.4f, \
        \"infinite_ceiling\": %.4f}\n"
       la.la_partitions la.la_windowed_ceiling la.la_infinite_ceiling);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
