(** Causal observability over the DES: the event-dependency graph, a
    full picosecond accounting, the critical path, and what-if speedup
    ceilings.

    The engine reports every local-clock advance exactly once — compute
    bursts, memory stalls (split private / shared DRAM / MPB), barrier
    waits with last-arriver edges, mutex waits with holder edges,
    scheduler slice waits, sync protocol costs, and idle padding — so
    that after {!finalize} the accounting identity

    {v sum over contexts and categories == wall ps * contexts v}

    holds {e exactly}; any gap means a missed (or double-charged)
    advance.  The per-category accumulators are plain integer adds and
    stay exact even when the event buffer hits its cap (drops are
    counted, never silent, mirroring {!Trace}).

    The critical path is extracted backward from the last event of the
    last-finishing context: follow the causal edge when the event has
    one, program order otherwise.  What-ifs replay the recorded
    accounting under counterfactuals and report {e ceilings} — removing
    a wait can reorder lock queues or shift barrier arrival order,
    which the replay deliberately ignores. *)

type t

val create : ?limit:int -> unit -> t
(** [limit] caps the event-dependency buffer (default 1_000_000
    events); accounting stays exact past it. *)

(** {1 Categories}

    Indices 0–5 mirror {!Trace.kind_index}; 6–8 cover advances the
    trace does not see. *)

val n_categories : int
val cat_compute : int
val cat_mem_private : int
val cat_mem_shared : int
val cat_mem_mpb : int
val cat_barrier_wait : int
val cat_lock_wait : int

val cat_sched_wait : int
(** Waiting for a core: ready-queue delay plus the context-switch
    penalty on shared cores. *)

val cat_sync : int
(** Synchronization protocol costs that are not waits on another
    context's progress: uncontended lock acquire/release, MPB flag
    set/read costs, join bookkeeping. *)

val cat_idle : int
(** Before a spawned context starts, and after a context finishes until
    the wall — the padding that makes the identity total. *)

val category_name : int -> string
val cat_of_kind : Trace.kind -> int

(** {1 Recording (engine side)} *)

val record :
  t ->
  ctx:int ->
  core:int ->
  cat:int ->
  dur:int ->
  end_ps:int ->
  fn:int ->
  line:int ->
  pred:int ->
  unit
(** One local-clock advance of [dur] ps ending at [end_ps].  [fn] /
    [line] are {!Profile} intern slots (0 when unprofiled); [pred] is
    the event id this interval causally waited on ([-1] = program
    order only).  Zero-duration advances are ignored. *)

val last_event : t -> ctx:int -> int
(** Latest recorded event id of a context ([-1] if none) — the handle
    engines pass as [pred] for cross-context edges. *)

val note_mesh : t -> ctx:int -> int -> unit
(** Mesh-hop picoseconds inside the context's current memory interval
    (feeds the zero-mesh what-if). *)

val note_shared_access : t -> ctx:int -> unit
(** One shared-DRAM line transfer (feeds the MPB-speed what-if). *)

val set_lookahead : t -> parts:int -> windowed:float -> infinite:float -> unit
(** Parallel-DES ceilings, reported by the engine: the event-parallelism
    ceiling under the current LBTS windows and under one whole-run
    window. *)

val finalize : t -> wall_ps:int -> mpb_line_ps:int -> unit
(** Record idle tails up to [wall_ps] (making the identity hold) and
    remember [mpb_line_ps], the nominal cost of one MPB line round
    trip, for the MPB-speed counterfactual.  Idempotent. *)

(** {1 Accounting} *)

val events : t -> int
val dropped : t -> int
val n_ctxs : t -> int
val wall_ps : t -> int
val account : t -> ctx:int -> cat:int -> int
val account_events : t -> ctx:int -> cat:int -> int
val account_totals : t -> int array
(** Picoseconds per category, summed over contexts; length
    {!n_categories}. *)

val account_event_totals : t -> int array

val identity : t -> int * int
(** [(sum of every charged ps, wall_ps * contexts)] — equal after
    {!finalize}. *)

val identity_ok : t -> bool

(** {1 Critical path} *)

type step = {
  st_ctx : int;
  st_core : int;     (** -1 for idle padding *)
  st_cat : int;
  st_dur : int;
  st_end_ps : int;
  st_fn : int;
  st_line : int;
}

val critical_path : t -> step list
(** In execution order, ending at the last event of the last-finishing
    context.  Approximate when {!dropped} is non-zero (the walk bottoms
    out at the oldest recorded ancestor). *)

val path_span : step list -> int
val path_by_category : step list -> int array * int array

val path_contributors : step list -> (int * int * int * int * int) list
(** [(fn_slot, line_slot, category, ps, steps)], heaviest first. *)

(** {1 What-if speedup ceilings} *)

type whatif = {
  wi_name : string;
  wi_desc : string;
  wi_removed_ps : int;
  wi_new_wall_ps : int;
  wi_ceiling : float;  (** old wall / new wall *)
}

val whatifs : t -> whatif list
(** zero-mesh, zero-lock-wait, zero-barrier-wait, MPB-speed shared
    DRAM, zero-sched-wait. *)

type lookahead = {
  la_partitions : int;
  la_windowed_ceiling : float;
  la_infinite_ceiling : float;
}

val lookahead : t -> lookahead

(** {1 Sinks} *)

val flow_events : ?flow_id:int -> ?max_end_ps:int -> t -> Obs.Chrome.event list
(** The critical path as one Perfetto flow chain (ph "s"/"t"/"f")
    bound to the trace slices (pid = core, tid = ctx).  Steps without a
    trace slice (idle, sched) are skipped; [max_end_ps] clips the chain
    when the trace buffer truncated, so the chain is always well-formed
    — first event ["s"], last ["f"], no dangling ids. *)

val register_metrics : t -> Obs.Registry.t -> unit
(** Register [sim_account_ps_total{category="..."}] labelled counters
    holding the accounting totals. *)

val render : ?profile:Profile.t -> t -> string
(** Accounting table + identity line, critical-path summary with the
    heaviest {e function/line/category} contributors, and the what-if
    ceiling table. *)

val render_account : t -> string
val render_path : ?profile:Profile.t -> ?limit:int -> t -> string
val render_whatifs : t -> string

val to_json : ?profile:Profile.t -> t -> string
(** The full report as one JSON document (the [--explain-json]
    payload). *)
