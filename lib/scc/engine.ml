(* Deterministic discrete-event simulation engine.

   Every execution context (an RCCE process on its own core, or a Pthread
   on the shared baseline core) is an OCaml-5 effects coroutine.  The
   scheduler resumes the runnable context with the smallest local time —
   except that a context still owning its shared core's time slice is
   preferred, which is what keeps the Pthread baseline from paying a
   context switch per cache line.  Shared resources (core pipelines, the
   four memory controllers, MPB ports, test-and-set locks, the barrier)
   are therefore arbitrated in global time order and every run is
   reproducible.

   Timing model (converted to picoseconds from each component's clock):
   - compute: [n] core cycles on the context's core; when several
     contexts share a core the pipeline is a serial resource with a
     context-switch penalty per handoff and per expired quantum;
   - private DRAM: per line through L1 then L2 (tag-true LRU caches), a
     miss travelling mesh -> home memory controller (FIFO server, queuing
     delay) -> DRAM and back, plus dirty-victim writeback occupancy;
   - shared DRAM: uncacheable; every line pays the full mesh + controller
     + DRAM round trip, controllers chosen by line interleaving;
   - MPB: base access cost plus mesh round trip to the owning tile plus
     a transfer slot at the owning slice's port;
   - barrier: gather/release among the statically spawned contexts;
   - locks: the per-core test-and-set registers, FIFO handoff.

   Block accesses are performed line-by-line from the coroutine so the
   scheduler can interleave other contexts' requests between lines — a
   context must never claim memory-controller slots in another context's
   future.

   Contexts may also be spawned *during* the run ([spawn_child], used by
   the C interpreter's pthread_create) and joined ([join]); dynamic
   contexts do not participate in the barrier group. *)

type api = {
  self : int;
  nunits : int;
  core : int;
  compute : int -> unit;            (* core cycles *)
  load : int -> bytes:int -> unit;  (* address, block size *)
  store : int -> bytes:int -> unit;
  barrier : unit -> unit;
  acquire : int -> unit;
  release : int -> unit;
  now_ps : unit -> int;
  spawn_child : core:int -> (api -> unit) -> int;
  join : int -> unit;
  barrier_n : id:int -> count:int -> unit;
  flag_set : id:int -> bool -> unit;
  flag_wait : id:int -> unit;
  set_frequency : core:int -> mhz:int -> unit;
}

type _ Effect.t +=
  | E_barrier : unit Effect.t
  | E_acquire : int -> unit Effect.t
  | E_release : int -> unit Effect.t
  | E_now : int Effect.t
  | E_spawn : (int * (api -> unit)) -> int Effect.t
  | E_join : int -> unit Effect.t
  | E_barrier_n : (int * int) -> unit Effect.t   (* barrier id, group size *)
  | E_set_freq : (int * int) -> unit Effect.t    (* core, MHz (whole tile) *)
  | E_flag_set : (int * bool) -> unit Effect.t   (* flag id, value *)
  | E_flag_wait : int -> unit Effect.t           (* until the flag is set *)
  | E_yield : unit Effect.t
      (* yield to the scheduler with the operation's charge already
         applied — performed by [api.compute]/[load]/[store] only when
         the in-place fast path could not prove the scheduler would
         pick this context again *)

type pending =
  | Start of (unit -> unit)
  | Cont of (unit, unit) Effect.Deep.continuation

type ctx_status = Ready | Running | Parked | Finished

type ctx = {
  id : int;
  core : int;
  barrier_member : bool;    (* statically spawned: participates in barrier *)
  stats : Stats.ctx_stats;
  mutable now : int;
  mutable status : ctx_status;
  mutable pending : pending option;
  mutable joiners : (ctx * (unit, unit) Effect.Deep.continuation) list;
      (* contexts blocked in [join] on this one *)
}

type proc = {
  mutable free_at : int;
  mutable last_ctx : int;
  mutable ctx_count : int;
  mutable slice_end : int;   (* absolute end of the current time slice *)
}

type lock = {
  mutable held_by : int option;
  mutable free_time : int;
  mutable free_ev : int;   (* critpath event that freed the register; -1 none *)
  waiters : (ctx * (unit, unit) Effect.Deep.continuation) Queue.t;
}

(* An MPB-resident synchronization flag (the primitive under RCCE's
   send/recv and wait_until). *)
type flag = {
  mutable value : bool;
  mutable set_time : int;
  mutable set_ev : int;    (* critpath event of the set; -1 none *)
  mutable flag_waiters : (ctx * (unit, unit) Effect.Deep.continuation) list;
}

exception Deadlock of string

(* A counted barrier's per-group bookkeeping: arrivals are counted, not
   re-measured with [List.length] on every entry. *)
type counted_barrier = {
  mutable cb_arrived : int;
  mutable cb_waiters : (ctx * (unit, unit) Effect.Deep.continuation) list;
}

type t = {
  cfg : Config.t;
  mesh : Mesh.t;
  memmap : Memmap.t;
  mutable ctx_arr : ctx array;   (* growable; slots >= [n_ctx] are filler *)
  mutable n_ctx : int;
  procs : proc array;
  l1 : Cache.t array;
  l2 : Cache.t array;
  mc_free_at : int array;
  mc_busy_ps : int array;
  mc_requests : int array;
  mpb_free_at : int array;
  mutable barrier_waiting : (ctx * (unit, unit) Effect.Deep.continuation) list;
  mutable n_barrier_waiting : int;
  mutable n_barrier_members : int;  (* statically spawned contexts *)
  counted_barriers : (int, counted_barrier) Hashtbl.t;
  flags : (int, flag) Hashtbl.t;
  mutable n_join_waiting : int;     (* across every context's [joiners] *)
  locks : lock array;
  mutable n_finished : int;
  mutable started : bool;
  mutable n_events : int;           (* contexts resumed *)
  trace : Trace.t option;
  profile : Profile.t option;
  critpath : Critpath.t option;
  (* machine-metric sampling state; [next_sample_ps] is [max_int] when
     profiling is off, so the hot path pays one compare *)
  mutable next_sample_ps : int;
  mutable mesh_busy_ps : int;       (* accumulated link-traversal ps *)
  mutable samp_l1_hits : int;
  mutable samp_l1_misses : int;
  mutable samp_mesh_ps : int;
  mutable samp_last_ts : int;
  core_freq_mhz : int array;   (* per-core DVFS state, tile-granular *)
  (* Per-event timing constants, precomputed so the hot path never
     divides or searches: picoseconds per core cycle (tracks DVFS),
     each core's nearest memory controller and one-way mesh times. *)
  ps_core : int array;              (* ps per core cycle, per core *)
  mc_of : int array;                (* nearest MC index, per core *)
  mc_out_ps : int array;            (* one-way mesh ps to that MC *)
  shared_out_ps : int array array;  (* [core].(mc) one-way mesh ps *)
  core_out_ps : int array array;    (* [core].(core) one-way mesh ps *)
  mc_service_ps : int;
  dram_access_ps : int;
  mesh_transfer_ps : int;
  (* Ready-queues: one binary min-heap of (local time, ctx id) snapshots
     per scheduler partition, with lazy deletion — an entry is live only
     while its context is still Ready at exactly the recorded time.
     Keyed so that heap order equals the old linear scan's tie-break:
     smaller time first, then smaller context id.  With one partition
     this is exactly the PR 3 scheduler; with several, the run loop
     merges the partition minima, which preserves the global order. *)
  heaps : heap array;
  n_parts : int;
  part_of_core : int array;
  part_events : int array;     (* events resumed per partition *)
  lookahead_ps : int;          (* minimum inter-tile hop latency *)
  mutable win_end : int;       (* current LBTS window end (exclusive) *)
  mutable win_mask : int;      (* partitions active in current window *)
  mutable win_count : int;
  mutable win_active_sum : int;
  mutable win_active_max : int;
  (* Contexts made Ready since the last scheduling decision; the run loop
     pushes them into their partition heap — except the one it resumes
     next, which skips the heap round trip entirely. *)
  mutable just_ready : ctx list;
  mutable shared_cores : int list;  (* cores with more than one context *)
}

and heap = {
  mutable hnow : int array;
  mutable hid : int array;
  mutable hlen : int;
}

let heap_make () = { hnow = Array.make 64 0; hid = Array.make 64 0; hlen = 0 }

let create ?(cfg = Config.default) ?trace ?profile ?critpath ?(sim_jobs = 1)
    () =
  let n = Config.n_cores cfg in
  if sim_jobs < 1 || sim_jobs > 62 then
    invalid_arg "Engine.create: sim_jobs must be in 1..62";
  let n_parts = min sim_jobs n in
  let mesh = Mesh.create cfg in
  {
    cfg;
    mesh;
    memmap = Memmap.create cfg;
    ctx_arr = [||];
    n_ctx = 0;
    procs =
      Array.init n (fun _ ->
          { free_at = 0; last_ctx = -1; ctx_count = 0; slice_end = 0 });
    l1 =
      Array.init n (fun _ ->
          Cache.create ~size_bytes:cfg.Config.l1_bytes
            ~line_bytes:cfg.Config.line_bytes ~assoc:cfg.Config.l1_assoc);
    l2 =
      Array.init n (fun _ ->
          Cache.create ~size_bytes:cfg.Config.l2_bytes
            ~line_bytes:cfg.Config.line_bytes ~assoc:cfg.Config.l2_assoc);
    mc_free_at = Array.make cfg.Config.n_mcs 0;
    mc_busy_ps = Array.make cfg.Config.n_mcs 0;
    mc_requests = Array.make cfg.Config.n_mcs 0;
    mpb_free_at = Array.make n 0;
    barrier_waiting = [];
    n_barrier_waiting = 0;
    n_barrier_members = 0;
    counted_barriers = Hashtbl.create 8;
    flags = Hashtbl.create 16;
    n_join_waiting = 0;
    locks =
      Array.init n (fun _ ->
          { held_by = None; free_time = 0; free_ev = -1;
            waiters = Queue.create () });
    n_finished = 0;
    started = false;
    n_events = 0;
    trace;
    profile;
    critpath;
    next_sample_ps =
      (match profile with
      | None -> max_int
      | Some p -> Profile.sample_interval_ps p);
    mesh_busy_ps = 0;
    samp_l1_hits = 0;
    samp_l1_misses = 0;
    samp_mesh_ps = 0;
    samp_last_ts = 0;
    core_freq_mhz = Array.make n cfg.Config.core_freq_mhz;
    ps_core = Array.make n (Config.ps_per_cycle cfg.Config.core_freq_mhz);
    mc_of = Array.init n (fun core -> Mesh.mc_of_core mesh core);
    mc_out_ps =
      Array.init n (fun core ->
          let mc = Mesh.mc_of_core mesh core in
          Mesh.traverse_ps mesh ~hops:(Mesh.hops_core_to_mc mesh ~core ~mc));
    shared_out_ps =
      Array.init n (fun core ->
          Array.init cfg.Config.n_mcs (fun mc ->
              Mesh.traverse_ps mesh
                ~hops:(Mesh.hops_core_to_mc mesh ~core ~mc)));
    core_out_ps =
      Array.init n (fun from_core ->
          Array.init n (fun to_core ->
              Mesh.traverse_ps mesh
                ~hops:(Mesh.hops_core_to_core mesh ~from_core ~to_core)));
    mc_service_ps = Config.dram_cycles_ps cfg cfg.Config.mc_service_cycles;
    dram_access_ps = Config.dram_cycles_ps cfg cfg.Config.dram_access_cycles;
    mesh_transfer_ps =
      Config.mesh_cycles_ps cfg cfg.Config.mesh_cycles_per_hop;
    heaps = Array.init n_parts (fun _ -> heap_make ());
    n_parts;
    (* contiguous core ranges: partition p owns cores with
       core * n_parts / n = p, so tiles stay together *)
    part_of_core = Array.init n (fun core -> core * n_parts / n);
    part_events = Array.make n_parts 0;
    lookahead_ps = Mesh.min_hop_ps mesh;
    win_end = min_int;
    win_mask = 0;
    win_count = 0;
    win_active_sum = 0;
    win_active_max = 0;
    just_ready = [];
    shared_cores = [];
  }

let cfg t = t.cfg

let trace t = t.trace

let profile t = t.profile

let critpath t = t.critpath

(* One machine-metric sample at simulated time [now]: L1 hit rate, memory
   controller queue depths and mesh link utilization, each measured over
   the window since the previous sample. *)
let take_samples t p now =
  let hits = ref 0 and misses = ref 0 in
  Array.iter
    (fun c ->
      hits := !hits + Cache.hits c;
      misses := !misses + Cache.misses c)
    t.l1;
  let dh = !hits - t.samp_l1_hits and dm = !misses - t.samp_l1_misses in
  t.samp_l1_hits <- !hits;
  t.samp_l1_misses <- !misses;
  let rate =
    if dh + dm = 0 then 1.0 else float_of_int dh /. float_of_int (dh + dm)
  in
  Profile.sample p ~ts:now ~name:"l1 hit rate" ~series:[ ("rate", rate) ];
  let depths = ref [] in
  for mc = Array.length t.mc_free_at - 1 downto 0 do
    let free_at = t.mc_free_at.(mc) in
    let depth =
      if free_at > now then
        float_of_int (free_at - now) /. float_of_int t.mc_service_ps
      else 0.0
    in
    depths := (Printf.sprintf "mc%d" mc, depth) :: !depths
  done;
  Profile.sample p ~ts:now ~name:"mc queue depth" ~series:!depths;
  let window = now - t.samp_last_ts in
  let dmesh = t.mesh_busy_ps - t.samp_mesh_ps in
  t.samp_mesh_ps <- t.mesh_busy_ps;
  let util =
    if window <= 0 then 0.0
    else float_of_int dmesh /. float_of_int window
  in
  Profile.sample p ~ts:now ~name:"mesh utilization"
    ~series:[ ("links-busy", util) ];
  (* per-partition event totals, only when the scheduler is actually
     partitioned — a single-partition run keeps its sample set (and the
     golden profiles that pin it) unchanged *)
  if t.n_parts > 1 then begin
    let series = ref [] in
    for part = t.n_parts - 1 downto 0 do
      series :=
        (Printf.sprintf "part%d" part, float_of_int t.part_events.(part))
        :: !series
    done;
    Profile.sample p ~ts:now ~name:"domain events" ~series:!series
  end;
  t.samp_last_ts <- now;
  t.next_sample_ps <- now + Profile.sample_interval_ps p

(* One critpath event for [dur] ps of [cat] ending at the context's
   current local time, stamped with the profiler's current frame.  All
   critpath recording funnels through here so the disabled cost is one
   option match per charge site. *)
let cp_record t ctx cp ~cat ~dur ~end_ps ~pred =
  let fn, line =
    match t.profile with
    | None -> (0, 0)
    | Some p ->
        ( Profile.current_fn_slot p ~ctx:ctx.id,
          Profile.current_line_slot p ~ctx:ctx.id )
  in
  Critpath.record cp ~ctx:ctx.id ~core:ctx.core ~cat ~dur ~end_ps ~fn ~line
    ~pred

(* Record one timed interval: into the trace, into the event-dependency
   graph ([pred] names the event the interval causally waited on), and —
   when profiling — as picoseconds attributed to the context's current
   source frame. *)
let record_interval ?(pred = -1) t ctx ~start_ps ~end_ps kind =
  (match t.trace with
  | None -> ()
  | Some tr ->
      Trace.record tr ~ctx:ctx.id ~core:ctx.core ~start_ps ~end_ps kind);
  (match t.critpath with
  | None -> ()
  | Some cp ->
      cp_record t ctx cp ~cat:(Trace.kind_index kind)
        ~dur:(end_ps - start_ps) ~end_ps ~pred);
  match t.profile with
  | None -> ()
  | Some p ->
      Profile.charge p ~ctx:ctx.id ~kind (end_ps - start_ps);
      if end_ps >= t.next_sample_ps then take_samples t p end_ps

let memmap t = t.memmap
let mesh t = t.mesh

let n_ctxs t = t.n_ctx

let events t = t.n_events

(* --- the ready heaps ----------------------------------------------------- *)

(* Strict total order on (time, ctx id): with distinct context ids no two
   live keys compare equal, so a heap's minimum is unique and pop order
   is independent of insertion order — the property that keeps scheduling
   bit-identical to the old fold over the context array. *)
let heap_less h i j =
  h.hnow.(i) < h.hnow.(j)
  || (h.hnow.(i) = h.hnow.(j) && h.hid.(i) < h.hid.(j))

let heap_swap h i j =
  let n = h.hnow.(i) and d = h.hid.(i) in
  h.hnow.(i) <- h.hnow.(j);
  h.hid.(i) <- h.hid.(j);
  h.hnow.(j) <- n;
  h.hid.(j) <- d

let heap_push h ~now ~id =
  let cap = Array.length h.hnow in
  if h.hlen = cap then begin
    let bigger_now = Array.make (2 * cap) 0 in
    let bigger_id = Array.make (2 * cap) 0 in
    Array.blit h.hnow 0 bigger_now 0 cap;
    Array.blit h.hid 0 bigger_id 0 cap;
    h.hnow <- bigger_now;
    h.hid <- bigger_id
  end;
  let i = h.hlen in
  h.hnow.(i) <- now;
  h.hid.(i) <- id;
  h.hlen <- h.hlen + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if heap_less h i parent then begin
        heap_swap h i parent;
        up parent
      end
    end
  in
  up i

(* Remove and return the root; caller checks liveness. *)
let heap_pop_root h =
  let now = h.hnow.(0) and id = h.hid.(0) in
  h.hlen <- h.hlen - 1;
  if h.hlen > 0 then begin
    h.hnow.(0) <- h.hnow.(h.hlen);
    h.hid.(0) <- h.hid.(h.hlen);
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < h.hlen && heap_less h l !smallest then smallest := l;
      if r < h.hlen && heap_less h r !smallest then smallest := r;
      if !smallest <> i then begin
        heap_swap h i !smallest;
        down !smallest
      end
    in
    down 0
  end;
  (now, id)

(* Drop stale roots until the root is live (the context is still Ready at
   exactly the recorded time); the partition heap's live minimum is then
   at the root.  Returns false when the heap ran empty. *)
let heap_settle t h =
  let rec go () =
    if h.hlen = 0 then false
    else begin
      let c = t.ctx_arr.(h.hid.(0)) in
      if c.status = Ready && c.now = h.hnow.(0) then true
      else begin
        ignore (heap_pop_root h);
        go ()
      end
    end
  in
  go ()

(* Record that [ctx] is runnable at its current local time.  The context
   is stashed rather than pushed: the run loop pushes stashed contexts
   into their partition heap, except the one it resumes immediately —
   which is the common case on a quantum-sliced shared core and skips
   the heap round trip entirely. *)
let ready_enqueue t ctx = t.just_ready <- ctx :: t.just_ready

let heap_of_ctx t ctx = t.heaps.(t.part_of_core.(ctx.core))

(* Move stashed ready contexts into their partition heaps; [except]
   (physical identity, the context about to be resumed) skips the heap. *)
let flush_ready t except =
  match t.just_ready with
  | [] -> ()
  | cs ->
      t.just_ready <- [];
      List.iter
        (fun c ->
          if c != except then
            heap_push (heap_of_ctx t c) ~now:c.now ~id:c.id)
        cs

let no_ctx : ctx =
  { id = -1; core = 0; barrier_member = false;
    stats = Stats.create_ctx (); now = 0; status = Finished;
    pending = None; joiners = [] }

let add_ctx t ~core ~barrier_member ~now =
  if core < 0 || core >= Config.n_cores t.cfg then
    invalid_arg "Engine: core out of range";
  let ctx =
    { id = t.n_ctx; core; barrier_member; stats = Stats.create_ctx ();
      now; status = Ready; pending = None; joiners = [] }
  in
  let cap = Array.length t.ctx_arr in
  if t.n_ctx = cap then begin
    (* amortized-O(1) growth; the fresh context doubles as filler for the
       slots beyond [n_ctx], which are never read *)
    let bigger = Array.make (max 8 (2 * cap)) ctx in
    Array.blit t.ctx_arr 0 bigger 0 t.n_ctx;
    t.ctx_arr <- bigger
  end;
  t.ctx_arr.(t.n_ctx) <- ctx;
  t.n_ctx <- t.n_ctx + 1;
  if barrier_member then t.n_barrier_members <- t.n_barrier_members + 1;
  let proc = t.procs.(core) in
  proc.ctx_count <- proc.ctx_count + 1;
  if proc.ctx_count = 2 then t.shared_cores <- core :: t.shared_cores;
  ready_enqueue t ctx;
  ctx

(* --- timing helpers ----------------------------------------------------- *)

let cc t n = Config.core_cycles_ps t.cfg n

(* Core cycles at the context's core's *current* frequency — the SCC's
   DVFS changes per-domain clocks at run time (section 5.1). *)
let ccx t ctx n = n * t.ps_core.(ctx.core)

(* Acquire the context's core pipeline: returns the issue time of the
   next operation, honouring the serial core resource and the
   context-switch penalty when the core is shared.  Advances [ctx.now] to
   the issue time so latency computations (memory-controller queuing in
   particular) start from when the operation actually issues. *)
let acquire_processor t ctx =
  let proc = t.procs.(ctx.core) in
  let start = max ctx.now proc.free_at in
  let start =
    if proc.ctx_count > 1 && proc.last_ctx <> ctx.id then begin
      ctx.stats.Stats.context_switches <-
        ctx.stats.Stats.context_switches + 1;
      let start = start + ccx t ctx t.cfg.Config.context_switch_cycles in
      proc.slice_end <- start + ccx t ctx t.cfg.Config.quantum_cycles;
      start
    end
    else start
  in
  (* the issue delay — core busy with another context plus the switch
     penalty — is scheduler wait, enabled by the previous owner's last
     event *)
  (match t.critpath with
  | None -> ()
  | Some cp ->
      if start > ctx.now then begin
        let pred =
          if proc.last_ctx >= 0 && proc.last_ctx <> ctx.id then
            Critpath.last_event cp ~ctx:proc.last_ctx
          else -1
        in
        cp_record t ctx cp ~cat:Critpath.cat_sched_wait
          ~dur:(start - ctx.now) ~end_ps:start ~pred
      end);
  proc.last_ctx <- ctx.id;
  ctx.now <- start;
  start

(* Hold the core from the issue time until [until]. *)
let occupy_processor t ctx ~until =
  t.procs.(ctx.core).free_at <- until;
  ctx.now <- until

(* A pure-compute burst of [dur] picoseconds.  On a shared core the OS
   preempts every quantum, so a long burst pays a switch per expired time
   slice — keeping the Pthread baseline's overhead independent of how
   coarsely workloads batch their compute effects. *)
let charge_compute t ctx dur =
  let proc = t.procs.(ctx.core) in
  let start = acquire_processor t ctx in
  let dur =
    if proc.ctx_count > 1 then begin
      let quantum_ps = ccx t ctx t.cfg.Config.quantum_cycles in
      let switch_ps = ccx t ctx t.cfg.Config.context_switch_cycles in
      let slices = dur / quantum_ps in
      ctx.stats.Stats.context_switches <-
        ctx.stats.Stats.context_switches + slices;
      dur + (slices * switch_ps)
    end
    else dur
  in
  occupy_processor t ctx ~until:(start + dur);
  record_interval t ctx ~start_ps:start ~end_ps:(start + dur) Trace.Compute

(* --- memory system ------------------------------------------------------ *)

(* Round trip to a memory controller for one line, with FIFO queuing.
   Returns the completion time of the data return. *)
let mc_round_trip t ~mc ~arrive =
  let service = t.mc_service_ps in
  let start = max arrive t.mc_free_at.(mc) in
  t.mc_free_at.(mc) <- start + service;
  t.mc_busy_ps.(mc) <- t.mc_busy_ps.(mc) + service;
  t.mc_requests.(mc) <- t.mc_requests.(mc) + 1;
  start + service + t.dram_access_ps

(* A cacheable private-DRAM access of one line. *)
let private_line t ctx ~write addr =
  let cs = ctx.stats in
  let r1 = Cache.access_code t.l1.(ctx.core) ~write addr in
  if r1 = Cache.hit then begin
    cs.Stats.l1_hits <- cs.Stats.l1_hits + 1;
    ccx t ctx t.cfg.Config.l1_hit_cycles
  end
  else begin
    cs.Stats.l1_misses <- cs.Stats.l1_misses + 1;
    let r2 = Cache.access_code t.l2.(ctx.core) ~write:false addr in
    if r2 = Cache.hit then begin
      cs.Stats.l2_hits <- cs.Stats.l2_hits + 1;
      ccx t ctx (t.cfg.Config.l1_hit_cycles + t.cfg.Config.l2_hit_cycles)
    end
    else begin
      cs.Stats.l2_misses <- cs.Stats.l2_misses + 1;
      cs.Stats.private_dram_lines <- cs.Stats.private_dram_lines + 1;
      let mc = t.mc_of.(ctx.core) in
      let out = t.mc_out_ps.(ctx.core) in
      t.mesh_busy_ps <- t.mesh_busy_ps + (2 * out);
      (match t.critpath with
      | None -> ()
      | Some cp -> Critpath.note_mesh cp ~ctx:ctx.id (2 * out));
      let base = ccx t ctx t.cfg.Config.dram_base_cycles in
      let arrive = ctx.now + base + out in
      let back = mc_round_trip t ~mc ~arrive in
      (* dirty victim writeback occupies the controller but does not
         block the core *)
      if r1 = Cache.miss_evict_dirty || r2 = Cache.miss_evict_dirty
      then begin
        let service = t.mc_service_ps in
        t.mc_free_at.(mc) <- t.mc_free_at.(mc) + service;
        t.mc_busy_ps.(mc) <- t.mc_busy_ps.(mc) + service
      end;
      back + out - ctx.now
    end
  end

(* An uncacheable shared-DRAM access of one line: full round trip every
   time; controllers are line-interleaved so heavy traffic spreads over
   all four and still saturates them at high core counts.  With
   [posted_shared_writes], a store retires after the issue cost while its
   controller occupancy is still booked (the SCC's write-combine
   buffer). *)
let shared_line t ctx ~write addr =
  ctx.stats.Stats.shared_dram_lines <- ctx.stats.Stats.shared_dram_lines + 1;
  if write then
    ctx.stats.Stats.shared_dram_stores <- ctx.stats.Stats.shared_dram_stores + 1
  else
    ctx.stats.Stats.shared_dram_loads <- ctx.stats.Stats.shared_dram_loads + 1;
  let line = Memmap.offset_of_addr addr / t.cfg.Config.line_bytes in
  let mc = line mod t.cfg.Config.n_mcs in
  let out = t.shared_out_ps.(ctx.core).(mc) in
  t.mesh_busy_ps <- t.mesh_busy_ps + (2 * out);
  (match t.critpath with
  | None -> ()
  | Some cp ->
      Critpath.note_mesh cp ~ctx:ctx.id (2 * out);
      Critpath.note_shared_access cp ~ctx:ctx.id);
  let base = ccx t ctx t.cfg.Config.dram_base_cycles in
  let arrive = ctx.now + base + out in
  let back = mc_round_trip t ~mc ~arrive in
  if write && t.cfg.Config.posted_shared_writes then base + out
  else back + out - ctx.now

(* An MPB access of one line: base cost, mesh round trip to the owning
   tile, one transfer slot at the owning slice's port. *)
let mpb_line t ctx ~write:_ ~owner _addr =
  ctx.stats.Stats.mpb_lines <- ctx.stats.Stats.mpb_lines + 1;
  let out = t.core_out_ps.(ctx.core).(owner) in
  t.mesh_busy_ps <- t.mesh_busy_ps + (2 * out);
  (match t.critpath with
  | None -> ()
  | Some cp -> Critpath.note_mesh cp ~ctx:ctx.id (2 * out));
  let base = ccx t ctx t.cfg.Config.mpb_base_cycles in
  let transfer = t.mesh_transfer_ps in
  let arrive = ctx.now + base + out in
  let start = max arrive t.mpb_free_at.(owner) in
  t.mpb_free_at.(owner) <- start + transfer;
  start + transfer + out - ctx.now

(* One line's worth of memory access: issue when the core is free (the
   latency functions measure queuing from the true issue time), then
   block the core for the round trip (in-order P54C, no overlap). *)
let charge_access t ctx ~write addr =
  let cs = ctx.stats in
  if write then cs.Stats.stores <- cs.Stats.stores + 1
  else cs.Stats.loads <- cs.Stats.loads + 1;
  let before = ctx.now in
  let start = acquire_processor t ctx in
  (* decode the region inline — the [Memmap.region] variant would box
     the owning core on every access *)
  let kind = (addr lsr 40) land 0x3 in
  let dur =
    match kind with
    | 0 -> private_line t ctx ~write addr
    | 1 -> shared_line t ctx ~write addr
    | 2 -> mpb_line t ctx ~write ~owner:((addr lsr 32) land 0xff) addr
    | _ -> invalid_arg "Engine.charge_access: bad address"
  in
  occupy_processor t ctx ~until:(start + dur);
  record_interval t ctx ~start_ps:start ~end_ps:(start + dur)
    (match kind with
    | 0 -> Trace.Mem_private
    | 1 -> Trace.Mem_shared
    | _ -> Trace.Mem_mpb);
  cs.Stats.mem_stall_ps <- cs.Stats.mem_stall_ps + (ctx.now - before)

(* --- synchronization ---------------------------------------------------- *)

let barrier_group_size t = t.n_barrier_members

let barrier_cost t = cc t t.cfg.Config.mpb_base_cycles

(* Release every waiter of a full barrier at the propagation time.
   [key] identifies the barrier for the profiler's imbalance table: a
   counted-barrier id, or [-1] for the global barrier. *)
let release_barrier_waiters t ~key waiters =
  let release =
    List.fold_left (fun acc (c, _) -> max acc c.now) 0 waiters
    + barrier_cost t
  in
  (match t.profile with
  | None -> ()
  | Some p ->
      let first =
        List.fold_left (fun acc (c, _) -> min acc c.now) max_int waiters
      in
      let last = release - barrier_cost t in
      Profile.barrier_episode p ~key ~spread_ps:(max 0 (last - first)));
  (* every waiter's release is enabled by the last arriver: capture its
     latest event before the release intervals overwrite the cursors *)
  let pred =
    match t.critpath with
    | None -> -1
    | Some cp ->
        let last_arriver =
          List.fold_left
            (fun acc (c, _) ->
              if acc == no_ctx || c.now > acc.now
                 || (c.now = acc.now && c.id < acc.id)
              then c
              else acc)
            no_ctx waiters
        in
        if last_arriver == no_ctx then -1
        else Critpath.last_event cp ~ctx:last_arriver.id
  in
  List.iter
    (fun (c, k) ->
      c.stats.Stats.barrier_wait_ps <-
        c.stats.Stats.barrier_wait_ps + (release - c.now);
      record_interval ~pred t c ~start_ps:c.now ~end_ps:release
        Trace.Barrier_wait;
      c.now <- release;
      c.status <- Ready;
      c.pending <- Some (Cont k);
      ready_enqueue t c)
    waiters

let arrive_barrier t ctx k =
  t.barrier_waiting <- (ctx, k) :: t.barrier_waiting;
  t.n_barrier_waiting <- t.n_barrier_waiting + 1;
  if t.n_barrier_waiting = barrier_group_size t then begin
    release_barrier_waiters t ~key:(-1) t.barrier_waiting;
    t.barrier_waiting <- [];
    t.n_barrier_waiting <- 0
  end
  else begin
    ctx.status <- Parked;
    ctx.pending <- Some (Cont k)
  end

let park_ready t ctx k =
  ctx.status <- Ready;
  ctx.pending <- Some (Cont k);
  ready_enqueue t ctx

(* A counted barrier: like the global barrier but over an explicit group
   size, keyed by barrier id (pthread_barrier_t instances, sub-groups). *)
let arrive_barrier_n t ctx ~id ~count k =
  if count < 1 then invalid_arg "Engine: barrier group must be positive";
  let cell =
    match Hashtbl.find_opt t.counted_barriers id with
    | Some cell -> cell
    | None ->
        let cell = { cb_arrived = 0; cb_waiters = [] } in
        Hashtbl.replace t.counted_barriers id cell;
        cell
  in
  cell.cb_waiters <- (ctx, k) :: cell.cb_waiters;
  cell.cb_arrived <- cell.cb_arrived + 1;
  if cell.cb_arrived >= count then begin
    release_barrier_waiters t ~key:id cell.cb_waiters;
    cell.cb_waiters <- [];
    cell.cb_arrived <- 0
  end
  else begin
    ctx.status <- Parked;
    ctx.pending <- Some (Cont k)
  end

let get_flag t id =
  match Hashtbl.find_opt t.flags id with
  | Some f -> f
  | None ->
      let f = { value = false; set_time = 0; set_ev = -1; flag_waiters = [] } in
      Hashtbl.replace t.flags id f;
      f

(* Writing a flag costs an MPB access; a set wakes every waiter at the
   propagation time. *)
let do_flag_set t ctx id value k =
  let f = get_flag t id in
  let before = ctx.now in
  ctx.now <- ctx.now + ccx t ctx t.cfg.Config.mpb_base_cycles;
  (match t.critpath with
  | None -> ()
  | Some cp ->
      cp_record t ctx cp ~cat:Critpath.cat_sync ~dur:(ctx.now - before)
        ~end_ps:ctx.now ~pred:(-1);
      f.set_ev <- Critpath.last_event cp ~ctx:ctx.id);
  f.value <- value;
  f.set_time <- ctx.now;
  if value then begin
    List.iter
      (fun (w, wk) ->
        let wbefore = w.now in
        w.now <- max w.now ctx.now + ccx t w t.cfg.Config.mpb_base_cycles;
        (match t.critpath with
        | None -> ()
        | Some cp ->
            cp_record t w cp ~cat:Critpath.cat_sync ~dur:(w.now - wbefore)
              ~end_ps:w.now ~pred:f.set_ev);
        w.status <- Ready;
        w.pending <- Some (Cont wk);
        ready_enqueue t w)
      f.flag_waiters;
    f.flag_waiters <- []
  end;
  park_ready t ctx k

let do_flag_wait t ctx id k =
  let f = get_flag t id in
  if f.value then begin
    let before = ctx.now in
    ctx.now <-
      max ctx.now f.set_time + ccx t ctx t.cfg.Config.mpb_base_cycles;
    (match t.critpath with
    | None -> ()
    | Some cp ->
        cp_record t ctx cp ~cat:Critpath.cat_sync ~dur:(ctx.now - before)
          ~end_ps:ctx.now ~pred:f.set_ev);
    park_ready t ctx k
  end
  else begin
    ctx.status <- Parked;
    ctx.pending <- Some (Cont k);
    f.flag_waiters <- (ctx, k) :: f.flag_waiters
  end

(* Test-and-set register access cost: a round trip to the register's
   core. *)
let lock_cost t ctx lock_id =
  let hops =
    Mesh.hops_core_to_core t.mesh ~from_core:ctx.core ~to_core:lock_id
  in
  ccx t ctx t.cfg.Config.mpb_base_cycles
  + (2 * Mesh.traverse_ps t.mesh ~hops)

let do_acquire t ctx lock_id k =
  let lock = t.locks.(lock_id) in
  match lock.held_by with
  | None ->
      lock.held_by <- Some ctx.id;
      let before = ctx.now in
      ctx.now <- max ctx.now lock.free_time + lock_cost t ctx lock_id;
      (match t.critpath with
      | None -> ()
      | Some cp ->
          (* uncontended: the test-and-set round trip, plus any wait for
             the register to come free after the previous release *)
          cp_record t ctx cp ~cat:Critpath.cat_sync ~dur:(ctx.now - before)
            ~end_ps:ctx.now
            ~pred:(if lock.free_time > before then lock.free_ev else -1));
      (match t.profile with
      | None -> ()
      | Some p ->
          Profile.lock_acquired p ~lock:lock_id ~wait_ps:0 ~holder:(-1));
      ctx.status <- Ready;
      ctx.pending <- Some (Cont k);
      ready_enqueue t ctx
  | Some _ ->
      ctx.status <- Parked;
      ctx.pending <- Some (Cont k);
      Queue.add (ctx, k) lock.waiters

let do_release t ctx lock_id k =
  let lock = t.locks.(lock_id) in
  (match lock.held_by with
  | Some owner when owner = ctx.id -> ()
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf
           "Engine: context %d releases lock %d it does not hold" ctx.id
           lock_id));
  let before = ctx.now in
  ctx.now <- ctx.now + lock_cost t ctx lock_id;
  lock.free_time <- ctx.now;
  (* the releaser's register round trip, then remember the release event:
     it is the holder edge for whoever wakes (or next acquires) *)
  (match t.critpath with
  | None -> ()
  | Some cp ->
      cp_record t ctx cp ~cat:Critpath.cat_sync ~dur:(ctx.now - before)
        ~end_ps:ctx.now ~pred:(-1);
      lock.free_ev <- Critpath.last_event cp ~ctx:ctx.id);
  (match Queue.take_opt lock.waiters with
  | None -> lock.held_by <- None
  | Some (waiter, wk) ->
      lock.held_by <- Some waiter.id;
      let wake =
        max waiter.now lock.free_time + lock_cost t waiter lock_id
      in
      waiter.stats.Stats.lock_wait_ps <-
        waiter.stats.Stats.lock_wait_ps + (wake - waiter.now);
      record_interval ~pred:lock.free_ev t waiter ~start_ps:waiter.now
        ~end_ps:wake Trace.Lock_wait;
      (match t.profile with
      | None -> ()
      | Some p ->
          Profile.lock_acquired p ~lock:lock_id
            ~wait_ps:(wake - waiter.now) ~holder:ctx.id);
      waiter.now <- wake;
      waiter.status <- Ready;
      waiter.pending <- Some (Cont wk);
      ready_enqueue t waiter);
  ctx.status <- Ready;
  ctx.pending <- Some (Cont k);
  ready_enqueue t ctx

let finish_ctx t ctx =
  ctx.status <- Finished;
  ctx.stats.Stats.finish_ps <- ctx.now;
  t.n_finished <- t.n_finished + 1;
  (* wake joiners, recorded on the finished context itself *)
  List.iter
    (fun (waiter, k) ->
      t.n_join_waiting <- t.n_join_waiting - 1;
      let before = waiter.now in
      waiter.now <- max waiter.now ctx.now;
      (match t.critpath with
      | None -> ()
      | Some cp ->
          if waiter.now > before then
            cp_record t waiter cp ~cat:Critpath.cat_sync
              ~dur:(waiter.now - before) ~end_ps:waiter.now
              ~pred:(Critpath.last_event cp ~ctx:ctx.id));
      waiter.status <- Ready;
      waiter.pending <- Some (Cont k);
      ready_enqueue t waiter)
    ctx.joiners;
  ctx.joiners <- []

(* --- the scheduler ------------------------------------------------------ *)

(* Cost of creating a process/thread context, charged to the parent. *)
let spawn_cost_cycles = 2_000

let count_event t ctx =
  t.n_events <- t.n_events + 1;
  t.part_events.(t.part_of_core.(ctx.core)) <-
    t.part_events.(t.part_of_core.(ctx.core)) + 1

(* LBTS window accounting (measurement only, no scheduling effect): a
   window is [lbts, lbts + lookahead); the partitions whose events land
   in the same window could run concurrently under a conservative
   parallel executor, so the mean active-partition count per window is
   the measured parallel-DES ceiling for this workload. *)
let note_window t ctx =
  if t.n_parts > 1 then begin
    if ctx.now >= t.win_end then begin
      if t.win_mask <> 0 then begin
        let active = ref 0 in
        let m = ref t.win_mask in
        while !m <> 0 do
          m := !m land (!m - 1);
          incr active
        done;
        t.win_count <- t.win_count + 1;
        t.win_active_sum <- t.win_active_sum + !active;
        if !active > t.win_active_max then t.win_active_max <- !active
      end;
      t.win_end <- ctx.now + t.lookahead_ps;
      t.win_mask <- 0
    end;
    t.win_mask <- t.win_mask lor (1 lsl t.part_of_core.(ctx.core))
  end

(* Would the run loop, with [ctx] parked ready right now, pick [ctx]
   again as the very next context?  This emulates the scheduling
   decision exactly — slice owners always outrank heap contexts, and
   ties break on (local time, ctx id) — so continuing [ctx] in place
   preserves the event order bit for bit.  The check is conservative in
   one place only: it requires the ready-stash to be empty and, when
   [ctx] is alone on its core, compares against the *settled* partition
   heap roots.  Stale roots always carry an earlier snapshot time than
   their context's true time, so settling (which the real pick also
   does) never changes the answer; a [false] merely forfeits the
   shortcut, never correctness. *)
let fast_self_pick t ctx =
  (match t.just_ready with [] -> true | _ :: _ -> false)
  &&
  let proc = t.procs.(ctx.core) in
  if proc.ctx_count > 1 then
    (* shared core: [ctx] must still own its slice and beat every other
       eligible slice owner on (time, id) — mirrors [slice_pick] *)
    proc.last_ctx = ctx.id
    && ctx.now <= proc.slice_end
    && List.for_all
         (fun core ->
           core = ctx.core
           ||
           let p = t.procs.(core) in
           p.last_ctx < 0
           ||
           let c = t.ctx_arr.(p.last_ctx) in
           c.status <> Ready || c.now > p.slice_end
           || ctx.now < c.now
           || (ctx.now = c.now && ctx.id < c.id))
         t.shared_cores
  else
    (* [ctx] alone on its core: no slice owner anywhere may be eligible
       (they would outrank it), and it must beat the live minimum of
       every partition heap — mirrors [slice_pick] + [heap_pick] *)
    List.for_all
      (fun core ->
        let p = t.procs.(core) in
        p.last_ctx < 0
        ||
        let c = t.ctx_arr.(p.last_ctx) in
        c.status <> Ready || c.now > p.slice_end)
      t.shared_cores
    &&
    let ok = ref true in
    let p = ref 0 in
    while !ok && !p < t.n_parts do
      let h = t.heaps.(!p) in
      if heap_settle t h then begin
        let rn = h.hnow.(0) in
        if rn < ctx.now || (rn = ctx.now && h.hid.(0) < ctx.id) then
          ok := false
      end;
      incr p
    done;
    !ok

let rec handler t ctx : (unit, unit) Effect.Deep.handler =
  (* One yield receiver per context, allocated once: the performer
     checked [fast_self_pick] before suspending and nothing mutates
     between that check and this park, so a performed [E_yield] always
     means "some other context must run next". *)
  let park : (unit, unit) Effect.Deep.continuation -> unit =
   fun k -> park_ready t ctx k
  in
  let park_opt = Some park in
  {
    Effect.Deep.retc = (fun () -> finish_ctx t ctx);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) :
           ((a, unit) Effect.Deep.continuation -> unit) option ->
        match eff with
        | E_yield ->
            (* the performer ([api.compute]/[load]/[store]) already
               applied the operation's charge; this is pure scheduling *)
            park_opt
        | E_barrier ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                arrive_barrier t ctx k)
        | E_acquire lock_id ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                do_acquire t ctx lock_id k)
        | E_release lock_id ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                do_release t ctx lock_id k)
        | E_now ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Effect.Deep.continue k ctx.now)
        | E_spawn (core, program) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let dur = ccx t ctx spawn_cost_cycles in
                ctx.stats.Stats.compute_ps <-
                  ctx.stats.Stats.compute_ps + dur;
                charge_compute t ctx dur;
                let child = add_ctx t ~core ~barrier_member:false
                              ~now:ctx.now in
                (* the child's lane is idle from t=0 until the spawn:
                   pad it so its accounting also sums to the wall *)
                (match t.critpath with
                | None -> ()
                | Some cp ->
                    if child.now > 0 then
                      Critpath.record cp ~ctx:child.id ~core:child.core
                        ~cat:Critpath.cat_idle ~dur:child.now
                        ~end_ps:child.now ~fn:0 ~line:0
                        ~pred:(Critpath.last_event cp ~ctx:ctx.id));
                let api = make_api t child in
                child.pending <- Some (Start (fun () -> program api));
                Effect.Deep.continue k child.id)
        | E_set_freq (core, mhz) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if mhz < 100 || mhz > 1000 then
                  invalid_arg "Engine: frequency outside 100..1000 MHz"
                else begin
                  (* DVFS is tile-granular on the SCC: both cores of the
                     tile change together *)
                  let tile_base =
                    core / t.cfg.Config.cores_per_tile
                    * t.cfg.Config.cores_per_tile
                  in
                  for c = tile_base
                      to tile_base + t.cfg.Config.cores_per_tile - 1 do
                    t.core_freq_mhz.(c) <- mhz;
                    t.ps_core.(c) <- Config.ps_per_cycle mhz
                  done;
                  (* the PLL relock stalls the caller briefly *)
                  charge_compute t ctx (ccx t ctx 1_000);
                  park_ready t ctx k
                end)
        | E_barrier_n (id, count) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                arrive_barrier_n t ctx ~id ~count k)
        | E_flag_set (id, value) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                do_flag_set t ctx id value k)
        | E_flag_wait id ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                do_flag_wait t ctx id k)
        | E_join target ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if target < 0 || target >= n_ctxs t then
                  invalid_arg "Engine: join of unknown context"
                else begin
                  let child = t.ctx_arr.(target) in
                  if child.status = Finished then begin
                    let before = ctx.now in
                    ctx.now <- max ctx.now child.now;
                    (match t.critpath with
                    | None -> ()
                    | Some cp ->
                        if ctx.now > before then
                          cp_record t ctx cp ~cat:Critpath.cat_sync
                            ~dur:(ctx.now - before) ~end_ps:ctx.now
                            ~pred:(Critpath.last_event cp ~ctx:child.id));
                    park_ready t ctx k
                  end
                  else begin
                    ctx.status <- Parked;
                    ctx.pending <- Some (Cont k);
                    child.joiners <- (ctx, k) :: child.joiners;
                    t.n_join_waiting <- t.n_join_waiting + 1
                  end
                end)
        | _ -> None);
  }

and make_api t ctx =
  let line = t.cfg.Config.line_bytes in
  (* Hot-path shortcut, mirroring the [E_compute]/[E_access] handler
     arms: apply the operation's charge first, then — when the
     scheduler would provably pick this context again — account for the
     event in place and return, performing no effect at all (no
     continuation is reified, no stack grows).  Otherwise yield to the
     scheduler with the charge already applied.  The state mutations
     and their order are exactly those of the effect path, so the event
     stream is bit-identical either way. *)
  let settle () =
    if fast_self_pick t ctx then begin
      count_event t ctx;
      note_window t ctx
    end
    else Effect.perform E_yield
  in
  (* a block access issues one scheduling point per line, so the
     scheduler can interleave other contexts' requests between them *)
  let access write addr ~bytes =
    let nlines = max 1 ((bytes + line - 1) / line) in
    for i = 0 to nlines - 1 do
      charge_access t ctx ~write (addr + (i * line));
      settle ()
    done
  in
  {
    self = ctx.id;
    nunits = n_ctxs t;
    core = ctx.core;
    compute =
      (fun n ->
        if n > 0 then begin
          let dur = ccx t ctx n in
          ctx.stats.Stats.compute_ps <- ctx.stats.Stats.compute_ps + dur;
          charge_compute t ctx dur;
          settle ()
        end);
    load = (fun addr ~bytes -> access false addr ~bytes);
    store = (fun addr ~bytes -> access true addr ~bytes);
    barrier = (fun () -> Effect.perform E_barrier);
    acquire = (fun lock_id -> Effect.perform (E_acquire lock_id));
    release = (fun lock_id -> Effect.perform (E_release lock_id));
    now_ps = (fun () -> Effect.perform E_now);
    spawn_child =
      (fun ~core program -> Effect.perform (E_spawn (core, program)));
    join = (fun target -> Effect.perform (E_join target));
    barrier_n =
      (fun ~id ~count -> Effect.perform (E_barrier_n (id, count)));
    flag_set = (fun ~id value -> Effect.perform (E_flag_set (id, value)));
    flag_wait = (fun ~id -> Effect.perform (E_flag_wait id));
    set_frequency =
      (fun ~core ~mhz -> Effect.perform (E_set_freq (core, mhz)));
  }

let spawn t ~core program =
  if t.started then
    invalid_arg "Engine.spawn: simulation already started (use spawn_child)";
  let ctx = add_ctx t ~core ~barrier_member:true ~now:0 in
  (* [make_api] runs inside the thunk, at first resume, so [api.nunits]
     sees every statically spawned context *)
  ctx.pending <- Some (Start (fun () -> program (make_api t ctx)));
  ctx.id

(* Slice preference: on a shared core the OS keeps the current thread
   running until its time slice expires.  At most one context per core
   can own the slice (it must be the core's [last_ctx]), so scanning the
   shared cores is O(#shared cores), not O(n).  Ties between slice
   owners on distinct cores break on the smaller local time, then the
   smaller ctx id — exactly the order the original left-to-right fold
   produced, since contexts are stored in id order.  This scan looks at
   context records directly, so it is correct whether or not the
   contexts have been pushed to a heap yet. *)
let slice_pick t =
  let best = ref no_ctx in
  List.iter
    (fun core ->
      let proc = t.procs.(core) in
      if proc.last_ctx >= 0 then begin
        let c = t.ctx_arr.(proc.last_ctx) in
        if c.status = Ready && c.now <= proc.slice_end then begin
          let b = !best in
          if
            b.id < 0 || c.now < b.now || (c.now = b.now && c.id < b.id)
          then best := c
        end
      end)
    t.shared_cores;
  !best

(* The live global minimum across the partition heaps: settle each heap
   (drop stale roots), then merge the roots by (time, id).  With one
   partition this is exactly the PR 3 single-heap pop. *)
let heap_pick t =
  let best = ref no_ctx in
  let best_part = ref (-1) in
  for p = 0 to t.n_parts - 1 do
    let h = t.heaps.(p) in
    if heap_settle t h then begin
      let c = t.ctx_arr.(h.hid.(0)) in
      let b = !best in
      if b.id < 0 || c.now < b.now || (c.now = b.now && c.id < b.id)
      then begin
        best := c;
        best_part := p
      end
    end
  done;
  if !best_part >= 0 then ignore (heap_pop_root t.heaps.(!best_part));
  !best

let resume t ctx =
  count_event t ctx;
  ctx.status <- Running;
  match ctx.pending with
  | Some (Start main) ->
      ctx.pending <- None;
      Effect.Deep.match_with main () (handler t ctx)
  | Some (Cont k) ->
      ctx.pending <- None;
      Effect.Deep.continue k ()
  | None -> invalid_arg "Engine.resume: context has nothing to run"

let run t =
  if t.started then invalid_arg "Engine.run: simulation already started";
  t.started <- true;
  let rec loop () =
    (* scheduling policy: the runnable context with the smallest local
       time — except that a context still owning its shared core's time
       slice is preferred over switching *)
    let c = slice_pick t in
    if c.id >= 0 then begin
      flush_ready t c;
      note_window t c;
      resume t c;
      loop ()
    end
    else begin
      flush_ready t no_ctx;
      let c = heap_pick t in
      if c.id >= 0 then begin
        note_window t c;
        resume t c;
        loop ()
      end
      else if t.n_finished < n_ctxs t then
        raise
          (Deadlock
             (Printf.sprintf
                "%d of %d contexts parked with no runnable context \
                 (barrier waiting: %d, join waiting: %d)"
                (n_ctxs t - t.n_finished)
                (n_ctxs t)
                t.n_barrier_waiting t.n_join_waiting))
    end
  in
  if n_ctxs t > 0 then loop ();
  (* close the last LBTS window *)
  if t.n_parts > 1 && t.win_mask <> 0 then begin
    let active = ref 0 in
    let m = ref t.win_mask in
    while !m <> 0 do
      m := !m land (!m - 1);
      incr active
    done;
    t.win_count <- t.win_count + 1;
    t.win_active_sum <- t.win_active_sum + !active;
    if !active > t.win_active_max then t.win_active_max <- !active;
    t.win_mask <- 0
  end;
  (* complete inclusive times for frames still open at the end *)
  (match t.profile with
  | None -> ()
  | Some p ->
      (* per-partition event totals for the Prometheus exposition, so
         parallel-DES load imbalance is countable from --metrics: one
         labelled metric family, not a name per partition *)
      if t.n_parts > 1 then begin
        let reg = Profile.registry p in
        Array.iteri
          (fun part ev ->
            let c =
              Obs.Registry.counter reg
                ~help:"events resumed per scheduler partition"
                ~labels:[ ("partition", string_of_int part) ]
                "sim_domain_events_total"
            in
            Obs.Counter.add c ev)
          t.part_events
      end;
      Profile.finalize p);
  (* close the causal account: idle tails up to the wall, the nominal
     MPB line cost for the MPB-speed counterfactual, and the
     parallel-DES lookahead ceilings *)
  match t.critpath with
  | None -> ()
  | Some cp ->
      let wall = ref 0 in
      for i = 0 to t.n_ctx - 1 do
        wall := max !wall t.ctx_arr.(i).stats.Stats.finish_ps
      done;
      let mpb_line_ps =
        cc t t.cfg.Config.mpb_base_cycles
        + (2 * t.lookahead_ps) + t.mesh_transfer_ps
      in
      Critpath.finalize cp ~wall_ps:!wall ~mpb_line_ps;
      if t.n_parts > 1 then begin
        let windowed =
          if t.win_count = 0 then 1.0
          else float_of_int t.win_active_sum /. float_of_int t.win_count
        in
        let total = Array.fold_left ( + ) 0 t.part_events in
        let busiest = Array.fold_left max 1 t.part_events in
        let infinite =
          if total = 0 then 1.0
          else float_of_int total /. float_of_int busiest
        in
        Critpath.set_lookahead cp ~parts:t.n_parts ~windowed ~infinite
      end;
      (match t.profile with
      | None -> ()
      | Some p -> Critpath.register_metrics cp (Profile.registry p))

let stats t =
  {
    Stats.ctxs = Array.init t.n_ctx (fun i -> t.ctx_arr.(i).stats);
    mc_busy_ps = t.mc_busy_ps;
    mc_requests = t.mc_requests;
    domain_events = Array.copy t.part_events;
  }

let n_partitions t = t.n_parts

let partition_events t = Array.copy t.part_events

type par_report = {
  partitions : int;
  lookahead_ps : int;
  windows : int;
  active_sum : int;
  active_max : int;
  domain_events : int array;
}

let par_report t =
  {
    partitions = t.n_parts;
    lookahead_ps = t.lookahead_ps;
    windows = t.win_count;
    active_sum = t.win_active_sum;
    active_max = t.win_active_max;
    domain_events = Array.copy t.part_events;
  }

(* Mean partitions-with-work per LBTS window: the conservative upper
   bound on parallel-DES speedup for the simulated schedule. *)
let par_ceiling r =
  if r.windows = 0 then 1.0
  else float_of_int r.active_sum /. float_of_int r.windows

let elapsed_ps t =
  let acc = ref 0 in
  for i = 0 to t.n_ctx - 1 do
    acc := max !acc t.ctx_arr.(i).stats.Stats.finish_ps
  done;
  !acc

let elapsed_ms t = float_of_int (elapsed_ps t) /. 1e9
