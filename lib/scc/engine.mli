(** Deterministic discrete-event simulation engine.

    Execution contexts are OCaml-5 effects coroutines; the scheduler
    always resumes the runnable context with the smallest local time, so
    shared resources (core pipelines, memory controllers, MPB ports,
    locks, the barrier) are arbitrated in global time order and every run
    is reproducible.  The timing model is documented at the top of the
    implementation. *)

type api = {
  self : int;    (** context id: the RCCE rank or Pthread index *)
  nunits : int;  (** number of spawned contexts *)
  core : int;
  compute : int -> unit;            (** burn [n] core cycles *)
  load : int -> bytes:int -> unit;  (** timed read of [bytes] at address *)
  store : int -> bytes:int -> unit;
  barrier : unit -> unit;
      (** all statically spawned contexts (the barrier group); dynamic
          [spawn_child] contexts do not participate *)
  acquire : int -> unit;            (** test-and-set register of core [i] *)
  release : int -> unit;
  now_ps : unit -> int;
  spawn_child : core:int -> (api -> unit) -> int;
      (** create a context mid-run (pthread_create); returns its id.
          Dynamic contexts do not join the barrier group. *)
  join : int -> unit;               (** wait for a context to finish *)
  barrier_n : id:int -> count:int -> unit;
      (** counted barrier over an explicit group size, keyed by id
          (pthread_barrier_t instances, sub-groups) *)
  flag_set : id:int -> bool -> unit;
      (** write an MPB-resident synchronization flag; a set wakes every
          waiter *)
  flag_wait : id:int -> unit;  (** block until the flag is set *)
  set_frequency : core:int -> mhz:int -> unit;
      (** change a tile's core frequency mid-run (DVFS, section 5.1);
          both cores of the tile change together.  100..1000 MHz. *)
}

exception Deadlock of string

type t

val create :
  ?cfg:Config.t -> ?trace:Trace.t -> ?profile:Profile.t ->
  ?critpath:Critpath.t -> ?sim_jobs:int -> unit -> t
(** With [trace], every compute burst, memory access, barrier wait and
    lock wait is recorded as a timed interval.  With [profile], the same
    picoseconds are additionally attributed to each context's current
    source frame (see {!Profile}), lock and barrier contention is
    tabulated, and machine metrics (L1 hit rate, memory-controller queue
    depth, mesh utilization) are sampled on the profile's interval.

    With [critpath], {e every} local-clock advance — including scheduler
    waits, sync protocol costs and idle padding the trace never sees —
    is reported to the causal recorder with its dependency edge (lock
    holder, barrier last-arriver, flag setter, join target, spawn
    parent), so that after {!run} the accounting identity
    [sum == wall * contexts] holds exactly and {!Critpath.critical_path}
    / {!Critpath.whatifs} explain where the time went.  All three are
    optional and cost nothing when absent.

    [sim_jobs] (default 1, max 62) partitions the mesh's cores into that
    many contiguous tile groups, each with its own ready heap; the
    scheduler merges the partition minima, so the event order — and
    every result — is bit-identical to the sequential scheduler for any
    value.  With [sim_jobs > 1] the run additionally measures, per
    lower-bound-timestamp (LBTS) window of one mesh-hop lookahead
    ({!Mesh.min_hop_ps}), how many partitions had events in the window:
    the conservative parallel-DES ceiling reported by {!par_report}.
    Per-partition event counts surface as [Stats.domain_events]. *)

val cfg : t -> Config.t
val memmap : t -> Memmap.t
val mesh : t -> Mesh.t

val spawn : t -> core:int -> (api -> unit) -> int
(** Register a context on a core (several contexts may share a core — the
    Pthread baseline).  Returns the context id, assigned in spawn order.
    @raise Invalid_argument after {!run} or for an out-of-range core. *)

val run : t -> unit
(** Drive the simulation until every context finishes.
    @raise Deadlock when parked contexts can never resume. *)

val stats : t -> Stats.t

val trace : t -> Trace.t option

val profile : t -> Profile.t option

val critpath : t -> Critpath.t option

val elapsed_ps : t -> int
(** Completion time of the slowest context. *)

val elapsed_ms : t -> float

val events : t -> int
(** Number of scheduler events processed so far: each count is one
    context resume (a compute burst, memory access, or synchronization
    step between two scheduling decisions). *)

val n_partitions : t -> int
(** Scheduler partitions in use ([sim_jobs] clamped to the core count). *)

val partition_events : t -> int array
(** Events resumed per partition so far (length {!n_partitions}). *)

type par_report = {
  partitions : int;
  lookahead_ps : int;    (** LBTS window width: {!Mesh.min_hop_ps} *)
  windows : int;         (** LBTS windows the run spanned *)
  active_sum : int;      (** sum over windows of partitions with events *)
  active_max : int;      (** peak concurrently-active partitions *)
  domain_events : int array;
}
(** Conservative parallel-DES measurement: with [sim_jobs > 1] the run is
    divided into lookahead-wide LBTS windows; partitions whose events fall
    in the same window are causally independent (no cross-tile signal
    travels faster than one hop), so they could execute concurrently. *)

val par_report : t -> par_report

val par_ceiling : par_report -> float
(** Mean active partitions per window — the speedup a conservative
    parallel executor could extract from this workload and partitioning
    (1.0 when no windows were measured). *)
