(* The 6x4 tile mesh: XY coordinates, hop counts, and the mapping of cores
   to tiles and of tiles to their memory controller.

   The four DDR3 controllers sit at the mesh corners; each quadrant's
   tiles use the controller of their corner, so at 32+ active cores at
   least 8 cores contend for each controller — the effect behind the
   paper's Dot Product / LU Decomposition observation. *)

type t = {
  cfg : Config.t;
  mc_tiles : int array;   (* tile id of each memory controller *)
}

let tile_of_xy cfg ~x ~y = (y * cfg.Config.mesh_cols) + x

let create (cfg : Config.t) =
  let right = cfg.Config.mesh_cols - 1 in
  let bottom = cfg.Config.mesh_rows - 1 in
  let mc_tiles =
    [|
      tile_of_xy cfg ~x:0 ~y:0;
      tile_of_xy cfg ~x:right ~y:0;
      tile_of_xy cfg ~x:0 ~y:bottom;
      tile_of_xy cfg ~x:right ~y:bottom;
    |]
  in
  { cfg; mc_tiles }

let tile_of_core t core = core / t.cfg.Config.cores_per_tile

let xy_of_tile t tile =
  (tile mod t.cfg.Config.mesh_cols, tile / t.cfg.Config.mesh_cols)

(* XY (dimension-ordered) routing distance. *)
let hops t ~from_tile ~to_tile =
  let x0, y0 = xy_of_tile t from_tile in
  let x1, y1 = xy_of_tile t to_tile in
  abs (x1 - x0) + abs (y1 - y0)

let n_mcs t = Array.length t.mc_tiles

(* The controller serving a core's memory: the nearest corner, ties
   broken toward the lower MC index (deterministic). *)
let mc_of_core t core =
  let tile = tile_of_core t core in
  let best = ref 0 in
  let best_hops = ref max_int in
  Array.iteri
    (fun i mc_tile ->
      let h = hops t ~from_tile:tile ~to_tile:mc_tile in
      if h < !best_hops then begin
        best := i;
        best_hops := h
      end)
    t.mc_tiles;
  !best

let hops_core_to_mc t ~core ~mc =
  hops t ~from_tile:(tile_of_core t core) ~to_tile:t.mc_tiles.(mc)

let hops_core_to_core t ~from_core ~to_core =
  hops t ~from_tile:(tile_of_core t from_core)
    ~to_tile:(tile_of_core t to_core)

(* One-way mesh traversal time in picoseconds. *)
let traverse_ps t ~hops:h =
  Config.mesh_cycles_ps t.cfg (h * t.cfg.Config.mesh_cycles_per_hop)

(* The minimum latency for one tile to affect another: a single-hop mesh
   traversal.  No cross-tile interaction — a remote MPB access, a
   memory-controller request, a flag write — can land sooner, so this is
   the conservative parallel-DES lookahead: events closer together than
   this on different tiles are causally independent. *)
let min_hop_ps t = traverse_ps t ~hops:1
