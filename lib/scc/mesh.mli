(** The SCC's 6x4 tile mesh: hop counts, core-to-tile mapping, and the
    assignment of cores to the four corner memory controllers. *)

type t

val create : Config.t -> t

val tile_of_core : t -> int -> int

val hops : t -> from_tile:int -> to_tile:int -> int
(** XY-routing distance. *)

val n_mcs : t -> int

val mc_of_core : t -> int -> int
(** The controller serving a core's memory: its nearest corner. *)

val hops_core_to_mc : t -> core:int -> mc:int -> int

val hops_core_to_core : t -> from_core:int -> to_core:int -> int

val traverse_ps : t -> hops:int -> int
(** One-way mesh traversal time in picoseconds. *)

val min_hop_ps : t -> int
(** Minimum latency for one tile to affect another (a single-hop
    traversal) — the conservative parallel-DES lookahead: events closer
    together than this on different tiles are causally independent. *)
