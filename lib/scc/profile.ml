(* Simulated-time source profiler (see profile.mli).

   Everything on the charging path is allocation-free: function and line
   names are interned once to integer slots, per-context frame stacks
   are growable int arrays, and a charge is a handful of array stores.
   Inclusive time uses the push-mark technique: entering a frame
   snapshots the context's total attributed picoseconds, and the pop
   adds the difference — recursive re-entries are marked and skipped, so
   a self-recursive function is not double counted. *)

type t = {
  (* function slots *)
  mutable fn_names : string array;
  fn_tbl : (string, int) Hashtbl.t;
  mutable n_fns : int;
  mutable flat : int array array;   (* [kind].[slot] *)
  mutable incl : int array;         (* [slot] *)
  mutable calls : int array;        (* [slot] *)
  (* line slots *)
  mutable line_names : string array;
  line_tbl : (string, int) Hashtbl.t;
  mutable n_lines : int;
  mutable line_ps : int array;
  (* per-context state *)
  mutable stacks : int array array;  (* [ctx]: slot stack *)
  mutable marks : int array array;   (* [ctx]: attr snapshot per frame; -1 = recursive *)
  mutable depths : int array;
  mutable onstack : int array array; (* [ctx].[slot]: occurrences on the stack *)
  mutable cur_line : int array;
  mutable attr : int array;          (* [ctx]: total attributed ps *)
  mutable n_ctx : int;
  (* locks, keyed by engine lock id *)
  mutable lock_names : string array;
  mutable lock_acqs : int array;
  mutable lock_contended : int array;
  mutable lock_wait : int array;
  mutable lock_max_wait : int array;
  mutable lock_max_holder : int array;
  mutable n_locks : int;
  (* barriers, keyed by barrier id (-1 = the global barrier) *)
  barrier_tbl : (int, barrier_cell) Hashtbl.t;
  (* sampled timelines, reverse recording order *)
  mutable samples : (int * string * (string * float) list) list;
  mutable n_samples : int;
  interval_ps : int;
  (* aggregate metrics *)
  reg : Obs.Registry.t;
  kind_ctr : Obs.Counter.t array;    (* attributed ps per Trace.kind *)
  lock_acq_ctr : Obs.Counter.t;
  lock_contended_ctr : Obs.Counter.t;
  lock_wait_hist : Obs.Histogram.t;
  barrier_ctr : Obs.Counter.t;
  barrier_spread_hist : Obs.Histogram.t;
}

and barrier_cell = {
  mutable bc_episodes : int;
  mutable bc_total_spread : int;
  mutable bc_max_spread : int;
}

let wait_bounds = [| 1_000; 10_000; 100_000; 1_000_000; 10_000_000 |]

let kind_metric_name k =
  match k with
  | Trace.Compute -> "sim_compute_ps_total"
  | Trace.Mem_private -> "sim_mem_private_ps_total"
  | Trace.Mem_shared -> "sim_mem_shared_ps_total"
  | Trace.Mem_mpb -> "sim_mem_mpb_ps_total"
  | Trace.Barrier_wait -> "sim_barrier_wait_ps_total"
  | Trace.Lock_wait -> "sim_lock_wait_ps_total"

let all_kinds =
  [ Trace.Compute; Trace.Mem_private; Trace.Mem_shared; Trace.Mem_mpb;
    Trace.Barrier_wait; Trace.Lock_wait ]

let create ?(sample_interval_ps = 1_000_000) () =
  if sample_interval_ps <= 0 then
    invalid_arg "Profile.create: sample interval must be positive";
  let reg = Obs.Registry.create () in
  let kind_ctr =
    Array.of_list
      (List.map
         (fun k ->
           Obs.Registry.counter reg
             ~help:("simulated picoseconds attributed to "
                    ^ Trace.kind_to_string k)
             (kind_metric_name k))
         all_kinds)
  in
  let t =
    {
      fn_names = Array.make 16 "";
      fn_tbl = Hashtbl.create 16;
      n_fns = 0;
      flat = Array.init Trace.n_kinds (fun _ -> Array.make 16 0);
      incl = Array.make 16 0;
      calls = Array.make 16 0;
      line_names = Array.make 64 "";
      line_tbl = Hashtbl.create 64;
      n_lines = 0;
      line_ps = Array.make 64 0;
      stacks = [||];
      marks = [||];
      depths = [||];
      onstack = [||];
      cur_line = [||];
      attr = [||];
      n_ctx = 0;
      lock_names = Array.make 8 "";
      lock_acqs = Array.make 8 0;
      lock_contended = Array.make 8 0;
      lock_wait = Array.make 8 0;
      lock_max_wait = Array.make 8 0;
      lock_max_holder = Array.make 8 (-1);
      n_locks = 0;
      barrier_tbl = Hashtbl.create 8;
      samples = [];
      n_samples = 0;
      interval_ps = sample_interval_ps;
      reg;
      kind_ctr;
      lock_acq_ctr =
        Obs.Registry.counter reg ~help:"lock acquisitions"
          "sim_lock_acquisitions_total";
      lock_contended_ctr =
        Obs.Registry.counter reg ~help:"lock acquisitions that waited"
          "sim_lock_contended_total";
      lock_wait_hist =
        Obs.Registry.histogram reg ~help:"per-acquisition lock wait (ps)"
          ~bounds:wait_bounds "sim_lock_wait_ps";
      barrier_ctr =
        Obs.Registry.counter reg ~help:"completed barrier episodes"
          "sim_barrier_episodes_total";
      barrier_spread_hist =
        Obs.Registry.histogram reg
          ~help:"per-episode barrier arrival spread (ps)" ~bounds:wait_bounds
          "sim_barrier_spread_ps";
    }
  in
  (* slot 0: time charged while a context's frame stack is empty *)
  Hashtbl.replace t.fn_tbl "<toplevel>" 0;
  t.fn_names.(0) <- "<toplevel>";
  t.n_fns <- 1;
  (* line slot 0: charges with no current line *)
  Hashtbl.replace t.line_tbl "<unknown>" 0;
  t.line_names.(0) <- "<unknown>";
  t.n_lines <- 1;
  t

let sample_interval_ps t = t.interval_ps

(* --- growable storage ----------------------------------------------------- *)

let grow_int_array a n fill =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let bigger = Array.make (max n (2 * max 1 cap)) fill in
    Array.blit a 0 bigger 0 cap;
    bigger
  end

let grow_string_array a n =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let bigger = Array.make (max n (2 * max 1 cap)) "" in
    Array.blit a 0 bigger 0 cap;
    bigger
  end

let ensure_ctx t ctx =
  if ctx >= t.n_ctx then begin
    let n = ctx + 1 in
    let old = t.n_ctx in
    t.depths <- grow_int_array t.depths n 0;
    t.cur_line <- grow_int_array t.cur_line n 0;
    t.attr <- grow_int_array t.attr n 0;
    let cap = Array.length t.stacks in
    if n > cap then begin
      let grow_2d a =
        let bigger = Array.make (max n (2 * max 1 cap)) [||] in
        Array.blit a 0 bigger 0 cap;
        bigger
      in
      t.stacks <- grow_2d t.stacks;
      t.marks <- grow_2d t.marks;
      t.onstack <- grow_2d t.onstack
    end;
    for c = old to n - 1 do
      if Array.length t.stacks.(c) = 0 then begin
        t.stacks.(c) <- Array.make 16 0;
        t.marks.(c) <- Array.make 16 0;
        t.onstack.(c) <- Array.make 16 0
      end
    done;
    t.n_ctx <- n
  end

let intern t name =
  match Hashtbl.find_opt t.fn_tbl name with
  | Some slot -> slot
  | None ->
      let slot = t.n_fns in
      t.n_fns <- slot + 1;
      t.fn_names <- grow_string_array t.fn_names t.n_fns;
      t.fn_names.(slot) <- name;
      t.incl <- grow_int_array t.incl t.n_fns 0;
      t.calls <- grow_int_array t.calls t.n_fns 0;
      for k = 0 to Trace.n_kinds - 1 do
        t.flat.(k) <- grow_int_array t.flat.(k) t.n_fns 0
      done;
      Hashtbl.replace t.fn_tbl name slot;
      slot

let intern_line t key =
  match Hashtbl.find_opt t.line_tbl key with
  | Some slot -> slot
  | None ->
      let slot = t.n_lines in
      t.n_lines <- slot + 1;
      t.line_names <- grow_string_array t.line_names t.n_lines;
      t.line_names.(slot) <- key;
      t.line_ps <- grow_int_array t.line_ps t.n_lines 0;
      Hashtbl.replace t.line_tbl key slot;
      slot

(* --- frames ---------------------------------------------------------------- *)

let push t ~ctx slot =
  ensure_ctx t ctx;
  let d = t.depths.(ctx) in
  let stack = t.stacks.(ctx) in
  if d = Array.length stack then begin
    t.stacks.(ctx) <- grow_int_array stack (d + 1) 0;
    t.marks.(ctx) <- grow_int_array t.marks.(ctx) (d + 1) 0
  end;
  let on = t.onstack.(ctx) in
  let on =
    if slot >= Array.length on then begin
      let bigger = grow_int_array on (slot + 1) 0 in
      t.onstack.(ctx) <- bigger;
      bigger
    end
    else on
  in
  t.stacks.(ctx).(d) <- slot;
  t.marks.(ctx).(d) <- (if on.(slot) = 0 then t.attr.(ctx) else -1);
  on.(slot) <- on.(slot) + 1;
  t.calls.(slot) <- t.calls.(slot) + 1;
  t.depths.(ctx) <- d + 1

let pop t ~ctx =
  if ctx < t.n_ctx && t.depths.(ctx) > 0 then begin
    let d = t.depths.(ctx) - 1 in
    t.depths.(ctx) <- d;
    let slot = t.stacks.(ctx).(d) in
    t.onstack.(ctx).(slot) <- t.onstack.(ctx).(slot) - 1;
    let mark = t.marks.(ctx).(d) in
    if mark >= 0 then t.incl.(slot) <- t.incl.(slot) + (t.attr.(ctx) - mark)
  end

let set_line t ~ctx line =
  ensure_ctx t ctx;
  t.cur_line.(ctx) <- line

let finalize t =
  for ctx = 0 to t.n_ctx - 1 do
    while t.depths.(ctx) > 0 do
      pop t ~ctx
    done
  done

(* --- charging --------------------------------------------------------------- *)

let charge t ~ctx ~kind dur =
  if dur > 0 then begin
    ensure_ctx t ctx;
    let k = Trace.kind_index kind in
    let d = t.depths.(ctx) in
    let slot = if d = 0 then 0 else t.stacks.(ctx).(d - 1) in
    t.flat.(k).(slot) <- t.flat.(k).(slot) + dur;
    if d = 0 then t.incl.(0) <- t.incl.(0) + dur;
    t.attr.(ctx) <- t.attr.(ctx) + dur;
    let line = t.cur_line.(ctx) in
    t.line_ps.(line) <- t.line_ps.(line) + dur;
    Obs.Counter.add t.kind_ctr.(k) dur
  end

let ensure_lock t lock =
  if lock >= t.n_locks then begin
    let n = lock + 1 in
    t.lock_names <- grow_string_array t.lock_names n;
    t.lock_acqs <- grow_int_array t.lock_acqs n 0;
    t.lock_contended <- grow_int_array t.lock_contended n 0;
    t.lock_wait <- grow_int_array t.lock_wait n 0;
    t.lock_max_wait <- grow_int_array t.lock_max_wait n 0;
    t.lock_max_holder <- grow_int_array t.lock_max_holder n (-1);
    t.n_locks <- n
  end

let lock_acquired t ~lock ~wait_ps ~holder =
  ensure_lock t lock;
  t.lock_acqs.(lock) <- t.lock_acqs.(lock) + 1;
  Obs.Counter.incr t.lock_acq_ctr;
  Obs.Histogram.observe t.lock_wait_hist wait_ps;
  if wait_ps > 0 then begin
    t.lock_contended.(lock) <- t.lock_contended.(lock) + 1;
    Obs.Counter.incr t.lock_contended_ctr;
    t.lock_wait.(lock) <- t.lock_wait.(lock) + wait_ps;
    if wait_ps > t.lock_max_wait.(lock) then begin
      t.lock_max_wait.(lock) <- wait_ps;
      t.lock_max_holder.(lock) <- holder
    end
  end

let name_lock t ~lock name =
  ensure_lock t lock;
  if t.lock_names.(lock) = "" then t.lock_names.(lock) <- name

let barrier_episode t ~key ~spread_ps =
  let cell =
    match Hashtbl.find_opt t.barrier_tbl key with
    | Some cell -> cell
    | None ->
        let cell =
          { bc_episodes = 0; bc_total_spread = 0; bc_max_spread = 0 }
        in
        Hashtbl.replace t.barrier_tbl key cell;
        cell
  in
  cell.bc_episodes <- cell.bc_episodes + 1;
  cell.bc_total_spread <- cell.bc_total_spread + spread_ps;
  if spread_ps > cell.bc_max_spread then cell.bc_max_spread <- spread_ps;
  Obs.Counter.incr t.barrier_ctr;
  Obs.Histogram.observe t.barrier_spread_hist spread_ps

let sample t ~ts ~name ~series =
  t.samples <- (ts, name, series) :: t.samples;
  t.n_samples <- t.n_samples + 1

(* --- reports ----------------------------------------------------------------- *)

let attributed_ps t ~ctx = if ctx < t.n_ctx then t.attr.(ctx) else 0

let total_attributed_ps t =
  let acc = ref 0 in
  for c = 0 to t.n_ctx - 1 do
    acc := !acc + t.attr.(c)
  done;
  !acc

let n_ctxs t = t.n_ctx

type fn_row = {
  fn_name : string;
  fn_calls : int;
  fn_flat_ps : int array;
  fn_flat_total_ps : int;
  fn_incl_ps : int;
}

let functions t =
  let rows = ref [] in
  for slot = t.n_fns - 1 downto 0 do
    let flat = Array.init Trace.n_kinds (fun k -> t.flat.(k).(slot)) in
    let total = Array.fold_left ( + ) 0 flat in
    if total > 0 || t.incl.(slot) > 0 then
      rows :=
        {
          fn_name = t.fn_names.(slot);
          fn_calls = t.calls.(slot);
          fn_flat_ps = flat;
          fn_flat_total_ps = total;
          fn_incl_ps = max t.incl.(slot) total;
        }
        :: !rows
  done;
  List.sort
    (fun a b ->
      match compare b.fn_flat_total_ps a.fn_flat_total_ps with
      | 0 -> compare a.fn_name b.fn_name
      | c -> c)
    !rows

let lines t =
  let rows = ref [] in
  for slot = t.n_lines - 1 downto 1 do
    if t.line_ps.(slot) > 0 then
      rows := (t.line_names.(slot), t.line_ps.(slot)) :: !rows
  done;
  List.sort
    (fun (na, a) (nb, b) ->
      match compare b a with 0 -> compare na nb | c -> c)
    !rows

type lock_row = {
  lk_name : string;
  lk_acquisitions : int;
  lk_contended : int;
  lk_wait_ps : int;
  lk_max_wait_ps : int;
  lk_max_holder : int;
}

let locks t =
  let rows = ref [] in
  for lock = t.n_locks - 1 downto 0 do
    if t.lock_acqs.(lock) > 0 then
      rows :=
        {
          lk_name =
            (if t.lock_names.(lock) <> "" then t.lock_names.(lock)
             else Printf.sprintf "lock#%d" lock);
          lk_acquisitions = t.lock_acqs.(lock);
          lk_contended = t.lock_contended.(lock);
          lk_wait_ps = t.lock_wait.(lock);
          lk_max_wait_ps = t.lock_max_wait.(lock);
          lk_max_holder = t.lock_max_holder.(lock);
        }
        :: !rows
  done;
  List.sort
    (fun a b ->
      match compare b.lk_wait_ps a.lk_wait_ps with
      | 0 -> compare a.lk_name b.lk_name
      | c -> c)
    !rows

type barrier_row = {
  br_name : string;
  br_episodes : int;
  br_total_spread_ps : int;
  br_max_spread_ps : int;
}

let barriers t =
  let rows =
    Hashtbl.fold
      (fun key cell acc ->
        ( key,
          {
            br_name =
              (if key < 0 then "global" else Printf.sprintf "barrier#%d" key);
            br_episodes = cell.bc_episodes;
            br_total_spread_ps = cell.bc_total_spread;
            br_max_spread_ps = cell.bc_max_spread;
          } )
        :: acc)
      t.barrier_tbl []
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) rows)

let registry t = t.reg

(* --- allocation-free introspection (for the critical-path recorder) ------- *)

let current_fn_slot t ~ctx =
  if ctx < t.n_ctx then begin
    let d = t.depths.(ctx) in
    if d = 0 then 0 else t.stacks.(ctx).(d - 1)
  end
  else 0

let current_line_slot t ~ctx = if ctx < t.n_ctx then t.cur_line.(ctx) else 0

let fn_name t slot =
  if slot >= 0 && slot < t.n_fns then t.fn_names.(slot) else "?"

let line_name t slot =
  if slot >= 0 && slot < t.n_lines then t.line_names.(slot) else "?"

let counter_events t =
  let metrics_pid = 9998 in
  Obs.Chrome.Process_name { pid = metrics_pid; name = "machine metrics" }
  :: List.rev_map
       (fun (ts, name, series) ->
         Obs.Chrome.Counter
           { name; pid = metrics_pid; ts_us = float_of_int ts /. 1e6; series })
       t.samples

(* --- rendering ---------------------------------------------------------------- *)

let render_functions t =
  let header =
    [ "function"; "calls"; "compute"; "private"; "shared"; "mpb"; "barrier";
      "lock"; "flat-ps"; "incl-ps" ]
  in
  let rows =
    List.map
      (fun r ->
        r.fn_name :: string_of_int r.fn_calls
        :: (Array.to_list (Array.map string_of_int r.fn_flat_ps)
           @ [ string_of_int r.fn_flat_total_ps; string_of_int r.fn_incl_ps ]))
      (functions t)
  in
  Obs.render_table (header :: rows)

let render_lines ?(limit = 20) t =
  let rows =
    List.filteri (fun i _ -> i < limit) (lines t)
    |> List.map (fun (name, ps) -> [ name; string_of_int ps ])
  in
  Obs.render_table ([ "line"; "ps" ] :: rows)

let render_locks t =
  let rows =
    List.map
      (fun r ->
        [ r.lk_name;
          string_of_int r.lk_acquisitions;
          string_of_int r.lk_contended;
          string_of_int r.lk_wait_ps;
          string_of_int r.lk_max_wait_ps;
          (if r.lk_max_holder < 0 then "-" else string_of_int r.lk_max_holder)
        ])
      (locks t)
  in
  Obs.render_table
    ([ "mutex"; "acqs"; "contended"; "wait-ps"; "max-wait-ps";
       "holder@max" ]
    :: rows)

let render_barriers t =
  let rows =
    List.map
      (fun r ->
        [ r.br_name;
          string_of_int r.br_episodes;
          string_of_int r.br_total_spread_ps;
          string_of_int r.br_max_spread_ps ])
      (barriers t)
  in
  Obs.render_table
    ([ "barrier"; "episodes"; "spread-ps"; "max-spread-ps" ] :: rows)

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "flat profile (simulated ps):\n";
  Buffer.add_string buf (render_functions t);
  (match lines t with
  | [] -> ()
  | _ ->
      Buffer.add_string buf "\nhottest source lines:\n";
      Buffer.add_string buf (render_lines t));
  (match locks t with
  | [] -> ()
  | _ ->
      Buffer.add_string buf "\nmutex contention:\n";
      Buffer.add_string buf (render_locks t));
  (match barriers t with
  | [] -> ()
  | _ ->
      Buffer.add_string buf "\nbarrier imbalance:\n";
      Buffer.add_string buf (render_barriers t));
  Buffer.contents buf
