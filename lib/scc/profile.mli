(** Simulated-time source profiler.

    The interpreter (or workload harness) pushes interned attribution
    frames — function names, plus an optional current source line — and
    the engine charges every compute burst, memory round trip, barrier
    wait and lock wait to the frame on top of the charged context's
    stack.  All times are simulated picoseconds, so profiles are exactly
    reproducible.

    Also collected: a per-mutex contention table, per-barrier arrival
    imbalance, and sampled machine-metric timelines (L1 hit rate, memory
    controller queue depth, mesh utilization) exportable as Chrome
    counter events; aggregate counters and wait histograms are exposed
    through an {!Obs.Registry} for the Prometheus-style text
    exposition. *)

type t

val create : ?sample_interval_ps:int -> unit -> t
(** [sample_interval_ps] (default 1_000_000 = 1 µs of simulated time)
    spaces the machine-metric timeline samples. *)

val sample_interval_ps : t -> int

(** {1 Attribution frames} (interpreter / workload side) *)

val intern : t -> string -> int
(** Intern a function name to a slot; idempotent.  Slot 0 is the
    implicit ["<toplevel>"] frame charged while a context's stack is
    empty. *)

val intern_line : t -> string -> int
(** Intern a ["file:line"] key for the line-heat report; idempotent. *)

val push : t -> ctx:int -> int -> unit
(** Enter a function frame (an interned slot) on a context's stack. *)

val pop : t -> ctx:int -> unit

val set_line : t -> ctx:int -> int -> unit
(** Set the context's current source line (an {!intern_line} slot). *)

val finalize : t -> unit
(** Pop every frame still open (end of run), completing inclusive
    times. *)

(** {1 Charging} (engine side) *)

val charge : t -> ctx:int -> kind:Trace.kind -> int -> unit
(** Attribute picoseconds of [kind] to the context's current frame and
    line. *)

val lock_acquired : t -> lock:int -> wait_ps:int -> holder:int -> unit
(** One acquisition of an engine lock; [wait_ps] is 0 and [holder] is
    [-1] when uncontended, otherwise the context that held the lock. *)

val name_lock : t -> lock:int -> string -> unit
(** Attach a source name to an engine lock id (first name wins). *)

val barrier_episode : t -> key:int -> spread_ps:int -> unit
(** One completed barrier: [spread_ps] is the fastest-vs-slowest arrival
    gap; [key] is the counted-barrier id, or [-1] for the global RCCE
    barrier. *)

val sample : t -> ts:int -> name:string -> series:(string * float) list -> unit
(** Append one timeline sample (a named Chrome counter event). *)

(** {1 Reports} *)

val attributed_ps : t -> ctx:int -> int
(** Total picoseconds attributed to one context (equals its traced busy
    time). *)

val total_attributed_ps : t -> int

val n_ctxs : t -> int

type fn_row = {
  fn_name : string;
  fn_calls : int;
  fn_flat_ps : int array;  (** per {!Trace.kind_index} *)
  fn_flat_total_ps : int;
  fn_incl_ps : int;        (** inclusive: self plus callees *)
}

val functions : t -> fn_row list
(** Sorted by flat total descending (name ascending on ties); rows with
    no attributed time are omitted. *)

val lines : t -> (string * int) list
(** ["file:line"] keys with attributed picoseconds, hottest first. *)

type lock_row = {
  lk_name : string;          (** source name, or ["lock#N"] *)
  lk_acquisitions : int;
  lk_contended : int;
  lk_wait_ps : int;
  lk_max_wait_ps : int;
  lk_max_holder : int;       (** context holding at the max wait; -1 none *)
}

val locks : t -> lock_row list
(** Locks with at least one acquisition, most total wait first. *)

type barrier_row = {
  br_name : string;          (** ["global"] or ["barrier#N"] *)
  br_episodes : int;
  br_total_spread_ps : int;
  br_max_spread_ps : int;
}

val barriers : t -> barrier_row list

val current_fn_slot : t -> ctx:int -> int
(** The interned slot of the frame on top of the context's stack
    (0 = ["<toplevel>"]).  Allocation-free; used by the critical-path
    recorder to stamp dependency-graph events. *)

val current_line_slot : t -> ctx:int -> int
(** The context's current line slot (0 = ["<unknown>"]). *)

val fn_name : t -> int -> string
(** Name for an interned function slot (["?"] when out of range). *)

val line_name : t -> int -> string
(** Key for an interned line slot (["?"] when out of range). *)

val registry : t -> Obs.Registry.t
(** Aggregate counters (attributed ps per kind, lock/barrier totals) and
    wait/spread histograms, for [Obs.Registry.to_prometheus] and
    friends. *)

val counter_events : t -> Obs.Chrome.event list
(** The sampled timelines as Chrome counter events (plus a process-name
    metadata event), mergeable into a trace file. *)

val render_functions : t -> string
val render_lines : ?limit:int -> t -> string
val render_locks : t -> string
val render_barriers : t -> string

val render : t -> string
(** All of the above as one human-readable report. *)
