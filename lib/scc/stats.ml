(* Counters collected during a simulation run, per execution context and
   per shared resource. *)

type ctx_stats = {
  mutable compute_ps : int;
  mutable loads : int;            (* line-granularity accesses *)
  mutable stores : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable private_dram_lines : int;
  mutable shared_dram_lines : int;
  mutable shared_dram_loads : int;   (* read/write split of shared_dram_lines *)
  mutable shared_dram_stores : int;
  mutable mpb_lines : int;
  mutable mem_stall_ps : int;     (* time blocked on memory *)
  mutable barrier_wait_ps : int;
  mutable lock_wait_ps : int;
  mutable context_switches : int;
  mutable finish_ps : int;
}

type t = {
  ctxs : ctx_stats array;
  mc_busy_ps : int array;
  mc_requests : int array;
  domain_events : int array;
      (* scheduler events per partition (length = scheduler partitions;
         [| total |] when the run was sequential) *)
}

let create_ctx () =
  {
    compute_ps = 0; loads = 0; stores = 0;
    l1_hits = 0; l1_misses = 0; l2_hits = 0; l2_misses = 0;
    private_dram_lines = 0; shared_dram_lines = 0;
    shared_dram_loads = 0; shared_dram_stores = 0; mpb_lines = 0;
    mem_stall_ps = 0; barrier_wait_ps = 0; lock_wait_ps = 0;
    context_switches = 0; finish_ps = 0;
  }

let create ~n_ctxs ~n_mcs =
  {
    ctxs = Array.init n_ctxs (fun _ -> create_ctx ());
    mc_busy_ps = Array.make n_mcs 0;
    mc_requests = Array.make n_mcs 0;
    domain_events = Array.make 1 0;
  }

let ctx t i = t.ctxs.(i)

let total f t = Array.fold_left (fun acc c -> acc + f c) 0 t.ctxs

let total_loads = total (fun c -> c.loads)
let total_stores = total (fun c -> c.stores)
let total_shared_dram_lines = total (fun c -> c.shared_dram_lines)
let total_shared_dram_loads = total (fun c -> c.shared_dram_loads)
let total_shared_dram_stores = total (fun c -> c.shared_dram_stores)
let total_mpb_lines = total (fun c -> c.mpb_lines)

let max_finish_ps t = Array.fold_left (fun acc c -> max acc c.finish_ps) 0 t.ctxs

let summary t =
  Printf.sprintf
    "loads=%d stores=%d l1_hits=%d l2_hits=%d private_lines=%d \
     shared_lines=%d (r=%d w=%d) mpb_lines=%d"
    (total_loads t) (total_stores t)
    (total (fun c -> c.l1_hits) t)
    (total (fun c -> c.l2_hits) t)
    (total (fun c -> c.private_dram_lines) t)
    (total_shared_dram_lines t)
    (total_shared_dram_loads t) (total_shared_dram_stores t)
    (total_mpb_lines t)
