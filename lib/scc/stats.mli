(** Counters collected during a simulation run. *)

type ctx_stats = {
  mutable compute_ps : int;
  mutable loads : int;
  mutable stores : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable private_dram_lines : int;
  mutable shared_dram_lines : int;
  mutable shared_dram_loads : int;
      (** read portion of [shared_dram_lines] — the traffic the
          shared-load optimizer is meant to shrink *)
  mutable shared_dram_stores : int;
  mutable mpb_lines : int;
  mutable mem_stall_ps : int;
  mutable barrier_wait_ps : int;
  mutable lock_wait_ps : int;
  mutable context_switches : int;
  mutable finish_ps : int;
}

type t = {
  ctxs : ctx_stats array;
  mc_busy_ps : int array;
  mc_requests : int array;
  domain_events : int array;
      (** scheduler events per partition, for parallel-DES load-imbalance
          accounting (length = scheduler partitions; [[| total |]] for a
          sequential run) *)
}

val create : n_ctxs:int -> n_mcs:int -> t

val create_ctx : unit -> ctx_stats

val ctx : t -> int -> ctx_stats

val total_loads : t -> int
val total_stores : t -> int
val total_shared_dram_lines : t -> int
val total_shared_dram_loads : t -> int
val total_shared_dram_stores : t -> int
val total_mpb_lines : t -> int

val max_finish_ps : t -> int
(** Completion time of the slowest context. *)

val summary : t -> string
